package pacer

import "sync"

// Mutex is a sync.Mutex that reports its acquire and release operations to
// the detector, so the happens-before edges it induces are tracked without
// manual instrumentation. The zero value is not usable; create one with
// Detector.NewMutex.
type Mutex struct {
	d  *Detector
	id LockID
	mu sync.Mutex
}

// NewMutex returns an instrumented mutex.
func (p *Detector) NewMutex() *Mutex {
	return &Mutex{d: p, id: p.NewLockID()}
}

// Lock acquires the mutex on behalf of thread t.
func (m *Mutex) Lock(t ThreadID) {
	m.mu.Lock()
	m.d.Acquire(t, m.id)
}

// Unlock releases the mutex on behalf of thread t.
func (m *Mutex) Unlock(t ThreadID) {
	m.d.Release(t, m.id)
	m.mu.Unlock()
}

// ID returns the mutex's lock identifier.
func (m *Mutex) ID() LockID { return m.id }

// Shared is a shared cell of type T whose loads and stores are reported to
// the detector. The cell's value itself is kept internally consistent (so
// an instrumented program cannot corrupt its own memory), but the
// *logical* accesses are checked for races exactly as if the program read
// and wrote an unprotected variable — which is the point: PACER finds the
// missing synchronization without the crash.
type Shared[T any] struct {
	d  *Detector
	id VarID
	mu sync.Mutex
	v  T
}

// NewShared returns an instrumented shared cell holding initial.
func NewShared[T any](p *Detector, initial T) *Shared[T] {
	s := &Shared[T]{d: p, id: p.NewVarID()}
	s.v = initial
	return s
}

// Load reads the cell on behalf of thread t at site.
func (s *Shared[T]) Load(t ThreadID, site SiteID) T {
	s.d.Read(t, s.id, site)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v
}

// Store writes the cell on behalf of thread t at site.
func (s *Shared[T]) Store(t ThreadID, site SiteID, v T) {
	s.d.Write(t, s.id, site)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v = v
}

// Update applies f to the cell's value on behalf of thread t, reporting a
// read followed by a write.
func (s *Shared[T]) Update(t ThreadID, site SiteID, f func(T) T) {
	s.d.Read(t, s.id, site)
	s.d.Write(t, s.id, site)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v = f(s.v)
}

// ID returns the cell's variable identifier.
func (s *Shared[T]) ID() VarID { return s.id }

// Atomic is a shared cell with volatile (synchronizing) semantics: loads
// and stores are reported as volatile accesses, which create
// happens-before edges rather than race candidates, like a Java volatile
// or a Go atomic used for synchronization.
type Atomic[T any] struct {
	d  *Detector
	id VolatileID
	mu sync.Mutex
	v  T
}

// NewAtomic returns an instrumented volatile cell holding initial.
func NewAtomic[T any](p *Detector, initial T) *Atomic[T] {
	a := &Atomic[T]{d: p, id: p.NewVolatileID()}
	a.v = initial
	return a
}

// Load reads the volatile on behalf of thread t.
func (a *Atomic[T]) Load(t ThreadID) T {
	a.d.VolRead(t, a.id)
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// Store writes the volatile on behalf of thread t.
func (a *Atomic[T]) Store(t ThreadID, v T) {
	a.d.VolWrite(t, a.id)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.v = v
}
