package pacer_test

import (
	"math/rand"
	"sync"
	"testing"

	"pacer"
)

// TestFastPathAllocFree pins the non-sampling fast path at zero
// allocations per access, with and without the arena: the whole point of
// rate-proportional overhead is that untracked accesses outside sampling
// periods cost two atomic loads and a counter bump — if either
// configuration starts allocating there, proportionality is gone for
// every workload.
func TestFastPathAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arena bool
	}{
		{"heap", false},
		{"arena", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := pacer.New(pacer.Options{SamplingRate: 0, Arena: tc.arena})
			tid := d.NewThread()
			v := d.NewVarID()
			// Warm the thread's op-counter cell and the shard counters.
			d.Read(tid, v, 1)
			d.Write(tid, v, 1)

			if got := testing.AllocsPerRun(200, func() {
				d.Read(tid, v, 1)
			}); got != 0 {
				t.Errorf("fast-path Read allocates %v per op, want 0", got)
			}
			if got := testing.AllocsPerRun(200, func() {
				d.Write(tid, v, 1)
			}); got != 0 {
				t.Errorf("fast-path Write allocates %v per op, want 0", got)
			}
		})
	}
}

// TestArenaFrontEndStress hammers an arena-backed detector from many
// goroutines (run under -race in CI): the refcount/recycle protocol must
// hold up under the concurrent sharded discipline, and the detector must
// end with a consistent arena accounting.
func TestArenaFrontEndStress(t *testing.T) {
	d := pacer.New(pacer.Options{
		SamplingRate: 0.3,
		PeriodOps:    256,
		Seed:         7,
		Shards:       8,
		Arena:        true,
		OnRace:       func(pacer.Race) {},
	})
	main := d.NewThread()
	shared := make([]pacer.VarID, 8)
	for i := range shared {
		shared[i] = d.NewVarID()
	}
	locks := []*pacer.Mutex{d.NewMutex(), d.NewMutex()}
	flag := pacer.NewAtomic(d, 0)

	const goroutines, opsPer = 8, 4000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		tid := d.Fork(main)
		wg.Add(1)
		go func(tid pacer.ThreadID, g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			private := []pacer.VarID{d.NewVarID(), d.NewVarID()}
			for i := 0; i < opsPer; i++ {
				s := pacer.SiteID(i + 1)
				switch r := rng.Intn(100); {
				case r < 50:
					v := private[rng.Intn(len(private))]
					if rng.Intn(3) == 0 {
						d.Write(tid, v, s)
					} else {
						d.Read(tid, v, s)
					}
				case r < 80:
					v := shared[rng.Intn(len(shared))]
					if rng.Intn(2) == 0 {
						d.Write(tid, v, s)
					} else {
						d.Read(tid, v, s)
					}
				case r < 95:
					m := locks[rng.Intn(len(locks))]
					m.Lock(tid)
					d.Write(tid, shared[rng.Intn(len(shared))], s)
					m.Unlock(tid)
				default:
					if rng.Intn(2) == 0 {
						flag.Store(tid, i)
					} else {
						flag.Load(tid)
					}
				}
			}
		}(tid, g)
	}
	wg.Wait()

	st := d.Stats()
	if !st.ArenaEnabled {
		t.Fatal("arena not enabled")
	}
	if st.ArenaSlabsLive == 0 {
		t.Fatalf("no live slabs after a run with live threads: %+v", st)
	}
	if st.ArenaRecycles+st.ArenaMisses == 0 {
		t.Fatalf("arena saw no traffic: %+v", st)
	}
}
