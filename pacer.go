// Package pacer is a sampling data-race detector for concurrent programs,
// implementing Bond, Coons, and McKinley's PACER algorithm (PLDI 2010).
//
// PACER tracks the happens-before relationship with the FastTrack
// algorithm during global sampling periods and almost no work outside
// them, giving a proportionality guarantee: every race is detected with
// probability equal to the sampling rate, at time and space overheads that
// also scale with the sampling rate. It is precise — every report is a
// true race.
//
// Applications register threads and synchronization objects and notify the
// detector at reads, writes, lock operations, volatile accesses, forks,
// and joins:
//
//	d := pacer.New(pacer.Options{SamplingRate: 0.03, OnRace: report})
//	t := d.NewThread()
//	u := d.Fork(t)
//	d.Write(t, account, siteDeposit)
//	d.Read(u, account, siteAudit) // 3% chance this race is reported
//
// The convenience wrappers Mutex and Shared instrument common patterns
// automatically. For simulation-based evaluation and the paper's
// experiments, see cmd/pacerbench and the internal packages.
package pacer

import (
	"math/rand"
	"sync"
	"time"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// ThreadID identifies a registered thread.
type ThreadID = vclock.Thread

// VarID identifies a shared data variable.
type VarID = event.Var

// LockID identifies a lock.
type LockID = event.Lock

// VolatileID identifies a volatile variable.
type VolatileID = event.Volatile

// SiteID identifies a static program location; races are reported as site
// pairs.
type SiteID = event.Site

// RaceKind classifies a race by its two accesses, first access first.
type RaceKind = detector.RaceKind

// Race kinds.
const (
	WriteWrite = detector.WriteWrite
	WriteRead  = detector.WriteRead
	ReadWrite  = detector.ReadWrite
)

// Race is a detected data race. The first access is the earlier one (the
// one whose metadata was recorded during a sampling period).
type Race = detector.Race

// Options configure a Detector.
type Options struct {
	// SamplingRate is the global sampling rate r in [0, 1]. Every race is
	// detected with probability r; time and space overheads scale with r.
	// 0.01-0.03 is the paper's deployment recommendation.
	SamplingRate float64
	// PeriodOps is the number of observed operations per sampling-decision
	// period. The paper toggles sampling at garbage collections; without a
	// GC to hook, this library uses fixed-length operation periods, which
	// need no bias correction. Defaults to 4096.
	PeriodOps int
	// OnRace receives race reports. It is called with the detector's
	// internal lock held; keep it fast (e.g. enqueue the report).
	OnRace func(Race)
	// Seed makes period selection deterministic; 0 seeds from 1.
	Seed int64
	// Core tunes the underlying algorithm; the zero value is the full
	// published algorithm. Mainly for ablation studies.
	Core core.Options
	// Budget, when TargetOverhead is nonzero, replaces the fixed
	// SamplingRate with an adaptive controller that keeps the measured
	// analysis overhead near the target (see BudgetOptions).
	Budget BudgetOptions
	// ReuseThreadIDs recycles the identifiers of dead, joined threads
	// whose metadata has been fully discarded, keeping vector clocks
	// bounded by the peak live thread count instead of the total thread
	// count — the accordion-clocks improvement the paper recommends for
	// production use.
	ReuseThreadIDs bool
}

// Stats summarizes the detector's work, mirroring the operation classes of
// the paper's Table 3.
type Stats struct {
	// Races is the number of reports.
	Races uint64
	// Reads and Writes count observed data accesses.
	Reads, Writes uint64
	// SyncOps counts observed synchronization operations.
	SyncOps uint64
	// FastPathReads/Writes count accesses dismissed by the O(1) no-metadata
	// fast path.
	FastPathReads, FastPathWrites uint64
	// SlowJoins and FastJoins count O(n) versus version-skipped joins.
	SlowJoins, FastJoins uint64
	// DeepCopies and ShallowCopies count vector clock copies.
	DeepCopies, ShallowCopies uint64
	// VarsTracked is the number of variables currently holding metadata.
	VarsTracked int
	// MetadataWords approximates live metadata in 8-byte words.
	MetadataWords int
}

// Detector is a thread-safe PACER race detector. All methods may be called
// from any goroutine; the analysis itself is serialized internally, which
// preserves a valid interleaving of the observed operations.
type Detector struct {
	mu      sync.Mutex
	d       *core.Detector
	opts    Options
	rng     *rand.Rand
	budget  *budgetState
	ops     int
	periods uint64

	nextThread ThreadID
	nextLock   LockID
	nextVol    VolatileID
	nextVar    VarID

	siteLabels map[SiteID]string
	varLabels  map[VarID]string
}

// New returns a detector with the given options.
func New(opts Options) *Detector {
	if opts.PeriodOps <= 0 {
		opts.PeriodOps = 4096
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.SamplingRate < 0 {
		opts.SamplingRate = 0
	}
	if opts.SamplingRate > 1 {
		opts.SamplingRate = 1
	}
	det := &Detector{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	if opts.Budget.TargetOverhead > 0 {
		det.budget = newBudgetState(opts.Budget, opts.SamplingRate)
	}
	det.d = core.NewWithOptions(func(r detector.Race) {
		if opts.OnRace != nil {
			opts.OnRace(r)
		}
	}, opts.Core)
	det.rollPeriod()
	return det
}

// rollPeriod decides whether the next period samples. Callers hold mu (or
// are the constructor).
func (p *Detector) rollPeriod() {
	p.ops = 0
	p.periods++
	rate := p.opts.SamplingRate
	if p.budget != nil {
		p.budget.adjust()
		rate = p.budget.rate
	}
	sample := p.rng.Float64() < rate
	if sample && !p.d.Sampling() {
		p.d.SampleBegin()
	} else if !sample && p.d.Sampling() {
		p.d.SampleEnd()
	}
}

// enter and exit bracket analysis work for the budget controller; callers
// hold mu.
func (p *Detector) enter() time.Time {
	if p.budget == nil {
		return time.Time{}
	}
	return time.Now()
}

func (p *Detector) exit(t0 time.Time) {
	if p.budget != nil {
		p.budget.inside += time.Since(t0)
	}
}

// tick advances the period clock; callers hold mu.
func (p *Detector) tick() {
	p.ops++
	if p.ops >= p.opts.PeriodOps {
		p.rollPeriod()
	}
}

// NewThread registers a new root thread (one not forked from a registered
// thread, e.g. main). Threads forked by registered threads should use
// Fork so the happens-before edge is recorded.
func (p *Detector) NewThread() ThreadID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextThread
	p.nextThread++
	return id
}

// Fork registers a new thread forked by parent and records the
// happens-before edge fork(parent, child). With Options.ReuseThreadIDs,
// the identifier of a fully retired thread may be recycled.
func (p *Detector) Fork(parent ThreadID) ThreadID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, reused := ThreadID(0), false
	if p.opts.ReuseThreadIDs {
		id, reused = p.d.ReusableThread()
	}
	if !reused {
		id = p.nextThread
		p.nextThread++
	}
	p.d.Fork(parent, id)
	p.tick()
	return id
}

// Join records join(t, u): t blocked until u terminated. It also marks u
// terminated, which (with Options.ReuseThreadIDs) makes its identifier a
// recycling candidate once no metadata names it.
func (p *Detector) Join(t, u ThreadID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.d.Join(t, u)
	p.d.ThreadExit(u)
	p.tick()
}

// NewLockID allocates a lock identifier.
func (p *Detector) NewLockID() LockID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextLock
	p.nextLock++
	return id
}

// NewVolatileID allocates a volatile identifier.
func (p *Detector) NewVolatileID() VolatileID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextVol
	p.nextVol++
	return id
}

// NewVarID allocates a data-variable identifier.
func (p *Detector) NewVarID() VarID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextVar
	p.nextVar++
	return id
}

// Read observes thread t reading variable v at site s.
func (p *Detector) Read(t ThreadID, v VarID, s SiteID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t0 := p.enter()
	p.d.Read(t, v, s, 0)
	p.exit(t0)
	p.tick()
}

// Write observes thread t writing variable v at site s.
func (p *Detector) Write(t ThreadID, v VarID, s SiteID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t0 := p.enter()
	p.d.Write(t, v, s, 0)
	p.exit(t0)
	p.tick()
}

// Acquire observes thread t acquiring lock m. Call it after the real lock
// is acquired.
func (p *Detector) Acquire(t ThreadID, m LockID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t0 := p.enter()
	p.d.Acquire(t, m)
	p.exit(t0)
	p.tick()
}

// Release observes thread t releasing lock m. Call it before the real lock
// is released.
func (p *Detector) Release(t ThreadID, m LockID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t0 := p.enter()
	p.d.Release(t, m)
	p.exit(t0)
	p.tick()
}

// VolRead observes thread t reading volatile vx (e.g. an atomic load).
func (p *Detector) VolRead(t ThreadID, vx VolatileID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t0 := p.enter()
	p.d.VolRead(t, vx)
	p.exit(t0)
	p.tick()
}

// VolWrite observes thread t writing volatile vx (e.g. an atomic store).
func (p *Detector) VolWrite(t ThreadID, vx VolatileID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t0 := p.enter()
	p.d.VolWrite(t, vx)
	p.exit(t0)
	p.tick()
}

// Sampling reports whether the detector is currently in a sampling period.
func (p *Detector) Sampling() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.d.Sampling()
}

// Stats returns a snapshot of the detector's work counters.
func (p *Detector) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.d.Stats()
	return Stats{
		Races:          c.Races,
		Reads:          c.TotalReads(),
		Writes:         c.TotalWrites(),
		SyncOps:        c.TotalSyncOps(),
		FastPathReads:  c.ReadFast[0] + c.ReadFast[1],
		FastPathWrites: c.WriteFast[0] + c.WriteFast[1],
		SlowJoins:      c.SlowJoins[0] + c.SlowJoins[1],
		FastJoins:      c.FastJoins[0] + c.FastJoins[1],
		DeepCopies:     c.DeepCopies[0] + c.DeepCopies[1],
		ShallowCopies:  c.ShallowCopies[0] + c.ShallowCopies[1],
		VarsTracked:    p.d.VarsTracked(),
		MetadataWords:  p.d.MetadataWords(),
	}
}
