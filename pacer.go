// Package pacer is a sampling data-race detector for concurrent programs,
// implementing Bond, Coons, and McKinley's PACER algorithm (PLDI 2010).
//
// PACER tracks the happens-before relationship with the FastTrack
// algorithm during global sampling periods and almost no work outside
// them, giving a proportionality guarantee: every race is detected with
// probability equal to the sampling rate, at time and space overheads that
// also scale with the sampling rate. It is precise — every report is a
// true race.
//
// Applications register threads and synchronization objects and notify the
// detector at reads, writes, lock operations, volatile accesses, forks,
// and joins:
//
//	d := pacer.New(pacer.Options{SamplingRate: 0.03, OnRace: report})
//	t := d.NewThread()
//	u := d.Fork(t)
//	d.Write(t, account, siteDeposit)
//	d.Read(u, account, siteAudit) // 3% chance this race is reported
//
// The convenience wrappers Mutex and Shared instrument common patterns
// automatically. For simulation-based evaluation and the paper's
// experiments, see cmd/pacerbench and the internal packages.
//
// # Backends
//
// The ingestion front-end is backend-agnostic: Options.Algorithm mounts
// any registered race-detection backend ("pacer" by default, or
// "fasttrack", "literace", "generic", "djit", "goldilocks", "lockset")
// behind the identical public API, so competing analyses can be compared
// on real wall-clock workloads through the exact code path production
// uses. Backends advertise capabilities via interfaces (sampling periods,
// sharded concurrency, memory accounting); the front-end degrades
// gracefully where a capability is absent — in particular, backends
// without sampling periods run with always-sample semantics (every
// operation is analyzed) and backends without sharding support are driven
// fully serialized under the epoch lock.
//
// # Concurrency
//
// All methods may be called from any goroutine, with one inherent rule:
// operations for a single ThreadID must not be issued concurrently with
// each other (a logical thread is sequential by definition).
//
// With the default PACER backend the front-end is built so the cost of
// ingestion scales with the sampling rate, matching the algorithm it
// feeds:
//
//   - Outside sampling periods, a Read or Write of a variable holding no
//     metadata returns on a lock-free fast path: two atomic loads (the
//     published sampling-state word and a metadata presence filter) plus
//     sharded atomic counters. No mutex is touched.
//   - During sampling periods, variable metadata is striped across shards
//     (hash of VarID); accesses to variables in distinct shards proceed in
//     parallel, each under its shard lock plus a shared (reader) hold on
//     the epoch lock.
//   - Synchronization operations and sampling-period transitions take the
//     epoch lock exclusively, freezing all accesses, so every execution is
//     equivalent to some serialized interleaving of the observed
//     operations — the detector never reports a race that a fully
//     serialized detector could not report.
//   - Each registered thread owns a cache-line-padded operation counter;
//     counts are flushed to the period roller in batches, so the sampling
//     clock advances without a shared contended word.
package pacer

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pacer/internal/backends"
	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// ThreadID identifies a registered thread.
type ThreadID = vclock.Thread

// VarID identifies a shared data variable.
type VarID = event.Var

// LockID identifies a lock.
type LockID = event.Lock

// VolatileID identifies a volatile variable.
type VolatileID = event.Volatile

// SiteID identifies a static program location; races are reported as site
// pairs.
type SiteID = event.Site

// Event is one observed operation, as recorded by Options.TraceSink. The
// sequence of events delivered to a sink is a faithful linearization:
// replaying it through a serialized detector reproduces the analysis this
// detector performed.
type Event = event.Event

// RaceKind classifies a race by its two accesses, first access first.
type RaceKind = detector.RaceKind

// Race kinds.
const (
	WriteWrite = detector.WriteWrite
	WriteRead  = detector.WriteRead
	ReadWrite  = detector.ReadWrite
)

// Race is a detected data race. The first access is the earlier one (the
// one whose metadata was recorded during a sampling period).
type Race = detector.Race

// Options configure a Detector.
type Options struct {
	// Algorithm selects the detection backend mounted behind the
	// front-end: "pacer" (the default), "fasttrack", "literace",
	// "generic", "djit", "goldilocks", or "lockset" — see Algorithms.
	// Backends without sampling periods analyze every operation
	// (SamplingRate is ignored and Sampling reports true); backends
	// without sharded-concurrency support are driven serialized under the
	// epoch lock, which preserves correctness at the cost of parallelism.
	Algorithm string
	// SamplingRate is the global sampling rate r in [0, 1]. Every race is
	// detected with probability r; time and space overheads scale with r.
	// 0.01-0.03 is the paper's deployment recommendation.
	SamplingRate float64
	// PeriodOps is the number of observed operations per sampling-decision
	// period. The paper toggles sampling at garbage collections; without a
	// GC to hook, this library uses fixed-length operation periods, which
	// need no bias correction. Defaults to 4096. Under concurrent use,
	// period boundaries are approximate: per-thread operation counts are
	// flushed to the roller in small batches, so a period may run over by
	// up to one batch per active thread.
	PeriodOps int
	// OnRace receives race reports. Accesses to variables in distinct
	// shards analyze in parallel, so OnRace may be invoked from multiple
	// goroutines concurrently; synchronize inside the callback (or use an
	// Aggregator, which is already safe). Keep it fast — it runs with the
	// reporting variable's shard lock held.
	OnRace func(Race)
	// Seed makes period selection (and any backend-internal randomness,
	// e.g. LITERACE's burst resets) deterministic; 0 seeds from 1. (With
	// concurrent callers the roll sequence is still deterministic, but
	// which operations land in which period depends on scheduling.)
	Seed int64
	// Core tunes the underlying PACER algorithm; the zero value is the
	// full published algorithm. Mainly for ablation studies. Ignored by
	// other backends.
	Core core.Options
	// Budget, when TargetOverhead is nonzero, replaces the fixed
	// SamplingRate with an adaptive controller that keeps the measured
	// analysis overhead near the target (see BudgetOptions). Only
	// meaningful for backends with sampling periods.
	Budget BudgetOptions
	// ReuseThreadIDs recycles the identifiers of dead, joined threads
	// whose metadata has been fully discarded, keeping vector clocks
	// bounded by the peak live thread count instead of the total thread
	// count — the accordion-clocks improvement the paper recommends for
	// production use. Ignored by backends that cannot recycle soundly.
	ReuseThreadIDs bool
	// Shards is the number of variable-metadata shards (rounded up to a
	// power of two; default 64). More shards admit more parallelism during
	// sampling periods and a finer-grained fast-path presence filter, at a
	// small fixed memory cost per detector. Overrides Core.Shards when
	// nonzero.
	Shards int
	// Arena backs the default backend's metadata (vector clocks and
	// per-variable records) with a slab arena striped across the variable
	// shards: metadata discarded at non-sampled writes and sampling-period
	// ends is recycled through per-shard free lists instead of churning the
	// garbage collector. Race reports are identical with or without it.
	// Recommended for long-running processes with nonzero sampling rates;
	// see docs/arena.md. Ignored by backends that do not support arenas.
	Arena bool
	// Clock selects the timestamp representation of backends that support
	// one ("pacer", "fasttrack", "o1samples"): "" or "flat" is the plain
	// vector clock; "tree" mounts the last-update tree index, making
	// synchronization joins and release copies cost proportional to the
	// entries that actually changed instead of the thread count — see
	// docs/clocks.md. Race reports are identical either way (the
	// conformance matrix enforces this); only the cost model changes.
	// Overrides Core.Clock when set. Ignored by other backends.
	Clock string
	// EpochFastVarCap bounds the direct-indexed variable table behind the
	// lock-free same-epoch fast path of backends that expose one
	// (FASTTRACK): variables with identifiers at or above the cap are
	// analyzed through the locked path instead — same reports, no
	// fast-path table growth. 0 keeps the backend default (1<<22);
	// negative disables the index. Useful when variable identifiers are
	// drawn from a huge sparse space (e.g. hashed addresses) and the
	// table's worst-case memory must stay bounded.
	EpochFastVarCap int
	// DisableOwnedFastPath turns off the owned-access (CAS read-map)
	// dismissal of backends that expose one (FASTTRACK): the SmartTrack-
	// style path that claims a per-variable ownership word and performs the
	// full analysis and metadata update without the epoch or shard locks —
	// the shared-read case the same-epoch mirrors cannot serve. Reports are
	// identical either way; this is the middle column of the contention
	// benchmark.
	DisableOwnedFastPath bool
	// Serialized disables the concurrent front-end: every operation takes
	// the epoch lock exclusively and the lock-free fast path is off,
	// reproducing the classic single-mutex behavior. Useful as a
	// differential-testing reference and as a benchmark baseline. Implied
	// for backends that do not support sharded concurrency.
	Serialized bool
	// TraceSink, when set, receives every observed operation (including
	// sampling-period transitions as SampleBegin/SampleEnd events) in a
	// faithful linearization order: replaying the recorded trace through a
	// serialized detector reproduces this detector's analysis exactly.
	// Recording adds a global serialization point (the sink lock), so it
	// is meant for differential testing and replay debugging, not
	// production.
	TraceSink func(Event)
}

// Stats summarizes the detector's work, mirroring the operation classes of
// the paper's Table 3. Counters a backend does not expose are zero.
type Stats struct {
	// Races is the number of reports.
	Races uint64
	// Reads and Writes count observed data accesses.
	Reads, Writes uint64
	// SyncOps counts observed synchronization operations.
	SyncOps uint64
	// FastPathReads/Writes count accesses dismissed by an O(1) fast path:
	// the backend's own no-metadata dismissal plus the front-end's
	// lock-free dismissals (non-sampling no-metadata probes, same-epoch
	// proofs, owned-access CAS updates, burst-sampler skips).
	FastPathReads, FastPathWrites uint64
	// SlowJoins and FastJoins count O(n) versus version-skipped joins.
	SlowJoins, FastJoins uint64
	// DeepCopies and ShallowCopies count vector clock copies.
	DeepCopies, ShallowCopies uint64
	// VarsTracked is the number of variables currently holding metadata.
	VarsTracked int
	// MetadataWords approximates live metadata in 8-byte words.
	MetadataWords int
	// ArenaEnabled reports whether a metadata arena backs this detector;
	// the remaining arena counters are zero when it is false.
	ArenaEnabled bool
	// ArenaSlabsLive and ArenaSlabsFree are the arena's occupancy: slabs
	// currently acquired by the detector versus parked on free lists.
	ArenaSlabsLive, ArenaSlabsFree uint64
	// ArenaRecycles and ArenaMisses split slab acquisitions into free-list
	// hits and fresh heap allocations.
	ArenaRecycles, ArenaMisses uint64
	// ArenaTrimmed counts free slabs handed back to the garbage collector
	// at sampling-period boundaries.
	ArenaTrimmed uint64
	// ShadowHits, ShadowMisses, and ShadowEvicts count address-keyed
	// variable resolution by a mounted instrumentation front door (see
	// MountFrontDoor): lock-free resolve hits, registrations of addresses
	// seen for the first time, and explicit evictions of freed addresses.
	// Zero when no front door is mounted.
	ShadowHits, ShadowMisses, ShadowEvicts uint64
	// ShadowVars is the number of addresses the front door currently maps
	// to variable identifiers.
	ShadowVars int
	// FrontDoor reports whether an instrumentation front door is mounted
	// (see MountFrontDoor) — it distinguishes "no front door" from a
	// mounted one that has not resolved anything yet, so telemetry can
	// omit the Shadow* series entirely for plain library use.
	FrontDoor bool
}

// FrontDoorStats counts the work of an instrumentation front door mounted
// ahead of the detector: the address-keyed shadow map that resolves real
// program addresses to variable identifiers. It mirrors the Shadow*
// fields of Stats.
type FrontDoorStats struct {
	// ShadowHits counts lock-free resolutions of an already-registered
	// address.
	ShadowHits uint64
	// ShadowMisses counts first-sight registrations (a fresh VarID was
	// allocated for the address).
	ShadowMisses uint64
	// ShadowEvicts counts explicit evictions of freed addresses.
	ShadowEvicts uint64
	// ShadowVars is the number of live address mappings.
	ShadowVars int
}

// FrontDoorAccounted is implemented by instrumentation front doors (e.g.
// pacergo's runtime shim) that resolve real program state — addresses,
// goroutines — onto detector identifiers. Mounting one with MountFrontDoor
// folds its counters into Stats, the same capability-interface discipline
// backends use (detector.VarAccounted and friends).
type FrontDoorAccounted interface {
	FrontDoorStats() FrontDoorStats
}

// shardLock is a cache-line-padded mutex striping the variable shards.
type shardLock struct {
	sync.Mutex
	_ [48]byte
}

// Detector is a thread-safe race detector front-end. The mounted backend
// is PACER unless Options.Algorithm says otherwise. See the package
// comment for the concurrency architecture; the one caller obligation is
// that a single ThreadID's operations are issued sequentially.
type Detector struct {
	// back is the mounted backend; the remaining interface fields are its
	// discovered capabilities, nil when unsupported.
	back      detector.Detector
	sharded   detector.Sharded
	sampler   detector.Sampler
	burst     detector.BurstSampler
	epoch     detector.EpochFast
	owned     detector.OwnedAccess
	counted   detector.Counted
	memory    detector.MemoryAccounted
	varsAcct  detector.VarAccounted
	lifecycle detector.ThreadLifecycle
	reuser    detector.ThreadReuser
	arenaAcct detector.ArenaAccounted

	// serialized is Options.Serialized, or forced when the backend lacks
	// sharded-concurrency support: every operation then takes the epoch
	// lock exclusively.
	serialized bool
	nshards    int
	opts       Options

	// mu is the epoch lock. Exclusive: synchronization operations, period
	// rolls, registration, stats. Shared: data-access slow paths, which
	// additionally hold their variable's shard lock. The lock-free fast
	// path holds neither.
	mu    sync.RWMutex
	varMu []shardLock

	rng     *rand.Rand // guarded by mu (exclusive)
	budget  *budgetState
	periods uint64 // guarded by mu (exclusive)

	// extSampling is set once Apply ingests an explicit sampling
	// transition; the period roller then stops making its own decisions
	// (the replayed trace is authoritative). Guarded by mu (exclusive).
	extSampling bool

	// pending counts operations flushed toward the next period roll;
	// rolling gates the roll so only one goroutine performs it.
	pending atomic.Int64
	rolling atomic.Bool
	batch   uint64

	// opCells holds one padded operation counter per registered thread,
	// indexed by ThreadID. The slice is replaced (never mutated) under mu.
	opCells atomic.Pointer[[]*detector.PaddedCell]

	// fastReads/fastWrites count lock-free fast-path dismissals, sharded
	// by the variable's metadata shard.
	fastReads  *detector.ShardedCount
	fastWrites *detector.ShardedCount

	nextThread ThreadID
	nextLock   LockID
	nextVol    VolatileID
	nextVar    VarID

	// frontDoor, when mounted, contributes shadow-map counters to Stats.
	// Written once under mu; read under mu.
	frontDoor FrontDoorAccounted

	// labelMu guards the human-readable label tables (sites.go) on their
	// own small lock, so SiteLabel/Describe never contend with ingestion.
	labelMu    sync.RWMutex
	siteLabels map[SiteID]string
	varLabels  map[VarID]string
	siteFrames map[SiteID][]Frame

	// sinkMu serializes TraceSink appends; it is the innermost lock.
	sinkMu sync.Mutex
}

// Algorithms returns the mountable backend names, sorted.
func Algorithms() []string { return backends.Names() }

// New returns a detector with the given options. It panics if
// Options.Algorithm names an unregistered backend (a programming error;
// validate user input against Algorithms first).
func New(opts Options) *Detector {
	if opts.Algorithm == "" {
		opts.Algorithm = "pacer"
	}
	if opts.PeriodOps <= 0 {
		opts.PeriodOps = 4096
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.SamplingRate < 0 {
		opts.SamplingRate = 0
	}
	if opts.SamplingRate > 1 {
		opts.SamplingRate = 1
	}
	det := &Detector{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	if opts.Budget.TargetOverhead > 0 {
		det.budget = newBudgetState(opts.Budget, opts.SamplingRate)
	}
	copts := opts.Core
	if opts.Shards > 0 {
		copts.Shards = opts.Shards
	}
	if opts.Arena {
		copts.Arena = true
	}
	if opts.Clock != "" {
		copts.Clock = opts.Clock
	}
	back, err := backends.New(opts.Algorithm, func(r detector.Race) {
		if opts.OnRace != nil {
			opts.OnRace(r)
		}
	}, backends.Config{
		Seed:                 opts.Seed,
		Core:                 copts,
		EpochFastIndexCap:    opts.EpochFastVarCap,
		DisableOwnedFastPath: opts.DisableOwnedFastPath,
	})
	if err != nil {
		panic("pacer: " + err.Error())
	}
	det.back = back
	det.sharded, _ = back.(detector.Sharded)
	det.sampler, _ = back.(detector.Sampler)
	if !opts.Serialized {
		det.burst, _ = back.(detector.BurstSampler)
	}
	if det.sharded != nil && !opts.Serialized {
		det.epoch, _ = back.(detector.EpochFast)
		if !opts.DisableOwnedFastPath {
			det.owned, _ = back.(detector.OwnedAccess)
		}
	}
	det.counted, _ = back.(detector.Counted)
	det.memory, _ = back.(detector.MemoryAccounted)
	det.varsAcct, _ = back.(detector.VarAccounted)
	det.lifecycle, _ = back.(detector.ThreadLifecycle)
	det.reuser, _ = back.(detector.ThreadReuser)
	det.arenaAcct, _ = back.(detector.ArenaAccounted)
	det.serialized = opts.Serialized || det.sharded == nil
	det.nshards = 1
	if det.sharded != nil {
		det.nshards = det.sharded.Shards()
	}
	det.varMu = make([]shardLock, det.nshards)
	det.fastReads = detector.NewShardedCount(det.nshards)
	det.fastWrites = detector.NewShardedCount(det.nshards)
	cells := make([]*detector.PaddedCell, 0)
	det.opCells.Store(&cells)
	det.batch = uint64(opts.PeriodOps / 64)
	if det.batch < 1 {
		det.batch = 1
	}
	if det.batch > 64 {
		det.batch = 64
	}
	det.rollPeriodLocked()
	return det
}

// Algorithm returns the mounted backend's name.
func (p *Detector) Algorithm() string { return p.back.Name() }

// rollPeriodLocked decides whether the next period samples. Callers hold
// mu exclusively (or are the constructor). For backends without sampling
// periods, and once Apply has taken external control of sampling, only the
// period counter is reset.
func (p *Detector) rollPeriodLocked() {
	p.pending.Store(0)
	p.periods++
	if p.sampler == nil || p.extSampling {
		return
	}
	rate := p.opts.SamplingRate
	if p.budget != nil {
		p.budget.adjust()
		rate = p.budget.rate
	}
	// Trace-sink ordering: sbegin is recorded after the state flip and send
	// before it, so the window where lock-free probes still read "not
	// sampling" lies outside the recorded sampling region — a fast-path
	// no-op can never land inside it in the log.
	sample := p.rng.Float64() < rate
	if sample && !p.sampler.Sampling() {
		p.sampler.SampleBegin()
		p.record(Event{Kind: event.SampleBegin})
	} else if !sample && p.sampler.Sampling() {
		p.record(Event{Kind: event.SampleEnd})
		p.sampler.SampleEnd()
	}
}

// record appends an event to the trace sink, if one is configured.
func (p *Detector) record(e Event) {
	if p.opts.TraceSink == nil {
		return
	}
	p.sinkMu.Lock()
	p.opts.TraceSink(e)
	p.sinkMu.Unlock()
}

// enter and exit bracket analysis work for the budget controller.
func (p *Detector) enter() time.Time {
	if p.budget == nil {
		return time.Time{}
	}
	return time.Now()
}

func (p *Detector) exit(t0 time.Time) {
	if p.budget != nil {
		p.budget.inside.Add(int64(time.Since(t0)))
	}
}

// tickLocked advances the period clock by one operation. Callers hold mu
// exclusively.
func (p *Detector) tickLocked() {
	if p.pending.Add(1) >= int64(p.opts.PeriodOps) {
		p.rollPeriodLocked()
	}
}

// countOp advances the period clock from outside the epoch lock: the
// thread's padded counter absorbs the increment, and every batch-th count
// is flushed to the shared pending total. The goroutine that pushes the
// total past PeriodOps performs the roll itself.
func (p *Detector) countOp(t ThreadID) {
	add := int64(1)
	cells := *p.opCells.Load()
	if int(t) < len(cells) {
		if c := cells[t]; c != nil {
			if c.N.Add(1)%p.batch != 0 {
				return
			}
			add = int64(p.batch)
		}
	}
	if p.pending.Add(add) >= int64(p.opts.PeriodOps) {
		p.maybeRoll()
	}
}

// maybeRoll performs a period roll if one is still due once the epoch lock
// is held. The CAS gate keeps the other threads that observed the same
// threshold crossing from queueing up behind the lock.
func (p *Detector) maybeRoll() {
	if !p.rolling.CompareAndSwap(false, true) {
		return
	}
	p.mu.Lock()
	if p.pending.Load() >= int64(p.opts.PeriodOps) {
		p.rollPeriodLocked()
	}
	p.mu.Unlock()
	p.rolling.Store(false)
}

// growLocked extends the thread registry (backend slots where supported,
// and op-counter cells) to hold identifiers below n. Callers hold mu
// exclusively.
func (p *Detector) growLocked(n int) {
	if p.sharded != nil {
		p.sharded.EnsureThreadSlots(n)
	}
	cells := *p.opCells.Load()
	if len(cells) >= n {
		return
	}
	grown := make([]*detector.PaddedCell, n)
	copy(grown, cells)
	for i := len(cells); i < n; i++ {
		grown[i] = &detector.PaddedCell{}
	}
	p.opCells.Store(&grown)
}

// ensureThread registers a thread identifier that did not come from
// NewThread or Fork, so shared-mode accesses never grow backend state.
func (p *Detector) ensureThread(t ThreadID) {
	if int(t) < len(*p.opCells.Load()) {
		return
	}
	p.mu.Lock()
	p.growLocked(int(t) + 1)
	if t >= p.nextThread {
		p.nextThread = t + 1
	}
	p.mu.Unlock()
}

// NewThread registers a new root thread (one not forked from a registered
// thread, e.g. main). Threads forked by registered threads should use
// Fork so the happens-before edge is recorded.
func (p *Detector) NewThread() ThreadID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextThread
	p.nextThread++
	p.growLocked(int(id) + 1)
	return id
}

// Fork registers a new thread forked by parent and records the
// happens-before edge fork(parent, child). With Options.ReuseThreadIDs
// (and a backend that supports sound recycling), the identifier of a fully
// retired thread may be reused.
func (p *Detector) Fork(parent ThreadID) ThreadID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, reused := ThreadID(0), false
	if p.opts.ReuseThreadIDs && p.reuser != nil {
		id, reused = p.reuser.ReusableThread()
	}
	if !reused {
		id = p.nextThread
		p.nextThread++
	}
	p.growLocked(int(id) + 1)
	p.back.Fork(parent, id)
	p.record(Event{Kind: event.Fork, Thread: parent, Target: uint32(id)})
	p.tickLocked()
	return id
}

// forkTo records fork(t, u) with an explicit child identifier, for trace
// replay through Apply: recorded traces fix their thread numbering.
func (p *Detector) forkTo(t, u ThreadID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.growLocked(int(u) + 1)
	if u >= p.nextThread {
		p.nextThread = u + 1
	}
	p.back.Fork(t, u)
	p.record(Event{Kind: event.Fork, Thread: t, Target: uint32(u)})
	p.tickLocked()
}

// Join records join(t, u): t blocked until u terminated. It also marks u
// terminated, which (with Options.ReuseThreadIDs) makes its identifier a
// recycling candidate once no metadata names it.
func (p *Detector) Join(t, u ThreadID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.back.Join(t, u)
	if p.lifecycle != nil {
		p.lifecycle.ThreadExit(u)
	}
	p.record(Event{Kind: event.Join, Thread: t, Target: uint32(u)})
	p.tickLocked()
}

// NewLockID allocates a lock identifier.
func (p *Detector) NewLockID() LockID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextLock
	p.nextLock++
	return id
}

// NewVolatileID allocates a volatile identifier.
func (p *Detector) NewVolatileID() VolatileID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextVol
	p.nextVol++
	return id
}

// NewVarID allocates a data-variable identifier.
func (p *Detector) NewVarID() VarID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextVar
	p.nextVar++
	return id
}

// tryFast attempts the lock-free non-sampling dismissal of an access: if
// the sampling-state word reads "not sampling" both before and after the
// metadata presence filter reads "no metadata", then at the instant of the
// presence load the serialized detector would have done nothing for this
// operation, so it is dismissed having only bumped sharded counters.
// When a TraceSink is configured the probe runs under the sink lock, so
// the recorded position is exactly that linearization instant. Callers
// have already established that the backend is sharded (p.serialized is
// false only then).
func (p *Detector) tryFast(t ThreadID, v VarID, s SiteID, method uint32, write bool) bool {
	if p.opts.TraceSink != nil {
		p.sinkMu.Lock()
		st := p.sharded.StateWord()
		if st&1 != 0 || p.sharded.MetaPossible(v) || p.sharded.StateWord() != st {
			p.sinkMu.Unlock()
			return false
		}
		p.opts.TraceSink(accessEvent(t, v, s, method, write))
		p.sinkMu.Unlock()
	} else {
		st := p.sharded.StateWord()
		if st&1 != 0 || p.sharded.MetaPossible(v) || p.sharded.StateWord() != st {
			return false
		}
	}
	shard := p.sharded.ShardOf(v)
	if write {
		p.fastWrites.Inc(shard)
	} else {
		p.fastReads.Inc(shard)
	}
	p.countOp(t)
	return true
}

// tryBurstSkip attempts the lock-free burst-sampler dismissal of an
// access: backends exposing detector.BurstSampler (LITERACE) can consume a
// per-(method, thread) skip decision without the epoch lock, so accesses
// of a method whose sampler has gone cold never serialize on it. As with
// tryFast, the dismissal bumps only the sharded fast counters and the
// period clock; with a TraceSink configured, the decision is taken under
// the sink lock so the recorded position is its linearization instant
// (per-key decisions are interleaving-independent, so a serialized replay
// reproduces them). Disabled by Options.Serialized (p.burst stays nil).
func (p *Detector) tryBurstSkip(t ThreadID, v VarID, s SiteID, method uint32, write bool) bool {
	if p.opts.TraceSink != nil {
		p.sinkMu.Lock()
		if !p.burst.TrySkip(method, t) {
			p.sinkMu.Unlock()
			return false
		}
		p.opts.TraceSink(accessEvent(t, v, s, method, write))
		p.sinkMu.Unlock()
	} else if !p.burst.TrySkip(method, t) {
		return false
	}
	shard := 0
	if p.sharded != nil {
		shard = p.sharded.ShardOf(v)
	}
	if write {
		p.fastWrites.Inc(shard)
	} else {
		p.fastReads.Inc(shard)
	}
	p.countOp(t)
	return true
}

// tryEpochFast attempts the lock-free same-epoch dismissal: backends
// exposing detector.EpochFast (FASTTRACK) publish per-variable epoch
// mirrors that prove an access repeats the variable's current epoch, so
// the analysis — a guaranteed no-op — can be skipped without the epoch
// lock. This is how an always-on detector's dominant case scales: the
// no-metadata dismissal (tryFast) never applies to it, but the same-epoch
// dismissal is exactly FastTrack's own fast path served lock-free. As
// with the other dismissals, only the sharded fast counters and the
// period clock are bumped; with a TraceSink configured the probe runs
// under the sink lock so the recorded position is its linearization
// instant. Disabled by Options.Serialized (p.epoch stays nil).
func (p *Detector) tryEpochFast(t ThreadID, v VarID, s SiteID, method uint32, write bool) bool {
	if p.opts.TraceSink != nil {
		p.sinkMu.Lock()
		if !p.epoch.TrySameEpoch(t, v, write) {
			p.sinkMu.Unlock()
			return false
		}
		p.opts.TraceSink(accessEvent(t, v, s, method, write))
		p.sinkMu.Unlock()
	} else if !p.epoch.TrySameEpoch(t, v, write) {
		return false
	}
	shard := p.sharded.ShardOf(v)
	if write {
		p.fastWrites.Inc(shard)
	} else {
		p.fastReads.Inc(shard)
	}
	p.countOp(t)
	return true
}

// tryOwned attempts the lock-free owned-access dismissal: backends
// exposing detector.OwnedAccess (FASTTRACK) claim the variable's ownership
// word with one CompareAndSwap and, when the analysis finds no race,
// perform the full metadata update in place — serving what the same-epoch
// mirrors cannot, chiefly the shared-read case whose multi-entry read map
// publishes no mirror and would otherwise serialize every reader on the
// variable's shard lock. Unlike the other lock-free dismissals this one
// mutates backend state, so with a TraceSink configured the claim runs
// under the sink lock and the slow path holds the same lock across its
// backend call (see access), keeping the recorded order identical to the
// metadata mutation order. Disabled by Options.Serialized and
// Options.DisableOwnedFastPath (p.owned stays nil).
func (p *Detector) tryOwned(t ThreadID, v VarID, s SiteID, method uint32, write bool) bool {
	if p.opts.TraceSink != nil {
		p.sinkMu.Lock()
		if !p.owned.TryOwnedAccess(t, v, s, write) {
			p.sinkMu.Unlock()
			return false
		}
		p.opts.TraceSink(accessEvent(t, v, s, method, write))
		p.sinkMu.Unlock()
	} else if !p.owned.TryOwnedAccess(t, v, s, write) {
		return false
	}
	shard := p.sharded.ShardOf(v)
	if write {
		p.fastWrites.Inc(shard)
	} else {
		p.fastReads.Inc(shard)
	}
	p.countOp(t)
	return true
}

func accessEvent(t ThreadID, v VarID, s SiteID, method uint32, write bool) Event {
	k := event.Read
	if write {
		k = event.Write
	}
	return Event{Kind: k, Thread: t, Target: uint32(v), Site: s, Method: method}
}

// samplingLocked reports the backend's sampling state under at least a
// shared hold of mu (transitions take mu exclusively). Backends without
// sampling periods analyze everything, i.e. behave as always sampling.
func (p *Detector) samplingLocked() bool {
	return p.sampler == nil || p.sampler.Sampling()
}

// access funnels Read and Write: lock-free fast path first, then the
// sharded slow path under a shared epoch-lock hold plus the variable's
// shard lock (or the exclusive epoch lock when serialized). Trace-sink
// appends for non-sampling operations happen before the analysis (they can
// only discard metadata) and for sampling operations after it (they can
// only create metadata), which keeps the recorded order consistent with
// the lock-free probes.
func (p *Detector) access(t ThreadID, v VarID, s SiteID, method uint32, write bool) {
	if !p.serialized && p.tryFast(t, v, s, method, write) {
		return
	}
	if p.epoch != nil && p.tryEpochFast(t, v, s, method, write) {
		return
	}
	if p.owned != nil && p.tryOwned(t, v, s, method, write) {
		return
	}
	if p.burst != nil && p.tryBurstSkip(t, v, s, method, write) {
		return
	}
	p.ensureThread(t)
	if p.serialized {
		p.mu.Lock()
	} else {
		p.mu.RLock()
	}
	sh := 0
	if p.sharded != nil {
		sh = p.sharded.ShardOf(v)
	}
	p.varMu[sh].Lock()
	sampling := p.samplingLocked()
	if !sampling {
		p.record(accessEvent(t, v, s, method, write))
	}
	t0 := p.enter()
	// With an owned-access backend mounted, lock-free dismissals can mutate
	// metadata under the sink lock; holding the same lock across this
	// backend call keeps every recorded sampled access at exactly the
	// instant its metadata effect takes place, so the recorded order stays
	// a faithful linearization. (Lock order sinkMu → ownership word matches
	// the owned path's claim order; sink mode is a testing configuration,
	// so the lost slow-path parallelism is acceptable.)
	sink := sampling && p.opts.TraceSink != nil
	if sink {
		p.sinkMu.Lock()
	}
	if write {
		p.back.Write(t, v, s, method)
	} else {
		p.back.Read(t, v, s, method)
	}
	if sink {
		p.opts.TraceSink(accessEvent(t, v, s, method, write))
		p.sinkMu.Unlock()
	}
	p.exit(t0)
	p.varMu[sh].Unlock()
	if p.serialized {
		p.tickLocked()
		p.mu.Unlock()
		return
	}
	p.mu.RUnlock()
	p.countOp(t)
}

// Read observes thread t reading variable v at site s.
func (p *Detector) Read(t ThreadID, v VarID, s SiteID) {
	p.access(t, v, s, 0, false)
}

// Write observes thread t writing variable v at site s.
func (p *Detector) Write(t ThreadID, v VarID, s SiteID) {
	p.access(t, v, s, 0, true)
}

// syncOp funnels the four lock/volatile operations, which serialize on the
// epoch lock (they mutate thread clocks, which accesses read in parallel).
func (p *Detector) syncOp(run func(), e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t0 := p.enter()
	run()
	p.exit(t0)
	p.record(e)
	p.tickLocked()
}

// Acquire observes thread t acquiring lock m. Call it after the real lock
// is acquired.
func (p *Detector) Acquire(t ThreadID, m LockID) {
	p.syncOp(func() { p.back.Acquire(t, m) }, Event{Kind: event.Acquire, Thread: t, Target: uint32(m)})
}

// Release observes thread t releasing lock m. Call it before the real lock
// is released.
func (p *Detector) Release(t ThreadID, m LockID) {
	p.syncOp(func() { p.back.Release(t, m) }, Event{Kind: event.Release, Thread: t, Target: uint32(m)})
}

// VolRead observes thread t reading volatile vx (e.g. an atomic load).
func (p *Detector) VolRead(t ThreadID, vx VolatileID) {
	p.syncOp(func() { p.back.VolRead(t, vx) }, Event{Kind: event.VolRead, Thread: t, Target: uint32(vx)})
}

// VolWrite observes thread t writing volatile vx (e.g. an atomic store).
func (p *Detector) VolWrite(t ThreadID, vx VolatileID) {
	p.syncOp(func() { p.back.VolWrite(t, vx) }, Event{Kind: event.VolWrite, Thread: t, Target: uint32(vx)})
}

// applySampling forces the backend's sampling state from a replayed
// transition and hands sampling control to the trace: the period roller
// stops making its own decisions for the rest of this detector's life.
func (p *Detector) applySampling(begin bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.extSampling = true
	if p.sampler == nil {
		return
	}
	if begin {
		p.sampler.SampleBegin()
		p.record(Event{Kind: event.SampleBegin})
	} else {
		p.record(Event{Kind: event.SampleEnd})
		p.sampler.SampleEnd()
	}
}

// Apply ingests one recorded event through the same front-end paths the
// direct methods use, so replaying a trace exercises exactly the code a
// live application exercises. Thread identifiers are taken from the event
// (registered on first use — Fork events keep their recorded child id),
// and access events carry their recorded Method through to backends that
// sample per method (LITERACE). SampleBegin/SampleEnd events force the
// backend's sampling state and switch the detector to external sampling
// control; traces without them (e.g. racereplay recordings) are sampled by
// the detector's own seeded period roller, so replays are reproducible
// run-to-run for a fixed Options.Seed.
func (p *Detector) Apply(e Event) {
	switch e.Kind {
	case event.Read:
		p.access(e.Thread, VarID(e.Target), e.Site, e.Method, false)
	case event.Write:
		p.access(e.Thread, VarID(e.Target), e.Site, e.Method, true)
	case event.Acquire:
		p.Acquire(e.Thread, LockID(e.Target))
	case event.Release:
		p.Release(e.Thread, LockID(e.Target))
	case event.Fork:
		p.forkTo(e.Thread, ThreadID(e.Target))
	case event.Join:
		p.Join(e.Thread, ThreadID(e.Target))
	case event.VolRead:
		p.VolRead(e.Thread, VolatileID(e.Target))
	case event.VolWrite:
		p.VolWrite(e.Thread, VolatileID(e.Target))
	case event.SampleBegin:
		p.applySampling(true)
	case event.SampleEnd:
		p.applySampling(false)
	}
}

// Sampling reports whether the detector is currently in a sampling period.
// It is lock-free for the default backend. Backends without sampling
// periods analyze every operation, so Sampling reports true for them.
func (p *Detector) Sampling() bool {
	if p.sampler == nil {
		return true
	}
	if p.sharded != nil {
		return p.sharded.StateWord()&1 == 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sampler.Sampling()
}

// ShardCount returns the number of variable-metadata shards in use (the
// Options.Shards knob after rounding), or 1 for backends driven
// serialized.
func (p *Detector) ShardCount() int { return p.nshards }

// MountFrontDoor registers an instrumentation front door whose counters
// Stats should fold in (the Shadow* fields). At most one front door is
// mounted; a second call replaces the first.
func (p *Detector) MountFrontDoor(f FrontDoorAccounted) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frontDoor = f
}

// Stats returns a snapshot of the detector's work counters. It takes the
// epoch lock exclusively, so in-flight slow-path operations complete
// first; lock-free fast-path dismissals that have not yet happened-before
// this call may be missing from the snapshot. Counters the mounted backend
// does not expose are zero.
func (p *Detector) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s Stats
	if p.counted != nil {
		c := p.counted.Stats()
		fr, fw := p.fastReads.Sum(), p.fastWrites.Sum()
		s = Stats{
			Races:          c.Races,
			Reads:          c.TotalReads() + fr,
			Writes:         c.TotalWrites() + fw,
			SyncOps:        c.TotalSyncOps(),
			FastPathReads:  c.ReadFast[0] + c.ReadFast[1] + fr,
			FastPathWrites: c.WriteFast[0] + c.WriteFast[1] + fw,
			SlowJoins:      c.SlowJoins[0] + c.SlowJoins[1],
			FastJoins:      c.FastJoins[0] + c.FastJoins[1],
			DeepCopies:     c.DeepCopies[0] + c.DeepCopies[1],
			ShallowCopies:  c.ShallowCopies[0] + c.ShallowCopies[1],
		}
	}
	if p.varsAcct != nil {
		s.VarsTracked = p.varsAcct.VarsTracked()
	}
	if p.memory != nil {
		s.MetadataWords = p.memory.MetadataWords()
	}
	if p.arenaAcct != nil {
		if a, ok := p.arenaAcct.ArenaStats(); ok {
			s.ArenaEnabled = true
			s.ArenaSlabsLive = a.SlabsLive
			s.ArenaSlabsFree = a.SlabsFree
			s.ArenaRecycles = a.Recycles
			s.ArenaMisses = a.Misses
			s.ArenaTrimmed = a.Trimmed
		}
	}
	if p.frontDoor != nil {
		fd := p.frontDoor.FrontDoorStats()
		s.FrontDoor = true
		s.ShadowHits = fd.ShadowHits
		s.ShadowMisses = fd.ShadowMisses
		s.ShadowEvicts = fd.ShadowEvicts
		s.ShadowVars = fd.ShadowVars
	}
	return s
}
