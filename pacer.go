// Package pacer is a sampling data-race detector for concurrent programs,
// implementing Bond, Coons, and McKinley's PACER algorithm (PLDI 2010).
//
// PACER tracks the happens-before relationship with the FastTrack
// algorithm during global sampling periods and almost no work outside
// them, giving a proportionality guarantee: every race is detected with
// probability equal to the sampling rate, at time and space overheads that
// also scale with the sampling rate. It is precise — every report is a
// true race.
//
// Applications register threads and synchronization objects and notify the
// detector at reads, writes, lock operations, volatile accesses, forks,
// and joins:
//
//	d := pacer.New(pacer.Options{SamplingRate: 0.03, OnRace: report})
//	t := d.NewThread()
//	u := d.Fork(t)
//	d.Write(t, account, siteDeposit)
//	d.Read(u, account, siteAudit) // 3% chance this race is reported
//
// The convenience wrappers Mutex and Shared instrument common patterns
// automatically. For simulation-based evaluation and the paper's
// experiments, see cmd/pacerbench and the internal packages.
//
// # Concurrency
//
// All methods may be called from any goroutine, with one inherent rule:
// operations for a single ThreadID must not be issued concurrently with
// each other (a logical thread is sequential by definition).
//
// The front-end is built so the cost of ingestion scales with the
// sampling rate, matching the algorithm it feeds:
//
//   - Outside sampling periods, a Read or Write of a variable holding no
//     metadata returns on a lock-free fast path: two atomic loads (the
//     published sampling-state word and a metadata presence filter) plus
//     sharded atomic counters. No mutex is touched.
//   - During sampling periods, variable metadata is striped across shards
//     (hash of VarID); accesses to variables in distinct shards proceed in
//     parallel, each under its shard lock plus a shared (reader) hold on
//     the epoch lock.
//   - Synchronization operations and sampling-period transitions take the
//     epoch lock exclusively, freezing all accesses, so every execution is
//     equivalent to some serialized interleaving of the observed
//     operations — the detector never reports a race that a fully
//     serialized detector could not report.
//   - Each registered thread owns a cache-line-padded operation counter;
//     counts are flushed to the period roller in batches, so the sampling
//     clock advances without a shared contended word.
package pacer

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// ThreadID identifies a registered thread.
type ThreadID = vclock.Thread

// VarID identifies a shared data variable.
type VarID = event.Var

// LockID identifies a lock.
type LockID = event.Lock

// VolatileID identifies a volatile variable.
type VolatileID = event.Volatile

// SiteID identifies a static program location; races are reported as site
// pairs.
type SiteID = event.Site

// Event is one observed operation, as recorded by Options.TraceSink. The
// sequence of events delivered to a sink is a faithful linearization:
// replaying it through a serialized detector reproduces the analysis this
// detector performed.
type Event = event.Event

// RaceKind classifies a race by its two accesses, first access first.
type RaceKind = detector.RaceKind

// Race kinds.
const (
	WriteWrite = detector.WriteWrite
	WriteRead  = detector.WriteRead
	ReadWrite  = detector.ReadWrite
)

// Race is a detected data race. The first access is the earlier one (the
// one whose metadata was recorded during a sampling period).
type Race = detector.Race

// Options configure a Detector.
type Options struct {
	// SamplingRate is the global sampling rate r in [0, 1]. Every race is
	// detected with probability r; time and space overheads scale with r.
	// 0.01-0.03 is the paper's deployment recommendation.
	SamplingRate float64
	// PeriodOps is the number of observed operations per sampling-decision
	// period. The paper toggles sampling at garbage collections; without a
	// GC to hook, this library uses fixed-length operation periods, which
	// need no bias correction. Defaults to 4096. Under concurrent use,
	// period boundaries are approximate: per-thread operation counts are
	// flushed to the roller in small batches, so a period may run over by
	// up to one batch per active thread.
	PeriodOps int
	// OnRace receives race reports. Accesses to variables in distinct
	// shards analyze in parallel, so OnRace may be invoked from multiple
	// goroutines concurrently; synchronize inside the callback (or use an
	// Aggregator, which is already safe). Keep it fast — it runs with the
	// reporting variable's shard lock held.
	OnRace func(Race)
	// Seed makes period selection deterministic; 0 seeds from 1. (With
	// concurrent callers the roll sequence is still deterministic, but
	// which operations land in which period depends on scheduling.)
	Seed int64
	// Core tunes the underlying algorithm; the zero value is the full
	// published algorithm. Mainly for ablation studies.
	Core core.Options
	// Budget, when TargetOverhead is nonzero, replaces the fixed
	// SamplingRate with an adaptive controller that keeps the measured
	// analysis overhead near the target (see BudgetOptions).
	Budget BudgetOptions
	// ReuseThreadIDs recycles the identifiers of dead, joined threads
	// whose metadata has been fully discarded, keeping vector clocks
	// bounded by the peak live thread count instead of the total thread
	// count — the accordion-clocks improvement the paper recommends for
	// production use.
	ReuseThreadIDs bool
	// Shards is the number of variable-metadata shards (rounded up to a
	// power of two; default 64). More shards admit more parallelism during
	// sampling periods and a finer-grained fast-path presence filter, at a
	// small fixed memory cost per detector. Overrides Core.Shards when
	// nonzero.
	Shards int
	// Serialized disables the concurrent front-end: every operation takes
	// the epoch lock exclusively and the lock-free fast path is off,
	// reproducing the classic single-mutex behavior. Useful as a
	// differential-testing reference and as a benchmark baseline.
	Serialized bool
	// TraceSink, when set, receives every observed operation (including
	// sampling-period transitions as SampleBegin/SampleEnd events) in a
	// faithful linearization order: replaying the recorded trace through a
	// serialized detector reproduces this detector's analysis exactly.
	// Recording adds a global serialization point (the sink lock), so it
	// is meant for differential testing and replay debugging, not
	// production.
	TraceSink func(Event)
}

// Stats summarizes the detector's work, mirroring the operation classes of
// the paper's Table 3.
type Stats struct {
	// Races is the number of reports.
	Races uint64
	// Reads and Writes count observed data accesses.
	Reads, Writes uint64
	// SyncOps counts observed synchronization operations.
	SyncOps uint64
	// FastPathReads/Writes count accesses dismissed by the O(1) no-metadata
	// fast path (including the front-end's lock-free dismissals).
	FastPathReads, FastPathWrites uint64
	// SlowJoins and FastJoins count O(n) versus version-skipped joins.
	SlowJoins, FastJoins uint64
	// DeepCopies and ShallowCopies count vector clock copies.
	DeepCopies, ShallowCopies uint64
	// VarsTracked is the number of variables currently holding metadata.
	VarsTracked int
	// MetadataWords approximates live metadata in 8-byte words.
	MetadataWords int
}

// shardLock is a cache-line-padded mutex striping the variable shards.
type shardLock struct {
	sync.Mutex
	_ [48]byte
}

// Detector is a thread-safe PACER race detector. See the package comment
// for the concurrency architecture; the one caller obligation is that a
// single ThreadID's operations are issued sequentially.
type Detector struct {
	d    *core.Detector
	opts Options

	// mu is the epoch lock. Exclusive: synchronization operations, period
	// rolls, registration, stats. Shared: data-access slow paths, which
	// additionally hold their variable's shard lock. The lock-free fast
	// path holds neither.
	mu    sync.RWMutex
	varMu []shardLock

	rng     *rand.Rand // guarded by mu (exclusive)
	budget  *budgetState
	periods uint64 // guarded by mu (exclusive)

	// pending counts operations flushed toward the next period roll;
	// rolling gates the roll so only one goroutine performs it.
	pending atomic.Int64
	rolling atomic.Bool
	batch   uint64

	// opCells holds one padded operation counter per registered thread,
	// indexed by ThreadID. The slice is replaced (never mutated) under mu.
	opCells atomic.Pointer[[]*detector.PaddedCell]

	// fastReads/fastWrites count lock-free fast-path dismissals, sharded
	// by the variable's metadata shard.
	fastReads  *detector.ShardedCount
	fastWrites *detector.ShardedCount

	nextThread ThreadID
	nextLock   LockID
	nextVol    VolatileID
	nextVar    VarID

	siteLabels map[SiteID]string
	varLabels  map[VarID]string

	// sinkMu serializes TraceSink appends; it is the innermost lock.
	sinkMu sync.Mutex
}

// New returns a detector with the given options.
func New(opts Options) *Detector {
	if opts.PeriodOps <= 0 {
		opts.PeriodOps = 4096
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.SamplingRate < 0 {
		opts.SamplingRate = 0
	}
	if opts.SamplingRate > 1 {
		opts.SamplingRate = 1
	}
	det := &Detector{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	if opts.Budget.TargetOverhead > 0 {
		det.budget = newBudgetState(opts.Budget, opts.SamplingRate)
	}
	copts := opts.Core
	if opts.Shards > 0 {
		copts.Shards = opts.Shards
	}
	det.d = core.NewWithOptions(func(r detector.Race) {
		if opts.OnRace != nil {
			opts.OnRace(r)
		}
	}, copts)
	det.varMu = make([]shardLock, det.d.Shards())
	det.fastReads = detector.NewShardedCount(det.d.Shards())
	det.fastWrites = detector.NewShardedCount(det.d.Shards())
	cells := make([]*detector.PaddedCell, 0)
	det.opCells.Store(&cells)
	det.batch = uint64(opts.PeriodOps / 64)
	if det.batch < 1 {
		det.batch = 1
	}
	if det.batch > 64 {
		det.batch = 64
	}
	det.rollPeriodLocked()
	return det
}

// rollPeriodLocked decides whether the next period samples. Callers hold
// mu exclusively (or are the constructor).
func (p *Detector) rollPeriodLocked() {
	p.pending.Store(0)
	p.periods++
	rate := p.opts.SamplingRate
	if p.budget != nil {
		p.budget.adjust()
		rate = p.budget.rate
	}
	// Trace-sink ordering: sbegin is recorded after the state flip and send
	// before it, so the window where lock-free probes still read "not
	// sampling" lies outside the recorded sampling region — a fast-path
	// no-op can never land inside it in the log.
	sample := p.rng.Float64() < rate
	if sample && !p.d.Sampling() {
		p.d.SampleBegin()
		p.record(Event{Kind: event.SampleBegin})
	} else if !sample && p.d.Sampling() {
		p.record(Event{Kind: event.SampleEnd})
		p.d.SampleEnd()
	}
}

// record appends an event to the trace sink, if one is configured.
func (p *Detector) record(e Event) {
	if p.opts.TraceSink == nil {
		return
	}
	p.sinkMu.Lock()
	p.opts.TraceSink(e)
	p.sinkMu.Unlock()
}

// enter and exit bracket analysis work for the budget controller.
func (p *Detector) enter() time.Time {
	if p.budget == nil {
		return time.Time{}
	}
	return time.Now()
}

func (p *Detector) exit(t0 time.Time) {
	if p.budget != nil {
		p.budget.inside.Add(int64(time.Since(t0)))
	}
}

// tickLocked advances the period clock by one operation. Callers hold mu
// exclusively.
func (p *Detector) tickLocked() {
	if p.pending.Add(1) >= int64(p.opts.PeriodOps) {
		p.rollPeriodLocked()
	}
}

// countOp advances the period clock from outside the epoch lock: the
// thread's padded counter absorbs the increment, and every batch-th count
// is flushed to the shared pending total. The goroutine that pushes the
// total past PeriodOps performs the roll itself.
func (p *Detector) countOp(t ThreadID) {
	add := int64(1)
	cells := *p.opCells.Load()
	if int(t) < len(cells) {
		if c := cells[t]; c != nil {
			if c.N.Add(1)%p.batch != 0 {
				return
			}
			add = int64(p.batch)
		}
	}
	if p.pending.Add(add) >= int64(p.opts.PeriodOps) {
		p.maybeRoll()
	}
}

// maybeRoll performs a period roll if one is still due once the epoch lock
// is held. The CAS gate keeps the other threads that observed the same
// threshold crossing from queueing up behind the lock.
func (p *Detector) maybeRoll() {
	if !p.rolling.CompareAndSwap(false, true) {
		return
	}
	p.mu.Lock()
	if p.pending.Load() >= int64(p.opts.PeriodOps) {
		p.rollPeriodLocked()
	}
	p.mu.Unlock()
	p.rolling.Store(false)
}

// growLocked extends the thread registry (core slots and op-counter cells)
// to hold identifiers below n. Callers hold mu exclusively.
func (p *Detector) growLocked(n int) {
	p.d.EnsureThreadSlots(n)
	cells := *p.opCells.Load()
	if len(cells) >= n {
		return
	}
	grown := make([]*detector.PaddedCell, n)
	copy(grown, cells)
	for i := len(cells); i < n; i++ {
		grown[i] = &detector.PaddedCell{}
	}
	p.opCells.Store(&grown)
}

// ensureThread registers a thread identifier that did not come from
// NewThread or Fork, so shared-mode accesses never grow core state.
func (p *Detector) ensureThread(t ThreadID) {
	if int(t) < len(*p.opCells.Load()) {
		return
	}
	p.mu.Lock()
	p.growLocked(int(t) + 1)
	p.mu.Unlock()
}

// NewThread registers a new root thread (one not forked from a registered
// thread, e.g. main). Threads forked by registered threads should use
// Fork so the happens-before edge is recorded.
func (p *Detector) NewThread() ThreadID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextThread
	p.nextThread++
	p.growLocked(int(id) + 1)
	return id
}

// Fork registers a new thread forked by parent and records the
// happens-before edge fork(parent, child). With Options.ReuseThreadIDs,
// the identifier of a fully retired thread may be recycled.
func (p *Detector) Fork(parent ThreadID) ThreadID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, reused := ThreadID(0), false
	if p.opts.ReuseThreadIDs {
		id, reused = p.d.ReusableThread()
	}
	if !reused {
		id = p.nextThread
		p.nextThread++
	}
	p.growLocked(int(id) + 1)
	p.d.Fork(parent, id)
	p.record(Event{Kind: event.Fork, Thread: parent, Target: uint32(id)})
	p.tickLocked()
	return id
}

// Join records join(t, u): t blocked until u terminated. It also marks u
// terminated, which (with Options.ReuseThreadIDs) makes its identifier a
// recycling candidate once no metadata names it.
func (p *Detector) Join(t, u ThreadID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.d.Join(t, u)
	p.d.ThreadExit(u)
	p.record(Event{Kind: event.Join, Thread: t, Target: uint32(u)})
	p.tickLocked()
}

// NewLockID allocates a lock identifier.
func (p *Detector) NewLockID() LockID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextLock
	p.nextLock++
	return id
}

// NewVolatileID allocates a volatile identifier.
func (p *Detector) NewVolatileID() VolatileID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextVol
	p.nextVol++
	return id
}

// NewVarID allocates a data-variable identifier.
func (p *Detector) NewVarID() VarID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextVar
	p.nextVar++
	return id
}

// tryFast attempts the lock-free non-sampling dismissal of an access: if
// the sampling-state word reads "not sampling" both before and after the
// metadata presence filter reads "no metadata", then at the instant of the
// presence load the serialized detector would have done nothing for this
// operation, so it is dismissed having only bumped sharded counters.
// When a TraceSink is configured the probe runs under the sink lock, so
// the recorded position is exactly that linearization instant.
func (p *Detector) tryFast(t ThreadID, v VarID, s SiteID, write bool) bool {
	if p.opts.TraceSink != nil {
		p.sinkMu.Lock()
		st := p.d.StateWord()
		if st&1 != 0 || p.d.MetaPossible(v) || p.d.StateWord() != st {
			p.sinkMu.Unlock()
			return false
		}
		p.opts.TraceSink(accessEvent(t, v, s, write))
		p.sinkMu.Unlock()
	} else {
		st := p.d.StateWord()
		if st&1 != 0 || p.d.MetaPossible(v) || p.d.StateWord() != st {
			return false
		}
	}
	shard := p.d.ShardOf(v)
	if write {
		p.fastWrites.Inc(shard)
	} else {
		p.fastReads.Inc(shard)
	}
	p.countOp(t)
	return true
}

func accessEvent(t ThreadID, v VarID, s SiteID, write bool) Event {
	k := event.Read
	if write {
		k = event.Write
	}
	return Event{Kind: k, Thread: t, Target: uint32(v), Site: s}
}

// access funnels Read and Write: lock-free fast path first, then the
// sharded slow path under a shared epoch-lock hold plus the variable's
// shard lock. Trace-sink appends for non-sampling operations happen before
// the analysis (they can only discard metadata) and for sampling
// operations after it (they can only create metadata), which keeps the
// recorded order consistent with the lock-free probes.
func (p *Detector) access(t ThreadID, v VarID, s SiteID, write bool) {
	if !p.opts.Serialized && p.tryFast(t, v, s, write) {
		return
	}
	p.ensureThread(t)
	if p.opts.Serialized {
		p.mu.Lock()
	} else {
		p.mu.RLock()
	}
	sh := p.d.ShardOf(v)
	p.varMu[sh].Lock()
	sampling := p.d.Sampling()
	if !sampling {
		p.record(accessEvent(t, v, s, write))
	}
	t0 := p.enter()
	if write {
		p.d.Write(t, v, s, 0)
	} else {
		p.d.Read(t, v, s, 0)
	}
	p.exit(t0)
	if sampling {
		p.record(accessEvent(t, v, s, write))
	}
	p.varMu[sh].Unlock()
	if p.opts.Serialized {
		p.tickLocked()
		p.mu.Unlock()
		return
	}
	p.mu.RUnlock()
	p.countOp(t)
}

// Read observes thread t reading variable v at site s.
func (p *Detector) Read(t ThreadID, v VarID, s SiteID) {
	p.access(t, v, s, false)
}

// Write observes thread t writing variable v at site s.
func (p *Detector) Write(t ThreadID, v VarID, s SiteID) {
	p.access(t, v, s, true)
}

// syncOp funnels the four lock/volatile operations, which serialize on the
// epoch lock (they mutate thread clocks, which accesses read in parallel).
func (p *Detector) syncOp(run func(), e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t0 := p.enter()
	run()
	p.exit(t0)
	p.record(e)
	p.tickLocked()
}

// Acquire observes thread t acquiring lock m. Call it after the real lock
// is acquired.
func (p *Detector) Acquire(t ThreadID, m LockID) {
	p.syncOp(func() { p.d.Acquire(t, m) }, Event{Kind: event.Acquire, Thread: t, Target: uint32(m)})
}

// Release observes thread t releasing lock m. Call it before the real lock
// is released.
func (p *Detector) Release(t ThreadID, m LockID) {
	p.syncOp(func() { p.d.Release(t, m) }, Event{Kind: event.Release, Thread: t, Target: uint32(m)})
}

// VolRead observes thread t reading volatile vx (e.g. an atomic load).
func (p *Detector) VolRead(t ThreadID, vx VolatileID) {
	p.syncOp(func() { p.d.VolRead(t, vx) }, Event{Kind: event.VolRead, Thread: t, Target: uint32(vx)})
}

// VolWrite observes thread t writing volatile vx (e.g. an atomic store).
func (p *Detector) VolWrite(t ThreadID, vx VolatileID) {
	p.syncOp(func() { p.d.VolWrite(t, vx) }, Event{Kind: event.VolWrite, Thread: t, Target: uint32(vx)})
}

// Sampling reports whether the detector is currently in a sampling period.
// It is lock-free.
func (p *Detector) Sampling() bool {
	return p.d.StateWord()&1 == 1
}

// ShardCount returns the number of variable-metadata shards in use (the
// Options.Shards knob after rounding).
func (p *Detector) ShardCount() int { return p.d.Shards() }

// Stats returns a snapshot of the detector's work counters. It takes the
// epoch lock exclusively, so in-flight slow-path operations complete
// first; lock-free fast-path dismissals that have not yet happened-before
// this call may be missing from the snapshot.
func (p *Detector) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.d.Stats()
	fr, fw := p.fastReads.Sum(), p.fastWrites.Sum()
	return Stats{
		Races:          c.Races,
		Reads:          c.TotalReads() + fr,
		Writes:         c.TotalWrites() + fw,
		SyncOps:        c.TotalSyncOps(),
		FastPathReads:  c.ReadFast[0] + c.ReadFast[1] + fr,
		FastPathWrites: c.WriteFast[0] + c.WriteFast[1] + fw,
		SlowJoins:      c.SlowJoins[0] + c.SlowJoins[1],
		FastJoins:      c.FastJoins[0] + c.FastJoins[1],
		DeepCopies:     c.DeepCopies[0] + c.DeepCopies[1],
		ShallowCopies:  c.ShallowCopies[0] + c.ShallowCopies[1],
		VarsTracked:    p.d.VarsTracked(),
		MetadataWords:  p.d.MetadataWords(),
	}
}
