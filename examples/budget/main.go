// budget: the QVM-style deployment mode — instead of picking a sampling
// rate, give the detector an overhead budget and let it steer the rate
// itself. PACER's proportionality guarantee makes the trade transparent:
// whatever rate the controller settles on *is* the per-race detection
// probability, which the detector reports via CurrentRate.
package main

import (
	"fmt"
	"sync"

	"pacer"
)

// crunch is the application's real work between instrumented operations.
func crunch(seed uint64, rounds int) uint64 {
	h := seed
	for i := 0; i < rounds; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
	}
	return h
}

func run(budget float64) (finalRate, overhead float64, reports int) {
	var mu sync.Mutex
	d := pacer.New(pacer.Options{
		SamplingRate: 0.5, // starting point; the controller takes over
		PeriodOps:    1024,
		Budget: pacer.BudgetOptions{
			TargetOverhead: budget,
			MinRate:        0.001,
		},
		OnRace: func(pacer.Race) {
			mu.Lock()
			reports++
			mu.Unlock()
		},
	})

	main := d.NewThread()
	// Each worker owns a shard: its counter and lock. Workers never
	// synchronize with each other, so the cross-worker accesses to the
	// shared cache variable below are genuinely racy for the whole run.
	locks := [2]*pacer.Mutex{d.NewMutex(), d.NewMutex()}
	counters := [2]*pacer.Shared[uint64]{pacer.NewShared(d, uint64(0)), pacer.NewShared(d, uint64(0))}
	racy := d.NewVarID() // the shared cache nobody locks — the planted bug

	var wg sync.WaitGroup
	sink := uint64(0)
	for w := 0; w < 2; w++ {
		tid := d.Fork(main)
		wg.Add(1)
		go func(tid pacer.ThreadID, w int) {
			defer wg.Done()
			local := uint64(w + 1)
			for i := 0; i < 25_000; i++ {
				local = crunch(local, 600) // the app's actual computation
				locks[w].Lock(tid)
				counters[w].Update(tid, 1, func(x uint64) uint64 { return x + local })
				locks[w].Unlock(tid)
				if i%43 == 0 {
					d.Write(tid, racy, pacer.SiteID(100+w)) // RACY
				}
			}
			mu.Lock()
			sink ^= local
			mu.Unlock()
		}(tid, w)
	}
	wg.Wait()
	_ = sink
	mu.Lock()
	defer mu.Unlock()
	return d.CurrentRate(), d.ObservedOverhead(), reports
}

func main() {
	fmt.Println("Same buggy application under three overhead budgets:")
	fmt.Printf("%10s %14s %18s %10s\n", "budget", "settled rate", "observed overhead", "reports")
	for _, budget := range []float64{0.005, 0.03, 0.20} {
		rate, ov, reports := run(budget)
		fmt.Printf("%9.1f%% %13.2f%% %17.2f%% %10d\n", budget*100, rate*100, ov*100, reports)
	}
	fmt.Println("\nA bigger budget buys a higher settled rate, which — by PACER's")
	fmt.Println("guarantee — is a proportionally higher chance of catching the bug.")
}
