// fleet: the deployment scenario PACER was designed for (Sections 1 and
// 3): many deployed instances each run the detector at a very low sampling
// rate, and a central collector aggregates their reports, as in
// distributed-debugging frameworks like Cooperative Bug Isolation.
//
// The simulated application has several distinct races with different
// occurrence frequencies — including one that manifests in only ~5% of
// sessions. No single cheap run is likely to catch anything, but because
// PACER detects each race with probability (occurrence × sampling rate),
// the fleet as a whole finds every race with probability approaching
// 1 - (1 - o·r)^instances.
//
// Unlike the in-process sketch this example used to be, the reports here
// really leave the box: each host wraps its aggregator in a
// fleet.Reporter that pushes gzip JSON snapshots over loopback HTTP to a
// collector (the same internal/fleet.Collector that cmd/pacerd mounts as
// a daemon), and the triage table below is read back from the collector's
// /races endpoint.
package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"pacer"
	"pacer/internal/fleet"
)

// bug describes one planted race: the session executes its racy pair with
// probability occur.
type bug struct {
	name  string
	occur float64
	site  pacer.SiteID
}

var bugs = []bug{
	{"stale-config-read", 1.00, 100},
	{"double-checked-init", 0.60, 200},
	{"shutdown-flag", 0.25, 300},
	{"rare-resize-race", 0.05, 400},
}

// session simulates one deployed instance: background synchronized work
// plus whichever racy pairs this session happens to execute.
func session(rate float64, seed int64, report func(pacer.Race)) {
	// The occurrence RNG and the detector's period RNG must be independent
	// streams, or "bug occurs this session" would correlate with "period
	// sampled this session".
	rng := rand.New(rand.NewSource(seed))
	d := pacer.New(pacer.Options{
		SamplingRate: rate,
		PeriodOps:    64,
		Seed:         seed*2654435761 + 97,
		OnRace:       report,
	})
	main := d.NewThread()
	mu := d.NewMutex()
	work := pacer.NewShared(d, 0)
	vars := make([]pacer.VarID, len(bugs))
	for i := range bugs {
		vars[i] = d.NewVarID()
	}

	a, b := d.Fork(main), d.Fork(main)
	occurs := make([]bool, len(bugs))
	for i, bg := range bugs {
		occurs[i] = rng.Float64() < bg.occur
	}
	// Thread a: synchronized background work, then its half of each racy
	// pair (writes).
	for i := 0; i < 60; i++ {
		mu.Lock(a)
		work.Update(a, 1, func(x int) int { return x + 1 })
		mu.Unlock(a)
	}
	for i, bg := range bugs {
		if occurs[i] {
			d.Write(a, vars[i], bg.site)
		}
	}
	// Thread b: more background work, then the consuming halves (reads).
	for i := 0; i < 60; i++ {
		mu.Lock(b)
		work.Update(b, 2, func(x int) int { return x + 1 })
		mu.Unlock(b)
	}
	for i, bg := range bugs {
		if occurs[i] {
			d.Read(b, vars[i], bg.site+1)
		}
	}
	d.Join(main, a)
	d.Join(main, b)
}

func main() {
	const rate = 0.02
	const hosts = 8
	const sessionsPerHost = 500
	const instances = hosts * sessionsPerHost

	// The collector — the exact handler cmd/pacerd serves — listens on a
	// loopback socket, standing in for a central race-triage service.
	col := fleet.NewCollector(fleet.CollectorOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: col.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Each host runs its share of the sessions, funneling reports into a
	// host-local aggregator whose fleet.Reporter pushes snapshots to the
	// collector in the background. Hosts run concurrently, like a fleet.
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			host := fmt.Sprintf("host-%02d", h)
			agg := pacer.NewAggregator()
			rep, err := fleet.NewReporter(agg, fleet.ReporterOptions{
				Collector: base,
				Instance:  host,
				Interval:  20 * time.Millisecond,
				Seed:      int64(h) + 1,
			})
			if err != nil {
				panic(err)
			}
			for i := 0; i < sessionsPerHost; i++ {
				inst := h*sessionsPerHost + i + 1
				session(rate, int64(inst), agg.Reporter(fmt.Sprintf("%s/inst-%d", host, inst)))
			}
			// Flush the final snapshot before the host "shuts down".
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := rep.Close(ctx); err != nil {
				panic(err)
			}
		}(h)
	}
	wg.Wait()

	// The triage dashboard reads the merged fleet view back off the wire.
	resp, err := http.Get(base + "/races")
	if err != nil {
		panic(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	agg := pacer.NewAggregator()
	if err := agg.ImportJSON(blob); err != nil {
		panic(err)
	}

	firstSeen := map[pacer.SiteID]string{}
	counts := map[pacer.SiteID]int{}
	for _, ar := range agg.Races() {
		site := min(ar.Example.FirstSite, ar.Example.SecondSite)
		firstSeen[site] = ar.FirstInstance
		counts[site] += ar.Count
	}

	fmt.Printf("fleet of %d instances on %d hosts, each sampling at r = %.0f%%\n\n",
		instances, hosts, rate*100)
	fmt.Printf("%-22s %10s %12s %22s %16s\n", "race", "occurrence", "reports", "first seen", "expect≥1 @fleet")
	for i := len(bugs) - 1; i >= 0; i-- {
		bg := bugs[i]
		pAll := 1 - math.Pow(1-bg.occur*rate, instances)
		first := "never"
		if f, ok := firstSeen[bg.site]; ok {
			first = f
		}
		fmt.Printf("%-22s %9.0f%% %12d %22s %15.1f%%\n",
			bg.name, bg.occur*100, counts[bg.site], first, pAll*100)
	}

	fmt.Printf("\n%d distinct races surfaced across the fleet; each individual\n", agg.Distinct())
	fmt.Println("instance paid only the ~2% sampling-rate overhead. That is the")
	fmt.Println("\"get what you pay for\" deployment model of the paper.")

	// The collector's metrics endpoint is what a dashboard would scrape.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		panic(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncollector metrics (%s/metrics):\n%s", base, metrics)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}
