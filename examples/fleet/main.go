// fleet: the deployment scenario PACER was designed for (Sections 1 and
// 3): many deployed instances each run the detector at a very low sampling
// rate, and a central collector aggregates their reports, as in
// distributed-debugging frameworks like Cooperative Bug Isolation.
//
// The simulated application has several distinct races with different
// occurrence frequencies — including one that manifests in only ~5% of
// sessions. No single cheap run is likely to catch anything, but because
// PACER detects each race with probability (occurrence × sampling rate),
// the fleet as a whole finds every race with probability approaching
// 1 - (1 - o·r)^instances.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"pacer"
)

// bug describes one planted race: the session executes its racy pair with
// probability occur.
type bug struct {
	name  string
	occur float64
	site  pacer.SiteID
}

var bugs = []bug{
	{"stale-config-read", 1.00, 100},
	{"double-checked-init", 0.60, 200},
	{"shutdown-flag", 0.25, 300},
	{"rare-resize-race", 0.05, 400},
}

// session simulates one deployed instance: background synchronized work
// plus whichever racy pairs this session happens to execute.
func session(rate float64, seed int64, report func(pacer.Race)) {
	// The occurrence RNG and the detector's period RNG must be independent
	// streams, or "bug occurs this session" would correlate with "period
	// sampled this session".
	rng := rand.New(rand.NewSource(seed))
	d := pacer.New(pacer.Options{
		SamplingRate: rate,
		PeriodOps:    64,
		Seed:         seed*2654435761 + 97,
		OnRace:       report,
	})
	main := d.NewThread()
	mu := d.NewMutex()
	work := pacer.NewShared(d, 0)
	vars := make([]pacer.VarID, len(bugs))
	for i := range bugs {
		vars[i] = d.NewVarID()
	}

	a, b := d.Fork(main), d.Fork(main)
	occurs := make([]bool, len(bugs))
	for i, bg := range bugs {
		occurs[i] = rng.Float64() < bg.occur
	}
	// Thread a: synchronized background work, then its half of each racy
	// pair (writes).
	for i := 0; i < 60; i++ {
		mu.Lock(a)
		work.Update(a, 1, func(x int) int { return x + 1 })
		mu.Unlock(a)
	}
	for i, bg := range bugs {
		if occurs[i] {
			d.Write(a, vars[i], bg.site)
		}
	}
	// Thread b: more background work, then the consuming halves (reads).
	for i := 0; i < 60; i++ {
		mu.Lock(b)
		work.Update(b, 2, func(x int) int { return x + 1 })
		mu.Unlock(b)
	}
	for i, bg := range bugs {
		if occurs[i] {
			d.Read(b, vars[i], bg.site+1)
		}
	}
	d.Join(main, a)
	d.Join(main, b)
}

func main() {
	const rate = 0.02
	const instances = 4000

	// Each region runs its own collector — pacer.Aggregator: reports keyed
	// by distinct race, with counts and first-seen attribution. The regions
	// then Merge into one fleet-wide triage dashboard.
	east, west := pacer.NewAggregator(), pacer.NewAggregator()
	for inst := 1; inst <= instances; inst++ {
		region := east
		if inst%2 == 0 {
			region = west
		}
		session(rate, int64(inst), region.Reporter(fmt.Sprintf("inst-%d", inst)))
	}
	agg := pacer.NewAggregator()
	agg.Merge(east)
	agg.Merge(west)
	firstSeen := map[pacer.SiteID]string{}
	counts := map[pacer.SiteID]int{}
	for _, ar := range agg.Races() {
		site := min(ar.Example.FirstSite, ar.Example.SecondSite)
		firstSeen[site] = ar.FirstInstance
		counts[site] += ar.Count
	}

	fmt.Printf("fleet of %d instances, each sampling at r = %.0f%%\n\n", instances, rate*100)
	fmt.Printf("%-22s %10s %12s %12s %14s\n", "race", "occurrence", "reports", "first seen", "expect≥1 @fleet")
	for i := len(bugs) - 1; i >= 0; i-- {
		bg := bugs[i]
		pAll := 1 - math.Pow(1-bg.occur*rate, instances)
		first := "never"
		if f, ok := firstSeen[bg.site]; ok {
			first = f
		}
		fmt.Printf("%-22s %9.0f%% %12d %12s %13.1f%%\n",
			bg.name, bg.occur*100, counts[bg.site], first, pAll*100)
	}

	fmt.Printf("\n%d distinct races surfaced across the fleet; each individual\n", agg.Distinct())
	fmt.Println("instance paid only the ~2% sampling-rate overhead. That is the")
	fmt.Println("\"get what you pay for\" deployment model of the paper.")

	// The merged triage list persists as JSON — the artifact a real
	// deployment would ship to a dashboard or bug tracker.
	blob, err := json.MarshalIndent(agg, "", "  ")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ntriage list as persisted JSON (%d bytes):\n%s\n", len(blob), blob)
}
