// Command planted is the pacergo smoke target: a program with exactly one
// data race, planted on purpose, next to a race-free lookalike.
//
// The race: two goroutines increment the package-level counter `racy`
// with no synchronization between the increments (the WaitGroup only
// orders both against main's final read). The lookalike: the same shape
// on `guarded`, with a mutex around each increment.
//
// Run it through the front door:
//
//	pacergo run ./examples/planted
//
// At -rate 1 PACER must report the race on `racy` — and only that race —
// with both access sites resolved to this file. The mutex keeps `guarded`
// silent at any rate.
package main

import (
	"fmt"
	"sync"
)

var (
	racy    int
	guarded int
	mu      sync.Mutex
)

func bumpRacy() {
	racy++ // the planted race: unsynchronized read-modify-write
}

func bumpGuarded() {
	mu.Lock()
	guarded++
	mu.Unlock()
}

func main() {
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				bumpRacy()
				bumpGuarded()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("racy=%d guarded=%d\n", racy, guarded)
}
