// Quickstart: embed the PACER detector in a program, run it at a 100%
// sampling rate to see a race immediately, then at a deployment-style 3%
// rate to see the proportionality guarantee: across many simulated
// "deployed instances", the race is reported in about 3% of them.
package main

import (
	"fmt"

	"pacer"
)

// run executes one buggy "session". Two workers share a properly locked
// counter (the background work) and a config cell that worker A publishes
// and worker B consumes — without any synchronization. That unsynchronized
// publish/consume pair is the data race.
func run(rate float64, seed int64) (races []pacer.Race) {
	d := pacer.New(pacer.Options{
		SamplingRate: rate,
		PeriodOps:    32,
		Seed:         seed,
		OnRace:       func(r pacer.Race) { races = append(races, r) },
	})

	main := d.NewThread()
	mu := d.NewMutex()
	counter := pacer.NewShared(d, 0)
	config := pacer.NewShared(d, "default")

	// Worker A: locked counter updates, plus one *unsynchronized* config
	// publish halfway through — the bug.
	a := d.Fork(main)
	for i := 0; i < 40; i++ {
		mu.Lock(a)
		counter.Update(a, 100, func(x int) int { return x + 1 })
		mu.Unlock(a)
		if i == 20 {
			config.Store(a, 110, "tuned") // RACY publish
		}
	}

	// Worker B: locked counter updates, plus one unsynchronized config
	// read. B never synchronizes with A's publish, so the accesses race.
	b := d.Fork(main)
	_ = config.Load(b, 210) // RACY consume
	for i := 0; i < 40; i++ {
		mu.Lock(b)
		counter.Update(b, 201, func(x int) int { return x + 1 })
		mu.Unlock(b)
	}

	d.Join(main, a)
	d.Join(main, b)
	return races
}

func main() {
	fmt.Println("== full tracking (r = 100%) ==")
	races := run(1.0, 1)
	fmt.Printf("%d race report(s):\n", len(races))
	for _, r := range races[:min(len(races), 3)] {
		fmt.Println("  ", r)
	}

	fmt.Println("\n== deployed sampling (r = 3%) across 500 instances ==")
	const rate, instances = 0.03, 500
	found := 0
	for seed := int64(1); seed <= instances; seed++ {
		if len(run(rate, seed)) > 0 {
			found++
		}
	}
	fmt.Printf("race reported by %d of %d instances (%.1f%%; sampling rate %.0f%%)\n",
		found, instances, 100*float64(found)/instances, rate*100)
	fmt.Println("PACER's guarantee: each race is detected at a rate equal to the")
	fmt.Println("sampling rate — 'get what you pay for'.")
}
