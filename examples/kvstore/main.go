// kvstore: a sharded, concurrent in-memory key-value store instrumented
// with the PACER detector, run by real goroutines.
//
// The store guards each shard's map with an instrumented mutex, but its
// Size method was "optimized" to read the per-shard counters without
// locking — a classic real-world race (a stale size is usually harmless,
// until someone uses it to resize or flush). Full tracking pinpoints the
// two sites; a production-style 2% sampling rate finds the same race on a
// small fraction of runs at a small fraction of the cost, which is the
// trade PACER is designed to make.
package main

import (
	"fmt"
	"sync"

	"pacer"
)

const shards = 4

// Store is a sharded map instrumented for race detection. Each logical
// shard has a lock identifier, and each shard's entry count is a shared
// cell the detector tracks.
type Store struct {
	d     *pacer.Detector
	locks [shards]*pacer.Mutex
	size  [shards]*pacer.Shared[int]
	data  [shards]map[string]string
	mu    [shards]sync.Mutex // the real mutexes guarding data
}

// NewStore builds an instrumented store.
func NewStore(d *pacer.Detector) *Store {
	s := &Store{d: d}
	for i := 0; i < shards; i++ {
		s.locks[i] = d.NewMutex()
		s.size[i] = pacer.NewShared(d, 0)
		s.data[i] = make(map[string]string)
	}
	return s
}

func shardOf(key string) int {
	h := 0
	for _, c := range key {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % shards
}

// Put stores key=value (correctly locked).
func (s *Store) Put(t pacer.ThreadID, key, value string) {
	i := shardOf(key)
	s.mu[i].Lock()
	s.locks[i].Lock(t)
	_, existed := s.data[i][key]
	s.data[i][key] = value
	if !existed {
		s.size[i].Update(t, pacer.SiteID(1000+i), func(n int) int { return n + 1 })
	}
	s.locks[i].Unlock(t)
	s.mu[i].Unlock()
}

// Get fetches key (correctly locked).
func (s *Store) Get(t pacer.ThreadID, key string) (string, bool) {
	i := shardOf(key)
	s.mu[i].Lock()
	s.locks[i].Lock(t)
	v, ok := s.data[i][key]
	s.locks[i].Unlock(t)
	s.mu[i].Unlock()
	return v, ok
}

// Size sums the shard counters WITHOUT locks — the planted bug.
func (s *Store) Size(t pacer.ThreadID) int {
	total := 0
	for i := 0; i < shards; i++ {
		total += s.size[i].Load(t, pacer.SiteID(2000+i)) // RACY read
	}
	return total
}

func runSession(rate float64, seed int64) []pacer.Race {
	var mu sync.Mutex
	var races []pacer.Race
	d := pacer.New(pacer.Options{
		SamplingRate: rate,
		PeriodOps:    256,
		Seed:         seed,
		OnRace: func(r pacer.Race) {
			mu.Lock()
			races = append(races, r)
			mu.Unlock()
		},
	})
	store := NewStore(d)
	main := d.NewThread()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		tid := d.Fork(main)
		wg.Add(1)
		go func(w int, tid pacer.ThreadID) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("user:%d:%d", w, i%40)
				store.Put(tid, key, "v")
				if i%3 == 0 {
					store.Get(tid, key)
				}
			}
		}(w, tid)
	}
	// A monitoring goroutine polls Size concurrently — triggering the race.
	mon := d.Fork(main)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = store.Size(mon)
		}
	}()
	wg.Wait()
	return races
}

func main() {
	fmt.Println("== kvstore under full tracking (r = 100%) ==")
	races := runSession(1.0, 1)
	distinct := map[[2]pacer.SiteID]int{}
	for _, r := range races {
		a, b := r.FirstSite, r.SecondSite
		if a > b {
			a, b = b, a
		}
		distinct[[2]pacer.SiteID{a, b}]++
	}
	fmt.Printf("%d dynamic reports, %d distinct site pairs:\n", len(races), len(distinct))
	for k, n := range distinct {
		fmt.Printf("  sites (%d, %d): %d report(s)  — shard-size update vs unlocked Size()\n", k[0], k[1], n)
	}

	fmt.Println("\n== kvstore at r = 2% over 100 runs ==")
	found := 0
	for seed := int64(1); seed <= 100; seed++ {
		if len(runSession(0.02, seed)) > 0 {
			found++
		}
	}
	fmt.Printf("race family reported in %d/100 sampled runs\n", found)
	fmt.Println("(The Size/Update race occurs many times per run, so the distinct-")
	fmt.Println("race detection rate exceeds 2% — the paper's Figure 4 effect.)")
}
