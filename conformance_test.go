package pacer_test

import (
	"sort"
	"sync"
	"testing"

	"pacer"
)

// The backend conformance suite drives the same happens-before scenarios
// through the public front-end for every mounted algorithm and demands
// identical verdicts. At sampling rate 1.0 PACER analyzes every access, so
// all precise detectors — the vector-clock baseline, DJIT+, FASTTRACK,
// LITERACE (whose per-site samplers open at 100%), GOLDILOCKS, and PACER
// itself — must agree on which distinct races exist.
//
// "lockset" is deliberately excluded: Eraser-style lockset analysis is
// imprecise by design and reports false positives on fork/join and
// volatile-publication synchronization, so it cannot (and should not)
// match the happens-before detectors. "o1samples" is excluded for the
// opposite reason: it is precise but deliberately incomplete (a single
// read slot per variable cannot attribute a write racing with several
// concurrent reads to all of them), so the oracle suite holds it to the
// precision band rather than exact agreement.

// racePair is the paper's identity of a distinct race: the variable plus
// the unordered pair of access sites. Backends are compared on this
// identity rather than on thread/kind attribution, whose representation
// legitimately differs across algorithms.
type racePair struct {
	v    pacer.VarID
	a, b pacer.SiteID
}

func pairOf(r pacer.Race) racePair {
	a, b := r.FirstSite, r.SecondSite
	if a > b {
		a, b = b, a
	}
	return racePair{r.Var, a, b}
}

type confScenario struct {
	name string
	want int // distinct races every conforming backend must report
	run  func(d *pacer.Detector)
}

var confScenarios = []confScenario{
	{
		// A mutex hands the variable from one thread to the other: the
		// release/acquire edge orders every access.
		name: "MutexGuarded", want: 0,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			x := d.NewVarID()
			m := d.NewMutex()
			m.Lock(t0)
			d.Write(t0, x, 1)
			m.Unlock(t0)
			m.Lock(t1)
			d.Write(t1, x, 2)
			d.Read(t1, x, 3)
			m.Unlock(t1)
		},
	},
	{
		// The same handoff without the mutex: one write/write race.
		name: "MutexMissing", want: 1,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			x := d.NewVarID()
			d.Write(t0, x, 1)
			d.Write(t1, x, 2)
		},
	},
	{
		// Fork publishes the parent's history to the child; Join returns
		// the child's history to the parent. Fully ordered, no races.
		name: "ForkJoin", want: 0,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			x := d.NewVarID()
			d.Write(t0, x, 1)
			t1 := d.Fork(t0)
			d.Write(t1, x, 2)
			d.Join(t0, t1)
			d.Read(t0, x, 3)
		},
	},
	{
		// A parent write after the fork is concurrent with the child.
		name: "ForkConcurrent", want: 1,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			x := d.NewVarID()
			d.Write(t0, x, 1)
			d.Read(t1, x, 2)
		},
	},
	{
		// Writer lock vs reader lock: Unlock happens before RLock, and
		// RUnlock happens before the next Lock.
		name: "RWMutexGuarded", want: 0,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			x := d.NewVarID()
			rw := d.NewRWMutex()
			rw.Lock(t0)
			d.Write(t0, x, 1)
			rw.Unlock(t0)
			rw.RLock(t1)
			d.Read(t1, x, 2)
			rw.RUnlock(t1)
			rw.Lock(t0)
			d.Write(t0, x, 3)
			rw.Unlock(t0)
		},
	},
	{
		// The reader skips RLock: its read races with the guarded write.
		name: "RWMutexMissing", want: 1,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			x := d.NewVarID()
			rw := d.NewRWMutex()
			rw.Lock(t0)
			d.Write(t0, x, 1)
			rw.Unlock(t0)
			d.Read(t1, x, 2)
		},
	},
	{
		// Done publishes each worker's writes; Wait receives them all.
		name: "WaitGroup", want: 0,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			t1, t2 := d.Fork(t0), d.Fork(t0)
			x1, x2 := d.NewVarID(), d.NewVarID()
			wg := d.NewWaitGroup()
			wg.Add(2)
			d.Write(t1, x1, 1)
			wg.Done(t1)
			d.Write(t2, x2, 2)
			wg.Done(t2)
			wg.Wait(t0)
			d.Read(t0, x1, 3)
			d.Read(t0, x2, 4)
		},
	},
	{
		// The waiter reads before Wait: unsynchronized with the worker.
		name: "WaitGroupMissing", want: 1,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			x := d.NewVarID()
			wg := d.NewWaitGroup()
			wg.Add(1)
			d.Write(t1, x, 1)
			wg.Done(t1)
			d.Read(t0, x, 2) // no Wait first
			wg.Wait(t0)
		},
	},
	{
		// Volatile publication: the volatile write/read pair carries the
		// plain write to the reader.
		name: "VolatilePublish", want: 0,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			x := d.NewVarID()
			vx := d.NewVolatileID()
			d.Write(t0, x, 1)
			d.VolWrite(t0, vx)
			d.VolRead(t1, vx)
			d.Read(t1, x, 2)
		},
	},
	{
		// The same publication without the volatile: a write/read race.
		name: "VolatileMissing", want: 1,
		run: func(d *pacer.Detector) {
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			x := d.NewVarID()
			d.Write(t0, x, 1)
			d.Read(t1, x, 2)
		},
	},
}

// conformanceAlgorithms is every registered backend that must agree
// exactly, i.e. all of them except the imprecise lockset analysis and the
// incomplete-by-design o1samples backend (which the oracle suite sweeps
// separately, precision-only).
func conformanceAlgorithms() []string {
	var algos []string
	for _, a := range pacer.Algorithms() {
		if a == "lockset" || a == "o1samples" {
			continue
		}
		algos = append(algos, a)
	}
	sort.Strings(algos)
	return algos
}

// runConformance mounts algo behind the front-end at rate 1.0 and returns
// the distinct races the scenario produces.
func runConformance(algo string, sc confScenario) map[racePair]bool {
	var mu sync.Mutex
	got := make(map[racePair]bool)
	d := pacer.New(pacer.Options{
		Algorithm:    algo,
		SamplingRate: 1.0,
		Seed:         5,
		OnRace: func(r pacer.Race) {
			mu.Lock()
			got[pairOf(r)] = true
			mu.Unlock()
		},
	})
	sc.run(d)
	return got
}

// TestConformanceBackendMatrix asserts every mounted precise backend
// reports exactly the expected distinct races on each happens-before
// scenario, and that all backends agree with the exhaustive vector-clock
// baseline ("generic") race for race.
func TestConformanceBackendMatrix(t *testing.T) {
	algos := conformanceAlgorithms()
	if len(algos) < 5 {
		t.Fatalf("registry lists only %v; expected at least pacer, fasttrack, literace, generic, djit", algos)
	}
	for _, sc := range confScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseline := runConformance("generic", sc)
			if len(baseline) != sc.want {
				t.Fatalf("generic baseline found %d distinct races %v, scenario expects %d",
					len(baseline), baseline, sc.want)
			}
			for _, algo := range algos {
				got := runConformance(algo, sc)
				if len(got) != len(baseline) {
					t.Errorf("%s: %d distinct races %v, baseline has %d %v",
						algo, len(got), got, len(baseline), baseline)
					continue
				}
				for k := range baseline {
					if !got[k] {
						t.Errorf("%s: missing race %+v (found %v)", algo, k, got)
					}
				}
			}
		})
	}
}

// TestConformanceAlwaysSampleDegradation pins the graceful-degradation
// contract: a backend with no sampler (fasttrack) mounted at any sampling
// rate still analyzes everything — Options.SamplingRate is a no-op for it
// and Sampling() reports true throughout.
func TestConformanceAlwaysSampleDegradation(t *testing.T) {
	var races int
	d := pacer.New(pacer.Options{
		Algorithm:    "fasttrack",
		SamplingRate: 0.0001, // would almost surely skip everything under PACER
		Seed:         9,
		OnRace:       func(pacer.Race) { races++ },
	})
	if !d.Sampling() {
		t.Fatal("non-sampling backend must report Sampling() == true")
	}
	t0 := d.NewThread()
	t1 := d.Fork(t0)
	x := d.NewVarID()
	d.Write(t0, x, 1)
	d.Write(t1, x, 2)
	if races != 1 {
		t.Fatalf("always-sample degradation lost the race: got %d reports, want 1", races)
	}
	if !d.Sampling() {
		t.Fatal("Sampling() flipped false for a non-sampling backend")
	}
}
