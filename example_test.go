package pacer_test

import (
	"fmt"

	"pacer"
)

// The basic workflow: create a detector, register threads and variables,
// and notify it at each operation. At a 100% sampling rate every race is
// reported immediately; in deployment a rate of 1-3% gives proportional
// detection at proportional cost.
func Example() {
	d := pacer.New(pacer.Options{
		SamplingRate: 1.0,
		OnRace:       func(r pacer.Race) { fmt.Println(r) },
	})
	main := d.NewThread()
	worker := d.Fork(main)
	account := d.NewVarID()

	d.Write(main, account, 101)  // site 101: deposit
	d.Read(worker, account, 202) // site 202: audit — unsynchronized!
	// Output: write-read race on x0: t0@s101 vs t1@s202
}

// Mutex wraps a real sync.Mutex and reports the acquire/release edges, so
// properly locked accesses are never reported.
func ExampleMutex() {
	d := pacer.New(pacer.Options{
		SamplingRate: 1.0,
		OnRace:       func(r pacer.Race) { fmt.Println("unexpected:", r) },
	})
	main := d.NewThread()
	worker := d.Fork(main)
	mu := d.NewMutex()
	balance := d.NewVarID()

	mu.Lock(main)
	d.Write(main, balance, 1)
	mu.Unlock(main)

	mu.Lock(worker)
	d.Read(worker, balance, 2)
	mu.Unlock(worker)

	fmt.Println("no races")
	// Output: no races
}

// Shared is a typed cell whose logical accesses are race-checked while its
// actual value stays internally consistent.
func ExampleShared() {
	races := 0
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(pacer.Race) { races++ }})
	main := d.NewThread()
	worker := d.Fork(main)

	cfg := pacer.NewShared(d, "default")
	cfg.Store(main, 1, "tuned")             // publish without synchronization
	fmt.Println(cfg.Load(worker, 2), races) // consume — a race, but no corruption
	// Output: tuned 1
}

// Describe renders reports with registered labels.
func ExampleDetector_Describe() {
	d := pacer.New(pacer.Options{SamplingRate: 1.0})
	v := d.NewVarID()
	d.VarLabel(v, "cache.size")
	d.SiteLabel(7, "evict()")
	d.SiteLabel(9, "stats()")
	r := pacer.Race{Var: v, Kind: pacer.WriteRead, FirstSite: 7, SecondSite: 9, SecondThread: 3}
	fmt.Println(d.Describe(r))
	// Output: data race on cache.size: write at evict() (thread 0) vs read at stats() (thread 3)
}
