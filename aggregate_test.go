package pacer_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"pacer"
)

func mkRace(v pacer.VarID, a, b pacer.SiteID) pacer.Race {
	return pacer.Race{
		Var: v, Kind: pacer.WriteRead,
		FirstThread: 0, SecondThread: 1,
		FirstSite: a, SecondSite: b,
	}
}

// TestAggregatorMerge folds two regional aggregators into one and checks
// that counts add, instance sets union (no double counting of an instance
// seen by both), and races unique to the source survive with their first
// reporter intact.
func TestAggregatorMerge(t *testing.T) {
	east, west := pacer.NewAggregator(), pacer.NewAggregator()
	shared, eastOnly, westOnly := mkRace(1, 10, 20), mkRace(2, 30, 40), mkRace(3, 50, 60)

	east.Reporter("host-a")(shared)
	east.Reporter("host-b")(shared)
	east.Reporter("host-a")(eastOnly)
	west.Reporter("host-b")(shared) // host-b reports to both regions
	west.Reporter("host-c")(shared)
	west.Reporter("host-c")(westOnly)

	east.Merge(west)
	if got := east.Distinct(); got != 3 {
		t.Fatalf("merged aggregator has %d distinct races, want 3", got)
	}
	byVar := map[pacer.VarID]pacer.AggregatedRace{}
	for _, ar := range east.Export() {
		byVar[ar.Example.Var] = ar
	}
	if ar := byVar[1]; ar.Count != 4 || ar.Instances != 3 {
		t.Errorf("shared race: count %d instances %d, want 4 and 3 (host-b must not double count)",
			ar.Count, ar.Instances)
	}
	if ar := byVar[2]; ar.Count != 1 || ar.Instances != 1 || ar.FirstInstance != "host-a" {
		t.Errorf("east-only race mangled by merge: %+v", ar)
	}
	if ar := byVar[3]; ar.Count != 1 || ar.FirstInstance != "host-c" {
		t.Errorf("west-only race lost its origin: %+v", ar)
	}
	// The merge must have deep-copied: further reports to west stay local.
	west.Reporter("host-z")(westOnly)
	for _, ar := range east.Export() {
		if ar.Example.Var == 3 && ar.Count != 1 {
			t.Errorf("merge aliased source state: count became %d", ar.Count)
		}
	}
}

// TestAggregatorMarshalJSON round-trips the triage list through the flat
// persistence schema and checks ordering (most-reported first) and the
// human-readable race kind.
func TestAggregatorMarshalJSON(t *testing.T) {
	agg := pacer.NewAggregator()
	hot, cold := mkRace(7, 100, 200), mkRace(8, 300, 400)
	for i := 0; i < 3; i++ {
		agg.Reporter("host-a")(hot)
	}
	agg.Reporter("host-b")(cold)

	raw, err := json.Marshal(agg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got []struct {
		Var           uint32 `json:"var"`
		Kind          string `json:"kind"`
		FirstSite     uint32 `json:"first_site"`
		SecondSite    uint32 `json:"second_site"`
		Count         int    `json:"count"`
		Instances     int    `json:"instances"`
		FirstInstance string `json:"first_instance"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	if len(got) != 2 {
		t.Fatalf("exported %d races, want 2", len(got))
	}
	if got[0].Var != 7 || got[0].Count != 3 {
		t.Errorf("most-reported race must come first, got %+v", got[0])
	}
	if got[0].Kind != "write-read" {
		t.Errorf("kind rendered as %q, want write-read", got[0].Kind)
	}
	if got[1].FirstInstance != "host-b" || got[1].Instances != 1 {
		t.Errorf("cold race exported wrong: %+v", got[1])
	}

	empty, err := json.Marshal(pacer.NewAggregator())
	if err != nil || string(empty) != "[]" {
		t.Errorf("empty aggregator marshals to %s (%v), want []", empty, err)
	}
}

// TestAggregatorKindDistinct pins the dedup key's treatment of the race
// kind: a write–write and a read–write race on the same (var, site pair)
// are distinct triage entries, while the two temporal orderings of one
// static race (write-read seen as s1-then-s2 versus read-write seen as
// s2-then-s1) still collapse into one.
func TestAggregatorKindDistinct(t *testing.T) {
	agg := pacer.NewAggregator()
	ww := pacer.Race{Var: 1, Kind: pacer.WriteWrite, FirstSite: 10, SecondSite: 20}
	rw := pacer.Race{Var: 1, Kind: pacer.ReadWrite, FirstSite: 10, SecondSite: 20}
	agg.Reporter("host-a")(ww)
	agg.Reporter("host-a")(rw)
	if got := agg.Distinct(); got != 2 {
		t.Errorf("write-write and read-write on the same site pair collapsed: %d distinct, want 2", got)
	}

	agg2 := pacer.NewAggregator()
	wr := pacer.Race{Var: 2, Kind: pacer.WriteRead,
		FirstThread: 0, SecondThread: 1, FirstSite: 30, SecondSite: 40}
	mirror := pacer.Race{Var: 2, Kind: pacer.ReadWrite,
		FirstThread: 1, SecondThread: 0, FirstSite: 40, SecondSite: 30}
	agg2.Reporter("host-a")(wr)
	agg2.Reporter("host-b")(mirror)
	if got := agg2.Distinct(); got != 1 {
		t.Errorf("temporal mirror orderings of one static race split: %d distinct, want 1", got)
	}
	if ar := agg2.Races()[0]; ar.Count != 2 || ar.Instances != 2 {
		t.Errorf("mirrored reports aggregated as %+v, want count 2 instances 2", ar)
	}

	// When both accesses come from one site the swap above never fires,
	// so the mixed kinds must canonicalize directly: write-read and
	// read-write at (s, s) are one static race in its two temporal orders.
	agg3 := pacer.NewAggregator()
	agg3.Reporter("host-a")(pacer.Race{Var: 3, Kind: pacer.WriteRead,
		FirstThread: 0, SecondThread: 1, FirstSite: 50, SecondSite: 50})
	agg3.Reporter("host-b")(pacer.Race{Var: 3, Kind: pacer.ReadWrite,
		FirstThread: 1, SecondThread: 0, FirstSite: 50, SecondSite: 50})
	if got := agg3.Distinct(); got != 1 {
		t.Errorf("temporal mirror orderings at a single site split: %d distinct, want 1", got)
	}
	if ar := agg3.Races()[0]; ar.Count != 2 || ar.Instances != 2 {
		t.Errorf("single-site mirrored reports aggregated as %+v, want count 2 instances 2", ar)
	}
}

// TestAggregatorImportJSONRoundTrip exports a triage list, imports it into
// a fresh aggregator, and requires identical Races() output — the property
// the fleet collector relies on to reconstruct remote aggregators.
func TestAggregatorImportJSONRoundTrip(t *testing.T) {
	src := pacer.NewAggregator()
	hot, cold := mkRace(7, 100, 200), mkRace(8, 300, 400)
	ww := pacer.Race{Var: 7, Kind: pacer.WriteWrite, FirstThread: 2, SecondThread: 3,
		FirstSite: 100, SecondSite: 200}
	for i := 0; i < 3; i++ {
		src.Reporter("inst-a")(hot)
	}
	src.Reporter("inst-a")(cold)
	src.Reporter("inst-a")(ww)

	blob, err := json.Marshal(src)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	dst := pacer.NewAggregator()
	if err := dst.ImportJSON(blob); err != nil {
		t.Fatalf("import: %v", err)
	}
	got, want := dst.Races(), src.Races()
	if len(got) != len(want) {
		t.Fatalf("round trip changed length: got %d races, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("race %d round-tripped as %+v, want %+v", i, got[i], want[i])
		}
	}
	// And the re-export is byte-identical.
	blob2, err := json.Marshal(dst)
	if err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if string(blob2) != string(blob) {
		t.Errorf("re-export differs:\n got %s\nwant %s", blob2, blob)
	}

	// Importing merges rather than replaces: a second import doubles counts
	// without inventing new distinct races or new instances.
	if err := dst.ImportJSON(blob); err != nil {
		t.Fatalf("second import: %v", err)
	}
	if dst.Distinct() != src.Distinct() {
		t.Errorf("second import changed distinct count to %d", dst.Distinct())
	}
	for i, ar := range dst.Races() {
		if ar.Count != 2*want[i].Count {
			t.Errorf("race %d count after re-import = %d, want %d", i, ar.Count, 2*want[i].Count)
		}
		if ar.Instances != want[i].Instances {
			t.Errorf("race %d instances after re-import = %d, want %d", i, ar.Instances, want[i].Instances)
		}
	}

	// Garbage is rejected with state intact.
	if err := dst.ImportJSON([]byte(`[{"kind":"nonsense","count":1,"instances":1}]`)); err == nil {
		t.Error("importing an unknown race kind succeeded")
	}
	if err := dst.ImportJSON([]byte(`{"not":"a list"}`)); err == nil {
		t.Error("importing a non-list succeeded")
	}
}
