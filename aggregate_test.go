package pacer_test

import (
	"encoding/json"
	"testing"

	"pacer"
)

func mkRace(v pacer.VarID, a, b pacer.SiteID) pacer.Race {
	return pacer.Race{
		Var: v, Kind: pacer.WriteRead,
		FirstThread: 0, SecondThread: 1,
		FirstSite: a, SecondSite: b,
	}
}

// TestAggregatorMerge folds two regional aggregators into one and checks
// that counts add, instance sets union (no double counting of an instance
// seen by both), and races unique to the source survive with their first
// reporter intact.
func TestAggregatorMerge(t *testing.T) {
	east, west := pacer.NewAggregator(), pacer.NewAggregator()
	shared, eastOnly, westOnly := mkRace(1, 10, 20), mkRace(2, 30, 40), mkRace(3, 50, 60)

	east.Reporter("host-a")(shared)
	east.Reporter("host-b")(shared)
	east.Reporter("host-a")(eastOnly)
	west.Reporter("host-b")(shared) // host-b reports to both regions
	west.Reporter("host-c")(shared)
	west.Reporter("host-c")(westOnly)

	east.Merge(west)
	if got := east.Distinct(); got != 3 {
		t.Fatalf("merged aggregator has %d distinct races, want 3", got)
	}
	byVar := map[pacer.VarID]pacer.AggregatedRace{}
	for _, ar := range east.Export() {
		byVar[ar.Example.Var] = ar
	}
	if ar := byVar[1]; ar.Count != 4 || ar.Instances != 3 {
		t.Errorf("shared race: count %d instances %d, want 4 and 3 (host-b must not double count)",
			ar.Count, ar.Instances)
	}
	if ar := byVar[2]; ar.Count != 1 || ar.Instances != 1 || ar.FirstInstance != "host-a" {
		t.Errorf("east-only race mangled by merge: %+v", ar)
	}
	if ar := byVar[3]; ar.Count != 1 || ar.FirstInstance != "host-c" {
		t.Errorf("west-only race lost its origin: %+v", ar)
	}
	// The merge must have deep-copied: further reports to west stay local.
	west.Reporter("host-z")(westOnly)
	for _, ar := range east.Export() {
		if ar.Example.Var == 3 && ar.Count != 1 {
			t.Errorf("merge aliased source state: count became %d", ar.Count)
		}
	}
}

// TestAggregatorMarshalJSON round-trips the triage list through the flat
// persistence schema and checks ordering (most-reported first) and the
// human-readable race kind.
func TestAggregatorMarshalJSON(t *testing.T) {
	agg := pacer.NewAggregator()
	hot, cold := mkRace(7, 100, 200), mkRace(8, 300, 400)
	for i := 0; i < 3; i++ {
		agg.Reporter("host-a")(hot)
	}
	agg.Reporter("host-b")(cold)

	raw, err := json.Marshal(agg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got []struct {
		Var           uint32 `json:"var"`
		Kind          string `json:"kind"`
		FirstSite     uint32 `json:"first_site"`
		SecondSite    uint32 `json:"second_site"`
		Count         int    `json:"count"`
		Instances     int    `json:"instances"`
		FirstInstance string `json:"first_instance"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	if len(got) != 2 {
		t.Fatalf("exported %d races, want 2", len(got))
	}
	if got[0].Var != 7 || got[0].Count != 3 {
		t.Errorf("most-reported race must come first, got %+v", got[0])
	}
	if got[0].Kind != "write-read" {
		t.Errorf("kind rendered as %q, want write-read", got[0].Kind)
	}
	if got[1].FirstInstance != "host-b" || got[1].Instances != 1 {
		t.Errorf("cold race exported wrong: %+v", got[1])
	}

	empty, err := json.Marshal(pacer.NewAggregator())
	if err != nil || string(empty) != "[]" {
		t.Errorf("empty aggregator marshals to %s (%v), want []", empty, err)
	}
}
