//go:build ignore

// Generates the checked-in fuzz seed corpora under
// internal/event/testdata/fuzz and internal/core/testdata/fuzz.
// Run with: go run fuzzseed_gen.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pacer/internal/event"
	"pacer/internal/tracegen"
)

func writeSeed(dir, name, content string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", filepath.Join(dir, name))
}

func bytesSeed(data []byte) string {
	return fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
}

func main() {
	// FuzzReadTrace: block-format encodings of representative traces.
	rtDir := "internal/event/testdata/fuzz/FuzzReadTrace"
	blocks := map[string]event.Trace{
		"seed-racy":     event.Generate(event.Racy(4, 300, 7)),
		"seed-guarded":  tracegen.Generate(tracegen.Config{Seed: 3, Threads: 3, Vars: 4, Locks: 2, Volatiles: 1, Steps: 120, PGuarded: 1, PWrite: 0.5}),
		"seed-mirrors":  tracegen.Generate(tracegen.CorpusConfig(0)),
		"seed-empty":    {},
		"seed-sampling": {{Kind: event.SampleBegin}, {Kind: event.Read, Thread: 0, Target: 1, Site: 2}, {Kind: event.SampleEnd}},
	}
	for name, tr := range blocks {
		var buf bytes.Buffer
		if err := event.WriteTrace(&buf, tr); err != nil {
			log.Fatal(err)
		}
		writeSeed(rtDir, name, bytesSeed(buf.Bytes()))
	}

	// FuzzStreamReader: streaming-format encodings (including a headerless
	// truncation the reader must reject gracefully).
	srDir := "internal/event/testdata/fuzz/FuzzStreamReader"
	for name, tr := range map[string]event.Trace{
		"seed-racy":    event.Generate(event.Racy(3, 200, 9)),
		"seed-corpus":  tracegen.Generate(tracegen.CorpusConfig(1)),
		"seed-empty":   {},
		"seed-minimal": {{Kind: event.Fork, Thread: 0, Target: 1}, {Kind: event.Write, Thread: 1, Target: 5, Site: 11}},
	} {
		var buf bytes.Buffer
		w, err := event.NewStreamWriter(&buf)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range tr {
			if err := w.Write(e); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		writeSeed(srDir, name, bytesSeed(buf.Bytes()))
	}
	writeSeed(srDir, "seed-truncated", bytesSeed([]byte("PACERTS1")))

	// FuzzSoundness: generator parameter tuples covering sparse and dense
	// interleavings.
	sdDir := "internal/core/testdata/fuzz/FuzzSoundness"
	tuples := []struct {
		name    string
		seed    int64
		threads uint8
		vars    uint8
		steps   uint16
	}{
		{"seed-dense", 7, 6, 3, 1200},
		{"seed-sparse", 1234, 1, 11, 250},
		{"seed-tiny", 3, 0, 0, 16},
		{"seed-wide", 88, 7, 9, 900},
	}
	for _, tu := range tuples {
		content := fmt.Sprintf("go test fuzz v1\nint64(%d)\nbyte('\\x%02x')\nbyte('\\x%02x')\nuint16(%d)\n",
			tu.seed, tu.threads, tu.vars, tu.steps)
		writeSeed(sdDir, tu.name, content)
	}
}
