// Package backends mounts every race-detector implementation in the
// repository behind one constructor keyed by algorithm name, so the public
// front-end, the replay tooling, and the benchmarks all build detectors
// through a single registry instead of hard-wiring one package each.
//
// The registry is extensible: Register adds a backend (e.g. from a test or
// an out-of-tree analysis) and the public pacer.Options.Algorithm knob
// reaches anything registered here.
package backends

import (
	"fmt"
	"sort"
	"sync"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/djit"
	"pacer/internal/fasttrack"
	"pacer/internal/generic"
	"pacer/internal/goldilocks"
	"pacer/internal/literace"
	"pacer/internal/lockset"
	"pacer/internal/o1samples"
)

// Config carries the cross-backend construction knobs. Backends ignore the
// fields they have no use for.
type Config struct {
	// Seed drives any randomized behavior (LITERACE's burst resets).
	// 0 means the backend's own default.
	Seed int64
	// Core tunes the PACER backend (sharding, ablation switches). The
	// FASTTRACK backend adopts its Shards and Arena knobs too, so the
	// front-end's Options.Shards/Arena reach both sharded backends.
	Core core.Options
	// LiteRace overrides the LITERACE sampler options; the zero value
	// selects the paper's defaults with Seed applied.
	LiteRace literace.Options
	// EpochFastIndexCap bounds the FASTTRACK backend's direct-indexed
	// variable table behind the lock-free same-epoch fast path (0 means
	// the backend default, negative disables the index). Variables past
	// the cap still detect races through the locked path.
	EpochFastIndexCap int
	// DisableOwnedFastPath ablates the FASTTRACK backend's owned-access
	// (CAS read-map) fast path, leaving the epoch mirrors active.
	DisableOwnedFastPath bool
}

// Factory constructs one backend.
type Factory func(report detector.Reporter, cfg Config) detector.Detector

var (
	mu       sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a backend under name. It panics on a duplicate name, which
// would silently shadow an existing algorithm.
func Register(name string, f Factory) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backends: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New constructs the backend registered under name.
func New(name string, report detector.Reporter, cfg Config) (detector.Detector, error) {
	mu.RLock()
	f, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backends: unknown algorithm %q (known: %v)", name, Names())
	}
	return f(report, cfg), nil
}

// Known reports whether name is a registered algorithm.
func Known(name string) bool {
	mu.RLock()
	defer mu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered algorithm names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("pacer", func(report detector.Reporter, cfg Config) detector.Detector {
		return core.NewWithOptions(report, cfg.Core)
	})
	Register("fasttrack", func(report detector.Reporter, cfg Config) detector.Detector {
		return fasttrack.NewWithOptions(report, fasttrack.Options{
			Shards:               cfg.Core.Shards,
			Arena:                cfg.Core.Arena,
			IndexCap:             cfg.EpochFastIndexCap,
			DisableOwnedFastPath: cfg.DisableOwnedFastPath,
			Clock:                cfg.Core.Clock,
		})
	})
	Register("generic", func(report detector.Reporter, _ Config) detector.Detector {
		return generic.New(report)
	})
	djitFactory := func(report detector.Reporter, cfg Config) detector.Detector {
		return djit.NewWithOptions(report, djit.Options{
			Shards: cfg.Core.Shards,
			Arena:  cfg.Core.Arena,
		})
	}
	Register("djit", djitFactory)
	Register("djit+", djitFactory) // the detector's own Name()
	Register("literace", func(report detector.Reporter, cfg Config) detector.Detector {
		o := cfg.LiteRace
		if o == (literace.Options{}) {
			o = literace.DefaultOptions()
		}
		if cfg.Seed != 0 {
			o.Seed = cfg.Seed
		}
		o.Shards = cfg.Core.Shards
		o.Arena = cfg.Core.Arena
		o.IndexCap = cfg.EpochFastIndexCap
		return literace.New(report, o)
	})
	Register("o1samples", func(report detector.Reporter, cfg Config) detector.Detector {
		return o1samples.NewWithOptions(report, o1samples.Options{
			Shards:   cfg.Core.Shards,
			Arena:    cfg.Core.Arena,
			IndexCap: cfg.EpochFastIndexCap,
			Clock:    cfg.Core.Clock,
		})
	})
	Register("goldilocks", func(report detector.Reporter, _ Config) detector.Detector {
		return goldilocks.New(report)
	})
	Register("lockset", func(report detector.Reporter, _ Config) detector.Detector {
		return lockset.New(report)
	})
}
