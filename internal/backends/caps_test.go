package backends_test

import (
	"os"
	"strings"
	"testing"

	"pacer/internal/backends"
)

// TestCapabilityMatrixMatchesDocs pins the docs/backends.md mounting
// matrix to the live registry: every registered backend has a row, and the
// row's mount, arena, and capability columns state exactly what probing
// the constructed backend reports. The matrix cannot silently drift from
// the code.
func TestCapabilityMatrixMatchesDocs(t *testing.T) {
	raw, err := os.ReadFile("../../docs/backends.md")
	if err != nil {
		t.Fatalf("reading docs: %v", err)
	}
	rows := parseMatrix(t, string(raw))

	for _, c := range backends.All() {
		row, ok := rows[c.Name]
		if !ok {
			t.Errorf("backend %q registered but missing from the docs matrix", c.Name)
			continue
		}
		if row.mount != c.Mount() {
			t.Errorf("%s: docs say mount %q, registry probe says %q", c.Name, row.mount, c.Mount())
		}
		wantArena := "no"
		if c.Arena {
			wantArena = "yes"
		}
		if !strings.HasPrefix(row.arena, wantArena) {
			t.Errorf("%s: docs arena column %q, registry probe says %q", c.Name, row.arena, wantArena)
		}
		for iface, have := range map[string]bool{
			"detector.EpochFast":    c.EpochFast,
			"detector.OwnedAccess":  c.OwnedAccess,
			"detector.BurstSampler": c.BurstSampler,
		} {
			if mentioned := strings.Contains(row.extras, iface); mentioned != have {
				t.Errorf("%s: docs extras %q mention %s=%v, registry probe says %v",
					c.Name, row.extras, iface, mentioned, have)
			}
		}
	}
	for name := range rows {
		if !backends.Known(name) {
			t.Errorf("docs matrix lists %q, which is not a registered backend", name)
		}
	}
}

type matrixRow struct{ mount, arena, extras string }

// parseMatrix extracts the backend table: rows of the form
// `| `name` | mount | arena | extras |`, with multiple backtick-quoted
// names per first cell allowed (the djit/djit+ row).
func parseMatrix(t *testing.T, doc string) map[string]matrixRow {
	t.Helper()
	rows := map[string]matrixRow{}
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) != 4 {
			continue
		}
		row := matrixRow{
			mount:  strings.TrimSpace(cells[1]),
			arena:  strings.TrimSpace(cells[2]),
			extras: strings.TrimSpace(cells[3]),
		}
		// Every backtick-quoted token in the first cell names a backend.
		parts := strings.Split(cells[0], "`")
		for i := 1; i < len(parts); i += 2 {
			rows[strings.TrimSpace(parts[i])] = row
		}
	}
	if len(rows) == 0 {
		t.Fatal("no matrix rows parsed from docs/backends.md")
	}
	return rows
}

// TestShardedMatrixComplete pins the tentpole: every precise backend
// (everything but the imprecise lockset and the O(n^2) teaching baselines)
// mounts sharded, and every sharded backend adopts the arena.
func TestShardedMatrixComplete(t *testing.T) {
	wantSharded := map[string]bool{
		"pacer": true, "fasttrack": true, "literace": true,
		"djit": true, "djit+": true, "o1samples": true,
	}
	for _, c := range backends.All() {
		if wantSharded[c.Name] {
			if !c.Sharded {
				t.Errorf("%s: must mount sharded", c.Name)
			}
			if !c.Arena {
				t.Errorf("%s: must adopt the arena under Config.Core.Arena", c.Name)
			}
		}
	}
}
