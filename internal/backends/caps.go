package backends

import (
	"fmt"

	"pacer/internal/core"
	"pacer/internal/detector"
)

// Caps describes one registered backend's mount and capability surface,
// derived the same way the front-end derives it: construct the backend and
// type-assert the capability interfaces. Because it is computed from the
// live registry, it cannot drift from the code — the docs/backends.md
// matrix is tested against it, and `racereplay backends` prints it.
type Caps struct {
	// Name is the registry name ("djit" and "djit+" are distinct entries
	// for the same factory).
	Name string
	// Sharded reports the concurrent mount (detector.Sharded): false means
	// the front-end drives the backend fully serialized.
	Sharded bool
	// Arena reports that Config.Core.Arena actually enables a slab arena
	// (detector.ArenaAccounted with an enabled arena), not merely that the
	// interface exists.
	Arena bool
	// Sampler reports sampling periods (detector.Sampler); always-on
	// backends analyze every access.
	Sampler bool
	// EpochFast, OwnedAccess, and BurstSampler report the lock-free
	// dismissal capabilities the front-end can discover.
	EpochFast    bool
	OwnedAccess  bool
	BurstSampler bool
}

// Probe constructs the named backend (with the arena requested, so the
// Arena field reports real adoption) and reports its capability surface.
func Probe(name string) (Caps, error) {
	d, err := New(name, nil, Config{Core: core.Options{Arena: true}})
	if err != nil {
		return Caps{}, err
	}
	c := Caps{Name: name}
	_, c.Sharded = d.(detector.Sharded)
	_, c.Sampler = d.(detector.Sampler)
	_, c.EpochFast = d.(detector.EpochFast)
	_, c.OwnedAccess = d.(detector.OwnedAccess)
	_, c.BurstSampler = d.(detector.BurstSampler)
	if aa, ok := d.(detector.ArenaAccounted); ok {
		_, c.Arena = aa.ArenaStats()
	}
	return c, nil
}

// All probes every registered backend, in Names() order.
func All() []Caps {
	names := Names()
	out := make([]Caps, 0, len(names))
	for _, name := range names {
		c, err := Probe(name)
		if err != nil {
			// Names() and New share the registry, so this cannot happen
			// short of a concurrent deregistration, which does not exist.
			panic(fmt.Sprintf("backends: probing %q: %v", name, err))
		}
		out = append(out, c)
	}
	return out
}

// Mount returns the mount column of the capability matrix.
func (c Caps) Mount() string {
	if c.Sharded {
		return "sharded"
	}
	return "serialized"
}
