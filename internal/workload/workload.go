// Package workload models the paper's benchmarks — the multithreaded
// DaCapo programs eclipse, hsqldb, and xalan, and pseudojbb — as synthetic
// programs for the simulator substrate (see DESIGN.md for the
// substitution argument).
//
// Each model reproduces the structural properties the evaluation depends
// on (Table 2): the benchmark's total and maximum-live thread counts, and
// a planted population of distinct races whose per-trial occurrence rates
// span frequent to rare, so that — exactly as in the paper — some races
// appear in every fully sampled trial and others almost never.
//
// Workers are partitioned into lock-sharing cliques. Background work
// synchronizes densely within a clique (exercising PACER's redundant-
// communication optimizations) and only rarely across cliques (a global
// lock and volatile), so racy access pairs, which always span cliques,
// are usually truly concurrent — but can occasionally be ordered by a
// chance cross-clique synchronization chain, reproducing the observer
// effect and heisenbugs the paper discusses (Section 5.1).
package workload

import (
	"math/rand"
	"sort"

	"pacer/internal/event"
	"pacer/internal/sim"
	"pacer/internal/vclock"
)

// Identifier layout. Background variables, race variables, and hot
// thread-local variables live in disjoint ranges so reports can be
// attributed.
const (
	// RaceVarBase is the first race variable: race i uses RaceVarBase+i.
	RaceVarBase = 10_000
	// RaceSiteBase is the first race site: race i's two sites are
	// RaceSiteBase+2i and RaceSiteBase+2i+1.
	RaceSiteBase = 20_000
	// HotMethod is the method id of the hot code path every worker
	// executes constantly (LiteRace's sampler backs off on it).
	HotMethod = 1
	// ColdMethodBase is the first cold method id: race i's accesses live
	// in method ColdMethodBase+i unless the race is hot.
	ColdMethodBase = 5_000

	hotVarBase    = 40_000
	cliqueVarBase = 100
	globalLock    = 0
	globalVar     = 90_000
	cliqueLockOff = 10
)

// RaceKind is the shape of a planted race.
type RaceKind int

const (
	// WriteWrite plants two unsynchronized writes.
	WriteWrite RaceKind = iota
	// WriteRead plants a write racing with a read.
	WriteRead
	// ReadWrite plants a read racing with a write.
	ReadWrite
)

// RaceSpec describes one planted distinct race.
type RaceSpec struct {
	// ID indexes the race; its variable is RaceVarBase+ID.
	ID int
	// Occurrence is the per-trial probability that the racy code executes.
	Occurrence float64
	// Repeats is how many times the racy pair executes when it occurs.
	Repeats int
	// Hot places the racy accesses in the hot method, so LiteRace's
	// adaptive sampler has backed off by the time they execute.
	Hot bool
	// Kind selects the access pair shape.
	Kind RaceKind
	// WA and WB are the worker indices of the two ends (must share a
	// fork wave and belong to different cliques).
	WA, WB int
}

// Var returns the race's variable.
func (r RaceSpec) Var() event.Var { return event.Var(RaceVarBase + r.ID) }

// Spec describes a benchmark model.
type Spec struct {
	// Name is the benchmark name as used in the paper's tables.
	Name string
	// Workers is the number of worker threads (total threads = Workers+1).
	Workers int
	// WaveSize bounds simultaneously live workers (max live = WaveSize+1).
	WaveSize int
	// Cliques partitions workers into lock-sharing groups.
	Cliques int
	// Iters is each worker's background loop count.
	Iters int
	// VarsPerClique and LocksPerClique size the guarded shared state.
	VarsPerClique, LocksPerClique int
	// HotOpsPerIter is how many hot-method accesses each iteration makes.
	HotOpsPerIter int
	// AllocPerIter and WorkPerIter drive the collector and base cost.
	AllocPerIter, WorkPerIter int
	// NurseryWords sizes the simulated GC nursery for this benchmark.
	// It must be large relative to the metadata spikes at sampling-period
	// onsets (which clone O(live threads) clocks of O(total threads)
	// words), as the paper's 32 MB nursery was.
	NurseryWords int
	// GlobalSyncProb is the per-iteration probability of touching the
	// global (cross-clique) lock.
	GlobalSyncProb float64
	// VolatileProb is the per-iteration probability of a volatile access.
	VolatileProb float64
	// Races is the planted race population.
	Races []RaceSpec
}

// TotalThreads returns the Table 2 "Total" column for the model.
func (s *Spec) TotalThreads() int { return s.Workers + 1 }

// MaxLiveThreads returns the Table 2 "Max live" column for the model.
func (s *Spec) MaxLiveThreads() int { return s.WaveSize + 1 }

// RaceOf maps a reported variable back to the planted race, if any.
func (s *Spec) RaceOf(v event.Var) (int, bool) {
	id := int(v) - RaceVarBase
	if id >= 0 && id < len(s.Races) {
		return id, true
	}
	return -1, false
}

func (s *Spec) clique(w int) int { return w % s.Cliques }

func (s *Spec) cliqueLock(c, varIdx int) sim.Lock {
	return sim.Lock(cliqueLockOff + c*s.LocksPerClique + varIdx%s.LocksPerClique)
}

func (s *Spec) cliqueVar(c, iter int) int {
	return iter % s.VarsPerClique
}

// raceEnd is one scheduled racy access inside a worker's loop.
type raceEnd struct {
	iter   int
	race   *RaceSpec
	isA    bool
	repeat int
}

// plan is the per-trial schedule of racy accesses.
type plan struct {
	byWorker map[int][]raceEnd
	occurs   []bool
}

// makePlan rolls the per-trial occurrence of each race and schedules the
// executing ends. Both ends run at the same loop iteration so they are
// close in schedule time.
func (s *Spec) makePlan(seed int64) *plan {
	rng := rand.New(rand.NewSource(seed ^ 0x1E3779B97F4A7C15))
	p := &plan{byWorker: make(map[int][]raceEnd), occurs: make([]bool, len(s.Races))}
	for i := range s.Races {
		r := &s.Races[i]
		if rng.Float64() >= r.Occurrence {
			continue
		}
		p.occurs[i] = true
		lo := s.Iters / 5
		hi := s.Iters - 2 - 3*r.Repeats
		if hi <= lo {
			hi = lo + 1
		}
		k := lo + rng.Intn(hi-lo)
		for rep := 0; rep < r.Repeats; rep++ {
			iter := k + 3*rep
			p.byWorker[r.WA] = append(p.byWorker[r.WA], raceEnd{iter: iter, race: r, isA: true, repeat: rep})
			p.byWorker[r.WB] = append(p.byWorker[r.WB], raceEnd{iter: iter, race: r, isA: false, repeat: rep})
		}
	}
	for w := range p.byWorker {
		ends := p.byWorker[w]
		sort.SliceStable(ends, func(i, j int) bool { return ends[i].iter < ends[j].iter })
	}
	return p
}

// accessEnd performs one racy access, outside any synchronization.
func accessEnd(t *sim.Thread, e raceEnd) {
	r := e.race
	v := r.Var()
	site := sim.Site(RaceSiteBase + 2*r.ID)
	if !e.isA {
		site++
	}
	method := uint32(ColdMethodBase + r.ID)
	if r.Hot {
		method = HotMethod
	}
	write := true
	switch r.Kind {
	case WriteRead:
		write = e.isA
	case ReadWrite:
		write = !e.isA
	}
	if write {
		t.Write(v, site, method)
	} else {
		t.Read(v, site, method)
	}
}

// worker returns the body of worker w.
func (s *Spec) worker(w int, p *plan) sim.ThreadFunc {
	return func(t *sim.Thread) {
		c := s.clique(w)
		ends := p.byWorker[w]
		next := 0
		hotVar := sim.Var(hotVarBase + w)
		hotSite := sim.Site(hotVarBase + w)
		for iter := 0; iter < s.Iters; iter++ {
			for next < len(ends) && ends[next].iter == iter {
				accessEnd(t, ends[next])
				next++
			}
			// Hot path: thread-local accesses in the hot method.
			for h := 0; h < s.HotOpsPerIter; h++ {
				if h%4 == 3 {
					t.Write(hotVar, hotSite, HotMethod)
				} else {
					t.Read(hotVar, hotSite, HotMethod)
				}
			}
			// Properly guarded shared state within the clique.
			vi := s.cliqueVar(c, iter)
			v := sim.Var(cliqueVarBase + c*s.VarsPerClique + vi)
			site := sim.Site(uint32(v))
			l := s.cliqueLock(c, vi)
			t.Lock(l)
			t.Read(v, site, 2)
			t.Write(v, site+1, 2)
			t.Unlock(l)
			t.Alloc(s.AllocPerIter)
			t.Work(s.WorkPerIter)
			// Rare cross-clique communication.
			if t.Rand().Float64() < s.GlobalSyncProb {
				t.Lock(globalLock)
				t.Read(globalVar, globalVar, 3)
				t.Write(globalVar, globalVar+1, 3)
				t.Unlock(globalLock)
			}
			if t.Rand().Float64() < s.VolatileProb {
				if t.Rand().Intn(2) == 0 {
					t.VolWrite(sim.Volatile(c))
				} else {
					t.VolRead(sim.Volatile(c))
				}
			}
		}
	}
}

// Program builds the per-trial simulated program. The seed fixes the
// trial's race-occurrence plan; the simulator's own seed independently
// fixes the schedule.
func (s *Spec) Program(seed int64) sim.Program {
	p := s.makePlan(seed)
	return sim.Program{
		Name: s.Name,
		Main: func(t *sim.Thread) {
			w := 0
			for w < s.Workers {
				var wave []vclock.Thread
				for len(wave) < s.WaveSize && w < s.Workers {
					wave = append(wave, t.Fork(s.worker(w, p)))
					w++
				}
				for _, id := range wave {
					t.Join(id)
				}
			}
		},
	}
}

// Occurs reports whether race id was planned to execute in the trial built
// from seed.
func (s *Spec) Occurs(seed int64, id int) bool {
	return s.makePlan(seed).occurs[id]
}
