package workload

import (
	"pacer/internal/sim"
	"pacer/internal/vclock"
)

// Micro workloads: classic synchronization idioms as simulated programs.
// They complement the benchmark models with recognizable patterns whose
// race status is known by construction, and they exercise the substrate's
// volatile, fork/join, and lock machinery in the shapes real programs use.

// Identifier bases for the micro programs (kept clear of the benchmark
// models' ranges).
const (
	microVarBase  = 70_000
	microSiteBase = 70_000
)

// RacyHandoff is a schedule-dependent handoff — a heisenbug by
// construction: the producer fills a buffer and volatile-writes a flag
// once; the consumer volatile-reads the flag once and then reads the
// buffer. Whether the buffer accesses race depends on whether the
// scheduler happened to run the consumer's volatile read after the
// producer's volatile write (a real program would spin, but a single
// unsuccessful check is exactly how rare order-violation bugs look).
func RacyHandoff(items int) sim.Program {
	return sim.Program{
		Name: "racy-handoff",
		Main: func(t *sim.Thread) {
			flag := sim.Volatile(0)
			buf := func(i int) sim.Var { return sim.Var(microVarBase + i) }
			p := t.Fork(func(pt *sim.Thread) {
				for i := 0; i < items; i++ {
					pt.Write(buf(i), sim.Site(microSiteBase+500+i), 1)
				}
				pt.VolWrite(flag)
			})
			c := t.Fork(func(ct *sim.Thread) {
				ct.Work(3) // racing the producer to the flag
				ct.VolRead(flag)
				for i := 0; i < items; i++ {
					ct.Read(buf(i), sim.Site(microSiteBase+i), 1)
				}
			})
			t.Join(p)
			t.Join(c)
		},
	}
}

// SafeProducerConsumer is the properly ordered variant: the producer runs
// to completion and publishes before the consumers are even forked, so
// every consumer's read is ordered after the writes regardless of
// schedule. Race-free by construction.
func SafeProducerConsumer(items, consumers int) sim.Program {
	return sim.Program{
		Name: "safe-producer-consumer",
		Main: func(t *sim.Thread) {
			buf := func(i int) sim.Var { return sim.Var(microVarBase + i) }
			p := t.Fork(func(pt *sim.Thread) {
				for i := 0; i < items; i++ {
					pt.Write(buf(i), sim.Site(microSiteBase+500+i), 1)
				}
				pt.VolWrite(0)
			})
			t.Join(p)
			var kids []vclock.Thread
			for c := 0; c < consumers; c++ {
				kids = append(kids, t.Fork(func(ct *sim.Thread) {
					ct.VolRead(0)
					for i := 0; i < items; i++ {
						ct.Read(buf(i), sim.Site(microSiteBase+i), 1)
					}
				}))
			}
			for _, k := range kids {
				t.Join(k)
			}
		},
	}
}

// BrokenPublish is the classic unsafe publication bug: the producer writes
// the buffer and raises a plain (non-volatile) flag variable; a consumer
// forked concurrently reads the buffer with no ordering. Every buffer slot
// races.
func BrokenPublish(items int) sim.Program {
	return sim.Program{
		Name: "broken-publish",
		Main: func(t *sim.Thread) {
			buf := func(i int) sim.Var { return sim.Var(microVarBase + i) }
			flag := sim.Var(microVarBase + 999)
			p := t.Fork(func(pt *sim.Thread) {
				for i := 0; i < items; i++ {
					pt.Write(buf(i), sim.Site(microSiteBase+500+i), 1)
				}
				pt.Write(flag, sim.Site(microSiteBase+990), 1) // plain flag: no edge
			})
			c := t.Fork(func(ct *sim.Thread) {
				ct.Read(flag, sim.Site(microSiteBase+991), 2)
				for i := 0; i < items; i++ {
					ct.Read(buf(i), sim.Site(microSiteBase+i), 2)
				}
			})
			t.Join(p)
			t.Join(c)
		},
	}
}

// ReadersWriters models a reader-preference readers/writers idiom using a
// single lock for writers and for reader bookkeeping. All data accesses
// are lock-ordered; race-free.
func ReadersWriters(readers, rounds int) sim.Program {
	return sim.Program{
		Name: "readers-writers",
		Main: func(t *sim.Thread) {
			const lk = sim.Lock(1)
			data := sim.Var(microVarBase + 100)
			var kids []vclock.Thread
			for r := 0; r < readers; r++ {
				kids = append(kids, t.Fork(func(rt *sim.Thread) {
					for i := 0; i < rounds; i++ {
						rt.Lock(lk)
						rt.Read(data, sim.Site(microSiteBase+100), 3)
						rt.Unlock(lk)
						rt.Work(2)
					}
				}))
			}
			w := t.Fork(func(wt *sim.Thread) {
				for i := 0; i < rounds; i++ {
					wt.Lock(lk)
					wt.Write(data, sim.Site(microSiteBase+101), 3)
					wt.Unlock(lk)
					wt.Work(3)
				}
			})
			kids = append(kids, w)
			for _, k := range kids {
				t.Join(k)
			}
		},
	}
}

// PhaseBarrier models barrier-style phases via fork/join waves: each phase
// forks workers that write disjoint then shared slots, joins them, and the
// next phase reads what the previous wrote. Race-free.
func PhaseBarrier(workers, phases int) sim.Program {
	return sim.Program{
		Name: "phase-barrier",
		Main: func(t *sim.Thread) {
			slot := func(p, w int) sim.Var { return sim.Var(microVarBase + 200 + p*workers + w) }
			for p := 0; p < phases; p++ {
				var wave []vclock.Thread
				for w := 0; w < workers; w++ {
					w := w
					p := p
					wave = append(wave, t.Fork(func(wt *sim.Thread) {
						if p > 0 {
							// Read the previous phase's results.
							for v := 0; v < workers; v++ {
								wt.Read(slot(p-1, v), sim.Site(microSiteBase+200), 4)
							}
						}
						wt.Write(slot(p, w), sim.Site(microSiteBase+201), 4)
					}))
				}
				for _, k := range wave {
					t.Join(k)
				}
			}
		},
	}
}

// DoubleBuffer models the double-buffered pipeline idiom: phases alternate
// between two buffers, each phase's (freshly forked) workers reading the
// previous buffer and overwriting the other. Fork/join barriers make it
// race-free, but each slot is written by a different thread every other
// phase with no lock in sight — a pattern the lockset discipline must
// false-positive on.
func DoubleBuffer(workers, phases int) sim.Program {
	return sim.Program{
		Name: "double-buffer",
		Main: func(t *sim.Thread) {
			slot := func(b, w int) sim.Var { return sim.Var(microVarBase + 300 + b*workers + w) }
			for p := 0; p < phases; p++ {
				cur, prev := p%2, 1-p%2
				var wave []vclock.Thread
				for w := 0; w < workers; w++ {
					w := w
					wave = append(wave, t.Fork(func(wt *sim.Thread) {
						if p > 0 {
							for v := 0; v < workers; v++ {
								wt.Read(slot(prev, v), sim.Site(microSiteBase+300), 5)
							}
						}
						wt.Write(slot(cur, w), sim.Site(microSiteBase+301), 5)
					}))
				}
				for _, k := range wave {
					t.Join(k)
				}
			}
		},
	}
}

// MonitorQueue models a bounded handoff through a Java-style monitor:
// producers put items under a lock, waiting while the slot is full;
// consumers take items, waiting while it is empty; both notify the other
// side. Race-free: every data access happens under the monitor.
func MonitorQueue(items int) sim.Program {
	return sim.Program{
		Name: "monitor-queue",
		Main: func(t *sim.Thread) {
			const (
				mon  = sim.Lock(1)
				cv   = sim.Cond(1)
				slot = sim.Var(microVarBase + 400)
			)
			full := false
			produced, consumed := 0, 0
			producer := t.Fork(func(p *sim.Thread) {
				for produced < items {
					p.Lock(mon)
					for full {
						p.Wait(cv, mon)
					}
					p.Write(slot, sim.Site(microSiteBase+400), 6)
					full = true
					produced++
					p.NotifyAll(cv)
					p.Unlock(mon)
				}
			})
			consumer := t.Fork(func(c *sim.Thread) {
				for consumed < items {
					c.Lock(mon)
					for !full {
						c.Wait(cv, mon)
					}
					c.Read(slot, sim.Site(microSiteBase+401), 6)
					full = false
					consumed++
					c.NotifyAll(cv)
					c.Unlock(mon)
				}
			})
			t.Join(producer)
			t.Join(consumer)
		},
	}
}
