package workload

import "math/rand"

// tier is a group of races sharing an occurrence profile. The tier
// structure reproduces Table 2's central observation: each benchmark mixes
// races that occur in essentially every fully sampled trial with races so
// rare they surface only across a thousand-plus trials.
type tier struct {
	count   int
	occ     float64
	repeats int // base; race i adds i%3
	hot     int // how many races of this tier live in hot code
}

// buildRaces deterministically assigns race ends to worker pairs that
// share a fork wave (so both ends are live together) and span cliques (so
// background locking rarely orders them).
func buildRaces(spec *Spec, seed int64, tiers []tier) {
	rng := rand.New(rand.NewSource(seed))
	id := 0
	for _, ti := range tiers {
		for k := 0; k < ti.count; k++ {
			waves := (spec.Workers + spec.WaveSize - 1) / spec.WaveSize
			// Prefer waves with at least two workers.
			wave := id % waves
			base := wave * spec.WaveSize
			n := spec.Workers - base
			if n > spec.WaveSize {
				n = spec.WaveSize
			}
			if n < 2 {
				wave = 0
				base = 0
				n = min(spec.WaveSize, spec.Workers)
			}
			wa := base + rng.Intn(n)
			wb := wa
			for wb == wa || spec.clique(wb) == spec.clique(wa) {
				wb = base + rng.Intn(n)
			}
			spec.Races = append(spec.Races, RaceSpec{
				ID:         id,
				Occurrence: ti.occ,
				Repeats:    ti.repeats + id%3,
				Hot:        k < ti.hot,
				Kind:       RaceKind(id % 3),
				WA:         wa,
				WB:         wb,
			})
			id++
		}
	}
}

// Eclipse models the DaCapo eclipse benchmark: 16 total threads, at most 8
// live, 77 distinct races about a third of which are frequent enough to be
// evaluation races (Table 2 row 1). Four of the frequent races live in hot
// code, reproducing the races LiteRace consistently misses (Figure 6).
func Eclipse() *Spec {
	s := &Spec{
		Name:           "eclipse",
		Workers:        15,
		WaveSize:       7,
		Cliques:        3,
		Iters:          250,
		VarsPerClique:  6,
		LocksPerClique: 2,
		HotOpsPerIter:  4,
		AllocPerIter:   24,
		WorkPerIter:    4,
		NurseryWords:   1024,
		GlobalSyncProb: 0.02,
		VolatileProb:   0.05,
	}
	buildRaces(s, 101, []tier{
		{count: 27, occ: 0.75, repeats: 1, hot: 4},
		{count: 17, occ: 0.22, repeats: 1},
		{count: 11, occ: 0.05, repeats: 1},
		{count: 22, occ: 0.004, repeats: 1},
	})
	return s
}

// Hsqldb models the DaCapo hsqldb benchmark: 403 total threads in waves of
// ~101 live, 28 distinct races of which 23 occur in every trial (Table 2
// row 2).
func Hsqldb() *Spec {
	s := &Spec{
		Name:           "hsqldb",
		Workers:        402,
		WaveSize:       101,
		Cliques:        25,
		Iters:          150,
		VarsPerClique:  8,
		LocksPerClique: 2,
		HotOpsPerIter:  2,
		AllocPerIter:   16,
		WorkPerIter:    25,
		NurseryWords:   8192,
		GlobalSyncProb: 0.02,
		VolatileProb:   0.04,
	}
	buildRaces(s, 202, []tier{
		{count: 23, occ: 1.0, repeats: 2},
		{count: 5, occ: 0.003, repeats: 1},
	})
	return s
}

// Xalan models the DaCapo xalan benchmark: 9 threads all live at once, 73
// distinct races with a long tail of rare ones (Table 2 row 3).
func Xalan() *Spec {
	s := &Spec{
		Name:           "xalan",
		Workers:        8,
		WaveSize:       8,
		Cliques:        2,
		Iters:          400,
		VarsPerClique:  6,
		LocksPerClique: 2,
		HotOpsPerIter:  4,
		AllocPerIter:   24,
		WorkPerIter:    4,
		NurseryWords:   1024,
		GlobalSyncProb: 0.015,
		VolatileProb:   0.05,
	}
	buildRaces(s, 303, []tier{
		{count: 19, occ: 0.6, repeats: 1, hot: 2},
		{count: 15, occ: 0.22, repeats: 1},
		{count: 36, occ: 0.045, repeats: 1},
		{count: 3, occ: 0.004, repeats: 1},
	})
	return s
}

// PseudoJBB models the fixed-workload SPECjbb2000 variant: 37 total
// threads, at most 9 live, 14 distinct races, 11 of them frequent (Table 2
// row 4).
func PseudoJBB() *Spec {
	s := &Spec{
		Name:           "pseudojbb",
		Workers:        36,
		WaveSize:       8,
		Cliques:        4,
		Iters:          100,
		VarsPerClique:  6,
		LocksPerClique: 2,
		HotOpsPerIter:  3,
		AllocPerIter:   20,
		WorkPerIter:    4,
		NurseryWords:   1536,
		GlobalSyncProb: 0.02,
		VolatileProb:   0.04,
	}
	buildRaces(s, 404, []tier{
		{count: 11, occ: 0.92, repeats: 2, hot: 1},
		{count: 3, occ: 0.3, repeats: 1},
	})
	return s
}

// All returns the four benchmark models in the paper's order.
func All() []*Spec {
	return []*Spec{Eclipse(), Hsqldb(), Xalan(), PseudoJBB()}
}

// ByName returns the named benchmark model, or nil.
func ByName(name string) *Spec {
	for _, s := range All() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Mini is a small fast model for tests: 7 threads, 8 races, most certain
// to occur.
func Mini() *Spec {
	s := &Spec{
		Name:           "mini",
		Workers:        6,
		WaveSize:       6,
		Cliques:        2,
		Iters:          60,
		VarsPerClique:  4,
		LocksPerClique: 2,
		HotOpsPerIter:  2,
		AllocPerIter:   16,
		WorkPerIter:    2,
		NurseryWords:   256,
		GlobalSyncProb: 0.02,
		VolatileProb:   0.04,
	}
	buildRaces(s, 505, []tier{
		{count: 6, occ: 1.0, repeats: 1, hot: 1},
		{count: 2, occ: 0.3, repeats: 1},
	})
	return s
}
