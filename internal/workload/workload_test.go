package workload_test

import (
	"testing"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/sim"
	"pacer/internal/workload"
)

func TestSpecThreadCountsMatchTable2(t *testing.T) {
	want := map[string][2]int{
		"eclipse":   {16, 8},
		"hsqldb":    {403, 102},
		"xalan":     {9, 9},
		"pseudojbb": {37, 9},
	}
	for _, s := range workload.All() {
		w := want[s.Name]
		if s.TotalThreads() != w[0] {
			t.Errorf("%s: total threads = %d, want %d", s.Name, s.TotalThreads(), w[0])
		}
		if s.MaxLiveThreads() != w[1] {
			t.Errorf("%s: max live = %d, want %d", s.Name, s.MaxLiveThreads(), w[1])
		}
	}
}

func TestSpecRaceCountsMatchTable2(t *testing.T) {
	want := map[string]int{"eclipse": 77, "hsqldb": 28, "xalan": 73, "pseudojbb": 14}
	for _, s := range workload.All() {
		if len(s.Races) != want[s.Name] {
			t.Errorf("%s: %d planted races, want %d", s.Name, len(s.Races), want[s.Name])
		}
	}
}

func TestRacePairsValid(t *testing.T) {
	for _, s := range workload.All() {
		for _, r := range s.Races {
			if r.WA == r.WB {
				t.Errorf("%s race %d: self race", s.Name, r.ID)
			}
			if r.WA/s.WaveSize != r.WB/s.WaveSize {
				t.Errorf("%s race %d: ends %d,%d in different waves", s.Name, r.ID, r.WA, r.WB)
			}
			if r.WA%s.Cliques == r.WB%s.Cliques {
				t.Errorf("%s race %d: ends share a clique", s.Name, r.ID)
			}
			if r.WA >= s.Workers || r.WB >= s.Workers {
				t.Errorf("%s race %d: worker out of range", s.Name, r.ID)
			}
		}
	}
}

func runTrial(t *testing.T, s *workload.Spec, seed int64, d detector.Detector, target float64) (*sim.Result, *detector.Collector) {
	t.Helper()
	col := detector.NewCollector()
	cfg := sim.Config{
		Seed:               seed,
		InstrumentAccesses: true,
		SampleTarget:       target,
		NurseryWords:       8192,
	}
	if d != nil {
		cfg.Detector = d
	}
	res, err := sim.Run(s.Program(seed), cfg)
	if err != nil {
		t.Fatalf("%s seed %d: %v", s.Name, seed, err)
	}
	return res, col
}

func TestMiniThreadCountsObserved(t *testing.T) {
	s := workload.Mini()
	res, err := sim.Run(s.Program(1), sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThreadsTotal != s.TotalThreads() {
		t.Errorf("observed %d threads, want %d", res.ThreadsTotal, s.TotalThreads())
	}
	if res.MaxLiveThreads > s.MaxLiveThreads() {
		t.Errorf("observed %d live threads, want ≤ %d", res.MaxLiveThreads, s.MaxLiveThreads())
	}
}

// Under full tracking, certain races (occurrence 1.0) are detected in
// nearly every schedule, and all reports land on race variables —
// background state is properly synchronized.
func TestMiniRacesDetectedAndPrecise(t *testing.T) {
	s := workload.Mini()
	detectedTrials := 0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		col := detector.NewCollector()
		_, err := sim.Run(s.Program(seed), sim.Config{
			Seed:               seed,
			Detector:           fasttrack.New(col.Report),
			InstrumentAccesses: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		perRace := map[int]bool{}
		for _, r := range col.Dynamic {
			id, ok := s.RaceOf(r.Var)
			if !ok {
				t.Fatalf("seed %d: report on non-race variable: %v", seed, r)
			}
			perRace[id] = true
		}
		if len(perRace) >= 4 {
			detectedTrials++
		}
	}
	if detectedTrials < trials*7/10 {
		t.Errorf("certain races detected in only %d/%d trials", detectedTrials, trials)
	}
}

// The full benchmarks run cleanly under PACER with sampling and only ever
// report race variables.
func TestBenchmarksRunCleanUnderPacer(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark trials are slow")
	}
	for _, s := range workload.All() {
		col := detector.NewCollector()
		_, err := sim.Run(s.Program(7), sim.Config{
			Seed:               7,
			Detector:           core.New(col.Report),
			InstrumentAccesses: true,
			SampleTarget:       0.25,
			NurseryWords:       8192,
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, r := range col.Dynamic {
			if _, ok := s.RaceOf(r.Var); !ok {
				t.Fatalf("%s: report on non-race variable %v", s.Name, r)
			}
		}
	}
}

// Occurrence gating: with occurrence 1.0 the plan always schedules the
// race; rare races almost never occur.
func TestOccurrencePlans(t *testing.T) {
	s := workload.Hsqldb()
	certain, rare := 0, 0
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		if s.Occurs(seed, 0) { // tier 1: occurrence 1.0
			certain++
		}
		if s.Occurs(seed, 27) { // tier 2: occurrence 0.003
			rare++
		}
	}
	if certain != trials {
		t.Errorf("certain race occurred in %d/%d plans", certain, trials)
	}
	if rare > trials/4 {
		t.Errorf("rare race occurred in %d/%d plans", rare, trials)
	}
}

func TestRaceOfMapping(t *testing.T) {
	s := workload.Eclipse()
	if id, ok := s.RaceOf(event.Var(workload.RaceVarBase + 5)); !ok || id != 5 {
		t.Errorf("RaceOf(base+5) = %d, %v", id, ok)
	}
	if _, ok := s.RaceOf(100); ok {
		t.Error("background variable mapped to a race")
	}
	if _, ok := s.RaceOf(event.Var(workload.RaceVarBase + len(s.Races))); ok {
		t.Error("out-of-range race variable mapped")
	}
}

func TestByName(t *testing.T) {
	if workload.ByName("xalan") == nil {
		t.Error("xalan not found")
	}
	if workload.ByName("nope") != nil {
		t.Error("unknown benchmark found")
	}
}

func TestHotRacesPresent(t *testing.T) {
	hot := 0
	for _, r := range workload.Eclipse().Races {
		if r.Hot {
			hot++
		}
	}
	if hot != 4 {
		t.Errorf("eclipse hot races = %d, want 4", hot)
	}
}
