package workload_test

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/fasttrack"
	"pacer/internal/lockset"
	"pacer/internal/sim"
	"pacer/internal/workload"
)

func runMicro(t *testing.T, p sim.Program, seed int64) *detector.Collector {
	t.Helper()
	col := detector.NewCollector()
	_, err := sim.Run(p, sim.Config{
		Seed: seed, Detector: fasttrack.New(col.Report), InstrumentAccesses: true,
	})
	if err != nil {
		t.Fatalf("%s seed %d: %v", p.Name, seed, err)
	}
	return col
}

func TestSafeProducerConsumerRaceFree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if c := runMicro(t, workload.SafeProducerConsumer(8, 3), seed); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: %v", seed, c.Dynamic[0])
		}
	}
}

func TestBrokenPublishAlwaysRacy(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := runMicro(t, workload.BrokenPublish(4), seed)
		if c.DynamicCount() == 0 {
			t.Fatalf("seed %d: unsafe publication produced no races", seed)
		}
		// Every buffer slot and the flag itself can race.
		if c.DistinctCount() < 2 {
			t.Errorf("seed %d: only %d distinct races", seed, c.DistinctCount())
		}
	}
}

func TestReadersWritersRaceFree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if c := runMicro(t, workload.ReadersWriters(4, 15), seed); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: %v", seed, c.Dynamic[0])
		}
	}
}

func TestPhaseBarrierRaceFree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if c := runMicro(t, workload.PhaseBarrier(4, 3), seed); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: %v", seed, c.Dynamic[0])
		}
	}
}

// RacyHandoff is a heisenbug: across schedules it must sometimes race and
// sometimes not.
func TestRacyHandoffIsScheduleDependent(t *testing.T) {
	racy, clean := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		if runMicro(t, workload.RacyHandoff(4), seed).DynamicCount() > 0 {
			racy++
		} else {
			clean++
		}
	}
	if racy == 0 || clean == 0 {
		t.Fatalf("handoff not schedule-dependent: racy=%d clean=%d", racy, clean)
	}
}

func TestDoubleBufferRaceFree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if c := runMicro(t, workload.DoubleBuffer(4, 4), seed); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: %v", seed, c.Dynamic[0])
		}
	}
}

// The lockset detector false-positives on the double-buffer idiom (slots
// rewritten by different threads under pure fork/join ordering), while
// happens-before detectors stay silent — the paper's precision argument on
// a classic pattern.
func TestLocksetFalsePositiveOnDoubleBuffer(t *testing.T) {
	col := detector.NewCollector()
	_, err := sim.Run(workload.DoubleBuffer(4, 4), sim.Config{
		Seed: 1, Detector: lockset.New(col.Report), InstrumentAccesses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.DynamicCount() == 0 {
		t.Fatal("expected lockset false positives on double-buffered fork/join phases")
	}
}

func TestMonitorQueueRaceFreeAndComplete(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if c := runMicro(t, workload.MonitorQueue(10), seed); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: monitor queue raced: %v", seed, c.Dynamic[0])
		}
	}
}
