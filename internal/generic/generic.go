// Package generic implements the GENERIC vector-clock race detector of
// Section 2.1 (Algorithms 1-6, 14-15): the textbook algorithm that keeps a
// full vector clock for the reads and the writes of every variable and
// performs O(n) analysis at every operation. It is sound and precise but
// slow; it exists as the baseline FASTTRACK and PACER are measured against.
package generic

import (
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

type varMeta struct {
	r, w           *vclock.VC
	rSites, wSites []event.Site
}

// Detector is the GENERIC analysis. It is not safe for concurrent use.
type Detector struct {
	sync   *detector.BaseSync
	vars   map[event.Var]*varMeta
	report detector.Reporter
	stats  detector.Counters
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
)

// New returns a GENERIC detector reporting races to report (which may be
// nil to discard reports).
func New(report detector.Reporter) *Detector {
	d := &Detector{vars: make(map[event.Var]*varMeta), report: report}
	d.sync = detector.NewBaseSync(&d.stats)
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "generic" }

// Stats returns the detector's operation counters.
func (d *Detector) Stats() *detector.Counters { return &d.stats }

func (d *Detector) varMeta(x event.Var) *varMeta {
	m, ok := d.vars[x]
	if !ok {
		m = &varMeta{r: vclock.New(0), w: vclock.New(0)}
		d.vars[x] = m
	}
	return m
}

func (d *Detector) emit(r detector.Race) {
	d.stats.Races++
	if d.report != nil {
		d.report(r)
	}
}

func siteAt(sites []event.Site, t vclock.Thread) event.Site {
	if int(t) < len(sites) {
		return sites[t]
	}
	return 0
}

func setSite(sites *[]event.Site, t vclock.Thread, s event.Site) {
	for int(t) >= len(*sites) {
		*sites = append(*sites, 0)
	}
	(*sites)[t] = s
}

// checkLeq reports, for every component u with prior(u) > ct(u), a race of
// the given kind whose first access is thread u's recorded access.
func (d *Detector) checkLeq(prior *vclock.VC, sites []event.Site, ct *vclock.VC,
	kind detector.RaceKind, x event.Var, t vclock.Thread, site event.Site) {
	if prior.Leq(ct) {
		return
	}
	for u := vclock.Thread(0); int(u) < prior.Len(); u++ {
		if prior.Get(u) > ct.Get(u) {
			d.emit(detector.Race{
				Var: x, Kind: kind,
				FirstThread: u, SecondThread: t,
				FirstSite: siteAt(sites, u), SecondSite: site,
			})
		}
	}
}

// Read implements Algorithm 5: check W_x ⊑ C_t, then R_x(t) ← C_t(t).
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.ReadSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	m := d.varMeta(x)
	d.checkLeq(m.w, m.wSites, ct, detector.WriteRead, x, t, site)
	m.r.Set(t, ct.Get(t))
	setSite(&m.rSites, t, site)
}

// Write implements Algorithm 6: check W_x ⊑ C_t and R_x ⊑ C_t, then
// W_x(t) ← C_t(t).
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.WriteSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	m := d.varMeta(x)
	d.checkLeq(m.w, m.wSites, ct, detector.WriteWrite, x, t, site)
	d.checkLeq(m.r, m.rSites, ct, detector.ReadWrite, x, t, site)
	m.w.Set(t, ct.Get(t))
	setSite(&m.wSites, t, site)
}

// Acquire implements Algorithm 1.
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) { d.sync.Acquire(t, m) }

// Release implements Algorithm 2.
func (d *Detector) Release(t vclock.Thread, m event.Lock) { d.sync.Release(t, m) }

// Fork implements Algorithm 3.
func (d *Detector) Fork(t, u vclock.Thread) { d.sync.Fork(t, u) }

// Join implements Algorithm 4.
func (d *Detector) Join(t, u vclock.Thread) { d.sync.Join(t, u) }

// VolRead implements Algorithm 14.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) { d.sync.VolRead(t, vx) }

// VolWrite implements Algorithm 15.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) { d.sync.VolWrite(t, vx) }

// VarsTracked implements detector.VarAccounted.
func (d *Detector) VarsTracked() int { return len(d.vars) }

// MetadataWords implements detector.MemoryAccounted.
func (d *Detector) MetadataWords() int {
	w := d.sync.MetadataWords()
	for _, m := range d.vars {
		w += m.r.MemoryWords() + m.w.MemoryWords() + len(m.rSites)/2 + len(m.wSites)/2 + 2
	}
	return w
}
