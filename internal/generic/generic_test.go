package generic_test

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/generic"
)

func mk(r detector.Reporter) detector.Detector { return generic.New(r) }

func TestWriteWriteRace(t *testing.T) {
	b := dtest.NewTB().Write(0, 1).Write(1, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1", c.DynamicCount())
	}
	r := c.Dynamic[0]
	if r.Kind != detector.WriteWrite || r.FirstThread != 0 || r.SecondThread != 1 {
		t.Errorf("unexpected race %v", r)
	}
}

func TestWriteReadRace(t *testing.T) {
	b := dtest.NewTB().Write(0, 1).Read(1, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 || c.Dynamic[0].Kind != detector.WriteRead {
		t.Fatalf("got %v", c.Dynamic)
	}
}

func TestReadWriteRace(t *testing.T) {
	b := dtest.NewTB().Read(0, 1).Write(1, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 || c.Dynamic[0].Kind != detector.ReadWrite {
		t.Fatalf("got %v", c.Dynamic)
	}
}

func TestReadsDoNotRace(t *testing.T) {
	b := dtest.NewTB().Read(0, 1).Read(1, 1).Read(2, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 0 {
		t.Fatalf("reads raced: %v", c.Dynamic)
	}
}

func TestLockPreventsRace(t *testing.T) {
	b := dtest.NewTB().
		Acq(0, 9).Write(0, 1).Rel(0, 9).
		Acq(1, 9).Write(1, 1).Read(1, 1).Rel(1, 9)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 0 {
		t.Fatalf("lock-ordered accesses raced: %v", c.Dynamic)
	}
}

func TestDifferentLocksDoNotSynchronize(t *testing.T) {
	b := dtest.NewTB().
		Acq(0, 1).Write(0, 1).Rel(0, 1).
		Acq(1, 2).Write(1, 1).Rel(1, 2)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1", c.DynamicCount())
	}
}

func TestForkOrders(t *testing.T) {
	b := dtest.NewTB().Write(0, 1).Fork(0, 1).Read(1, 1).Write(1, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 0 {
		t.Fatalf("fork-ordered accesses raced: %v", c.Dynamic)
	}
}

func TestJoinOrders(t *testing.T) {
	b := dtest.NewTB().Fork(0, 1).Write(1, 1).Join(0, 1).Read(0, 1).Write(0, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 0 {
		t.Fatalf("join-ordered accesses raced: %v", c.Dynamic)
	}
}

func TestForkDoesNotOrderParentAfterChild(t *testing.T) {
	// The child's write is concurrent with the parent's later write.
	b := dtest.NewTB().Fork(0, 1).Write(1, 1).Write(0, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1", c.DynamicCount())
	}
}

func TestVolatileSynchronizes(t *testing.T) {
	b := dtest.NewTB().
		Write(0, 1).VolWrite(0, 3).
		VolRead(1, 3).Read(1, 1).Write(1, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 0 {
		t.Fatalf("volatile-ordered accesses raced: %v", c.Dynamic)
	}
}

func TestVolatileReadAloneDoesNotSynchronize(t *testing.T) {
	// A volatile read without a prior write of the same volatile carries no
	// happens-before edge from the writer thread.
	b := dtest.NewTB().Write(0, 1).VolRead(1, 3).Write(1, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1", c.DynamicCount())
	}
}

func TestTransitiveHappensBefore(t *testing.T) {
	// t0 -(lock 1)-> t1 -(lock 2)-> t2: transitivity orders t0's write
	// before t2's read.
	b := dtest.NewTB().
		Write(0, 1).Acq(0, 1).Rel(0, 1).
		Acq(1, 1).Rel(1, 1).Acq(1, 2).Rel(1, 2).
		Acq(2, 2).Rel(2, 2).Read(2, 1).Write(2, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 0 {
		t.Fatalf("transitively ordered accesses raced: %v", c.Dynamic)
	}
}

func TestConcurrentWritesBothRecorded(t *testing.T) {
	// GENERIC keeps a full write vector: a third write ordered after only
	// one of two concurrent writes still races with the other.
	b := dtest.NewTB().
		Write(0, 1). // A
		Write(1, 1). // B, races with A
		Rel(1, 5).
		Acq(2, 5).
		Write(2, 1) // C: ordered after B, concurrent with A
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 2 {
		t.Fatalf("races = %d (%v), want 2", c.DynamicCount(), c.Dynamic)
	}
	last := c.Dynamic[1]
	if last.FirstThread != 0 || last.SecondThread != 2 {
		t.Errorf("third write should race with thread 0's write: %v", last)
	}
}

func TestMultipleConcurrentReadsAllRaceWithWrite(t *testing.T) {
	b := dtest.NewTB().Read(0, 1).Read(1, 1).Read(2, 1).Write(3, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 3 {
		t.Fatalf("races = %d, want 3 (one per concurrent read)", c.DynamicCount())
	}
	for _, r := range c.Dynamic {
		if r.Kind != detector.ReadWrite {
			t.Errorf("unexpected kind %v", r.Kind)
		}
	}
}

func TestRaceSitesReported(t *testing.T) {
	b := dtest.NewTB().WriteAt(0, 1, 111).WriteAt(1, 1, 222)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatal("expected one race")
	}
	r := c.Dynamic[0]
	if r.FirstSite != 111 || r.SecondSite != 222 {
		t.Errorf("sites = %d/%d, want 111/222", r.FirstSite, r.SecondSite)
	}
}

func TestSynchronizedTracesAreRaceFree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := event.Generate(event.Synchronized(6, 4000, seed))
		c := dtest.Run(tr, mk)
		if c.DynamicCount() != 0 {
			t.Fatalf("seed %d: false positives: %v", seed, c.Dynamic[0])
		}
	}
}

func TestRacyTracesReportRaces(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 5; seed++ {
		tr := event.Generate(event.Racy(6, 4000, seed))
		if dtest.Run(tr, mk).DynamicCount() > 0 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no races found in any racy trace")
	}
}

func TestStatsCounting(t *testing.T) {
	d := generic.New(nil)
	tr := dtest.NewTB().Write(0, 1).Read(1, 1).Acq(0, 1).Rel(0, 1).Trace
	detector.Replay(d, tr)
	s := d.Stats()
	if s.TotalReads() != 1 || s.TotalWrites() != 1 || s.TotalSyncOps() != 2 {
		t.Errorf("counters: reads=%d writes=%d syncs=%d", s.TotalReads(), s.TotalWrites(), s.TotalSyncOps())
	}
	if s.Races != 1 {
		t.Errorf("races counter = %d, want 1", s.Races)
	}
}

func TestMetadataWordsGrows(t *testing.T) {
	d := generic.New(nil)
	w0 := d.MetadataWords()
	b := dtest.NewTB()
	for x := event.Var(0); x < 50; x++ {
		b.Write(0, x)
	}
	detector.Replay(d, b.Trace)
	if d.MetadataWords() <= w0 {
		t.Error("metadata footprint did not grow with tracked variables")
	}
}

func TestName(t *testing.T) {
	if generic.New(nil).Name() != "generic" {
		t.Error("wrong name")
	}
}
