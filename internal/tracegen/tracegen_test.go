package tracegen_test

import (
	"bytes"
	"reflect"
	"testing"

	"pacer/internal/event"
	"pacer/internal/oracle"
	"pacer/internal/tracegen"
	"pacer/internal/vclock"
)

// TestGenerateWellFormed checks the feasibility invariants every generated
// trace must satisfy (Appendix A of the paper): locks are held by at most
// one thread and released only by their holder, threads act only after
// their fork, forked threads are fresh, joined threads never act again,
// and no lock is held at trace end.
func TestGenerateWellFormed(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		tr := tracegen.Generate(tracegen.CorpusConfig(seed))
		if len(tr) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		owner := map[event.Lock]vclock.Thread{}
		started := map[vclock.Thread]bool{0: true}
		joined := map[vclock.Thread]bool{}
		for i, e := range tr {
			if !started[e.Thread] {
				t.Fatalf("seed %d event %d: thread %d acts before being forked: %v", seed, i, e.Thread, e)
			}
			if joined[e.Thread] {
				t.Fatalf("seed %d event %d: thread %d acts after being joined: %v", seed, i, e.Thread, e)
			}
			switch e.Kind {
			case event.Acquire:
				m := event.Lock(e.Target)
				if cur, held := owner[m]; held {
					t.Fatalf("seed %d event %d: thread %d acquires m%d already held by %d", seed, i, e.Thread, m, cur)
				}
				owner[m] = e.Thread
			case event.Release:
				m := event.Lock(e.Target)
				if cur, held := owner[m]; !held || cur != e.Thread {
					t.Fatalf("seed %d event %d: thread %d releases m%d it does not hold", seed, i, e.Thread, m)
				}
				delete(owner, m)
			case event.Fork:
				u := vclock.Thread(e.Target)
				if started[u] {
					t.Fatalf("seed %d event %d: thread %d forked twice", seed, i, u)
				}
				started[u] = true
			case event.Join:
				u := vclock.Thread(e.Target)
				if !started[u] {
					t.Fatalf("seed %d event %d: join of never-forked thread %d", seed, i, u)
				}
				if joined[u] {
					t.Fatalf("seed %d event %d: thread %d joined twice", seed, i, u)
				}
				joined[u] = true
			}
		}
		if len(owner) != 0 {
			t.Fatalf("seed %d: locks still held at trace end: %v", seed, owner)
		}
	}
}

// TestGenerateDeterministic pins that identical configs produce identical
// traces — the property `racereplay verify -seed` depends on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := tracegen.CorpusConfig(seed)
		a := tracegen.Generate(cfg)
		b := tracegen.Generate(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestShardClusterVars checks the collision property the cluster shapes
// rely on: every returned variable hashes to one 64-shard stripe under the
// sharded backends' Fibonacci hash.
func TestShardClusterVars(t *testing.T) {
	vars := tracegen.ShardClusterVars(8)
	if len(vars) != 8 {
		t.Fatalf("got %d vars, want 8", len(vars))
	}
	hash := func(v event.Var) int { return int((uint32(v) * 2654435761) >> (32 - 6)) }
	want := hash(vars[0])
	seen := map[event.Var]bool{}
	for _, v := range vars {
		if v < 1<<16 {
			t.Errorf("cluster var x%d aliases the plain variable pools", v)
		}
		if seen[v] {
			t.Errorf("cluster var x%d duplicated", v)
		}
		seen[v] = true
		if h := hash(v); h != want {
			t.Errorf("cluster var x%d hashes to shard %d, want %d", v, h, want)
		}
	}
}

// TestGenerateFullyGuardedIsRaceFree: with every data access under its
// variable's guard lock and no adversarial shapes enabled, the generated
// trace must be provably race-free — the oracle's negative direction.
func TestGenerateFullyGuardedIsRaceFree(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := tracegen.Config{
			Seed: seed, Threads: 4, MaxForks: 8,
			Vars: 8, Locks: 2, Volatiles: 2,
			Steps: 400, PGuarded: 1.0, PWrite: 0.5, PBurst: 0.3,
		}
		rep := oracle.Analyze(tracegen.Generate(cfg))
		if len(rep.Pairs) != 0 {
			t.Fatalf("seed %d: fully guarded trace has ground-truth races: %v", seed, rep.SortedPairs())
		}
	}
}

// TestCorpusConfigCoverage: the generated sweep must actually contain
// races to make the precision checks meaningful, in a substantial fraction
// of traces.
func TestCorpusConfigCoverage(t *testing.T) {
	const n = 300
	racy := 0
	for seed := int64(0); seed < n; seed++ {
		rep := oracle.Analyze(tracegen.Generate(tracegen.CorpusConfig(seed)))
		if rep.DynamicRaces > 0 {
			racy++
		}
	}
	if racy < n/2 {
		t.Fatalf("only %d/%d generated traces contain races; the sweep is too tame", racy, n)
	}
	t.Logf("%d/%d generated traces contain ground-truth races", racy, n)
}

// TestScenariosLabeledCorrectly replays every ported scenario through the
// recording front-end and checks its Racy label against the oracle — the
// label is documentation, and documentation that disagrees with the ground
// truth is a bug in the scenario.
func TestScenariosLabeledCorrectly(t *testing.T) {
	names := map[string]bool{}
	for _, sc := range tracegen.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if names[sc.Name] {
				t.Fatalf("duplicate scenario name %q", sc.Name)
			}
			names[sc.Name] = true
			b, err := tracegen.RecordScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := event.ReadAnyTrace(bytes.NewReader(b))
			if err != nil {
				t.Fatal(err)
			}
			rep := oracle.Analyze(tr)
			if got := len(rep.Pairs) > 0; got != sc.Racy {
				t.Fatalf("scenario labeled Racy=%v but oracle found %d racing pairs: %v",
					sc.Racy, len(rep.Pairs), rep.SortedPairs())
			}
		})
	}
	if len(names) < 40 {
		t.Fatalf("only %d scenarios; the ported slice should hold at least 40", len(names))
	}
}

// TestRecordScenarioDeterministic pins byte-stable recording — the
// property the checked-in corpus regeneration test depends on.
func TestRecordScenarioDeterministic(t *testing.T) {
	sc := tracegen.Scenarios()[0]
	a, err := tracegen.RecordScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tracegen.RecordScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two recordings of one scenario differ")
	}
}
