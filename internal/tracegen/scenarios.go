package tracegen

import (
	"pacer"
)

// Scenario is one corpus scenario: a deterministic single-goroutine drive
// of the public detector API, ported from a shape in the Go race
// detector's scenario suite (runtime/race testdata). Racy records the
// suite's expectation — whether the shape contains at least one data race
// — and is cross-checked against the happens-before oracle when the
// corpus is built and replayed, so a mis-ported scenario cannot go
// unnoticed.
//
// Scenarios drive the API from one goroutine: the trace is the
// linearization the detector would record anyway, and the corpus stays
// byte-for-byte reproducible.
type Scenario struct {
	Name string
	Racy bool
	Run  func(d *pacer.Detector)
}

// Scenarios returns the corpus scenario slice, in corpus order.
func Scenarios() []Scenario {
	return scenarios
}

var scenarios = []Scenario{
	// --- plain shared-memory shapes ---
	{"NoRaceIntRW", false, func(d *pacer.Detector) {
		// x guarded by a mutex in both goroutines (NoRaceIntRWGlobalFuncs).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		m := d.NewMutex()
		m.Lock(t0)
		d.Write(t0, x, 1)
		m.Unlock(t0)
		m.Lock(t1)
		d.Read(t1, x, 2)
		m.Unlock(t1)
	}},
	{"RaceIntRW", true, func(d *pacer.Detector) {
		// The same read/write pair with no synchronization (RaceIntRWGlobalFuncs).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		d.Write(t0, x, 1)
		d.Read(t1, x, 2)
	}},
	{"RaceIntWW", true, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		d.Write(t0, x, 1)
		d.Write(t1, x, 2)
	}},
	{"NoRaceReadOnly", false, func(d *pacer.Detector) {
		// Concurrent readers of a value written before the forks.
		t0 := d.NewThread()
		x := d.NewVarID()
		d.Write(t0, x, 1)
		t1, t2 := d.Fork(t0), d.Fork(t0)
		d.Read(t1, x, 2)
		d.Read(t2, x, 3)
		d.Read(t0, x, 4)
	}},
	{"RaceSameSiteMirror", true, func(d *pacer.Detector) {
		// Both racing writes come from one program site (a single static
		// store executed by two goroutines): the two temporal orders of
		// the race collapse into one distinct (s, s) pair.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		d.Write(t0, x, 7)
		d.Write(t1, x, 7)
	}},
	{"RaceBothKinds", true, func(d *pacer.Detector) {
		// A write/write and a read/write race on one variable
		// (RaceIntRWClosures shape).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		d.Write(t0, x, 1)
		d.Read(t0, x, 2)
		d.Write(t1, x, 3)
	}},

	// --- mutex shapes ---
	{"NoRaceMutex", false, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		m := d.NewMutex()
		m.Lock(t0)
		d.Write(t0, x, 1)
		m.Unlock(t0)
		m.Lock(t1)
		d.Write(t1, x, 2)
		m.Unlock(t1)
	}},
	{"RaceMutexWrongLock", true, func(d *pacer.Detector) {
		// Each goroutine locks, but not the same lock (RaceMutex2 shape).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		m1, m2 := d.NewMutex(), d.NewMutex()
		m1.Lock(t0)
		d.Write(t0, x, 1)
		m1.Unlock(t0)
		m2.Lock(t1)
		d.Write(t1, x, 2)
		m2.Unlock(t1)
	}},
	{"RaceMutexUnlockTooEarly", true, func(d *pacer.Detector) {
		// t0 unlocks before its write, so the write escapes the critical
		// section and races with t1's guarded read.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		m := d.NewMutex()
		m.Lock(t0)
		m.Unlock(t0)
		d.Write(t0, x, 1)
		m.Lock(t1)
		d.Read(t1, x, 2)
		m.Unlock(t1)
	}},
	{"NoRaceMutexChain", false, func(d *pacer.Detector) {
		// Hand-over-hand: t0 → t1 → t2 through two different locks.
		t0 := d.NewThread()
		t1, t2 := d.Fork(t0), d.Fork(t0)
		x := d.NewVarID()
		ma, mb := d.NewMutex(), d.NewMutex()
		ma.Lock(t0)
		d.Write(t0, x, 1)
		ma.Unlock(t0)
		ma.Lock(t1)
		mb.Lock(t1)
		d.Write(t1, x, 2)
		mb.Unlock(t1)
		ma.Unlock(t1)
		mb.Lock(t2)
		d.Read(t2, x, 3)
		mb.Unlock(t2)
	}},
	{"NoRaceNestedLocks", false, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x, y := d.NewVarID(), d.NewVarID()
		mo, mi := d.NewMutex(), d.NewMutex()
		mo.Lock(t0)
		mi.Lock(t0)
		d.Write(t0, x, 1)
		d.Write(t0, y, 2)
		mi.Unlock(t0)
		mo.Unlock(t0)
		mo.Lock(t1)
		d.Read(t1, x, 3)
		mi.Lock(t1)
		d.Read(t1, y, 4)
		mi.Unlock(t1)
		mo.Unlock(t1)
	}},
	{"NoRaceFineGrained", false, func(d *pacer.Detector) {
		// Per-variable locks (NoRaceMutexSemaphore shape, per element).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x, y := d.NewVarID(), d.NewVarID()
		mx, my := d.NewMutex(), d.NewMutex()
		mx.Lock(t0)
		d.Write(t0, x, 1)
		mx.Unlock(t0)
		my.Lock(t1)
		d.Write(t1, y, 2)
		my.Unlock(t1)
		mx.Lock(t1)
		d.Read(t1, x, 3)
		mx.Unlock(t1)
		my.Lock(t0)
		d.Read(t0, y, 4)
		my.Unlock(t0)
	}},
	{"RaceFineGrainedMixup", true, func(d *pacer.Detector) {
		// Per-variable locks, but one goroutine grabs the wrong one.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		mx, my := d.NewMutex(), d.NewMutex()
		mx.Lock(t0)
		d.Write(t0, x, 1)
		mx.Unlock(t0)
		my.Lock(t1)
		d.Write(t1, x, 2)
		my.Unlock(t1)
	}},

	// --- RWMutex shapes ---
	{"NoRaceRWMutex", false, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		rw := d.NewRWMutex()
		rw.Lock(t0)
		d.Write(t0, x, 1)
		rw.Unlock(t0)
		rw.RLock(t1)
		d.Read(t1, x, 2)
		rw.RUnlock(t1)
		rw.Lock(t0)
		d.Write(t0, x, 3)
		rw.Unlock(t0)
	}},
	{"RaceRWMutexSkippedRLock", true, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		rw := d.NewRWMutex()
		rw.Lock(t0)
		d.Write(t0, x, 1)
		rw.Unlock(t0)
		d.Read(t1, x, 2) // reader forgot RLock
	}},
	{"NoRaceRWMutexManyReaders", false, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1, t2 := d.Fork(t0), d.Fork(t0)
		x := d.NewVarID()
		rw := d.NewRWMutex()
		rw.Lock(t0)
		d.Write(t0, x, 1)
		rw.Unlock(t0)
		rw.RLock(t1)
		rw.RLock(t2)
		d.Read(t1, x, 2)
		d.Read(t2, x, 3)
		rw.RUnlock(t1)
		rw.RUnlock(t2)
		rw.Lock(t0)
		d.Write(t0, x, 4)
		rw.Unlock(t0)
	}},
	{"RaceRWMutexWriteUnderRLock", true, func(d *pacer.Detector) {
		// A goroutine takes the read lock but writes (RaceRWMutexMultipleReaders
		// shape): concurrent with another reader's read and a later write.
		t0 := d.NewThread()
		t1, t2 := d.Fork(t0), d.Fork(t0)
		x := d.NewVarID()
		rw := d.NewRWMutex()
		rw.RLock(t1)
		d.Write(t1, x, 1) // write under the read lock
		rw.RUnlock(t1)
		rw.RLock(t2)
		d.Read(t2, x, 2)
		rw.RUnlock(t2)
		_ = t0
	}},

	// --- WaitGroup shapes ---
	{"NoRaceWaitGroup", false, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1, t2 := d.Fork(t0), d.Fork(t0)
		x1, x2 := d.NewVarID(), d.NewVarID()
		wg := d.NewWaitGroup()
		wg.Add(2)
		d.Write(t1, x1, 1)
		wg.Done(t1)
		d.Write(t2, x2, 2)
		wg.Done(t2)
		wg.Wait(t0)
		d.Read(t0, x1, 3)
		d.Read(t0, x2, 4)
	}},
	{"RaceWaitGroupReadBeforeWait", true, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		wg := d.NewWaitGroup()
		wg.Add(1)
		d.Write(t1, x, 1)
		wg.Done(t1)
		d.Read(t0, x, 2) // before Wait
		wg.Wait(t0)
	}},
	{"RaceWaitGroupMissedDone", true, func(d *pacer.Detector) {
		// One worker writes after its Done (RaceWaitGroupAsMutex shape):
		// the publication misses that write.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		wg := d.NewWaitGroup()
		wg.Add(1)
		wg.Done(t1)
		d.Write(t1, x, 1) // after Done: not published
		wg.Wait(t0)
		d.Read(t0, x, 2)
	}},
	{"NoRaceWaitGroupTwoPhase", false, func(d *pacer.Detector) {
		// Barrier reuse across two phases (NoRaceWaitGroupMultipleWait
		// shape): phase 2 workers are forked only after phase 1's Wait.
		t0 := d.NewThread()
		x := d.NewVarID()
		t1 := d.Fork(t0)
		wg1 := d.NewWaitGroup()
		wg1.Add(1)
		d.Write(t1, x, 1)
		wg1.Done(t1)
		wg1.Wait(t0)
		t2 := d.Fork(t0)
		wg2 := d.NewWaitGroup()
		wg2.Add(1)
		d.Write(t2, x, 2)
		wg2.Done(t2)
		wg2.Wait(t0)
		d.Read(t0, x, 3)
	}},

	// --- channel-shaped volatile handoffs ---
	{"NoRaceChan", false, func(d *pacer.Detector) {
		// c <- struct{}{} / <-c handoff publishing x (NoRaceChanSync).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		ch := d.NewVolatileID()
		d.Write(t1, x, 1)
		d.VolWrite(t1, ch) // send
		d.VolRead(t0, ch)  // receive
		d.Read(t0, x, 2)
	}},
	{"RaceChanWrongDirection", true, func(d *pacer.Detector) {
		// The "receiver" sends instead of receiving: no edge from the
		// writer to the reader (RaceChanWrongSend shape).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		ch := d.NewVolatileID()
		d.Write(t1, x, 1)
		d.VolWrite(t1, ch)
		d.VolWrite(t0, ch) // should have been a receive
		d.Read(t0, x, 2)
	}},
	{"NoRaceChanPingPong", false, func(d *pacer.Detector) {
		// Two goroutines alternate ownership of x through two channels.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		ping, pong := d.NewVolatileID(), d.NewVolatileID()
		d.Write(t0, x, 1)
		d.VolWrite(t0, ping)
		d.VolRead(t1, ping)
		d.Write(t1, x, 2)
		d.VolWrite(t1, pong)
		d.VolRead(t0, pong)
		d.Read(t0, x, 3)
	}},
	{"NoRaceProducerConsumer", false, func(d *pacer.Detector) {
		// A mutex-guarded queue carries items from producer to consumer
		// (NoRaceProducerConsumerUnbuffered shape, lock-based queue).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		item, q := d.NewVarID(), d.NewVarID()
		m := d.NewMutex()
		d.Write(t1, item, 1) // producer fills the item
		m.Lock(t1)
		d.Write(t1, q, 2) // enqueue
		m.Unlock(t1)
		m.Lock(t0)
		d.Read(t0, q, 3) // dequeue
		d.Read(t0, item, 4)
		m.Unlock(t0)
	}},
	{"RaceChanMissingHandoff", true, func(d *pacer.Detector) {
		// The consumer reads the payload without consuming the channel.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		ch := d.NewVolatileID()
		d.Write(t1, x, 1)
		d.VolWrite(t1, ch)
		d.Read(t0, x, 2) // no VolRead first
	}},

	// --- atomic / volatile publication shapes ---
	{"NoRaceAtomicPublish", false, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		flag := d.NewVolatileID()
		d.Write(t0, x, 1)
		d.VolWrite(t0, flag)
		d.VolRead(t1, flag)
		d.Read(t1, x, 2)
	}},
	{"RaceAtomicMissingLoad", true, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		flag := d.NewVolatileID()
		d.Write(t0, x, 1)
		d.VolWrite(t0, flag)
		d.Read(t1, x, 2) // reader skipped the atomic load
	}},
	{"NoRaceAtomicSpin", false, func(d *pacer.Detector) {
		// Spin on an atomic flag: several loads, the last one after the
		// publishing store carries the edge.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		flag := d.NewVolatileID()
		d.VolRead(t1, flag) // spin iteration before the store
		d.Write(t0, x, 1)
		d.VolWrite(t0, flag)
		d.VolRead(t1, flag) // observes the store
		d.Read(t1, x, 2)
	}},
	{"RaceAtomicStoreStore", true, func(d *pacer.Detector) {
		// Both goroutines publish through the same atomic but race on the
		// plain payload they both write first (RaceAtomicAddInt shape for
		// the non-atomic field).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		flag := d.NewVolatileID()
		d.Write(t0, x, 1)
		d.VolWrite(t0, flag)
		d.Write(t1, x, 2) // before consuming t0's store
		d.VolWrite(t1, flag)
	}},

	// --- fork/join lifecycle shapes ---
	{"NoRaceForkJoin", false, func(d *pacer.Detector) {
		t0 := d.NewThread()
		x := d.NewVarID()
		d.Write(t0, x, 1)
		t1 := d.Fork(t0)
		d.Write(t1, x, 2)
		d.Join(t0, t1)
		d.Read(t0, x, 3)
	}},
	{"RaceForkConcurrentParent", true, func(d *pacer.Detector) {
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		d.Write(t0, x, 1)
		d.Read(t1, x, 2)
	}},
	{"RaceMissingJoin", true, func(d *pacer.Detector) {
		// Parent reads the child's result without joining (RaceGoroutine
		// leak shape).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		d.Write(t1, x, 1)
		d.Read(t0, x, 2) // no Join(t0, t1)
	}},
	{"NoRaceForkTree", false, func(d *pacer.Detector) {
		// A tree of forks and joins: grandchild's write is published to
		// the root through two joins.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		t2 := d.Fork(t1)
		x := d.NewVarID()
		d.Write(t2, x, 1)
		d.Join(t1, t2)
		d.Write(t1, x, 2)
		d.Join(t0, t1)
		d.Read(t0, x, 3)
	}},
	{"NoRaceThreadChurn", false, func(d *pacer.Detector) {
		// Sequential short-lived workers, each joined before the next is
		// forked, all touching one variable.
		t0 := d.NewThread()
		x := d.NewVarID()
		for i := 0; i < 4; i++ {
			u := d.Fork(t0)
			d.Write(u, x, pacer.SiteID(10+i))
			d.Join(t0, u)
		}
		d.Read(t0, x, 20)
	}},
	{"RaceThreadChurnOneEscapes", true, func(d *pacer.Detector) {
		// Same churn, but one worker is never joined.
		t0 := d.NewThread()
		x := d.NewVarID()
		u1 := d.Fork(t0)
		d.Write(u1, x, 10)
		d.Join(t0, u1)
		u2 := d.Fork(t0)
		d.Write(u2, x, 11) // u2 never joined
		d.Read(t0, x, 20)
	}},

	// --- mixed / adversarial shapes ---
	{"RaceSameEpochRepeat", true, func(d *pacer.Detector) {
		// One unsynchronized write, then many same-epoch reads by another
		// thread: the race must be found although every read after the
		// first repeats the reader's epoch (same-epoch fast-path bait).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		d.Write(t0, x, 1)
		for i := 0; i < 8; i++ {
			d.Read(t1, x, 2)
		}
	}},
	{"NoRaceSameEpochRepeat", false, func(d *pacer.Detector) {
		// The same burst shape, properly handed off.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		m := d.NewMutex()
		m.Lock(t0)
		d.Write(t0, x, 1)
		m.Unlock(t0)
		m.Lock(t1)
		for i := 0; i < 8; i++ {
			d.Read(t1, x, 2)
		}
		m.Unlock(t1)
	}},
	{"RaceInitTwice", true, func(d *pacer.Detector) {
		// Double-checked init without synchronization: both goroutines
		// initialize the same slot (RaceOnce-gone-wrong shape).
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		d.Read(t0, x, 1) // check
		d.Write(t0, x, 2)
		d.Read(t1, x, 3) // check
		d.Write(t1, x, 4)
	}},
	{"NoRaceOnce", false, func(d *pacer.Detector) {
		// Once-style init: the winner initializes under a lock, everyone
		// reads after acquiring it.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		x := d.NewVarID()
		m := d.NewMutex()
		m.Lock(t0)
		d.Write(t0, x, 1)
		m.Unlock(t0)
		m.Lock(t1)
		d.Read(t1, x, 2)
		m.Unlock(t1)
		m.Lock(t0)
		d.Read(t0, x, 3)
		m.Unlock(t0)
	}},
	{"RaceShardClusterPair", true, func(d *pacer.Detector) {
		// Unsynchronized writes to two variables that collide into one
		// metadata shard of the 64-shard sharded backends, plus a guarded
		// control variable in the same cluster.
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		cluster := ShardClusterVars(3)
		m := d.NewMutex()
		d.Write(t0, cluster[0], 1)
		d.Write(t1, cluster[0], 2)
		d.Write(t1, cluster[1], 3)
		d.Read(t0, cluster[1], 4)
		m.Lock(t0)
		d.Write(t0, cluster[2], 5)
		m.Unlock(t0)
		m.Lock(t1)
		d.Write(t1, cluster[2], 6)
		m.Unlock(t1)
	}},
	{"NoRaceMixedPrimitives", false, func(d *pacer.Detector) {
		// Mutex + channel + waitgroup cooperating on three variables.
		t0 := d.NewThread()
		t1, t2 := d.Fork(t0), d.Fork(t0)
		a, b, c := d.NewVarID(), d.NewVarID(), d.NewVarID()
		m := d.NewMutex()
		ch := d.NewVolatileID()
		wg := d.NewWaitGroup()
		wg.Add(2)
		m.Lock(t1)
		d.Write(t1, a, 1)
		m.Unlock(t1)
		d.Write(t1, b, 2)
		d.VolWrite(t1, ch)
		wg.Done(t1)
		d.VolRead(t2, ch)
		d.Read(t2, b, 3)
		d.Write(t2, c, 4)
		wg.Done(t2)
		wg.Wait(t0)
		m.Lock(t0)
		d.Read(t0, a, 5)
		m.Unlock(t0)
		d.Read(t0, c, 6)
	}},
	{"RaceMixedPrimitivesOneHole", true, func(d *pacer.Detector) {
		// The same cooperation with the channel edge removed: b races.
		t0 := d.NewThread()
		t1, t2 := d.Fork(t0), d.Fork(t0)
		a, b := d.NewVarID(), d.NewVarID()
		m := d.NewMutex()
		wg := d.NewWaitGroup()
		wg.Add(2)
		m.Lock(t1)
		d.Write(t1, a, 1)
		m.Unlock(t1)
		d.Write(t1, b, 2)
		wg.Done(t1)
		d.Read(t2, b, 3) // no edge from t1's write
		wg.Done(t2)
		wg.Wait(t0)
		m.Lock(t0)
		d.Read(t0, a, 5)
		m.Unlock(t0)
	}},
}
