// Package tracegen generates randomized well-formed traces for the
// oracle-checked conformance corpus, and defines the corpus of scenario
// traces ported from the Go race detector's test-suite shapes.
//
// The generator is a superset of event.Generate aimed at adversarial
// coverage rather than workload realism: besides plain guarded/unguarded
// accesses it produces goroutine fork/join churn, RWMutex- and
// WaitGroup-shaped synchronization (the exact event patterns the public
// wrappers in the pacer package emit), channel-shaped volatile handoffs,
// same-epoch access bursts, single-site mirror races (both racing accesses
// share one program site, so the two temporal orders collapse into one
// distinct race), and shard-collision clusters (variables chosen to hash
// into one metadata shard of the sharded backends, serializing their slow
// paths on one stripe lock).
//
// Everything is deterministic in the seed: the conformance tests and the
// `racereplay verify -seed` reproduction path build identical traces from
// identical seeds.
package tracegen

import (
	"math/rand"

	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Config parameterizes Generate. The zero value is not useful; start from
// CorpusConfig or fill every field.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Threads is the maximum number of live threads (≥ 1). Thread 0 is the
	// main thread and never finishes.
	Threads int
	// MaxForks bounds the total number of forks, so fork/join churn can
	// retire many short-lived threads while the live count stays below
	// Threads. 0 means Threads-1 (no churn beyond the initial population).
	MaxForks int
	// Vars, Locks, Volatiles size the plain identifier pools.
	Vars, Locks, Volatiles int
	// RWMutexes, WaitGroups, Channels size the composite-synchronization
	// pools (each composite reserves its own locks/volatiles above the
	// plain pools).
	RWMutexes, WaitGroups, Channels int
	// MirrorVars adds variables whose every access uses one fixed site, so
	// their races are single-site mirror races.
	MirrorVars int
	// ClusterVars adds variables that all hash into a single 64-shard
	// metadata shard (the default shard count of the sharded backends).
	ClusterVars int
	// Steps is the number of generator steps; each step emits zero or more
	// events.
	Steps int
	// PGuarded is the probability that a plain data access runs under the
	// variable's guard lock.
	PGuarded float64
	// PWrite is the probability that a data access is a write.
	PWrite float64
	// PBurst is the probability that an access step repeats its access,
	// exercising the same-epoch fast paths.
	PBurst float64
}

// shardClusterBase is the first identifier considered for the
// shard-collision cluster; it is far above every other variable pool so
// cluster identifiers never alias plain, mirror, or scenario variables.
const shardClusterBase = 1 << 16

// defaultShards mirrors the default shard count of the sharded backends
// (internal/core, internal/fasttrack); fibHash mirrors their Fibonacci
// hash, so a cluster computed here collides there.
const defaultShards = 64

func fibHash(v event.Var) int {
	return int((uint32(v) * 2654435761) >> (32 - 6)) // 64 shards
}

// ShardClusterVars returns n variable identifiers ≥ shardClusterBase that
// all map to one metadata shard under the sharded backends' default
// 64-shard Fibonacci hash.
func ShardClusterVars(n int) []event.Var {
	out := make([]event.Var, 0, n)
	target := fibHash(shardClusterBase)
	for v := event.Var(shardClusterBase); len(out) < n; v++ {
		if fibHash(v) == target {
			out = append(out, v)
		}
	}
	return out
}

// Composite synchronization object state. RWMutex and WaitGroup reproduce
// the event patterns of the public pacer wrappers (sync.go): an RWMutex is
// a writer lock plus two publication volatiles; a WaitGroup is a single
// volatile that Done writes and Wait reads.
type rwState struct {
	m          event.Lock
	wPub, rPub event.Volatile
	writer     vclock.Thread // NoThread when no writer holds it
	readers    map[vclock.Thread]bool
}

type chanState struct {
	vx      event.Volatile
	payload event.Var
	site    event.Site
	full    bool // a send has been published and not yet received
}

type genThread struct {
	started  bool
	finished bool
	joined   bool
	held     []event.Lock
	doneWGs  []int // waitgroups this thread has already Done()d
}

type generator struct {
	cfg     Config
	rng     *rand.Rand
	tr      event.Trace
	threads []genThread
	forks   int
	owner   []vclock.Thread // plain lock owner, NoThread when free
	rws     []rwState
	chans   []chanState
	wgVols  []event.Volatile
	mirror  []event.Var
	cluster []event.Var
}

// Site numbering: every (variable, kind) pair gets its own site except for
// mirror variables, whose accesses all share one site. The bases keep the
// ranges disjoint from each other and from scenario sites.
func plainSite(v event.Var, write bool) event.Site {
	s := event.Site(10_000 + uint32(v)*2)
	if write {
		s++
	}
	return s
}

func mirrorSite(i int) event.Site { return event.Site(500 + i) }

func clusterSite(i int, write bool) event.Site {
	s := event.Site(40_000 + uint32(i)*2)
	if write {
		s++
	}
	return s
}

// Generate produces a random well-formed trace: locks are held by at most
// one thread and released only by their holder, RWMutex writer/reader
// exclusion is respected, threads act only between their fork and their
// finish, and joined threads never act again.
func Generate(cfg Config) event.Trace {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Vars < 1 {
		cfg.Vars = 1
	}
	if cfg.Locks < 1 {
		cfg.Locks = 1
	}
	if cfg.Volatiles < 1 {
		cfg.Volatiles = 1
	}
	if cfg.MaxForks <= 0 {
		cfg.MaxForks = cfg.Threads - 1
	}
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.threads = make([]genThread, 1, cfg.Threads)
	g.threads[0].started = true
	g.owner = make([]vclock.Thread, cfg.Locks)
	for i := range g.owner {
		g.owner[i] = vclock.NoThread
	}
	// Composite pools claim identifiers above the plain pools.
	nextLock := event.Lock(cfg.Locks)
	nextVol := event.Volatile(cfg.Volatiles)
	for i := 0; i < cfg.RWMutexes; i++ {
		g.rws = append(g.rws, rwState{
			m: nextLock, wPub: nextVol, rPub: nextVol + 1,
			writer: vclock.NoThread, readers: map[vclock.Thread]bool{},
		})
		nextLock++
		nextVol += 2
	}
	for i := 0; i < cfg.WaitGroups; i++ {
		g.wgVols = append(g.wgVols, nextVol)
		nextVol++
	}
	for i := 0; i < cfg.Channels; i++ {
		g.chans = append(g.chans, chanState{
			vx:      nextVol,
			payload: event.Var(8192 + i),
			site:    event.Site(30_000 + uint32(i)),
		})
		nextVol++
	}
	for i := 0; i < cfg.MirrorVars; i++ {
		g.mirror = append(g.mirror, event.Var(4096+i))
	}
	if cfg.ClusterVars > 0 {
		g.cluster = ShardClusterVars(cfg.ClusterVars)
	}

	for step := 0; step < cfg.Steps; step++ {
		g.step()
	}
	g.unwind()
	return g.tr
}

func (g *generator) emit(e event.Event) { g.tr = append(g.tr, e) }

func (g *generator) runnable() []vclock.Thread {
	var rs []vclock.Thread
	for i := range g.threads {
		if g.threads[i].started && !g.threads[i].finished {
			rs = append(rs, vclock.Thread(i))
		}
	}
	return rs
}

func (g *generator) liveCount() int { return len(g.runnable()) }

// access emits one read or write of v at the given site.
func (g *generator) access(t vclock.Thread, v event.Var, site func(write bool) event.Site) {
	write := g.rng.Float64() < g.cfg.PWrite
	kind := event.Read
	if write {
		kind = event.Write
	}
	g.emit(event.Event{
		Kind: kind, Thread: t, Target: uint32(v),
		Site: site(write), Method: uint32(v) % 7,
	})
}

// step emits zero or more events for one randomly chosen runnable thread.
func (g *generator) step() {
	rs := g.runnable()
	t := rs[g.rng.Intn(len(rs))]
	st := &g.threads[t]
	repeat := 1
	if g.rng.Float64() < g.cfg.PBurst {
		repeat = 2 + g.rng.Intn(3)
	}
	switch g.rng.Intn(16) {
	case 0, 1, 2, 3: // plain access, possibly guarded
		v := event.Var(g.rng.Intn(g.cfg.Vars))
		if g.rng.Float64() < g.cfg.PGuarded {
			guard := event.Lock(uint32(v) % uint32(g.cfg.Locks))
			if g.owner[guard] != vclock.NoThread {
				return
			}
			g.emit(event.Event{Kind: event.Acquire, Thread: t, Target: uint32(guard)})
			g.owner[guard] = t
			for i := 0; i < repeat; i++ {
				g.access(t, v, func(w bool) event.Site { return plainSite(v, w) })
			}
			g.emit(event.Event{Kind: event.Release, Thread: t, Target: uint32(guard)})
			g.owner[guard] = vclock.NoThread
		} else {
			for i := 0; i < repeat; i++ {
				g.access(t, v, func(w bool) event.Site { return plainSite(v, w) })
			}
		}
	case 4: // mirror-variable access: one fixed site for reads and writes
		if len(g.mirror) == 0 {
			return
		}
		i := g.rng.Intn(len(g.mirror))
		v := g.mirror[i]
		for k := 0; k < repeat; k++ {
			g.access(t, v, func(bool) event.Site { return mirrorSite(i) })
		}
	case 5: // shard-collision cluster access
		if len(g.cluster) == 0 {
			return
		}
		i := g.rng.Intn(len(g.cluster))
		v := g.cluster[i]
		for k := 0; k < repeat; k++ {
			g.access(t, v, func(w bool) event.Site { return clusterSite(i, w) })
		}
	case 6: // acquire a free plain lock
		m := event.Lock(g.rng.Intn(g.cfg.Locks))
		if g.owner[m] != vclock.NoThread {
			return
		}
		g.emit(event.Event{Kind: event.Acquire, Thread: t, Target: uint32(m)})
		g.owner[m] = t
		st.held = append(st.held, m)
	case 7: // release a held plain lock
		if len(st.held) == 0 {
			return
		}
		i := g.rng.Intn(len(st.held))
		m := st.held[i]
		st.held = append(st.held[:i], st.held[i+1:]...)
		g.owner[m] = vclock.NoThread
		g.emit(event.Event{Kind: event.Release, Thread: t, Target: uint32(m)})
	case 8: // plain volatile access
		vx := event.Volatile(g.rng.Intn(g.cfg.Volatiles))
		k := event.VolRead
		if g.rng.Float64() < g.cfg.PWrite {
			k = event.VolWrite
		}
		g.emit(event.Event{Kind: k, Thread: t, Target: uint32(vx)})
	case 9: // RWMutex write-lock critical section (pattern of pacer.RWMutex)
		if len(g.rws) == 0 {
			return
		}
		i := g.rng.Intn(len(g.rws))
		rw := &g.rws[i]
		if rw.writer != vclock.NoThread || len(rw.readers) > 0 {
			return
		}
		rw.writer = t
		g.emit(event.Event{Kind: event.Acquire, Thread: t, Target: uint32(rw.m)})
		g.emit(event.Event{Kind: event.VolRead, Thread: t, Target: uint32(rw.rPub)})
		g.emit(event.Event{Kind: event.VolRead, Thread: t, Target: uint32(rw.wPub)})
		v := event.Var(g.rng.Intn(g.cfg.Vars))
		g.emit(event.Event{Kind: event.Write, Thread: t, Target: uint32(v), Site: plainSite(v, true), Method: uint32(v) % 7})
		g.emit(event.Event{Kind: event.VolWrite, Thread: t, Target: uint32(rw.wPub)})
		g.emit(event.Event{Kind: event.Release, Thread: t, Target: uint32(rw.m)})
		rw.writer = vclock.NoThread
	case 10: // RWMutex read-lock critical section
		if len(g.rws) == 0 {
			return
		}
		i := g.rng.Intn(len(g.rws))
		rw := &g.rws[i]
		if rw.writer != vclock.NoThread || rw.readers[t] {
			return
		}
		rw.readers[t] = true
		g.emit(event.Event{Kind: event.VolRead, Thread: t, Target: uint32(rw.wPub)})
		v := event.Var(g.rng.Intn(g.cfg.Vars))
		g.emit(event.Event{Kind: event.Read, Thread: t, Target: uint32(v), Site: plainSite(v, false), Method: uint32(v) % 7})
		g.emit(event.Event{Kind: event.VolWrite, Thread: t, Target: uint32(rw.rPub)})
		delete(rw.readers, t)
	case 11: // WaitGroup: workers Done once, thread 0 Waits
		if len(g.wgVols) == 0 {
			return
		}
		i := g.rng.Intn(len(g.wgVols))
		if t == 0 {
			g.emit(event.Event{Kind: event.VolRead, Thread: t, Target: uint32(g.wgVols[i])})
			return
		}
		for _, d := range st.doneWGs {
			if d == i {
				return
			}
		}
		st.doneWGs = append(st.doneWGs, i)
		g.emit(event.Event{Kind: event.VolWrite, Thread: t, Target: uint32(g.wgVols[i])})
	case 12: // channel send: publish the payload through the volatile
		if len(g.chans) == 0 {
			return
		}
		i := g.rng.Intn(len(g.chans))
		ch := &g.chans[i]
		if ch.full {
			return
		}
		ch.full = true
		g.emit(event.Event{Kind: event.Write, Thread: t, Target: uint32(ch.payload), Site: ch.site})
		g.emit(event.Event{Kind: event.VolWrite, Thread: t, Target: uint32(ch.vx)})
	case 13: // channel receive: consume the volatile, read the payload
		if len(g.chans) == 0 {
			return
		}
		i := g.rng.Intn(len(g.chans))
		ch := &g.chans[i]
		if !ch.full {
			return
		}
		ch.full = false
		g.emit(event.Event{Kind: event.VolRead, Thread: t, Target: uint32(ch.vx)})
		g.emit(event.Event{Kind: event.Read, Thread: t, Target: uint32(ch.payload), Site: ch.site + 1})
	case 14: // fork a new thread (fork/join churn up to MaxForks)
		if g.forks >= g.cfg.MaxForks || g.liveCount() >= g.cfg.Threads {
			return
		}
		u := vclock.Thread(len(g.threads))
		g.threads = append(g.threads, genThread{started: true})
		g.forks++
		g.emit(event.Event{Kind: event.Fork, Thread: t, Target: uint32(u)})
	case 15: // finish this thread, or join a finished one
		if g.rng.Intn(2) == 0 {
			if t == 0 || len(st.held) > 0 {
				return
			}
			st.finished = true
			return
		}
		u := g.pickFinishedUnjoined(t)
		if u == vclock.NoThread {
			return
		}
		g.threads[u].joined = true
		g.emit(event.Event{Kind: event.Join, Thread: t, Target: uint32(u)})
	}
}

func (g *generator) pickFinishedUnjoined(self vclock.Thread) vclock.Thread {
	var cands []vclock.Thread
	for i := range g.threads {
		if vclock.Thread(i) != self && g.threads[i].finished && !g.threads[i].joined {
			cands = append(cands, vclock.Thread(i))
		}
	}
	if len(cands) == 0 {
		return vclock.NoThread
	}
	return cands[g.rng.Intn(len(cands))]
}

// unwind releases every held lock so a generated trace never ends inside a
// critical section (some detectors account held-lock metadata differently;
// a clean tail keeps traces comparable).
func (g *generator) unwind() {
	for i := range g.threads {
		st := &g.threads[i]
		for len(st.held) > 0 {
			m := st.held[len(st.held)-1]
			st.held = st.held[:len(st.held)-1]
			g.owner[m] = vclock.NoThread
			g.emit(event.Event{Kind: event.Release, Thread: vclock.Thread(i), Target: uint32(m)})
		}
	}
}

// CorpusConfig returns the deterministic generator configuration the
// oracle conformance suite uses for seed i. The shapes rotate so the ≥300
// generated traces cover plain racing, heavy synchronization, fork/join
// churn, mirror races, and shard-collision clusters; `racereplay verify
// -seed i` rebuilds the identical trace.
func CorpusConfig(i int64) Config {
	cfg := Config{
		Seed:      i + 1, // seed 0 would alias seed 1 under rand.NewSource conventions elsewhere
		Threads:   3 + int(i%5),
		Vars:      4 + int(i%9),
		Locks:     1 + int(i%4),
		Volatiles: 1 + int(i%3),
		Steps:     120 + int(i*37%380),
		PGuarded:  []float64{0.0, 0.25, 0.5, 0.8, 1.0}[i%5],
		PWrite:    0.4,
		PBurst:    0.2,
	}
	switch i % 4 {
	case 0: // adversarial: mirrors + clusters, little guarding
		cfg.MirrorVars = 3
		cfg.ClusterVars = 4
	case 1: // composite-heavy: rwmutex/waitgroup/channel shapes
		cfg.RWMutexes = 2
		cfg.WaitGroups = 2
		cfg.Channels = 2
	case 2: // churn: many short-lived threads
		cfg.MaxForks = cfg.Threads * 3
		cfg.MirrorVars = 1
	case 3: // everything at once
		cfg.RWMutexes = 1
		cfg.WaitGroups = 1
		cfg.Channels = 1
		cfg.MirrorVars = 2
		cfg.ClusterVars = 3
		cfg.MaxForks = cfg.Threads * 2
	}
	return cfg
}
