package tracegen

import (
	"bytes"
	"fmt"
	"sort"

	"pacer"
	"pacer/internal/event"
)

// Corpus construction: every checked-in trace under testdata/corpus/ is
// recorded through the public front-end's Options.TraceSink via
// pacer.StreamSink — the exact production recording path — at sampling
// rate 1.0, so the files are faithful linearizations in the streaming
// format and regenerating them is byte-for-byte deterministic. The corpus
// regeneration test and `racereplay corpus` both call CorpusFiles, so the
// command can never write files the test would reject.

// recordOptions returns the deterministic recording configuration.
func recordOptions(sink func(pacer.Event)) pacer.Options {
	return pacer.Options{
		SamplingRate: 1.0,
		Seed:         1,
		Serialized:   true,
		TraceSink:    sink,
	}
}

// RecordScenario runs one scenario against a fresh detector and returns
// its recorded trace in the streaming format.
func RecordScenario(sc Scenario) ([]byte, error) {
	var buf bytes.Buffer
	ts, err := pacer.StreamSink(&buf)
	if err != nil {
		return nil, err
	}
	sc.Run(pacer.New(recordOptions(ts.Record)))
	if err := ts.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RecordTrace replays a trace through a fresh serialized detector with a
// StreamSink attached and returns the recording (the replayed events plus
// the rate-1.0 sampling transition the front-end emits).
func RecordTrace(tr event.Trace) ([]byte, error) {
	var buf bytes.Buffer
	ts, err := pacer.StreamSink(&buf)
	if err != nil {
		return nil, err
	}
	d := pacer.New(recordOptions(ts.Record))
	for _, e := range tr {
		d.Apply(e)
	}
	if err := ts.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GeneratedCorpusSeeds are the CorpusConfig seeds whose generated traces
// are checked in alongside the scenario slice — one per shape rotation,
// doubled, so the on-disk corpus includes mirror/cluster, composite,
// churn, and mixed traces without regenerating the whole ≥300-trace sweep.
func GeneratedCorpusSeeds() []int64 { return []int64{0, 1, 2, 3, 4, 5, 6, 7} }

// CorpusFiles returns the complete checked-in corpus as file name →
// streaming-format contents, deterministically.
func CorpusFiles() (map[string][]byte, error) {
	files := make(map[string][]byte)
	for i, sc := range Scenarios() {
		b, err := RecordScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		files[fmt.Sprintf("%02d-%s.trace", i, sc.Name)] = b
	}
	for _, seed := range GeneratedCorpusSeeds() {
		tr := Generate(CorpusConfig(seed))
		b, err := RecordTrace(tr)
		if err != nil {
			return nil, fmt.Errorf("generated seed %d: %w", seed, err)
		}
		files[fmt.Sprintf("gen-%03d.trace", seed)] = b
	}
	return files, nil
}

// CorpusNames returns the corpus file names in sorted order.
func CorpusNames(files map[string][]byte) []string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
