package lockset_test

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/lockset"
	"pacer/internal/vclock"
)

func mk(r detector.Reporter) detector.Detector { return lockset.New(r) }

func TestConsistentLockingIsSilent(t *testing.T) {
	b := dtest.NewTB()
	for i := 0; i < 21; i++ {
		th := vclock.Thread(i % 3)
		b.Acq(th, 1).Read(th, 7).Write(th, 7).Rel(th, 1)
	}
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("consistent locking reported: %v", c.Dynamic)
	}
}

func TestDisciplineViolationReported(t *testing.T) {
	b := dtest.NewTB().
		Acq(0, 1).Write(0, 7).Rel(0, 1).
		Write(1, 7) // second thread, no lock → empty lockset, shared-modified
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("reports = %d, want 1", c.DynamicCount())
	}
}

func TestReportedAtMostOncePerVariable(t *testing.T) {
	b := dtest.NewTB().Write(0, 7).Write(1, 7).Write(0, 7).Write(1, 7).Write(2, 7)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("reports = %d, want 1 (Eraser reports once per variable)", c.DynamicCount())
	}
}

func TestInitializationPatternNotReported(t *testing.T) {
	// Eraser's state machine: single-thread initialization without locks is
	// fine; only after a second thread arrives does refinement start.
	b := dtest.NewTB().
		Write(0, 7).Write(0, 7).Read(0, 7). // unlocked init by owner
		Acq(0, 1).Rel(0, 1).
		Acq(1, 1).Read(1, 7).Rel(1, 1). // handoff under lock
		Acq(1, 1).Write(1, 7).Rel(1, 1)
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("init pattern reported: %v", c.Dynamic)
	}
}

func TestReadSharedWithoutWritesNotReported(t *testing.T) {
	// Multiple readers with no locks and no writes after sharing: the
	// shared state never reaches shared-modified.
	b := dtest.NewTB().Write(0, 7).Read(1, 7).Read(2, 7).Read(0, 7)
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("read-shared reported: %v", c.Dynamic)
	}
}

func TestLocksetRefinement(t *testing.T) {
	d := lockset.New(nil)
	// Thread 0 accesses x holding {1,2}; thread 1 holding {2,3}.
	d.Acquire(0, 1)
	d.Acquire(0, 2)
	d.Write(0, 7, 10, 0)
	d.Release(0, 2)
	d.Release(0, 1)
	d.Acquire(1, 2)
	d.Acquire(1, 3)
	d.Write(1, 7, 11, 0)
	if got := d.Locks(7); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("candidate set after first refinement = %v, want [2 3]", got)
	}
	d.Release(1, 3)
	d.Write(1, 7, 12, 0) // still holds {2}
	if got := d.Locks(7); len(got) != 1 || got[0] != 2 {
		t.Fatalf("candidate set = %v, want [2]", got)
	}
}

// The paper's precision argument, demonstrated: fork/join and volatile
// synchronization produce NO happens-before races (FASTTRACK is silent)
// but violate the locking discipline (lockset reports) — false positives.
func TestFalsePositiveOnForkJoin(t *testing.T) {
	b := dtest.NewTB().
		Fork(0, 1).Write(1, 7).Join(0, 1).Write(0, 7)
	ft := dtest.Run(b.Trace, func(r detector.Reporter) detector.Detector { return fasttrack.New(r) })
	if ft.DynamicCount() != 0 {
		t.Fatalf("fasttrack reported on a race-free fork/join program: %v", ft.Dynamic)
	}
	ls := dtest.Run(b.Trace, mk)
	if ls.DynamicCount() == 0 {
		t.Fatal("expected a lockset false positive on fork/join handoff")
	}
}

func TestFalsePositiveOnVolatileHandoff(t *testing.T) {
	b := dtest.NewTB().
		Write(0, 7).VolWrite(0, 3).
		VolRead(1, 3).Write(1, 7)
	ft := dtest.Run(b.Trace, func(r detector.Reporter) detector.Detector { return fasttrack.New(r) })
	if ft.DynamicCount() != 0 {
		t.Fatalf("fasttrack reported on volatile-ordered accesses: %v", ft.Dynamic)
	}
	ls := dtest.Run(b.Trace, mk)
	if ls.DynamicCount() == 0 {
		t.Fatal("expected a lockset false positive on volatile handoff")
	}
}

// On completely lock-free traces, every variable FASTTRACK finds in a
// write-write or read-write race (i.e. where a *write* arrives after the
// variable is shared) is also flagged by lockset: the candidate set is
// empty at the first shared-modified access. (Write-then-read-shared races
// are a known Eraser blind spot — its state machine never leaves the
// read-shared state — so they are excluded.)
func TestFlagsHappensBeforeRacesOnLockFreeTraces(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		tr := event.Generate(event.GenConfig{
			Threads: 5, Vars: 8, Locks: 1, Volatiles: 1,
			Steps: 1200, PGuarded: 0, PWrite: 0.4, Seed: seed,
		})
		// Keep only data accesses: no locks, no fork/join, no volatiles.
		var filtered event.Trace
		for _, e := range tr {
			if e.Kind.IsAccess() {
				filtered = append(filtered, e)
			}
		}
		ftVars := map[event.Var]bool{}
		ft := dtest.Run(filtered, func(r detector.Reporter) detector.Detector { return fasttrack.New(r) })
		for _, r := range ft.Dynamic {
			if r.Kind == detector.WriteWrite || r.Kind == detector.ReadWrite {
				ftVars[r.Var] = true
			}
		}
		lsVars := map[event.Var]bool{}
		for _, r := range dtest.Run(filtered, mk).Dynamic {
			lsVars[r.Var] = true
		}
		for v := range ftVars {
			if !lsVars[v] {
				t.Fatalf("seed %d: happens-before write race on x%d missed by lockset", seed, v)
			}
		}
	}
}

func TestStatsAndName(t *testing.T) {
	d := lockset.New(nil)
	d.Write(0, 1, 1, 0)
	d.Read(0, 1, 2, 0)
	d.Acquire(0, 1)
	d.Release(0, 1)
	if d.Name() != "lockset" {
		t.Error("wrong name")
	}
	s := d.Stats()
	if s.TotalReads() != 1 || s.TotalWrites() != 1 || s.TotalSyncOps() != 2 {
		t.Error("counters wrong")
	}
}
