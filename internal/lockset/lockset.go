// Package lockset implements the Eraser-style lockset race detector
// (Savage et al., SOSP 1997) that Section 6.2 of the PACER paper discusses
// as the imprecise alternative to happens-before tracking: it checks a
// locking discipline — every shared variable is consistently protected by
// some common lock — rather than the happens-before relation itself.
//
// Lockset is cheap and schedule-insensitive, but *imprecise*: programs
// synchronized by fork/join, volatiles, or lock-free handoff violate the
// discipline without racing, producing false positives. The package exists
// as a baseline so the repository's tests can demonstrate the paper's
// argument for precise vector-clock detection (see the differential tests
// against FASTTRACK).
package lockset

import (
	"sort"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// state is the Eraser per-variable state machine, which delays lockset
// refinement until a variable is genuinely shared to avoid false positives
// on initialization patterns.
type state uint8

const (
	// virgin: never accessed.
	virgin state = iota
	// exclusive: accessed by a single thread so far.
	exclusive
	// shared: read by multiple threads, never written after sharing —
	// lockset is refined but empty locksets are not reported.
	shared
	// sharedModified: written while shared; an empty lockset is a report.
	sharedModified
)

// varState tracks one variable.
type varState struct {
	st        state
	owner     vclock.Thread
	candidate map[event.Lock]struct{} // nil until refinement starts
	reported  bool
	lastSite  event.Site
	lastWrite event.Site
}

// Detector is the lockset analysis. It is not safe for concurrent use.
type Detector struct {
	vars   map[event.Var]*varState
	held   map[vclock.Thread]map[event.Lock]struct{}
	report detector.Reporter
	stats  detector.Counters
}

var (
	_ detector.Detector = (*Detector)(nil)
	_ detector.Counted  = (*Detector)(nil)
)

// New returns a lockset detector reporting discipline violations to
// report. Each variable is reported at most once (Eraser's behaviour).
func New(report detector.Reporter) *Detector {
	return &Detector{
		vars:   make(map[event.Var]*varState),
		held:   make(map[vclock.Thread]map[event.Lock]struct{}),
		report: report,
	}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "lockset" }

// Stats returns the detector's operation counters.
func (d *Detector) Stats() *detector.Counters { return &d.stats }

func (d *Detector) heldBy(t vclock.Thread) map[event.Lock]struct{} {
	h, ok := d.held[t]
	if !ok {
		h = make(map[event.Lock]struct{})
		d.held[t] = h
	}
	return h
}

// refine intersects the candidate set with the locks held by t, starting
// from t's current holdings on the first refinement.
func (v *varState) refine(held map[event.Lock]struct{}) {
	if v.candidate == nil {
		v.candidate = make(map[event.Lock]struct{}, len(held))
		for l := range held {
			v.candidate[l] = struct{}{}
		}
		return
	}
	for l := range v.candidate {
		if _, ok := held[l]; !ok {
			delete(v.candidate, l)
		}
	}
}

// Locks returns the variable's current candidate lockset, for tests.
func (d *Detector) Locks(x event.Var) []event.Lock {
	v, ok := d.vars[x]
	if !ok || v.candidate == nil {
		return nil
	}
	out := make([]event.Lock, 0, len(v.candidate))
	for l := range v.candidate {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Detector) access(t vclock.Thread, x event.Var, site event.Site, isWrite bool) {
	v, ok := d.vars[x]
	if !ok {
		v = &varState{st: virgin, owner: vclock.NoThread}
		d.vars[x] = v
	}
	held := d.heldBy(t)

	switch v.st {
	case virgin:
		v.st = exclusive
		v.owner = t
	case exclusive:
		if t == v.owner {
			break
		}
		// Second thread: transition to shared (reads) or shared-modified
		// (writes) and begin refining.
		v.refine(held)
		if isWrite {
			v.st = sharedModified
		} else {
			v.st = shared
		}
	case shared:
		v.refine(held)
		if isWrite {
			v.st = sharedModified
		}
	case sharedModified:
		v.refine(held)
	}

	if v.st == sharedModified && len(v.candidate) == 0 && !v.reported {
		v.reported = true
		d.stats.Races++
		if d.report != nil {
			kind := detector.WriteRead
			if isWrite {
				kind = detector.WriteWrite
			}
			first := v.lastWrite
			if first == 0 {
				first = v.lastSite
			}
			d.report(detector.Race{
				Var: x, Kind: kind,
				FirstThread: v.owner, SecondThread: t,
				FirstSite: first, SecondSite: site,
			})
		}
	}
	v.lastSite = site
	if isWrite {
		v.lastWrite = site
	}
}

// Read observes rd(t, x).
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.ReadSlow[detector.Sampling]++
	d.access(t, x, site, false)
}

// Write observes wr(t, x).
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.WriteSlow[detector.Sampling]++
	d.access(t, x, site, true)
}

// Acquire adds m to t's held set.
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) {
	d.stats.SyncOps[detector.Sampling]++
	d.heldBy(t)[m] = struct{}{}
}

// Release removes m from t's held set.
func (d *Detector) Release(t vclock.Thread, m event.Lock) {
	d.stats.SyncOps[detector.Sampling]++
	delete(d.heldBy(t), m)
}

// Fork is ignored: the locking discipline has no notion of fork/join
// ordering — the source of lockset's false positives.
func (d *Detector) Fork(t, u vclock.Thread) { d.stats.SyncOps[detector.Sampling]++ }

// Join is ignored (see Fork).
func (d *Detector) Join(t, u vclock.Thread) { d.stats.SyncOps[detector.Sampling]++ }

// VolRead is ignored: volatile synchronization is invisible to the
// discipline.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) {
	d.stats.SyncOps[detector.Sampling]++
}

// VolWrite is ignored (see VolRead).
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) {
	d.stats.SyncOps[detector.Sampling]++
}
