// Package shardbase holds the shard plumbing every concurrently-mounted
// backend shares: the stripe geometry behind ShardOf, the lock-free
// metadata presence filter behind MetaPossible, the published sampling
// state word behind StateWord, the grow-only direct variable index behind
// the lock-free fast paths, and the per-thread epoch/clock publication
// table those paths read. The PACER core and FASTTRACK grew this machinery
// independently; DJIT+ and LITERACE mount it from here, so a new backend
// implements the detector.Sharded contract by composition instead of by
// transcription.
//
// Every component keeps the publication discipline its consumer documents:
// presence counts are incremented before an insert and decremented after a
// delete, so a zero read proves absence at the instant of the load; the
// state word packs the sampling flag (bit 0) with a transition count, so
// two equal loads bracketing a probe prove the flag held throughout; index
// and thread-table growth copy-then-republish, so lock-free readers always
// hold a consistent array.
package shardbase

import (
	"sync"
	"sync/atomic"

	"pacer/internal/event"
	"pacer/internal/vclock"
)

const (
	// DefaultShards is the shard count backends use when their Options
	// leave it zero.
	DefaultShards = 64
	// presenceBuckets sizes the lock-free metadata presence filter: a
	// count of tracked variables per hash bucket, readable without any
	// lock. A zero bucket proves the variables hashing to it hold no
	// metadata; a nonzero bucket only sends the caller to the slow path.
	presenceBuckets = 1 << 12
	// fib is the Fibonacci-hashing multiplier shared by the shard map and
	// the presence filter, so both spread sequential identifiers evenly.
	fib = 2654435761
)

// Geometry is the stripe layout of a sharded backend: a power-of-two shard
// count and the Fibonacci hash mapping variables onto it. The zero value is
// unusable; construct with NewGeometry.
type Geometry struct {
	shards int
	shift  uint32 // 32 - log2(shards): ShardOf keeps the hash's high bits
}

// NewGeometry rounds the requested shard count up to a power of two,
// substituting DefaultShards when the request is zero or negative.
func NewGeometry(requested int) Geometry {
	n := requested
	if n <= 0 {
		n = DefaultShards
	}
	bits := uint32(0)
	for 1<<bits < n {
		bits++
	}
	return Geometry{shards: 1 << bits, shift: 32 - bits}
}

// Shards returns the rounded shard count; the front-end's striped locks
// must cover indices [0, Shards()).
func (g Geometry) Shards() int { return g.shards }

// ShardOf maps a variable to its metadata shard (Fibonacci hashing on the
// identifier's high output bits).
func (g Geometry) ShardOf(x event.Var) int {
	return int((uint32(x) * fib) >> g.shift)
}

// Presence is the lock-free metadata presence filter behind MetaPossible:
// a per-bucket count of tracked variables. Add before inserting metadata
// and Remove after deleting it, so a zero Possible read proves absence for
// the metadata's whole lifetime.
type Presence struct {
	buckets []atomic.Int32
}

// NewPresence returns an empty presence filter.
func NewPresence() *Presence {
	return &Presence{buckets: make([]atomic.Int32, presenceBuckets)}
}

func (p *Presence) bucket(x event.Var) *atomic.Int32 {
	return &p.buckets[(uint32(x)*fib)&(presenceBuckets-1)]
}

// Add records that x is about to gain metadata. Call before the insert.
func (p *Presence) Add(x event.Var) { p.bucket(x).Add(1) }

// Remove records that x's metadata was deleted. Call after the delete.
func (p *Presence) Remove(x event.Var) { p.bucket(x).Add(-1) }

// Possible reports whether x might currently hold metadata: false proves
// absence at the instant of the load; true may be a hash collision and
// only obliges the caller to take the slow path.
func (p *Presence) Possible(x event.Var) bool { return p.bucket(x).Load() > 0 }

// State is the atomically published sampling state word of the Sharded
// contract: bit 0 is the sampling flag, the upper bits count transitions,
// so two equal Word loads bracketing another probe prove the flag held
// throughout.
type State struct {
	w atomic.Uint64
}

// SetAlwaysOn publishes the constant always-sampling word (flag set, zero
// transitions) used by detectors that analyze every access.
func (s *State) SetAlwaysOn() { s.w.Store(1) }

// Publish mirrors the sampling flag into the word, bumping the transition
// count. Call from under the owner's exclusive lock.
func (s *State) Publish(sampling bool) {
	w := (s.w.Load()>>1 + 1) << 1
	if sampling {
		w |= 1
	}
	s.w.Store(w)
}

// Word returns the current state word.
func (s *State) Word() uint64 { return s.w.Load() }

// Index is the grow-only direct variable index behind the lock-free fast
// paths: variable identifier → metadata record, readable without any lock.
// All writes (slot stores and growth) serialize on an internal mutex;
// growth copies and republishes, so readers always hold a consistent
// array. Identifiers at or above the configured cap are never indexed —
// they simply take the caller's locked path.
type Index[T any] struct {
	p      atomic.Pointer[[]atomic.Pointer[T]]
	growMu sync.Mutex
	cap    uint32
}

const (
	// DefaultIndexCap bounds the direct index when the backend's Options
	// leave the cap zero. Identifiers at or above the cap (rarely produced
	// by the front-end's sequential allocator) take the locked path.
	DefaultIndexCap = 1 << 22
	// indexMin is the initial direct-index capacity.
	indexMin = 1 << 10
)

// NewIndex returns an index bounded by the given cap after the backends'
// shared defaulting rule: 0 selects DefaultIndexCap, negative disables the
// index entirely (every Lookup misses).
func NewIndex[T any](capOpt int) *Index[T] {
	ix := &Index[T]{}
	switch {
	case capOpt > 0:
		ix.cap = uint32(capOpt)
	case capOpt < 0:
		ix.cap = 0
	default:
		ix.cap = DefaultIndexCap
	}
	return ix
}

// Cap returns the resolved identifier cap (0 when the index is disabled).
func (ix *Index[T]) Cap() int { return int(ix.cap) }

// Lookup returns x's published record, or nil when x is unindexed. Safe to
// call lock-free at any time.
func (ix *Index[T]) Lookup(x event.Var) *T {
	tab := ix.p.Load()
	if tab == nil || int(uint32(x)) >= len(*tab) {
		return nil
	}
	return (*tab)[x].Load()
}

// Publish stores x's record in the index (a no-op past the cap). Typically
// called once per variable, from under its shard lock; the internal mutex
// serializes with inserts from other shards and makes growth
// copy-then-republish safe.
func (ix *Index[T]) Publish(x event.Var, m *T) {
	if uint32(x) >= ix.cap {
		return
	}
	ix.growMu.Lock()
	tab := ix.p.Load()
	if tab == nil || int(uint32(x)) >= len(*tab) {
		n := indexMin
		if tab != nil {
			n = len(*tab)
		}
		for n <= int(uint32(x)) {
			n *= 2
		}
		grown := make([]atomic.Pointer[T], n)
		if tab != nil {
			for i := range *tab {
				grown[i].Store((*tab)[i].Load())
			}
		}
		ix.p.Store(&grown)
		tab = &grown
	}
	(*tab)[x].Store(m)
	ix.growMu.Unlock()
}

// threadSlot is one thread's published state: its packed current epoch
// c@t, and a pointer to its clock for lock-free paths that must evaluate
// full happens-before queries (the clock itself is mutated only by the
// thread's own serialized operations, so a reader holding the pointer
// during one of t's accesses reads a stable clock).
type threadSlot struct {
	epoch atomic.Uint64
	clock atomic.Pointer[vclock.VC]
}

// ThreadPub publishes per-thread epochs and clock pointers for the
// lock-free fast paths (same-epoch dismissal, owned access). Grown only by
// Ensure under the caller's exclusive lock; slots are written by the
// owning thread's operations — which the caller serializes — and read
// lock-free only by that thread's own probes.
type ThreadPub struct {
	p atomic.Pointer[[]threadSlot]
}

// Ensure grows the table to hold thread identifiers below n. Requires the
// caller's exclusive access (it races with nothing but itself); lock-free
// readers holding the old table miss the new slots and fall back to the
// locked path.
func (tp *ThreadPub) Ensure(n int) {
	tab := tp.p.Load()
	cur := 0
	if tab != nil {
		cur = len(*tab)
	}
	if cur >= n {
		return
	}
	grown := make([]threadSlot, n)
	for i := 0; i < cur; i++ {
		grown[i].epoch.Store((*tab)[i].epoch.Load())
		grown[i].clock.Store((*tab)[i].clock.Load())
	}
	tp.p.Store(&grown)
}

// Publish records thread t's current epoch and clock. The epoch store is
// skipped when the published value is already current — the common case at
// acquire-heavy synchronization, where t's own clock component does not
// advance — so sync-heavy mixes stop hammering the publication cacheline.
// Only t's own (caller-serialized) operations may publish t's slot.
func (tp *ThreadPub) Publish(t vclock.Thread, c *vclock.VC) {
	tab := tp.p.Load()
	if tab == nil || int(t) >= len(*tab) {
		return
	}
	slot := &(*tab)[t]
	// Clock pointer first: a reader that observes the epoch must be able
	// to observe the clock. The pointer is stable per thread (clocks grow
	// in place), so this store happens once.
	if slot.clock.Load() != c {
		slot.clock.Store(c)
	}
	e := uint64(vclock.MakeEpoch(t, c.Get(t)))
	if slot.epoch.Load() != e {
		slot.epoch.Store(e)
	}
}

// Epoch returns t's published packed epoch, or zero when t has no slot or
// has not published (zero is unambiguous: thread clocks start at 1, so a
// live epoch never packs to zero).
func (tp *ThreadPub) Epoch(t vclock.Thread) uint64 {
	tab := tp.p.Load()
	if tab == nil || int(t) >= len(*tab) {
		return 0
	}
	return (*tab)[t].epoch.Load()
}

// Clock returns t's published clock pointer, or nil. Callers may read the
// clock only while serialized with t's operations (i.e. from t's own
// access path).
func (tp *ThreadPub) Clock(t vclock.Thread) *vclock.VC {
	tab := tp.p.Load()
	if tab == nil || int(t) >= len(*tab) {
		return nil
	}
	return (*tab)[t].clock.Load()
}
