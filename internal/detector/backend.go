package detector

import (
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// This file defines the optional capability interfaces a backend may
// implement beyond Detector. The public front-end mounts any Detector and
// discovers capabilities by type assertion: a backend that implements
// Sharded gets the concurrent sharded ingestion path and the lock-free
// non-sampling fast path; one that does not is driven fully serialized
// under the front-end's exclusive lock, which is always correct because
// the base Detector contract is single-threaded. Sampler, Counted,
// MemoryAccounted, VarAccounted, ThreadLifecycle, and ThreadReuser degrade
// the same way: absent the capability, the front-end substitutes the
// conservative behavior (always-sample semantics, zeroed counters, no
// identifier reuse).

// Sharded is implemented by detectors whose Read/Write paths admit the
// concurrent front-end's sharded reader-writer discipline:
//
//   - Read and Write calls for variables in distinct shards (ShardOf) may
//     run concurrently, provided same-shard calls are serialized by the
//     caller, no other Detector method is in flight, and every thread
//     identifier was announced via EnsureThreadSlots before its first
//     shared-mode access.
//   - StateWord and MetaPossible may be called lock-free at any time; they
//     are the probes behind the non-sampling fast path. StateWord's bit 0
//     is the sampling flag and its upper bits count sampling transitions,
//     so two equal loads bracketing a MetaPossible load prove the flag
//     held throughout; a false MetaPossible proves the variable held no
//     metadata at the instant of the load.
//
// All other Detector methods retain their exclusive-access requirement.
type Sharded interface {
	Detector
	// Shards returns the number of variable-metadata shards; the caller's
	// striped locks must cover indices [0, Shards()).
	Shards() int
	// ShardOf maps a variable to its metadata shard.
	ShardOf(x event.Var) int
	// StateWord returns the atomically published sampling state.
	StateWord() uint64
	// MetaPossible reports whether x might currently hold metadata.
	MetaPossible(x event.Var) bool
	// EnsureThreadSlots pre-grows the thread table to hold identifiers
	// below n. Requires exclusive access.
	EnsureThreadSlots(n int)
}

// ThreadReuser is implemented by detectors that can soundly recycle the
// identifiers of dead, joined threads whose metadata has been discarded
// (the accordion-clocks direction the paper recommends for production).
type ThreadReuser interface {
	// ReusableThread returns a revived thread slot for a brand-new thread,
	// or reports false when none is safely recyclable.
	ReusableThread() (vclock.Thread, bool)
}

// VarAccounted is implemented by detectors that can report how many
// variables currently hold metadata, for space accounting (Figure 10's
// companion to MemoryAccounted).
type VarAccounted interface {
	VarsTracked() int
}

// ArenaStats is a snapshot of a metadata arena's occupancy and traffic,
// surfaced through the front-end's Stats and the fleet's /metrics.
type ArenaStats struct {
	// SlabsLive is the number of slabs currently acquired (clock storage
	// and variable records); SlabsFree the number parked on free lists.
	SlabsLive, SlabsFree uint64
	// Recycles counts acquisitions served from a free list; Misses counts
	// acquisitions that fell through to a fresh heap allocation.
	Recycles, Misses uint64
	// Trimmed counts free slabs handed back to the garbage collector.
	Trimmed uint64
}

// ArenaAccounted is implemented by detectors that can run on a slab
// arena. The bool result reports whether an arena is actually enabled;
// a false return means the detector is on the default heap allocator and
// the stats are zero.
type ArenaAccounted interface {
	ArenaStats() (ArenaStats, bool)
}
