package detector

import (
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// This file defines the optional capability interfaces a backend may
// implement beyond Detector. The public front-end mounts any Detector and
// discovers capabilities by type assertion: a backend that implements
// Sharded gets the concurrent sharded ingestion path and the lock-free
// non-sampling fast path; one that does not is driven fully serialized
// under the front-end's exclusive lock, which is always correct because
// the base Detector contract is single-threaded. Sampler, Counted,
// MemoryAccounted, VarAccounted, ThreadLifecycle, and ThreadReuser degrade
// the same way: absent the capability, the front-end substitutes the
// conservative behavior (always-sample semantics, zeroed counters, no
// identifier reuse).

// Sharded is implemented by detectors whose Read/Write paths admit the
// concurrent front-end's sharded reader-writer discipline:
//
//   - Read and Write calls for variables in distinct shards (ShardOf) may
//     run concurrently, provided same-shard calls are serialized by the
//     caller, no other Detector method is in flight, and every thread
//     identifier was announced via EnsureThreadSlots before its first
//     shared-mode access.
//   - StateWord and MetaPossible may be called lock-free at any time; they
//     are the probes behind the non-sampling fast path. StateWord's bit 0
//     is the sampling flag and its upper bits count sampling transitions,
//     so two equal loads bracketing a MetaPossible load prove the flag
//     held throughout; a false MetaPossible proves the variable held no
//     metadata at the instant of the load.
//
// All other Detector methods retain their exclusive-access requirement.
type Sharded interface {
	Detector
	// Shards returns the number of variable-metadata shards; the caller's
	// striped locks must cover indices [0, Shards()).
	Shards() int
	// ShardOf maps a variable to its metadata shard.
	ShardOf(x event.Var) int
	// StateWord returns the atomically published sampling state.
	StateWord() uint64
	// MetaPossible reports whether x might currently hold metadata.
	MetaPossible(x event.Var) bool
	// EnsureThreadSlots pre-grows the thread table to hold identifiers
	// below n. Requires exclusive access.
	EnsureThreadSlots(n int)
}

// BurstSampler is implemented by detectors whose per-access sampling
// decision depends only on a per-(method, thread) state machine (LITERACE's
// bursty adaptive sampler), so a "skip this access" decision can be taken
// without the caller's exclusive lock. TrySkip may be called concurrently
// with any operation of other threads; the caller keeps its standing rule
// that a single thread's operations are serialized, which makes the
// probe-then-analyze sequence atomic per (method, thread) key.
//
// TrySkip returns true when the sampler decides this access is skipped —
// the analysis would have been a no-op — consuming that decision, and the
// caller must not route the access to Read/Write. When it returns false
// the sampler state is left untouched: the caller routes the access to
// Read/Write under its usual locking, and the detector takes the identical
// decision there. Implementations must make decision streams per-key
// deterministic (independent of cross-thread interleaving), so a
// serialized replay of a recorded trace reproduces every decision.
type BurstSampler interface {
	TrySkip(method uint32, t vclock.Thread) bool
}

// EpochFast is implemented by Sharded detectors that publish enough state
// atomically to prove, without any lock, that an access is a same-epoch
// no-op — FastTrack's headline fast path (the majority of reads and writes
// repeat an access the current epoch already recorded, and the analysis
// leaves every structure untouched).
//
// TrySameEpoch reports whether a serialized detector observing this
// operation at the instant of the internal loads would change no metadata
// and report no race; a true result lets the caller dismiss the access
// entirely. A false result proves nothing and routes the access to the
// locked path. Implementations must publish their per-variable epoch
// mirrors conservatively — cleared before the locked path mutates the
// underlying state and republished only after it settles — so a true
// result is sound at some linearization point between two locked
// operations on the variable. The caller keeps its standing rule that a
// single thread's operations are serialized, which makes the thread's own
// epoch stable across the probe.
type EpochFast interface {
	TrySameEpoch(t vclock.Thread, x event.Var, write bool) bool
}

// OwnedAccess is implemented by Sharded detectors that can perform the
// full analysis and metadata update of an access without the caller's
// locks, by claiming a per-variable ownership word with a single
// CompareAndSwap (the SmartTrack-style exclusive writer/reader ownership
// transition). It serves what EpochFast cannot: accesses that mutate
// metadata but report no race — chiefly the shared-read case, where a
// multi-entry read map publishes no epoch mirror and every read would
// otherwise serialize on the variable's shard lock.
//
// TryOwnedAccess returns true when the access was fully handled: the
// analysis ran against the thread's published clock, no race was found,
// and the metadata update was performed under ownership with the same
// mirror publication discipline the locked path uses. It returns false —
// with the variable's record untouched — when the ownership claim fails
// (contention), when the thread or variable has no published state, or
// when a race would have to be reported; the caller then routes the access
// through the locked path, which redoes the analysis from the same settled
// state and reports through its usual channel.
//
// The implementation must guarantee that every other path that mutates or
// inspects a variable's record claims the same ownership word, so a
// successful claim confers exclusive access to the record; the caller
// keeps its standing rule that a single thread's operations are
// serialized, which keeps the thread's clock stable across the call.
type OwnedAccess interface {
	TryOwnedAccess(t vclock.Thread, x event.Var, site event.Site, write bool) bool
}

// ThreadReuser is implemented by detectors that can soundly recycle the
// identifiers of dead, joined threads whose metadata has been discarded
// (the accordion-clocks direction the paper recommends for production).
type ThreadReuser interface {
	// ReusableThread returns a revived thread slot for a brand-new thread,
	// or reports false when none is safely recyclable.
	ReusableThread() (vclock.Thread, bool)
}

// VarAccounted is implemented by detectors that can report how many
// variables currently hold metadata, for space accounting (Figure 10's
// companion to MemoryAccounted).
type VarAccounted interface {
	VarsTracked() int
}

// ArenaStats is a snapshot of a metadata arena's occupancy and traffic,
// surfaced through the front-end's Stats and the fleet's /metrics.
type ArenaStats struct {
	// SlabsLive is the number of slabs currently acquired (clock storage
	// and variable records); SlabsFree the number parked on free lists.
	SlabsLive, SlabsFree uint64
	// Recycles counts acquisitions served from a free list; Misses counts
	// acquisitions that fell through to a fresh heap allocation.
	Recycles, Misses uint64
	// Trimmed counts free slabs handed back to the garbage collector.
	Trimmed uint64
}

// ArenaAccounted is implemented by detectors that can run on a slab
// arena. The bool result reports whether an arena is actually enabled;
// a false return means the detector is on the default heap allocator and
// the stats are zero.
type ArenaAccounted interface {
	ArenaStats() (ArenaStats, bool)
}
