package detector_test

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// recordingDetector captures dispatched calls for the Apply tests.
type recordingDetector struct {
	calls []string
	last  event.Event
}

func (r *recordingDetector) note(s string, e event.Event) {
	r.calls = append(r.calls, s)
	r.last = e
}

func (r *recordingDetector) Read(t vclock.Thread, x event.Var, s event.Site, m uint32) {
	r.note("read", event.Event{Thread: t, Target: uint32(x), Site: s, Method: m})
}
func (r *recordingDetector) Write(t vclock.Thread, x event.Var, s event.Site, m uint32) {
	r.note("write", event.Event{Thread: t, Target: uint32(x), Site: s, Method: m})
}
func (r *recordingDetector) Acquire(t vclock.Thread, m event.Lock) {
	r.note("acquire", event.Event{Thread: t, Target: uint32(m)})
}
func (r *recordingDetector) Release(t vclock.Thread, m event.Lock) {
	r.note("release", event.Event{Thread: t, Target: uint32(m)})
}
func (r *recordingDetector) Fork(t, u vclock.Thread) {
	r.note("fork", event.Event{Thread: t, Target: uint32(u)})
}
func (r *recordingDetector) Join(t, u vclock.Thread) {
	r.note("join", event.Event{Thread: t, Target: uint32(u)})
}
func (r *recordingDetector) VolRead(t vclock.Thread, v event.Volatile) {
	r.note("volread", event.Event{Thread: t, Target: uint32(v)})
}
func (r *recordingDetector) VolWrite(t vclock.Thread, v event.Volatile) {
	r.note("volwrite", event.Event{Thread: t, Target: uint32(v)})
}
func (r *recordingDetector) Name() string { return "recording" }

// samplingDetector also records sampling transitions.
type samplingDetector struct {
	recordingDetector
	sampling bool
}

func (s *samplingDetector) SampleBegin() { s.sampling = true; s.calls = append(s.calls, "sbegin") }
func (s *samplingDetector) SampleEnd()   { s.sampling = false; s.calls = append(s.calls, "send") }
func (s *samplingDetector) Sampling() bool {
	return s.sampling
}

func TestApplyDispatch(t *testing.T) {
	d := &recordingDetector{}
	tr := event.Trace{
		{Kind: event.Read, Thread: 1, Target: 2, Site: 3, Method: 4},
		{Kind: event.Write, Thread: 1, Target: 2},
		{Kind: event.Acquire, Thread: 1, Target: 5},
		{Kind: event.Release, Thread: 1, Target: 5},
		{Kind: event.Fork, Thread: 0, Target: 1},
		{Kind: event.Join, Thread: 0, Target: 1},
		{Kind: event.VolRead, Thread: 1, Target: 6},
		{Kind: event.VolWrite, Thread: 1, Target: 6},
		{Kind: event.SampleBegin}, // ignored: not a Sampler
		{Kind: event.SampleEnd},
	}
	detector.Replay(d, tr)
	want := []string{"read", "write", "acquire", "release", "fork", "join", "volread", "volwrite"}
	if len(d.calls) != len(want) {
		t.Fatalf("calls = %v", d.calls)
	}
	for i, w := range want {
		if d.calls[i] != w {
			t.Errorf("call %d = %q, want %q", i, d.calls[i], w)
		}
	}
}

func TestApplyForwardsSamplingToSamplers(t *testing.T) {
	d := &samplingDetector{}
	detector.Apply(d, event.Event{Kind: event.SampleBegin})
	if !d.sampling {
		t.Error("SampleBegin not forwarded")
	}
	detector.Apply(d, event.Event{Kind: event.SampleEnd})
	if d.sampling {
		t.Error("SampleEnd not forwarded")
	}
}

func TestRaceStringAndKinds(t *testing.T) {
	r := detector.Race{
		Var: 7, Kind: detector.WriteWrite,
		FirstThread: 0, SecondThread: 1, FirstSite: 11, SecondSite: 22,
	}
	if got := r.String(); got != "write-write race on x7: t0@s11 vs t1@s22" {
		t.Errorf("String() = %q", got)
	}
	for k, s := range map[detector.RaceKind]string{
		detector.WriteWrite: "write-write",
		detector.WriteRead:  "write-read",
		detector.ReadWrite:  "read-write",
	} {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestDistinctKeyUnordered(t *testing.T) {
	a := detector.Race{FirstSite: 5, SecondSite: 9}
	b := detector.Race{FirstSite: 9, SecondSite: 5}
	if a.Distinct() != b.Distinct() {
		t.Error("distinct key should be unordered")
	}
}

func TestCollector(t *testing.T) {
	c := detector.NewCollector()
	c.Report(detector.Race{Var: 1, FirstSite: 1, SecondSite: 2})
	c.Report(detector.Race{Var: 1, FirstSite: 2, SecondSite: 1})
	c.Report(detector.Race{Var: 2, FirstSite: 3, SecondSite: 4})
	if c.DynamicCount() != 3 {
		t.Errorf("dynamic = %d", c.DynamicCount())
	}
	if c.DistinctCount() != 2 {
		t.Errorf("distinct = %d", c.DistinctCount())
	}
	keys := c.DistinctKeys()
	if len(keys) != 2 || keys[0].SiteA != 1 || keys[1].SiteA != 3 {
		t.Errorf("keys = %v", keys)
	}
	if c.PerDistinct[keys[0]] != 2 {
		t.Errorf("per-distinct count = %d, want 2", c.PerDistinct[keys[0]])
	}
}

func TestCountersAddAndTotals(t *testing.T) {
	var a, b detector.Counters
	a.ReadSlow[detector.Sampling] = 3
	a.ReadFast[detector.NonSampling] = 5
	a.WriteSlow[detector.Sampling] = 2
	a.SyncOps[detector.NonSampling] = 7
	a.JoinWork = 11
	a.Races = 1
	b.ReadSlow[detector.Sampling] = 1
	b.JoinWork = 4
	a.Add(&b)
	if a.TotalReads() != 9 {
		t.Errorf("TotalReads = %d, want 9", a.TotalReads())
	}
	if a.TotalWrites() != 2 {
		t.Errorf("TotalWrites = %d", a.TotalWrites())
	}
	if a.TotalSyncOps() != 7 {
		t.Errorf("TotalSyncOps = %d", a.TotalSyncOps())
	}
	if a.JoinWork != 15 {
		t.Errorf("JoinWork = %d", a.JoinWork)
	}
}

func TestPeriodOf(t *testing.T) {
	if detector.PeriodOf(true) != detector.Sampling || detector.PeriodOf(false) != detector.NonSampling {
		t.Error("PeriodOf broken")
	}
}

func TestBaseSyncThreadClockInit(t *testing.T) {
	var c detector.Counters
	s := detector.NewBaseSync(&c)
	ct := s.ThreadClock(3)
	if ct.Get(3) != 1 {
		t.Errorf("initial C_t(t) = %d, want 1", ct.Get(3))
	}
	if s.Threads() != 4 {
		t.Errorf("Threads() = %d, want 4", s.Threads())
	}
	// Same clock returned on repeat lookup.
	if s.ThreadClock(3) != ct {
		t.Error("thread clock not stable")
	}
}

func TestBaseSyncHappensBeforeEdges(t *testing.T) {
	var c detector.Counters
	s := detector.NewBaseSync(&c)
	s.ThreadClock(0)
	s.ThreadClock(1)
	s.Release(0, 1)
	t0AtRelease := uint64(1)
	s.Acquire(1, 1)
	if got := s.ThreadClock(1).Get(0); got != t0AtRelease {
		t.Errorf("acquire did not receive releaser's clock: C_1(0) = %d", got)
	}
	if s.ThreadClock(0).Get(0) != 2 {
		t.Error("release did not increment the releaser")
	}
	if c.TotalSyncOps() != 2 {
		t.Errorf("sync ops = %d", c.TotalSyncOps())
	}
	if c.DeepCopies[detector.Sampling] != 1 || c.SlowJoins[detector.Sampling] != 1 {
		t.Error("copy/join counters wrong")
	}
}

func TestBaseSyncForkJoinVolatiles(t *testing.T) {
	var c detector.Counters
	s := detector.NewBaseSync(&c)
	// fork(0,1): the child's clock receives the parent's, the parent
	// advances.
	s.Fork(0, 1)
	if s.ThreadClock(1).Get(0) != 1 {
		t.Error("fork did not propagate the parent's clock")
	}
	if s.ThreadClock(0).Get(0) != 2 {
		t.Error("fork did not increment the parent")
	}
	// Volatile write then read transfers the writer's clock.
	s.VolWrite(1, 7)
	before := s.ThreadClock(1).Get(1)
	s.VolRead(0, 7)
	if s.ThreadClock(0).Get(1) < before-1 {
		t.Error("volatile read did not receive the writer's clock")
	}
	// join(0,1) brings the child's time to the parent and advances the
	// child.
	c1 := s.ThreadClock(1).Get(1)
	s.Join(0, 1)
	if s.ThreadClock(0).Get(1) < c1 {
		t.Error("join did not propagate the child's clock")
	}
	if s.ThreadClock(1).Get(1) != c1+1 {
		t.Error("join did not increment the joined thread")
	}
	if s.MetadataWords() == 0 {
		t.Error("MetadataWords should count thread and volatile clocks")
	}
	if c.TotalSyncOps() != 4 {
		t.Errorf("sync ops = %d, want 4", c.TotalSyncOps())
	}
}

func TestRaceKindStringUnknown(t *testing.T) {
	if got := detector.RaceKind(99).String(); got != "racekind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestDistinctKeysOrdering(t *testing.T) {
	c := detector.NewCollector()
	c.Report(detector.Race{FirstSite: 9, SecondSite: 1})
	c.Report(detector.Race{FirstSite: 1, SecondSite: 9})
	c.Report(detector.Race{FirstSite: 1, SecondSite: 3})
	keys := c.DistinctKeys()
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0].SiteB != 3 || keys[1].SiteB != 9 {
		t.Errorf("keys not sorted by (SiteA, SiteB): %v", keys)
	}
}
