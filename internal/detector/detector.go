// Package detector defines the interface shared by every race detector in
// this repository (GENERIC, FASTTRACK, PACER, LITERACE), the race report
// type, operation counters reproducing Table 3, and helpers for replaying
// traces through detectors.
package detector

import (
	"fmt"

	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Detector is the dynamic analysis interface. A detector observes every
// synchronization operation and (depending on sampling) data accesses, and
// reports data races through its reporter callback. Implementations are not
// safe for concurrent use; callers serialize events in execution order,
// which is exactly what the paper's per-operation instrumentation does
// under its low-level metadata synchronization.
type Detector interface {
	// Read observes rd(t, x) at program location site within method.
	Read(t vclock.Thread, x event.Var, site event.Site, method uint32)
	// Write observes wr(t, x).
	Write(t vclock.Thread, x event.Var, site event.Site, method uint32)
	// Acquire observes acq(t, m).
	Acquire(t vclock.Thread, m event.Lock)
	// Release observes rel(t, m).
	Release(t vclock.Thread, m event.Lock)
	// Fork observes fork(t, u).
	Fork(t, u vclock.Thread)
	// Join observes join(t, u).
	Join(t, u vclock.Thread)
	// VolRead observes vol_rd(t, vx).
	VolRead(t vclock.Thread, vx event.Volatile)
	// VolWrite observes vol_wr(t, vx).
	VolWrite(t vclock.Thread, vx event.Volatile)
	// Name identifies the algorithm, e.g. "pacer".
	Name() string
}

// Sampler is implemented by detectors that honor global sampling periods
// (PACER). SampleBegin and SampleEnd correspond to the sbegin()/send()
// actions of Appendix A.
type Sampler interface {
	SampleBegin()
	SampleEnd()
	Sampling() bool
}

// ThreadLifecycle is implemented by detectors that want to know when a
// thread terminates (e.g. PACER stops advancing dead threads' clocks at
// sampling-period starts, as a real VM would — dead threads perform no
// further accesses, so skipping them is sound).
type ThreadLifecycle interface {
	ThreadExit(t vclock.Thread)
}

// MemoryAccounted is implemented by detectors that can report the live size
// of their metadata, in 8-byte words, for the space measurements of
// Figure 10.
type MemoryAccounted interface {
	MetadataWords() int
}

// Apply dispatches a single event to d. Sampling events are forwarded only
// to detectors implementing Sampler.
func Apply(d Detector, e event.Event) {
	switch e.Kind {
	case event.Read:
		d.Read(e.Thread, event.Var(e.Target), e.Site, e.Method)
	case event.Write:
		d.Write(e.Thread, event.Var(e.Target), e.Site, e.Method)
	case event.Acquire:
		d.Acquire(e.Thread, event.Lock(e.Target))
	case event.Release:
		d.Release(e.Thread, event.Lock(e.Target))
	case event.Fork:
		d.Fork(e.Thread, vclock.Thread(e.Target))
	case event.Join:
		d.Join(e.Thread, vclock.Thread(e.Target))
	case event.VolRead:
		d.VolRead(e.Thread, event.Volatile(e.Target))
	case event.VolWrite:
		d.VolWrite(e.Thread, event.Volatile(e.Target))
	case event.SampleBegin:
		if s, ok := d.(Sampler); ok {
			s.SampleBegin()
		}
	case event.SampleEnd:
		if s, ok := d.(Sampler); ok {
			s.SampleEnd()
		}
	default:
		panic(fmt.Sprintf("detector: unknown event kind %v", e.Kind))
	}
}

// Replay feeds an entire trace to d in order.
func Replay(d Detector, tr event.Trace) {
	for _, e := range tr {
		Apply(d, e)
	}
}
