package detector

// Period indexes counters by whether the operation happened during a
// sampling period.
type Period int

const (
	// NonSampling indexes operations outside sampling periods.
	NonSampling Period = 0
	// Sampling indexes operations inside sampling periods.
	Sampling Period = 1
)

// PeriodOf converts a sampling flag to a Period index.
func PeriodOf(sampling bool) Period {
	if sampling {
		return Sampling
	}
	return NonSampling
}

// Counters tallies the analysis operations that Table 3 of the paper
// reports, split by sampling vs non-sampling period, plus the work totals
// the cost model (Figures 7-9) is built from. Detectors without sampling
// record everything under the Sampling index, since they behave as if
// always sampling.
type Counters struct {
	// SlowJoins counts vector clock joins that required O(n) work (an
	// element-wise comparison or join). FastJoins counts joins avoided in
	// O(1) via version epochs.
	SlowJoins, FastJoins [2]uint64
	// DeepCopies counts element-by-element vector clock copies;
	// ShallowCopies counts PACER's O(1) shared copies.
	DeepCopies, ShallowCopies [2]uint64
	// ReadSlow/WriteSlow count data accesses that executed the analysis
	// slow path; ReadFast/WriteFast count accesses dispatched by the inline
	// fast-path check (no metadata and not sampling → no action).
	ReadSlow, ReadFast   [2]uint64
	WriteSlow, WriteFast [2]uint64
	// SyncOps counts synchronization operations (acq/rel/fork/join/volatile
	// accesses), which the sampling controller uses as its measure of
	// program work (Section 4).
	SyncOps [2]uint64
	// Increments counts vector clock increments actually performed.
	Increments [2]uint64
	// Clones counts copy-on-write clones of shared clocks.
	Clones [2]uint64
	// JoinWork and CopyWork accumulate the vector lengths touched by slow
	// joins and deep copies: the O(n) element work driving the cost model.
	JoinWork, CopyWork uint64
	// Races counts reported races.
	Races uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	for p := 0; p < 2; p++ {
		c.SlowJoins[p] += o.SlowJoins[p]
		c.FastJoins[p] += o.FastJoins[p]
		c.DeepCopies[p] += o.DeepCopies[p]
		c.ShallowCopies[p] += o.ShallowCopies[p]
		c.ReadSlow[p] += o.ReadSlow[p]
		c.ReadFast[p] += o.ReadFast[p]
		c.WriteSlow[p] += o.WriteSlow[p]
		c.WriteFast[p] += o.WriteFast[p]
		c.SyncOps[p] += o.SyncOps[p]
		c.Increments[p] += o.Increments[p]
		c.Clones[p] += o.Clones[p]
	}
	c.JoinWork += o.JoinWork
	c.CopyWork += o.CopyWork
	c.Races += o.Races
}

// TotalReads returns all observed reads.
func (c *Counters) TotalReads() uint64 {
	return c.ReadSlow[0] + c.ReadSlow[1] + c.ReadFast[0] + c.ReadFast[1]
}

// TotalWrites returns all observed writes.
func (c *Counters) TotalWrites() uint64 {
	return c.WriteSlow[0] + c.WriteSlow[1] + c.WriteFast[0] + c.WriteFast[1]
}

// TotalSyncOps returns all observed synchronization operations.
func (c *Counters) TotalSyncOps() uint64 {
	return c.SyncOps[0] + c.SyncOps[1]
}

// Counted is implemented by detectors exposing operation counters.
type Counted interface {
	Stats() *Counters
}
