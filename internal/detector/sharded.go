package detector

import "sync/atomic"

// counterCell is a cache-line-padded atomic counter, so that cells in a
// ShardedCount can be bumped by different cores without false sharing.
type counterCell struct {
	n atomic.Uint64
	_ [56]byte
}

// ShardedCount is a monotone counter striped across cache-line-padded
// cells. Concurrent writers pick (any) cell index — typically a shard or
// thread hash — and never contend when their indices differ. Sum folds
// the cells; it is safe to call concurrently with writers and returns a
// value at least as large as every count that happened-before the call.
type ShardedCount struct {
	cells []counterCell
}

// NewShardedCount returns a counter with n cells (minimum 1).
func NewShardedCount(n int) *ShardedCount {
	if n < 1 {
		n = 1
	}
	return &ShardedCount{cells: make([]counterCell, n)}
}

// Inc adds 1 to cell i (mod the cell count).
func (c *ShardedCount) Inc(i int) {
	c.cells[i%len(c.cells)].n.Add(1)
}

// Add adds delta to cell i (mod the cell count).
func (c *ShardedCount) Add(i int, delta uint64) {
	c.cells[i%len(c.cells)].n.Add(delta)
}

// Sum returns the total across all cells.
func (c *ShardedCount) Sum() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// PaddedCell is a cache-line-padded atomic counter for callers that manage
// their own cell placement (e.g. one cell per registered thread). The zero
// value is ready to use.
type PaddedCell struct {
	N atomic.Uint64
	_ [56]byte
}
