package detector

import (
	"fmt"
	"sort"

	"pacer/internal/event"
	"pacer/internal/vclock"
)

// RaceKind classifies a race by the kinds of its two accesses, first access
// first.
type RaceKind uint8

const (
	// WriteWrite is a race between two writes.
	WriteWrite RaceKind = iota
	// WriteRead is a race whose first access is a write and second a read.
	WriteRead
	// ReadWrite is a race whose first access is a read and second a write.
	ReadWrite
)

// String returns the conventional name of the race kind.
func (k RaceKind) String() string {
	switch k {
	case WriteWrite:
		return "write-write"
	case WriteRead:
		return "write-read"
	case ReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("racekind(%d)", uint8(k))
	}
}

// Race is a detected data race: two concurrent conflicting accesses to Var.
// The first access is the one recorded in metadata (its site travels with
// the write epoch or read map entry, Section 4); the second access is the
// current operation.
type Race struct {
	Var          event.Var
	Kind         RaceKind
	FirstThread  vclock.Thread
	SecondThread vclock.Thread
	FirstSite    event.Site
	SecondSite   event.Site
}

// String renders the race for human consumption.
func (r Race) String() string {
	return fmt.Sprintf("%s race on x%d: t%d@s%d vs t%d@s%d",
		r.Kind, r.Var, r.FirstThread, r.FirstSite, r.SecondThread, r.SecondSite)
}

// DistinctKey identifies the static (distinct) race: the unordered pair of
// program sites, following Section 5.1 ("it reports each pair of program
// references once even if the race occurs multiple times").
type DistinctKey struct {
	SiteA, SiteB event.Site // SiteA ≤ SiteB
}

// Distinct returns the race's distinct key.
func (r Race) Distinct() DistinctKey {
	a, b := r.FirstSite, r.SecondSite
	if a > b {
		a, b = b, a
	}
	return DistinctKey{SiteA: a, SiteB: b}
}

// Reporter receives race reports as they are detected.
type Reporter func(Race)

// Collector is a Reporter that accumulates dynamic and distinct race
// counts.
type Collector struct {
	// Dynamic is every reported race in order.
	Dynamic []Race
	// PerDistinct counts dynamic occurrences per distinct race.
	PerDistinct map[DistinctKey]int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{PerDistinct: make(map[DistinctKey]int)}
}

// Report records one race.
func (c *Collector) Report(r Race) {
	c.Dynamic = append(c.Dynamic, r)
	c.PerDistinct[r.Distinct()]++
}

// DistinctCount returns the number of distinct races observed.
func (c *Collector) DistinctCount() int { return len(c.PerDistinct) }

// DynamicCount returns the number of dynamic races observed.
func (c *Collector) DynamicCount() int { return len(c.Dynamic) }

// DistinctKeys returns the distinct races in deterministic order.
func (c *Collector) DistinctKeys() []DistinctKey {
	keys := make([]DistinctKey, 0, len(c.PerDistinct))
	for k := range c.PerDistinct {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].SiteA != keys[j].SiteA {
			return keys[i].SiteA < keys[j].SiteA
		}
		return keys[i].SiteB < keys[j].SiteB
	})
	return keys
}
