package detector

import (
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// BaseSync implements the GENERIC analysis for synchronization operations
// (Algorithms 1-4, 14-15), which FASTTRACK reuses unchanged. Every join and
// copy is O(n) in the number of threads; PACER replaces these low-level
// operations and therefore does not use BaseSync.
type BaseSync struct {
	threads []*vclock.VC
	locks   map[event.Lock]*vclock.VC
	vols    map[event.Volatile]*vclock.VC
	c       *Counters
	// alloc, when set, supplies the slab allocator clocks are drawn from,
	// striped by the owning object's identifier (see SetAllocator).
	alloc func(int) vclock.Allocator
}

// NewBaseSync returns a synchronization engine recording operation counts
// into c.
func NewBaseSync(c *Counters) *BaseSync {
	return &BaseSync{
		locks: make(map[event.Lock]*vclock.VC),
		vols:  make(map[event.Volatile]*vclock.VC),
		c:     c,
	}
}

// SetAllocator installs a striped slab allocator for clock storage: newly
// created thread, lock, and volatile clocks draw from alloc(id), where id
// is the owning object's identifier (the allocator mods the stripe index,
// so any stable integer works). Call before the first operation; nil (the
// default) allocates from the heap.
func (s *BaseSync) SetAllocator(alloc func(int) vclock.Allocator) { s.alloc = alloc }

// newVC draws a fresh clock for stripe i, falling back to the heap when no
// allocator is installed.
func (s *BaseSync) newVC(i, n int) *vclock.VC {
	if s.alloc != nil {
		return s.alloc(i).NewVC(n)
	}
	return vclock.New(n)
}

// EnsureThreadSlots pre-grows the thread table to hold identifiers below
// n, so that a sharded caller's shared-mode accesses never resize it (two
// threads appending concurrently would race on the slice header; two
// threads lazily filling distinct pre-grown slots do not).
func (s *BaseSync) EnsureThreadSlots(n int) {
	for len(s.threads) < n {
		s.threads = append(s.threads, nil)
	}
}

// ThreadClock returns C_t, creating it with C_t(t) = 1 on first use (the
// initial analysis state of Equation 7 applies inc_t to ⊥c).
func (s *BaseSync) ThreadClock(t vclock.Thread) *vclock.VC {
	for int(t) >= len(s.threads) {
		s.threads = append(s.threads, nil)
	}
	if s.threads[t] == nil {
		c := s.newVC(int(t), int(t)+1)
		// Declare ownership before the first tick so a tree-capable
		// allocator (vclock.Tree) can root the last-update index at t; a
		// no-op for plain allocators.
		c.SetOwner(t)
		c.Set(t, 1)
		s.threads[t] = c
	}
	return s.threads[t]
}

// Threads returns the number of thread clocks created.
func (s *BaseSync) Threads() int { return len(s.threads) }

func (s *BaseSync) lockClock(m event.Lock) *vclock.VC {
	c, ok := s.locks[m]
	if !ok {
		c = s.newVC(int(m), 0)
		s.locks[m] = c
	}
	return c
}

func (s *BaseSync) volClock(vx event.Volatile) *vclock.VC {
	c, ok := s.vols[vx]
	if !ok {
		c = s.newVC(int(vx), 0)
		s.vols[vx] = c
	}
	return c
}

func (s *BaseSync) slowJoin(dst, src *vclock.VC) bool {
	changed := dst.JoinFrom(src)
	s.c.SlowJoins[Sampling]++
	s.c.JoinWork += uint64(src.Len())
	return changed
}

// deepCopy is the release-edge copy C_dst ← C_src. The copy is full-width
// on flat clocks; tree-backed clocks run it as a monotone in-place join of
// just the entries that changed since the destination last saw the source
// (vclock.CopyFrom's fast path), which is what makes release cost
// proportional to what changed rather than to thread count.
func (s *BaseSync) deepCopy(dst, src *vclock.VC) {
	dst.CopyFrom(src)
	s.c.DeepCopies[Sampling]++
	s.c.CopyWork += uint64(src.Len())
}

func (s *BaseSync) inc(t vclock.Thread) {
	s.ThreadClock(t).Inc(t)
	s.c.Increments[Sampling]++
}

// Acquire implements Algorithm 1: C_t ← C_t ⊔ C_m. It reports whether the
// thread's clock changed, which lets callers skip work that is redundant
// when the acquire learned nothing new (the SmartTrack-style epoch
// republication trim).
func (s *BaseSync) Acquire(t vclock.Thread, m event.Lock) bool {
	s.c.SyncOps[Sampling]++
	return s.slowJoin(s.ThreadClock(t), s.lockClock(m))
}

// Release implements Algorithm 2: C_m ← C_t; C_t(t)++.
func (s *BaseSync) Release(t vclock.Thread, m event.Lock) {
	s.c.SyncOps[Sampling]++
	s.deepCopy(s.lockClock(m), s.ThreadClock(t))
	s.inc(t)
}

// Fork implements Algorithm 3 (in the Table 6 formulation): the child's
// clock joins the parent's, and the parent's clock advances.
func (s *BaseSync) Fork(t, u vclock.Thread) {
	s.c.SyncOps[Sampling]++
	s.slowJoin(s.ThreadClock(u), s.ThreadClock(t))
	s.inc(t)
}

// Join implements Algorithm 4: C_t ← C_t ⊔ C_u; C_u(u)++.
func (s *BaseSync) Join(t, u vclock.Thread) {
	s.c.SyncOps[Sampling]++
	s.slowJoin(s.ThreadClock(t), s.ThreadClock(u))
	s.inc(u)
}

// VolRead implements Algorithm 14: C_t ← C_t ⊔ C_vx. Like Acquire, it
// reports whether the thread's clock changed.
func (s *BaseSync) VolRead(t vclock.Thread, vx event.Volatile) bool {
	s.c.SyncOps[Sampling]++
	return s.slowJoin(s.ThreadClock(t), s.volClock(vx))
}

// VolWrite implements Algorithm 15: C_vx ← C_vx ⊔ C_t; C_t(t)++.
func (s *BaseSync) VolWrite(t vclock.Thread, vx event.Volatile) {
	s.c.SyncOps[Sampling]++
	s.slowJoin(s.volClock(vx), s.ThreadClock(t))
	s.inc(t)
}

// MetadataWords reports the live synchronization metadata footprint.
func (s *BaseSync) MetadataWords() int {
	w := 0
	for _, c := range s.threads {
		if c != nil {
			w += c.MemoryWords()
		}
	}
	for _, c := range s.locks {
		w += c.MemoryWords()
	}
	for _, c := range s.vols {
		w += c.MemoryWords()
	}
	return w
}
