package sim

import "pacer/internal/detector"

// MemSample is one live-memory observation at a full-heap collection
// (Figure 10). All quantities are in 8-byte words.
type MemSample struct {
	// Event is the simulation event count at the collection, the
	// "normalized time" axis once divided by the trial's total events.
	Event uint64
	// ProgramWords is the program's live heap.
	ProgramWords int
	// HeaderWords is the space added by the two per-object header words.
	HeaderWords int
	// MetaWords is the detector's live metadata.
	MetaWords int
}

// Total returns the sample's total live memory.
func (m MemSample) Total() int { return m.ProgramWords + m.HeaderWords + m.MetaWords }

// Result aggregates one simulation trial.
type Result struct {
	// Program is the workload name.
	Program string
	// Events counts every executed operation.
	Events uint64
	// Reads, Writes, and SyncOps count program-level operations.
	Reads, Writes, SyncOps uint64
	// ThreadsTotal and MaxLiveThreads reproduce Table 2's thread columns.
	ThreadsTotal   int
	MaxLiveThreads int
	// BaseCost is the simulated time of the uninstrumented program;
	// InstrCost is the additional time spent in the detector.
	BaseCost, InstrCost float64
	// EffectiveRate is the fraction of program work (measured in sync ops,
	// as in Section 4) that executed inside sampling periods.
	EffectiveRate float64
	// Collections and SamplingPeriods count GCs and sampling periods.
	Collections     int
	SamplingPeriods int
	// MemSamples is the live-memory timeline (when enabled).
	MemSamples []MemSample
	// FinalMetaWords is the detector's metadata footprint at exit.
	FinalMetaWords int
	// Counters is a snapshot of the detector's operation counters.
	Counters detector.Counters
}

// Overhead returns the run's instrumentation overhead as a fraction of
// base execution time (0.52 means 52% slower).
func (r *Result) Overhead() float64 {
	if r.BaseCost == 0 {
		return 0
	}
	return r.InstrCost / r.BaseCost
}

// Slowdown returns total time relative to the uninstrumented program
// (1.0 = no overhead).
func (r *Result) Slowdown() float64 { return 1 + r.Overhead() }
