package sim_test

import (
	"errors"
	"testing"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/fasttrack"
	"pacer/internal/sim"
	"pacer/internal/vclock"
)

// twoThreadRace: thread 0 forks a child; both write variable 1 without
// synchronization.
func twoThreadRace() sim.Program {
	return sim.Program{
		Name: "two-thread-race",
		Main: func(t *sim.Thread) {
			u := t.Fork(func(c *sim.Thread) {
				c.Write(1, 100, 0)
			})
			t.Write(1, 200, 0)
			t.Join(u)
		},
	}
}

// lockedProgram: n threads increment a shared counter under a lock.
func lockedProgram(n, iters int) sim.Program {
	return sim.Program{
		Name: "locked",
		Main: func(t *sim.Thread) {
			var kids []vclock.Thread
			for i := 0; i < n; i++ {
				kids = append(kids, t.Fork(func(c *sim.Thread) {
					for j := 0; j < iters; j++ {
						c.Lock(1)
						c.Read(7, 1, 0)
						c.Write(7, 2, 0)
						c.Unlock(1)
						c.Alloc(16)
					}
				}))
			}
			for _, k := range kids {
				t.Join(k)
			}
		},
	}
}

func TestRaceDetectedUnderFullTracking(t *testing.T) {
	col := detector.NewCollector()
	res, err := sim.Run(twoThreadRace(), sim.Config{
		Seed:               1,
		Detector:           fasttrack.New(col.Report),
		InstrumentAccesses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1", col.DynamicCount())
	}
	if res.ThreadsTotal != 2 {
		t.Errorf("threads = %d, want 2", res.ThreadsTotal)
	}
}

func TestLockedProgramIsRaceFree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		col := detector.NewCollector()
		_, err := sim.Run(lockedProgram(6, 40), sim.Config{
			Seed:               seed,
			Detector:           fasttrack.New(col.Report),
			InstrumentAccesses: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if col.DynamicCount() != 0 {
			t.Fatalf("seed %d: false positive %v", seed, col.Dynamic[0])
		}
	}
}

func TestDeterministicUnderFixedSeed(t *testing.T) {
	run := func() *sim.Result {
		col := detector.NewCollector()
		res, err := sim.Run(lockedProgram(5, 30), sim.Config{
			Seed:               42,
			Detector:           core.New(col.Report),
			InstrumentAccesses: true,
			SampleTarget:       0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Events != b.Events || a.BaseCost != b.BaseCost || a.InstrCost != b.InstrCost ||
		a.EffectiveRate != b.EffectiveRate || a.Collections != b.Collections {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	events := map[uint64]bool{}
	var costs []float64
	for seed := int64(0); seed < 5; seed++ {
		res, err := sim.Run(lockedProgram(5, 30), sim.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		events[res.Events] = true
		costs = append(costs, res.BaseCost)
	}
	// The program always performs the same operations; only their order
	// changes, so the op count is seed-independent and base cost matches
	// up to floating-point accumulation order.
	if len(events) != 1 {
		t.Errorf("same program, different op counts across seeds: %v", events)
	}
	for _, c := range costs[1:] {
		if c < costs[0]*0.999 || c > costs[0]*1.001 {
			t.Errorf("base costs diverge beyond accumulation noise: %v", costs)
		}
	}
}

func TestMutualExclusionEnforced(t *testing.T) {
	// A program that would corrupt state without mutual exclusion: each
	// thread asserts it is alone in the critical section via a host-level
	// counter.
	inCS := 0
	maxInCS := 0
	p := sim.Program{
		Name: "mutex",
		Main: func(t *sim.Thread) {
			var kids []vclock.Thread
			for i := 0; i < 8; i++ {
				kids = append(kids, t.Fork(func(c *sim.Thread) {
					for j := 0; j < 50; j++ {
						c.Lock(3)
						inCS++
						if inCS > maxInCS {
							maxInCS = inCS
						}
						c.Work(5) // yield inside the critical section
						inCS--
						c.Unlock(3)
					}
				}))
			}
			for _, k := range kids {
				t.Join(k)
			}
		},
	}
	if _, err := sim.Run(p, sim.Config{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if maxInCS != 1 {
		t.Fatalf("mutual exclusion violated: %d threads in critical section", maxInCS)
	}
}

func TestJoinWaitsForChild(t *testing.T) {
	order := []string{}
	p := sim.Program{
		Name: "join-order",
		Main: func(t *sim.Thread) {
			u := t.Fork(func(c *sim.Thread) {
				c.Work(1)
				order = append(order, "child")
			})
			t.Join(u)
			order = append(order, "parent-after-join")
		},
	}
	if _, err := sim.Run(p, sim.Config{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "child" || order[1] != "parent-after-join" {
		t.Fatalf("order = %v", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	p := sim.Program{
		Name: "deadlock",
		Main: func(t *sim.Thread) {
			u := t.Fork(func(c *sim.Thread) {
				c.Lock(2)
				c.Lock(1) // blocks forever once parent holds 1
				c.Unlock(1)
				c.Unlock(2)
			})
			t.Lock(1)
			t.Work(1)
			t.Lock(2) // may deadlock depending on schedule
			t.Unlock(2)
			t.Unlock(1)
			t.Join(u)
		},
	}
	sawDeadlock := false
	for seed := int64(0); seed < 50; seed++ {
		_, err := sim.Run(p, sim.Config{Seed: seed})
		if errors.Is(err, sim.ErrDeadlock) {
			sawDeadlock = true
		} else if err != nil {
			t.Fatalf("seed %d: unexpected error %v", seed, err)
		}
	}
	if !sawDeadlock {
		t.Error("classic lock-order inversion never deadlocked in 50 schedules")
	}
}

func TestSamplingControllerApproximatesTarget(t *testing.T) {
	// A long allocation-heavy program so many GC periods occur.
	p := sim.Program{
		Name: "alloc-heavy",
		Main: func(t *sim.Thread) {
			u := t.Fork(func(c *sim.Thread) {
				for i := 0; i < 30000; i++ {
					c.Alloc(8)
					c.Lock(1)
					c.Write(5, 1, 0)
					c.Unlock(1)
				}
			})
			for i := 0; i < 30000; i++ {
				t.Alloc(8)
				t.Lock(1)
				t.Read(5, 2, 0)
				t.Unlock(1)
			}
			t.Join(u)
		},
	}
	for _, target := range []float64{0.05, 0.25} {
		var rates []float64
		for seed := int64(0); seed < 6; seed++ {
			res, err := sim.Run(p, sim.Config{
				Seed:               seed,
				Detector:           core.New(nil),
				InstrumentAccesses: true,
				SampleTarget:       target,
				NurseryWords:       4096,
			})
			if err != nil {
				t.Fatal(err)
			}
			rates = append(rates, res.EffectiveRate)
		}
		mean := 0.0
		for _, r := range rates {
			mean += r
		}
		mean /= float64(len(rates))
		if mean < target*0.5 || mean > target*1.7 {
			t.Errorf("target %.0f%%: mean effective rate %.1f%% is far off", target*100, mean*100)
		}
	}
}

func TestOverheadOrdering(t *testing.T) {
	// Overhead must rank: base(0) < OM+sync < pacer r=0 < pacer r=5% <
	// pacer r=100%.
	p := lockedProgram(6, 300)
	run := func(instr bool, target float64) float64 {
		sum := 0.0
		const seeds = 5
		for seed := int64(0); seed < seeds; seed++ {
			res, err := sim.Run(p, sim.Config{
				Seed: seed, Detector: core.New(nil),
				InstrumentAccesses: instr, SampleTarget: target,
				NurseryWords: 1024,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Overhead()
		}
		return sum / seeds
	}
	base, err := sim.Run(p, sim.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if base.Overhead() != 0 {
		t.Fatalf("uninstrumented overhead = %v, want 0", base.Overhead())
	}
	omSync := run(false, 0)
	r0 := run(true, 0)
	r30 := run(true, 0.3)
	r100 := run(true, 1.0)
	if !(omSync > 0 && omSync < r0 && r0 < r30 && r30 < r100) {
		t.Errorf("overhead ordering violated: om+sync=%.3f r0=%.3f r30=%.3f r100=%.3f", omSync, r0, r30, r100)
	}
}

func TestMemTimelineRecorded(t *testing.T) {
	res, err := sim.Run(lockedProgram(4, 2000), sim.Config{
		Seed:               2,
		Detector:           core.New(nil),
		InstrumentAccesses: true,
		SampleTarget:       0.25,
		NurseryWords:       2048,
		MemTimeline:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MemSamples) == 0 {
		t.Fatal("no memory samples recorded")
	}
	for _, s := range res.MemSamples {
		if s.Total() <= 0 || s.ProgramWords <= 0 {
			t.Fatalf("bad sample %+v", s)
		}
	}
}

func TestLockErrorsSurfaceAsErrors(t *testing.T) {
	p := sim.Program{
		Name: "bad-unlock",
		Main: func(t *sim.Thread) { t.Unlock(1) },
	}
	if _, err := sim.Run(p, sim.Config{Seed: 1}); err == nil {
		t.Fatal("releasing an unheld lock did not error")
	}
}

func TestEventBudget(t *testing.T) {
	p := sim.Program{
		Name: "spin",
		Main: func(t *sim.Thread) {
			for {
				t.Work(1)
			}
		},
	}
	_, err := sim.Run(p, sim.Config{Seed: 1, MaxEvents: 1000})
	if !errors.Is(err, sim.ErrTooManyEvents) {
		t.Fatalf("err = %v, want ErrTooManyEvents", err)
	}
}

func TestThreadCountsReported(t *testing.T) {
	res, err := sim.Run(lockedProgram(9, 5), sim.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThreadsTotal != 10 {
		t.Errorf("ThreadsTotal = %d, want 10", res.ThreadsTotal)
	}
	if res.MaxLiveThreads < 2 || res.MaxLiveThreads > 10 {
		t.Errorf("MaxLiveThreads = %d out of range", res.MaxLiveThreads)
	}
}
