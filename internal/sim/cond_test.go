package sim_test

import (
	"errors"
	"testing"

	"pacer/internal/detector"
	"pacer/internal/fasttrack"
	"pacer/internal/sim"
	"pacer/internal/vclock"
)

// producerConsumerCond is the canonical monitor handoff: the consumer
// waits under the lock until the producer sets state and notifies.
func producerConsumerCond(items int) (sim.Program, *[]int) {
	delivered := &[]int{}
	return sim.Program{
		Name: "cond-handoff",
		Main: func(t *sim.Thread) {
			const (
				mon  = sim.Lock(1)
				cv   = sim.Cond(1)
				data = sim.Var(500)
			)
			ready := false
			consumer := t.Fork(func(c *sim.Thread) {
				c.Lock(mon)
				for !ready {
					c.Wait(cv, mon)
				}
				c.Read(data, 1, 0)
				*delivered = append(*delivered, 1)
				c.Unlock(mon)
			})
			producer := t.Fork(func(p *sim.Thread) {
				p.Work(3)
				p.Lock(mon)
				p.Write(data, 2, 0)
				ready = true
				p.Notify(cv)
				p.Unlock(mon)
			})
			t.Join(consumer)
			t.Join(producer)
		},
	}, delivered
}

func TestCondHandoffCompletesAndIsRaceFree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p, delivered := producerConsumerCond(1)
		col := detector.NewCollector()
		_, err := sim.Run(p, sim.Config{
			Seed: seed, Detector: fasttrack.New(col.Report), InstrumentAccesses: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(*delivered) != 1 {
			t.Fatalf("seed %d: consumer never completed", seed)
		}
		if col.DynamicCount() != 0 {
			t.Fatalf("seed %d: monitor handoff raced: %v", seed, col.Dynamic[0])
		}
	}
}

func TestNotifyAllWakesEveryWaiter(t *testing.T) {
	woken := 0
	p := sim.Program{
		Name: "notify-all",
		Main: func(t *sim.Thread) {
			const (
				mon = sim.Lock(1)
				cv  = sim.Cond(1)
			)
			go_ := false
			var ids []vclock.Thread
			for i := 0; i < 5; i++ {
				ids = append(ids, t.Fork(func(c *sim.Thread) {
					c.Lock(mon)
					for !go_ {
						c.Wait(cv, mon)
					}
					woken++
					c.Unlock(mon)
				}))
			}
			t.Work(5)
			t.Lock(mon)
			go_ = true
			t.NotifyAll(cv)
			t.Unlock(mon)
			for _, id := range ids {
				t.Join(id)
			}
		},
	}
	if _, err := sim.Run(p, sim.Config{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestWaitWithoutLockErrors(t *testing.T) {
	p := sim.Program{
		Name: "bad-wait",
		Main: func(t *sim.Thread) { t.Wait(1, 2) },
	}
	if _, err := sim.Run(p, sim.Config{Seed: 1}); err == nil {
		t.Fatal("wait without holding the monitor did not error")
	}
}

func TestLostNotifyDeadlocks(t *testing.T) {
	// The waiter arrives after the only notify: a classic lost-wakeup
	// deadlock the simulator must detect.
	p := sim.Program{
		Name: "lost-notify",
		Main: func(t *sim.Thread) {
			const (
				mon = sim.Lock(1)
				cv  = sim.Cond(1)
			)
			w := t.Fork(func(c *sim.Thread) {
				c.Work(50) // guarantee the notify happens first
				c.Lock(mon)
				c.Wait(cv, mon) // waits forever
				c.Unlock(mon)
			})
			t.Lock(mon)
			t.Notify(cv) // no waiters yet: lost
			t.Unlock(mon)
			t.Join(w)
		},
	}
	sawDeadlock := false
	for seed := int64(0); seed < 10; seed++ {
		_, err := sim.Run(p, sim.Config{Seed: seed})
		if errors.Is(err, sim.ErrDeadlock) {
			sawDeadlock = true
		}
	}
	if !sawDeadlock {
		t.Fatal("lost notification never deadlocked")
	}
}
