package sim

import (
	"fmt"
)

// Cond identifies a condition variable (a Java monitor used with
// wait/notify).
type Cond uint32

// Wait releases m, blocks until another thread notifies c, then
// re-acquires m — Java's Object.wait. The calling thread must hold m.
// Happens-before edges come entirely from the monitor operations the wait
// decomposes into (the release on entry and the re-acquisition on wakeup),
// exactly as in the Java memory model.
func (t *Thread) Wait(c Cond, m Lock) {
	t.yield(op{kind: opWait, target: uint32(c), aux: uint32(m)})
}

// Notify wakes one waiter of c, if any — Java's Object.notify. A notify
// with no waiters is lost.
func (t *Thread) Notify(c Cond) {
	t.yield(op{kind: opNotify, target: uint32(c)})
}

// NotifyAll wakes every waiter of c — Java's Object.notifyAll.
func (t *Thread) NotifyAll(c Cond) {
	t.yield(op{kind: opNotifyAll, target: uint32(c)})
}

// stepWait handles the wait operation: release the monitor, report the
// release, and park the thread on the condition queue. The thread's
// goroutine stays blocked in its yield; the scheduler re-arms its pending
// operation as a monitor re-acquisition when a notify arrives.
func (s *Sim) stepWait(t *Thread, o op) error {
	m := Lock(o.aux)
	if owner, held := s.lockOwner[m]; !held || owner != t.id {
		return fmt.Errorf("sim: thread %d waits on cond %d without holding lock %d", t.id, o.target, m)
	}
	delete(s.lockOwner, m)
	s.syncOp()
	if s.cfg.Detector != nil {
		s.cfg.Detector.Release(t.id, m)
		s.accountDelta()
	}
	t.pending = nil // parked: not runnable until notified
	if s.condWaiters == nil {
		s.condWaiters = make(map[Cond][]*Thread)
	}
	c := Cond(o.target)
	s.condWaiters[c] = append(s.condWaiters[c], t)
	t.waitLock = m
	return nil
}

// wake re-arms a parked waiter as a lock re-acquisition; granting that
// acquisition completes the original Wait call.
func (s *Sim) wake(t *Thread) {
	t.pending = &op{kind: opLock, target: uint32(t.waitLock), fromWait: true}
}

func (s *Sim) stepNotify(t *Thread, o op, all bool) {
	s.syncOp()
	c := Cond(o.target)
	waiters := s.condWaiters[c]
	if len(waiters) == 0 {
		return // lost notification
	}
	if all {
		for _, w := range waiters {
			s.wake(w)
		}
		delete(s.condWaiters, c)
		return
	}
	// Wake the scheduler-deterministic first waiter (FIFO, like most JVMs
	// in practice; the spec allows any).
	s.wake(waiters[0])
	rest := waiters[1:]
	if len(rest) == 0 {
		delete(s.condWaiters, c)
	} else {
		s.condWaiters[c] = rest
	}
}
