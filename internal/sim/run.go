package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"pacer/internal/detector"
	"pacer/internal/vclock"
)

// ErrDeadlock is returned when every live thread is blocked.
var ErrDeadlock = errors.New("sim: deadlock: all live threads blocked")

// ErrTooManyEvents is returned when a program exceeds Config.MaxEvents.
var ErrTooManyEvents = errors.New("sim: event budget exceeded")

// Run executes the program under the given configuration and returns the
// trial's measurements.
func Run(p Program, cfg Config) (*Result, error) {
	cfg.fill()
	s := &Sim{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		lockOwner: make(map[Lock]vclock.Thread),
	}
	if cfg.Detector != nil {
		s.sampler, _ = cfg.Detector.(detector.Sampler)
		s.counted, _ = cfg.Detector.(detector.Counted)
	}
	s.result.Program = p.Name
	// Roll the initial period like any other: without this, short runs with
	// few collections systematically under-sample.
	if s.sampler != nil && cfg.SampleTarget > 0 && s.rng.Float64() < s.adjustedProbability() {
		s.sampler.SampleBegin()
		s.sampling = true
	}
	s.spawn(p.Main)

	for {
		runnable := s.runnable()
		if len(runnable) == 0 {
			if s.liveCount() == 0 {
				break
			}
			return &s.result, fmt.Errorf("%w (%d live threads)", ErrDeadlock, s.liveCount())
		}
		t := runnable[s.rng.Intn(len(runnable))]
		if err := s.step(t); err != nil {
			return &s.result, err
		}
		if s.result.Events > s.cfg.MaxEvents {
			return &s.result, ErrTooManyEvents
		}
	}
	s.finish()
	return &s.result, nil
}

// spawn creates a thread, starts its goroutine, and synchronously pulls
// its first pending operation so scheduling stays deterministic.
func (s *Sim) spawn(fn ThreadFunc) *Thread {
	id := vclock.Thread(len(s.threads))
	t := &Thread{
		id:     id,
		rng:    rand.New(rand.NewSource(s.cfg.Seed*1_000_003 + int64(id))),
		reqs:   make(chan op),
		grants: make(chan struct{}),
	}
	s.threads = append(s.threads, t)
	s.result.ThreadsTotal++
	go func() {
		fn(t)
		t.reqs <- op{kind: opExit}
	}()
	s.pull(t)
	return t
}

// pull reads the thread's next pending operation.
func (s *Sim) pull(t *Thread) {
	o := <-t.reqs
	t.pending = &o
}

func (s *Sim) liveCount() int {
	n := 0
	for _, t := range s.threads {
		if !t.done {
			n++
		}
	}
	return n
}

// runnable returns the threads whose pending operation can execute now.
func (s *Sim) runnable() []*Thread {
	var out []*Thread
	live := 0
	for _, t := range s.threads {
		if t.done || t.pending == nil {
			continue
		}
		live++
		switch t.pending.kind {
		case opLock:
			if owner, held := s.lockOwner[Lock(t.pending.target)]; held && owner != t.id {
				continue
			}
		case opJoin:
			u := vclock.Thread(t.pending.target)
			if int(u) >= len(s.threads) || !s.threads[u].done {
				continue
			}
		}
		out = append(out, t)
	}
	if live > s.result.MaxLiveThreads {
		s.result.MaxLiveThreads = live
	}
	return out
}

// step executes t's pending operation.
func (s *Sim) step(t *Thread) error {
	o := *t.pending
	d := s.cfg.Detector
	cm := &s.cfg.Cost
	s.result.Events++

	switch o.kind {
	case opRead:
		s.result.Reads++
		s.result.BaseCost += cm.AccessBase
		if d != nil && s.cfg.InstrumentAccesses {
			d.Read(t.id, Var(o.target), o.site, o.method)
			s.accountDelta()
		}
	case opWrite:
		s.result.Writes++
		s.result.BaseCost += cm.AccessBase
		if d != nil && s.cfg.InstrumentAccesses {
			d.Write(t.id, Var(o.target), o.site, o.method)
			s.accountDelta()
		}
	case opLock:
		m := Lock(o.target)
		if owner, held := s.lockOwner[m]; held {
			return fmt.Errorf("sim: thread %d acquired lock %d held by %d", t.id, m, owner)
		}
		s.lockOwner[m] = t.id
		s.syncOp()
		if d != nil {
			d.Acquire(t.id, m)
			s.accountDelta()
		}
	case opUnlock:
		m := Lock(o.target)
		if owner, held := s.lockOwner[m]; !held || owner != t.id {
			return fmt.Errorf("sim: thread %d released lock %d it does not hold", t.id, m)
		}
		delete(s.lockOwner, m)
		s.syncOp()
		if d != nil {
			d.Release(t.id, m)
			s.accountDelta()
		}
	case opVolRead:
		s.syncOp()
		if d != nil {
			d.VolRead(t.id, Volatile(o.target))
			s.accountDelta()
		}
	case opVolWrite:
		s.syncOp()
		if d != nil {
			d.VolWrite(t.id, Volatile(o.target))
			s.accountDelta()
		}
	case opFork:
		child := s.spawn(o.fn)
		t.forkID = child.id
		s.syncOp()
		if d != nil {
			d.Fork(t.id, child.id)
			s.accountDelta()
		}
	case opJoin:
		s.syncOp()
		if d != nil {
			d.Join(t.id, vclock.Thread(o.target))
			s.accountDelta()
		}
	case opAlloc:
		s.programAllocd += uint64(o.n)
		s.allocSinceGC += o.n
		s.result.BaseCost += cm.AllocPerWord * float64(o.n)
		if d != nil {
			// Two header words per object (Section 4): modelled as a small
			// extra allocation cost plus extra heap pressure.
			s.result.InstrCost += cm.OMPerWord * float64(o.n)
			s.allocSinceGC += o.n / 16
		}
	case opWork:
		s.result.BaseCost += float64(o.n)
	case opWait:
		if err := s.stepWait(t, o); err != nil {
			return err
		}
		s.maybeGC()
		return nil // thread stays parked; no grant yet
	case opNotify:
		s.stepNotify(t, o, false)
	case opNotifyAll:
		s.stepNotify(t, o, true)
	case opExit:
		t.done = true
		t.pending = nil
		close(t.grants)
		if lc, ok := d.(detector.ThreadLifecycle); ok {
			lc.ThreadExit(t.id)
		}
		s.maybeGC()
		return nil
	}

	s.maybeGC()
	t.grants <- struct{}{}
	s.pull(t)
	return nil
}

// syncOp accounts a synchronization operation: base cost, instrumentation
// base cost, and the sampling controller's measure of program work.
func (s *Sim) syncOp() {
	s.result.SyncOps++
	s.result.BaseCost += s.cfg.Cost.SyncBase
	s.syncTotal++
	s.periodSync++
	if s.sampling {
		s.syncSampling++
	}
	if s.cfg.Detector != nil {
		s.result.InstrCost += s.cfg.Cost.SyncInstrBase
	}
}

// accountDelta converts the detector's counter movement since the last
// event into instrumentation cost and metadata allocation (which advances
// the collector, reproducing the sampling bias of Section 4).
func (s *Sim) accountDelta() {
	if s.counted == nil {
		return
	}
	cur := *s.counted.Stats()
	d := diff(&cur, &s.prevStats)
	s.prevStats = cur
	cm := &s.cfg.Cost

	both := func(c [2]uint64) float64 { return float64(c[0] + c[1]) }
	ic := 0.0
	ic += cm.FastPathCheck * both(d.ReadFast)
	ic += cm.FastPathCheck * both(d.WriteFast)
	ic += cm.SlowPathAccess * both(d.ReadSlow)
	ic += cm.SlowPathAccess * both(d.WriteSlow)
	ic += cm.SlowJoinBase * both(d.SlowJoins)
	ic += cm.PerElem * float64(d.JoinWork)
	ic += cm.FastJoin * both(d.FastJoins)
	ic += cm.DeepCopyBase * both(d.DeepCopies)
	ic += cm.MemcpyPerElem * float64(d.CopyWork)
	ic += cm.ShallowCopy * both(d.ShallowCopies)
	ic += cm.Increment * both(d.Increments)
	ic += cm.MemcpyPerElem * both(d.Clones) * float64(len(s.threads))
	s.result.InstrCost += ic

	// Metadata allocation pressure: per-variable metadata on sampled slow
	// paths plus a fraction of deep-copy work (fresh snapshots). Clones are
	// excluded — they replace the thread's clock, so they do not grow the
	// live set the way access metadata does. This is what makes collections
	// come sooner during sampling, the bias Table 1's controller corrects.
	meta := 3*(d.ReadSlow[detector.Sampling]+d.WriteSlow[detector.Sampling]) +
		d.CopyWork/4
	s.allocSinceGC += int(meta)
}

func diff(a, b *detector.Counters) detector.Counters {
	var d detector.Counters
	for p := 0; p < 2; p++ {
		d.SlowJoins[p] = a.SlowJoins[p] - b.SlowJoins[p]
		d.FastJoins[p] = a.FastJoins[p] - b.FastJoins[p]
		d.DeepCopies[p] = a.DeepCopies[p] - b.DeepCopies[p]
		d.ShallowCopies[p] = a.ShallowCopies[p] - b.ShallowCopies[p]
		d.ReadSlow[p] = a.ReadSlow[p] - b.ReadSlow[p]
		d.ReadFast[p] = a.ReadFast[p] - b.ReadFast[p]
		d.WriteSlow[p] = a.WriteSlow[p] - b.WriteSlow[p]
		d.WriteFast[p] = a.WriteFast[p] - b.WriteFast[p]
		d.SyncOps[p] = a.SyncOps[p] - b.SyncOps[p]
		d.Increments[p] = a.Increments[p] - b.Increments[p]
		d.Clones[p] = a.Clones[p] - b.Clones[p]
	}
	d.JoinWork = a.JoinWork - b.JoinWork
	d.CopyWork = a.CopyWork - b.CopyWork
	d.Races = a.Races - b.Races
	return d
}

// maybeGC triggers a collection when the nursery is exhausted, toggling
// the sampling period exactly as the paper's implementation does.
func (s *Sim) maybeGC() {
	if s.allocSinceGC < s.cfg.NurseryWords {
		return
	}
	s.allocSinceGC = 0
	s.collections++
	s.result.Collections++

	// Account the period that just ended.
	if s.sampling {
		s.sampWork += float64(s.periodSync)
		s.sampPeriods++
	} else {
		s.nonsampWork += float64(s.periodSync)
		s.nonsampP++
	}
	s.periodSync = 0

	// Memory sample at full-heap collections.
	if s.cfg.MemTimeline && s.collections%s.cfg.FullHeapEvery == 0 {
		s.recordMemSample()
	}

	// Toggle sampling with the bias-corrected probability (Section 4).
	if s.sampler != nil && s.cfg.SampleTarget > 0 {
		if s.sampling {
			s.sampler.SampleEnd()
			s.sampling = false
		}
		if s.rng.Float64() < s.adjustedProbability() {
			s.sampler.SampleBegin()
			s.sampling = true
		}
	}
}

// adjustedProbability corrects for metadata allocation shortening sampling
// periods: entering sampling with plain probability r would under-sample
// program work, so the controller reweights by the observed work per
// period of each kind, measured in synchronization operations.
func (s *Sim) adjustedProbability() float64 {
	r := s.cfg.SampleTarget
	if r >= 1 {
		return 1
	}
	wn := 1.0
	if s.nonsampP > 0 && s.nonsampWork > 0 {
		wn = s.nonsampWork / float64(s.nonsampP)
	}
	// Sampling periods are shorter because metadata allocation brings
	// collections sooner; before enough periods have been observed, blend
	// the measurement with a prior of half a non-sampling period's work.
	const priorPeriods = 5
	ws := 0.5 * wn
	if s.sampPeriods > 0 {
		obs := s.sampWork / float64(s.sampPeriods)
		if n := float64(min(s.sampPeriods, priorPeriods)); n < priorPeriods {
			ws = (obs*n + ws*(priorPeriods-n)) / priorPeriods
		} else {
			ws = obs
		}
	}
	if ws <= 0 {
		ws = 0.1 * wn
	}
	p := r * wn / (ws*(1-r) + r*wn)
	return min(max(p, 0), 1)
}

func (s *Sim) recordMemSample() {
	meta := 0
	if ma, ok := s.cfg.Detector.(detector.MemoryAccounted); ok {
		meta = ma.MetadataWords()
	}
	om := 0
	if s.cfg.Detector != nil {
		// Two header words per object: modelled as a constant fraction of
		// the live program heap.
		om = int(s.programLive()) / 8
	}
	s.result.MemSamples = append(s.result.MemSamples, MemSample{
		Event:        s.result.Events,
		ProgramWords: int(s.programLive()),
		HeaderWords:  om,
		MetaWords:    meta,
	})
}

// programLive models the program's live heap: a base plus slow growth, as
// eclipse exhibits in Figure 10. The base is kept comparable to the
// detectors' metadata footprints at this scale so Figure 10's series
// separate the way the paper's do.
func (s *Sim) programLive() uint64 {
	return 6_000 + s.programAllocd/128
}

// finish closes out the final period and computes summary statistics.
func (s *Sim) finish() {
	if s.sampling {
		s.sampWork += float64(s.periodSync)
		s.sampPeriods++
		if s.sampler != nil {
			s.sampler.SampleEnd()
		}
	} else {
		s.nonsampWork += float64(s.periodSync)
		s.nonsampP++
	}
	if s.syncTotal > 0 {
		s.result.EffectiveRate = float64(s.syncSampling) / float64(s.syncTotal)
	}
	s.result.SamplingPeriods = s.sampPeriods
	if s.counted != nil {
		s.result.Counters = *s.counted.Stats()
	}
	if ma, ok := s.cfg.Detector.(detector.MemoryAccounted); ok {
		s.result.FinalMetaWords = ma.MetadataWords()
	}
}
