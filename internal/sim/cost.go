package sim

// CostModel assigns simulated time units to program operations and
// instrumentation work. The *structure* of the model is exact — every term
// is driven by a counted operation of the detector under test, so overhead
// scales precisely with how often each analysis path executes — while the
// unit constants are calibrated once against the overhead breakdown the
// paper reports for its Jikes RVM implementation (Figure 7: ~15% for object
// metadata + sync instrumentation, ~18% for the inline read/write check,
// ~12x at a 100% sampling rate; Section 4: "the overhead of this check is
// about 18%").
type CostModel struct {
	// AccessBase is the base cost of an uninstrumented read or write.
	AccessBase float64
	// SyncBase is the base cost of a synchronization operation.
	SyncBase float64
	// AllocPerWord is the base cost of allocating one heap word.
	AllocPerWord float64

	// OMPerWord is the extra allocation cost per program word for the two
	// object header words.
	OMPerWord float64
	// SyncInstrBase is the fixed instrumentation cost at each
	// synchronization operation (call into the analysis).
	SyncInstrBase float64
	// FastPathCheck is the inline "sampling || metadata != null" check on
	// an access whose slow path is not taken.
	FastPathCheck float64
	// SlowPathAccess is the analysis cost of an access slow path.
	SlowPathAccess float64
	// SlowJoinBase and PerElem price an O(n) join: fixed part plus per
	// vector element compared. MemcpyPerElem prices the cheaper streaming
	// element work of deep copies and clones.
	SlowJoinBase  float64
	PerElem       float64
	MemcpyPerElem float64
	// FastJoin is a version-epoch comparison that skips the join.
	FastJoin float64
	// DeepCopyBase and ShallowCopy price vector clock copies.
	DeepCopyBase float64
	ShallowCopy  float64
	// Increment prices a vector clock increment.
	Increment float64
}

// DefaultCostModel returns the calibrated constants.
func DefaultCostModel() CostModel {
	return CostModel{
		AccessBase:     1.0,
		SyncBase:       4.0,
		AllocPerWord:   0.05,
		OMPerWord:      0.012,
		SyncInstrBase:  0.6,
		FastPathCheck:  0.40,
		SlowPathAccess: 9.0,
		SlowJoinBase:   1.0,
		PerElem:        0.35,
		MemcpyPerElem:  0.10,
		FastJoin:       0.5,
		DeepCopyBase:   1.0,
		ShallowCopy:    0.5,
		Increment:      0.3,
	}
}

func (c *CostModel) fill() {
	if c.AccessBase == 0 {
		*c = DefaultCostModel()
	}
}
