// Package sim is the program-runtime substrate standing in for the paper's
// Jikes RVM: a deterministic simulator of multithreaded programs with
// locks, volatiles, fork/join, an allocating heap, and instrumentation
// hooks feeding any race detector.
//
// Programs are written as ordinary Go functions over a *Thread handle;
// every operation is a yield point. A single scheduler goroutine picks the
// next runnable thread with a seeded PRNG, so trials are reproducible and
// the observer effect (Section 5.1) is modelled by varying the seed.
//
// The simulator also reproduces the paper's sampling infrastructure
// (Section 4): sampling is toggled at garbage collections, collections are
// triggered by allocation — including the metadata the detector allocates
// while sampling, which is what biases naive sampling — and the controller
// corrects for that bias by measuring program work in synchronization
// operations.
package sim

import (
	"math/rand"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Var, Lock, Volatile, and Site re-export the event identifier types for
// workload code.
type (
	// Var identifies a shared data variable.
	Var = event.Var
	// Lock identifies a lock.
	Lock = event.Lock
	// Volatile identifies a volatile variable.
	Volatile = event.Volatile
	// Site identifies a static program location.
	Site = event.Site
)

// ThreadFunc is the body of a simulated thread.
type ThreadFunc func(t *Thread)

// Program is a simulated multithreaded program.
type Program struct {
	// Name labels the program in reports.
	Name string
	// Main is the body of thread 0.
	Main ThreadFunc
}

// Config controls one simulation trial.
type Config struct {
	// Seed drives the scheduler and all per-thread PRNGs.
	Seed int64
	// Detector observes the execution; nil runs the program uninstrumented
	// (the "Base" configuration of Figures 7-10).
	Detector detector.Detector
	// InstrumentAccesses false models the "OM + sync ops" configuration of
	// Figure 7: reads and writes are not instrumented at all (the detector
	// never sees them and no fast-path check cost accrues).
	InstrumentAccesses bool
	// SampleTarget is the specified sampling rate r for detectors
	// implementing detector.Sampler. Zero never samples; one always
	// samples.
	SampleTarget float64
	// NurseryWords is the allocation budget between collections
	// (the paper's 32 MB nursery). Defaults to 32768.
	NurseryWords int
	// FullHeapEvery makes every n-th collection a full-heap collection, at
	// which a memory sample is recorded when MemTimeline is set. Defaults
	// to 4.
	FullHeapEvery int
	// MemTimeline records live-memory samples at full-heap collections
	// (Figure 10).
	MemTimeline bool
	// Cost is the instrumentation cost model; zero value uses defaults.
	Cost CostModel
	// MaxEvents aborts runaway programs (default 50M).
	MaxEvents uint64
}

func (c *Config) fill() {
	if c.NurseryWords == 0 {
		c.NurseryWords = 32768
	}
	if c.FullHeapEvery == 0 {
		c.FullHeapEvery = 4
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 50_000_000
	}
	c.Cost.fill()
}

// opKind enumerates thread yield points.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opLock
	opUnlock
	opVolRead
	opVolWrite
	opFork
	opJoin
	opAlloc
	opWork
	opWait
	opNotify
	opNotifyAll
	opExit
)

type op struct {
	kind     opKind
	target   uint32
	aux      uint32 // wait: the monitor lock
	site     Site
	method   uint32
	n        int        // alloc words / work units
	fn       ThreadFunc // fork body
	fromWait bool       // lock op is a Wait's re-acquisition
}

// Thread is the handle a simulated thread's body uses to perform
// operations. All methods are yield points; the scheduler decides when the
// operation takes effect.
type Thread struct {
	id       vclock.Thread
	rng      *rand.Rand
	reqs     chan op
	grants   chan struct{}
	pending  *op // next operation, owned by the scheduler
	done     bool
	forkID   vclock.Thread // result slot for Fork
	waitLock Lock          // monitor to re-acquire after a Wait
}

// ID returns the thread's identifier.
func (t *Thread) ID() vclock.Thread { return t.id }

// Rand returns the thread's deterministic PRNG.
func (t *Thread) Rand() *rand.Rand { return t.rng }

func (t *Thread) yield(o op) {
	t.reqs <- o
	<-t.grants
}

// Read performs rd(t, x) at the given site within the given method.
func (t *Thread) Read(x Var, site Site, method uint32) {
	t.yield(op{kind: opRead, target: uint32(x), site: site, method: method})
}

// Write performs wr(t, x).
func (t *Thread) Write(x Var, site Site, method uint32) {
	t.yield(op{kind: opWrite, target: uint32(x), site: site, method: method})
}

// Lock acquires m, blocking while another thread holds it.
func (t *Thread) Lock(m Lock) { t.yield(op{kind: opLock, target: uint32(m)}) }

// Unlock releases m, which the thread must hold.
func (t *Thread) Unlock(m Lock) { t.yield(op{kind: opUnlock, target: uint32(m)}) }

// VolRead reads the volatile vx.
func (t *Thread) VolRead(vx Volatile) { t.yield(op{kind: opVolRead, target: uint32(vx)}) }

// VolWrite writes the volatile vx.
func (t *Thread) VolWrite(vx Volatile) { t.yield(op{kind: opVolWrite, target: uint32(vx)}) }

// Alloc allocates words of program heap, advancing the collector.
func (t *Thread) Alloc(words int) { t.yield(op{kind: opAlloc, n: words}) }

// Work performs n units of uninstrumented computation.
func (t *Thread) Work(n int) { t.yield(op{kind: opWork, n: n}) }

// Fork starts a new simulated thread executing fn and returns its
// identifier.
func (t *Thread) Fork(fn ThreadFunc) vclock.Thread {
	t.forkID = vclock.NoThread
	t.yield(op{kind: opFork, fn: fn})
	return t.forkID
}

// Join blocks until thread u terminates.
func (t *Thread) Join(u vclock.Thread) { t.yield(op{kind: opJoin, target: uint32(u)}) }

// Sim runs programs. Create one per trial with Run.
type Sim struct {
	cfg       Config
	rng       *rand.Rand
	threads   []*Thread
	lockOwner map[Lock]vclock.Thread
	result    Result
	sampler   detector.Sampler
	counted   detector.Counted
	prevStats detector.Counters

	// Condition variable wait queues.
	condWaiters map[Cond][]*Thread

	// GC / sampling controller state.
	allocSinceGC  int
	collections   int
	sampling      bool
	syncSampling  uint64 // sync ops observed during sampling periods
	syncTotal     uint64
	periodSync    uint64 // sync ops in the current inter-GC period
	sampWork      float64
	sampPeriods   int
	nonsampWork   float64
	nonsampP      int
	programAllocd uint64
}
