package goldilocks_test

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/goldilocks"
)

func mk(r detector.Reporter) detector.Detector { return goldilocks.New(r) }

func TestBasicRaces(t *testing.T) {
	cases := []struct {
		name  string
		trace event.Trace
		kind  detector.RaceKind
	}{
		{"ww", dtest.NewTB().Write(0, 1).Write(1, 1).Trace, detector.WriteWrite},
		{"wr", dtest.NewTB().Write(0, 1).Read(1, 1).Trace, detector.WriteRead},
		{"rw", dtest.NewTB().Read(0, 1).Write(1, 1).Trace, detector.ReadWrite},
	}
	for _, tc := range cases {
		c := dtest.Run(tc.trace, mk)
		if c.DynamicCount() != 1 || c.Dynamic[0].Kind != tc.kind {
			t.Errorf("%s: got %v", tc.name, c.Dynamic)
		}
	}
}

func TestLockTransferEntitles(t *testing.T) {
	b := dtest.NewTB().
		Acq(0, 1).Write(0, 7).Rel(0, 1).
		Acq(1, 1).Write(1, 7).Rel(1, 1)
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("lock-ordered writes raced: %v", c.Dynamic)
	}
}

func TestTransitiveTransfer(t *testing.T) {
	// Entitlement flows t0 → (lock 1) → t1 → (lock 2) → t2.
	b := dtest.NewTB().
		Write(0, 7).Acq(0, 1).Rel(0, 1).
		Acq(1, 1).Rel(1, 1).Acq(1, 2).Rel(1, 2).
		Acq(2, 2).Rel(2, 2).Write(2, 7)
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("transitively ordered writes raced: %v", c.Dynamic)
	}
}

func TestForkJoinAndVolatileEdges(t *testing.T) {
	b := dtest.NewTB().
		Write(0, 1).Fork(0, 1).Read(1, 1). // fork edge
		Write(1, 2).Join(0, 1).Read(0, 2). // join edge
		Write(0, 3).VolWrite(0, 5).
		VolRead(2, 5).Read(2, 3) // volatile edge
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("synchronized accesses raced: %v", c.Dynamic)
	}
}

func TestConcurrentReadersAllCheckedAtWrite(t *testing.T) {
	// Three concurrent readers, then a write concurrent with all: three
	// read-write races — the multi-reader case a single last-access
	// tracker would miss.
	b := dtest.NewTB().Read(0, 1).Read(1, 1).Read(2, 1).Write(3, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 3 {
		t.Fatalf("races = %d, want 3", c.DynamicCount())
	}
}

func TestOrderedReaderNotReported(t *testing.T) {
	// Reader 0 is ordered before the write via a lock; reader 1 is not.
	b := dtest.NewTB().
		Read(0, 1).Acq(0, 5).Rel(0, 5).
		Read(1, 1).
		Acq(2, 5).Write(2, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1 (only the unordered reader)", c.DynamicCount())
	}
	if c.Dynamic[0].FirstThread != 1 {
		t.Errorf("wrong reader reported: %v", c.Dynamic[0])
	}
}

func TestVolatileWriteIsReleaseOnly(t *testing.T) {
	// A volatile write publishes but does not acquire: t2's plain write
	// still races with t0's.
	b := dtest.NewTB().
		Write(0, 7).VolWrite(0, 3).
		VolWrite(2, 3).Write(2, 7)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1", c.DynamicCount())
	}
}

func TestNoFalsePositivesOnSynchronizedTraces(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := event.Generate(event.Synchronized(6, 3000, seed))
		if c := dtest.Run(tr, mk); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: false positive %v", seed, c.Dynamic[0])
		}
	}
}

// Goldilocks is precise: it agrees with FASTTRACK on each variable's first
// race, on arbitrary traces.
func TestFirstRaceAgreesWithFastTrack(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		tr := event.Generate(event.GenConfig{
			Threads: 6, Vars: 10, Locks: 3, Volatiles: 2,
			Steps: 2000, PGuarded: 0.55, PWrite: 0.4, Seed: seed,
		})
		gl := dtest.FirstRacePerVar(tr, mk)
		ft := dtest.FirstRacePerVar(tr, func(r detector.Reporter) detector.Detector { return fasttrack.New(r) })
		if len(gl) != len(ft) {
			t.Fatalf("seed %d: goldilocks raced %d vars, fasttrack %d", seed, len(gl), len(ft))
		}
		for v, i := range gl {
			if ft[v] != i {
				t.Fatalf("seed %d: first race on x%d at event %d (goldilocks) vs %d (fasttrack)", seed, v, i, ft[v])
			}
		}
	}
}

func TestLocksetGrowth(t *testing.T) {
	d := goldilocks.New(nil)
	d.Write(0, 7, 1, 0)
	if d.LocksetSize(7) != 1 {
		t.Fatalf("initial closure size = %d, want 1", d.LocksetSize(7))
	}
	d.Release(0, 3) // closure gains lock 3
	d.Acquire(1, 3) // closure gains thread 1
	if d.LocksetSize(7) != 3 {
		t.Fatalf("closure size = %d, want 3", d.LocksetSize(7))
	}
}

func TestStatsAndName(t *testing.T) {
	d := goldilocks.New(nil)
	d.Write(0, 1, 1, 0)
	d.Read(1, 1, 2, 0)
	d.Acquire(0, 1)
	d.Release(0, 1)
	d.Fork(0, 1)
	d.Join(0, 1)
	if d.Name() != "goldilocks" {
		t.Error("wrong name")
	}
	if d.Stats().TotalSyncOps() != 4 {
		t.Errorf("sync ops = %d", d.Stats().TotalSyncOps())
	}
	if d.Stats().Races == 0 {
		t.Error("race counter not incremented")
	}
}
