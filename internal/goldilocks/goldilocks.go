// Package goldilocks implements a Goldilocks-style race detector after
// Elmas, Qadeer, and Tasiran (PLDI 2007), which Section 6.2 of the PACER
// paper discusses as the sound *and* precise lockset-based alternative to
// vector clocks: instead of clock comparisons, each recorded access owns a
// growing *entitlement closure* — the set of threads, locks, and volatiles
// that the access happens before — updated along synchronizes-with edges:
//
//   - an access by t starts its closure as {t};
//   - rel(t, m) adds m to every closure containing t (t's past is now
//     published through m); vol_wr(t, vx) likewise adds vx; fork(t, u)
//     adds u; join(t, u) adds t to closures containing u;
//   - acq(t, m) adds t to every closure containing m; vol_rd(t, vx)
//     likewise.
//
// By construction, thread t belongs to an access's closure exactly when
// the access happens before t's current operation, so the race check is
// set membership: a conflicting access by t races with a recorded access
// whose closure does not contain t. Per variable the detector keeps the
// last write's closure and one closure per concurrent reader — the same
// information FASTTRACK keeps as a write epoch and read map — and it
// agrees with FASTTRACK on every variable's first race (verified
// differentially). Closures are maintained eagerly through an inverted
// index; the original paper's contribution was a lazy evaluation strategy
// with the same semantics.
package goldilocks

import (
	"sort"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// elem is a synchronization element: a thread, lock, or volatile.
type elem struct {
	kind uint8 // 0 = thread, 1 = lock, 2 = volatile
	id   uint32
}

func threadElem(t vclock.Thread) elem { return elem{0, uint32(t)} }
func lockElem(m event.Lock) elem      { return elem{1, uint32(m)} }
func volElem(vx event.Volatile) elem  { return elem{2, uint32(vx)} }

// closure is one recorded access's entitlement set.
type closure struct {
	elems map[elem]struct{}
	// Owner access, for reporting.
	t     vclock.Thread
	site  event.Site
	write bool
}

func (c *closure) has(e elem) bool {
	_, ok := c.elems[e]
	return ok
}

// varState holds a variable's recorded accesses: the last write and the
// concurrent readers since it.
type varState struct {
	write   *closure
	readers map[vclock.Thread]*closure
}

// Detector is the Goldilocks analysis. It is not safe for concurrent use.
type Detector struct {
	vars map[event.Var]*varState
	// index maps each synchronization element to the closures containing
	// it, so a synchronization operation touches only the closures it can
	// actually grow.
	index  map[elem]map[*closure]struct{}
	report detector.Reporter
	stats  detector.Counters
}

var (
	_ detector.Detector = (*Detector)(nil)
	_ detector.Counted      = (*Detector)(nil)
	_ detector.VarAccounted = (*Detector)(nil)
)

// New returns a Goldilocks detector.
func New(report detector.Reporter) *Detector {
	return &Detector{
		vars:   make(map[event.Var]*varState),
		index:  make(map[elem]map[*closure]struct{}),
		report: report,
	}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "goldilocks" }

// Stats returns the detector's operation counters.
func (d *Detector) Stats() *detector.Counters { return &d.stats }

func (d *Detector) newClosure(t vclock.Thread, site event.Site, write bool) *closure {
	c := &closure{elems: map[elem]struct{}{}, t: t, site: site, write: write}
	d.add(c, threadElem(t))
	return c
}

func (d *Detector) add(c *closure, e elem) {
	if c.has(e) {
		return
	}
	c.elems[e] = struct{}{}
	cs, ok := d.index[e]
	if !ok {
		cs = make(map[*closure]struct{})
		d.index[e] = cs
	}
	cs[c] = struct{}{}
}

func (d *Detector) drop(c *closure) {
	if c == nil {
		return
	}
	for e := range c.elems {
		delete(d.index[e], c)
	}
}

// transfer grows every closure containing `from` by `to`.
func (d *Detector) transfer(from, to elem) {
	// Collect first: adding `to` mutates d.index[to], never d.index[from],
	// but `from == to` cannot occur (kinds always differ or ids differ by
	// the caller's construction); collect anyway for clarity.
	var grow []*closure
	for c := range d.index[from] {
		grow = append(grow, c)
	}
	for _, c := range grow {
		d.add(c, to)
	}
}

// LocksetSize returns the size of the last write's closure, for tests.
func (d *Detector) LocksetSize(x event.Var) int {
	if v, ok := d.vars[x]; ok && v.write != nil {
		return len(v.write.elems)
	}
	return 0
}

func (d *Detector) emit(first *closure, t vclock.Thread, x event.Var, site event.Site, currentWrite bool) {
	d.stats.Races++
	if d.report == nil {
		return
	}
	kind := detector.ReadWrite
	switch {
	case first.write && currentWrite:
		kind = detector.WriteWrite
	case first.write && !currentWrite:
		kind = detector.WriteRead
	}
	d.report(detector.Race{
		Var: x, Kind: kind,
		FirstThread: first.t, SecondThread: t,
		FirstSite: first.site, SecondSite: site,
	})
}

func (d *Detector) varState(x event.Var) *varState {
	v, ok := d.vars[x]
	if !ok {
		v = &varState{readers: make(map[vclock.Thread]*closure)}
		d.vars[x] = v
	}
	return v
}

// Read observes rd(t, x): race iff the last write does not happen before
// it; the reader then records its own closure (replacing its previous one,
// which the new read supersedes).
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.ReadSlow[detector.Sampling]++
	v := d.varState(x)
	te := threadElem(t)
	if v.write != nil && !v.write.has(te) {
		d.emit(v.write, t, x, site, false)
	}
	if old := v.readers[t]; old != nil {
		d.drop(old)
	}
	v.readers[t] = d.newClosure(t, site, false)
}

// Write observes wr(t, x): race iff the last write or any concurrent
// reader does not happen before it; the write then supersedes all recorded
// accesses.
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.WriteSlow[detector.Sampling]++
	v := d.varState(x)
	te := threadElem(t)
	if v.write != nil && !v.write.has(te) {
		d.emit(v.write, t, x, site, true)
	}
	// Deterministic report order over racing readers.
	var ts []vclock.Thread
	for rt := range v.readers {
		ts = append(ts, rt)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	for _, rt := range ts {
		r := v.readers[rt]
		if !r.has(te) {
			d.emit(r, t, x, site, true)
		}
		d.drop(r)
		delete(v.readers, rt)
	}
	d.drop(v.write)
	v.write = d.newClosure(t, site, true)
}

// Acquire implements acq(t, m): closures containing m gain t.
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) {
	d.stats.SyncOps[detector.Sampling]++
	d.transfer(lockElem(m), threadElem(t))
}

// Release implements rel(t, m): closures containing t gain m.
func (d *Detector) Release(t vclock.Thread, m event.Lock) {
	d.stats.SyncOps[detector.Sampling]++
	d.transfer(threadElem(t), lockElem(m))
}

// Fork publishes the parent's recorded accesses to the child.
func (d *Detector) Fork(t, u vclock.Thread) {
	d.stats.SyncOps[detector.Sampling]++
	d.transfer(threadElem(t), threadElem(u))
}

// Join publishes the joined thread's recorded accesses to the joiner.
func (d *Detector) Join(t, u vclock.Thread) {
	d.stats.SyncOps[detector.Sampling]++
	d.transfer(threadElem(u), threadElem(t))
}

// VolRead implements vol_rd(t, vx): closures containing vx gain t.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) {
	d.stats.SyncOps[detector.Sampling]++
	d.transfer(volElem(vx), threadElem(t))
}

// VolWrite implements vol_wr(t, vx): closures containing t gain vx.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) {
	d.stats.SyncOps[detector.Sampling]++
	d.transfer(threadElem(t), volElem(vx))
}

// VarsTracked implements detector.VarAccounted.
func (d *Detector) VarsTracked() int { return len(d.vars) }
