// Package ingest is the production push-ingestion tier for the fleet
// collector — the path that has to survive "millions of instances"
// (ROADMAP north star) where cmd/pacerd's original single-mutex,
// trust-everything handler cannot.
//
// The tier is an explicit, composable pipeline mounted on /v1/push:
//
//	decode → authenticate → rate-limit → load-shed → merge
//
// Every stage is a Stage value with its own counters (exported on
// /metrics as pacer_ingest_*), and resilience connectors wrap stages
// uniformly: Retry wraps transient-failure-prone stages with
// exponential backoff, Breaker wraps the merge in a circuit breaker
// that fails fast while the state layer is sick, and Queue bounds the
// number of pushes in flight, shedding (503, counted) instead of
// queueing without bound — SmartTrack's lesson that hot-path work must
// be restructured, not just locked, applied to ingestion.
//
// Behind the pipeline, State shards the collector's per-instance triage
// state by instance key so pushes to different instances never contend
// on one mutex, bounds per-shard memory with LRU eviction (counted),
// and supports versioned snapshot/restore so a collector restart loses
// zero triage entries. Service assembles all of it into the HTTP
// surface pacerd mounts.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"pacer/internal/fleet"
)

// Request is the unit of work flowing through the pipeline: one push,
// progressively enriched by the stages (Decode fills Push and Entries,
// Merge reports the outcome through Stale).
type Request struct {
	// Header carries the HTTP request headers (bearer token for Auth).
	Header http.Header
	// Body is the raw (still compressed) push body, already bounded by
	// the transport-level MaxBytesReader.
	Body io.Reader
	// Push is the decoded envelope; set by the Decode stage.
	Push *fleet.Push
	// Entries is the materialized triage payload; set by Decode.
	Entries map[fleet.TriageKey]fleet.TriageEntry
	// Stale is set by Merge when the push was acknowledged without
	// effect (sequence not newer — a retry or out-of-order delivery).
	Stale bool
}

// Stage is one step of the ingest pipeline. Implementations keep their
// own counters and return nil to pass the request on, or an error
// (usually a *StatusError) to stop it.
type Stage interface {
	// Name identifies the stage in metrics and error messages.
	Name() string
	// Process handles one request. It must be safe for concurrent use.
	Process(ctx context.Context, req *Request) error
}

// StageFunc adapts a function to the Stage interface.
type StageFunc struct {
	StageName string
	Fn        func(ctx context.Context, req *Request) error
}

func (s StageFunc) Name() string { return s.StageName }

func (s StageFunc) Process(ctx context.Context, req *Request) error { return s.Fn(ctx, req) }

// StatusError is a pipeline error that knows the HTTP status the
// handler should answer with, and whether the failure is transient
// (retry-worthy for the Retry connector, breaker-relevant for Breaker).
type StatusError struct {
	Status    int
	Transient bool
	Err       error
}

func (e *StatusError) Error() string {
	if e.Err == nil {
		return http.StatusText(e.Status)
	}
	return e.Err.Error()
}

func (e *StatusError) Unwrap() error { return e.Err }

// Errf builds a non-transient StatusError.
func Errf(status int, format string, args ...any) *StatusError {
	return &StatusError{Status: status, Err: fmt.Errorf(format, args...)}
}

// StatusOf maps a pipeline error to its HTTP status (500 for errors
// that carry none).
func StatusOf(err error) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status
	}
	return http.StatusInternalServerError
}

// IsTransient reports whether err is worth retrying: a StatusError
// flagged transient, or any error that carries no status at all
// (unclassified internal failures).
func IsTransient(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Transient
	}
	return err != nil
}

// isServerFault reports whether err should count against the circuit
// breaker: server-side trouble (5xx or unclassified), never the
// client's own 4xx.
func isServerFault(err error) bool {
	return StatusOf(err) >= 500
}

// Pipeline runs stages in order, stopping at the first error. It is the
// spine of the ingest tier; connectors nest inside individual stages,
// so the top-level sequence stays readable in one place.
type Pipeline struct {
	stages []Stage
}

// NewPipeline composes stages into a pipeline.
func NewPipeline(stages ...Stage) *Pipeline { return &Pipeline{stages: stages} }

// Stages exposes the composed stages (metrics enumeration).
func (p *Pipeline) Stages() []Stage { return p.stages }

// Process runs req through every stage in order.
func (p *Pipeline) Process(ctx context.Context, req *Request) error {
	for _, s := range p.stages {
		if err := s.Process(ctx, req); err != nil {
			return err
		}
	}
	return nil
}
