package ingest

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"pacer"
	"pacer/internal/fleet"
)

func newTestService(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

// postPush sends one raw push and returns the response (body drained).
func postPush(t *testing.T, url string, p *fleet.Push) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if err := fleet.EncodePush(&body, p); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+fleet.PushPath, "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, blob)
	}
	return string(blob)
}

// referenceRaces merges each aggregator's export in sorted instance
// order — the collector's own merge procedure — and renders it the way
// /races does.
func referenceRaces(t *testing.T, aggs map[string]*pacer.Aggregator) string {
	t.Helper()
	names := make([]string, 0, len(aggs))
	for name := range aggs {
		names = append(names, name)
	}
	sort.Strings(names)
	ref := pacer.NewAggregator()
	for _, name := range names {
		blob, err := aggs[name].MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.ImportJSON(blob); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := ref.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(blob) + "\n"
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestIngestV1V2Compat is the wire-compat acceptance test: an old-style
// cumulative (v1) reporter and a delta-capable (v2) reporter feed the
// same collector, and the merged /races view is byte-identical to an
// in-process aggregator over the same races.
func TestIngestV1V2Compat(t *testing.T) {
	_, srv := newTestService(t, Options{})

	aggOld := pacer.NewAggregator()
	aggNew := pacer.NewAggregator()
	newRep := func(agg *pacer.Aggregator, instance string, disableDelta bool) *fleet.Reporter {
		r, err := fleet.NewReporter(agg, fleet.ReporterOptions{
			Collector:    srv.URL,
			Instance:     instance,
			Interval:     time.Hour, // driven by Flush
			Timeout:      5 * time.Second,
			MinBackoff:   5 * time.Millisecond,
			DisableDelta: disableDelta,
			Seed:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	old := newRep(aggOld, "inst-old", true)
	fresh := newRep(aggNew, "inst-new", false)

	push := func(r *fleet.Reporter, want uint64) {
		r.Flush()
		waitFor(t, "push ack", func() bool { return r.Stats().Pushes >= want })
	}

	// Round 1: both reporters push full snapshots; the ack teaches the
	// delta-capable one that this collector speaks v2.
	for i := 0; i < 4; i++ {
		aggOld.Reporter("inst-old")(pacer.Race{Var: pacer.VarID(i), Kind: pacer.WriteWrite,
			FirstSite: pacer.SiteID(100 + 2*i), SecondSite: pacer.SiteID(101 + 2*i)})
		aggNew.Reporter("inst-new")(pacer.Race{Var: pacer.VarID(1000 + i), Kind: pacer.WriteRead,
			FirstSite: pacer.SiteID(500 + 2*i), SecondSite: pacer.SiteID(501 + 2*i)})
	}
	push(old, 1)
	push(fresh, 1)

	// Rounds 2..4: growth on both sides; the v2 reporter now ships
	// deltas, the v1 reporter keeps shipping cumulative snapshots.
	for round := 2; round <= 4; round++ {
		aggOld.Reporter("inst-old")(pacer.Race{Var: 0, Kind: pacer.WriteWrite, FirstSite: 100, SecondSite: 101})
		aggNew.Reporter("inst-new")(pacer.Race{Var: pacer.VarID(1000 + 10*round), Kind: pacer.ReadWrite,
			FirstSite: pacer.SiteID(700 + 2*round), SecondSite: pacer.SiteID(701 + 2*round)})
		push(old, uint64(round))
		push(fresh, uint64(round))
	}

	if st := fresh.Stats(); st.DeltaPushes == 0 {
		t.Fatalf("delta-capable reporter never sent a delta: %+v", st)
	}
	if st := old.Stats(); st.DeltaPushes != 0 {
		t.Fatalf("v1-pinned reporter sent deltas: %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := old.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Close(ctx); err != nil {
		t.Fatal(err)
	}

	got := getBody(t, srv.URL+"/races")
	want := referenceRaces(t, map[string]*pacer.Aggregator{"inst-old": aggOld, "inst-new": aggNew})
	if got != want {
		t.Fatalf("mixed v1/v2 fleet diverged from the in-process aggregator:\n got %s\nwant %s", got, want)
	}
}

// TestIngestServiceRestartPreservesRaces is the snapshot round-trip
// regression: persist, restart, and /races serves byte-identical state —
// including the seq tracking delta pushes chain on.
func TestIngestServiceRestartPreservesRaces(t *testing.T) {
	dir := t.TempDir()
	svc1, err := New(Options{StateDir: dir, SnapshotInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(svc1.Handler())
	for i, name := range []string{"pod-a", "pod-b", "pod-c"} {
		p, _ := pushFor(name, uint64(i+1), 3, 0,
			entryFor(uint32(10*i), uint32(100*i+10), i+1, name),
			entryFor(uint32(10*i+1), uint32(100*i+30), 2*i+1, name))
		if resp := postPush(t, srv1.URL, p); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("seed push for %s: %s", name, resp.Status)
		}
	}
	before := getBody(t, srv1.URL+"/races")
	srv1.Close()
	if err := svc1.Close(); err != nil { // writes the final snapshot
		t.Fatal(err)
	}

	svc2, err := New(Options{StateDir: dir, SnapshotInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	defer svc2.Close()

	if after := getBody(t, srv2.URL+"/races"); after != before {
		t.Fatalf("/races changed across restart:\n before %s\n after  %s", before, after)
	}
	// A delta chained on the pre-restart seq still lands.
	p, _ := pushFor("pod-a", 1, 4, 3, entryFor(0, 10, 5, "pod-a"))
	if resp := postPush(t, srv2.URL, p); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post-restart delta: %s", resp.Status)
	}
}

// TestIngestServiceResyncAfterStateLoss: a collector that lost an
// instance's state (restart without -state-dir) answers a delta with
// 409, and a subsequent full snapshot heals it.
func TestIngestServiceResyncAfterStateLoss(t *testing.T) {
	_, srv := newTestService(t, Options{})
	delta, _ := pushFor("amnesia", 1, 5, 4, entryFor(1, 10, 3, "amnesia"))
	resp := postPush(t, srv.URL, delta)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delta without state answered %s, want 409", resp.Status)
	}
	if got := resp.Header.Get(fleet.ProtocolHeader); got != "2" {
		t.Fatalf("409 carried %s %q, want 2 (reporter must stay in delta mode)", fleet.ProtocolHeader, got)
	}
	full, _ := pushFor("amnesia", 1, 6, 0, entryFor(1, 10, 3, "amnesia"))
	if resp := postPush(t, srv.URL, full); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("healing full push answered %s, want 204", resp.Status)
	}
}

func TestIngestServiceAuth(t *testing.T) {
	svc, srv := newTestService(t, Options{AuthToken: "s3cret"})
	p, _ := pushFor("auth-inst", 1, 1, 0, entryFor(1, 10, 1, "auth-inst"))

	resp := postPush(t, srv.URL, p)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless push answered %s, want 401", resp.Status)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 must carry WWW-Authenticate")
	}

	var body bytes.Buffer
	if err := fleet.EncodePush(&body, p); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+fleet.PushPath, &body)
	req.Header.Set("Authorization", "Bearer s3cret")
	authed, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, authed.Body)
	authed.Body.Close()
	if authed.StatusCode != http.StatusNoContent {
		t.Fatalf("authorized push answered %s, want 204", authed.Status)
	}
	if svc.state.Instances() != 1 {
		t.Fatalf("authorized push did not land: %d instances", svc.state.Instances())
	}
}

func TestIngestServiceRateLimitHTTP(t *testing.T) {
	_, srv := newTestService(t, Options{PushRate: 0.001, PushBurst: 1})
	p1, _ := pushFor("chatty", 1, 1, 0, entryFor(1, 10, 1, "chatty"))
	if resp := postPush(t, srv.URL, p1); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("first push answered %s", resp.Status)
	}
	p2, _ := pushFor("chatty", 1, 2, 0, entryFor(1, 10, 2, "chatty"))
	if resp := postPush(t, srv.URL, p2); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst-exceeding push answered %s, want 429", resp.Status)
	}
}

// TestIngestServiceMetrics pins the acceptance metric names and checks
// each counted path actually moved its counter.
func TestIngestServiceMetrics(t *testing.T) {
	_, srv := newTestService(t, Options{AuthToken: ""})
	p, _ := pushFor("metrics-inst", 1, 1, 0, entryFor(1, 10, 2, "metrics-inst"))
	if resp := postPush(t, srv.URL, p); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("push: %s", resp.Status)
	}
	// One malformed push to move the decode-error counter.
	resp, err := http.Post(srv.URL+fleet.PushPath, "application/json", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	metrics := getBody(t, srv.URL+"/metrics")
	for _, want := range []string{
		// The acceptance set.
		"pacer_ingest_decoded_total 1",
		"pacer_ingest_unauthorized_total 0",
		"pacer_ingest_ratelimited_total 0",
		"pacer_ingest_shed_total 0",
		"pacer_ingest_merged_total 1",
		"pacer_ingest_breaker_open_total 0",
		// Pipeline health around it.
		"pacer_ingest_decode_errors_total 1",
		"pacer_ingest_breaker_state 0",
		"pacer_ingest_state_bytes",
		"pacer_ingest_evicted_instances_total 0",
		// Continuity with the original collector's dashboard names.
		"pacer_collector_pushes_total 1",
		"pacer_collector_instances 1",
		"pacer_collector_distinct_races 1",
		`pacer_collector_instance_last_seen_timestamp_seconds{instance="metrics-inst"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}
