package ingest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pacer/internal/fleet"
)

func TestIngestSnapshotRoundTrip(t *testing.T) {
	clock := newFakeClock()
	src := NewState(StateOptions{Clock: clock.Now})
	apply(src, "b", 2, 3, 0, entryFor(1, 10, 4, "b"), entryFor(2, 20, 1, "b"))
	apply(src, "a", 9, 7, 0, entryFor(3, 30, 2, "a"))
	p, entries := pushFor("c", 4, 1, 0, entryFor(5, 50, 6, "c"))
	p.Arena = &fleet.ArenaGauges{SlabsLive: 3, Recycles: 11}
	p.Shadow = &fleet.ShadowGauges{Hits: 100, Vars: 7}
	p.Dropped = 2
	src.Apply(p, entries)

	dir := t.TempDir()
	if err := WriteSnapshotFile(dir, src.Snapshot()); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	snap, err := ReadSnapshotFile(dir)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if snap == nil || snap.Version != SnapshotVersion || len(snap.Instances) != 3 {
		t.Fatalf("read snapshot = %+v, want version %d with 3 instances", snap, SnapshotVersion)
	}

	dst := NewState(StateOptions{Clock: clock.Now})
	if err := dst.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := racesJSON(t, dst), racesJSON(t, src); got != want {
		t.Fatalf("restored view diverged:\n got %s\nwant %s", got, want)
	}
	// The envelope bookkeeping survived too: a delta whose base is the
	// pre-restart seq lands, and the gauges are still exported.
	if got := apply(dst, "b", 2, 4, 3, entryFor(1, 10, 9, "b")); got != ApplyMerged {
		t.Fatalf("delta on restored base = %v, want merged", got)
	}
	rows := dst.Rows()
	var c *InstanceRow
	for i := range rows {
		if rows[i].Name == "c" {
			c = &rows[i]
		}
	}
	if c == nil || c.Arena == nil || c.Arena.Recycles != 11 || c.Shadow == nil || c.Shadow.Vars != 7 || c.Dropped != 2 {
		t.Fatalf("instance c's envelope did not survive restore: %+v", c)
	}
}

func TestIngestSnapshotDeterministic(t *testing.T) {
	clock := newFakeClock()
	s := NewState(StateOptions{Clock: clock.Now})
	apply(s, "z", 1, 1, 0, entryFor(2, 20, 1, "z"), entryFor(1, 10, 3, "z"))
	apply(s, "a", 1, 1, 0, entryFor(4, 40, 2, "a"))
	one, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	two, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(one) != string(two) {
		t.Fatalf("snapshots of identical state differ:\n%s\n%s", one, two)
	}
}

func TestIngestSnapshotVersionAndMissing(t *testing.T) {
	dir := t.TempDir()
	if snap, err := ReadSnapshotFile(dir); snap != nil || err != nil {
		t.Fatalf("missing state file: got (%v, %v), want (nil, nil)", snap, err)
	}
	s := NewState(StateOptions{})
	if err := s.Restore(&SnapshotFile{Version: 99}); err == nil {
		t.Fatal("unknown snapshot version must be refused")
	}
	// A torn/corrupt file surfaces as an error, not silent empty state.
	if err := os.WriteFile(filepath.Join(dir, SnapshotFileName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(dir); err == nil {
		t.Fatal("corrupt state file must surface an error")
	}
}

// TestIngestServiceCloseWritesFinalSnapshot is satellite coverage for
// the SIGTERM drain path: Close persists the state without waiting for
// the periodic timer, and a successor service boots from it.
func TestIngestServiceCloseWritesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Options{StateDir: dir, SnapshotInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	apply(svc.State(), "drain", 1, 5, 0, entryFor(1, 10, 2, "drain"))
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := svc.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}

	successor, err := New(Options{StateDir: dir, SnapshotInterval: time.Hour})
	if err != nil {
		t.Fatalf("successor boot: %v", err)
	}
	defer successor.Close()
	if got := successor.State().Instances(); got != 1 {
		t.Fatalf("successor restored %d instances, want 1", got)
	}
	// Seq tracking came back with the triage state: the pre-shutdown
	// push replays as stale, the next delta chains cleanly.
	if got := apply(successor.State(), "drain", 1, 5, 0, entryFor(1, 10, 2, "drain")); got != ApplyStale {
		t.Fatalf("replay across restart = %v, want stale", got)
	}
	if got := apply(successor.State(), "drain", 1, 6, 5, entryFor(1, 10, 3, "drain")); got != ApplyMerged {
		t.Fatalf("delta across restart = %v, want merged", got)
	}
}
