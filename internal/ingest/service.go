package ingest

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pacer/internal/fleet"
)

// Options configure a Service. The zero value is a working open
// collector with defaults matching the original cmd/pacerd.
type Options struct {
	// State configures the sharded collector state.
	State StateOptions
	// MaxBodyBytes bounds the compressed size of one push. Default 8 MiB.
	MaxBodyBytes int64
	// MaxDecompressedBytes bounds one push after gzip inflation. Default
	// 10 * MaxBodyBytes.
	MaxDecompressedBytes int64
	// AuthToken, when non-empty, requires every push to carry
	// "Authorization: Bearer <token>". Read-only endpoints stay open.
	AuthToken string
	// PushRate and PushBurst configure the per-instance token bucket
	// (pushes per second, burst capacity). PushRate <= 0 disables rate
	// limiting.
	PushRate, PushBurst float64
	// RateLimitMaxBuckets bounds the limiter's bucket map. Default 65536.
	RateLimitMaxBuckets int
	// QueueDepth bounds pushes waiting for a merge worker; beyond it
	// pushes are shed with 503. Default 256.
	QueueDepth int
	// MergeWorkers is the merge worker-pool size. Default 4.
	MergeWorkers int
	// MergeRetries is the total attempt budget for a transiently failing
	// merge. Default 3.
	MergeRetries int
	// BreakerThreshold is the consecutive-failure count that opens the
	// merge circuit breaker. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before probing.
	// Default 10s.
	BreakerCooldown time.Duration
	// StateDir, when non-empty, enables snapshot/restore: the state is
	// restored from StateDir on New and persisted there periodically and
	// on Close (atomic rename, versioned format).
	StateDir string
	// SnapshotInterval is the periodic persistence cadence. Default 30s.
	// Ignored without StateDir.
	SnapshotInterval time.Duration
	// Clock supplies timestamps; tests inject a fake. Default time.Now.
	Clock func() time.Time
	// OnError observes background failures (snapshot writes). Optional.
	OnError func(error)
}

// Service is the assembled ingest tier: the stage pipeline mounted on
// /v1/push, the sharded state behind it, and the snapshot loop beside
// it. cmd/pacerd wraps it in a daemon; tests mount it on loopback
// listeners.
type Service struct {
	opts  Options
	state *State

	pipe    *Pipeline
	decode  *Decode
	auth    *Auth
	limit   *RateLimit
	queue   *Queue
	breaker *Breaker
	retry   *Retry
	merge   *Merge

	snapshots    atomic.Uint64
	snapshotErrs atomic.Uint64
	lastSnapshot atomic.Int64 // unix seconds

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// New builds the service, restoring persisted state when Options.
// StateDir holds a snapshot, and starts the periodic snapshot loop.
func New(opts Options) (*Service, error) {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	if opts.MaxDecompressedBytes <= 0 {
		opts.MaxDecompressedBytes = 10 * opts.MaxBodyBytes
	}
	if opts.SnapshotInterval <= 0 {
		opts.SnapshotInterval = 30 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.State.Clock == nil {
		opts.State.Clock = opts.Clock
	}
	s := &Service{
		opts:  opts,
		state: NewState(opts.State),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if opts.StateDir != "" {
		snap, err := ReadSnapshotFile(opts.StateDir)
		if err != nil {
			return nil, err
		}
		if snap != nil {
			if err := s.state.Restore(snap); err != nil {
				return nil, err
			}
		}
	}

	s.decode = &Decode{MaxDecompressed: opts.MaxDecompressedBytes}
	s.auth = &Auth{Token: opts.AuthToken}
	s.limit = &RateLimit{
		Rate: opts.PushRate, Burst: opts.PushBurst,
		MaxBuckets: opts.RateLimitMaxBuckets, Clock: opts.Clock,
	}
	s.merge = &Merge{State: s.state}
	s.retry = NewRetry(s.merge, opts.MergeRetries, 2*time.Millisecond)
	s.breaker = NewBreaker(s.retry, opts.BreakerThreshold, opts.BreakerCooldown, opts.Clock)
	s.queue = NewQueue(s.breaker, opts.QueueDepth, opts.MergeWorkers)
	s.pipe = NewPipeline(s.decode, s.auth, s.limit, s.queue)

	go s.snapshotLoop()
	return s, nil
}

// State exposes the sharded state (tests, load harness).
func (s *Service) State() *State { return s.state }

// Pipeline exposes the composed pipeline (tests).
func (s *Service) Pipeline() *Pipeline { return s.pipe }

// Breaker exposes the merge circuit breaker (tests, metrics).
func (s *Service) Breaker() *Breaker { return s.breaker }

// Queue exposes the load-shed queue (tests, metrics).
func (s *Service) Queue() *Queue { return s.queue }

// snapshotLoop persists the state every SnapshotInterval. The final
// snapshot on Close makes a clean shutdown independent of this timer.
func (s *Service) snapshotLoop() {
	defer close(s.done)
	if s.opts.StateDir == "" {
		<-s.stop
		return
	}
	ticker := time.NewTicker(s.opts.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if err := s.SaveSnapshot(); err != nil && s.opts.OnError != nil {
				s.opts.OnError(err)
			}
		}
	}
}

// SaveSnapshot persists the state to StateDir now (atomic rename). It
// retries transient filesystem errors with backoff before giving up.
func (s *Service) SaveSnapshot() error {
	if s.opts.StateDir == "" {
		return nil
	}
	snap := s.state.Snapshot()
	var err error
	for attempt, backoff := 0, 5*time.Millisecond; attempt < 3; attempt, backoff = attempt+1, backoff*2 {
		if attempt > 0 {
			time.Sleep(backoff)
		}
		if err = WriteSnapshotFile(s.opts.StateDir, snap); err == nil {
			s.snapshots.Add(1)
			s.lastSnapshot.Store(s.opts.Clock().Unix())
			return nil
		}
	}
	s.snapshotErrs.Add(1)
	return err
}

// Close stops the merge workers and the snapshot loop, then writes a
// final state snapshot — a clean shutdown never depends on the periodic
// timer having fired recently. Idempotent.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		<-s.done
		s.queue.Close()
		s.closeErr = s.SaveSnapshot()
	})
	return s.closeErr
}

// Handler returns the service's HTTP surface:
//
//	POST /v1/push  — the ingest pipeline (decode → auth → rate-limit →
//	                 shed → merge), acks carrying ProtocolHeader
//	GET  /races    — the merged fleet-wide triage list as JSON
//	GET  /healthz  — liveness
//	GET  /metrics  — Prometheus text metrics (pacer_ingest_* pipeline
//	                 counters plus the pacer_collector_* continuity set)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(fleet.PushPath, s.handlePush)
	mux.HandleFunc("/races", s.handleRaces)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Service) handlePush(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "push must POST", http.StatusMethodNotAllowed)
		return
	}
	// Advertise delta capability on every push response; reporters act
	// on it only after a successful ack.
	w.Header().Set(fleet.ProtocolHeader, strconv.Itoa(fleet.SchemaVersionDelta))
	r := &Request{
		Header: req.Header,
		Body:   http.MaxBytesReader(w, req.Body, s.opts.MaxBodyBytes),
	}
	if err := s.pipe.Process(req.Context(), r); err != nil {
		status := StatusOf(err)
		if status == http.StatusUnauthorized {
			w.Header().Set("WWW-Authenticate", `Bearer realm="pacerd"`)
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleRaces(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "races must GET", http.StatusMethodNotAllowed)
		return
	}
	agg, err := s.state.Merged()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	blob, err := agg.MarshalJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
	w.Write([]byte("\n"))
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	rows := s.state.Rows()
	distinct, mergeFailing := 0, 0
	if agg, err := s.state.Merged(); err == nil {
		distinct = agg.Distinct()
	} else {
		mergeFailing = 1
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	// The ingest pipeline, one stage at a time, in pipeline order.
	counter("pacer_ingest_decoded_total",
		"Pushes that decoded and validated (v1 cumulative or v2 delta).", s.decode.Decoded())
	counter("pacer_ingest_decode_errors_total",
		"Pushes rejected as malformed (gzip, schema, payload).", s.decode.Rejected())
	counter("pacer_ingest_unauthorized_total",
		"Pushes rejected for a missing or wrong bearer token.", s.auth.Unauthorized())
	counter("pacer_ingest_ratelimited_total",
		"Pushes rejected by the per-instance token bucket (429).", s.limit.Limited())
	counter("pacer_ingest_ratelimit_pruned_total",
		"Token buckets pruned to hold the limiter map bound.", s.limit.Pruned())
	gauge("pacer_ingest_ratelimit_buckets",
		"Live per-instance token buckets.", int64(s.limit.Buckets()))
	counter("pacer_ingest_shed_total",
		"Pushes shed at a full merge queue (503; reporters retry).", s.queue.Shed())
	gauge("pacer_ingest_queue_depth",
		"Pushes waiting for a merge worker right now.", int64(s.queue.Depth()))
	counter("pacer_ingest_merged_total",
		"Pushes applied to the sharded collector state.", s.merge.Merged())
	counter("pacer_ingest_stale_total",
		"Pushes acknowledged without effect (sequence not newer).", s.merge.Stale())
	counter("pacer_ingest_resyncs_total",
		"Delta pushes rejected for a missing base (409; reporter resyncs).", s.merge.Resyncs())
	counter("pacer_ingest_merge_retries_total",
		"Merge re-attempts after transient failures.", s.retry.Retries())
	counter("pacer_ingest_breaker_open_total",
		"Pushes fast-failed while the merge circuit breaker was open.", s.breaker.FastFails())
	counter("pacer_ingest_breaker_opens_total",
		"Circuit breaker transitions into the open state.", s.breaker.Opens())
	gauge("pacer_ingest_breaker_state",
		"Merge circuit breaker state: 0 closed, 1 half-open, 2 open.", int64(s.breaker.State()))

	// The sharded state and its bounds.
	gauge("pacer_ingest_state_bytes",
		"Accounted collector state memory across all shards.", s.state.Bytes())
	gauge("pacer_ingest_state_bytes_limit",
		"Configured collector state memory bound.", s.state.opts.MaxBytes)
	counter("pacer_ingest_evicted_instances_total",
		"Instances evicted (triage state plus seq/epoch tracking) to hold the memory bound.",
		s.state.Evicted())

	// Snapshot persistence.
	counter("pacer_ingest_snapshots_total",
		"State snapshots persisted (periodic and final).", s.snapshots.Load())
	counter("pacer_ingest_snapshot_errors_total",
		"State snapshot writes that failed after retries.", s.snapshotErrs.Load())
	gauge("pacer_ingest_last_snapshot_unix_seconds",
		"Unix time of the last persisted state snapshot (0 = never).", s.lastSnapshot.Load())

	// Continuity with the original collector's metric names, so fleet
	// dashboards survive the tier swap unchanged.
	counter("pacer_collector_pushes_total",
		"Pushes accepted (including idempotently ignored retries).",
		s.merge.Merged()+s.merge.Stale())
	counter("pacer_collector_push_errors_total",
		"Pushes rejected (bad schema, bad payload).", s.decode.Rejected())
	counter("pacer_collector_unauthorized_total",
		"Pushes rejected for a missing or wrong bearer token.", s.auth.Unauthorized())
	counter("pacer_collector_stale_pushes_total",
		"Pushes acknowledged without effect (sequence not newer).", s.merge.Stale())
	counter("pacer_collector_instances_expired_total",
		"Instances dropped after going unseen for longer than the retention TTL.",
		s.state.Expired())
	gauge("pacer_collector_instances", "Instances with a snapshot on file.", int64(len(rows)))
	gauge("pacer_collector_merge_failing",
		"1 when the fleet-wide merge errors (collector-side state corruption; /races is returning 500), else 0.",
		int64(mergeFailing))
	fmt.Fprintf(w, "# HELP pacer_collector_distinct_races Distinct races in the merged fleet view. Absent while the merge is failing, so dashboards never read a broken merge as zero races.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_distinct_races gauge\n")
	if mergeFailing == 0 {
		fmt.Fprintf(w, "pacer_collector_distinct_races %d\n", distinct)
	}
	fmt.Fprintf(w, "# HELP pacer_collector_instance_last_seen_timestamp_seconds Unix time of each instance's last push.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_instance_last_seen_timestamp_seconds gauge\n")
	for _, row := range rows {
		fmt.Fprintf(w, "pacer_collector_instance_last_seen_timestamp_seconds{instance=%q} %d\n",
			row.Name, row.LastSeen.Unix())
	}
	fmt.Fprintf(w, "# HELP pacer_collector_reporter_dropped_total Snapshots each instance's bounded queue evicted.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_reporter_dropped_total counter\n")
	for _, row := range rows {
		fmt.Fprintf(w, "pacer_collector_reporter_dropped_total{instance=%q} %d\n", row.Name, row.Dropped)
	}

	// Arena occupancy, per arena-backed instance (as of each instance's
	// last snapshot; heap-backed instances emit no series).
	arenaMetrics := []struct {
		name, typ, help string
		get             func(*fleet.ArenaGauges) uint64
	}{
		{"pacer_arena_slabs_live", "gauge", "Metadata slabs currently held by the instance's detector.",
			func(a *fleet.ArenaGauges) uint64 { return a.SlabsLive }},
		{"pacer_arena_slabs_free", "gauge", "Metadata slabs parked on the instance's free lists.",
			func(a *fleet.ArenaGauges) uint64 { return a.SlabsFree }},
		{"pacer_arena_recycles_total", "counter", "Slab acquisitions served from a free list.",
			func(a *fleet.ArenaGauges) uint64 { return a.Recycles }},
		{"pacer_arena_misses_total", "counter", "Slab acquisitions that fell through to the heap.",
			func(a *fleet.ArenaGauges) uint64 { return a.Misses }},
		{"pacer_arena_trimmed_total", "counter", "Slabs returned to the GC by bulk reclamation.",
			func(a *fleet.ArenaGauges) uint64 { return a.Trimmed }},
	}
	for _, m := range arenaMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, row := range rows {
			if row.Arena != nil {
				fmt.Fprintf(w, "%s{instance=%q} %d\n", m.name, row.Name, m.get(row.Arena))
			}
		}
	}

	// Shadow-map resolution, per instrumented instance.
	shadowMetrics := []struct {
		name, typ, help string
		get             func(*fleet.ShadowGauges) uint64
	}{
		{"pacer_shadow_hits_total", "counter", "Lock-free shadow-map resolutions of known addresses.",
			func(s *fleet.ShadowGauges) uint64 { return s.Hits }},
		{"pacer_shadow_misses_total", "counter", "First-sight address registrations (fresh VarID allocated).",
			func(s *fleet.ShadowGauges) uint64 { return s.Misses }},
		{"pacer_shadow_evicts_total", "counter", "Explicit evictions of freed addresses.",
			func(s *fleet.ShadowGauges) uint64 { return s.Evicts }},
		{"pacer_shadow_vars", "gauge", "Addresses currently mapped to variable identifiers.",
			func(s *fleet.ShadowGauges) uint64 { return s.Vars }},
	}
	for _, m := range shadowMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, row := range rows {
			if row.Shadow != nil {
				fmt.Fprintf(w, "%s{instance=%q} %d\n", m.name, row.Name, m.get(row.Shadow))
			}
		}
	}
}
