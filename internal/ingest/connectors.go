package ingest

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Connectors wrap stages uniformly: each is itself a Stage, so a
// retried, breaker-guarded merge composes as
// Queue(Breaker(Retry(Merge))) and slots into the pipeline like any
// plain stage. The shapes follow the classic resilience connectors
// (retry-with-backoff, circuit breaker, bounded-concurrency shed);
// each keeps its own counters for /metrics.

// Retry re-runs its inner stage on transient errors with exponential
// backoff. It only makes sense around idempotent stages — the merge is
// idempotent by the protocol's construction (replayed snapshots and
// deltas are absorbed or acknowledged as stale), and snapshot writes
// replace whole files.
type Retry struct {
	next     Stage
	attempts int
	base     time.Duration

	retries atomic.Uint64
}

// NewRetry wraps next with up to attempts total tries, sleeping
// base<<try (honoring ctx) between them.
func NewRetry(next Stage, attempts int, base time.Duration) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	return &Retry{next: next, attempts: attempts, base: base}
}

func (r *Retry) Name() string { return "retry(" + r.next.Name() + ")" }

// Retries counts re-attempts (not first tries).
func (r *Retry) Retries() uint64 { return r.retries.Load() }

func (r *Retry) Process(ctx context.Context, req *Request) error {
	backoff := r.base
	var err error
	for try := 0; try < r.attempts; try++ {
		if try > 0 {
			r.retries.Add(1)
			select {
			case <-ctx.Done():
				return &StatusError{Status: http.StatusServiceUnavailable, Transient: true, Err: ctx.Err()}
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		if err = r.next.Process(ctx, req); err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// Breaker states.
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// Breaker is a circuit breaker around its inner stage: after Threshold
// consecutive server-side failures it opens and fails every request
// fast (503, counted in pacer_ingest_breaker_open_total) for Cooldown,
// then lets a single probe through; the probe's success closes the
// circuit, its failure re-opens it. Client errors (4xx — bad pushes,
// stale deltas) never trip it: the breaker protects against a sick
// state layer, not a misbehaving reporter.
type Breaker struct {
	next      Stage
	threshold int
	cooldown  time.Duration
	clock     func() time.Time

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool

	opens     atomic.Uint64 // closed/half-open -> open transitions
	fastFails atomic.Uint64 // requests rejected while open
}

// NewBreaker wraps next. threshold <= 0 means 5 consecutive failures;
// cooldown <= 0 means 10s; clock nil means time.Now (tests inject a
// fake to drive the open -> half-open transition deterministically).
func NewBreaker(next Stage, threshold int, cooldown time.Duration, clock func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	return &Breaker{next: next, threshold: threshold, cooldown: cooldown, clock: clock}
}

func (b *Breaker) Name() string { return "breaker(" + b.next.Name() + ")" }

// Opens counts transitions into the open state.
func (b *Breaker) Opens() uint64 { return b.opens.Load() }

// FastFails counts requests rejected without reaching the inner stage.
func (b *Breaker) FastFails() uint64 { return b.fastFails.Load() }

// State returns 0 (closed), 1 (half-open), or 2 (open) for /metrics.
func (b *Breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && b.clock().Sub(b.openedAt) >= b.cooldown {
		return breakerHalfOpen
	}
	return b.state
}

func (b *Breaker) Process(ctx context.Context, req *Request) error {
	b.mu.Lock()
	switch b.state {
	case breakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown {
			b.mu.Unlock()
			b.fastFails.Add(1)
			return &StatusError{Status: http.StatusServiceUnavailable, Transient: false,
				Err: errBreakerOpen}
		}
		b.state = breakerHalfOpen
		fallthrough
	case breakerHalfOpen:
		if b.probing {
			// One probe at a time; everyone else still fails fast.
			b.mu.Unlock()
			b.fastFails.Add(1)
			return &StatusError{Status: http.StatusServiceUnavailable, Transient: false,
				Err: errBreakerOpen}
		}
		b.probing = true
	}
	b.mu.Unlock()

	err := b.next.Process(ctx, req)

	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err != nil && isServerFault(err) {
		b.failures++
		if b.state == breakerHalfOpen || b.failures >= b.threshold {
			if b.state != breakerOpen {
				b.opens.Add(1)
			}
			b.state = breakerOpen
			b.openedAt = b.clock()
			b.failures = 0
		}
		return err
	}
	// Success — and client-side rejections count as the state layer
	// working correctly.
	b.failures = 0
	b.state = breakerClosed
	return err
}

var errBreakerOpen = Errf(http.StatusServiceUnavailable, "ingest: circuit breaker open").Err

// Queue is the load-shed connector: a bounded queue drained by a fixed
// worker pool. A push arriving at a full queue is shed immediately
// (503, counted) instead of piling up — reporters retry with backoff,
// so shedding under overload trades latency for bounded memory, never
// data (cumulative snapshots and resync-healed deltas both survive a
// shed). Close stops the workers and fails anything still waiting.
type Queue struct {
	next    Stage
	ch      chan queued
	stop    chan struct{}
	wg      sync.WaitGroup
	shed    atomic.Uint64
	stopped sync.Once
}

type queued struct {
	ctx  context.Context
	req  *Request
	done chan error
}

// NewQueue starts workers goroutines draining a depth-bounded queue
// into next. depth <= 0 means 256; workers <= 0 means 4.
func NewQueue(next Stage, depth, workers int) *Queue {
	if depth <= 0 {
		depth = 256
	}
	if workers <= 0 {
		workers = 4
	}
	q := &Queue{next: next, ch: make(chan queued, depth), stop: make(chan struct{})}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func (q *Queue) Name() string { return "shed(" + q.next.Name() + ")" }

// Shed counts pushes dropped at a full queue.
func (q *Queue) Shed() uint64 { return q.shed.Load() }

// Depth reports how many pushes are queued right now.
func (q *Queue) Depth() int { return len(q.ch) }

func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.stop:
			return
		case item := <-q.ch:
			item.done <- q.next.Process(item.ctx, item.req)
		}
	}
}

func (q *Queue) Process(ctx context.Context, req *Request) error {
	item := queued{ctx: ctx, req: req, done: make(chan error, 1)}
	select {
	case q.ch <- item:
	default:
		q.shed.Add(1)
		return &StatusError{Status: http.StatusServiceUnavailable, Transient: true,
			Err: errShed}
	}
	select {
	case err := <-item.done:
		return err
	case <-ctx.Done():
		// The worker may still complete the merge (harmless — it is
		// idempotent), but this caller is gone.
		return &StatusError{Status: http.StatusServiceUnavailable, Transient: true, Err: ctx.Err()}
	case <-q.stop:
		return &StatusError{Status: http.StatusServiceUnavailable, Transient: true,
			Err: errShuttingDown}
	}
}

// Close stops the worker pool. Requests still queued get errShuttingDown
// through their waiters' stop-channel select; in pacerd the HTTP server
// has already drained by the time the queue closes.
func (q *Queue) Close() {
	q.stopped.Do(func() { close(q.stop) })
	q.wg.Wait()
}

var (
	errShed         = Errf(http.StatusServiceUnavailable, "ingest: queue full, push shed").Err
	errShuttingDown = Errf(http.StatusServiceUnavailable, "ingest: shutting down").Err
)
