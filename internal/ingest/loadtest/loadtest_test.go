package loadtest

import (
	"testing"
)

// TestIngestLoadSmoke is the CI-sized run: ~50 reporters through the
// full pipeline with fault injection and a graceful mid-run restart,
// checked against the same acceptance bar as the full 1000-reporter run
// (bounded memory, zero triage loss, >= 5x delta shrink).
func TestIngestLoadSmoke(t *testing.T) {
	res, err := Run(Config{
		Reporters: 50,
		Rounds:    6,
		Restart:   true,
		StateDir:  t.TempDir(),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res); err != nil {
		t.Fatal(err)
	}
	if !res.Restarted {
		t.Fatal("the mid-run restart never triggered")
	}
	if res.Replays == 0 || res.Malformed == 0 {
		t.Fatalf("fault injection never fired: %d replays, %d malformed", res.Replays, res.Malformed)
	}
	if res.Pushes < uint64(res.Reporters) {
		t.Fatalf("only %d pushes acked for %d reporters", res.Pushes, res.Reporters)
	}
}

// TestIngestLoadNoRestart covers the plain path (no persistence, no
// restart) so the harness itself is debuggable when the restart logic
// changes.
func TestIngestLoadNoRestart(t *testing.T) {
	res, err := Run(Config{
		Reporters: 20,
		Rounds:    4,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res); err != nil {
		t.Fatal(err)
	}
	if res.Restarted {
		t.Fatal("restart fired without being configured")
	}
}
