// Package loadtest drives the ingest tier the way a large fleet does:
// thousands of simulated reporters pushing concurrently through the full
// HTTP pipeline (decode → auth → rate-limit → shed → merge), with fault
// injection — dropped responses, malformed pushes, shed retries — and a
// graceful collector restart mid-run (Close writes the final state
// snapshot; a successor service restores it, the SIGTERM drain path).
//
// It asserts the ingest tier's three load-bearing claims:
//
//   - bounded memory: the accounted state never exceeds its configured
//     cap at any sampled point, and nothing was evicted (so the
//     zero-loss claim below is meaningful, not vacuous);
//   - zero triage loss: after every reporter's final push is
//     acknowledged, the collector's merged /races view is byte-identical
//     to an in-process reference aggregator fed each reporter's final
//     cumulative triage list — across the restart;
//   - delta efficiency: steady-state delta pushes are several times
//     smaller on the wire than the cumulative pushes they replace.
//
// The reporters are simulated (hand-rolled protocol loops, not
// fleet.Reporter) so one process can run thousands without a goroutine
// and timer per instance; the protocol behavior they exercise — v1→v2
// negotiation via the ack header, BaseSeq delta chains, 409-triggered
// resyncs, retries of unacknowledged pushes — is the real one, against
// the real service.
package loadtest

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pacer"
	"pacer/internal/fleet"
	"pacer/internal/ingest"
)

// Config sizes one load-test run. The zero value is filled with defaults
// sized for the acceptance run (1000+ reporters in a few seconds).
type Config struct {
	// Reporters is the simulated fleet size. Default 1000.
	Reporters int
	// Rounds is how many push rounds each reporter runs. Default 8.
	Rounds int
	// RacesPerReporter is each reporter's initial triage-list size; later
	// rounds mutate one entry and add one more, so steady-state deltas
	// stay two entries against a cumulative list this long. Default 160.
	RacesPerReporter int
	// DropRate is the probability a push's response is lost in transit —
	// the reporter must retry and the collector must absorb the replay
	// idempotently. Default 0.05.
	DropRate float64
	// MalformedRate is the probability a reporter emits a corrupt push
	// (must be rejected with 400 and no state effect). Default 0.02.
	MalformedRate float64
	// Restart, when true (default via DefaultConfig), gracefully restarts
	// the collector — Close (final snapshot) then New (restore) — once
	// half the expected pushes have been acknowledged.
	Restart bool
	// StateDir is where the collector persists state across the restart.
	// Required when Restart is set.
	StateDir string
	// MaxStateBytes caps the collector state; 0 derives a bound that
	// holds the whole fleet with bounded slack, so the run both enforces
	// a real cap and loses nothing.
	MaxStateBytes int64
	// Workers bounds reporter concurrency. Default 64.
	Workers int
	// Seed makes the run deterministic. Default 1.
	Seed int64
}

// Result is one run's outcome.
type Result struct {
	Reporters      int
	Pushes         uint64 // acknowledged pushes (full + delta)
	FullPushes     uint64
	DeltaPushes    uint64
	Resyncs        uint64 // 409-triggered cumulative fallbacks
	Replays        uint64 // retries after a dropped response
	Malformed      uint64 // corrupt pushes sent (all must 400)
	ShedRetries    uint64 // retries after a 503 shed
	Restarted      bool
	MaxStateBytes  int64 // highest sampled accounted state size
	StateCap       int64 // the configured bound
	Evicted        uint64
	FullWireBytes  uint64 // steady-state cumulative pushes, total encoded size
	DeltaWireBytes uint64 // the deltas that replaced them, total encoded size
	DeltaShrink    float64
	RacesMatch     bool // merged /races == in-process reference, byte-identical
	Elapsed        time.Duration
}

// Render writes the run summary as a pacerbench section.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "ingest load test: %d reporters, %d pushes acked (%d full, %d delta), %d resyncs\n",
		r.Reporters, r.Pushes, r.FullPushes, r.DeltaPushes, r.Resyncs)
	fmt.Fprintf(w, "  faults injected: %d dropped responses (replayed), %d malformed pushes, %d shed retries\n",
		r.Replays, r.Malformed, r.ShedRetries)
	fmt.Fprintf(w, "  restart mid-run: %v\n", r.Restarted)
	fmt.Fprintf(w, "  state memory: peak %d bytes of %d cap, %d evicted\n",
		r.MaxStateBytes, r.StateCap, r.Evicted)
	fmt.Fprintf(w, "  delta efficiency: %d full-push bytes vs %d delta bytes = %.1fx smaller\n",
		r.FullWireBytes, r.DeltaWireBytes, r.DeltaShrink)
	fmt.Fprintf(w, "  zero triage loss: races match reference = %v\n", r.RacesMatch)
	fmt.Fprintf(w, "  elapsed: %v\n", r.Elapsed.Round(time.Millisecond))
}

// collector wraps the service so reporters keep pushing across the
// graceful mid-run restart: deliveries hold the read lock, the restart
// holds the write lock, so no push is in flight while the old service
// drains and the successor restores.
type collector struct {
	mu      sync.RWMutex
	svc     *ingest.Service
	handler http.Handler
	opts    ingest.Options
}

func (c *collector) deliver(req *http.Request) *httptest.ResponseRecorder {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rec := httptest.NewRecorder()
	c.handler.ServeHTTP(rec, req)
	return rec
}

func (c *collector) restart() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.svc.Close(); err != nil { // writes the final snapshot
		return fmt.Errorf("loadtest: closing collector: %w", err)
	}
	svc, err := ingest.New(c.opts) // restores it
	if err != nil {
		return fmt.Errorf("loadtest: restarting collector: %w", err)
	}
	c.svc = svc
	c.handler = svc.Handler()
	return nil
}

func (c *collector) state() *ingest.State {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.svc.State()
}

// reporter is one simulated instance: its cumulative triage list, its
// delta base, and the protocol state a real fleet.Reporter would keep.
type reporter struct {
	name    string
	epoch   uint64
	seq     uint64
	rng     *rand.Rand
	entries map[fleet.TriageKey]fleet.TriageEntry
	base    map[fleet.TriageKey]fleet.TriageEntry
	baseSeq uint64
	deltaOK bool
}

func (r *reporter) entryFor(idx, count int) fleet.TriageEntry {
	// Globally unique sites per (reporter, entry) keep the merged
	// ordering fully determined — no count ties on identical sites.
	site := uint32(idx)
	return fleet.TriageEntry{
		Var:           uint32(idx % 97),
		Kind:          "write-write",
		FirstSite:     site,
		SecondSite:    site + 1,
		FirstThread:   1,
		SecondThread:  2,
		Count:         count,
		Instances:     1,
		FirstInstance: r.name,
	}
}

func (r *reporter) upsert(e fleet.TriageEntry) {
	r.entries[e.Key()] = e
}

// buildPush assembles the next push: a delta when negotiated and a base
// exists, else a full cumulative snapshot.
func (r *reporter) buildPush() (*fleet.Push, error) {
	r.seq++
	if r.deltaOK && r.base != nil {
		changed := fleet.DiffTriage(r.entries, r.base)
		if len(changed) > 0 {
			blob, err := fleet.MarshalTriage(changed)
			if err != nil {
				return nil, err
			}
			p := &fleet.Push{
				Version: fleet.SchemaVersionDelta, Instance: r.name, Epoch: r.epoch,
				Seq: r.seq, BaseSeq: r.baseSeq, Races: blob,
			}
			return p, nil
		}
	}
	blob, err := fleet.MarshalTriage(r.entries)
	if err != nil {
		return nil, err
	}
	ver := fleet.SchemaVersion
	if r.deltaOK {
		ver = fleet.SchemaVersionDelta
	}
	return &fleet.Push{Version: ver, Instance: r.name, Epoch: r.epoch, Seq: r.seq, Races: blob}, nil
}

func encodePush(p *fleet.Push) ([]byte, error) {
	var buf bytes.Buffer
	if err := fleet.EncodePush(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func fill(cfg Config) Config {
	if cfg.Reporters <= 0 {
		cfg.Reporters = 1000
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 8
	}
	if cfg.RacesPerReporter <= 0 {
		cfg.RacesPerReporter = 160
	}
	if cfg.DropRate == 0 {
		cfg.DropRate = 0.05
	}
	if cfg.MalformedRate == 0 {
		cfg.MalformedRate = 0.02
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxStateBytes <= 0 {
		// Room for every reporter's full final list plus bounded slack —
		// a real cap (the run asserts it holds) that still loses nothing.
		// The 2x covers hash imbalance across shards: the budget is split
		// evenly per shard, the instances are not.
		perEntry := int64(200)
		perReporter := int64(400) + perEntry*int64(cfg.RacesPerReporter+cfg.Rounds)
		cfg.MaxStateBytes = 2 * int64(cfg.Reporters) * perReporter
	}
	return cfg
}

// shardsFor keeps shards sparse enough that the even per-shard budget
// split tolerates hash imbalance at small fleet sizes.
func shardsFor(reporters int) int {
	n := reporters / 32
	if n < 1 {
		n = 1
	}
	if n > 32 {
		n = 32
	}
	return n
}

// Run executes one load test.
func Run(cfg Config) (*Result, error) {
	cfg = fill(cfg)
	if cfg.Restart && cfg.StateDir == "" {
		return nil, fmt.Errorf("loadtest: Restart requires StateDir")
	}
	start := time.Now()

	opts := ingest.Options{
		State: ingest.StateOptions{
			Shards:   shardsFor(cfg.Reporters),
			MaxBytes: cfg.MaxStateBytes,
		},
		QueueDepth:       1024,
		MergeWorkers:     8,
		StateDir:         cfg.StateDir,
		SnapshotInterval: time.Hour, // persistence is exercised via the restart's Close
	}
	svc, err := ingest.New(opts)
	if err != nil {
		return nil, err
	}
	coll := &collector{svc: svc, handler: svc.Handler(), opts: opts}
	defer func() {
		coll.mu.Lock()
		coll.svc.Close()
		coll.mu.Unlock()
	}()

	res := &Result{Reporters: cfg.Reporters, StateCap: cfg.MaxStateBytes}
	var (
		acked          atomic.Uint64
		fullPushes     atomic.Uint64
		deltaPushes    atomic.Uint64
		resyncs        atomic.Uint64
		replays        atomic.Uint64
		malformed      atomic.Uint64
		shedRetries    atomic.Uint64
		fullWireBytes  atomic.Uint64
		deltaWireBytes atomic.Uint64
		maxStateBytes  atomic.Int64
		restarted      atomic.Bool
		restartErr     atomic.Value
	)
	restartAt := uint64(cfg.Reporters*cfg.Rounds) / 2

	sampleState := func() {
		b := coll.state().Bytes()
		for {
			cur := maxStateBytes.Load()
			if b <= cur || maxStateBytes.CompareAndSwap(cur, b) {
				return
			}
		}
	}

	// sendAcked delivers p until the collector acknowledges it, replaying
	// through dropped responses and shed retries. A 409 returns resync
	// (the caller rebuilds a cumulative push); any other failure is fatal.
	type outcome int
	const (
		ackOK outcome = iota
		ackResync
	)
	sendAcked := func(r *reporter, p *fleet.Push) (outcome, error) {
		blob, err := encodePush(p)
		if err != nil {
			return ackOK, err
		}
		for attempt := 0; ; attempt++ {
			if attempt > 10_000 {
				return ackOK, fmt.Errorf("loadtest: push %s seq %d never acknowledged", r.name, p.Seq)
			}
			req := httptest.NewRequest(http.MethodPost, fleet.PushPath, bytes.NewReader(blob))
			rec := coll.deliver(req)
			dropped := r.rng.Float64() < cfg.DropRate
			if dropped {
				// The response is lost: the reporter cannot tell success
				// from failure and must replay. The collector absorbs the
				// replay idempotently (stale ack).
				replays.Add(1)
				continue
			}
			switch rec.Code {
			case http.StatusNoContent:
				if rec.Header().Get(fleet.ProtocolHeader) != "" {
					r.deltaOK = true
				}
				acked.Add(1)
				if p.BaseSeq != 0 {
					deltaPushes.Add(1)
				} else {
					fullPushes.Add(1)
				}
				return ackOK, nil
			case http.StatusConflict:
				return ackResync, nil
			case http.StatusServiceUnavailable:
				shedRetries.Add(1)
				time.Sleep(200 * time.Microsecond)
				continue
			default:
				return ackOK, fmt.Errorf("loadtest: push %s seq %d rejected: %d %s",
					r.name, p.Seq, rec.Code, rec.Body.String())
			}
		}
	}

	// pushRound builds and lands one round's push, falling back to a
	// cumulative snapshot when the collector asks (409 after restart or
	// eviction). It also meters steady-state wire sizes: for every delta
	// actually sent, the cumulative push it replaced is encoded too.
	pushRound := func(r *reporter) error {
		p, err := r.buildPush()
		if err != nil {
			return err
		}
		if p.BaseSeq != 0 {
			deltaBlob, err := encodePush(p)
			if err != nil {
				return err
			}
			fullEquivalent, err := fleet.MarshalTriage(r.entries)
			if err != nil {
				return err
			}
			fullBlob, err := encodePush(&fleet.Push{
				Version: fleet.SchemaVersionDelta, Instance: r.name, Epoch: r.epoch,
				Seq: p.Seq, Races: fullEquivalent,
			})
			if err != nil {
				return err
			}
			deltaWireBytes.Add(uint64(len(deltaBlob)))
			fullWireBytes.Add(uint64(len(fullBlob)))
		}
		out, err := sendAcked(r, p)
		if err != nil {
			return err
		}
		if out == ackResync {
			// Rebuild cumulative — the superset of every lost delta.
			resyncs.Add(1)
			r.base, r.baseSeq = nil, 0
			full, err := r.buildPush()
			if err != nil {
				return err
			}
			if out, err = sendAcked(r, full); err != nil {
				return err
			}
			if out == ackResync {
				return fmt.Errorf("loadtest: collector rejected a cumulative push from %s with 409", r.name)
			}
			p = full
		}
		// The push (delta or cumulative) landed: it is the new base.
		if r.deltaOK {
			r.base = make(map[fleet.TriageKey]fleet.TriageEntry, len(r.entries))
			for k, v := range r.entries {
				r.base[k] = v
			}
			r.baseSeq = p.Seq
		}
		return nil
	}

	sendMalformed := func(r *reporter) error {
		malformed.Add(1)
		req := httptest.NewRequest(http.MethodPost, fleet.PushPath,
			bytes.NewReader([]byte("\x1f\x8b garbage that is not a push")))
		rec := coll.deliver(req)
		if rec.Code != http.StatusBadRequest {
			return fmt.Errorf("loadtest: malformed push answered %d, want 400", rec.Code)
		}
		return nil
	}

	reporters := make([]*reporter, cfg.Reporters)
	for i := range reporters {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		reporters[i] = &reporter{
			name:    fmt.Sprintf("load-%05d", i),
			epoch:   rng.Uint64() | 1,
			rng:     rng,
			entries: make(map[fleet.TriageKey]fleet.TriageEntry),
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Reporters)
	sem := make(chan struct{}, cfg.Workers)
	for i, r := range reporters {
		wg.Add(1)
		go func(i int, r *reporter) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			siteBase := i * 100_000
			for round := 0; round < cfg.Rounds; round++ {
				if round == 0 {
					for e := 0; e < cfg.RacesPerReporter; e++ {
						r.upsert(r.entryFor(siteBase+2*e, 1+r.rng.Intn(5)))
					}
				} else {
					// Steady state: one counter bump, one fresh race.
					bumped := r.entryFor(siteBase, 10+round)
					r.upsert(bumped)
					r.upsert(r.entryFor(siteBase+2*(cfg.RacesPerReporter+round), 1))
				}
				if r.rng.Float64() < cfg.MalformedRate {
					if err := sendMalformed(r); err != nil {
						errs <- err
						return
					}
				}
				if err := pushRound(r); err != nil {
					errs <- err
					return
				}
				if cfg.Restart && !restarted.Load() && acked.Load() >= restartAt {
					if restarted.CompareAndSwap(false, true) {
						if err := coll.restart(); err != nil {
							restartErr.Store(err)
							errs <- err
							return
						}
					}
				}
				if round%2 == 1 {
					sampleState()
				}
			}
			sampleState()
		}(i, r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	// Zero-loss verdict: the collector's merged view against a reference
	// aggregator fed each reporter's final cumulative list, in the same
	// sorted-instance order the collector merges in.
	sort.Slice(reporters, func(i, j int) bool { return reporters[i].name < reporters[j].name })
	ref := pacer.NewAggregator()
	for _, r := range reporters {
		blob, err := fleet.MarshalTriage(r.entries)
		if err != nil {
			return nil, err
		}
		if err := ref.ImportJSON(blob); err != nil {
			return nil, err
		}
	}
	refBlob, err := ref.MarshalJSON()
	if err != nil {
		return nil, err
	}
	merged, err := coll.state().Merged()
	if err != nil {
		return nil, fmt.Errorf("loadtest: merging collector state: %w", err)
	}
	gotBlob, err := merged.MarshalJSON()
	if err != nil {
		return nil, err
	}

	res.Pushes = acked.Load()
	res.FullPushes = fullPushes.Load()
	res.DeltaPushes = deltaPushes.Load()
	res.Resyncs = resyncs.Load()
	res.Replays = replays.Load()
	res.Malformed = malformed.Load()
	res.ShedRetries = shedRetries.Load()
	res.Restarted = restarted.Load()
	res.MaxStateBytes = maxStateBytes.Load()
	res.Evicted = coll.state().Evicted()
	res.FullWireBytes = fullWireBytes.Load()
	res.DeltaWireBytes = deltaWireBytes.Load()
	if res.DeltaWireBytes > 0 {
		res.DeltaShrink = float64(res.FullWireBytes) / float64(res.DeltaWireBytes)
	}
	res.RacesMatch = bytes.Equal(gotBlob, refBlob)
	res.Elapsed = time.Since(start)
	return res, nil
}

// Check validates res against the acceptance bar, returning a joined
// error describing every violated claim.
func Check(res *Result) error {
	var problems []string
	if !res.RacesMatch {
		problems = append(problems, "merged /races diverged from the in-process reference (triage loss)")
	}
	if res.MaxStateBytes > res.StateCap {
		problems = append(problems, fmt.Sprintf("state peaked at %d bytes, over the %d cap",
			res.MaxStateBytes, res.StateCap))
	}
	if res.Evicted != 0 {
		problems = append(problems, fmt.Sprintf("%d instances evicted (cap sized wrong for the run)", res.Evicted))
	}
	if res.DeltaPushes == 0 {
		problems = append(problems, "no delta pushes: v2 negotiation never engaged")
	}
	if res.DeltaShrink < 5 {
		problems = append(problems, fmt.Sprintf("steady-state deltas only %.1fx smaller than full pushes, want >= 5x",
			res.DeltaShrink))
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("loadtest: %s", joinWith(problems, "; "))
}

func joinWith(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
