package ingest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pacer/internal/fleet"
)

// apply is a test shorthand: build the push and run it through Apply.
func apply(s *State, instance string, epoch, seq, baseSeq uint64, rows ...fleet.TriageEntry) ApplyResult {
	p, entries := pushFor(instance, epoch, seq, baseSeq, rows...)
	return s.Apply(p, entries)
}

func racesJSON(t *testing.T, s *State) string {
	t.Helper()
	agg, err := s.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	blob, err := agg.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	return string(blob)
}

func TestIngestStateDeltaApply(t *testing.T) {
	s := NewState(StateOptions{})

	// A delta with no prior state has no base to stand on.
	if got := apply(s, "a", 7, 2, 1, entryFor(1, 10, 3, "a")); got != ApplyResync {
		t.Fatalf("delta onto empty state = %v, want resync", got)
	}

	// Full snapshot, then a delta on exactly that base.
	if got := apply(s, "a", 7, 1, 0, entryFor(1, 10, 3, "a")); got != ApplyMerged {
		t.Fatalf("full snapshot = %v, want merged", got)
	}
	if got := apply(s, "a", 7, 2, 1, entryFor(1, 10, 5, "a"), entryFor(2, 20, 1, "a")); got != ApplyMerged {
		t.Fatalf("delta on held base = %v, want merged", got)
	}

	// The delta upserted: var 1's count rose to 5, var 2 appeared.
	want := NewState(StateOptions{})
	apply(want, "a", 7, 2, 0, entryFor(1, 10, 5, "a"), entryFor(2, 20, 1, "a"))
	if got, exp := racesJSON(t, s), racesJSON(t, want); got != exp {
		t.Fatalf("delta-merged view diverged:\n got %s\nwant %s", got, exp)
	}

	// A retried (already-absorbed) delta is stale, not an error.
	if got := apply(s, "a", 7, 2, 1, entryFor(1, 10, 5, "a")); got != ApplyStale {
		t.Fatalf("replayed delta = %v, want stale", got)
	}
	// A delta skipping a base we do not hold forces a resync.
	if got := apply(s, "a", 7, 9, 5, entryFor(1, 10, 9, "a")); got != ApplyResync {
		t.Fatalf("delta on unknown base = %v, want resync", got)
	}
	// A delta from a restarted process (new epoch) forces a resync.
	if got := apply(s, "a", 8, 2, 1, entryFor(1, 10, 9, "a")); got != ApplyResync {
		t.Fatalf("delta across epochs = %v, want resync", got)
	}
	// A full snapshot from the new epoch replaces the state outright.
	if got := apply(s, "a", 8, 1, 0, entryFor(3, 30, 2, "a")); got != ApplyMerged {
		t.Fatalf("new-epoch full snapshot = %v, want merged", got)
	}
	want2 := NewState(StateOptions{})
	apply(want2, "a", 8, 1, 0, entryFor(3, 30, 2, "a"))
	if got, exp := racesJSON(t, s), racesJSON(t, want2); got != exp {
		t.Fatalf("epoch restart kept old state:\n got %s\nwant %s", got, exp)
	}
}

// TestIngestStateEvictsWholeEntry is the regression for the churn bug:
// eviction must drop the instance's seq/epoch tracking in the same pass
// as its triage state — verified by a post-eviction delta answering
// resync (no remembered base), not stale (remembered seq).
func TestIngestStateEvictsWholeEntry(t *testing.T) {
	s := NewState(StateOptions{Shards: 1, MaxBytes: 2500})
	apply(s, "old", 1, 5, 0, entryFor(1, 10, 3, "old"))
	// Enough fresh instances to push "old" out of the shard budget.
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("new-%d", i)
		if got := apply(s, name, 1, 1, 0, entryFor(uint32(i+100), uint32(1000+10*i), 1, name)); got != ApplyMerged {
			t.Fatalf("push %d = %v, want merged", i, got)
		}
	}
	if s.Evicted() == 0 {
		t.Fatalf("budget %d never evicted (bytes %d)", 2500, s.Bytes())
	}
	// "old" was least-recently-seen, so its whole entry — including the
	// seq tracking a delta would match against — must be gone.
	if got := apply(s, "old", 1, 6, 5, entryFor(1, 10, 4, "old")); got != ApplyResync {
		t.Fatalf("delta after eviction = %v, want resync (seq tracking must die with the entry)", got)
	}
	// And a stale-looking full push from the evicted instance merges
	// fresh rather than being dropped against remembered seq 5.
	if got := apply(s, "old", 1, 3, 0, entryFor(1, 10, 2, "old")); got != ApplyMerged {
		t.Fatalf("full push after eviction = %v, want merged", got)
	}
}

// TestIngestStateChurnBounded: a fleet whose pods get fresh instance
// names forever cannot grow the state past its configured bound.
func TestIngestStateChurnBounded(t *testing.T) {
	const maxBytes = 64 << 10
	s := NewState(StateOptions{Shards: 4, MaxBytes: maxBytes})
	for i := 0; i < 5000; i++ {
		name := fmt.Sprintf("pod-%d", i)
		apply(s, name, uint64(i+1), 1, 0,
			entryFor(uint32(i), uint32(2*i), 1, name),
			entryFor(uint32(i+1), uint32(2*i+64), 2, name))
	}
	if got := s.Bytes(); got > maxBytes {
		t.Fatalf("state grew to %d accounted bytes, bound is %d", got, maxBytes)
	}
	if s.Evicted() == 0 {
		t.Fatal("churn never evicted")
	}
	if got := s.Instances(); got == 0 || got > 5000 {
		t.Fatalf("implausible instance count %d", got)
	}
}

func TestIngestStateTTLExpiry(t *testing.T) {
	clock := newFakeClock()
	s := NewState(StateOptions{InstanceTTL: time.Minute, Clock: clock.Now})
	apply(s, "short", 1, 1, 0, entryFor(1, 10, 1, "short"))
	clock.Advance(45 * time.Second)
	apply(s, "fresh", 1, 1, 0, entryFor(2, 20, 1, "fresh"))
	clock.Advance(30 * time.Second) // "short" is now 75s old, "fresh" 30s

	// Reads sweep fully: only "fresh" survives.
	agg, err := s.Merged()
	if err != nil {
		t.Fatal(err)
	}
	races := agg.Races()
	if len(races) != 1 || races[0].Example.Var != 2 {
		t.Fatalf("after TTL sweep races = %+v, want just var 2", races)
	}
	if s.Expired() != 1 {
		t.Fatalf("Expired() = %d, want 1", s.Expired())
	}
	// Expiry removed the whole entry: a stale-seq full push from the
	// expired instance merges as new state.
	if got := apply(s, "short", 1, 1, 0, entryFor(1, 10, 1, "short")); got != ApplyMerged {
		t.Fatalf("post-expiry push = %v, want merged", got)
	}
}

// TestIngestStateStress exercises the sharded state's locking under
// -race: concurrent pushes (full + delta + stale replays), TTL expiry
// driven by a fake clock advancing concurrently, snapshot captures, and
// merged reads, all at once.
func TestIngestStateStress(t *testing.T) {
	clock := newFakeClock()
	s := NewState(StateOptions{
		Shards:      8,
		MaxBytes:    256 << 10,
		InstanceTTL: 500 * time.Millisecond,
		Clock:       clock.Now,
	})
	const (
		pushers   = 8
		perPusher = 200
	)
	var pushWG, loopWG sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < pushers; g++ {
		pushWG.Add(1)
		go func(g int) {
			defer pushWG.Done()
			inst := fmt.Sprintf("stress-%d", g)
			for i := 1; i <= perPusher; i++ {
				seq := uint64(i)
				if i > 1 && i%3 == 0 {
					// Delta on the previous seq; under concurrent TTL
					// expiry any outcome (merged/stale/resync) is legal,
					// the race detector is the assertion here.
					apply(s, inst, 1, seq, seq-1, entryFor(uint32(i), uint32(g*1000+i), i, inst))
				} else {
					apply(s, inst, 1, seq, 0, entryFor(uint32(i), uint32(g*1000+i), i, inst))
				}
				if i%7 == 0 {
					apply(s, inst, 1, seq, 0, entryFor(uint32(i), uint32(g*1000+i), i, inst)) // replay
				}
			}
		}(g)
	}
	// Clock mover: drives TTL expiry while pushes land.
	loopWG.Add(1)
	go func() {
		defer loopWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(40 * time.Millisecond)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	// Snapshot + merged-read loops.
	for r := 0; r < 2; r++ {
		loopWG.Add(1)
		go func() {
			defer loopWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					snap := s.Snapshot()
					if snap.Version != SnapshotVersion {
						panic("bad snapshot version")
					}
					if _, err := s.Merged(); err != nil {
						panic(err)
					}
					s.Bytes()
					s.Rows()
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	pushWG.Wait()
	close(stop)
	loopWG.Wait()

	// Sanity after the storm: the state still serves a coherent view.
	if _, err := s.Merged(); err != nil {
		t.Fatalf("post-stress merge: %v", err)
	}
	if got := s.Bytes(); got > 256<<10 {
		t.Fatalf("state over its bound after stress: %d bytes", got)
	}
}
