package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pacer/internal/fleet"
)

// fakeClock is a concurrency-safe manual clock for breaker, limiter,
// and TTL tests.
type fakeClock struct{ ns atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ns.Store(1_700_000_000_000_000_000)
	return c
}

func (c *fakeClock) Now() time.Time            { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration)   { c.ns.Add(int64(d)) }

// entryFor builds one valid triage row.
func entryFor(v, site uint32, count int, instance string) fleet.TriageEntry {
	return fleet.TriageEntry{
		Var: v, Kind: "write-write",
		FirstSite: site, SecondSite: site + 1,
		FirstThread: 1, SecondThread: 2,
		Count: count, Instances: 1, FirstInstance: instance,
	}
}

// pushFor assembles a decoded Push plus its materialized entries, as the
// Decode stage would produce them.
func pushFor(instance string, epoch, seq, baseSeq uint64, rows ...fleet.TriageEntry) (*fleet.Push, map[fleet.TriageKey]fleet.TriageEntry) {
	blob, err := json.Marshal(rows)
	if err != nil {
		panic(err)
	}
	ver := fleet.SchemaVersion
	if baseSeq != 0 {
		ver = fleet.SchemaVersionDelta
	}
	p := &fleet.Push{Version: ver, Instance: instance, Epoch: epoch, Seq: seq, BaseSeq: baseSeq, Races: blob}
	entries, err := fleet.ParseTriage(blob)
	if err != nil {
		panic(err)
	}
	return p, entries
}

// flakyStage fails its first failN calls, transiently or not.
type flakyStage struct {
	mu        sync.Mutex
	failLeft  int
	transient bool
	calls     int
}

func (f *flakyStage) Name() string { return "flaky" }

func (f *flakyStage) Process(context.Context, *Request) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.failLeft > 0 {
		f.failLeft--
		return &StatusError{Status: http.StatusInternalServerError, Transient: f.transient,
			Err: errors.New("injected stage failure")}
	}
	return nil
}

func TestIngestRetryRecoversTransientFailures(t *testing.T) {
	inner := &flakyStage{failLeft: 2, transient: true}
	r := NewRetry(inner, 3, time.Millisecond)
	if err := r.Process(context.Background(), &Request{}); err != nil {
		t.Fatalf("retry should have absorbed 2 transient failures: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner stage ran %d times, want 3", inner.calls)
	}
	if r.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", r.Retries())
	}
}

func TestIngestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	inner := &flakyStage{failLeft: 1, transient: false}
	r := NewRetry(inner, 3, time.Millisecond)
	if err := r.Process(context.Background(), &Request{}); err == nil {
		t.Fatal("permanent error should surface")
	}
	if inner.calls != 1 {
		t.Fatalf("permanent error retried: inner ran %d times", inner.calls)
	}
}

// TestIngestBreakerOpensAndCloses is the acceptance test for the
// circuit breaker: consecutive merge failures open it, open means
// fast-fail without touching the inner stage, the cooldown admits a
// single probe, and the probe's success closes it again.
func TestIngestBreakerOpensAndCloses(t *testing.T) {
	clock := newFakeClock()
	inner := &flakyStage{failLeft: 3, transient: false}
	b := NewBreaker(inner, 3, 10*time.Second, clock.Now)
	ctx := context.Background()

	// Three consecutive failures: all reach the inner stage, the third
	// opens the circuit.
	for i := 0; i < 3; i++ {
		if err := b.Process(ctx, &Request{}); err == nil {
			t.Fatalf("failure %d should surface", i)
		}
	}
	if got := b.State(); got != breakerOpen {
		t.Fatalf("after %d failures breaker state = %d, want open", 3, got)
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens() = %d, want 1", b.Opens())
	}

	// While open: fast-fail with 503, inner never called.
	callsBefore := inner.calls
	for i := 0; i < 5; i++ {
		err := b.Process(ctx, &Request{})
		if StatusOf(err) != http.StatusServiceUnavailable {
			t.Fatalf("open breaker answered %d, want 503", StatusOf(err))
		}
	}
	if inner.calls != callsBefore {
		t.Fatalf("open breaker still called the inner stage (%d -> %d)", callsBefore, inner.calls)
	}
	if b.FastFails() != 5 {
		t.Fatalf("FastFails() = %d, want 5", b.FastFails())
	}

	// After the cooldown the next request probes the inner stage (now
	// healthy) and the circuit closes.
	clock.Advance(11 * time.Second)
	if got := b.State(); got != breakerHalfOpen {
		t.Fatalf("post-cooldown state = %d, want half-open", got)
	}
	if err := b.Process(ctx, &Request{}); err != nil {
		t.Fatalf("probe should succeed: %v", err)
	}
	if got := b.State(); got != breakerClosed {
		t.Fatalf("after successful probe state = %d, want closed", got)
	}
	if err := b.Process(ctx, &Request{}); err != nil {
		t.Fatalf("closed breaker should pass requests: %v", err)
	}
}

// TestIngestBreakerReopensOnFailedProbe pins the half-open -> open
// transition: a failing probe re-opens immediately, without needing
// Threshold fresh failures.
func TestIngestBreakerReopensOnFailedProbe(t *testing.T) {
	clock := newFakeClock()
	inner := &flakyStage{failLeft: 4, transient: false}
	b := NewBreaker(inner, 3, 10*time.Second, clock.Now)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		b.Process(ctx, &Request{})
	}
	clock.Advance(11 * time.Second)
	if err := b.Process(ctx, &Request{}); err == nil {
		t.Fatal("probe should have failed")
	}
	if got := b.State(); got != breakerOpen {
		t.Fatalf("after failed probe state = %d, want open", got)
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens() = %d, want 2", b.Opens())
	}
}

// TestIngestBreakerIgnoresClientErrors: 4xx outcomes (bad pushes, stale
// deltas) are the state layer working, not failing — they must never
// trip the breaker.
func TestIngestBreakerIgnoresClientErrors(t *testing.T) {
	bad := StageFunc{StageName: "reject", Fn: func(context.Context, *Request) error {
		return Errf(http.StatusBadRequest, "client error")
	}}
	b := NewBreaker(bad, 2, time.Second, nil)
	for i := 0; i < 10; i++ {
		b.Process(context.Background(), &Request{})
	}
	if got := b.State(); got != breakerClosed {
		t.Fatalf("client errors tripped the breaker (state %d)", got)
	}
}

// TestIngestQueueSheds drives the load-shed connector to its bound:
// with every worker blocked and the queue full, the next push is shed
// immediately (503, counted); unblocking drains everything.
func TestIngestQueueSheds(t *testing.T) {
	gate := make(chan struct{})
	var entered, processed atomic.Int64
	slow := StageFunc{StageName: "gated", Fn: func(ctx context.Context, _ *Request) error {
		entered.Add(1)
		<-gate
		processed.Add(1)
		return nil
	}}
	const depth, workers = 4, 2
	q := NewQueue(slow, depth, workers)
	defer q.Close()

	ctx := context.Background()
	results := make(chan error, depth+workers)
	deadline := time.Now().Add(5 * time.Second)
	// First occupy every worker, then fill the queue behind them — staged,
	// so none of these six can race each other into a shed.
	for i := 0; i < workers; i++ {
		go func() { results <- q.Process(ctx, &Request{}) }()
	}
	for entered.Load() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("workers never picked up: %d entered", entered.Load())
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < depth; i++ {
		go func() { results <- q.Process(ctx, &Request{}) }()
	}
	for q.Depth() < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", q.Depth())
		}
		time.Sleep(time.Millisecond)
	}

	err := q.Process(ctx, &Request{})
	if StatusOf(err) != http.StatusServiceUnavailable {
		t.Fatalf("full queue answered %v, want 503 shed", err)
	}
	if q.Shed() != 1 {
		t.Fatalf("Shed() = %d, want 1", q.Shed())
	}

	close(gate)
	for i := 0; i < depth+workers; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued push failed after unblock: %v", err)
		}
	}
	if got := processed.Load(); got != depth+workers {
		t.Fatalf("processed %d pushes, want %d", got, depth+workers)
	}
}

// TestIngestRateLimitPerInstance: one instance exhausting its burst is
// limited without touching another instance's budget, and the bucket
// refills with time.
func TestIngestRateLimitPerInstance(t *testing.T) {
	clock := newFakeClock()
	l := &RateLimit{Rate: 1, Burst: 3, Clock: clock.Now}
	ctx := context.Background()
	push := func(instance string) error {
		p, entries := pushFor(instance, 1, 1, 0, entryFor(1, 10, 1, instance))
		return l.Process(ctx, &Request{Push: p, Entries: entries})
	}
	for i := 0; i < 3; i++ {
		if err := push("hot"); err != nil {
			t.Fatalf("push %d within burst limited: %v", i, err)
		}
	}
	if err := push("hot"); StatusOf(err) != http.StatusTooManyRequests {
		t.Fatalf("burst exceeded but got %v, want 429", err)
	}
	if l.Limited() != 1 {
		t.Fatalf("Limited() = %d, want 1", l.Limited())
	}
	if err := push("cool"); err != nil {
		t.Fatalf("other instance was limited by hot's bucket: %v", err)
	}
	clock.Advance(2 * time.Second) // refills 2 tokens at rate 1/s
	if err := push("hot"); err != nil {
		t.Fatalf("bucket did not refill: %v", err)
	}
}

// TestIngestRateLimitBucketBound: the limiter map cannot outgrow its
// bound under instance churn; refilled buckets are pruned first.
func TestIngestRateLimitBucketBound(t *testing.T) {
	clock := newFakeClock()
	l := &RateLimit{Rate: 100, Burst: 5, MaxBuckets: 64, Clock: clock.Now}
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		name := "churn-" + string(rune('a'+i%26)) + "-" + itoa(i)
		p, entries := pushFor(name, 1, 1, 0, entryFor(1, 10, 1, name))
		if err := l.Process(ctx, &Request{Push: p, Entries: entries}); err != nil {
			t.Fatalf("churning push %d limited: %v", i, err)
		}
		clock.Advance(100 * time.Millisecond)
	}
	if got := l.Buckets(); got > 64 {
		t.Fatalf("bucket map grew to %d entries, bound is 64", got)
	}
	if l.Pruned() == 0 {
		t.Fatal("churn never pruned a bucket")
	}
}

func itoa(n int) string {
	return string(rune('0'+n/100%10)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
}

// TestIngestDecodeRejects pins the decode stage's validation: garbage,
// unknown versions, deltas misframed as v1, and bases at or past the
// push's own seq are all 400s, and counted.
func TestIngestDecodeRejects(t *testing.T) {
	d := &Decode{MaxDecompressed: 1 << 20}
	ctx := context.Background()

	run := func(p *fleet.Push) error {
		var buf bytes.Buffer
		if err := fleet.EncodePush(&buf, p); err != nil {
			t.Fatal(err)
		}
		return d.Process(ctx, &Request{Body: &buf})
	}
	ok, _ := pushFor("i", 1, 1, 0, entryFor(1, 10, 1, "i"))
	if err := run(ok); err != nil {
		t.Fatalf("valid push rejected: %v", err)
	}
	if d.Decoded() != 1 {
		t.Fatalf("Decoded() = %d, want 1", d.Decoded())
	}

	cases := []*fleet.Push{
		{Version: 3, Instance: "i", Seq: 1, Races: ok.Races},                             // unknown version
		{Version: 1, Instance: "i", Seq: 2, BaseSeq: 1, Races: ok.Races},                 // delta framed as v1
		{Version: 2, Instance: "i", Seq: 2, BaseSeq: 2, Races: ok.Races},                 // base not before seq
		{Version: 1, Instance: "", Seq: 1, Races: ok.Races},                              // no instance
		{Version: 1, Instance: "i", Seq: 1, Races: json.RawMessage(`[{"kind":"nope"}]`)}, // bad payload
	}
	for i, p := range cases {
		if err := run(p); StatusOf(err) != http.StatusBadRequest {
			t.Errorf("case %d: got %v, want 400", i, err)
		}
	}
	if err := d.Process(ctx, &Request{Body: bytes.NewReader([]byte("not gzip"))}); StatusOf(err) != http.StatusBadRequest {
		t.Error("raw garbage should 400")
	}
	if d.Rejected() != uint64(len(cases)+1) {
		t.Fatalf("Rejected() = %d, want %d", d.Rejected(), len(cases)+1)
	}
}

// TestIngestPipelineOrder: a pipeline stops at the first failing stage.
func TestIngestPipelineOrder(t *testing.T) {
	var ran []string
	mk := func(name string, fail bool) Stage {
		return StageFunc{StageName: name, Fn: func(context.Context, *Request) error {
			ran = append(ran, name)
			if fail {
				return Errf(http.StatusBadRequest, "%s failed", name)
			}
			return nil
		}}
	}
	p := NewPipeline(mk("a", false), mk("b", true), mk("c", false))
	if err := p.Process(context.Background(), &Request{}); err == nil {
		t.Fatal("pipeline should surface stage b's failure")
	}
	if len(ran) != 2 || ran[0] != "a" || ran[1] != "b" {
		t.Fatalf("stages ran %v, want [a b]", ran)
	}
}
