package ingest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"pacer/internal/fleet"
)

// SnapshotVersion is the persisted-state format version. Restore
// refuses versions it does not understand, so a downgraded pacerd fails
// loudly instead of silently dropping triage history.
const SnapshotVersion = 1

// SnapshotFileName is the state file pacerd persists under -state-dir.
const SnapshotFileName = "pacerd-state.json"

// SnapshotFile is the versioned on-disk format: the full per-instance
// state — triage lists and the seq/epoch tracking the delta protocol
// depends on — so a restarted collector resumes exactly where it
// stopped, including accepting delta pushes whose base it snapshotted.
type SnapshotFile struct {
	Version       int                `json:"version"`
	SavedUnixNano int64              `json:"saved_unix_nano"`
	Instances     []InstanceSnapshot `json:"instances"`
}

// InstanceSnapshot is one instance's persisted state.
type InstanceSnapshot struct {
	Instance         string              `json:"instance"`
	Epoch            uint64              `json:"epoch,omitempty"`
	Seq              uint64              `json:"seq"`
	Dropped          uint64              `json:"dropped,omitempty"`
	LastSeenUnixNano int64               `json:"last_seen_unix_nano"`
	Races            []fleet.TriageEntry `json:"races"`
	Arena            *fleet.ArenaGauges  `json:"arena,omitempty"`
	Shadow           *fleet.ShadowGauges `json:"shadow,omitempty"`
}

// Snapshot captures the full state, deterministically ordered (sorted
// instances, ascending-key triage rows), so identical states persist to
// identical bytes.
func (s *State) Snapshot() *SnapshotFile {
	now := s.opts.Clock()
	snap := &SnapshotFile{Version: SnapshotVersion, SavedUnixNano: now.UnixNano()}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		s.sweepShardLocked(sh, now, true)
		for name, ent := range sh.instances {
			snap.Instances = append(snap.Instances, InstanceSnapshot{
				Instance:         name,
				Epoch:            ent.epoch,
				Seq:              ent.seq,
				Dropped:          ent.dropped,
				LastSeenUnixNano: ent.lastSeen.UnixNano(),
				Races:            fleet.SortedTriage(ent.entries),
				Arena:            ent.arena,
				Shadow:           ent.shadow,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.Instances, func(i, j int) bool {
		return snap.Instances[i].Instance < snap.Instances[j].Instance
	})
	return snap
}

// Restore replaces the state with snap's contents. It is meant for
// boot, before the pipeline starts accepting pushes.
func (s *State) Restore(snap *SnapshotFile) error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("ingest: state snapshot version %d (this build reads %d)",
			snap.Version, SnapshotVersion)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.instances = make(map[string]*instEntry)
		sh.bytes = 0
		sh.mu.Unlock()
	}
	for _, in := range snap.Instances {
		if in.Instance == "" {
			return fmt.Errorf("ingest: state snapshot entry names no instance")
		}
		entries := make(map[fleet.TriageKey]fleet.TriageEntry, len(in.Races))
		for _, e := range in.Races {
			entries[e.Key()] = e
		}
		ent := &instEntry{
			epoch:    in.Epoch,
			seq:      in.Seq,
			dropped:  in.Dropped,
			lastSeen: time.Unix(0, in.LastSeenUnixNano),
			entries:  entries,
			cost:     instCost(in.Instance, entries),
			arena:    in.Arena,
			shadow:   in.Shadow,
		}
		sh := s.shardOf(in.Instance)
		sh.mu.Lock()
		sh.instances[in.Instance] = ent
		sh.bytes += ent.cost
		sh.mu.Unlock()
	}
	return nil
}

// WriteSnapshotFile persists snap under dir atomically: the bytes land
// in a temp file first and rename makes them visible in one step, so a
// crash mid-write can never leave a torn state file — the previous
// snapshot survives intact.
func WriteSnapshotFile(dir string, snap *SnapshotFile) error {
	blob, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("ingest: encoding state snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, SnapshotFileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("ingest: creating state temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: writing state snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: syncing state snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ingest: closing state snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, SnapshotFileName)); err != nil {
		return fmt.Errorf("ingest: publishing state snapshot: %w", err)
	}
	return nil
}

// ReadSnapshotFile loads the state file under dir. A missing file is
// not an error — it returns (nil, nil), the empty first boot.
func ReadSnapshotFile(dir string) (*SnapshotFile, error) {
	blob, err := os.ReadFile(filepath.Join(dir, SnapshotFileName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: reading state snapshot: %w", err)
	}
	var snap SnapshotFile
	if err := json.Unmarshal(blob, &snap); err != nil {
		return nil, fmt.Errorf("ingest: parsing state snapshot: %w", err)
	}
	return &snap, nil
}
