package ingest

import (
	"context"
	"crypto/subtle"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pacer/internal/fleet"
)

// Decode is the first stage: inflate and parse the push envelope
// (schema versions 1 and 2), then materialize and validate the triage
// payload, so every later stage works with typed, bounds-checked data
// and a malformed push is rejected before it can touch shared state.
type Decode struct {
	// MaxDecompressed bounds one push after gzip inflation (the
	// compressed body is bounded by the transport's MaxBytesReader).
	MaxDecompressed int64

	decoded  atomic.Uint64
	rejected atomic.Uint64
}

func (d *Decode) Name() string { return "decode" }

// Decoded counts pushes that parsed and validated.
func (d *Decode) Decoded() uint64 { return d.decoded.Load() }

// Rejected counts pushes dropped as malformed (gzip, schema, payload).
func (d *Decode) Rejected() uint64 { return d.rejected.Load() }

func (d *Decode) Process(_ context.Context, req *Request) error {
	p, err := fleet.DecodePushVersion(req.Body, d.MaxDecompressed, fleet.SchemaVersionDelta)
	if err == nil {
		req.Entries, err = fleet.ParseTriage(p.Races)
	}
	if err != nil {
		d.rejected.Add(1)
		return &StatusError{Status: http.StatusBadRequest, Err: err}
	}
	req.Push = p
	d.decoded.Add(1)
	return nil
}

// Auth checks the bearer token. With no token configured it is a
// pass-through, so the pipeline shape is identical in open and
// authenticated deployments.
type Auth struct {
	Token string

	unauthorized atomic.Uint64
}

func (a *Auth) Name() string { return "authenticate" }

// Unauthorized counts pushes rejected for a missing or wrong token.
func (a *Auth) Unauthorized() uint64 { return a.unauthorized.Load() }

func (a *Auth) Process(_ context.Context, req *Request) error {
	if a.Token == "" {
		return nil
	}
	const prefix = "Bearer "
	h := req.Header.Get("Authorization")
	if strings.HasPrefix(h, prefix) &&
		subtle.ConstantTimeCompare([]byte(h[len(prefix):]), []byte(a.Token)) == 1 {
		return nil
	}
	a.unauthorized.Add(1)
	return &StatusError{Status: http.StatusUnauthorized, Err: errBadToken}
}

var errBadToken = Errf(http.StatusUnauthorized, "ingest: push requires a valid bearer token").Err

// RateLimit is a per-instance token bucket: each instance may push at
// Rate per second with bursts up to Burst, so one misconfigured
// reporter stuck in a tight push loop cannot starve the rest of the
// fleet. The bucket map is bounded: when it outgrows MaxBuckets, fully
// refilled buckets are pruned first — a bucket idle long enough to
// refill completely behaves exactly like a fresh one, so dropping it is
// semantically free — and only then arbitrary entries, so a churning
// fleet cannot grow the limiter without bound either.
type RateLimit struct {
	Rate       float64 // tokens (pushes) per second; <= 0 disables the stage
	Burst      float64 // bucket capacity; < 1 means max(2*Rate, 1)
	MaxBuckets int     // bucket-map bound; <= 0 means 65536
	Clock      func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket

	limited atomic.Uint64
	pruned  atomic.Uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

func (l *RateLimit) Name() string { return "rate-limit" }

// Limited counts pushes rejected with 429.
func (l *RateLimit) Limited() uint64 { return l.limited.Load() }

// Pruned counts bucket-map entries evicted to hold the map bound.
func (l *RateLimit) Pruned() uint64 { return l.pruned.Load() }

// Buckets reports the live bucket count (metrics, tests).
func (l *RateLimit) Buckets() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

func (l *RateLimit) Process(_ context.Context, req *Request) error {
	if l.Rate <= 0 {
		return nil
	}
	burst := l.Burst
	if burst < 1 {
		burst = l.Rate * 2
		if burst < 1 {
			burst = 1
		}
	}
	maxBuckets := l.MaxBuckets
	if maxBuckets <= 0 {
		maxBuckets = 65536
	}
	clock := l.Clock
	if clock == nil {
		clock = time.Now
	}
	now := clock()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buckets == nil {
		l.buckets = make(map[string]*bucket)
	}
	b := l.buckets[req.Push.Instance]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked(now, burst, maxBuckets)
		}
		b = &bucket{tokens: burst, last: now}
		l.buckets[req.Push.Instance] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.Rate
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens < 1 {
		l.limited.Add(1)
		return &StatusError{Status: http.StatusTooManyRequests, Err: errRateLimited}
	}
	b.tokens--
	return nil
}

// pruneLocked holds the bucket map at its bound: first every fully
// refilled (= indistinguishable from absent) bucket goes, then — only
// if the map is still full — arbitrary entries make room for the one
// being inserted.
func (l *RateLimit) pruneLocked(now time.Time, burst float64, maxBuckets int) {
	for name, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.Rate >= burst {
			delete(l.buckets, name)
			l.pruned.Add(1)
		}
	}
	for name := range l.buckets {
		if len(l.buckets) < maxBuckets {
			break
		}
		delete(l.buckets, name)
		l.pruned.Add(1)
	}
}

var errRateLimited = Errf(http.StatusTooManyRequests, "ingest: instance push rate exceeded").Err

// Merge is the terminal stage: apply the decoded push to the sharded
// state. Its outcomes mirror the protocol — applied (counted), stale
// (acknowledged without effect), or resync (409: the delta's base is
// not the state we hold).
type Merge struct {
	State *State

	merged  atomic.Uint64
	stale   atomic.Uint64
	resyncs atomic.Uint64
}

func (m *Merge) Name() string { return "merge" }

// Merged counts pushes applied to the state.
func (m *Merge) Merged() uint64 { return m.merged.Load() }

// Stale counts pushes acknowledged without effect.
func (m *Merge) Stale() uint64 { return m.stale.Load() }

// Resyncs counts delta pushes rejected for a missing base.
func (m *Merge) Resyncs() uint64 { return m.resyncs.Load() }

func (m *Merge) Process(_ context.Context, req *Request) error {
	switch m.State.Apply(req.Push, req.Entries) {
	case ApplyMerged:
		m.merged.Add(1)
		return nil
	case ApplyStale:
		m.stale.Add(1)
		req.Stale = true
		return nil
	default: // ApplyResync
		m.resyncs.Add(1)
		return &StatusError{Status: http.StatusConflict, Err: errNeedResync}
	}
}

var errNeedResync = Errf(http.StatusConflict,
	"ingest: delta base unknown here; push a full cumulative snapshot").Err
