package ingest

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pacer"
	"pacer/internal/fleet"
)

// StateOptions configure the sharded collector state.
type StateOptions struct {
	// Shards is the shard count, rounded up to a power of two. Default
	// 16. Pushes to instances on different shards never contend on one
	// mutex.
	Shards int
	// MaxBytes bounds the state's total (approximate, accounted) memory,
	// split evenly across shards. A shard over its budget evicts its
	// least-recently-seen instances — triage state and seq/epoch
	// tracking together, so a churning fleet (fresh instance names per
	// pod) cannot grow any map unboundedly — and counts the evictions.
	// <= 0 means 256 MiB.
	MaxBytes int64
	// InstanceTTL, when positive, expires instances whose last push is
	// older than this. Expiry is lazy: reads sweep fully; pushes sweep a
	// shard at most every TTL/4 so the hot path stays O(1) amortized.
	InstanceTTL time.Duration
	// Clock supplies timestamps; tests inject a fake. Default time.Now.
	Clock func() time.Time
}

// ApplyResult is the outcome of applying one push to the state.
type ApplyResult int

const (
	// ApplyMerged: the push updated the instance's state.
	ApplyMerged ApplyResult = iota
	// ApplyStale: the push was a duplicate or superseded; acknowledged
	// without effect so the reporter stops re-sending.
	ApplyStale
	// ApplyResync: a delta whose base this state does not hold; the
	// reporter must fall back to a full cumulative snapshot.
	ApplyResync
)

// instEntry is everything the collector remembers about one instance.
// Eviction and TTL expiry always remove the whole entry — the triage
// state and the seq/epoch tracking live and die together, so no
// tracking map can outgrow the triage state it serves.
type instEntry struct {
	epoch    uint64
	seq      uint64
	dropped  uint64
	lastSeen time.Time
	entries  map[fleet.TriageKey]fleet.TriageEntry
	cost     int64
	arena    *fleet.ArenaGauges
	shadow   *fleet.ShadowGauges
}

type stateShard struct {
	mu        sync.Mutex
	instances map[string]*instEntry
	bytes     int64
	lastSweep time.Time
}

// State is the sharded, bounded, restorable collector state behind the
// ingest pipeline's merge stage. Instance names hash onto shards, so
// concurrent pushes from different instances take different locks; the
// merged fleet view locks one shard at a time and is deterministic
// (sorted instance order) for a given set of snapshots, exactly like
// the original single-mutex collector.
type State struct {
	opts      StateOptions
	shardMask uint32
	shards    []stateShard

	evicted atomic.Uint64 // instances evicted for the memory bound
	expired atomic.Uint64 // instances expired past InstanceTTL
}

// NewState returns an empty sharded state.
func NewState(opts StateOptions) *State {
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 256 << 20
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	s := &State{opts: opts, shardMask: uint32(pow - 1), shards: make([]stateShard, pow)}
	for i := range s.shards {
		s.shards[i].instances = make(map[string]*instEntry)
	}
	return s
}

// shardOf hashes an instance name onto its shard (FNV-1a).
func (s *State) shardOf(instance string) *stateShard {
	h := uint32(2166136261)
	for i := 0; i < len(instance); i++ {
		h ^= uint32(instance[i])
		h *= 16777619
	}
	return &s.shards[h&s.shardMask]
}

func (s *State) perShardBudget() int64 {
	return s.opts.MaxBytes / int64(len(s.shards))
}

// instCost approximates an instance entry's memory footprint: map and
// struct overheads plus the variable-length strings. The accounting
// backs the eviction bound, so it errs on the generous side.
func instCost(name string, entries map[fleet.TriageKey]fleet.TriageEntry) int64 {
	c := int64(160 + len(name))
	for k, e := range entries {
		c += int64(112 + len(k.Kind) + len(e.Kind) + len(e.FirstInstance))
	}
	return c
}

// Evicted counts instances evicted to hold the memory bound.
func (s *State) Evicted() uint64 { return s.evicted.Load() }

// Expired counts instances expired past InstanceTTL.
func (s *State) Expired() uint64 { return s.expired.Load() }

// Bytes reports the accounted memory across all shards.
func (s *State) Bytes() int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.bytes
		sh.mu.Unlock()
	}
	return total
}

// Instances reports the live instance count across all shards.
func (s *State) Instances() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.instances)
		sh.mu.Unlock()
	}
	return n
}

// Apply merges one decoded push into the state. entries is the push's
// materialized triage payload (a full list, or a delta's changed rows).
func (s *State) Apply(p *fleet.Push, entries map[fleet.TriageKey]fleet.TriageEntry) ApplyResult {
	now := s.opts.Clock()
	sh := s.shardOf(p.Instance)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.sweepShardLocked(sh, now, false)

	ent := sh.instances[p.Instance]
	if p.BaseSeq != 0 {
		// Delta push: applies only on top of exactly the base we hold.
		switch {
		case ent == nil:
			return ApplyResync
		case p.Epoch == ent.epoch && p.Seq <= ent.seq:
			ent.lastSeen = now
			return ApplyStale // a retry of a delta already absorbed
		case p.Epoch != ent.epoch || p.BaseSeq != ent.seq:
			return ApplyResync
		}
		// The materialized delta rows carry absolute values, so
		// upserting them is the whole merge.
		sh.bytes -= ent.cost
		for k, e := range entries {
			ent.entries[k] = e
		}
		ent.cost = instCost(p.Instance, ent.entries)
		sh.bytes += ent.cost
	} else {
		// Full snapshot: replaces the instance's previous state.
		if ent != nil && p.Epoch == ent.epoch && p.Seq <= ent.seq {
			// Same process: a retry of something already absorbed, or an
			// out-of-order delivery superseded by a newer snapshot. A
			// different epoch is a restarted process whose seq numbering
			// started over — fresh state, never stale.
			ent.lastSeen = now
			return ApplyStale
		}
		if ent == nil {
			ent = &instEntry{}
			sh.instances[p.Instance] = ent
		}
		sh.bytes -= ent.cost
		ent.entries = entries
		ent.cost = instCost(p.Instance, entries)
		sh.bytes += ent.cost
	}
	ent.epoch = p.Epoch
	ent.seq = p.Seq
	ent.dropped = p.Dropped
	ent.lastSeen = now
	ent.arena = p.Arena
	ent.shadow = p.Shadow
	s.evictOverLocked(sh, p.Instance)
	return ApplyMerged
}

// sweepShardLocked expires instances past InstanceTTL. Reads force a
// full sweep; pushes sweep at most every TTL/4, so steady-state push
// cost stays independent of shard population.
func (s *State) sweepShardLocked(sh *stateShard, now time.Time, force bool) {
	ttl := s.opts.InstanceTTL
	if ttl <= 0 {
		return
	}
	if !force && now.Sub(sh.lastSweep) < ttl/4 {
		return
	}
	sh.lastSweep = now
	cutoff := now.Add(-ttl)
	for name, ent := range sh.instances {
		if ent.lastSeen.Before(cutoff) {
			sh.bytes -= ent.cost
			delete(sh.instances, name)
			s.expired.Add(1)
		}
	}
}

// evictOverLocked enforces the shard's memory budget by evicting
// least-recently-seen instances — never the one just written, so a push
// can always land. Each eviction removes the instance's entire entry:
// triage state, seq/epoch tracking, and gauges together.
func (s *State) evictOverLocked(sh *stateShard, keep string) {
	budget := s.perShardBudget()
	for sh.bytes > budget && len(sh.instances) > 1 {
		var oldest string
		var oldestSeen time.Time
		for name, ent := range sh.instances {
			if name == keep {
				continue
			}
			if oldest == "" || ent.lastSeen.Before(oldestSeen) {
				oldest, oldestSeen = name, ent.lastSeen
			}
		}
		if oldest == "" {
			return
		}
		sh.bytes -= sh.instances[oldest].cost
		delete(sh.instances, oldest)
		s.evicted.Add(1)
	}
}

// Merged reconstructs every instance's triage list and merges them, in
// sorted instance order, into one fleet-wide aggregator — the same
// deterministic view the original collector served.
func (s *State) Merged() (*pacer.Aggregator, error) {
	now := s.opts.Clock()
	type inst struct {
		name string
		blob []byte
	}
	var all []inst
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		s.sweepShardLocked(sh, now, true)
		for name, ent := range sh.instances {
			blob, err := fleet.MarshalTriage(ent.entries)
			if err != nil {
				sh.mu.Unlock()
				return nil, fmt.Errorf("ingest: exporting %s: %w", name, err)
			}
			all = append(all, inst{name, blob})
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	agg := pacer.NewAggregator()
	for _, in := range all {
		if err := agg.ImportJSON(in.blob); err != nil {
			// Entries are validated at decode time, so this means
			// collector-side corruption; surface it rather than serve a
			// partial fleet view.
			return nil, fmt.Errorf("ingest: snapshot from %s: %w", in.name, err)
		}
	}
	return agg, nil
}

// InstanceRow is one instance's envelope bookkeeping for /metrics.
type InstanceRow struct {
	Name     string
	Seq      uint64
	Dropped  uint64
	LastSeen time.Time
	Arena    *fleet.ArenaGauges
	Shadow   *fleet.ShadowGauges
}

// Rows returns per-instance metric rows, sorted by name.
func (s *State) Rows() []InstanceRow {
	now := s.opts.Clock()
	var rows []InstanceRow
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		s.sweepShardLocked(sh, now, true)
		for name, ent := range sh.instances {
			rows = append(rows, InstanceRow{
				Name: name, Seq: ent.seq, Dropped: ent.dropped,
				LastSeen: ent.lastSeen, Arena: ent.arena, Shadow: ent.shadow,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}
