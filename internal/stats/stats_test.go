package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("degenerate StdDev should be 0")
	}
	// Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestStdDevNonNegativeQuick(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		return StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); !almost(got, c.want) {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

// NumTrials reproduces the paper's examples: 500 trials at 1%, 334 at 3%,
// 50 at 100%.
func TestNumTrialsPaperValues(t *testing.T) {
	cases := []struct {
		r    float64
		want int
	}{
		{0.01, 500},
		{0.03, 334},
		{0.05, 200},
		{0.10, 100},
		{0.25, 50},
		{1.00, 50},
		{0, 50},
	}
	for _, c := range cases {
		if got := NumTrials(c.r); got != c.want {
			t.Errorf("NumTrials(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestNumTrialsBounds(t *testing.T) {
	f := func(r float64) bool {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return true
		}
		n := NumTrials(math.Abs(r))
		return n >= 50 && n <= 500
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero should be 0")
	}
	if !almost(Ratio(3, 4), 0.75) {
		t.Error("Ratio wrong")
	}
}

func TestBinomialCI(t *testing.T) {
	if BinomialCI(0.5, 0) != 0 {
		t.Error("n=0 should give 0")
	}
	// p=0.5, n=100 → 1.96*sqrt(0.25/100) = 0.098.
	if got := BinomialCI(0.5, 100); math.Abs(got-0.098) > 1e-9 {
		t.Errorf("CI = %v", got)
	}
}
