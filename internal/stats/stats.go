// Package stats provides the small statistical toolkit the experiment
// harness uses: means, standard deviations, detection-rate math, and the
// paper's trial-count formula.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// NumTrials implements the paper's trial-count formula (Section 5.1):
//
//	numTrials_r = min(max(⌈1000% / r⌉, 50), 500)
//
// with r expressed as a fraction (0.01 for 1%).
func NumTrials(r float64) int {
	if r <= 0 {
		return 50
	}
	n := int(math.Ceil(10 / r))
	return min(max(n, 50), 500)
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// BinomialCI returns the half-width of the normal-approximation 95%
// confidence interval for a proportion p observed over n trials.
func BinomialCI(p float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return 1.96 * math.Sqrt(p*(1-p)/float64(n))
}
