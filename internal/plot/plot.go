// Package plot renders simple ASCII line charts and bar charts so the
// experiment harness can print the paper's *figures* as figures, not just
// tables, in any terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Points [][2]float64 // (x, y)
}

// Chart is an ASCII line chart.
type Chart struct {
	Title   string
	XLabel  string
	YLabel  string
	Width   int // plot area columns (default 60)
	Height  int // plot area rows (default 16)
	Series  []Series
	YMax    float64 // 0 = auto
	Diag    bool    // draw the y=x diagonal (the proportionality ideal)
	Percent bool    // format axis labels as percentages
}

// markers label successive series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), 0
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			xmin = math.Min(xmin, p[0])
			xmax = math.Max(xmax, p[0])
			ymax = math.Max(ymax, p[1])
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymax = 0, 1, 1
	}
	if c.YMax > 0 {
		ymax = c.YMax
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}
	return
}

func (c *Chart) fmtVal(v float64) string {
	if c.Percent {
		return fmt.Sprintf("%.0f%%", v*100)
	}
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	xmin, xmax, ymin, ymax := c.bounds()
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		f := (x - xmin) / (xmax - xmin)
		return min(max(int(f*float64(width-1)+0.5), 0), width-1)
	}
	row := func(y float64) int {
		f := (y - ymin) / (ymax - ymin)
		r := height - 1 - int(f*float64(height-1)+0.5)
		return min(max(r, 0), height-1)
	}
	if c.Diag {
		for x := xmin; x <= xmax; x += (xmax - xmin) / float64(width) {
			if x >= ymin && x <= ymax {
				grid[row(x)][col(x)] = '.'
			}
		}
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		pts := append([][2]float64(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
		// Connect consecutive points with interpolated marks.
		for i, p := range pts {
			grid[row(p[1])][col(p[0])] = m
			if i+1 < len(pts) {
				q := pts[i+1]
				steps := col(q[0]) - col(p[0])
				for k := 1; k < steps; k++ {
					f := float64(k) / float64(steps)
					x := p[0] + f*(q[0]-p[0])
					y := p[1] + f*(q[1]-p[1])
					if grid[row(y)][col(x)] == ' ' {
						grid[row(y)][col(x)] = '-'
					}
				}
			}
		}
	}

	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	yLabelTop := c.fmtVal(ymax)
	yLabelBot := c.fmtVal(ymin)
	pad := max(len(yLabelTop), len(yLabelBot))
	for i, line := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yLabelTop)
		}
		if i == height-1 {
			label = fmt.Sprintf("%*s", pad, yLabelBot)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(c.fmtVal(xmax)), c.fmtVal(xmin), c.fmtVal(xmax))
	if c.XLabel != "" {
		fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", pad), c.XLabel)
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if c.Diag {
		legend = append(legend, ". ideal")
	}
	fmt.Fprintf(w, "%s  legend: %s\n", strings.Repeat(" ", pad), strings.Join(legend, "   "))
}

// Bars renders a horizontal bar chart of labelled values.
func Bars(w io.Writer, title string, labels []string, values []float64, format func(float64) string) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		maxVal = math.Max(maxVal, v)
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	const width = 50
	for i, v := range values {
		n := int(v / maxVal * width)
		fmt.Fprintf(w, "%*s |%s %s\n", maxLabel, labels[i], strings.Repeat("=", n), format(v))
	}
}
