package plot_test

import (
	"bytes"
	"strings"
	"testing"

	"pacer/internal/plot"
)

func TestChartRendersSeriesAndLegend(t *testing.T) {
	c := plot.Chart{
		Title:  "detection rate vs sampling rate",
		XLabel: "sampling rate",
		Series: []plot.Series{
			{Name: "eclipse", Points: [][2]float64{{0.01, 0.01}, {0.5, 0.55}, {1, 1}}},
			{Name: "xalan", Points: [][2]float64{{0.01, 0.02}, {0.5, 0.45}, {1, 1}}},
		},
		Diag:    true,
		Percent: true,
	}
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	for _, want := range []string{"detection rate", "eclipse", "xalan", "ideal", "*", "o", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(out, "\n")) < 16 {
		t.Error("chart too short")
	}
}

func TestChartEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	(&plot.Chart{Title: "empty"}).Render(&buf)
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty chart did not render")
	}
}

func TestChartMonotoneLinePlacesExtremes(t *testing.T) {
	c := plot.Chart{
		Height: 10, Width: 40,
		Series: []plot.Series{{Name: "s", Points: [][2]float64{{0, 0}, {1, 1}}}},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	lines := strings.Split(buf.String(), "\n")
	// First plot row holds the max point, last plot row the min.
	if !strings.Contains(lines[0], "*") {
		t.Errorf("max point not on top row: %q", lines[0])
	}
	if !strings.Contains(lines[9], "*") {
		t.Errorf("min point not on bottom row: %q", lines[9])
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	plot.Bars(&buf, "overheads", []string{"a", "bb"}, []float64{0.5, 1.0},
		func(v float64) string { return "v" })
	out := buf.String()
	if !strings.Contains(out, "overheads") || !strings.Contains(out, "==") {
		t.Errorf("bars output wrong:\n%s", out)
	}
	// The larger value has the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "=") >= strings.Count(lines[2], "=") {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
}

func TestBarsZeroValues(t *testing.T) {
	var buf bytes.Buffer
	plot.Bars(&buf, "", []string{"z"}, []float64{0}, func(v float64) string { return "0" })
	if !strings.Contains(buf.String(), "z |") {
		t.Error("zero bar missing")
	}
}
