package rt

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"sync"
	"time"
	"unsafe"

	"pacer"
	"pacer/internal/fleet"
)

// The process-global detector and the shadow state feeding it. Everything
// initializes lazily on the first hook, so instrumented package-level
// initializers work without ordering constraints.

// varEntry is one shadow-mapped data address.
type varEntry struct {
	v    pacer.VarID
	size uintptr
}

// syncKind tags what a shadow-mapped sync object is, which decides the
// detector identifiers allocated for it.
type syncKind uint8

const (
	kindMutex syncKind = iota
	kindRWMutex
	kindWaitGroup
	kindChan
	kindAtomic
	kindOnce
)

// syncObj is one shadow-mapped synchronization object. Depending on kind:
// mutex/rwmutex hold lock; rwmutex additionally v1 (writers publish) and
// v2 (readers publish); waitgroup and atomic hold v1; channels hold v1
// (senders publish) and v2 (receivers publish).
type syncObj struct {
	kind   syncKind
	lock   pacer.LockID
	v1, v2 pacer.VolatileID
}

// runtimeState is the mounted front door.
type runtimeState struct {
	det      *pacer.Detector
	agg      *pacer.Aggregator
	reporter *fleet.Reporter
	instance string

	vars  *ShadowMap[varEntry]
	syncs *ShadowMap[syncObj]

	rep *raceLog
}

var (
	initOnce sync.Once
	state    *runtimeState
)

// envStr returns the environment value or a default.
func envStr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func envFloat(key string, def float64) float64 {
	if v := os.Getenv(key); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
		fmt.Fprintf(os.Stderr, "pacer/rt: ignoring malformed %s=%q\n", key, v)
	}
	return def
}

func envInt(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
		fmt.Fprintf(os.Stderr, "pacer/rt: ignoring malformed %s=%q\n", key, v)
	}
	return def
}

func envBool(key string) bool {
	switch os.Getenv(key) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// Init mounts the process-global detector from the environment. It is
// idempotent and implied by every hook; call it explicitly only to force
// configuration errors to surface early.
//
// Configuration (all optional):
//
//	PACER_RATE        sampling rate in [0,1]           (default 1.0)
//	PACER_ALGO        detection backend                (default "pacer")
//	PACER_SEED        period-roll seed                 (default 1)
//	PACER_PERIOD      operations per sampling period   (default 4096)
//	PACER_SHARDS      variable-metadata shards         (default 64)
//	PACER_ARENA       1 = slab arena for metadata      (default off)
//	PACER_OUT         path for JSON-lines race reports (default none)
//	PACER_QUIET       1 = no stderr race reports       (default off)
//	PACER_FLEET       pacerd base URL to push reports to
//	PACER_FLEET_TOKEN bearer token for PACER_FLEET
//	PACER_INSTANCE    fleet instance name (default hostname-pid)
func Init() { initOnce.Do(initState) }

func initState() {
	s := &runtimeState{
		vars:  NewShadowMap[varEntry](),
		syncs: NewShadowMap[syncObj](),
	}
	s.agg = pacer.NewAggregator()
	host, _ := os.Hostname()
	if host == "" {
		host = "unknown"
	}
	s.instance = envStr("PACER_INSTANCE", fmt.Sprintf("%s-%d", host, os.Getpid()))
	s.rep = newRaceLog(os.Getenv("PACER_OUT"), envBool("PACER_QUIET"))
	aggReport := s.agg.Reporter(s.instance)
	s.det = pacer.New(pacer.Options{
		Algorithm:    envStr("PACER_ALGO", "pacer"),
		SamplingRate: envFloat("PACER_RATE", 1.0),
		Seed:         int64(envInt("PACER_SEED", 1)),
		PeriodOps:    envInt("PACER_PERIOD", 0),
		Shards:       envInt("PACER_SHARDS", 0),
		Arena:        envBool("PACER_ARENA"),
		OnRace: func(r pacer.Race) {
			aggReport(r)
			s.rep.report(s, r)
		},
	})
	s.det.MountFrontDoor(s)
	if url := os.Getenv("PACER_FLEET"); url != "" {
		rep, err := fleet.NewReporter(s.agg, fleet.ReporterOptions{
			Collector: url,
			Instance:  s.instance,
			Interval:  2 * time.Second,
			AuthToken: os.Getenv("PACER_FLEET_TOKEN"),
			Stats:     func() pacer.Stats { return s.det.Stats() },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pacer/rt: fleet reporter disabled: %v\n", err)
		} else {
			s.reporter = rep
		}
	}
	state = s
}

// D returns the process-global detector, mounting it on first use.
// Exported for tests and custom integrations.
func D() *pacer.Detector {
	Init()
	return state.det
}

// Aggregator returns the process-global triage aggregator.
func Aggregator() *pacer.Aggregator {
	Init()
	return state.agg
}

// FrontDoorStats implements pacer.FrontDoorAccounted: the data shadow
// map's counters (sync-object resolution is tracked separately and not
// surfaced, matching the Stats contract's "variable identifiers").
func (s *runtimeState) FrontDoorStats() pacer.FrontDoorStats {
	st := s.vars.Stats()
	return pacer.FrontDoorStats{
		ShadowHits:   st.Hits,
		ShadowMisses: st.Misses,
		ShadowEvicts: st.Evicts,
		ShadowVars:   st.Live,
	}
}

// resolveVar maps a data address to its VarID, registering on first
// sight. The hit path creates no closure and allocates nothing.
func resolveVar(addr, size uintptr) pacer.VarID {
	if e := state.vars.Get(addr); e != nil {
		return e.v
	}
	e := state.vars.SetIfAbsent(addr, func() *varEntry {
		return &varEntry{v: state.det.NewVarID(), size: size}
	})
	return e.v
}

// resolveSync maps a sync object's address to its detector identifiers.
func resolveSync(addr uintptr, kind syncKind) *syncObj {
	if o := state.syncs.Get(addr); o != nil {
		return o
	}
	return state.syncs.SetIfAbsent(addr, func() *syncObj {
		o := &syncObj{kind: kind}
		d := state.det
		switch kind {
		case kindMutex:
			o.lock = d.NewLockID()
		case kindRWMutex:
			o.lock = d.NewLockID()
			o.v1 = d.NewVolatileID()
			o.v2 = d.NewVolatileID()
		case kindWaitGroup, kindAtomic, kindOnce:
			o.v1 = d.NewVolatileID()
		case kindChan:
			o.v1 = d.NewVolatileID()
			o.v2 = d.NewVolatileID()
		}
		return o
	})
}

// FreeVar evicts a data address from the shadow map: a later access to
// the same (reused) address registers as a fresh variable instead of
// inheriting the dead one's metadata. Instrumentation does not emit this
// automatically (Go frees memory invisibly); long-running integrations
// can call it from arena/pool recycling points.
func FreeVar(p unsafe.Pointer) {
	Init()
	state.vars.Evict(uintptr(p))
}

// --- data access hooks (emitted by pacergo) ---

// R observes the calling goroutine reading size bytes at p, as the
// instrumented source position site (from Site).
func R(p unsafe.Pointer, size uintptr, site int) {
	Init()
	g := current()
	v := resolveVar(uintptr(p), size)
	noteCapture(site)
	state.det.Read(g.t, v, pacer.SiteID(site))
}

// W observes the calling goroutine writing size bytes at p.
func W(p unsafe.Pointer, size uintptr, site int) {
	Init()
	g := current()
	v := resolveVar(uintptr(p), size)
	noteCapture(site)
	state.det.Write(g.t, v, pacer.SiteID(site))
}

// --- sync.Mutex / sync.RWMutex hooks ---

// LockAcquire observes mu.Lock() returning; call it after the real lock
// is held.
func LockAcquire(p unsafe.Pointer) {
	Init()
	g := current()
	state.det.Acquire(g.t, resolveSync(uintptr(p), kindMutex).lock)
}

// LockRelease observes mu.Unlock(); call it before the real unlock.
func LockRelease(p unsafe.Pointer) {
	Init()
	g := current()
	state.det.Release(g.t, resolveSync(uintptr(p), kindMutex).lock)
}

// RWLock observes rw.Lock() returning. The model mirrors pacer.RWMutex:
// writers hold the lock and consume both the previous writer's and every
// reader's publication.
func RWLock(p unsafe.Pointer) {
	Init()
	g := current()
	o := resolveSync(uintptr(p), kindRWMutex)
	d := state.det
	d.Acquire(g.t, o.lock)
	d.VolRead(g.t, o.v2) // readers' publications
	d.VolRead(g.t, o.v1) // previous writer's
}

// RWUnlock observes rw.Unlock(); call before the real unlock.
func RWUnlock(p unsafe.Pointer) {
	Init()
	g := current()
	o := resolveSync(uintptr(p), kindRWMutex)
	d := state.det
	d.VolWrite(g.t, o.v1)
	d.Release(g.t, o.lock)
}

// RWRLock observes rw.RLock() returning.
func RWRLock(p unsafe.Pointer) {
	Init()
	g := current()
	o := resolveSync(uintptr(p), kindRWMutex)
	state.det.VolRead(g.t, o.v1)
}

// RWRUnlock observes rw.RUnlock(); call before the real unlock.
func RWRUnlock(p unsafe.Pointer) {
	Init()
	g := current()
	o := resolveSync(uintptr(p), kindRWMutex)
	state.det.VolWrite(g.t, o.v2)
}

// --- sync.WaitGroup hooks ---

// WGDone observes wg.Done(), publishing the worker's history; call before
// the real Done.
func WGDone(p unsafe.Pointer) {
	Init()
	g := current()
	state.det.VolWrite(g.t, resolveSync(uintptr(p), kindWaitGroup).v1)
}

// WGWait observes wg.Wait() returning, receiving every Done-er's history;
// call after the real Wait.
func WGWait(p unsafe.Pointer) {
	Init()
	g := current()
	state.det.VolRead(g.t, resolveSync(uintptr(p), kindWaitGroup).v1)
}

// --- channel hooks ---

// chanObj resolves a channel value's identity (the runtime channel
// object, not the variable holding it). Nil channels resolve to nil.
func chanObj(ch any) *syncObj {
	if ch == nil {
		return nil
	}
	rv := reflect.ValueOf(ch)
	if rv.Kind() != reflect.Chan || rv.IsNil() {
		return nil
	}
	return resolveSync(rv.Pointer(), kindChan)
}

// ChanSend observes `ch <- v` about to run: the sender publishes its
// history. Call before the real send.
func ChanSend(ch any) {
	Init()
	g := current()
	if o := chanObj(ch); o != nil {
		state.det.VolWrite(g.t, o.v1)
	}
}

// ChanSendDone observes a send completing: for unbuffered channels the
// rendezvous also hands the receiver's prior history to the sender. Call
// after the real send.
func ChanSendDone(ch any) {
	Init()
	g := current()
	if o := chanObj(ch); o != nil {
		state.det.VolRead(g.t, o.v2)
	}
}

// ChanRecvPre observes a receive about to block: the receiver publishes
// its prior history for the rendezvous edge. Call before the real
// receive.
func ChanRecvPre(ch any) {
	Init()
	g := current()
	if o := chanObj(ch); o != nil {
		state.det.VolWrite(g.t, o.v2)
	}
}

// ChanRecv observes a completed receive: the receiver acquires the
// senders' published history. Call after the real receive.
func ChanRecv(ch any) {
	Init()
	g := current()
	if o := chanObj(ch); o != nil {
		state.det.VolRead(g.t, o.v1)
	}
}

// ChanClose observes close(ch): closing publishes like a send. Call
// before the real close.
func ChanClose(ch any) {
	Init()
	g := current()
	if o := chanObj(ch); o != nil {
		state.det.VolWrite(g.t, o.v1)
	}
}

// ChanRange observes one delivery of a range-over-channel loop: the body
// acquires the senders' history and republishes the receiver's. Emitted
// at the top of the loop body.
func ChanRange(ch any) {
	Init()
	g := current()
	if o := chanObj(ch); o != nil {
		state.det.VolRead(g.t, o.v1)
		state.det.VolWrite(g.t, o.v2)
	}
}

// --- sync.Once hook ---

// OnceDo performs o.Do(f) with the Once modelled as synchronization:
// the goroutine that wins the Once publishes its history when f returns
// (a release on first execution), and every caller — the executor
// included — acquires that publication when Do returns. That is exactly
// the guarantee sync.Once documents: f's completion happens before any
// Do return, so latecomers that find the Once already done are still
// ordered after everything f wrote.
//
// pacergo rewrites `once.Do(f)` to `rt.OnceDo(&once, f)`; the hook runs
// the real Do itself so the release lands inside the Once's critical
// section, before any other caller can observe completion.
func OnceDo(o *sync.Once, f func()) {
	Init()
	g := current()
	so := resolveSync(uintptr(unsafe.Pointer(o)), kindOnce)
	o.Do(func() {
		f()
		state.det.VolWrite(g.t, so.v1)
	})
	state.det.VolRead(g.t, so.v1)
}

// --- sync/atomic hooks ---

// AtomicLoad observes an atomic load from p; call after the real load.
func AtomicLoad(p unsafe.Pointer) {
	Init()
	g := current()
	state.det.VolRead(g.t, resolveSync(uintptr(p), kindAtomic).v1)
}

// AtomicStore observes an atomic store to p; call before the real store.
func AtomicStore(p unsafe.Pointer) {
	Init()
	g := current()
	state.det.VolWrite(g.t, resolveSync(uintptr(p), kindAtomic).v1)
}

// AtomicRMW observes an atomic read-modify-write (Add, Swap,
// CompareAndSwap) on p: it both consumes and republishes the volatile's
// history. Call after the real operation.
func AtomicRMW(p unsafe.Pointer) {
	Init()
	g := current()
	o := resolveSync(uintptr(p), kindAtomic)
	state.det.VolRead(g.t, o.v1)
	state.det.VolWrite(g.t, o.v1)
}

// --- deferred sync helpers ---
//
// pacergo rewrites `defer mu.Unlock()` (and friends) to `defer
// rt.DeferUnlock(&mu)`: the helper performs the real operation with the
// hook in the right order, and taking the pointer at defer time preserves
// the original receiver-evaluation semantics.

// DeferUnlock releases mu with the unlock hook ordered before it.
func DeferUnlock(mu *sync.Mutex) { LockRelease(unsafe.Pointer(mu)); mu.Unlock() }

// DeferRWUnlock releases rw's write lock with the hook ordered before it.
func DeferRWUnlock(rw *sync.RWMutex) { RWUnlock(unsafe.Pointer(rw)); rw.Unlock() }

// DeferRWRUnlock releases rw's read lock with the hook ordered before it.
func DeferRWRUnlock(rw *sync.RWMutex) { RWRUnlock(unsafe.Pointer(rw)); rw.RUnlock() }

// DeferWGDone counts wg down with the publication hook ordered before it.
func DeferWGDone(wg *sync.WaitGroup) { WGDone(unsafe.Pointer(wg)); wg.Done() }

// DeferWGWait waits on wg with the acquisition hook ordered after it.
func DeferWGWait(wg *sync.WaitGroup) { wg.Wait(); WGWait(unsafe.Pointer(wg)) }

// Flush drains buffered reporting: the JSON report stream is synced and,
// when a fleet collector is configured, the reporter pushes its final
// snapshot and shuts down. pacergo injects `defer rt.Flush()` at the top
// of instrumented main functions.
func Flush() {
	Init()
	if state.reporter != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		state.reporter.Close(ctx)
		cancel()
		state.reporter = nil
	}
	state.rep.sync()
}

// Races returns the number of distinct races reported so far in this
// process.
func Races() int {
	Init()
	return state.agg.Distinct()
}
