package rt

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pacer"
)

// TestShadowMapBasics checks register/hit/evict bookkeeping on one
// goroutine.
func TestShadowMapBasics(t *testing.T) {
	m := NewShadowMap[varEntry]()
	if got := m.Get(0x1000); got != nil {
		t.Fatalf("empty map resolved %v", got)
	}
	e := m.SetIfAbsent(0x1000, func() *varEntry { return &varEntry{v: 1, size: 8} })
	if e == nil || e.v != 1 {
		t.Fatalf("SetIfAbsent returned %+v", e)
	}
	if got := m.Get(0x1000); got != e {
		t.Fatalf("Get returned %p, want %p", got, e)
	}
	if got := m.SetIfAbsent(0x1000, func() *varEntry { t.Fatal("build called for present address"); return nil }); got != e {
		t.Fatalf("SetIfAbsent returned %p, want existing %p", got, e)
	}
	if !m.Evict(0x1000) {
		t.Fatal("Evict of present address reported absent")
	}
	if m.Evict(0x1000) {
		t.Fatal("Evict of absent address reported present")
	}
	if got := m.Get(0x1000); got != nil {
		t.Fatalf("evicted address still resolves %+v", got)
	}
	st := m.Stats()
	if st.Misses != 1 || st.Evicts != 1 || st.Live != 0 || st.Hits < 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestShadowMapFreshAfterEvict is the address-reuse discipline: once an
// address is evicted (its memory was freed), re-registering it must build
// a fresh value instead of resurrecting the dead mapping.
func TestShadowMapFreshAfterEvict(t *testing.T) {
	m := NewShadowMap[varEntry]()
	mk := func(v uint32) func() *varEntry {
		return func() *varEntry { return &varEntry{v: pacer.VarID(v)} }
	}
	first := m.SetIfAbsent(0xbeef00, mk(7))
	m.Evict(0xbeef00)
	second := m.SetIfAbsent(0xbeef00, mk(8))
	if second == first {
		t.Fatal("re-registration after evict returned the dead entry")
	}
	if second.v != 8 {
		t.Fatalf("re-registration kept stale value %d", second.v)
	}
}

// TestShadowMapGrowth pushes enough addresses through one map to force
// repeated table rebuilds, including tombstone compaction, and checks
// every live address still resolves to its own entry.
func TestShadowMapGrowth(t *testing.T) {
	m := NewShadowMap[varEntry]()
	const n = 20000
	entries := make(map[uintptr]*varEntry, n)
	for i := 0; i < n; i++ {
		addr := uintptr(0x10000 + 16*i)
		v := uint32(i)
		entries[addr] = m.SetIfAbsent(addr, func() *varEntry { return &varEntry{v: pacer.VarID(v)} })
	}
	// Evict every third address, then re-register half of those.
	for i := 0; i < n; i += 3 {
		addr := uintptr(0x10000 + 16*i)
		m.Evict(addr)
		delete(entries, addr)
	}
	for i := 0; i < n; i += 6 {
		addr := uintptr(0x10000 + 16*i)
		v := uint32(n + i)
		entries[addr] = m.SetIfAbsent(addr, func() *varEntry { return &varEntry{v: pacer.VarID(v)} })
	}
	for addr, want := range entries {
		if got := m.Get(addr); got != want {
			t.Fatalf("addr %#x resolved %p, want %p", addr, got, want)
		}
	}
	st := m.Stats()
	if st.Live != len(entries) {
		t.Fatalf("live %d, want %d", st.Live, len(entries))
	}
}

// TestShadowMapConcurrent hammers register/resolve/evict from many
// goroutines under the Go race detector: the lock-free hit path must
// never observe a torn slot, and the conservation invariant
// live == misses - evicts must hold once the dust settles.
func TestShadowMapConcurrent(t *testing.T) {
	m := NewShadowMap[varEntry]()
	const (
		workers = 8
		addrs   = 512
		rounds  = 2000
	)
	var next atomic.Uint32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				addr := uintptr(0x4000 + 8*rng.Intn(addrs))
				switch rng.Intn(10) {
				case 0:
					m.Evict(addr)
				default:
					e := m.Get(addr)
					if e == nil {
						e = m.SetIfAbsent(addr, func() *varEntry {
							return &varEntry{v: pacer.VarID(next.Add(1))}
						})
					}
					if e == nil || e.v == 0 {
						t.Error("resolve returned unpublished entry")
						return
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	st := m.Stats()
	if got := int(st.Misses) - int(st.Evicts); got != st.Live {
		t.Fatalf("conservation violated: misses %d - evicts %d = %d, live %d",
			st.Misses, st.Evicts, got, st.Live)
	}
	if st.Live < 0 || st.Live > addrs {
		t.Fatalf("implausible live count %d", st.Live)
	}
}

// TestShadowMapResolveHitNoAllocs pins the resolve hit path at zero
// allocations: an instrumented program's steady state is hits, and the
// front door must not feed the garbage collector from it.
func TestShadowMapResolveHitNoAllocs(t *testing.T) {
	m := NewShadowMap[varEntry]()
	addrs := make([]uintptr, 64)
	for i := range addrs {
		addrs[i] = uintptr(0x9000 + 8*i)
		v := uint32(i + 1)
		m.SetIfAbsent(addrs[i], func() *varEntry { return &varEntry{v: pacer.VarID(v)} })
	}
	var sink *varEntry
	avg := testing.AllocsPerRun(200, func() {
		for _, a := range addrs {
			sink = m.Get(a)
		}
	})
	if avg != 0 {
		t.Fatalf("resolve hit path allocates %.2f per run, want 0", avg)
	}
	_ = sink
}
