package rt

import (
	"runtime"
	"sync"

	"pacer"
)

// Goroutine identity. The shim maps runtime goroutine ids onto detector
// ThreadIDs: a goroutine spawned by an instrumented `go` statement is
// forked from its parent (GoSpawn runs in the parent, so the fork
// happens-before edge is recorded at the real spawn point), while a
// goroutine the shim has never seen (main, or one created by
// uninstrumented code) registers lazily as a root thread with no inbound
// edge — conservative in the direction of reporting, since missing edges
// can only make accesses look concurrent.
//
// The goroutine id comes from parsing the runtime.Stack header, the only
// portable, dependency-free source of goroutine identity. It costs about
// a microsecond per hook; the successor papers' cheaper timestamping is
// exactly the follow-up work this front door exists to measure.

// G is one instrumented goroutine's identity: the detector thread it
// operates as.
type G struct {
	t pacer.ThreadID
}

// Thread returns the detector thread this goroutine operates as.
func (g *G) Thread() pacer.ThreadID { return g.t }

const gShards = 64

// gRegistry stripes goid → *G. Hooks hit it once per operation with a
// read lock; binds and unbinds are per-goroutine-lifetime events.
type gRegistry struct {
	shards [gShards]struct {
		mu sync.RWMutex
		m  map[int64]*G
		_  [24]byte
	}
}

var goroutines = func() *gRegistry {
	r := &gRegistry{}
	for i := range r.shards {
		r.shards[i].m = make(map[int64]*G)
	}
	return r
}()

func (r *gRegistry) get(id int64) *G {
	sh := &r.shards[uint64(id)&(gShards-1)]
	sh.mu.RLock()
	g := sh.m[id]
	sh.mu.RUnlock()
	return g
}

func (r *gRegistry) put(id int64, g *G) {
	sh := &r.shards[uint64(id)&(gShards-1)]
	sh.mu.Lock()
	sh.m[id] = g
	sh.mu.Unlock()
}

func (r *gRegistry) drop(id int64) {
	sh := &r.shards[uint64(id)&(gShards-1)]
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// goid parses the current goroutine's id from the runtime.Stack header
// ("goroutine 123 [running]:").
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// len("goroutine ") == 10.
	id := int64(0)
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// current returns the calling goroutine's identity, registering it as a
// root thread on first sight.
func current() *G {
	id := goid()
	if g := goroutines.get(id); g != nil {
		return g
	}
	g := &G{t: D().NewThread()}
	goroutines.put(id, g)
	return g
}

// GoSpawn runs in the parent goroutine at a `go` statement, immediately
// before the spawn: it forks a new detector thread from the parent, so
// everything the parent did up to the spawn happens-before the child.
// The returned handle is passed into the child, which binds it with
// GoStart.
func GoSpawn() *G {
	parent := current()
	return &G{t: D().Fork(parent.t)}
}

// GoStart runs first in a spawned goroutine, binding the handle GoSpawn
// made to the new goroutine's runtime identity.
func GoStart(g *G) {
	goroutines.put(goid(), g)
}

// GoExit runs (deferred) last in a spawned goroutine, releasing its
// registry entry so the runtime id can be reused by an unrelated
// goroutine without inheriting this thread's identity.
func GoExit() {
	goroutines.drop(goid())
}
