package rt

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"pacer"
)

// raceLog renders race reports for humans (stderr) and machines
// (JSON-lines at PACER_OUT), once per distinct race. The aggregator and
// fleet reporter see every dynamic report; the log exists so a terminal
// run of an instrumented binary reads like the Go race detector's output.
type raceLog struct {
	mu    sync.Mutex
	seen  map[distinctKey]bool
	out   *os.File
	quiet bool
}

// distinctKey mirrors the aggregator's static-race normalization: the
// unordered site pair refined by kind, with the two temporal orders of
// one static race collapsed.
type distinctKey struct {
	kind pacer.RaceKind
	a, b pacer.SiteID
}

func keyOf(r pacer.Race) distinctKey {
	a, b := r.FirstSite, r.SecondSite
	k := r.Kind
	if a > b {
		a, b = b, a
		switch k {
		case pacer.WriteRead:
			k = pacer.ReadWrite
		case pacer.ReadWrite:
			k = pacer.WriteRead
		}
	}
	if a == b && k == pacer.WriteRead {
		k = pacer.ReadWrite
	}
	return distinctKey{kind: k, a: a, b: b}
}

func newRaceLog(outPath string, quiet bool) *raceLog {
	l := &raceLog{seen: make(map[distinctKey]bool), quiet: quiet}
	if outPath != "" {
		f, err := os.OpenFile(outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pacer/rt: cannot open PACER_OUT: %v\n", err)
		} else {
			l.out = f
		}
	}
	return l
}

// jsonAccess is one access of a reported race in the JSON-lines schema.
type jsonAccess struct {
	Op     string   `json:"op"`
	Site   string   `json:"site"` // "file:line" of the instrumented access
	Thread uint32   `json:"thread"`
	Stack  []string `json:"stack,omitempty"`
}

// jsonRace is one line of the PACER_OUT stream: a distinct race, written
// the first time it is reported.
type jsonRace struct {
	Var    uint32     `json:"var"`
	Kind   string     `json:"kind"`
	First  jsonAccess `json:"first"`
	Second jsonAccess `json:"second"`
}

// ops returns the operation names of the race's two accesses.
func ops(k pacer.RaceKind) (string, string) {
	switch k {
	case pacer.WriteWrite:
		return "write", "write"
	case pacer.WriteRead:
		return "write", "read"
	default:
		return "read", "write"
	}
}

func stackStrings(frames []pacer.Frame) []string {
	out := make([]string, len(frames))
	for i, f := range frames {
		out[i] = f.String()
	}
	return out
}

// report handles one dynamic race: on the first occurrence of its
// distinct key it registers both sites' stacks with the detector's label
// tables, prints the symbolized report, and appends a JSON line. It runs
// from OnRace (with a shard lock held), so everything slow happens only
// on that first occurrence.
func (l *raceLog) report(s *runtimeState, r pacer.Race) {
	k := keyOf(r)
	l.mu.Lock()
	if l.seen[k] {
		l.mu.Unlock()
		return
	}
	l.seen[k] = true
	l.mu.Unlock()

	firstStack := SiteStack(int(r.FirstSite))
	secondStack := SiteStack(int(r.SecondSite))
	if firstStack != nil {
		s.det.SiteFrames(r.FirstSite, firstStack)
	}
	if secondStack != nil {
		s.det.SiteFrames(r.SecondSite, secondStack)
	}

	if !l.quiet {
		fmt.Fprintf(os.Stderr, "==================\nPACER: DATA RACE (%s)\n%s\n==================\n",
			r.Kind, s.det.DescribeStacks(r))
	}
	if l.out != nil {
		op1, op2 := ops(r.Kind)
		line := jsonRace{
			Var:  uint32(r.Var),
			Kind: r.Kind.String(),
			First: jsonAccess{
				Op: op1, Site: SiteLoc(int(r.FirstSite)),
				Thread: uint32(r.FirstThread), Stack: stackStrings(firstStack),
			},
			Second: jsonAccess{
				Op: op2, Site: SiteLoc(int(r.SecondSite)),
				Thread: uint32(r.SecondThread), Stack: stackStrings(secondStack),
			},
		}
		if b, err := json.Marshal(line); err == nil {
			l.mu.Lock()
			l.out.Write(append(b, '\n'))
			l.mu.Unlock()
		}
	}
}

// sync flushes the JSON stream to disk.
func (l *raceLog) sync() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.out != nil {
		l.out.Sync()
	}
}
