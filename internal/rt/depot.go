package rt

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pacer"
)

// The stack depot interns the static capture sites the instrumentation
// injects (one per instrumented access position) and, lazily, one real
// call stack per site, so race reports carry source locations for both
// accesses without paying for a stack walk on every hook.
//
// SiteIDs are allocated here, densely from 1 (0 is reserved for
// "unknown"), and are the values instrumented code passes to R and W —
// the detector itself never allocates sites for instrumented programs.

// siteInfo is one interned capture site.
type siteInfo struct {
	file string // original source path, as the instrumenter saw it
	line int
	col  int

	// captured gates the one-time runtime stack capture: 0 = not yet,
	// 1 = in flight, 2 = published.
	captured atomic.Uint32
	pcs      []uintptr // runtime call stack, innermost first (set once)
}

// depot is the process-global site registry.
type depot struct {
	mu    sync.Mutex
	byLoc map[string]int
	sites atomic.Pointer[[]*siteInfo] // index = SiteID; grown copy-then-republish
}

var sites = func() *depot {
	d := &depot{byLoc: make(map[string]int)}
	empty := make([]*siteInfo, 1) // SiteID 0 = unknown
	d.sites.Store(&empty)
	return d
}()

// Site interns a capture site named by its original source position
// ("file.go:12" or "file.go:12:7") and returns its SiteID. Instrumented
// files call it from generated package-level variable initializers, so
// every site is interned exactly once per process before main runs.
func Site(loc string) int {
	d := sites
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byLoc[loc]; ok {
		return id
	}
	file, line, col := splitLoc(loc)
	tab := *d.sites.Load()
	id := len(tab)
	grown := make([]*siteInfo, id+1)
	copy(grown, tab)
	grown[id] = &siteInfo{file: file, line: line, col: col}
	d.sites.Store(&grown)
	d.byLoc[loc] = id
	return id
}

// splitLoc parses "file:line" or "file:line:col"; a malformed loc keeps
// the whole string as the file with line 0.
func splitLoc(loc string) (file string, line, col int) {
	rest := loc
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		if n, err := strconv.Atoi(rest[i+1:]); err == nil {
			rest, line = rest[:i], n
			if j := strings.LastIndexByte(rest, ':'); j >= 0 {
				if n2, err := strconv.Atoi(rest[j+1:]); err == nil {
					return rest[:j], n2, line
				}
			}
			return rest, line, 0
		}
	}
	return loc, 0, 0
}

// siteByID returns the interned site, or nil for unknown/foreign ids.
func siteByID(id int) *siteInfo {
	tab := *sites.sites.Load()
	if id <= 0 || id >= len(tab) {
		return nil
	}
	return tab[id]
}

// noteCapture records one real call stack for the site the first time an
// access actually executes there. The fast path after capture is a single
// atomic load.
func noteCapture(id int) {
	s := siteByID(id)
	if s == nil || s.captured.Load() == 2 {
		return
	}
	if !s.captured.CompareAndSwap(0, 1) {
		return
	}
	var pcs [depotMaxFrames]uintptr
	// Skip runtime.Callers, noteCapture, and the rt hook that called it;
	// deeper rt frames are filtered at symbolization time.
	n := runtime.Callers(3, pcs[:])
	s.pcs = append([]uintptr(nil), pcs[:n]...)
	s.captured.Store(2)
}

// depotMaxFrames bounds a captured stack.
const depotMaxFrames = 32

// frames resolves the site to a pacer stack: frame 0 is the interned
// source position of the access itself, and later frames are the
// symbolized call stack captured at the site's first execution, with the
// shim's own frames filtered out.
func (s *siteInfo) frames() []pacer.Frame {
	out := []pacer.Frame{{File: s.file, Line: s.line}}
	if s.captured.Load() != 2 || len(s.pcs) == 0 {
		return out
	}
	iter := runtime.CallersFrames(s.pcs)
	for {
		fr, more := iter.Next()
		if fr.Function != "" && !strings.HasPrefix(fr.Function, "pacer/internal/rt.") {
			out = append(out, pacer.Frame{Function: fr.Function, File: fr.File, Line: fr.Line})
			if len(out) >= depotMaxFrames {
				break
			}
		}
		if !more {
			break
		}
	}
	// The innermost symbolized frame names the function containing the
	// access; surface it on frame 0 too.
	if len(out) > 1 {
		out[0].Function = out[1].Function
	}
	return out
}

// loc renders the site's interned source position.
func (s *siteInfo) loc() string {
	if s.line == 0 {
		return s.file
	}
	return fmt.Sprintf("%s:%d", s.file, s.line)
}

// SiteLoc returns the interned "file:line" of a SiteID, or "site N" for
// ids the depot does not know (e.g. hand-driven detector use).
func SiteLoc(id int) string {
	if s := siteByID(id); s != nil {
		return s.loc()
	}
	return fmt.Sprintf("site %d", id)
}

// SiteStack returns the resolved stack for a SiteID: at least the interned
// source position, plus the captured caller frames once the site has
// executed. Nil for unknown ids.
func SiteStack(id int) []pacer.Frame {
	if s := siteByID(id); s != nil {
		return s.frames()
	}
	return nil
}
