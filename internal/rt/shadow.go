// Package rt is the runtime shim behind pacergo-instrumented programs:
// the layer that turns real program state — memory addresses, goroutines,
// sync primitives, channels — into the identifier vocabulary the pacer
// detector ingests (VarID, ThreadID, LockID, VolatileID, SiteID).
//
// Instrumented code calls the hook functions in this package (R, W,
// GoSpawn/GoStart/GoExit, LockAcquire/LockRelease, ChanSend/ChanRecv, …);
// nothing here is meant to be called by hand except in tests and custom
// integrations. The process-global detector is mounted lazily from the
// environment (PACER_RATE, PACER_ALGO, …; see Init) so an instrumented
// binary needs no setup code beyond what pacergo injects.
//
// The address-keyed shadow map follows the publication discipline of
// internal/detector/shardbase: the resolve hit path is lock-free (shard
// table pointer, probed slots, and entry pointers are all published with
// atomic stores after their contents settle), inserts and evictions
// serialize on a per-shard mutex, and table growth copies then
// republishes so lock-free readers always hold a consistent table.
package rt

import (
	"sync"
	"sync/atomic"
)

const (
	// shadowShards stripes the address map; addresses hash onto shards
	// with the same Fibonacci multiplier shardbase uses, extended to 64
	// bits.
	shadowShards = 256
	// shadowMinSlots is a fresh shard table's capacity (power of two).
	shadowMinSlots = 64
	// fib64 is the 64-bit Fibonacci-hashing multiplier (2^64 / φ).
	fib64 = 0x9E3779B97F4A7C15
	// tombstone marks a slot whose address was evicted: probes continue
	// past it, inserts may reclaim it. The zero address marks a never-used
	// slot and terminates probes.
	tombstone = ^uintptr(0)
)

// shadowSlot is one open-addressing slot: the address is published last
// on insert, so a reader that matches addr always finds ent set.
type shadowSlot[T any] struct {
	addr atomic.Uintptr
	ent  atomic.Pointer[T]
}

// shadowTable is one shard's slot array plus its occupancy accounting
// (mutated only under the shard lock).
type shadowTable[T any] struct {
	slots []shadowSlot[T]
	mask  uintptr
	live  int // slots holding a published address
	used  int // live + tombstones: the probe-length bound
}

// shadowShard is one stripe: a lock-free published table and the mutex
// serializing inserts, evictions, and growth.
type shadowShard[T any] struct {
	table atomic.Pointer[shadowTable[T]]
	mu    sync.Mutex
	_     [32]byte // keep neighboring shard locks off one cache line
}

// ShadowMap resolves addresses to interned values of type T with a
// lock-free hit path. New returns the value built by the constructor
// passed to Resolve, called at most once per live address (under the
// shard lock).
type ShadowMap[T any] struct {
	shards [shadowShards]shadowShard[T]

	// hits is sharded to keep the hot path contention-free; misses and
	// evicts are cold (they take the shard lock anyway).
	hits   [shadowShards]paddedCount
	misses atomic.Uint64
	evicts atomic.Uint64
	live   atomic.Int64
}

type paddedCount struct {
	n atomic.Uint64
	_ [56]byte
}

// NewShadowMap returns an empty map.
func NewShadowMap[T any]() *ShadowMap[T] {
	return &ShadowMap[T]{}
}

func shadowShardOf(addr uintptr) int {
	return int((uint64(addr) * fib64) >> 56 & (shadowShards - 1))
}

func shadowHash(addr uintptr, mask uintptr) uintptr {
	// Addresses share low alignment bits; the multiplier spreads them.
	return uintptr((uint64(addr)*fib64)>>32) & mask
}

// lookup probes tab for addr lock-free. It returns the entry, or nil when
// addr is absent from this table snapshot.
func lookup[T any](tab *shadowTable[T], addr uintptr) *T {
	mask := tab.mask
	for i := shadowHash(addr, mask); ; i = (i + 1) & mask {
		got := tab.slots[i].addr.Load()
		if got == addr {
			return tab.slots[i].ent.Load()
		}
		if got == 0 {
			return nil
		}
		// Occupied by another address or a tombstone: keep probing. The
		// insert path bounds used/len, so the probe always terminates.
	}
}

// Get returns the value registered for addr, or nil. This is the
// lock-free, allocation-free hit path; callers that see nil fall back to
// SetIfAbsent. Keeping the two separate lets the hot caller avoid even
// constructing the builder closure on hits.
func (m *ShadowMap[T]) Get(addr uintptr) *T {
	sh := shadowShardOf(addr)
	if tab := m.shards[sh].table.Load(); tab != nil {
		if e := lookup(tab, addr); e != nil {
			m.hits[sh].n.Add(1)
			return e
		}
	}
	return nil
}

// SetIfAbsent returns the value registered for addr, building one with
// build on first sight. It takes the shard lock, re-probes (a racing
// registrar's insert wins), and inserts. build runs under the shard lock
// and must not call back into the same map.
func (m *ShadowMap[T]) SetIfAbsent(addr uintptr, build func() *T) *T {
	sh := &m.shards[shadowShardOf(addr)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tab := sh.table.Load()
	if tab != nil {
		if e := lookup(tab, addr); e != nil {
			// Raced with another registrar: their insert is ours.
			m.hits[shadowShardOf(addr)].n.Add(1)
			return e
		}
	}
	e := build()
	m.insertLocked(sh, addr, e)
	m.misses.Add(1)
	m.live.Add(1)
	return e
}

// insertLocked publishes addr→e, growing (or compacting tombstones) when
// the table is past 3/4 occupancy. Callers hold sh.mu.
func (m *ShadowMap[T]) insertLocked(sh *shadowShard[T], addr uintptr, e *T) {
	tab := sh.table.Load()
	if tab == nil || (tab.used+1)*4 > len(tab.slots)*3 {
		tab = m.rebuildLocked(sh, tab)
	}
	mask := tab.mask
	for i := shadowHash(addr, mask); ; i = (i + 1) & mask {
		got := tab.slots[i].addr.Load()
		if got == 0 || got == tombstone {
			if got == 0 {
				tab.used++
			}
			tab.live++
			// Publication order: entry first, then the address readers
			// match on — a lock-free probe that sees addr sees e.
			tab.slots[i].ent.Store(e)
			tab.slots[i].addr.Store(addr)
			return
		}
	}
}

// rebuildLocked copies live entries into a fresh table (doubling when the
// live set, as opposed to tombstone slack, fills half the table) and
// republishes it. Callers hold sh.mu; lock-free readers keep probing the
// old table until they reload the pointer, which stays consistent because
// old slots are never recycled.
func (m *ShadowMap[T]) rebuildLocked(sh *shadowShard[T], old *shadowTable[T]) *shadowTable[T] {
	n := shadowMinSlots
	if old != nil {
		n = len(old.slots)
		if (old.live+1)*2 > n {
			n *= 2
		}
	}
	fresh := &shadowTable[T]{slots: make([]shadowSlot[T], n), mask: uintptr(n - 1)}
	if old != nil {
		for i := range old.slots {
			addr := old.slots[i].addr.Load()
			if addr == 0 || addr == tombstone {
				continue
			}
			e := old.slots[i].ent.Load()
			mask := fresh.mask
			for j := shadowHash(addr, mask); ; j = (j + 1) & mask {
				if fresh.slots[j].addr.Load() == 0 {
					fresh.slots[j].ent.Store(e)
					fresh.slots[j].addr.Store(addr)
					fresh.used++
					fresh.live++
					break
				}
			}
		}
	}
	sh.table.Store(fresh)
	return fresh
}

// Evict removes addr's mapping, so a later Resolve of the same address
// builds a fresh value — the reuse discipline for freed memory. It
// reports whether a mapping was present. A Resolve racing an Evict may
// return the evicted value (it linearizes before the eviction).
func (m *ShadowMap[T]) Evict(addr uintptr) bool {
	sh := &m.shards[shadowShardOf(addr)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tab := sh.table.Load()
	if tab == nil {
		return false
	}
	mask := tab.mask
	for i := shadowHash(addr, mask); ; i = (i + 1) & mask {
		got := tab.slots[i].addr.Load()
		if got == addr {
			// Tombstone first: a reader that still matches the address
			// afterward resolves the old entry, which linearizes its
			// resolve before this eviction.
			tab.slots[i].addr.Store(tombstone)
			tab.slots[i].ent.Store(nil)
			tab.live--
			m.evicts.Add(1)
			m.live.Add(-1)
			return true
		}
		if got == 0 {
			return false
		}
	}
}

// ShadowMapStats is a ShadowMap's counter snapshot.
type ShadowMapStats struct {
	Hits, Misses, Evicts uint64
	Live                 int
}

// Stats returns a snapshot of the map's counters.
func (m *ShadowMap[T]) Stats() ShadowMapStats {
	var h uint64
	for i := range m.hits {
		h += m.hits[i].n.Load()
	}
	return ShadowMapStats{
		Hits:   h,
		Misses: m.misses.Load(),
		Evicts: m.evicts.Load(),
		Live:   int(m.live.Load()),
	}
}
