package rt

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"unsafe"

	"pacer"
)

// TestMain pins the environment the process-global detector mounts from
// before any hook runs: full sampling so detection is deterministic, and
// quiet so racy subtests don't spam stderr.
func TestMain(m *testing.M) {
	os.Setenv("PACER_RATE", "1")
	os.Setenv("PACER_QUIET", "1")
	os.Unsetenv("PACER_OUT")
	os.Unsetenv("PACER_FLEET")
	os.Exit(m.Run())
}

var siteSeq int

// testSite interns a unique synthetic capture site per call so subtests
// never alias each other's distinct-race keys.
func testSite(t *testing.T) int {
	siteSeq++
	return Site(fmt.Sprintf("rt_test.go:%d:%d", 1000+siteSeq, siteSeq))
}

// spawn runs body on a new instrumented goroutine (GoSpawn in the parent,
// GoStart/GoExit in the child) and returns after it finishes. The join
// uses a plain channel with no rt hooks, so the detector sees no
// happens-before edge back to the parent — exactly the shape of a racy
// program whose second access happens to run later in wall time.
func spawn(body func()) {
	g := GoSpawn()
	done := make(chan struct{})
	go func() {
		GoStart(g)
		defer GoExit()
		defer close(done)
		body()
	}()
	<-done
}

// TestRacyPairDetected: write in a spawned goroutine, then an unordered
// write in the parent. At rate 1 the detector must report it.
func TestRacyPairDetected(t *testing.T) {
	x := new(int)
	s1, s2 := testSite(t), testSite(t)
	before := Races()
	spawn(func() {
		*x = 1
		W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1)
	})
	*x = 2
	W(unsafe.Pointer(x), unsafe.Sizeof(*x), s2)
	if got := Races() - before; got != 1 {
		t.Fatalf("distinct races %d, want 1", got)
	}
}

// TestForkEdgeSuppresses: the parent writes before the spawn, the child
// after GoStart — ordered by the fork edge, so no report.
func TestForkEdgeSuppresses(t *testing.T) {
	x := new(int)
	s1, s2 := testSite(t), testSite(t)
	before := Races()
	*x = 1
	W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1)
	spawn(func() {
		*x = 2
		W(unsafe.Pointer(x), unsafe.Sizeof(*x), s2)
	})
	if got := Races() - before; got != 0 {
		t.Fatalf("fork-ordered writes reported %d races", got)
	}
}

// TestMutexGuardSuppresses: the same unordered-in-time shape as the racy
// pair, but both writes hold the same (shadow-mapped) mutex.
func TestMutexGuardSuppresses(t *testing.T) {
	x := new(int)
	var mu sync.Mutex
	s1, s2 := testSite(t), testSite(t)
	before := Races()
	spawn(func() {
		mu.Lock()
		LockAcquire(unsafe.Pointer(&mu))
		*x = 1
		W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1)
		LockRelease(unsafe.Pointer(&mu))
		mu.Unlock()
	})
	mu.Lock()
	LockAcquire(unsafe.Pointer(&mu))
	*x = 2
	W(unsafe.Pointer(x), unsafe.Sizeof(*x), s2)
	LockRelease(unsafe.Pointer(&mu))
	mu.Unlock()
	if got := Races() - before; got != 0 {
		t.Fatalf("mutex-guarded writes reported %d races", got)
	}
}

// TestRWMutexGuardSuppresses: writer in the child, reader in the parent,
// both under the RWMutex hook protocol.
func TestRWMutexGuardSuppresses(t *testing.T) {
	x := new(int)
	var rw sync.RWMutex
	s1, s2 := testSite(t), testSite(t)
	before := Races()
	spawn(func() {
		rw.Lock()
		RWLock(unsafe.Pointer(&rw))
		*x = 1
		W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1)
		RWUnlock(unsafe.Pointer(&rw))
		rw.Unlock()
	})
	rw.RLock()
	RWRLock(unsafe.Pointer(&rw))
	_ = *x
	R(unsafe.Pointer(x), unsafe.Sizeof(*x), s2)
	RWRUnlock(unsafe.Pointer(&rw))
	rw.RUnlock()
	if got := Races() - before; got != 0 {
		t.Fatalf("rwmutex-guarded accesses reported %d races", got)
	}
}

// TestChannelGuardSuppresses: the child writes then sends; the parent
// receives then writes. The send→receive volatile edge orders the writes.
func TestChannelGuardSuppresses(t *testing.T) {
	x := new(int)
	ch := make(chan int, 1)
	s1, s2 := testSite(t), testSite(t)
	before := Races()
	spawn(func() {
		*x = 1
		W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1)
		ChanSend(ch)
		ch <- 1
		ChanSendDone(ch)
	})
	ChanRecvPre(ch)
	<-ch
	ChanRecv(ch)
	*x = 2
	W(unsafe.Pointer(x), unsafe.Sizeof(*x), s2)
	if got := Races() - before; got != 0 {
		t.Fatalf("channel-ordered writes reported %d races", got)
	}
}

// TestWaitGroupGuardSuppresses: the child writes then Done()s; the parent
// Wait()s then writes.
func TestWaitGroupGuardSuppresses(t *testing.T) {
	x := new(int)
	var wg sync.WaitGroup
	wg.Add(1)
	s1, s2 := testSite(t), testSite(t)
	before := Races()
	spawn(func() {
		*x = 1
		W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1)
		WGDone(unsafe.Pointer(&wg))
		wg.Done()
	})
	wg.Wait()
	WGWait(unsafe.Pointer(&wg))
	*x = 2
	W(unsafe.Pointer(x), unsafe.Sizeof(*x), s2)
	if got := Races() - before; got != 0 {
		t.Fatalf("waitgroup-ordered writes reported %d races", got)
	}
}

// TestReadsDoNotRace: concurrent reads are never a race.
func TestReadsDoNotRace(t *testing.T) {
	x := new(int)
	s1, s2 := testSite(t), testSite(t)
	before := Races()
	spawn(func() {
		_ = *x
		R(unsafe.Pointer(x), unsafe.Sizeof(*x), s1)
	})
	_ = *x
	R(unsafe.Pointer(x), unsafe.Sizeof(*x), s2)
	if got := Races() - before; got != 0 {
		t.Fatalf("read/read reported %d races", got)
	}
}

// TestRaceReportCarriesStacks: a reported race's sites must symbolize to
// the interned file:line via the detector's frame tables.
func TestRaceReportCarriesStacks(t *testing.T) {
	x := new(int)
	s1, s2 := testSite(t), testSite(t)
	before := Races()
	spawn(func() {
		*x = 1
		W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1)
	})
	*x = 2
	W(unsafe.Pointer(x), unsafe.Sizeof(*x), s2)
	if Races()-before != 1 {
		t.Fatal("planted race not reported")
	}
	for _, s := range []int{s1, s2} {
		frames := D().FramesOf(pacer.SiteID(s))
		if len(frames) == 0 {
			t.Fatalf("site %d has no frames registered", s)
		}
		if frames[0].File != "rt_test.go" || frames[0].Line == 0 {
			t.Fatalf("site %d frame 0 = %+v, want rt_test.go:<line>", s, frames[0])
		}
	}
}

// TestFrontDoorStatsSurface: shadow-map counters must flow through
// pacer.Stats, and FreeVar must count as an evict and free the slot for a
// fresh VarID.
func TestFrontDoorStatsSurface(t *testing.T) {
	x := new(int)
	s1 := testSite(t)
	st0 := D().Stats()
	W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1) // miss: registers x
	W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1) // hit
	st1 := D().Stats()
	if st1.ShadowMisses != st0.ShadowMisses+1 {
		t.Fatalf("misses %d -> %d, want +1", st0.ShadowMisses, st1.ShadowMisses)
	}
	if st1.ShadowHits <= st0.ShadowHits {
		t.Fatalf("hits did not advance: %d -> %d", st0.ShadowHits, st1.ShadowHits)
	}
	if st1.ShadowVars != st0.ShadowVars+1 {
		t.Fatalf("vars %d -> %d, want +1", st0.ShadowVars, st1.ShadowVars)
	}

	v1 := state.vars.Get(uintptr(unsafe.Pointer(x))).v
	FreeVar(unsafe.Pointer(x))
	st2 := D().Stats()
	if st2.ShadowEvicts != st1.ShadowEvicts+1 {
		t.Fatalf("evicts %d -> %d, want +1", st1.ShadowEvicts, st2.ShadowEvicts)
	}
	if st2.ShadowVars != st1.ShadowVars-1 {
		t.Fatalf("vars %d -> %d, want -1", st1.ShadowVars, st2.ShadowVars)
	}
	W(unsafe.Pointer(x), unsafe.Sizeof(*x), s1)
	if v2 := state.vars.Get(uintptr(unsafe.Pointer(x))).v; v2 == v1 {
		t.Fatalf("reused address kept VarID %d after FreeVar", v1)
	}
}

// TestSiteInterning: Site is idempotent per location and SiteLoc round-trips.
func TestSiteInterning(t *testing.T) {
	a := Site("demo.go:42")
	b := Site("demo.go:42")
	c := Site("demo.go:43")
	if a != b {
		t.Fatalf("same location interned twice: %d vs %d", a, b)
	}
	if a == c {
		t.Fatalf("distinct locations collided on id %d", a)
	}
	if got := SiteLoc(a); got != "demo.go:42" {
		t.Fatalf("SiteLoc = %q", got)
	}
	if got := SiteLoc(999999); got != "site 999999" {
		t.Fatalf("unknown SiteLoc = %q", got)
	}
}
