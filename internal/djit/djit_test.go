package djit_test

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/djit"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/generic"
)

func mk(r detector.Reporter) detector.Detector { return djit.New(r) }

func TestBasicRaces(t *testing.T) {
	cases := []struct {
		name  string
		trace event.Trace
		kind  detector.RaceKind
	}{
		{"ww", dtest.NewTB().Write(0, 1).Write(1, 1).Trace, detector.WriteWrite},
		{"wr", dtest.NewTB().Write(0, 1).Read(1, 1).Trace, detector.WriteRead},
		{"rw", dtest.NewTB().Read(0, 1).Write(1, 1).Trace, detector.ReadWrite},
	}
	for _, tc := range cases {
		c := dtest.Run(tc.trace, mk)
		if c.DynamicCount() != 1 || c.Dynamic[0].Kind != tc.kind {
			t.Errorf("%s: got %v", tc.name, c.Dynamic)
		}
	}
}

func TestSynchronizedTracesAreRaceFree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := event.Generate(event.Synchronized(6, 4000, seed))
		if c := dtest.Run(tr, mk); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: false positive %v", seed, c.Dynamic[0])
		}
	}
}

func TestSameFrameSkipFires(t *testing.T) {
	d := djit.New(nil)
	d.Read(0, 1, 10, 0)
	d.Read(0, 1, 11, 0) // same frame: skipped
	d.Write(0, 1, 12, 0)
	d.Write(0, 1, 13, 0) // same frame: skipped
	if d.FrameSkips() != 2 {
		t.Fatalf("skips = %d, want 2", d.FrameSkips())
	}
	// A release advances the frame; the next accesses analyze again.
	d.Acquire(0, 1)
	d.Release(0, 1)
	d.Read(0, 1, 14, 0)
	d.Write(0, 1, 15, 0)
	if d.FrameSkips() != 2 {
		t.Fatalf("skips = %d after frame advance, want 2", d.FrameSkips())
	}
}

func TestSkipDoesNotLoseFirstRaces(t *testing.T) {
	// The time-frame skip changes which side detects a race, never whether
	// one is detected: per-variable first races match GENERIC exactly.
	for seed := int64(0); seed < 25; seed++ {
		tr := event.Generate(event.GenConfig{
			Threads: 6, Vars: 10, Locks: 3, Volatiles: 2,
			Steps: 2500, PGuarded: 0.55, PWrite: 0.4, Seed: seed,
		})
		dj := dtest.FirstRacePerVar(tr, mk)
		gen := dtest.FirstRacePerVar(tr, func(r detector.Reporter) detector.Detector { return generic.New(r) })
		if len(dj) != len(gen) {
			t.Fatalf("seed %d: djit found races on %d vars, generic on %d", seed, len(dj), len(gen))
		}
		for v, i := range dj {
			if gen[v] != i {
				t.Fatalf("seed %d: first race on x%d at event %d (djit) vs %d (generic)", seed, v, i, gen[v])
			}
		}
	}
}

func TestSkipsReduceWorkOnHotLoops(t *testing.T) {
	d := djit.New(nil)
	for i := 0; i < 1000; i++ {
		d.Read(0, 1, 1, 0)
	}
	if d.FrameSkips() != 999 {
		t.Fatalf("skips = %d, want 999", d.FrameSkips())
	}
}

func TestStatsAndMetadata(t *testing.T) {
	d := djit.New(nil)
	d.Write(0, 1, 1, 0)
	d.Read(1, 1, 2, 0)
	d.Fork(0, 1)
	d.Join(0, 1)
	d.VolWrite(0, 1)
	d.VolRead(1, 1)
	if d.Name() != "djit+" {
		t.Error("wrong name")
	}
	if d.Stats().TotalSyncOps() != 4 {
		t.Errorf("sync ops = %d", d.Stats().TotalSyncOps())
	}
	if d.MetadataWords() == 0 {
		t.Error("no metadata accounted")
	}
}
