// Package djit implements the Djit+ race detector of Pozniansky and
// Schuster's MultiRace (Section 6.2 of the PACER paper), the strongest
// vector-clock detector before FASTTRACK. Djit+ keeps GENERIC's full read
// and write vector clocks but eliminates redundant analysis with *time
// frames*: a thread's time frame advances only at synchronization releases,
// and within one frame a second read (or write) of the same variable by
// the same thread cannot detect anything new, so its O(n) analysis is
// skipped.
//
// The package completes the repository's lineage of baselines —
// GENERIC → DJIT+ → FASTTRACK → PACER — so the benchmarks can show each
// paper's incremental win. Like the other precise backends it implements
// the detector.Sharded contract (geometry, presence filter, state word all
// mounted from internal/detector/shardbase) and can back its vector clocks
// and variable records with the slab arena, so the concurrent front-end
// and Options.Arena cover it like any other backend. Being always-on, its
// published sampling flag is constantly set; it offers no lock-free
// dismissals (the time-frame check needs the variable's frame table), so
// every access takes the front-end's shard lock.
package djit

import (
	"pacer/internal/arena"
	"pacer/internal/detector"
	"pacer/internal/detector/shardbase"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Options tune the detector's sharding and allocation.
type Options struct {
	// Shards is the number of independent variable-metadata shards
	// (rounded up to a power of two, default 64). Accesses to variables in
	// distinct shards may run concurrently under the locking contract
	// described on Detector.
	Shards int
	// Arena backs vector clocks and variable records with a slab arena
	// (internal/arena) striped like the variable shards. DJIT+ never
	// discards metadata, so nothing is recycled; the benefit is size-class
	// capacity headroom on clock growth and uniform arena accounting.
	Arena bool
}

// varShard is one slice of the variable-metadata table together with the
// counters accumulated for it. The trailing pad keeps shards on distinct
// cache lines so parallel accesses do not false-share.
type varShard struct {
	vars  map[event.Var]*varMeta
	stats detector.Counters
	// skips counts accesses dismissed by the time-frame check — the
	// quantity Djit+'s optimization is about.
	skips uint64
	_     [64]byte
}

type varMeta struct {
	r, w           *vclock.VC
	rSites, wSites []event.Site
	// rFrame and wFrame record the time frame of each thread's last
	// analyzed read/write, enabling the same-frame skip.
	rFrame, wFrame []uint64
}

// Detector is the DJIT+ analysis. It is not safe for unrestricted
// concurrent use, but it admits the sharded reader-writer discipline of
// detector.Sharded: Read and Write calls for variables in distinct shards
// (ShardOf) may run concurrently, provided same-shard calls are serialized
// by the caller, no other method is in flight, every thread identifier was
// announced via EnsureThreadSlots before its first shared-mode access, and
// a single thread's operations are never issued concurrently. Under that
// contract accesses only read their own thread's clock (stable between
// synchronization operations) and mutate per-shard state.
type Detector struct {
	sync *detector.BaseSync
	// state publishes the sampling flag. DJIT+ is always-on, so the word
	// is the constant 1.
	state  shardbase.State
	geo    shardbase.Geometry
	shards []varShard
	// presence counts tracked variables per hash bucket, maintained
	// increment-before-insert. DJIT+ never discards metadata, so buckets
	// never decrement.
	presence *shardbase.Presence
	report   detector.Reporter
	stats    detector.Counters // sync-path counters; access counters live per shard
	snap     detector.Counters // Stats() aggregation scratch
	opts     Options
	// arena and varPool back metadata allocation behind Options.Arena;
	// both nil on the default heap path.
	arena   *arena.Arena
	varPool *arena.Records[varMeta]
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
	_ detector.Sharded         = (*Detector)(nil)
	_ detector.ArenaAccounted  = (*Detector)(nil)
)

// New returns a DJIT+ detector with default options.
func New(report detector.Reporter) *Detector {
	return NewWithOptions(report, Options{})
}

// NewWithOptions returns a DJIT+ detector with explicit options.
func NewWithOptions(report detector.Reporter, opts Options) *Detector {
	geo := shardbase.NewGeometry(opts.Shards)
	d := &Detector{
		geo:      geo,
		shards:   make([]varShard, geo.Shards()),
		presence: shardbase.NewPresence(),
		report:   report,
		opts:     opts,
	}
	for i := range d.shards {
		d.shards[i].vars = make(map[event.Var]*varMeta)
	}
	d.sync = detector.NewBaseSync(&d.stats)
	if opts.Arena {
		d.arena = arena.New(arena.Options{Shards: len(d.shards)})
		d.varPool = arena.NewRecords[varMeta](d.arena, func(m *varMeta) {
			m.r, m.w = nil, nil
			m.rSites, m.wSites = nil, nil
			m.rFrame, m.wFrame = nil, nil
		})
		d.sync.SetAllocator(d.arena.Shard)
	}
	d.state.SetAlwaysOn()
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "djit+" }

// Stats returns the detector's operation counters, aggregated across the
// variable shards. Exclusive access required; the returned pointer is to a
// snapshot that the next Stats call overwrites.
func (d *Detector) Stats() *detector.Counters {
	d.snap = d.stats
	for i := range d.shards {
		d.snap.Add(&d.shards[i].stats)
	}
	return &d.snap
}

// FrameSkips returns the number of accesses dismissed by the time-frame
// check, summed across shards. Exclusive access required.
func (d *Detector) FrameSkips() uint64 {
	n := uint64(0)
	for i := range d.shards {
		n += d.shards[i].skips
	}
	return n
}

// Shards returns the number of variable-metadata shards; the caller's
// striped locks must cover indices [0, Shards()).
func (d *Detector) Shards() int { return d.geo.Shards() }

// ShardOf maps a variable to its metadata shard.
func (d *Detector) ShardOf(x event.Var) int { return d.geo.ShardOf(x) }

// StateWord returns the atomically published sampling state: the constant
// 1 (flag set, zero transitions) because DJIT+ analyzes every access.
func (d *Detector) StateWord() uint64 { return d.state.Word() }

// MetaPossible reports whether variable x might currently hold metadata;
// safe to call without any lock. (With the sampling flag constantly set
// the front-end never dismisses on this; the filter is maintained so the
// Sharded contract's invariants hold regardless of probe order.)
func (d *Detector) MetaPossible(x event.Var) bool { return d.presence.Possible(x) }

// EnsureThreadSlots pre-grows the thread table to hold identifiers below
// n, so shared-mode Read/Write calls never resize it. Requires exclusive
// access.
func (d *Detector) EnsureThreadSlots(n int) { d.sync.EnsureThreadSlots(n) }

// vcAlloc returns stripe i's slab allocator, or nil on the heap path.
func (d *Detector) vcAlloc(i int) vclock.Allocator {
	if d.arena == nil {
		return nil
	}
	return d.arena.Shard(i)
}

func allocVC(a vclock.Allocator, n int) *vclock.VC {
	if a != nil {
		return a.NewVC(n)
	}
	return vclock.New(n)
}

func (d *Detector) varMeta(si int, x event.Var) *varMeta {
	sh := &d.shards[si]
	m, ok := sh.vars[x]
	if !ok {
		a := d.vcAlloc(si)
		if d.varPool != nil {
			m = d.varPool.Get(si)
		} else {
			m = &varMeta{}
		}
		m.r, m.w = allocVC(a, 0), allocVC(a, 0)
		d.presence.Add(x) // before insert: a zero presence read proves absence
		sh.vars[x] = m
	}
	return m
}

func frameAt(frames []uint64, t vclock.Thread) uint64 {
	if int(t) < len(frames) {
		return frames[t]
	}
	return 0
}

func setFrame(frames *[]uint64, t vclock.Thread, f uint64) {
	for int(t) >= len(*frames) {
		*frames = append(*frames, 0)
	}
	(*frames)[t] = f
}

func siteAt(sites []event.Site, t vclock.Thread) event.Site {
	if int(t) < len(sites) {
		return sites[t]
	}
	return 0
}

func setSite(sites *[]event.Site, t vclock.Thread, s event.Site) {
	for int(t) >= len(*sites) {
		*sites = append(*sites, 0)
	}
	(*sites)[t] = s
}

func (d *Detector) emit(sh *varShard, r detector.Race) {
	sh.stats.Races++
	if d.report != nil {
		d.report(r)
	}
}

func (d *Detector) checkLeq(sh *varShard, prior *vclock.VC, sites []event.Site,
	ct *vclock.VC, kind detector.RaceKind, x event.Var, t vclock.Thread, site event.Site) {
	if prior.Leq(ct) {
		return
	}
	for u := vclock.Thread(0); int(u) < prior.Len(); u++ {
		if prior.Get(u) > ct.Get(u) {
			d.emit(sh, detector.Race{
				Var: x, Kind: kind,
				FirstThread: u, SecondThread: t,
				FirstSite: siteAt(sites, u), SecondSite: site,
			})
		}
	}
}

// Read performs the GENERIC read analysis unless this thread already read
// x in its current time frame.
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	si := d.ShardOf(x)
	sh := &d.shards[si]
	sh.stats.ReadSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	m := d.varMeta(si, x)
	frame := ct.Get(t) + 1 // frames are 1-based so the zero value means "never"
	if frameAt(m.rFrame, t) == frame {
		sh.skips++
		return
	}
	d.checkLeq(sh, m.w, m.wSites, ct, detector.WriteRead, x, t, site)
	m.r.Set(t, ct.Get(t))
	setSite(&m.rSites, t, site)
	setFrame(&m.rFrame, t, frame)
}

// Write performs the GENERIC write analysis unless this thread already
// wrote x in its current time frame.
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	si := d.ShardOf(x)
	sh := &d.shards[si]
	sh.stats.WriteSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	m := d.varMeta(si, x)
	frame := ct.Get(t) + 1
	if frameAt(m.wFrame, t) == frame {
		sh.skips++
		return
	}
	d.checkLeq(sh, m.w, m.wSites, ct, detector.WriteWrite, x, t, site)
	d.checkLeq(sh, m.r, m.rSites, ct, detector.ReadWrite, x, t, site)
	m.w.Set(t, ct.Get(t))
	setSite(&m.wSites, t, site)
	setFrame(&m.wFrame, t, frame)
}

// Acquire implements Algorithm 1.
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) { d.sync.Acquire(t, m) }

// Release implements Algorithm 2 (and advances t's time frame).
func (d *Detector) Release(t vclock.Thread, m event.Lock) { d.sync.Release(t, m) }

// Fork implements Algorithm 3.
func (d *Detector) Fork(t, u vclock.Thread) { d.sync.Fork(t, u) }

// Join implements Algorithm 4.
func (d *Detector) Join(t, u vclock.Thread) { d.sync.Join(t, u) }

// VolRead implements Algorithm 14.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) { d.sync.VolRead(t, vx) }

// VolWrite implements Algorithm 15.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) { d.sync.VolWrite(t, vx) }

// VarsTracked implements detector.VarAccounted.
func (d *Detector) VarsTracked() int {
	n := 0
	for i := range d.shards {
		n += len(d.shards[i].vars)
	}
	return n
}

// MetadataWords implements detector.MemoryAccounted.
func (d *Detector) MetadataWords() int {
	w := d.sync.MetadataWords()
	for i := range d.shards {
		for _, m := range d.shards[i].vars {
			w += m.r.MemoryWords() + m.w.MemoryWords() +
				(len(m.rSites)+len(m.wSites)+len(m.rFrame)+len(m.wFrame))/2 + 2
		}
	}
	return w
}

// ArenaStats implements detector.ArenaAccounted. The bool result is false
// on the default heap path.
func (d *Detector) ArenaStats() (detector.ArenaStats, bool) {
	if d.arena == nil {
		return detector.ArenaStats{}, false
	}
	st := d.arena.Stats()
	return detector.ArenaStats{
		SlabsLive: st.Live,
		SlabsFree: st.Free,
		Recycles:  st.Recycles,
		Misses:    st.Misses,
		Trimmed:   st.Trimmed,
	}, true
}
