// Package djit implements the Djit+ race detector of Pozniansky and
// Schuster's MultiRace (Section 6.2 of the PACER paper), the strongest
// vector-clock detector before FASTTRACK. Djit+ keeps GENERIC's full read
// and write vector clocks but eliminates redundant analysis with *time
// frames*: a thread's time frame advances only at synchronization releases,
// and within one frame a second read (or write) of the same variable by
// the same thread cannot detect anything new, so its O(n) analysis is
// skipped.
//
// The package completes the repository's lineage of baselines —
// GENERIC → DJIT+ → FASTTRACK → PACER — so the benchmarks can show each
// paper's incremental win.
package djit

import (
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

type varMeta struct {
	r, w           *vclock.VC
	rSites, wSites []event.Site
	// rFrame and wFrame record the time frame of each thread's last
	// analyzed read/write, enabling the same-frame skip.
	rFrame, wFrame []uint64
}

// Detector is the DJIT+ analysis. It is not safe for concurrent use.
type Detector struct {
	sync   *detector.BaseSync
	vars   map[event.Var]*varMeta
	report detector.Reporter
	stats  detector.Counters
	// SameFrameSkips counts accesses dismissed by the time-frame check —
	// the quantity Djit+'s optimization is about.
	SameFrameSkips uint64
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
)

// New returns a DJIT+ detector.
func New(report detector.Reporter) *Detector {
	d := &Detector{vars: make(map[event.Var]*varMeta), report: report}
	d.sync = detector.NewBaseSync(&d.stats)
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "djit+" }

// Stats returns the detector's operation counters.
func (d *Detector) Stats() *detector.Counters { return &d.stats }

func (d *Detector) varMeta(x event.Var) *varMeta {
	m, ok := d.vars[x]
	if !ok {
		m = &varMeta{r: vclock.New(0), w: vclock.New(0)}
		d.vars[x] = m
	}
	return m
}

func frameAt(frames []uint64, t vclock.Thread) uint64 {
	if int(t) < len(frames) {
		return frames[t]
	}
	return 0
}

func setFrame(frames *[]uint64, t vclock.Thread, f uint64) {
	for int(t) >= len(*frames) {
		*frames = append(*frames, 0)
	}
	(*frames)[t] = f
}

func siteAt(sites []event.Site, t vclock.Thread) event.Site {
	if int(t) < len(sites) {
		return sites[t]
	}
	return 0
}

func setSite(sites *[]event.Site, t vclock.Thread, s event.Site) {
	for int(t) >= len(*sites) {
		*sites = append(*sites, 0)
	}
	(*sites)[t] = s
}

func (d *Detector) emit(r detector.Race) {
	d.stats.Races++
	if d.report != nil {
		d.report(r)
	}
}

func (d *Detector) checkLeq(prior *vclock.VC, sites []event.Site, ct *vclock.VC,
	kind detector.RaceKind, x event.Var, t vclock.Thread, site event.Site) {
	if prior.Leq(ct) {
		return
	}
	for u := vclock.Thread(0); int(u) < prior.Len(); u++ {
		if prior.Get(u) > ct.Get(u) {
			d.emit(detector.Race{
				Var: x, Kind: kind,
				FirstThread: u, SecondThread: t,
				FirstSite: siteAt(sites, u), SecondSite: site,
			})
		}
	}
}

// Read performs the GENERIC read analysis unless this thread already read
// x in its current time frame.
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.ReadSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	m := d.varMeta(x)
	frame := ct.Get(t) + 1 // frames are 1-based so the zero value means "never"
	if frameAt(m.rFrame, t) == frame {
		d.SameFrameSkips++
		return
	}
	d.checkLeq(m.w, m.wSites, ct, detector.WriteRead, x, t, site)
	m.r.Set(t, ct.Get(t))
	setSite(&m.rSites, t, site)
	setFrame(&m.rFrame, t, frame)
}

// Write performs the GENERIC write analysis unless this thread already
// wrote x in its current time frame.
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.WriteSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	m := d.varMeta(x)
	frame := ct.Get(t) + 1
	if frameAt(m.wFrame, t) == frame {
		d.SameFrameSkips++
		return
	}
	d.checkLeq(m.w, m.wSites, ct, detector.WriteWrite, x, t, site)
	d.checkLeq(m.r, m.rSites, ct, detector.ReadWrite, x, t, site)
	m.w.Set(t, ct.Get(t))
	setSite(&m.wSites, t, site)
	setFrame(&m.wFrame, t, frame)
}

// Acquire implements Algorithm 1.
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) { d.sync.Acquire(t, m) }

// Release implements Algorithm 2 (and advances t's time frame).
func (d *Detector) Release(t vclock.Thread, m event.Lock) { d.sync.Release(t, m) }

// Fork implements Algorithm 3.
func (d *Detector) Fork(t, u vclock.Thread) { d.sync.Fork(t, u) }

// Join implements Algorithm 4.
func (d *Detector) Join(t, u vclock.Thread) { d.sync.Join(t, u) }

// VolRead implements Algorithm 14.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) { d.sync.VolRead(t, vx) }

// VolWrite implements Algorithm 15.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) { d.sync.VolWrite(t, vx) }

// VarsTracked implements detector.VarAccounted.
func (d *Detector) VarsTracked() int { return len(d.vars) }

// MetadataWords implements detector.MemoryAccounted.
func (d *Detector) MetadataWords() int {
	w := d.sync.MetadataWords()
	for _, m := range d.vars {
		w += m.r.MemoryWords() + m.w.MemoryWords() +
			(len(m.rSites)+len(m.wSites)+len(m.rFrame)+len(m.wFrame))/2 + 2
	}
	return w
}
