package vclock

import "sync"

// This file implements the last-update-aware ("tree clock") timestamp
// representation behind the ordinary VC API, following Mathur,
// Pavlogiannis, and Viswanathan, "Tree Clocks: An Efficient Data Structure
// for Dynamic Race Detection" (PLDI 2022), adapted for PACER's sampling
// regime. The flat entry array v.c stays authoritative at all times —
// Get, Leq, Equal, and the differential suites read it directly — and the
// tree is a pruning index layered on top of it, so every fallback path is
// trivially sound: dropping the tree yields a plain flat clock.
//
// # Why labels instead of clock values
//
// The published tree-clock algorithm prunes joins by comparing clock
// values: a subtree rooted at thread i's entry can be skipped when the
// destination has already absorbed a publication of i with an equal or
// larger C(i). That is sound only when every publication of a clock is
// preceded by an increment of the publisher's own component, so distinct
// publications carry distinct C(i). PACER violates exactly that: outside
// sampling periods inc is elided (Algorithm 10), and a thread's clock can
// change through joins without its own component moving, so two distinct
// publications can share one C(i) and value-based pruning would skip real
// knowledge. Instead, every tree-backed clock carries a private label
// counter (lclk) that advances on every mutation, and all pruning runs in
// label space:
//
//   - lbl[i] is the label of thread i's publication this clock absorbed
//     (0 = thread i has no node here). ABSORB: lbl[i] = L implies this
//     clock contains everything thread i's clock contained at label L.
//   - ack[i] is the attach label: the label of the parent thread's
//     publication stream at the moment i's subtree was (re)attached.
//     Children hang in descending ack order, so a join walk can stop
//     scanning a child list at the first already-covered entry.
//
// Labels are strictly monotone per publisher regardless of the caller's
// inc discipline, which restores the pruning soundness argument for both
// the always-inc backends (FASTTRACK/BaseSync) and the PACER core.
//
// # Invariants
//
// For every node u with label lbl[u] and finite-ack child w:
//
//	SUBTREE: subtree(u) ⊑ (u's thread's clock at label lbl[u])
//	ACK:     subtree(w) ⊑ (u's thread's clock at label ack[w])
//	ABSORB:  the whole clock ⊒ (i's clock at label lbl[i]) for every i
//	ORDER:   the children of u are in non-increasing ack order
//	COVER:   c[i] > 0 implies lbl[i] > 0 (the tree indexes every entry)
//
// Nodes are updated only by detaching and re-attaching under their source
// walk parent, never in place under a stale parent, which is what keeps
// SUBTREE true for retained descendants. Foreign subtrees merged into an
// ownerless clock (a volatile accumulating several writers) attach at the
// root with ack = ackUnordered — but on a dedicated side list (infHead),
// never interleaved into a child list. Keeping child lists pure finite
// descending-ack is what makes the ORDER+ACK early break sound at every
// level including the root; without the segregation a covered root child
// could hide an unordered edge behind it and the root scan would have to
// visit all of its — potentially width-many — children on every join.

const (
	treeNone     = int32(-1)
	ackUnordered = ^uint64(0)
)

// tree is the last-update index attached to a VC. The four aux vectors are
// ordinary VCs drawn from the same allocator as the main entry array, so
// arena-backed clocks keep their index on the same slabs and the existing
// grow/recycle/accounting machinery applies unchanged.
type tree struct {
	lbl *VC // lbl.c[i]: label of thread i's absorbed publication (0 = no node)
	ack *VC // ack.c[i]: attach label in the parent thread's label space
	pn  *VC // pn.c[i]: packed links (parent+1)<<32 | (next sibling+1)
	hp  *VC // hp.c[i]: packed links (head child+1)<<32 | (prev sibling+1)

	root    int32 // node the walk starts from; treeNone when empty
	owner   int32 // thread whose live clock this is; treeNone for sync clocks
	pub     int32 // single-publisher certificate (see joinFrom); treeNone if invalid
	infHead int32 // side list of unordered (ack = ackUnordered) root edges
	lclk  uint64
	sum   uint64 // Σ c[i], maintained incrementally for the monotone-copy check

	// scratch holds the label-updated nodes of the current join walk in
	// preorder, encoded (tid<<1 | parentInWalk). Reused across joins.
	scratch []uint64

	link *tree // free-list link (treeAlloc)
}

func (t *tree) lblAt(i int32) uint64 {
	if int(i) < len(t.lbl.c) {
		return t.lbl.c[i]
	}
	return 0
}

func (t *tree) parent(i int32) int32 { return int32(t.pn.c[i]>>32) - 1 }
func (t *tree) next(i int32) int32   { return int32(t.pn.c[i]&0xffffffff) - 1 }
func (t *tree) head(i int32) int32   { return int32(t.hp.c[i]>>32) - 1 }
func (t *tree) prev(i int32) int32   { return int32(t.hp.c[i]&0xffffffff) - 1 }

func (t *tree) setParent(i, p int32) {
	t.pn.c[i] = t.pn.c[i]&0xffffffff | uint64(p+1)<<32
}
func (t *tree) setNext(i, n int32) {
	t.pn.c[i] = t.pn.c[i]&^uint64(0xffffffff) | uint64(uint32(n+1))
}
func (t *tree) setHead(i, h int32) {
	t.hp.c[i] = t.hp.c[i]&0xffffffff | uint64(h+1)<<32
}
func (t *tree) setPrev(i, p int32) {
	t.hp.c[i] = t.hp.c[i]&^uint64(0xffffffff) | uint64(uint32(p+1))
}

// growAux keeps the aux vectors as wide as the entry array.
func (t *tree) growAux(n int) {
	t.lbl.grow(n)
	t.ack.grow(n)
	t.pn.grow(n)
	t.hp.grow(n)
}

// detach unlinks node w from the list it is on — its parent's child list,
// or the unordered side list (membership decided by the attach-time ack).
// w keeps its own children. w must not be the root.
func (t *tree) detach(w int32) {
	p, nx, pv := t.parent(w), t.next(w), t.prev(w)
	if pv >= 0 {
		t.setNext(pv, nx)
	} else if t.ack.c[w] == ackUnordered {
		t.infHead = nx
	} else if p >= 0 {
		t.setHead(p, nx)
	}
	if nx >= 0 {
		t.setPrev(nx, pv)
	}
	t.setParent(w, treeNone)
	t.setNext(w, treeNone)
	t.setPrev(w, treeNone)
}

// attachFront links node w as the first child of p with attach label ak.
// w keeps its own children (hp head half is preserved). Unordered edges
// (ak = ackUnordered, p always the root) go onto the side list instead of
// the child list, so child lists stay pure and break-early-scannable.
func (t *tree) attachFront(p, w int32, ak uint64) {
	t.setParent(w, p)
	t.setPrev(w, treeNone)
	t.ack.c[w] = ak
	if ak == ackUnordered {
		h := t.infHead
		t.setNext(w, h)
		if h >= 0 {
			t.setPrev(h, w)
		}
		t.infHead = w
		return
	}
	h := t.head(p)
	t.setNext(w, h)
	if h >= 0 {
		t.setPrev(h, w)
	}
	t.setHead(p, w)
}

// SetOwner declares v to be thread t's live clock and materializes the
// last-update index rooted at t. It is a no-op on clocks that are not
// tree-capable (not drawn from a Tree allocator), so detectors call it
// unconditionally. Must precede the first mutation.
func (v *VC) SetOwner(t Thread) {
	if v.talloc == nil {
		return
	}
	if tr := v.tr; tr != nil {
		// Re-owning a clone: Clone disowns (see cloneTree), and the
		// thread's copy-on-write path reclaims its label stream here.
		// Sound only for the unique continuation of the thread's own
		// frozen clock, which is the only caller; the structural guards
		// (rooted at t, owner label current) keep a misuse unowned —
		// slower, never wrong.
		if tr.owner < 0 && tr.root == int32(t) && tr.lblAt(int32(t)) == tr.lclk {
			tr.owner = int32(t)
			tr.pub = int32(t)
		}
		return
	}
	tr := v.talloc.newTree(len(v.c))
	v.tr = tr
	tr.owner = int32(t)
	tr.pub = int32(t)
	// The owner's node exists from birth (value 0, label 1): owned trees
	// are always rooted at their owner, so join targets never re-root.
	v.grow(int(t) + 1)
	tr.growAux(len(v.c))
	tr.root = int32(t)
	tr.lclk = 1
	tr.lbl.c[t] = 1
	tr.sum = 0
	for _, c := range v.c {
		tr.sum += c
	}
}

// Disown releases the clock's claim on its owner's label stream (if any)
// while keeping the index: the clock keeps absorbing labels but never
// mints them. Sync-side reclamation (Unshare on a lock or volatile clock)
// must disown before mutating — the snapshot may still carry the tree
// ownership of the thread that shared it, and that thread's clone has
// since reclaimed the same stream via SetOwner; two minters of one stream
// would let distinct states share a label and break label-space pruning.
// A no-op on ownerless or flat clocks.
func (v *VC) Disown() {
	if tr := v.tr; tr != nil {
		tr.owner = treeNone
	}
}

// Owner returns the thread this clock is the live clock of, or NoThread.
func (v *VC) Owner() Thread {
	if v.tr == nil {
		return NoThread
	}
	return Thread(v.tr.owner)
}

// TreeBacked reports whether v currently carries a last-update index.
func (v *VC) TreeBacked() bool { return v.tr != nil }

// dropTree releases the last-update index, leaving v a permanently flat
// clock with identical contents. It is the safety valve for mutations the
// index cannot track (arbitrary Set, joins from untracked clocks).
func (v *VC) dropTree() {
	if v.tr == nil {
		return
	}
	tr := v.tr
	v.tr = nil
	tr.lbl.Release()
	tr.ack.Release()
	tr.pn.Release()
	tr.hp.Release()
	if v.talloc != nil {
		v.talloc.freeTree(tr)
	}
	v.talloc = nil
}

// bumpOwner advances the owner's label stream: every mutation of an owned
// clock is a new publication state.
func (t *tree) bumpOwner() {
	t.lclk++
	t.lbl.c[t.owner] = t.lclk
}

// treeSet implements Set on a tree-backed clock. Only the owner's own
// component can be tracked (it advances the label stream like Inc); any
// other assignment degrades the clock to flat.
func (v *VC) treeSet(t Thread, c uint64) {
	tr := v.tr
	if int32(t) == tr.owner && c >= v.c[t] {
		tr.sum += c - v.c[t]
		v.c[t] = c
		tr.growAux(len(v.c))
		tr.bumpOwner()
		return
	}
	v.dropTree()
	v.c[t] = c
}

// treeInc implements Inc on a tree-backed clock: O(1) for the owner.
func (v *VC) treeInc(t Thread) {
	tr := v.tr
	if int32(t) != tr.owner {
		v.dropTree()
		v.c[t]++
		return
	}
	v.c[t]++
	tr.sum++
	tr.growAux(len(v.c))
	tr.bumpOwner()
}

// zero reports whether the clock carries no information.
func (v *VC) zero() bool {
	for _, c := range v.c {
		if c != 0 {
			return false
		}
	}
	return true
}

// joinFrom dispatches JoinFrom for the cases where either side carries (or
// could carry) a last-update index. The result is element-for-element the
// flat pointwise maximum; only the cost differs.
func (v *VC) joinFrom(o *VC) bool {
	if v == o {
		return false
	}
	if o.tr == nil {
		// Source has no index: the merge is untracked, so if it would
		// change anything the destination's index cannot account for the
		// result and degrades to flat. A subsumed source changes nothing
		// and the index survives.
		if v.tr != nil {
			if o.Leq(v) {
				return false
			}
			v.dropTree()
		}
		return v.flatJoinFrom(o)
	}
	if v.tr == nil {
		// Tree-capable empty destinations (a fresh lock or volatile clock
		// receiving its first publication) adopt an index; anything else
		// stays flat. A clock that lost its index (talloc nil) never
		// regains one here.
		if v.talloc != nil && v.zero() {
			tr := v.talloc.newTree(len(v.c))
			tr.owner = treeNone
			tr.pub = treeNone
			tr.root = treeNone
			v.tr = tr
			return v.treeJoinFrom(o)
		}
		return v.flatJoinFrom(o)
	}
	return v.treeJoinFrom(o)
}

// flatJoinFrom is the original O(width) pointwise maximum. It never runs
// against a live index (joinFrom degrades first).
func (v *VC) flatJoinFrom(o *VC) bool {
	v.grow(len(o.c))
	changed := false
	for i, oc := range o.c {
		if oc > v.c[i] {
			v.c[i] = oc
			changed = true
		}
	}
	return changed
}

// collect appends the label-updated region of o's tree rooted at u to
// v's scratch list in preorder. parentIn records whether u's source parent
// is itself part of the walk (determining where u re-attaches). It reads
// both trees and mutates nothing; all label comparisons use v's
// pre-join state.
func (v *VC) collect(o *VC, u int32, parentIn uint64) {
	tv, to := v.tr, o.tr
	tv.scratch = append(tv.scratch, uint64(u)<<1|parentIn)
	for w := to.head(u); w >= 0; w = to.next(w) {
		if to.lbl.c[w] > tv.lblAt(w) {
			v.collect(o, w, 1)
			continue
		}
		// w itself is covered (ABSORB at lbl[w] ≥ the source's label). If
		// its attach label is covered too, so is every remaining sibling
		// (ORDER + ACK): stop scanning. Child lists carry only finite-ack
		// edges — unordered foreign edges live on the root side list,
		// walked separately by treeJoinFrom — so the break is sound at
		// every level, the root included.
		if to.ack.c[w] <= tv.lblAt(u) {
			break
		}
	}
}

// treeJoinFrom is the pruned join: v ← v ⊔ o touching only the entries o
// publishes that v has not already absorbed. Reports whether any entry
// value changed (labels may advance without value changes; flat-join
// semantics ignore that).
func (v *VC) treeJoinFrom(o *VC) bool {
	tv, to := v.tr, o.tr
	if to.root < 0 {
		return false
	}
	// O(1) whole-clock subsumption: everything o contains is bounded by
	// its publisher's clock at the certified label (SUBTREE at the root),
	// and v has absorbed that publication (ABSORB).
	if p := to.pub; p >= 0 && tv.lblAt(p) >= to.lblAt(p) {
		return false
	}

	// Pass 1 (read-only): collect the label-updated region in preorder.
	// Unordered foreign subtrees sit outside the root's SUBTREE guarantee
	// (and outside its child list), so their side list is scanned whether
	// or not the root itself was covered; each is its own walk root.
	tv.scratch = tv.scratch[:0]
	r := to.root
	if to.lbl.c[r] > tv.lblAt(r) {
		v.collect(o, r, 0)
	}
	for w := to.infHead; w >= 0; w = to.next(w) {
		if to.lbl.c[w] > tv.lblAt(w) {
			v.collect(o, w, 0)
		}
	}
	if len(tv.scratch) == 0 {
		return false
	}

	v.grow(len(o.c))
	tv.growAux(len(v.c))

	// Pass 2: detach every updated node that already exists, then absorb
	// values and labels. Label monotonicity guarantees the source value is
	// ≥ ours for every updated node, so plain assignment is the maximum.
	changed := false
	for _, e := range tv.scratch {
		w := int32(e >> 1)
		if tv.lbl.c[w] != 0 && w != tv.root {
			tv.detach(w)
		}
		if oc := o.c[w]; oc != v.c[w] {
			tv.sum += oc - v.c[w]
			v.c[w] = oc
			changed = true
		}
		if tv.root < 0 {
			// First adoption into an empty ownerless clock: the first walk
			// root becomes the root.
			tv.root = w
		}
		tv.lbl.c[w] = to.lbl.c[w]
	}

	// Pass 3 (reverse preorder, so same-parent groups land in source
	// order): re-attach. Nodes whose source parent is in the walk keep
	// their source position and attach label; walk roots hang under our
	// root — at the post-join label for owned clocks, unordered otherwise.
	rootAck := ackUnordered
	if tv.owner >= 0 {
		rootAck = tv.lclk + 1
	}
	for i := len(tv.scratch) - 1; i >= 0; i-- {
		e := tv.scratch[i]
		w := int32(e >> 1)
		if w == tv.root {
			continue
		}
		if e&1 != 0 {
			tv.attachFront(to.parent(w), w, to.ack.c[w])
		} else {
			tv.attachFront(tv.root, w, rootAck)
		}
	}
	if tv.owner >= 0 {
		tv.bumpOwner()
	} else {
		tv.pub = treeNone
	}
	return changed
}

// copyFrom dispatches CopyFrom when either side is index-aware. The result
// is always an exact element-for-element copy.
func (v *VC) copyFrom(o *VC) {
	if v == o {
		return
	}
	if o.tr == nil {
		// Copying untracked contents: degrade and fall through to flat.
		v.dropTree()
		v.flatCopyFrom(o)
		return
	}
	if v.tr != nil {
		// Monotone fast path: a pruned join followed by an O(1) totals
		// check. v ⊒ o pointwise with equal sums means v == o exactly —
		// the common case (a release copying the holder's clock into a
		// lock whose content the holder had absorbed at acquire) costs
		// only the entries that changed since.
		v.treeJoinFrom(o)
		if v.tr != nil && v.tr.sum == o.tr.sum && len(v.c) >= len(o.c) {
			if tail := v.c[len(o.c):]; !allZero(tail) {
				// Equal sums but trailing entries o does not even store:
				// not a copy; fall through to the exact path.
			} else {
				v.tr.pub = o.tr.pub
				return
			}
		}
	}
	// Exact path: flat copy plus a structural replica of o's index. This
	// is also the recovery route by which a degraded-but-capable clock
	// regains an index.
	v.flatCopyFrom(o)
	if v.talloc == nil {
		v.dropTree()
		return
	}
	if v.tr == nil {
		tr := v.talloc.newTree(len(v.c))
		tr.owner = treeNone
		v.tr = tr
	}
	tv, to := v.tr, o.tr
	if tv.owner >= 0 && tv.owner != to.root {
		// Replicating a foreign tree into a live thread clock would break
		// the owned-root invariant; degrade instead (detectors never copy
		// into thread clocks — this is a test-surface corner).
		v.dropTree()
		return
	}
	tv.growAux(len(v.c))
	n := len(v.c)
	for _, pair := range [4][2]*VC{{tv.lbl, to.lbl}, {tv.ack, to.ack}, {tv.pn, to.pn}, {tv.hp, to.hp}} {
		dst, src := pair[0], pair[1]
		m := min(n, len(src.c))
		copy(dst.c[:m], src.c[:m])
		// Zero everything past the replicated prefix: a shrinking copy
		// must not leave stale labels claiming knowledge v no longer has.
		clear(dst.c[m:])
	}
	tv.root = to.root
	tv.infHead = to.infHead
	tv.pub = to.pub
	tv.sum = to.sum
	if tv.owner >= 0 {
		// v remains the owner's live clock: the replica is a new state in
		// its label stream.
		tv.lclk = max(tv.lclk, to.lclk)
		tv.bumpOwner()
		tv.pub = tv.owner
	} else {
		tv.lclk = to.lclk
	}
}

func allZero(s []uint64) bool {
	for _, x := range s {
		if x != 0 {
			return false
		}
	}
	return true
}

// flatCopyFrom is the original exact full-width copy.
func (v *VC) flatCopyFrom(o *VC) {
	prev := len(v.c)
	if cap(v.c) < len(o.c) {
		v.c = make([]uint64, len(o.c))
	} else {
		v.c = v.c[:len(o.c)]
		if len(o.c) < prev {
			clear(v.c[len(o.c):prev])
		}
	}
	copy(v.c, o.c)
	if v.tr != nil {
		v.tr.sum = 0
		for _, c := range v.c {
			v.tr.sum += c
		}
	}
}

// leqFast is the O(1) sufficient check behind Leq: v's certified publisher
// bound against o's absorbed labels.
func (v *VC) leqFast(o *VC) bool {
	if v.tr == nil || o.tr == nil {
		return false
	}
	p := v.tr.pub
	return p >= 0 && o.tr.lblAt(p) >= v.tr.lblAt(p)
}

// cloneTree attaches a deep copy of o's index to v (a fresh clone with
// identical contents). Used by Clone; v must be tree-capable.
func (v *VC) cloneTree(o *VC) {
	to := o.tr
	tr := v.talloc.newTree(len(v.c))
	v.tr = tr
	tr.growAux(len(v.c))
	n := min(len(v.c), len(to.lbl.c))
	copy(tr.lbl.c[:n], to.lbl.c[:n])
	copy(tr.ack.c[:n], to.ack.c[:n])
	copy(tr.pn.c[:n], to.pn.c[:n])
	copy(tr.hp.c[:n], to.hp.c[:n])
	tr.root = to.root
	tr.infHead = to.infHead
	// A clone is always disowned, even when the original is a live thread
	// clock: if both the thread's copy-on-write continuation and a sync
	// object's clone of one frozen snapshot kept publishing thread t's
	// label stream, two different states would carry the same label and
	// label-space pruning would become unsound. The thread side reclaims
	// its stream explicitly via SetOwner; sync-side clones stay ownerless
	// (they absorb labels but never mint them). The publisher certificate
	// survives disowning — it bounds content, not ownership.
	tr.owner = treeNone
	tr.pub = to.pub
	tr.lclk = to.lclk
	tr.sum = to.sum
}

// treeMemoryWords is the index's footprint in 8-byte words.
func (v *VC) treeMemoryWords() int {
	t := v.tr
	return t.lbl.MemoryWords() + t.ack.MemoryWords() + t.pn.MemoryWords() +
		t.hp.MemoryWords() + 7 + cap(t.scratch)
}

// treeAlloc is the Allocator wrapper that makes every clock it hands out
// tree-capable: the four aux vectors draw from the wrapped allocator, so
// heap stays heap and arena-backed detectors keep their index on slabs.
// Construct with Tree or TreeStriped.
type treeAlloc struct {
	inner Allocator
	free  *tree // reuse of tree structs (and their scratch) across recycles
}

// Tree wraps an Allocator so the clocks it returns carry last-update
// indexes. The wrapper interposes on the recycle path to release the aux
// vectors back to the wrapped allocator. Like the allocator it wraps, a
// Tree allocator must only be used under the owning shard's
// serialization.
func Tree(inner Allocator) Allocator { return &treeAlloc{inner: inner} }

func (a *treeAlloc) NewVC(n int) *VC {
	v := a.inner.NewVC(n)
	if v.alloc != nil {
		v.alloc = a
	}
	v.talloc = a
	v.tr = nil
	return v
}

func (a *treeAlloc) Recycle(v *VC) {
	v.dropTree() // releases the aux vectors and parks the tree struct
	a.inner.Recycle(v)
}

// newTree returns a zeroed tree struct backed by aux vectors of width n.
func (a *treeAlloc) newTree(n int) *tree {
	t := a.free
	if t != nil {
		a.free = t.link
		t.link = nil
	} else {
		t = &tree{}
	}
	t.lbl = a.inner.NewVC(n)
	t.ack = a.inner.NewVC(n)
	t.pn = a.inner.NewVC(n)
	t.hp = a.inner.NewVC(n)
	t.root = treeNone
	t.owner = treeNone
	t.pub = treeNone
	t.infHead = treeNone
	t.lclk = 0
	t.sum = 0
	t.scratch = t.scratch[:0]
	return t
}

func (a *treeAlloc) freeTree(t *tree) {
	t.lbl, t.ack, t.pn, t.hp = nil, nil, nil, nil
	t.link = a.free
	a.free = t
}

// TreeHeap returns a striped source of heap-backed tree-capable
// allocators for detectors that mount tree clocks without an arena:
// each stripe gets its own wrapper (and tree-struct free list), matching
// the concurrency discipline of arena striping — two stripes may be
// driven concurrently, one stripe may not.
func TreeHeap(stripes int) func(int) Allocator {
	if stripes < 1 {
		stripes = 1
	}
	ws := make([]Allocator, stripes)
	for i := range ws {
		ws[i] = Tree(Heap)
	}
	return func(i int) Allocator {
		i %= stripes
		if i < 0 {
			i += stripes
		}
		return ws[i]
	}
}

// TreeStriped adapts a striped allocator source (as installed via
// SetAllocator hooks) so each stripe is wrapped exactly once: wrapping per
// call would defeat the per-wrapper tree-struct reuse. Distinct stripes
// may be driven concurrently, so the cache is locked; each wrapper itself
// remains single-stripe and needs no locking of its own.
func TreeStriped(alloc func(int) Allocator) func(int) Allocator {
	var mu sync.Mutex
	cache := map[Allocator]Allocator{}
	return func(i int) Allocator {
		inner := alloc(i)
		mu.Lock()
		defer mu.Unlock()
		if w, ok := cache[inner]; ok {
			return w
		}
		w := Tree(inner)
		cache[inner] = w
		return w
	}
}
