package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// ReadEntry is one entry of a read map: thread T last read the variable at
// clock C from program site Site. The site travels with the entry so that a
// later racing write can report the first access of the race (Section 4,
// "Reporting Races").
type ReadEntry struct {
	T    Thread
	C    uint64
	Site uint32
}

// Epoch returns the entry as a packed epoch C@T.
func (e ReadEntry) Epoch() Epoch { return MakeEpoch(e.T, e.C) }

// ReadMap records the reads that may still race with a future write
// (Section 2.2). A read map with one entry is an epoch; with several it is
// the read vector clock FastTrack falls back to for concurrent reads. The
// representation inlines the single-entry case and spills to a map only
// when reads are concurrent, matching FastTrack's adaptive design.
//
// The spilled map is treated as live representation only while n > 1;
// Clear, SetEpoch, and a shrinking Remove empty it but keep it allocated as
// a spare, so a variable whose reads repeatedly inflate and collapse (and a
// variable record recycled through a metadata arena) pays the map
// allocation once, not per cycle.
//
// The zero value is the empty read map (equivalent to the epoch 0@0).
type ReadMap struct {
	single ReadEntry
	n      int
	m      map[Thread]ReadEntry // live iff n > 1; retained empty as a spare
}

// Size returns the number of entries |R|.
func (r *ReadMap) Size() int { return r.n }

// IsEmpty reports whether the read map has no entries.
func (r *ReadMap) IsEmpty() bool { return r.n == 0 }

// Single returns the sole entry of a one-entry read map. It panics when
// Size() != 1.
func (r *ReadMap) Single() ReadEntry {
	if r.n != 1 {
		panic(fmt.Sprintf("vclock: Single on read map of size %d", r.n))
	}
	return r.single
}

// Get returns the clock recorded for thread t and whether an entry exists.
func (r *ReadMap) Get(t Thread) (uint64, bool) {
	switch {
	case r.n == 0:
		return 0, false
	case r.n > 1:
		e, ok := r.m[t]
		return e.C, ok
	case r.single.T == t:
		return r.single.C, true
	default:
		return 0, false
	}
}

// Set records R[t] ← c (with its site), inflating to a map when a second
// thread appears. Inflation reuses the spare map if one is on hand.
func (r *ReadMap) Set(t Thread, c uint64, site uint32) {
	e := ReadEntry{T: t, C: c, Site: site}
	switch {
	case r.n == 0:
		r.single, r.n = e, 1
	case r.n > 1:
		if _, ok := r.m[t]; !ok {
			r.n++
		}
		r.m[t] = e
	case r.single.T == t:
		r.single = e
	default:
		if r.m == nil {
			r.m = make(map[Thread]ReadEntry, 2)
		}
		r.m[r.single.T] = r.single
		r.m[t] = e
		r.n = 2
	}
}

// SetEpoch collapses the read map to the single entry e (FastTrack's
// R ← epoch(t) update).
func (r *ReadMap) SetEpoch(e ReadEntry) {
	if r.n > 1 {
		clear(r.m)
	}
	r.single, r.n = e, 1
}

// Remove discards thread t's entry if present (PACER's non-sampling-period
// read update, Table 4 Rule 3) and reports whether an entry was removed.
func (r *ReadMap) Remove(t Thread) bool {
	switch {
	case r.n == 0:
		return false
	case r.n > 1:
		if _, ok := r.m[t]; !ok {
			return false
		}
		delete(r.m, t)
		r.n--
		if r.n == 1 {
			for _, e := range r.m {
				r.single = e
			}
			clear(r.m)
		}
		return true
	case r.single.T == t:
		r.Clear()
		return true
	default:
		return false
	}
}

// Clear empties the read map (FastTrack's modified write rule; PACER's
// metadata discarding). The spare map is retained.
func (r *ReadMap) Clear() {
	if r.n > 1 {
		clear(r.m)
	}
	r.single, r.n = ReadEntry{}, 0
}

// Leq reports R ⊑ C: every entry's clock is ≤ the corresponding component
// of vc. The empty map is ⊑ everything.
func (r *ReadMap) Leq(vc *VC) bool {
	switch {
	case r.n == 0:
		return true
	case r.n > 1:
		for t, e := range r.m {
			if e.C > vc.Get(t) {
				return false
			}
		}
		return true
	default:
		return r.single.C <= vc.Get(r.single.T)
	}
}

// Racing calls fn for each entry that does NOT happen before vc, i.e. each
// prior read that races with a write by a thread whose clock is vc.
// Entries are visited in ascending thread order so reports are
// deterministic.
func (r *ReadMap) Racing(vc *VC, fn func(ReadEntry)) {
	switch {
	case r.n == 0:
	case r.n > 1:
		ts := make([]Thread, 0, len(r.m))
		for t := range r.m {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for _, t := range ts {
			if e := r.m[t]; e.C > vc.Get(t) {
				fn(e)
			}
		}
	default:
		if r.single.C > vc.Get(r.single.T) {
			fn(r.single)
		}
	}
}

// ForEach visits every entry in ascending thread order.
func (r *ReadMap) ForEach(fn func(ReadEntry)) {
	switch {
	case r.n == 0:
	case r.n > 1:
		ts := make([]Thread, 0, len(r.m))
		for t := range r.m {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for _, t := range ts {
			fn(r.m[t])
		}
	default:
		fn(r.single)
	}
}

// MemoryWords approximates the read map's footprint in 8-byte words for the
// space accountant. A retained spare map is not charged: the accountant
// models the algorithm's live metadata (Figure 10), not allocator slack.
func (r *ReadMap) MemoryWords() int {
	if r.n > 1 {
		return 2 + 3*r.n
	}
	return 4
}

// String renders the read map as {c@t, …}.
func (r *ReadMap) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	r.ForEach(func(e ReadEntry) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d@%d", e.C, e.T)
	})
	b.WriteByte('}')
	return b.String()
}
