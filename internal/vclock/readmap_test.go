package vclock

import (
	"testing"
	"testing/quick"
)

func TestReadMapEmpty(t *testing.T) {
	var r ReadMap
	if !r.IsEmpty() || r.Size() != 0 {
		t.Fatal("zero value should be empty")
	}
	if !r.Leq(New(0)) {
		t.Error("empty read map must be ⊑ everything")
	}
	if _, ok := r.Get(3); ok {
		t.Error("Get on empty map returned an entry")
	}
	count := 0
	r.Racing(New(0), func(ReadEntry) { count++ })
	if count != 0 {
		t.Error("empty map reported racing entries")
	}
}

func TestReadMapSingleEntry(t *testing.T) {
	var r ReadMap
	r.Set(2, 7, 101)
	if r.Size() != 1 {
		t.Fatalf("Size = %d, want 1", r.Size())
	}
	e := r.Single()
	if e.T != 2 || e.C != 7 || e.Site != 101 {
		t.Fatalf("Single = %+v", e)
	}
	if c, ok := r.Get(2); !ok || c != 7 {
		t.Fatal("Get(2) wrong")
	}
	// Overwriting the same thread stays single.
	r.Set(2, 9, 102)
	if r.Size() != 1 || r.Single().C != 9 {
		t.Fatal("same-thread update should stay single")
	}
}

func TestReadMapInflateAndShrink(t *testing.T) {
	var r ReadMap
	r.Set(0, 5, 1)
	r.Set(1, 6, 2)
	r.Set(2, 7, 3)
	if r.Size() != 3 {
		t.Fatalf("Size = %d, want 3", r.Size())
	}
	if !r.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if r.Size() != 2 {
		t.Fatalf("Size = %d, want 2", r.Size())
	}
	if r.Remove(1) {
		t.Fatal("double Remove(1) succeeded")
	}
	if !r.Remove(0) {
		t.Fatal("Remove(0) failed")
	}
	// Shrinks back to the inline single representation.
	if r.Size() != 1 {
		t.Fatalf("Size = %d, want 1", r.Size())
	}
	if e := r.Single(); e.T != 2 || e.C != 7 || e.Site != 3 {
		t.Fatalf("Single after shrink = %+v", e)
	}
	if !r.Remove(2) || !r.IsEmpty() {
		t.Fatal("final Remove failed")
	}
}

func TestReadMapSetEpoch(t *testing.T) {
	var r ReadMap
	r.Set(0, 5, 1)
	r.Set(1, 6, 2)
	r.SetEpoch(ReadEntry{T: 4, C: 9, Site: 77})
	if r.Size() != 1 {
		t.Fatalf("Size = %d, want 1", r.Size())
	}
	if e := r.Single(); e.T != 4 || e.C != 9 || e.Site != 77 {
		t.Fatalf("Single = %+v", e)
	}
}

func TestReadMapLeqAndRacing(t *testing.T) {
	var r ReadMap
	r.Set(0, 3, 1)
	r.Set(1, 8, 2)
	vc := FromSlice([]uint64{5, 5})
	if r.Leq(vc) {
		t.Error("entry 8@1 should not be ⊑ ⟨5 5⟩")
	}
	var racing []ReadEntry
	r.Racing(vc, func(e ReadEntry) { racing = append(racing, e) })
	if len(racing) != 1 || racing[0].T != 1 {
		t.Fatalf("racing = %+v, want single entry for thread 1", racing)
	}
	vc2 := FromSlice([]uint64{3, 8})
	if !r.Leq(vc2) {
		t.Error("read map should be ⊑ ⟨3 8⟩")
	}
}

func TestReadMapRacingDeterministicOrder(t *testing.T) {
	var r ReadMap
	for _, th := range []Thread{9, 3, 7, 1, 5} {
		r.Set(th, 10, uint32(th))
	}
	var order []Thread
	r.Racing(New(0), func(e ReadEntry) { order = append(order, e.T) })
	want := []Thread{1, 3, 5, 7, 9}
	if len(order) != len(want) {
		t.Fatalf("got %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Leq must agree with the definition "every entry ⊑ vc".
func TestReadMapLeqMatchesDefinition(t *testing.T) {
	f := func(entries []uint16, clocks []uint16) bool {
		var r ReadMap
		for i, c := range entries {
			if i >= 8 {
				break
			}
			r.Set(Thread(i%8), uint64(c), 0)
		}
		vc := vcFromShorts(clocks)
		want := true
		r.ForEach(func(e ReadEntry) {
			if e.C > vc.Get(e.T) {
				want = false
			}
		})
		if r.Leq(vc) != want {
			return false
		}
		// Racing must visit exactly the violating entries.
		n := 0
		r.Racing(vc, func(e ReadEntry) {
			if e.C <= vc.Get(e.T) {
				n = -1 << 20
			}
			n++
		})
		violating := 0
		r.ForEach(func(e ReadEntry) {
			if e.C > vc.Get(e.T) {
				violating++
			}
		})
		return n == violating
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The read map is a faithful model of a map Thread → (clock, site): checked
// against a plain map under random operation sequences.
func TestReadMapModelQuick(t *testing.T) {
	type op struct {
		Kind byte
		T    uint8
		C    uint16
	}
	f := func(ops []op) bool {
		var r ReadMap
		model := map[Thread]uint64{}
		for _, o := range ops {
			th := Thread(o.T % 10)
			switch o.Kind % 3 {
			case 0:
				r.Set(th, uint64(o.C), uint32(o.C))
				model[th] = uint64(o.C)
			case 1:
				r.Remove(th)
				delete(model, th)
			case 2:
				r.SetEpoch(ReadEntry{T: th, C: uint64(o.C)})
				model = map[Thread]uint64{th: uint64(o.C)}
			}
			if r.Size() != len(model) {
				return false
			}
			for mt, mc := range model {
				if c, ok := r.Get(mt); !ok || c != mc {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReadMapSinglePanicsWhenNotSingle(t *testing.T) {
	var r ReadMap
	mustPanic(t, "Single on empty", func() { r.Single() })
	r.Set(0, 1, 0)
	r.Set(1, 2, 0)
	mustPanic(t, "Single on size 2", func() { r.Single() })
}

func TestReadEntryEpoch(t *testing.T) {
	e := ReadEntry{T: 3, C: 12}
	if e.Epoch() != MakeEpoch(3, 12) {
		t.Error("ReadEntry.Epoch mismatch")
	}
}

func TestReadMapString(t *testing.T) {
	var r ReadMap
	r.Set(1, 4, 0)
	r.Set(0, 2, 0)
	if got := r.String(); got != "{2@0, 4@1}" {
		t.Errorf("String() = %q", got)
	}
}

func TestReadMapMemoryWords(t *testing.T) {
	var r ReadMap
	small := r.MemoryWords()
	if small <= 0 {
		t.Error("empty map should still cost a few words")
	}
	r.Set(0, 1, 0)
	r.Set(1, 2, 0)
	r.Set(2, 3, 0)
	if r.MemoryWords() <= small {
		t.Error("inflated map should cost more than the inline form")
	}
}

func TestReadMapGetFromMapForm(t *testing.T) {
	var r ReadMap
	r.Set(0, 5, 0)
	r.Set(1, 6, 0)
	if c, ok := r.Get(1); !ok || c != 6 {
		t.Errorf("Get(1) = %d,%v", c, ok)
	}
	if _, ok := r.Get(9); ok {
		t.Error("Get(9) found a phantom entry")
	}
}

func TestReadMapSingleFromMapForm(t *testing.T) {
	// Force the map representation, then shrink to one entry via Remove:
	// the shrink collapses back to inline, but Single must also work if a
	// map of size 1 ever exists internally.
	var r ReadMap
	r.Set(0, 5, 1)
	r.Set(1, 6, 2)
	r.Remove(0)
	if e := r.Single(); e.T != 1 || e.C != 6 {
		t.Errorf("Single = %+v", e)
	}
}
