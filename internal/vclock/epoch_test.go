package vclock

import (
	"testing"
	"testing/quick"
)

func TestEpochPackUnpack(t *testing.T) {
	cases := []struct {
		t Thread
		c uint64
	}{
		{0, 0}, {0, 1}, {1, 0}, {7, 42}, {402, 1 << 30}, {MaxThreads - 1, MaxClock},
	}
	for _, tc := range cases {
		e := MakeEpoch(tc.t, tc.c)
		if e.Thread() != tc.t || e.Clock() != tc.c {
			t.Errorf("MakeEpoch(%d,%d) round-trips to %d@%d", tc.t, tc.c, e.Clock(), e.Thread())
		}
	}
}

func TestEpochPackUnpackQuick(t *testing.T) {
	f := func(tid uint32, c uint64) bool {
		th := Thread(tid % MaxThreads)
		cl := c % (MaxClock + 1)
		e := MakeEpoch(th, cl)
		return e.Thread() == th && e.Clock() == cl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEpochZero(t *testing.T) {
	if !EpochZero.IsZero() {
		t.Error("EpochZero is not zero")
	}
	if EpochZero.Thread() != 0 || EpochZero.Clock() != 0 {
		t.Error("EpochZero is not 0@0")
	}
	// Any epoch with clock 0 is minimal: ≼ every vector clock.
	v := New(0)
	if !MakeEpoch(17, 0).Leq(v) {
		t.Error("0@17 should be ≼ the zero vector clock")
	}
}

func TestEpochLeq(t *testing.T) {
	v := FromSlice([]uint64{3, 0, 5})
	cases := []struct {
		e    Epoch
		want bool
	}{
		{MakeEpoch(0, 3), true},
		{MakeEpoch(0, 4), false},
		{MakeEpoch(1, 0), true},
		{MakeEpoch(1, 1), false},
		{MakeEpoch(2, 5), true},
		{MakeEpoch(9, 0), true},  // out of range, clock 0
		{MakeEpoch(9, 1), false}, // out of range, clock > 0
	}
	for _, tc := range cases {
		if got := tc.e.Leq(v); got != tc.want {
			t.Errorf("%v ≼ %v = %v, want %v", tc.e, v, got, tc.want)
		}
	}
}

// Epoch ≼ VC must agree with the expanded-vector definition: treating the
// epoch c@t as a vector with the single component c at index t.
func TestEpochLeqMatchesVectorDefinition(t *testing.T) {
	f := func(tid uint8, c uint16, vals []uint16) bool {
		th := Thread(tid % 16)
		e := MakeEpoch(th, uint64(c))
		v := New(0)
		for i, x := range vals {
			if i >= 16 {
				break
			}
			v.Set(Thread(i), uint64(x))
		}
		asVec := New(0)
		asVec.Set(th, uint64(c))
		return e.Leq(v) == asVec.Leq(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEpochString(t *testing.T) {
	if got := MakeEpoch(3, 7).String(); got != "7@3" {
		t.Errorf("String() = %q, want 7@3", got)
	}
}

func TestMakeEpochPanics(t *testing.T) {
	mustPanic(t, "negative thread", func() { MakeEpoch(-1, 0) })
	mustPanic(t, "thread too large", func() { MakeEpoch(MaxThreads, 0) })
	mustPanic(t, "clock too large", func() { MakeEpoch(0, MaxClock+1) })
}

func TestVersionEpochBasics(t *testing.T) {
	ve := MakeVersionEpoch(5, 9)
	if ve.Thread() != 5 || ve.Version() != 9 {
		t.Fatalf("round-trip failed: %v", ve)
	}
	if ve.IsTop() {
		t.Error("ordinary version epoch reported as ⊤")
	}
	if !VETop.IsTop() {
		t.Error("VETop not reported as ⊤")
	}
}

func TestVersionEpochLeq(t *testing.T) {
	vv := FromSlice([]uint64{0, 4})
	if !VEBottom.Leq(vv) {
		t.Error("⊥ve ≼ V must always hold")
	}
	if VETop.Leq(vv) {
		t.Error("⊤ve ≼ V must never hold")
	}
	if !MakeVersionEpoch(1, 4).Leq(vv) {
		t.Error("v4@1 ≼ ⟨0 4⟩ should hold")
	}
	if MakeVersionEpoch(1, 5).Leq(vv) {
		t.Error("v5@1 ≼ ⟨0 4⟩ should not hold")
	}
	if MakeVersionEpoch(2, 1).Leq(vv) {
		t.Error("v1@2 ≼ ⟨0 4⟩ should not hold (missing component is 0)")
	}
}

func TestVersionEpochTopNeverLeq(t *testing.T) {
	f := func(vals []uint16) bool {
		v := New(0)
		for i, x := range vals {
			if i >= 32 {
				break
			}
			v.Set(Thread(i), uint64(x))
		}
		return !VETop.Leq(v) && VEBottom.Leq(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVersionEpochString(t *testing.T) {
	if got := VETop.String(); got != "⊤ve" {
		t.Errorf("VETop.String() = %q", got)
	}
	if got := VEBottom.String(); got != "⊥ve" {
		t.Errorf("VEBottom.String() = %q", got)
	}
	if got := MakeVersionEpoch(2, 3).String(); got != "v3@2" {
		t.Errorf("MakeVersionEpoch(2,3).String() = %q", got)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestMakeVersionEpochPanics(t *testing.T) {
	mustPanic(t, "negative thread", func() { MakeVersionEpoch(-1, 0) })
	mustPanic(t, "thread too large", func() { MakeVersionEpoch(MaxThreads, 0) })
	mustPanic(t, "version too large", func() { MakeVersionEpoch(0, MaxClock+1) })
}
