package vclock

import (
	"fmt"
	"strings"
)

// VC is a growable vector clock C[0..n) mapping thread identifiers to clock
// values (Appendix A.1). Entries beyond the stored length are implicitly 0,
// so a VC represents a total map Tid → Nat with finite support.
//
// A VC also carries a shared flag used by PACER's copy-on-write sharing of
// synchronization clocks during non-sampling periods (Algorithm 9). Once a
// clock is marked shared it may be referenced by several synchronization
// objects; any owner that needs to mutate it must Clone first (Algorithms
// 10, 11, 16). On heap clocks the flag is never cleared — only a fresh
// Clone starts out unshared — mirroring the paper's "once an object is
// marked shared it remains that way for the rest of its lifetime". Managed
// clocks count their holders exactly, which supports the one sound
// exception: Unshare clears the mark when the count proves the last alias
// is gone, so the sole remaining holder mutates in place instead of paying
// a full-width copy nothing else would ever read.
// A VC may additionally be owned by an Allocator (see alloc.go): managed
// clocks carry a holder count and are recycled through Retain/Release;
// heap clocks (alloc nil) behave exactly as before.
type VC struct {
	c      []uint64
	shared bool
	alloc  Allocator // nil = heap-backed (the garbage collector reclaims)
	ref    int32     // holder count; meaningful only when alloc != nil

	// Last-update index (see treeclock.go). tr is nil for plain flat
	// clocks; talloc marks a clock drawn from a Tree allocator (capable of
	// carrying an index even while tr is nil).
	tr     *tree
	talloc *treeAlloc
}

// New returns a vector clock with capacity for n threads, all zero.
func New(n int) *VC {
	return &VC{c: make([]uint64, n)}
}

// FromSlice builds a vector clock from explicit per-thread values, mainly
// for tests.
func FromSlice(vals []uint64) *VC {
	v := &VC{c: make([]uint64, len(vals))}
	copy(v.c, vals)
	return v
}

// Len returns the number of explicitly stored entries.
func (v *VC) Len() int { return len(v.c) }

// Get returns C(t); threads beyond the stored length map to 0.
func (v *VC) Get(t Thread) uint64 {
	if int(t) < len(v.c) {
		return v.c[t]
	}
	return 0
}

// Set assigns C(t) = c, growing the vector as needed. The clock must not be
// shared.
func (v *VC) Set(t Thread, c uint64) {
	v.mustOwn()
	v.grow(int(t) + 1)
	if v.tr != nil {
		v.treeSet(t, c)
		return
	}
	v.c[t] = c
}

// Inc increments C(t) by one (Equation 2, the passage of logical time). The
// clock must not be shared; PACER clones shared clocks before incrementing
// (Algorithm 10).
func (v *VC) Inc(t Thread) {
	v.mustOwn()
	v.grow(int(t) + 1)
	if v.tr != nil {
		v.treeInc(t)
		return
	}
	v.c[t]++
}

// JoinFrom computes v ← v ⊔ o, the pointwise maximum (Equation 3), and
// reports whether v changed. The receiver must not be shared. Tree-backed
// clocks (treeclock.go) join in time proportional to the entries that
// actually changed since the destination last absorbed the source's
// publisher; the result is element-for-element the same.
func (v *VC) JoinFrom(o *VC) bool {
	v.mustOwn()
	if v.tr != nil || o.tr != nil || v.talloc != nil {
		return v.joinFrom(o)
	}
	return v.flatJoinFrom(o)
}

// Leq reports v ⊑ o, the pointwise partial order (Appendix A.1). When both
// sides are tree-backed a certified-publisher check can answer true in
// O(1); the flat scan is the general path.
func (v *VC) Leq(o *VC) bool {
	if v.leqFast(o) {
		return true
	}
	for i, vc := range v.c {
		if vc == 0 {
			continue
		}
		if i >= len(o.c) || vc > o.c[i] {
			return false
		}
	}
	return true
}

// CopyFrom performs a deep, element-by-element copy of o into v. The
// receiver must not be shared. A shrinking copy zeroes the vacated tail,
// so a later grow() re-exposes zeros, never stale clock values. Between
// tree-backed clocks the copy runs as a monotone in-place join whenever
// the destination's content is subsumed by the source (the common release
// pattern), costing only the entries that changed; an O(1) totals check
// certifies the result and an exact full-width copy is the fallback.
func (v *VC) CopyFrom(o *VC) {
	v.mustOwn()
	if v.tr != nil || o.tr != nil || v.talloc != nil {
		v.copyFrom(o)
		return
	}
	v.flatCopyFrom(o)
}

// Clone returns a deep, unshared copy of v, drawn from v's allocator when
// it is managed (so arena-backed detectors never fall back to the heap on
// the copy-on-write path). A tree-backed clock's clone carries a deep copy
// of the index, so snapshot-and-continue (PACER's copy-on-write) keeps
// proportional joins on both halves.
func (v *VC) Clone() *VC {
	var n *VC
	switch {
	case v.talloc != nil:
		n = v.talloc.NewVC(len(v.c))
	case v.alloc != nil:
		n = v.alloc.NewVC(len(v.c))
	default:
		n = &VC{c: make([]uint64, len(v.c))}
	}
	copy(n.c, v.c)
	if v.tr != nil {
		n.cloneTree(v)
	}
	return n
}

// Shared reports whether the clock is marked as shared.
func (v *VC) Shared() bool { return v.shared }

// SetShared marks the clock shared. A heap clock stays marked for life
// (Clone returns a fresh unshared copy instead); a managed clock can be
// reclaimed via Unshare once its holder count proves exclusivity.
func (v *VC) SetShared() { v.shared = true }

// Unshare clears the shared mark when v is provably exclusive again, and
// reports whether v is unshared on return. Managed clocks count one holder
// per stored reference, maintained under the same serialization as every
// other mutation, so a count of one means no synchronization object still
// aliases this clock: the copy-on-write clone its callers were about to
// make would duplicate a clock nothing else can observe. Heap clocks do
// not track holders, so their mark is sticky and mutators keep cloning.
func (v *VC) Unshare() bool {
	if !v.shared {
		return true
	}
	if v.alloc != nil && v.ref == 1 {
		v.shared = false
		return true
	}
	return false
}

// Equal reports pointwise equality (treating missing entries as 0).
func (v *VC) Equal(o *VC) bool { return v.Leq(o) && o.Leq(v) }

// MemoryWords approximates the clock's footprint in 8-byte words, used by
// the space accountant reproducing Figure 10. Tree-backed clocks account
// for their last-update index honestly.
func (v *VC) MemoryWords() int {
	w := len(v.c) + 2
	if v.tr != nil {
		w += v.treeMemoryWords()
	}
	return w
}

func (v *VC) grow(n int) {
	if n <= len(v.c) {
		return
	}
	if cap(v.c) >= n {
		v.c = v.c[:n]
		return
	}
	c := make([]uint64, n, max(n, 2*cap(v.c)))
	copy(c, v.c)
	v.c = c
}

func (v *VC) mustOwn() {
	if v.shared {
		panic("vclock: mutation of shared vector clock (clone first)")
	}
}

// String renders the clock as ⟨c0 c1 …⟩.
func (v *VC) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, c := range v.c {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteString("⟩")
	return b.String()
}
