package vclock

import (
	"fmt"
	"strings"
)

// VC is a growable vector clock C[0..n) mapping thread identifiers to clock
// values (Appendix A.1). Entries beyond the stored length are implicitly 0,
// so a VC represents a total map Tid → Nat with finite support.
//
// A VC also carries a shared flag used by PACER's copy-on-write sharing of
// synchronization clocks during non-sampling periods (Algorithm 9). Once a
// clock is marked shared it may be referenced by several synchronization
// objects; any owner that needs to mutate it must Clone first (Algorithms
// 10, 11, 16). The flag is never cleared on a shared instance — only a
// fresh Clone starts out unshared — mirroring the paper's "once an object
// is marked shared it remains that way for the rest of its lifetime".
// A VC may additionally be owned by an Allocator (see alloc.go): managed
// clocks carry a holder count and are recycled through Retain/Release;
// heap clocks (alloc nil) behave exactly as before.
type VC struct {
	c      []uint64
	shared bool
	alloc  Allocator // nil = heap-backed (the garbage collector reclaims)
	ref    int32     // holder count; meaningful only when alloc != nil
}

// New returns a vector clock with capacity for n threads, all zero.
func New(n int) *VC {
	return &VC{c: make([]uint64, n)}
}

// FromSlice builds a vector clock from explicit per-thread values, mainly
// for tests.
func FromSlice(vals []uint64) *VC {
	v := &VC{c: make([]uint64, len(vals))}
	copy(v.c, vals)
	return v
}

// Len returns the number of explicitly stored entries.
func (v *VC) Len() int { return len(v.c) }

// Get returns C(t); threads beyond the stored length map to 0.
func (v *VC) Get(t Thread) uint64 {
	if int(t) < len(v.c) {
		return v.c[t]
	}
	return 0
}

// Set assigns C(t) = c, growing the vector as needed. The clock must not be
// shared.
func (v *VC) Set(t Thread, c uint64) {
	v.mustOwn()
	v.grow(int(t) + 1)
	v.c[t] = c
}

// Inc increments C(t) by one (Equation 2, the passage of logical time). The
// clock must not be shared; PACER clones shared clocks before incrementing
// (Algorithm 10).
func (v *VC) Inc(t Thread) {
	v.mustOwn()
	v.grow(int(t) + 1)
	v.c[t]++
}

// JoinFrom computes v ← v ⊔ o, the pointwise maximum (Equation 3), and
// reports whether v changed. The receiver must not be shared.
func (v *VC) JoinFrom(o *VC) bool {
	v.mustOwn()
	v.grow(len(o.c))
	changed := false
	for i, oc := range o.c {
		if oc > v.c[i] {
			v.c[i] = oc
			changed = true
		}
	}
	return changed
}

// Leq reports v ⊑ o, the pointwise partial order (Appendix A.1).
func (v *VC) Leq(o *VC) bool {
	for i, vc := range v.c {
		if vc == 0 {
			continue
		}
		if i >= len(o.c) || vc > o.c[i] {
			return false
		}
	}
	return true
}

// CopyFrom performs a deep, element-by-element copy of o into v. The
// receiver must not be shared. A shrinking copy zeroes the vacated tail,
// so a later grow() re-exposes zeros, never stale clock values.
func (v *VC) CopyFrom(o *VC) {
	v.mustOwn()
	prev := len(v.c)
	if cap(v.c) < len(o.c) {
		v.c = make([]uint64, len(o.c))
	} else {
		v.c = v.c[:len(o.c)]
		if len(o.c) < prev {
			clear(v.c[len(o.c):prev])
		}
	}
	copy(v.c, o.c)
}

// Clone returns a deep, unshared copy of v, drawn from v's allocator when
// it is managed (so arena-backed detectors never fall back to the heap on
// the copy-on-write path).
func (v *VC) Clone() *VC {
	if v.alloc != nil {
		n := v.alloc.NewVC(len(v.c))
		copy(n.c, v.c)
		return n
	}
	n := &VC{c: make([]uint64, len(v.c))}
	copy(n.c, v.c)
	return n
}

// Shared reports whether the clock is marked as shared.
func (v *VC) Shared() bool { return v.shared }

// SetShared marks the clock shared. There is no way to unmark a clock;
// Clone returns a fresh unshared copy instead.
func (v *VC) SetShared() { v.shared = true }

// Equal reports pointwise equality (treating missing entries as 0).
func (v *VC) Equal(o *VC) bool { return v.Leq(o) && o.Leq(v) }

// MemoryWords approximates the clock's footprint in 8-byte words, used by
// the space accountant reproducing Figure 10.
func (v *VC) MemoryWords() int { return len(v.c) + 2 }

func (v *VC) grow(n int) {
	if n <= len(v.c) {
		return
	}
	if cap(v.c) >= n {
		v.c = v.c[:n]
		return
	}
	c := make([]uint64, n, max(n, 2*cap(v.c)))
	copy(c, v.c)
	v.c = c
}

func (v *VC) mustOwn() {
	if v.shared {
		panic("vclock: mutation of shared vector clock (clone first)")
	}
}

// String renders the clock as ⟨c0 c1 …⟩.
func (v *VC) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, c := range v.c {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteString("⟩")
	return b.String()
}
