package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// vcFromShorts builds a bounded-width VC from fuzz input.
func vcFromShorts(vals []uint16) *VC {
	v := New(0)
	for i, x := range vals {
		if i >= 24 {
			break
		}
		v.Set(Thread(i), uint64(x))
	}
	return v
}

func TestVCGetSetGrow(t *testing.T) {
	v := New(2)
	if v.Get(0) != 0 || v.Get(5) != 0 {
		t.Fatal("fresh clock not zero")
	}
	v.Set(5, 7)
	if v.Get(5) != 7 {
		t.Fatalf("Get(5) = %d, want 7", v.Get(5))
	}
	if v.Len() != 6 {
		t.Fatalf("Len = %d, want 6", v.Len())
	}
	v.Inc(5)
	v.Inc(9)
	if v.Get(5) != 8 || v.Get(9) != 1 {
		t.Fatal("Inc misbehaved")
	}
}

func TestVCJoinBasics(t *testing.T) {
	a := FromSlice([]uint64{1, 5, 0})
	b := FromSlice([]uint64{3, 2, 0, 7})
	changed := a.JoinFrom(b)
	if !changed {
		t.Error("join should report change")
	}
	want := []uint64{3, 5, 0, 7}
	for i, w := range want {
		if a.Get(Thread(i)) != w {
			t.Errorf("a[%d] = %d, want %d", i, a.Get(Thread(i)), w)
		}
	}
	// Joining again is idempotent and reports no change.
	if a.JoinFrom(b) {
		t.Error("second join should be a no-op")
	}
}

func TestVCJoinCommutative(t *testing.T) {
	f := func(x, y []uint16) bool {
		a, b := vcFromShorts(x), vcFromShorts(y)
		ab := a.Clone()
		ab.JoinFrom(b)
		ba := b.Clone()
		ba.JoinFrom(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVCJoinAssociative(t *testing.T) {
	f := func(x, y, z []uint16) bool {
		a, b, c := vcFromShorts(x), vcFromShorts(y), vcFromShorts(z)
		l := a.Clone()
		l.JoinFrom(b)
		l.JoinFrom(c)
		bc := b.Clone()
		bc.JoinFrom(c)
		r := a.Clone()
		r.JoinFrom(bc)
		return l.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVCJoinIsLeastUpperBound(t *testing.T) {
	f := func(x, y []uint16) bool {
		a, b := vcFromShorts(x), vcFromShorts(y)
		j := a.Clone()
		j.JoinFrom(b)
		return a.Leq(j) && b.Leq(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVCJoinChangedIffNotLeq(t *testing.T) {
	// JoinFrom reports a change exactly when o ⋢ v — the fact PACER's
	// version optimization relies on (a skipped join must be a no-op).
	f := func(x, y []uint16) bool {
		a, b := vcFromShorts(x), vcFromShorts(y)
		leq := b.Leq(a)
		changed := a.JoinFrom(b)
		return changed == !leq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVCLeqPartialOrder(t *testing.T) {
	f := func(x, y, z []uint16) bool {
		a, b, c := vcFromShorts(x), vcFromShorts(y), vcFromShorts(z)
		// Reflexive.
		if !a.Leq(a) {
			return false
		}
		// Antisymmetric (up to Equal).
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) {
			return false
		}
		// Transitive.
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVCLeqDifferentLengths(t *testing.T) {
	short := FromSlice([]uint64{1, 2})
	long := FromSlice([]uint64{1, 2, 0, 0})
	if !short.Leq(long) || !long.Leq(short) {
		t.Error("trailing zeros must not affect ⊑")
	}
	long2 := FromSlice([]uint64{1, 2, 0, 1})
	if long2.Leq(short) {
		t.Error("⟨1 2 0 1⟩ ⊑ ⟨1 2⟩ should be false")
	}
	if !short.Leq(long2) {
		t.Error("⟨1 2⟩ ⊑ ⟨1 2 0 1⟩ should be true")
	}
}

func TestVCCopyFromIsDeep(t *testing.T) {
	a := FromSlice([]uint64{1, 2, 3})
	b := New(0)
	b.CopyFrom(a)
	a.Set(1, 99)
	if b.Get(1) != 2 {
		t.Error("CopyFrom leaked shared storage")
	}
}

func TestVCCloneIsDeepAndUnshared(t *testing.T) {
	a := FromSlice([]uint64{4, 5})
	a.SetShared()
	c := a.Clone()
	if c.Shared() {
		t.Error("clone should start unshared")
	}
	c.Set(0, 100)
	if a.Get(0) != 4 {
		t.Error("clone leaked into original")
	}
}

func TestSharedVCMutationPanics(t *testing.T) {
	v := FromSlice([]uint64{1})
	v.SetShared()
	mustPanic(t, "Inc on shared", func() { v.Inc(0) })
	mustPanic(t, "Set on shared", func() { v.Set(0, 2) })
	mustPanic(t, "JoinFrom on shared", func() { v.JoinFrom(FromSlice([]uint64{5})) })
	mustPanic(t, "CopyFrom on shared", func() { v.CopyFrom(FromSlice([]uint64{5})) })
	// Reads remain fine.
	if v.Get(0) != 1 {
		t.Error("read of shared clock failed")
	}
}

func TestVCEqualQuick(t *testing.T) {
	f := func(x []uint16) bool {
		a := vcFromShorts(x)
		return a.Equal(a.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVCGrowPreservesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := New(0)
	want := map[Thread]uint64{}
	for i := 0; i < 1000; i++ {
		th := Thread(rng.Intn(500))
		c := rng.Uint64() % 1000
		v.Set(th, c)
		want[th] = c
	}
	for th, c := range want {
		if v.Get(th) != c {
			t.Fatalf("v[%d] = %d, want %d", th, v.Get(th), c)
		}
	}
}

func TestVCString(t *testing.T) {
	if got := FromSlice([]uint64{1, 0, 3}).String(); got != "⟨1 0 3⟩" {
		t.Errorf("String() = %q", got)
	}
}

func TestVCMemoryWords(t *testing.T) {
	if w := FromSlice([]uint64{1, 2, 3}).MemoryWords(); w != 5 {
		t.Errorf("MemoryWords = %d, want 5", w)
	}
}

func TestVCCopyFromReusesCapacity(t *testing.T) {
	a := FromSlice([]uint64{1, 2, 3, 4})
	b := FromSlice([]uint64{9, 9})
	a.CopyFrom(b) // shrink into existing capacity
	if a.Len() != 2 || a.Get(0) != 9 || a.Get(2) != 0 {
		t.Errorf("CopyFrom shrink wrong: %v", a)
	}
	c := New(0)
	c.CopyFrom(FromSlice([]uint64{7, 8, 9})) // grow beyond capacity
	if c.Get(2) != 9 {
		t.Error("CopyFrom grow wrong")
	}
}

// TestUnshare pins the copy-on-write reclamation rule: heap clocks keep
// the paper's sticky shared mark for life, while a managed clock whose
// holder count has returned to one is provably exclusive again and may
// clear the mark and mutate in place.
func TestUnshare(t *testing.T) {
	h := New(4)
	h.SetShared()
	if h.Unshare() {
		t.Fatal("heap clock must keep its sticky shared mark")
	}

	m := NewManaged(make([]uint64, 4), Heap)
	if !m.Unshare() {
		t.Fatal("a never-shared clock is trivially exclusive")
	}
	m.SetShared()
	m.Retain() // a sync object stores a second reference
	if m.Unshare() {
		t.Fatal("an aliased clock must stay shared")
	}
	m.Release() // the alias is dropped; the sole holder remains
	if !m.Unshare() {
		t.Fatal("the sole holder must reclaim the clock")
	}
	if m.Shared() {
		t.Fatal("reclaimed clock still marked shared")
	}
	m.Inc(0) // mutable again — Inc panics on shared clocks
	if m.Get(0) != 1 {
		t.Fatalf("reclaimed clock lost content: %v", m)
	}
}
