package vclock

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkTree verifies the structural invariants of a tree-backed clock:
// the index covers every nonzero entry, membership matches reachability,
// links are mutually consistent, child lists are in non-increasing attach
// order, the running sum matches the entries, and owned clocks are rooted
// at their owner with the label counter current.
func checkTree(t *testing.T, v *VC, where string) {
	t.Helper()
	tr := v.tr
	if tr == nil {
		return
	}
	// The aux vectors move in lockstep and never trail the entry array
	// (they may stay wider after a shrinking copy, with a zeroed tail).
	W := len(tr.lbl.c)
	for _, a := range []*VC{tr.ack, tr.pn, tr.hp} {
		if len(a.c) != W {
			t.Fatalf("%s: aux widths diverge: %d vs %d", where, len(a.c), W)
		}
	}
	if W < len(v.c) {
		t.Fatalf("%s: aux width %d trails clock width %d", where, W, len(v.c))
	}
	var sum uint64
	for i, c := range v.c {
		sum += c
		if c > 0 && tr.lbl.c[i] == 0 {
			t.Fatalf("%s: entry %d=%d has no node (COVER)", where, i, c)
		}
	}
	if sum != tr.sum {
		t.Fatalf("%s: sum %d != Σc %d", where, tr.sum, sum)
	}
	if tr.owner >= 0 {
		if tr.root != tr.owner {
			t.Fatalf("%s: owned clock rooted at %d, owner %d", where, tr.root, tr.owner)
		}
		if tr.lbl.c[tr.owner] != tr.lclk {
			t.Fatalf("%s: owner label %d != lclk %d", where, tr.lbl.c[tr.owner], tr.lclk)
		}
	}
	seen := map[int32]bool{}
	var walk func(u int32)
	walk = func(u int32) {
		if seen[u] {
			t.Fatalf("%s: node %d reached twice", where, u)
		}
		seen[u] = true
		if tr.lbl.c[u] == 0 {
			t.Fatalf("%s: reachable node %d has label 0", where, u)
		}
		prevAck := ^uint64(0)
		prevChild := int32(-1)
		for w := tr.head(u); w >= 0; w = tr.next(w) {
			if tr.parent(w) != u {
				t.Fatalf("%s: child %d of %d has parent %d", where, w, u, tr.parent(w))
			}
			if tr.prev(w) != prevChild {
				t.Fatalf("%s: child %d of %d has prev %d, want %d", where, w, u, tr.prev(w), prevChild)
			}
			prevChild = w
			if tr.ack.c[w] == ackUnordered {
				// Unordered foreign edges live on the root side list only;
				// a child list must stay pure finite-ack or the early break
				// would be unsound.
				t.Fatalf("%s: unordered edge in a child list (%d under %d)", where, w, u)
			}
			if tr.ack.c[w] > prevAck {
				t.Fatalf("%s: children of %d out of attach order: %d after %d", where, u, tr.ack.c[w], prevAck)
			}
			prevAck = tr.ack.c[w]
			walk(w)
		}
	}
	if tr.root >= 0 {
		if tr.parent(tr.root) != treeNone {
			t.Fatalf("%s: root %d has a parent", where, tr.root)
		}
		walk(tr.root)
		prevInf := int32(-1)
		for w := tr.infHead; w >= 0; w = tr.next(w) {
			if tr.ack.c[w] != ackUnordered {
				t.Fatalf("%s: finite-ack node %d on the unordered side list", where, w)
			}
			if tr.parent(w) != tr.root {
				t.Fatalf("%s: side-list node %d has parent %d, want root %d", where, w, tr.parent(w), tr.root)
			}
			if tr.prev(w) != prevInf {
				t.Fatalf("%s: side-list node %d has prev %d, want %d", where, w, tr.prev(w), prevInf)
			}
			prevInf = w
			walk(w)
		}
	} else if tr.infHead >= 0 {
		t.Fatalf("%s: empty tree with a non-empty side list (head %d)", where, tr.infHead)
	}
	for i := range v.c {
		if (tr.lbl.c[i] != 0) != seen[int32(i)] {
			t.Fatalf("%s: node %d: label %d but reachable=%v", where, i, tr.lbl.c[i], seen[int32(i)])
		}
	}
}

// clockSim drives an identical operation stream through a tree-backed
// clock set and a flat shadow set, comparing element-for-element after
// every operation. It models the detectors' usage: owned thread clocks,
// lock clocks written by release-copies, volatile clocks accumulating
// joins from several writers, PACER's copy-on-write snapshots, and
// PACER's inc elision outside sampling periods.
type clockSim struct {
	t              *testing.T
	threads, locks int
	vols           int
	tree, flat     []*VC
	ta             Allocator
	ops            int
}

func newClockSim(t *testing.T, ta Allocator, threads, locks, vols int) *clockSim {
	s := &clockSim{t: t, threads: threads, locks: locks, vols: vols, ta: ta}
	n := threads + locks + vols
	s.tree = make([]*VC, n)
	s.flat = make([]*VC, n)
	for i := 0; i < threads; i++ {
		c := ta.NewVC(i + 1)
		c.SetOwner(Thread(i))
		c.Set(Thread(i), 1)
		s.tree[i] = c
		f := New(i + 1)
		f.Set(Thread(i), 1)
		s.flat[i] = f
	}
	for i := threads; i < n; i++ {
		s.tree[i] = ta.NewVC(0)
		s.flat[i] = New(0)
	}
	return s
}

// own prepares clock i for mutation, cloning a shared snapshot first
// (PACER's copy-on-write rule).
func (s *clockSim) own(i int) {
	if s.tree[i].Shared() {
		s.tree[i] = s.tree[i].Clone()
		if i < s.threads {
			// The thread's copy-on-write continuation reclaims its label
			// stream; sync-side clones stay ownerless.
			s.tree[i].SetOwner(Thread(i))
		}
	}
	if s.flat[i].Shared() {
		s.flat[i] = s.flat[i].Clone()
	}
}

func (s *clockSim) join(dst, src int) {
	s.own(dst)
	ct := s.tree[dst].JoinFrom(s.tree[src])
	cf := s.flat[dst].JoinFrom(s.flat[src])
	if ct != cf {
		s.t.Fatalf("op %d: JoinFrom(%d←%d) changed=%v, flat says %v", s.ops, dst, src, ct, cf)
	}
}

func (s *clockSim) copy(dst, src int) {
	s.own(dst)
	s.tree[dst].CopyFrom(s.tree[src])
	s.flat[dst].CopyFrom(s.flat[src])
}

func (s *clockSim) inc(t int) {
	s.own(t)
	s.tree[t].Inc(Thread(t))
	s.flat[t].Inc(Thread(t))
}

// share marks clock src shared and stores a shallow alias in dst (PACER's
// non-sampling release). The flat shadow stores a deep copy, which has the
// same contents by definition.
func (s *clockSim) share(dst, src int) {
	s.tree[src].SetShared()
	s.tree[dst] = s.tree[src]
	s.flat[dst] = s.flat[src].Clone()
}

func (s *clockSim) verify() {
	s.t.Helper()
	for i := range s.tree {
		tc, fc := s.tree[i], s.flat[i]
		w := max(tc.Len(), fc.Len())
		for j := 0; j < w; j++ {
			if tc.Get(Thread(j)) != fc.Get(Thread(j)) {
				s.t.Fatalf("op %d: clock %d entry %d: tree %d, flat %d\n tree %v\n flat %v",
					s.ops, i, j, tc.Get(Thread(j)), fc.Get(Thread(j)), tc, fc)
			}
		}
		checkTree(s.t, tc, fmt.Sprintf("op %d clock %d", s.ops, i))
	}
	// Order queries must agree too (they exercise the O(1) certificate).
	for a := 0; a < s.threads; a++ {
		for b := 0; b < s.threads; b++ {
			if got, want := s.tree[a].Leq(s.tree[b]), s.flat[a].Leq(s.flat[b]); got != want {
				s.t.Fatalf("op %d: Leq(%d,%d): tree %v, flat %v", s.ops, a, b, got, want)
			}
		}
	}
}

// step interprets one operation from three driver values.
func (s *clockSim) step(op, x, y int) {
	T, L := s.threads, s.locks
	t0 := x % T
	switch op % 8 {
	case 0: // acquire: C_t ⊔= C_m
		s.join(t0, T+y%L)
	case 1: // release: C_m ← C_t, inc
		s.copy(T+y%L, t0)
		s.inc(t0)
	case 2: // release with elided inc (PACER outside sampling)
		s.copy(T+y%L, t0)
	case 3: // volatile read: C_t ⊔= C_vx
		s.join(t0, T+L+y%s.vols)
	case 4: // volatile write: C_vx ⊔= C_t, maybe elided inc
		s.join(T+L+y%s.vols, t0)
		if y%3 != 0 {
			s.inc(t0)
		}
	case 5: // thread-to-thread (fork/join shapes)
		u := y % T
		if u != t0 {
			s.join(t0, u)
			if y%2 == 0 {
				s.inc(u)
			}
		}
	case 6: // inc
		s.inc(t0)
	case 7: // shallow snapshot share (non-sampling copyToSync)
		s.share(T+y%L, t0)
	}
	s.ops++
}

// TestTreeClockDifferential pins the tree representation element-for-
// element against the flat vector clock across randomized detector-shaped
// operation streams, including PACER's elided increments and copy-on-write
// snapshots — the regime where value-based pruning would be unsound.
func TestTreeClockDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := newClockSim(t, Tree(Heap), 2+int(seed%7), 3, 2)
			for i := 0; i < 1200; i++ {
				s.step(rng.Intn(8), rng.Intn(1<<16), rng.Intn(1<<16))
				if i%7 == 0 || testing.Short() == false && i < 50 {
					s.verify()
				}
			}
			s.verify()
		})
	}
}

// TestTreeClockDegradation pins the safety valve: mutations the index
// cannot track (arbitrary Set, joins from untracked clocks) degrade the
// clock to flat — with identical contents — instead of lying.
func TestTreeClockDegradation(t *testing.T) {
	ta := Tree(Heap)
	a := ta.NewVC(0)
	a.SetOwner(0)
	a.Set(0, 1)
	a.Inc(0)
	if !a.TreeBacked() {
		t.Fatal("owned clock lost its index on Inc")
	}
	a.Set(3, 7) // arbitrary assignment: untrackable
	if a.TreeBacked() {
		t.Fatal("arbitrary Set must degrade the index")
	}
	if a.Get(0) != 2 || a.Get(3) != 7 {
		t.Fatalf("degradation changed contents: %v", a)
	}

	b := ta.NewVC(0)
	b.SetOwner(1)
	b.Set(1, 1)
	if changed := b.JoinFrom(a); !changed {
		t.Fatal("join from flat clock lost content")
	}
	if b.TreeBacked() {
		t.Fatal("join from an untracked clock must degrade the destination")
	}
	if b.Get(0) != 2 || b.Get(1) != 1 || b.Get(3) != 7 {
		t.Fatalf("flat fallback join wrong: %v", b)
	}

	// A subsumed untracked source does not cost the index.
	c := ta.NewVC(0)
	c.SetOwner(2)
	c.Set(2, 1)
	empty := New(4)
	if c.JoinFrom(empty) {
		t.Fatal("empty join reported a change")
	}
	if !c.TreeBacked() {
		t.Fatal("subsumed flat source dropped the index needlessly")
	}

	// CopyFrom from a tracked clock restores an index on a capable clock.
	a.CopyFrom(b)
	if a.TreeBacked() {
		t.Fatal("copying an untracked clock must not resurrect an index")
	}
}

// TestTreeClockVersionVectorsStayFlat pins that clocks used as version
// vectors (arbitrary Set, never SetOwner) never materialize an index.
func TestTreeClockVersionVectorsStayFlat(t *testing.T) {
	ta := Tree(Heap)
	v := ta.NewVC(0)
	v.Set(3, 1)
	v.Set(0, 2)
	v.Inc(3)
	if v.TreeBacked() {
		t.Fatal("version-vector usage materialized an index")
	}
	if v.Get(3) != 2 || v.Get(0) != 2 {
		t.Fatalf("flat semantics broken: %v", v)
	}
}

// TestTreeClockMonotoneCopyAllocs pins the monotone-copy fast path at zero
// allocations per operation once widths are stable: the release-pattern
// copy (destination subsumed by source) and the subsumed join must both
// run allocation-free on the heap-backed tree allocator.
func TestTreeClockMonotoneCopyAllocs(t *testing.T) {
	ta := Tree(Heap)
	th := ta.NewVC(0)
	th.SetOwner(0)
	th.Set(0, 1)
	other := ta.NewVC(0)
	other.SetOwner(1)
	other.Set(1, 1)
	th.JoinFrom(other)
	lock := ta.NewVC(0)
	lock.CopyFrom(th) // warm: adopt index, size scratch
	th.Inc(0)
	lock.CopyFrom(th)

	if n := testing.AllocsPerRun(200, func() {
		th.Inc(0)
		lock.CopyFrom(th) // one changed entry
	}); n != 0 {
		t.Fatalf("monotone copy allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		th.JoinFrom(lock) // fully subsumed: O(1) certificate
	}); n != 0 {
		t.Fatalf("subsumed join allocates %v/op, want 0", n)
	}
	if !lock.Equal(th) || !lock.TreeBacked() {
		t.Fatalf("fast-path copies diverged: %v vs %v", lock, th)
	}
}

// FuzzTreeClock feeds arbitrary operation streams through the
// differential simulator: any element-level divergence between the tree
// representation and the flat reference, any changed-bit disagreement,
// or any structural invariant violation fails.
func FuzzTreeClock(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{1, 0, 0, 0, 7, 9, 1, 1, 1, 0, 2, 2})
	f.Add([]byte{7, 3, 1, 0, 5, 5, 2, 4, 4, 4, 6, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*400 {
			data = data[:3*400]
		}
		s := newClockSim(t, Tree(Heap), 5, 3, 2)
		for i := 0; i+2 < len(data); i += 3 {
			s.step(int(data[i]), int(data[i+1]), int(data[i+2]))
		}
		s.verify()
	})
}
