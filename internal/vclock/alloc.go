package vclock

// Allocator supplies vector-clock storage. The package-level functions New,
// FromSlice, and friends use the Go heap (the default every detector gets);
// internal/arena provides slab-backed allocators that recycle clock storage
// through per-shard free lists.
//
// A clock owned by an allocator is "managed": it carries a holder count,
// and the last holder's Release hands the clock back to its allocator via
// Recycle. Unmanaged (heap) clocks ignore Retain/Release entirely — the
// garbage collector reclaims them — so code written against the
// retain/release protocol runs unchanged, and allocation-free, on the
// default heap path.
type Allocator interface {
	// NewVC returns an unshared clock of length n, all entries zero, with
	// exactly one holder (the caller).
	NewVC(n int) *VC
	// Recycle reclaims v's storage after its last holder released it. The
	// clock must not be used afterwards; allocators are expected to poison
	// it (Scrub) so a stale holder fails loudly instead of corrupting a
	// reused slab.
	Recycle(v *VC)
}

// Heap is the heap-backed Allocator: NewVC is New, and Recycle is a no-op
// because the garbage collector owns the storage. It exists so callers can
// treat "no arena configured" uniformly; clocks it returns are unmanaged.
var Heap Allocator = heapAllocator{}

type heapAllocator struct{}

func (heapAllocator) NewVC(n int) *VC { return New(n) }
func (heapAllocator) Recycle(*VC)     {}

// NewManaged returns an unshared clock owned by alloc, backed by limbs,
// with one holder. It is the constructor arena allocators use for a fresh
// slab; recycled slabs are revived with Reinit instead.
func NewManaged(limbs []uint64, alloc Allocator) *VC {
	return &VC{c: limbs, alloc: alloc, ref: 1}
}

// Managed reports whether the clock is owned by an allocator.
func (v *VC) Managed() bool { return v.alloc != nil }

// Retain adds a holder to a managed clock; a no-op for heap clocks. A
// holder is a stored reference (a thread's clock field, a lock's clock
// field); transient locals under the detector's locking discipline need no
// holder of their own.
//
// Retain and Release require the same serialization the rest of the
// mutating VC API does: PACER only shares clocks on paths that hold the
// detector's exclusive lock, so the holder count needs no atomics.
func (v *VC) Retain() {
	if v.alloc == nil {
		return
	}
	if v.ref <= 0 {
		panic("vclock: retain of a recycled clock")
	}
	v.ref++
}

// Release drops one holder of a managed clock; the last release returns
// the clock to its allocator for recycling. A no-op for heap clocks and
// nil. Releasing more holders than were retained panics: a double free
// would otherwise recycle a slab some live holder still reads.
func (v *VC) Release() {
	if v == nil || v.alloc == nil {
		return
	}
	v.ref--
	switch {
	case v.ref == 0:
		v.alloc.Recycle(v)
	case v.ref < 0:
		panic("vclock: release of a clock with no holders (double free?)")
	}
}

// Holders returns the holder count of a managed clock (0 for heap clocks).
// It exists for allocator invariant tests.
func (v *VC) Holders() int {
	if v.alloc == nil {
		return 0
	}
	return int(v.ref)
}

// CapLimbs returns the clock's storage capacity in limbs, which is how an
// allocator classifies a recycled slab.
func (v *VC) CapLimbs() int { return cap(v.c) }

// Scrub zeroes the clock's full storage capacity and poisons its holder
// count. Allocators call it when parking a recycled slab on a free list:
// the zeroing keeps grow()'s zero-beyond-length invariant for the next
// user, and the poison makes a stale Release or Retain panic instead of
// silently corrupting whoever holds the slab next.
func (v *VC) Scrub() {
	v.dropTree()
	clear(v.c[:cap(v.c)])
	v.c = v.c[:0]
	v.shared = false
	v.ref = -1 << 30
}

// Reinit revives a scrubbed clock for reuse: unshared, one holder, length
// n (entries all zero — storage was zeroed by Scrub). The allocator must
// guarantee cap ≥ n.
func (v *VC) Reinit(n int) *VC {
	v.shared = false
	v.ref = 1
	v.c = v.c[:n]
	return v
}
