// Package vclock implements the clock machinery shared by all of the race
// detectors in this repository: vector clocks with copy-on-write sharing,
// epochs (c@t), read maps, version vectors, and version epochs.
//
// The terminology follows Bond, Coons, and McKinley, "PACER: Proportional
// Detection of Data Races" (PLDI 2010), which in turn builds on Flanagan and
// Freund's FastTrack (PLDI 2009).
package vclock

import "fmt"

// Thread identifies a logical thread. Thread identifiers are small dense
// integers assigned in fork order, starting at 0.
type Thread int32

// NoThread is the invalid thread identifier.
const NoThread Thread = -1

const (
	// epochThreadBits is the number of low bits of an Epoch that hold the
	// thread identifier. 22 bits allow ~4M threads, far more than the
	// paper's maximum of 403 total threads (hsqldb, Table 2).
	epochThreadBits = 22
	epochThreadMask = 1<<epochThreadBits - 1

	// MaxThreads is the largest number of threads an Epoch can name.
	MaxThreads = 1 << epochThreadBits

	// MaxClock is the largest clock value an Epoch can carry (42 bits).
	MaxClock = 1<<(64-epochThreadBits) - 1
)

// Epoch is a packed pair c@t: the clock value c of thread t at some moment.
// The zero value is the minimal epoch 0@0, written ⊥e in the paper; any
// epoch with clock 0 is minimal because thread clocks start at 1.
//
// FastTrack and PACER use epochs to represent a totally ordered last write
// (and, when reads are totally ordered, the last read) in O(1) space.
type Epoch uint64

// EpochZero is the minimal epoch 0@0 (⊥e).
const EpochZero Epoch = 0

// MakeEpoch packs clock value c of thread t into an Epoch.
func MakeEpoch(t Thread, c uint64) Epoch {
	if t < 0 || t >= MaxThreads {
		panic(fmt.Sprintf("vclock: thread %d out of epoch range", t))
	}
	if c > MaxClock {
		panic(fmt.Sprintf("vclock: clock %d overflows epoch", c))
	}
	return Epoch(c<<epochThreadBits | uint64(t))
}

// Thread returns the thread component t of the epoch c@t.
func (e Epoch) Thread() Thread { return Thread(e & epochThreadMask) }

// Clock returns the clock component c of the epoch c@t.
func (e Epoch) Clock() uint64 { return uint64(e >> epochThreadBits) }

// IsZero reports whether the epoch is minimal (clock 0), i.e. carries no
// access information.
func (e Epoch) IsZero() bool { return e.Clock() == 0 }

// Leq reports c@t ≼ V, i.e. c ≤ V(t). This is the constant-time ordering
// check of FastTrack Equation 4.
func (e Epoch) Leq(v *VC) bool { return e.Clock() <= v.Get(e.Thread()) }

// String renders the epoch in the paper's c@t notation.
func (e Epoch) String() string {
	return fmt.Sprintf("%d@%d", e.Clock(), e.Thread())
}

// VersionEpoch is a packed pair v@t naming version v of thread t's vector
// clock (Appendix A.2). It has two distinguished values:
//
//   - VEBottom (⊥ve, the zero value): v@t with v = 0; ⊥ve ≼ V always holds,
//     so a join against a clock tagged ⊥ve can always be skipped. PACER's
//     implementation represents this state as a null version epoch on a
//     lock that has never been released (its clock is still minimal).
//   - VETop (⊤ve): ⊤ve ≼ V never holds. PACER tags a volatile's clock with
//     ⊤ve once the clock is a join of several threads' clocks and therefore
//     no longer a snapshot of any single thread's clock (Algorithm 16).
type VersionEpoch uint64

const (
	// VEBottom is the minimal version epoch 0@0 (⊥ve).
	VEBottom VersionEpoch = 0
	// VETop is the maximal version epoch (⊤ve); VETop.Leq is never true.
	VETop VersionEpoch = ^VersionEpoch(0)
)

// MakeVersionEpoch packs version v of thread t into a VersionEpoch.
func MakeVersionEpoch(t Thread, v uint64) VersionEpoch {
	if t < 0 || t >= MaxThreads {
		panic(fmt.Sprintf("vclock: thread %d out of version epoch range", t))
	}
	if v > MaxClock {
		panic(fmt.Sprintf("vclock: version %d overflows version epoch", v))
	}
	ve := VersionEpoch(v<<epochThreadBits | uint64(t))
	if ve == VETop {
		panic("vclock: version epoch collides with ⊤ve")
	}
	return ve
}

// Thread returns the thread component of the version epoch. It must not be
// called on VETop.
func (ve VersionEpoch) Thread() Thread { return Thread(ve & epochThreadMask) }

// Version returns the version component of the version epoch. It must not
// be called on VETop.
func (ve VersionEpoch) Version() uint64 { return uint64(ve >> epochThreadBits) }

// IsTop reports whether the version epoch is ⊤ve.
func (ve VersionEpoch) IsTop() bool { return ve == VETop }

// Leq reports v@t ≼ V, i.e. v ≤ V(t) (Appendix Equation 6). It is false
// for ⊤ve and true for ⊥ve, matching the paper's definitions.
func (ve VersionEpoch) Leq(v *VC) bool {
	if ve == VETop {
		return false
	}
	return ve.Version() <= v.Get(ve.Thread())
}

// String renders the version epoch in v@t notation, or ⊤/⊥ for the
// distinguished values.
func (ve VersionEpoch) String() string {
	switch {
	case ve == VETop:
		return "⊤ve"
	case ve == VEBottom:
		return "⊥ve"
	default:
		return fmt.Sprintf("v%d@%d", ve.Version(), ve.Thread())
	}
}
