// Package oracle computes the exact ground truth a race detector run can
// be judged against: the complete multiset of racing access pairs of a
// trace under the happens-before relation, independent of any detector
// implementation.
//
// The oracle replays a trace with the textbook vector-clock rules (the
// same rules internal/generic implements, and the semantics of Appendix A)
// and, at every data access, compares the access against every earlier
// access to the same variable. Two accesses race when they conflict (at
// least one is a write) and neither happens before the other. Unlike
// dtest.HBOracle — which answers "is this one report a true race?" and
// needs a preprocessed unique-site trace — this oracle enumerates every
// racing pair of an arbitrary trace, so conformance tests can bound a
// detector from both sides:
//
//   - Precision: every reported distinct race (variable + unordered site
//     pair, the paper's Section 5.1 identity) must appear in the oracle's
//     pair set. This must hold for every precise backend at any rate.
//   - Exactness: at sampling rate 1.0 a precise-and-complete backend must
//     report at least one race on exactly the variables the oracle proves
//     racy (the classic "first race per variable" guarantee). Pair-level
//     equality is deliberately not demanded: detectors keep bounded
//     metadata (a last-write epoch, an adaptive read map), so racing pairs
//     whose first access was superseded are legitimately unreported.
//
// The enumeration is O(accesses²) per variable, which is fine for the
// test-sized traces the conformance corpus uses.
package oracle

import (
	"fmt"
	"sort"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Pair is the distinct identity of a ground-truth race: the variable and
// the unordered pair of access sites (SiteA ≤ SiteB). A single-site mirror
// race has SiteA == SiteB.
type Pair struct {
	Var          event.Var
	SiteA, SiteB event.Site
}

// MakePair normalizes a (variable, site, site) triple into a Pair.
func MakePair(v event.Var, a, b event.Site) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{Var: v, SiteA: a, SiteB: b}
}

// String renders the pair for diagnostics.
func (p Pair) String() string {
	return fmt.Sprintf("x%d (s%d, s%d)", p.Var, p.SiteA, p.SiteB)
}

// Report is the ground truth of one trace.
type Report struct {
	// Pairs is the race multiset: dynamic racing access pairs per distinct
	// identity.
	Pairs map[Pair]int
	// RacyVars marks every variable with at least one racing pair.
	RacyVars map[event.Var]bool
	// FirstRaceIdx is, per racy variable, the index of the event that
	// completed the variable's first racing pair — the earliest point any
	// complete detector can report it.
	FirstRaceIdx map[event.Var]int
	// Accesses is the number of data accesses in the trace.
	Accesses int
	// DynamicRaces is the total number of racing pairs (the multiset's
	// cardinality with multiplicity).
	DynamicRaces int
}

// access is one dynamic data access as the oracle recorded it.
type access struct {
	t     vclock.Thread
	write bool
	site  event.Site
	c     uint64 // the thread's own clock component at the access
}

// Analyze replays tr with the textbook vector-clock rules and returns its
// ground truth. Sampling events are ignored: the ground truth of a trace
// does not depend on when an analysis chose to look.
func Analyze(tr event.Trace) *Report {
	rep := &Report{
		Pairs:        make(map[Pair]int),
		RacyVars:     make(map[event.Var]bool),
		FirstRaceIdx: make(map[event.Var]int),
	}
	threads := map[vclock.Thread]*vclock.VC{}
	locks := map[event.Lock]*vclock.VC{}
	vols := map[event.Volatile]*vclock.VC{}
	hist := map[event.Var][]access{}
	clk := func(t vclock.Thread) *vclock.VC {
		c, ok := threads[t]
		if !ok {
			c = vclock.New(int(t) + 1)
			c.Set(t, 1)
			threads[t] = c
		}
		return c
	}
	lock := func(id event.Lock) *vclock.VC {
		c, ok := locks[id]
		if !ok {
			c = vclock.New(0)
			locks[id] = c
		}
		return c
	}
	vol := func(id event.Volatile) *vclock.VC {
		c, ok := vols[id]
		if !ok {
			c = vclock.New(0)
			vols[id] = c
		}
		return c
	}
	for i, e := range tr {
		switch e.Kind {
		case event.Read, event.Write:
			rep.Accesses++
			v := event.Var(e.Target)
			ct := clk(e.Thread)
			cur := access{
				t:     e.Thread,
				write: e.Kind == event.Write,
				site:  e.Site,
				c:     ct.Get(e.Thread),
			}
			for _, prev := range hist[v] {
				if !prev.write && !cur.write {
					continue // two reads do not conflict
				}
				// prev races cur iff prev does not happen before cur.
				// (prev precedes cur in the trace, so cur cannot happen
				// before prev; same-thread accesses are always ordered.)
				if prev.c > ct.Get(prev.t) {
					rep.Pairs[MakePair(v, prev.site, cur.site)]++
					rep.DynamicRaces++
					if !rep.RacyVars[v] {
						rep.RacyVars[v] = true
						rep.FirstRaceIdx[v] = i
					}
				}
			}
			hist[v] = append(hist[v], cur)
		case event.Acquire:
			clk(e.Thread).JoinFrom(lock(event.Lock(e.Target)))
		case event.Release:
			lock(event.Lock(e.Target)).CopyFrom(clk(e.Thread))
			clk(e.Thread).Inc(e.Thread)
		case event.Fork:
			u := vclock.Thread(e.Target)
			clk(u).JoinFrom(clk(e.Thread))
			clk(e.Thread).Inc(e.Thread)
		case event.Join:
			u := vclock.Thread(e.Target)
			clk(e.Thread).JoinFrom(clk(u))
			clk(u).Inc(u)
		case event.VolRead:
			clk(e.Thread).JoinFrom(vol(event.Volatile(e.Target)))
		case event.VolWrite:
			vol(event.Volatile(e.Target)).JoinFrom(clk(e.Thread))
			clk(e.Thread).Inc(e.Thread)
		}
	}
	return rep
}

// Holds reports whether a detector report names a distinct race the oracle
// proves real.
func (r *Report) Holds(race detector.Race) bool {
	return r.Pairs[MakePair(race.Var, race.FirstSite, race.SecondSite)] > 0
}

// SortedPairs returns the distinct ground-truth races in deterministic
// order, for stable diagnostics.
func (r *Report) SortedPairs() []Pair {
	out := make([]Pair, 0, len(r.Pairs))
	for p := range r.Pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var != out[j].Var {
			return out[i].Var < out[j].Var
		}
		if out[i].SiteA != out[j].SiteA {
			return out[i].SiteA < out[j].SiteA
		}
		return out[i].SiteB < out[j].SiteB
	})
	return out
}

// Check compares a detector run against the ground truth. Every violation
// is returned as a human-readable description; an empty slice means the
// run conforms.
//
// Precision (always checked): each reported race's (variable, unordered
// site pair) identity must be in the oracle's pair set.
//
// Exactness (checked when exact is true, i.e. for precise-and-complete
// backends at rate 1.0): the set of variables reported racy must equal the
// oracle's racy-variable set. Missing a racy variable is a completeness
// violation; an extra variable is a precision violation already caught by
// the pair check.
func (r *Report) Check(reported []detector.Race, exact bool) []string {
	var issues []string
	seen := map[event.Var]bool{}
	for _, race := range reported {
		seen[race.Var] = true
		if !r.Holds(race) {
			issues = append(issues, fmt.Sprintf(
				"precision: reported race %v is not in the happens-before ground truth", race))
		}
	}
	if exact {
		var missing []event.Var
		for v := range r.RacyVars {
			if !seen[v] {
				missing = append(missing, v)
			}
		}
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		for _, v := range missing {
			issues = append(issues, fmt.Sprintf(
				"completeness: variable x%d races (first racing pair completes at event %d) but the detector reported nothing on it",
				v, r.FirstRaceIdx[v]))
		}
	}
	return issues
}
