package oracle_test

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/generic"
	"pacer/internal/oracle"
)

// TestOracleHandScenarios pins the oracle's race multiset on hand-built
// traces with known ground truth.
func TestOracleHandScenarios(t *testing.T) {
	cases := []struct {
		name string
		tr   event.Trace
		want map[oracle.Pair]int
	}{
		{
			name: "GuardedHandoff",
			tr: dtest.NewTB().
				Fork(0, 1).
				Acq(0, 0).WriteAt(0, 0, 1).Rel(0, 0).
				Acq(1, 0).ReadAt(1, 0, 2).Rel(1, 0).
				Trace,
			want: map[oracle.Pair]int{},
		},
		{
			name: "UnguardedWW",
			tr: dtest.NewTB().
				Fork(0, 1).
				WriteAt(0, 0, 1).
				WriteAt(1, 0, 2).
				Trace,
			want: map[oracle.Pair]int{{Var: 0, SiteA: 1, SiteB: 2}: 1},
		},
		{
			name: "MirrorSingleSite",
			tr: dtest.NewTB().
				Fork(0, 1).
				WriteAt(0, 0, 9).
				WriteAt(1, 0, 9).
				Trace,
			want: map[oracle.Pair]int{{Var: 0, SiteA: 9, SiteB: 9}: 1},
		},
		{
			name: "ReadsDoNotConflict",
			tr: dtest.NewTB().
				Fork(0, 1).
				ReadAt(0, 0, 1).
				ReadAt(1, 0, 2).
				Trace,
			want: map[oracle.Pair]int{},
		},
		{
			name: "MultisetCountsEveryPair",
			// Two unsynchronized reads by t1 against one write by t0: two
			// dynamic write/read pairs, distinct sites.
			tr: dtest.NewTB().
				Fork(0, 1).
				WriteAt(0, 0, 1).
				ReadAt(1, 0, 2).ReadAt(1, 0, 3).
				Trace,
			want: map[oracle.Pair]int{
				{Var: 0, SiteA: 1, SiteB: 2}: 1,
				{Var: 0, SiteA: 1, SiteB: 3}: 1,
			},
		},
		{
			name: "RepeatedSiteAccumulates",
			// The same racing site pair twice: multiplicity 2.
			tr: dtest.NewTB().
				Fork(0, 1).
				WriteAt(0, 0, 1).
				ReadAt(1, 0, 2).ReadAt(1, 0, 2).
				Trace,
			want: map[oracle.Pair]int{{Var: 0, SiteA: 1, SiteB: 2}: 2},
		},
		{
			name: "VolatilePublishOrders",
			tr: dtest.NewTB().
				Fork(0, 1).
				WriteAt(0, 0, 1).VolWrite(0, 0).
				VolRead(1, 0).ReadAt(1, 0, 2).
				Trace,
			want: map[oracle.Pair]int{},
		},
		{
			name: "JoinOrders",
			tr: dtest.NewTB().
				Fork(0, 1).
				WriteAt(1, 0, 1).
				Join(0, 1).
				ReadAt(0, 0, 2).
				Trace,
			want: map[oracle.Pair]int{},
		},
		{
			name: "SameThreadNeverRaces",
			tr: dtest.NewTB().
				WriteAt(0, 0, 1).ReadAt(0, 0, 2).WriteAt(0, 0, 3).
				Trace,
			want: map[oracle.Pair]int{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := oracle.Analyze(tc.tr)
			if len(rep.Pairs) != len(tc.want) {
				t.Fatalf("got %d distinct pairs %v, want %d %v",
					len(rep.Pairs), rep.SortedPairs(), len(tc.want), tc.want)
			}
			for p, n := range tc.want {
				if rep.Pairs[p] != n {
					t.Errorf("pair %v: got multiplicity %d, want %d", p, rep.Pairs[p], n)
				}
			}
		})
	}
}

// TestOracleDifferentialGeneric cross-checks the oracle against the
// textbook vector-clock detector on random traces: every GENERIC report
// must be in the oracle's pair set (the oracle is complete), and GENERIC
// must report on exactly the oracle's racy variables (the oracle is not
// over-approximate — GENERIC is precise, so an oracle-racy variable that
// GENERIC never flags would mean a phantom oracle race).
func TestOracleDifferentialGeneric(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		tr := event.Generate(event.Racy(4, 600, seed))
		rep := oracle.Analyze(tr)
		col := dtest.Run(tr, func(r detector.Reporter) detector.Detector {
			return generic.New(r)
		})
		seen := map[event.Var]bool{}
		for _, r := range col.Dynamic {
			seen[r.Var] = true
			if !rep.Holds(r) {
				t.Fatalf("seed %d: generic reported %v, not in oracle ground truth %v",
					seed, r, rep.SortedPairs())
			}
		}
		for v := range rep.RacyVars {
			if !seen[v] {
				t.Fatalf("seed %d: oracle says x%d races (first pair at event %d) but generic never reported it",
					seed, v, rep.FirstRaceIdx[v])
			}
		}
		for v := range seen {
			if !rep.RacyVars[v] {
				t.Fatalf("seed %d: generic reported on x%d but oracle says it is race-free", seed, v)
			}
		}
	}
}

// TestOracleCheck exercises the Check verdict helper.
func TestOracleCheck(t *testing.T) {
	tr := dtest.NewTB().
		Fork(0, 1).
		WriteAt(0, 0, 1).
		WriteAt(1, 0, 2).
		Trace
	rep := oracle.Analyze(tr)
	real := detector.Race{Var: 0, FirstSite: 1, SecondSite: 2}
	phantom := detector.Race{Var: 0, FirstSite: 5, SecondSite: 6}
	if issues := rep.Check([]detector.Race{real}, true); len(issues) != 0 {
		t.Errorf("conforming run flagged: %v", issues)
	}
	if issues := rep.Check([]detector.Race{phantom}, false); len(issues) != 1 {
		t.Errorf("phantom report not flagged exactly once: %v", issues)
	}
	if issues := rep.Check(nil, true); len(issues) != 1 {
		t.Errorf("missed variable not flagged exactly once: %v", issues)
	}
	if issues := rep.Check(nil, false); len(issues) != 0 {
		t.Errorf("precision-only check flagged a miss: %v", issues)
	}
}
