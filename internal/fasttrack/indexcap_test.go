package fasttrack

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/detector/shardbase"
	"pacer/internal/event"
)

// TestFastTrackIndexCapSmall pins Options.IndexCap: variables below the
// cap are direct-indexed and their same-epoch repeats dismiss lock-free,
// variables at or above the cap never enter the index (TrySameEpoch must
// refuse them) yet still detect races through the locked path.
func TestFastTrackIndexCapSmall(t *testing.T) {
	c := detector.NewCollector()
	d := NewWithOptions(c.Report, Options{IndexCap: 4})
	d.EnsureThreadSlots(2)
	d.Fork(0, 1)

	low, high := event.Var(1), event.Var(1000)
	d.Write(0, low, 1, 0)
	d.Write(0, high, 2, 0)

	if !d.TrySameEpoch(0, low, true) {
		t.Error("below-cap variable not dismissible lock-free after its write")
	}
	if d.TrySameEpoch(0, high, true) {
		t.Error("above-cap variable was direct-indexed despite IndexCap")
	}

	// Both sides of the cap must detect the concurrent second write.
	d.Write(1, low, 3, 0)
	d.Write(1, high, 4, 0)
	seen := map[event.Var]bool{}
	for _, r := range c.Dynamic {
		seen[r.Var] = true
	}
	if !seen[low] || !seen[high] {
		t.Fatalf("races reported on %v, want both x%d and x%d", seen, low, high)
	}
}

// TestFastTrackIndexCapDisabled pins the negative-cap escape hatch: no
// variable is ever indexed, every same-epoch probe refuses, and detection
// is unchanged.
func TestFastTrackIndexCapDisabled(t *testing.T) {
	c := detector.NewCollector()
	d := NewWithOptions(c.Report, Options{IndexCap: -1})
	d.EnsureThreadSlots(2)
	d.Fork(0, 1)
	d.Write(0, 1, 1, 0)
	if d.TrySameEpoch(0, 1, true) {
		t.Error("negative IndexCap must disable the direct index")
	}
	d.Write(1, 1, 2, 0)
	if len(c.Dynamic) != 1 {
		t.Fatalf("got %d races, want 1", len(c.Dynamic))
	}
}

// TestFastTrackIndexCapDefault pins that the zero value keeps the
// original behavior: sequentially allocated identifiers are indexed.
func TestFastTrackIndexCapDefault(t *testing.T) {
	d := NewWithOptions(func(detector.Race) {}, Options{})
	if d.idx.Cap() != shardbase.DefaultIndexCap {
		t.Fatalf("zero Options.IndexCap resolved to %d, want the %d default",
			d.idx.Cap(), shardbase.DefaultIndexCap)
	}
	d.EnsureThreadSlots(1)
	d.Write(0, 7, 1, 0)
	if !d.TrySameEpoch(0, 7, true) {
		t.Error("default cap failed to index a small identifier")
	}
}
