package fasttrack_test

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
)

// TestFastTrackShardedContract pins the detector.Sharded surface: the
// shard count rounds to a power of two, ShardOf stays in range, the state
// word is the constant "always sampling" value, and the presence filter
// answers false exactly until a variable's first access installs metadata.
func TestFastTrackShardedContract(t *testing.T) {
	d := fasttrack.NewWithOptions(nil, fasttrack.Options{Shards: 6})
	var _ detector.Sharded = d

	if got := d.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 6 rounded up to 8", got)
	}
	for x := event.Var(0); x < 4096; x++ {
		if s := d.ShardOf(x); s < 0 || s >= d.Shards() {
			t.Fatalf("ShardOf(%d) = %d, outside [0, %d)", x, s, d.Shards())
		}
	}
	if w := d.StateWord(); w != 1 {
		t.Fatalf("StateWord() = %d, want the constant 1 (flag set, zero transitions)", w)
	}

	x := event.Var(42)
	if d.MetaPossible(x) {
		t.Fatal("MetaPossible true before any access")
	}
	d.Read(0, x, 1, 0)
	if !d.MetaPossible(x) {
		t.Fatal("MetaPossible false after a read installed a read-map entry")
	}
	if d.StateWord() != 1 {
		t.Fatal("StateWord changed: FASTTRACK never transitions")
	}

	// EnsureThreadSlots pre-grows the thread table; later first accesses by
	// those identifiers must work (and still start at the initial clock).
	d.EnsureThreadSlots(16)
	y := event.Var(7)
	d.Write(15, y, 2, 0)
	if !d.MetaPossible(y) {
		t.Fatal("MetaPossible false after a write installed a write epoch")
	}
}

// TestFastTrackSameEpochProbe pins the detector.EpochFast contract: the
// lock-free probe answers true exactly when the access would repeat the
// variable's current epoch (a guaranteed no-op), tracks epoch advances at
// synchronization operations, and is disabled by the ablation option.
func TestFastTrackSameEpochProbe(t *testing.T) {
	d := fasttrack.New(nil)
	var _ detector.EpochFast = d
	x := event.Var(3)

	// Before EnsureThreadSlots there is no published thread epoch.
	if d.TrySameEpoch(0, x, true) {
		t.Fatal("probe true before the thread table was announced")
	}
	d.EnsureThreadSlots(4)
	if d.TrySameEpoch(0, x, true) || d.TrySameEpoch(0, x, false) {
		t.Fatal("probe true before any access installed metadata")
	}

	d.Write(0, x, 1, 0)
	if !d.TrySameEpoch(0, x, true) {
		t.Fatal("repeat write in the same epoch not dismissable")
	}
	if d.TrySameEpoch(0, x, false) {
		t.Fatal("read dismissable though the write cleared the read map")
	}
	if d.TrySameEpoch(1, x, true) {
		t.Fatal("another thread's write dismissed against thread 0's epoch")
	}

	d.Read(0, x, 2, 0)
	if !d.TrySameEpoch(0, x, false) {
		t.Fatal("repeat read in the same epoch not dismissable")
	}

	// A release advances thread 0's epoch: nothing matches anymore.
	d.Acquire(0, 9)
	d.Release(0, 9)
	if d.TrySameEpoch(0, x, true) || d.TrySameEpoch(0, x, false) {
		t.Fatal("probe still true after the epoch advanced at a release")
	}
	// The next write settles the new epoch and reopens the fast path.
	d.Write(0, x, 3, 0)
	if !d.TrySameEpoch(0, x, true) {
		t.Fatal("write in the new epoch not dismissable after settling")
	}

	// A concurrent read by another thread inflates the read map: no single
	// read epoch, so read dismissal closes for everyone.
	d.Read(0, x, 4, 0)
	d.Read(1, x, 5, 0)
	if d.TrySameEpoch(0, x, false) || d.TrySameEpoch(1, x, false) {
		t.Fatal("read dismissed against a multi-entry read map")
	}

	// The ablation switch disables the probe entirely.
	da := fasttrack.NewWithOptions(nil, fasttrack.Options{DisableEpochFastPath: true})
	da.EnsureThreadSlots(2)
	da.Write(0, x, 1, 0)
	if da.TrySameEpoch(0, x, true) {
		t.Fatal("probe true with DisableEpochFastPath set")
	}
}

// TestFastTrackDefaultShards pins the default shard count shared with the
// PACER core, so the front-end's striped locks line up.
func TestFastTrackDefaultShards(t *testing.T) {
	if got := fasttrack.New(nil).Shards(); got != 64 {
		t.Fatalf("default Shards() = %d, want 64", got)
	}
}

// TestFastTrackShardedStatsAggregation checks that per-shard access
// counters and race counts roll up through the Stats snapshot exactly.
func TestFastTrackShardedStatsAggregation(t *testing.T) {
	var races int
	d := fasttrack.NewWithOptions(func(detector.Race) { races++ }, fasttrack.Options{Shards: 4})
	b := dtest.NewTB()
	for x := event.Var(0); x < 40; x++ {
		b.Write(0, x).Read(1, x) // 40 write-read races across the shards
	}
	detector.Replay(d, b.Trace)
	s := d.Stats()
	if s.TotalReads() != 40 || s.TotalWrites() != 40 {
		t.Errorf("aggregated counters: reads %d writes %d, want 40/40", s.TotalReads(), s.TotalWrites())
	}
	if s.Races != uint64(races) || races != 40 {
		t.Errorf("aggregated Races = %d, reporter saw %d, want 40", s.Races, races)
	}
	if d.VarsTracked() != 40 {
		t.Errorf("VarsTracked = %d, want 40", d.VarsTracked())
	}
	if d.MetadataWords() == 0 {
		t.Error("MetadataWords zero after tracking 40 vars")
	}
}

// TestFastTrackArenaDifferential runs the same trace through a heap-backed
// and an arena-backed detector: identical race multisets and metadata
// accounting, with the arena reporting live slabs only on the arena mount.
func TestFastTrackArenaDifferential(t *testing.T) {
	b := dtest.NewTB()
	for x := event.Var(0); x < 30; x++ {
		b.Write(0, x)
	}
	b.Acq(0, 9).Rel(0, 9).Acq(1, 9).Rel(1, 9)
	for x := event.Var(0); x < 30; x++ {
		b.Read(1, x).Write(1, x)
	}
	b.VolWrite(1, 3).VolRead(2, 3).Read(2, 5)

	heap := dtest.Run(b.Trace, func(r detector.Reporter) detector.Detector {
		return fasttrack.New(r)
	})
	arena := dtest.Run(b.Trace, func(r detector.Reporter) detector.Detector {
		return fasttrack.NewWithOptions(r, fasttrack.Options{Arena: true})
	})
	got, want := dtest.KeySet(arena.Dynamic), dtest.KeySet(heap.Dynamic)
	if len(got) != len(want) {
		t.Fatalf("arena found %d distinct races, heap %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("race %+v: heap reported %d, arena %d", k, n, got[k])
		}
	}

	dh := fasttrack.New(nil)
	da := fasttrack.NewWithOptions(nil, fasttrack.Options{Arena: true})
	detector.Replay(dh, b.Trace)
	detector.Replay(da, b.Trace)
	if dh.MetadataWords() != da.MetadataWords() {
		t.Errorf("MetadataWords differ: heap %d, arena %d", dh.MetadataWords(), da.MetadataWords())
	}
	if _, ok := dh.ArenaStats(); ok {
		t.Error("heap detector reports an arena")
	}
	st, ok := da.ArenaStats()
	if !ok {
		t.Fatal("arena detector reports no arena")
	}
	if st.SlabsLive == 0 {
		t.Error("arena detector holds no live slabs after tracking metadata")
	}
}
