package fasttrack_test

import (
	"fmt"
	"testing"

	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/generic"
	"pacer/internal/vclock"
)

func mk(r detector.Reporter) detector.Detector { return fasttrack.New(r) }

func TestWriteWriteRace(t *testing.T) {
	c := dtest.Run(dtest.NewTB().Write(0, 1).Write(1, 1).Trace, mk)
	if c.DynamicCount() != 1 || c.Dynamic[0].Kind != detector.WriteWrite {
		t.Fatalf("got %v", c.Dynamic)
	}
}

func TestWriteReadRace(t *testing.T) {
	c := dtest.Run(dtest.NewTB().Write(0, 1).Read(1, 1).Trace, mk)
	if c.DynamicCount() != 1 || c.Dynamic[0].Kind != detector.WriteRead {
		t.Fatalf("got %v", c.Dynamic)
	}
}

func TestReadWriteRace(t *testing.T) {
	c := dtest.Run(dtest.NewTB().Read(0, 1).Write(1, 1).Trace, mk)
	if c.DynamicCount() != 1 || c.Dynamic[0].Kind != detector.ReadWrite {
		t.Fatalf("got %v", c.Dynamic)
	}
}

func TestLockPreventsRace(t *testing.T) {
	b := dtest.NewTB().
		Acq(0, 9).Write(0, 1).Rel(0, 9).
		Acq(1, 9).Write(1, 1).Read(1, 1).Rel(1, 9)
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("lock-ordered accesses raced: %v", c.Dynamic)
	}
}

func TestForkJoinOrder(t *testing.T) {
	b := dtest.NewTB().Write(0, 1).Fork(0, 1).Write(1, 1).Join(0, 1).Read(0, 1)
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("fork/join-ordered accesses raced: %v", c.Dynamic)
	}
}

func TestVolatileSynchronizes(t *testing.T) {
	b := dtest.NewTB().
		Write(0, 1).VolWrite(0, 3).
		VolRead(1, 3).Write(1, 1)
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("volatile-ordered accesses raced: %v", c.Dynamic)
	}
}

func TestSameEpochFastPathNoDuplicateReports(t *testing.T) {
	// Repeated reads/writes by the same thread in the same epoch take the
	// no-action fast path; only the first conflicting access reports.
	b := dtest.NewTB().Write(0, 1).Read(1, 1).Read(1, 1).Read(1, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1 (same-epoch reads must not re-report)", c.DynamicCount())
	}
}

func TestConcurrentReadsInflateReadMap(t *testing.T) {
	// Three concurrent reads then a write concurrent with all: three
	// read-write races reported, one per read-map entry.
	b := dtest.NewTB().Read(0, 1).Read(1, 1).Read(2, 1).Write(3, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 3 {
		t.Fatalf("races = %d, want 3", c.DynamicCount())
	}
}

func TestReadMapCollapsesToEpoch(t *testing.T) {
	// Reads ordered by happens-before collapse the read map back to an
	// epoch: after t1's ordered read, t0's earlier read is forgotten, so a
	// write concurrent with t0 but ordered after t1 reports no race.
	b := dtest.NewTB().
		Read(0, 1).Rel(0, 5).
		Acq(1, 5).Read(1, 1).Rel(1, 6).
		Acq(2, 6).Write(2, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 0 {
		t.Fatalf("got %v, want no race (epoch collapse)", c.Dynamic)
	}
}

func TestLastWriteWinsSemantics(t *testing.T) {
	// FASTTRACK tracks only the last write: C ordered after B does not race
	// even though A and C are concurrent — (A, C) is not a shortest race
	// because B intervenes. (Contrast with GENERIC, which reports it.)
	b := dtest.NewTB().
		Write(0, 1).
		Write(1, 1).Rel(1, 5).
		Acq(2, 5).Write(2, 1)
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1 (only A vs B)", c.DynamicCount())
	}
	if r := c.Dynamic[0]; r.FirstThread != 0 || r.SecondThread != 1 {
		t.Errorf("unexpected race %v", r)
	}
}

func TestWriteClearsReadMap(t *testing.T) {
	// The paper's modified Algorithm 8 clears the read map at a write: a
	// later write ordered after the first write does not re-report the
	// discarded read.
	b := dtest.NewTB().
		Read(0, 1).
		Write(1, 1). // read-write race with t0; read map cleared
		Rel(1, 5).
		Acq(2, 5).Write(2, 1) // ordered after t1's write: no report
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1", c.DynamicCount())
	}
}

func TestKeepReadEpochOnWriteOption(t *testing.T) {
	// With the original FastTrack behaviour, a single-entry read map that
	// happens before the write survives it.
	mkOrig := func(r detector.Reporter) detector.Detector {
		return fasttrack.NewWithOptions(r, fasttrack.Options{KeepReadEpochOnWrite: true})
	}
	// t0 reads; t1 writes after t0 (ordered, so the read epoch either
	// survives — original — or is cleared — modified); t2 writes
	// concurrently with everything. The modified algorithm reports only the
	// write-write race; the original additionally re-reports the surviving
	// read against t2's write. Both reports are true races; the modified
	// algorithm reports only the shortest one.
	b := dtest.NewTB().Read(0, 1).Rel(0, 5).Acq(1, 5).Write(1, 1).Write(2, 1)
	cMod := dtest.Run(b.Trace, mk)
	cOrig := dtest.Run(b.Trace, mkOrig)
	if cMod.DynamicCount() != 1 {
		t.Fatalf("modified reported %d races, want 1 (shortest only)", cMod.DynamicCount())
	}
	if cOrig.DynamicCount() != 2 {
		t.Fatalf("original reported %d races, want 2 (read epoch survives the write)", cOrig.DynamicCount())
	}
}

// The same-epoch fast path is a pure optimization up to each variable's
// first race: disabling it must not change which variables race or when
// their first race is detected. (After a variable's first race the two
// configurations may legitimately differ in which true races they
// re-report, so report multisets are not compared.)
func TestDisableEpochFastPathSameFirstRaces(t *testing.T) {
	mkSlow := func(r detector.Reporter) detector.Detector {
		return fasttrack.NewWithOptions(r, fasttrack.Options{DisableEpochFastPath: true})
	}
	for seed := int64(0); seed < 10; seed++ {
		tr := event.Generate(event.Racy(6, 3000, seed))
		fast := dtest.FirstRacePerVar(tr, mk)
		slow := dtest.FirstRacePerVar(tr, mkSlow)
		if len(fast) != len(slow) {
			t.Fatalf("seed %d: racy variable sets differ: %d vs %d", seed, len(fast), len(slow))
		}
		for v, i := range fast {
			if slow[v] != i {
				t.Fatalf("seed %d: first race on x%d at event %d (fast path) vs %d (no fast path)", seed, v, i, slow[v])
			}
		}
	}
}

func TestSynchronizedTracesAreRaceFree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := event.Generate(event.Synchronized(6, 4000, seed))
		if c := dtest.Run(tr, mk); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: false positive %v", seed, c.Dynamic[0])
		}
	}
}

// FASTTRACK and GENERIC agree on each variable's first race: same event
// index, same variable set (the precision equivalence FastTrack proves).
func TestFirstRaceAgreesWithGeneric(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		tr := event.Generate(event.GenConfig{
			Threads: 6, Vars: 10, Locks: 3, Volatiles: 2,
			Steps: 2500, PGuarded: 0.55, PWrite: 0.4, Seed: seed,
		})
		ft := dtest.FirstRacePerVar(tr, mk)
		gen := dtest.FirstRacePerVar(tr, func(r detector.Reporter) detector.Detector { return generic.New(r) })
		if len(ft) != len(gen) {
			t.Fatalf("seed %d: fasttrack found races on %d vars, generic on %d", seed, len(ft), len(gen))
		}
		for v, i := range ft {
			if gen[v] != i {
				t.Fatalf("seed %d: first race on x%d at event %d (fasttrack) vs %d (generic)", seed, v, i, gen[v])
			}
		}
	}
}

// Every FASTTRACK report is a true race: on traces where unsynchronized
// variables are disjoint from synchronized ones, reports must only name
// unsynchronized variables.
func TestPrecisionOnMixedTraces(t *testing.T) {
	// Build a trace interleaving a properly locked variable and a free one.
	b := dtest.NewTB()
	for i := 0; i < 50; i++ {
		th := vclock.Thread(i % 3)
		b.Acq(th, 1).Write(th, 100).Rel(th, 1)
		b.Write(th, 200) // unguarded
	}
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() == 0 {
		t.Fatal("expected races on the unguarded variable")
	}
	for _, r := range c.Dynamic {
		if r.Var != 200 {
			t.Fatalf("false positive on guarded variable: %v", r)
		}
	}
}

func TestStatsAndMetadata(t *testing.T) {
	d := fasttrack.New(nil)
	b := dtest.NewTB()
	for x := event.Var(0); x < 20; x++ {
		b.Write(0, x).Read(1, x)
	}
	detector.Replay(d, b.Trace)
	if d.Stats().TotalReads() != 20 || d.Stats().TotalWrites() != 20 {
		t.Error("access counters wrong")
	}
	if d.MetadataWords() == 0 {
		t.Error("metadata words is zero after tracking 20 vars")
	}
	if d.Name() != "fasttrack" {
		t.Error("wrong name")
	}
}

func ExampleDetector() {
	d := fasttrack.New(func(r detector.Race) { fmt.Println(r) })
	d.Write(0, 7, 11, 0)
	d.Write(1, 7, 22, 0)
	// Output: write-write race on x7: t0@s11 vs t1@s22
}
