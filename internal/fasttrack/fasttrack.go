// Package fasttrack implements the FASTTRACK race detector of Flanagan and
// Freund as presented in Section 2.2 of the PACER paper (Algorithms 7-8).
// It replaces the write vector clock with an epoch and uses an adaptive
// read map, reducing nearly all read/write analysis from O(n) to O(1).
//
// Following the paper, this implementation clears the read map at writes
// ("New: clear read map" in Algorithm 8) so that it corresponds directly
// with PACER; the original FastTrack behaviour is available via Options for
// the ablation benchmarks.
//
// The detector implements the detector.Sharded contract (stripe geometry,
// presence filter, state word, and thread publication all mounted from
// internal/detector/shardbase), so the concurrent public front-end drives
// it with the same striped reader-writer discipline as the PACER core:
// accesses to variables in distinct shards proceed in parallel while
// synchronization operations retain exclusive access. Unlike PACER,
// FASTTRACK has no non-sampling periods — every access creates or updates
// metadata — so the published sampling flag is constantly set and the
// front-end's lock-free no-metadata dismissal never fires (dismissing a
// first access would lose the read-map entry or write epoch it must
// install). What an always-on detector can dismiss without a lock is its
// own same-epoch no-op, the dominant case FastTrack was built around; the
// detector.EpochFast capability publishes per-variable epoch mirrors so the
// front-end serves exactly that case with a handful of atomic loads.
//
// What EpochFast cannot dismiss — chiefly the shared-read case, where a
// multi-entry read map publishes no mirror — is served by the SmartTrack-
// style owned-access path (detector.OwnedAccess): a per-variable ownership
// word claimed by CompareAndSwap lets one access run the full analysis and
// update lock-free, falling back to the locked slow path on contention or
// whenever a race would have to be reported.
package fasttrack

import (
	"sync"
	"sync/atomic"

	"pacer/internal/arena"
	"pacer/internal/detector"
	"pacer/internal/detector/shardbase"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Options tune the detector: sharding and allocation for production
// mounts, the remaining switches for ablation studies.
type Options struct {
	// KeepReadEpochOnWrite restores the original FastTrack behaviour of
	// leaving a single-entry read map in place at a write (the paper's
	// modified algorithm clears it). It also disables the owned-access
	// fast path, whose repeat-read dismissal relies on writes clearing the
	// read map.
	KeepReadEpochOnWrite bool
	// DisableEpochFastPath forces the full analysis even when the access
	// matches the variable's current epoch, for the ablation benchmark
	// measuring the value of FastTrack's same-epoch check. It also
	// disables the owned-access fast path, which extends the same check.
	DisableEpochFastPath bool
	// DisableOwnedFastPath ablates the owned-access (CAS read-map) fast
	// path only, leaving the epoch mirrors active — the middle column of
	// the contention benchmark.
	DisableOwnedFastPath bool
	// Shards is the number of independent variable-metadata shards
	// (rounded up to a power of two, default 64). Accesses to variables in
	// distinct shards may run concurrently under the locking contract
	// described on Detector.
	Shards int
	// Arena backs vector clocks and variable records with a slab arena
	// (internal/arena) striped like the variable shards. FASTTRACK never
	// discards metadata, so nothing is ever recycled back to a free list;
	// the benefit is size-class capacity headroom on clock growth and
	// uniform arena accounting in Stats. Race reports are identical either
	// way (the differential suite enforces this).
	Arena bool
	// IndexCap bounds the direct-indexed variable table behind the
	// same-epoch fast path: variables with identifiers at or above the cap
	// are never indexed and always take the locked path (correct, just
	// slower). 0 selects the default (1<<22); negative disables the index
	// entirely. Lowering the cap bounds the fast-path table's worst-case
	// memory for workloads with huge sparse identifier spaces.
	IndexCap int
	// Clock selects the timestamp representation: "" or "flat" is the
	// plain vector clock; "tree" mounts the last-update tree index
	// (vclock.Tree), making synchronization joins and release copies cost
	// proportional to the entries that changed instead of the thread
	// count. Race reports are identical either way (the conformance
	// matrix enforces this).
	Clock string
}

// varShard is one slice of the variable-metadata table together with the
// access-path counters accumulated for it. The trailing pad keeps shards
// on distinct cache lines so parallel accesses do not false-share.
type varShard struct {
	vars  map[event.Var]*varMeta
	stats detector.Counters
	_     [64]byte
}

type varMeta struct {
	w     vclock.Epoch
	wSite event.Site
	r     vclock.ReadMap
	// own is the per-variable ownership word of the owned-access fast
	// path. The lock-free side claims it with a single CompareAndSwap
	// (TryLock) and falls back to the locked path when the claim fails;
	// the locked paths and exclusive accessors claim it blocking, so any
	// holder has exclusive access to w/wSite/r without the shard lock.
	own sync.Mutex
	// aw and ar are lock-free mirrors of the write epoch and the
	// single-entry read epoch (packed, zero meaning "no dismissal
	// possible"), read by TrySameEpoch without any lock. The paths that
	// mutate this record maintain them conservatively: cleared before the
	// underlying state mutates, republished only after it settles, so a
	// nonzero value always equals the settled state of the last mutating
	// operation.
	aw, ar atomic.Uint64
}

// publishMirrors republishes both epoch mirrors from the record's settled
// state. Called with the record owned (shard lock or ownership word),
// after every mutation.
func (m *varMeta) publishMirrors() {
	m.aw.Store(uint64(m.w))
	if m.r.Size() == 1 {
		m.ar.Store(uint64(m.r.Single().Epoch()))
	} else {
		m.ar.Store(0)
	}
}

// Detector is the FASTTRACK analysis. It is not safe for unrestricted
// concurrent use, but it admits the sharded reader-writer discipline of
// detector.Sharded, which the public pacer package exploits:
//
//   - Synchronization operations (Acquire, Release, Fork, Join, VolRead,
//     VolWrite), Stats, VarsTracked, and MetadataWords require exclusive
//     access (no other call in flight, owned accesses excepted — see
//     below).
//   - Read and Write may run concurrently with each other provided (a)
//     calls whose variables share a shard (ShardOf) are serialized by the
//     caller, (b) no exclusive-class call is in flight, (c) every thread
//     identifier was announced via EnsureThreadSlots (or a prior exclusive
//     call) before its first shared-mode access, and (d) a single thread's
//     operations are never issued concurrently with each other.
//
// Under that contract accesses only read their own thread's clock (stable
// between synchronization operations) and mutate per-shard state, so any
// interleaving is equivalent to some serialized execution of the same
// operations.
//
// StateWord, MetaPossible, TrySameEpoch, and TryOwnedAccess may be called
// lock-free at any time (TryOwnedAccess still under rule (d)). Because
// FASTTRACK analyzes every access, the state word's sampling flag is
// constantly set — callers implementing the PACER-shaped "skip when not
// sampling" dismissal therefore always fall through, which is the only
// sound behavior for an always-on detector whose first accesses install
// metadata. TrySameEpoch is the dismissal that is sound: it proves from the
// published epoch mirrors that the access repeats the variable's current
// epoch, making the analysis a guaranteed no-op. TryOwnedAccess goes one
// step further: it claims the variable's ownership word and, when the
// analysis reports no race, performs the full metadata update in place —
// every path that mutates or inspects a variable record (locked accesses,
// MetadataWords) claims the same word, so ownership confers exclusive
// access to the record without the shard lock.
type Detector struct {
	sync *detector.BaseSync
	// state publishes the sampling flag (bit 0) and a transition count
	// (upper bits). FASTTRACK never transitions, so the word is the
	// constant 1: flag set, zero transitions, trivially satisfying the
	// two-equal-loads protocol of the Sharded contract.
	state  shardbase.State
	geo    shardbase.Geometry
	shards []varShard
	// presence counts tracked variables per hash bucket, maintained
	// increment-before-insert so a zero read proves absence at the instant
	// of the load. FASTTRACK never discards metadata, so buckets never
	// decrement.
	presence *shardbase.Presence
	// idx is the grow-only direct index behind the lock-free fast paths:
	// variable identifier → metadata record, readable without any lock.
	idx *shardbase.Index[varMeta]
	// tpub publishes each thread's own epoch c@t (for the same-epoch
	// probe) and clock pointer (for the owned-access analysis). Grown only
	// by EnsureThreadSlots (exclusive access); slots are written by the
	// owning thread's operations — which the caller serializes — and read
	// lock-free only by that thread's own probes.
	tpub   shardbase.ThreadPub
	report detector.Reporter
	stats  detector.Counters // sync-path counters; access counters live per shard
	snap   detector.Counters // Stats() aggregation scratch
	opts   Options
	// ownedOK caches the option combination under which the owned-access
	// fast path is sound and enabled.
	ownedOK bool
	// arena and varPool back metadata allocation behind Options.Arena;
	// both nil on the default heap path.
	arena   *arena.Arena
	varPool *arena.Records[varMeta]
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
	_ detector.Sharded         = (*Detector)(nil)
	_ detector.EpochFast       = (*Detector)(nil)
	_ detector.OwnedAccess     = (*Detector)(nil)
	_ detector.ArenaAccounted  = (*Detector)(nil)
)

// New returns a FASTTRACK detector with default options.
func New(report detector.Reporter) *Detector {
	return NewWithOptions(report, Options{})
}

// NewWithOptions returns a FASTTRACK detector with explicit options.
func NewWithOptions(report detector.Reporter, opts Options) *Detector {
	geo := shardbase.NewGeometry(opts.Shards)
	d := &Detector{
		geo:      geo,
		shards:   make([]varShard, geo.Shards()),
		presence: shardbase.NewPresence(),
		idx:      shardbase.NewIndex[varMeta](opts.IndexCap),
		report:   report,
		opts:     opts,
		ownedOK: !opts.DisableOwnedFastPath && !opts.DisableEpochFastPath &&
			!opts.KeepReadEpochOnWrite,
	}
	for i := range d.shards {
		d.shards[i].vars = make(map[event.Var]*varMeta)
	}
	d.sync = detector.NewBaseSync(&d.stats)
	if opts.Arena {
		d.arena = arena.New(arena.Options{Shards: len(d.shards)})
		d.varPool = arena.NewRecords[varMeta](d.arena, func(m *varMeta) {
			m.w = 0
			m.wSite = 0
			m.r.Clear() // keeps the read map's spilled-map spare
			m.aw.Store(0)
			m.ar.Store(0)
		})
		d.sync.SetAllocator(d.arena.Shard)
	}
	if opts.Clock == "tree" {
		// Tree clocks wrap whatever allocator the options selected: the
		// index's aux vectors draw from the same slabs as the entry
		// arrays, so the arena path stays heap-free.
		if d.arena != nil {
			d.sync.SetAllocator(vclock.TreeStriped(d.arena.Shard))
		} else {
			d.sync.SetAllocator(vclock.TreeHeap(geo.Shards()))
		}
	}
	// Always-on: the sampling flag is set for the detector's whole life.
	d.state.SetAlwaysOn()
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "fasttrack" }

// Stats returns the detector's operation counters, aggregated across the
// variable shards. Exclusive access required; the returned pointer is to a
// snapshot that the next Stats call overwrites.
func (d *Detector) Stats() *detector.Counters {
	d.snap = d.stats
	for i := range d.shards {
		d.snap.Add(&d.shards[i].stats)
	}
	return &d.snap
}

// Shards returns the number of variable-metadata shards; the caller's
// striped locks must cover indices [0, Shards()).
func (d *Detector) Shards() int { return d.geo.Shards() }

// ShardOf maps a variable to its metadata shard.
func (d *Detector) ShardOf(x event.Var) int { return d.geo.ShardOf(x) }

// StateWord returns the atomically published sampling state. For FASTTRACK
// it is the constant 1 — flag bit set, zero transitions — because every
// access is analyzed.
func (d *Detector) StateWord() uint64 { return d.state.Word() }

// MetaPossible reports whether variable x might currently hold metadata.
// It is safe to call without any lock: a false result proves x held no
// metadata at the instant of the internal load; a true result may be a
// hash collision and only obliges the caller to take the slow path. (With
// the sampling flag constantly set, the front-end never consults this to
// dismiss an access; the filter is maintained so the Sharded contract's
// invariants hold regardless of the caller's probe order.)
func (d *Detector) MetaPossible(x event.Var) bool { return d.presence.Possible(x) }

// EnsureThreadSlots pre-grows the thread table to hold identifiers below
// n, so that shared-mode Read/Write calls never resize it. It also grows
// the published thread table the fast paths read (a thread with no slot
// simply never fast-paths). Requires exclusive access.
func (d *Detector) EnsureThreadSlots(n int) {
	d.sync.EnsureThreadSlots(n)
	d.tpub.Ensure(n)
}

// publishEpoch republishes thread t's own packed epoch c@t and clock
// pointer after an operation that may have advanced the epoch. The store
// is skipped when the published epoch is already current (shardbase does
// the compare), so republication is batched at the operations that
// actually advance t's clock — an acquire-heavy mix performs no stores.
// Entries are only ever written by operations of thread t itself (or
// operations ordered before t's first use, like the fork that created t),
// which the caller serializes.
func (d *Detector) publishEpoch(t vclock.Thread) {
	d.tpub.Publish(t, d.sync.ThreadClock(t))
}

// seedEpoch publishes thread t's epoch only if it has never been
// published — the SmartTrack-style trim of the access slow path. A
// thread's own epoch advances only at the synchronization operations that
// increment its clock (release, the forking side of fork, the joined side
// of join, volatile write), and every one of those republishes; between
// them the published epoch stays current by itself, so per-access
// republication reduces to one atomic load and a never-taken branch after
// the first access.
func (d *Detector) seedEpoch(t vclock.Thread) {
	if d.tpub.Epoch(t) == 0 {
		d.publishEpoch(t)
	}
}

// TrySameEpoch implements detector.EpochFast: a lock-free proof that the
// access repeats the variable's current epoch and the analysis would be a
// no-op (Algorithm 7/8, line 1 — the overwhelmingly common case). The
// thread's published epoch is stable during the call (only t's own
// operations advance it); a nonzero variable mirror equals the settled
// state of the last mutating operation on the variable, so a match
// linearizes the access right after that operation, where the serialized
// detector dismisses it without touching metadata.
func (d *Detector) TrySameEpoch(t vclock.Thread, x event.Var, write bool) bool {
	if d.opts.DisableEpochFastPath {
		return false
	}
	e := d.tpub.Epoch(t)
	if e == 0 {
		return false
	}
	m := d.idx.Lookup(x)
	if m == nil {
		return false
	}
	if write {
		return m.aw.Load() == e
	}
	return m.ar.Load() == e
}

// TryOwnedAccess implements detector.OwnedAccess, the SmartTrack-style
// exclusive-ownership fast path for what the epoch mirrors cannot dismiss
// — chiefly the shared-read case, where a multi-entry read map publishes
// no mirror. The variable's ownership word is claimed with one
// CompareAndSwap; on success the full FastTrack analysis runs against the
// thread's published clock (stable during the call: only t's own
// serialized operations mutate it), and when no race would be reported the
// metadata update is performed in place under the same mirror discipline
// as the locked path. Any potential race, a failed claim, or missing
// publication returns false with the record untouched — the locked path
// then redoes the analysis from the same settled state and reports through
// its usual channel.
func (d *Detector) TryOwnedAccess(t vclock.Thread, x event.Var, site event.Site, write bool) bool {
	if !d.ownedOK {
		return false
	}
	if d.tpub.Epoch(t) == 0 {
		return false
	}
	m := d.idx.Lookup(x)
	if m == nil {
		return false
	}
	ct := d.tpub.Clock(t)
	if ct == nil {
		return false
	}
	if !m.own.TryLock() {
		return false // contention: fall back to the locked path
	}
	var handled bool
	if write {
		handled = d.ownedWrite(m, t, ct, site)
	} else {
		handled = d.ownedRead(m, t, ct, site)
	}
	m.own.Unlock()
	return handled
}

// ownedRead is the owned-access read analysis. Caller holds m.own.
func (d *Detector) ownedRead(m *varMeta, t vclock.Thread, ct *vclock.VC, site event.Site) bool {
	c := ct.Get(t)
	// Same epoch, single entry: R_x = epoch(t) → no action, mirroring the
	// locked path's dismissal exactly (a multi-entry repeat read falls
	// through to the update so its recorded site is refreshed, like the
	// locked path and the PACER core).
	if m.r.Size() == 1 {
		if e := m.r.Single(); e.T == t && e.C == c {
			return true
		}
	}
	// check W_x ⊑ C_t; a racing write is reported by the locked path.
	if !m.w.Leq(ct) {
		return false
	}
	// The read map is about to change: close the lock-free read dismissal
	// until the new state is settled and republished.
	m.ar.Store(0)
	if m.r.Size() <= 1 && m.r.Leq(ct) {
		m.r.SetEpoch(vclock.ReadEntry{T: t, C: c, Site: uint32(site)})
	} else {
		m.r.Set(t, c, uint32(site))
	}
	m.publishMirrors()
	return true
}

// ownedWrite is the owned-access write analysis. Caller holds m.own.
func (d *Detector) ownedWrite(m *varMeta, t vclock.Thread, ct *vclock.VC, site event.Site) bool {
	c := ct.Get(t)
	// Same epoch: W_x = epoch(t) → no action.
	if !m.w.IsZero() && m.w.Thread() == t && m.w.Clock() == c {
		return true
	}
	// Check W_x ⊑ C_t and R_x ⊑ C_t; any racer is reported by the locked
	// path, which redoes the analysis from this same settled state.
	if !m.w.Leq(ct) || !m.r.Leq(ct) {
		return false
	}
	m.aw.Store(0)
	m.ar.Store(0)
	m.r.Clear() // ownedOK excludes KeepReadEpochOnWrite
	m.w = vclock.MakeEpoch(t, c)
	m.wSite = site
	m.publishMirrors()
	return true
}

// varMetaFor returns x's metadata record in shard si, creating it on first
// access (FASTTRACK tracks every variable it ever sees).
func (d *Detector) varMetaFor(si int, x event.Var) *varMeta {
	sh := &d.shards[si]
	m, ok := sh.vars[x]
	if !ok {
		if d.varPool != nil {
			m = d.varPool.Get(si)
		} else {
			m = &varMeta{}
		}
		d.presence.Add(x) // before insert: a zero presence read proves absence
		sh.vars[x] = m
		d.idx.Publish(x, m) // mirrors are still zero: not yet dismissable
	}
	return m
}

func (d *Detector) emit(sh *varShard, r detector.Race) {
	sh.stats.Races++
	if d.report != nil {
		d.report(r)
	}
}

// Read implements Algorithm 7.
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	si := d.ShardOf(x)
	sh := &d.shards[si]
	sh.stats.ReadSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	d.seedEpoch(t)
	m := d.varMetaFor(si, x)
	m.own.Lock()
	defer m.own.Unlock()

	// Same epoch: R_x = epoch(t) → no action (mirrors already settled). The
	// dismissal is single-entry only: a repeat read while the map is shared
	// still runs the update below so the entry's recorded site is refreshed,
	// exactly like the PACER core's sampling path (the equivalence suite
	// pins the reported sites).
	if !d.opts.DisableEpochFastPath && m.r.Size() == 1 {
		if e := m.r.Single(); e.T == t && e.C == ct.Get(t) {
			return
		}
	}
	// The read map is about to change: close the lock-free read dismissal
	// until the new state is settled and republished.
	m.ar.Store(0)
	// check W_x ⊑ C_t.
	if !m.w.Leq(ct) {
		d.emit(sh, detector.Race{
			Var: x, Kind: detector.WriteRead,
			FirstThread: m.w.Thread(), SecondThread: t,
			FirstSite: m.wSite, SecondSite: site,
		})
	}
	// Update the read map: collapse to an epoch when reads so far are
	// totally ordered before this one; otherwise record a concurrent read.
	if m.r.Size() <= 1 && m.r.Leq(ct) {
		m.r.SetEpoch(vclock.ReadEntry{T: t, C: ct.Get(t), Site: uint32(site)})
	} else {
		m.r.Set(t, ct.Get(t), uint32(site))
	}
	m.publishMirrors()
}

// Write implements Algorithm 8 (with the paper's read-map clearing).
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	si := d.ShardOf(x)
	sh := &d.shards[si]
	sh.stats.WriteSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	d.seedEpoch(t)
	m := d.varMetaFor(si, x)
	m.own.Lock()
	defer m.own.Unlock()

	// Same epoch: W_x = epoch(t) → no action (mirrors already settled).
	if !d.opts.DisableEpochFastPath && !m.w.IsZero() &&
		m.w.Thread() == t && m.w.Clock() == ct.Get(t) {
		return
	}
	// Both the write epoch and the read map are about to change: close the
	// lock-free dismissals until the new state is settled and republished.
	m.aw.Store(0)
	m.ar.Store(0)
	// check W_x ⊑ C_t.
	if !m.w.Leq(ct) {
		d.emit(sh, detector.Race{
			Var: x, Kind: detector.WriteWrite,
			FirstThread: m.w.Thread(), SecondThread: t,
			FirstSite: m.wSite, SecondSite: site,
		})
	}
	// check R_x ⊑ C_t, reporting one race per concurrent prior read.
	m.r.Racing(ct, func(e vclock.ReadEntry) {
		d.emit(sh, detector.Race{
			Var: x, Kind: detector.ReadWrite,
			FirstThread: e.T, SecondThread: t,
			FirstSite: event.Site(e.Site), SecondSite: site,
		})
	})
	if d.opts.KeepReadEpochOnWrite && m.r.Size() <= 1 {
		// Original FastTrack: a read epoch survives the write.
	} else {
		m.r.Clear()
	}
	m.w = vclock.MakeEpoch(t, ct.Get(t))
	m.wSite = site
	m.publishMirrors()
}

// The synchronization wrappers republish a thread's epoch exactly where
// its own clock component advances: a release, the forking side of a
// fork, the joined side of a join, a volatile write. A stale published
// epoch could let TrySameEpoch dismiss an access from the new epoch
// against metadata recorded in the old one, so those points must
// republish. Everything else is a join *into* C_t — acquire, volatile
// read, the receiving sides of fork and join — where the thread's own
// component cannot advance (a component originates only from its own
// thread's increments, so no other clock ever carries a larger one):
// those republish nothing, no matter how much content the join absorbed.
// BaseSync reports whether each such join changed the clock at all — with
// tree clocks, computed from the pruned changed-entry walk rather than a
// full-width comparison — which the sampling backends use to skip their
// own post-acquire work; for FASTTRACK the publication skip is
// unconditional.

// Acquire implements Algorithm 1.
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) {
	d.sync.Acquire(t, m)
}

// Release implements Algorithm 2.
func (d *Detector) Release(t vclock.Thread, m event.Lock) {
	d.sync.Release(t, m)
	d.publishEpoch(t)
}

// Fork implements Algorithm 3. Only the parent's component advances; the
// child seeds its publication at its first analyzed access.
func (d *Detector) Fork(t, u vclock.Thread) {
	d.sync.Fork(t, u)
	d.publishEpoch(t)
}

// Join implements Algorithm 4. Only the joined thread's component
// advances; the receiving thread's published epoch is already current.
func (d *Detector) Join(t, u vclock.Thread) {
	d.sync.Join(t, u)
	d.publishEpoch(u)
}

// VolRead implements Algorithm 14.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) {
	d.sync.VolRead(t, vx)
}

// VolWrite implements Algorithm 15.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) {
	d.sync.VolWrite(t, vx)
	d.publishEpoch(t)
}

// VarsTracked implements detector.VarAccounted. FASTTRACK never discards
// metadata, so this is every variable ever accessed.
func (d *Detector) VarsTracked() int {
	n := 0
	for i := range d.shards {
		n += len(d.shards[i].vars)
	}
	return n
}

// MetadataWords implements detector.MemoryAccounted. Each record is
// briefly claimed via its ownership word, so a concurrent owned access
// (which takes no other lock) cannot race the read-map inspection.
func (d *Detector) MetadataWords() int {
	w := d.sync.MetadataWords()
	for i := range d.shards {
		for _, m := range d.shards[i].vars {
			// Write epoch + site, the two published epoch mirrors, the
			// ownership word, and the read map.
			m.own.Lock()
			w += 5 + m.r.MemoryWords()
			m.own.Unlock()
		}
	}
	return w
}

// ArenaStats implements detector.ArenaAccounted. The bool result is false
// on the default heap path.
func (d *Detector) ArenaStats() (detector.ArenaStats, bool) {
	if d.arena == nil {
		return detector.ArenaStats{}, false
	}
	st := d.arena.Stats()
	return detector.ArenaStats{
		SlabsLive: st.Live,
		SlabsFree: st.Free,
		Recycles:  st.Recycles,
		Misses:    st.Misses,
		Trimmed:   st.Trimmed,
	}, true
}
