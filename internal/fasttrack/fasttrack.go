// Package fasttrack implements the FASTTRACK race detector of Flanagan and
// Freund as presented in Section 2.2 of the PACER paper (Algorithms 7-8).
// It replaces the write vector clock with an epoch and uses an adaptive
// read map, reducing nearly all read/write analysis from O(n) to O(1).
//
// Following the paper, this implementation clears the read map at writes
// ("New: clear read map" in Algorithm 8) so that it corresponds directly
// with PACER; the original FastTrack behaviour is available via Options for
// the ablation benchmarks.
package fasttrack

import (
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Options tune the detector, mainly for ablation studies.
type Options struct {
	// KeepReadEpochOnWrite restores the original FastTrack behaviour of
	// leaving a single-entry read map in place at a write (the paper's
	// modified algorithm clears it).
	KeepReadEpochOnWrite bool
	// DisableEpochFastPath forces the full analysis even when the access
	// matches the variable's current epoch, for the ablation benchmark
	// measuring the value of FastTrack's same-epoch check.
	DisableEpochFastPath bool
}

type varMeta struct {
	w     vclock.Epoch
	wSite event.Site
	r     vclock.ReadMap
}

// Detector is the FASTTRACK analysis. It is not safe for concurrent use.
type Detector struct {
	sync   *detector.BaseSync
	vars   map[event.Var]*varMeta
	report detector.Reporter
	stats  detector.Counters
	opts   Options
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
)

// New returns a FASTTRACK detector with default options.
func New(report detector.Reporter) *Detector {
	return NewWithOptions(report, Options{})
}

// NewWithOptions returns a FASTTRACK detector with explicit options.
func NewWithOptions(report detector.Reporter, opts Options) *Detector {
	d := &Detector{vars: make(map[event.Var]*varMeta), report: report, opts: opts}
	d.sync = detector.NewBaseSync(&d.stats)
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "fasttrack" }

// Stats returns the detector's operation counters.
func (d *Detector) Stats() *detector.Counters { return &d.stats }

func (d *Detector) varMeta(x event.Var) *varMeta {
	m, ok := d.vars[x]
	if !ok {
		m = &varMeta{}
		d.vars[x] = m
	}
	return m
}

func (d *Detector) emit(r detector.Race) {
	d.stats.Races++
	if d.report != nil {
		d.report(r)
	}
}

// Read implements Algorithm 7.
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.ReadSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	m := d.varMeta(x)

	// Same epoch: R_x = epoch(t) → no action.
	if !d.opts.DisableEpochFastPath && m.r.Size() == 1 {
		if e := m.r.Single(); e.T == t && e.C == ct.Get(t) {
			return
		}
	}
	// check W_x ⊑ C_t.
	if !m.w.Leq(ct) {
		d.emit(detector.Race{
			Var: x, Kind: detector.WriteRead,
			FirstThread: m.w.Thread(), SecondThread: t,
			FirstSite: m.wSite, SecondSite: site,
		})
	}
	// Update the read map: collapse to an epoch when reads so far are
	// totally ordered before this one; otherwise record a concurrent read.
	if m.r.Size() <= 1 && m.r.Leq(ct) {
		m.r.SetEpoch(vclock.ReadEntry{T: t, C: ct.Get(t), Site: uint32(site)})
	} else {
		m.r.Set(t, ct.Get(t), uint32(site))
	}
}

// Write implements Algorithm 8 (with the paper's read-map clearing).
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	d.stats.WriteSlow[detector.Sampling]++
	ct := d.sync.ThreadClock(t)
	m := d.varMeta(x)

	// Same epoch: W_x = epoch(t) → no action.
	if !d.opts.DisableEpochFastPath && !m.w.IsZero() &&
		m.w.Thread() == t && m.w.Clock() == ct.Get(t) {
		return
	}
	// check W_x ⊑ C_t.
	if !m.w.Leq(ct) {
		d.emit(detector.Race{
			Var: x, Kind: detector.WriteWrite,
			FirstThread: m.w.Thread(), SecondThread: t,
			FirstSite: m.wSite, SecondSite: site,
		})
	}
	// check R_x ⊑ C_t, reporting one race per concurrent prior read.
	m.r.Racing(ct, func(e vclock.ReadEntry) {
		d.emit(detector.Race{
			Var: x, Kind: detector.ReadWrite,
			FirstThread: e.T, SecondThread: t,
			FirstSite: event.Site(e.Site), SecondSite: site,
		})
	})
	if d.opts.KeepReadEpochOnWrite && m.r.Size() <= 1 {
		// Original FastTrack: a read epoch survives the write.
	} else {
		m.r.Clear()
	}
	m.w = vclock.MakeEpoch(t, ct.Get(t))
	m.wSite = site
}

// Acquire implements Algorithm 1.
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) { d.sync.Acquire(t, m) }

// Release implements Algorithm 2.
func (d *Detector) Release(t vclock.Thread, m event.Lock) { d.sync.Release(t, m) }

// Fork implements Algorithm 3.
func (d *Detector) Fork(t, u vclock.Thread) { d.sync.Fork(t, u) }

// Join implements Algorithm 4.
func (d *Detector) Join(t, u vclock.Thread) { d.sync.Join(t, u) }

// VolRead implements Algorithm 14.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) { d.sync.VolRead(t, vx) }

// VolWrite implements Algorithm 15.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) { d.sync.VolWrite(t, vx) }

// VarsTracked implements detector.VarAccounted. FASTTRACK never discards
// metadata, so this is every variable ever accessed.
func (d *Detector) VarsTracked() int { return len(d.vars) }

// MetadataWords implements detector.MemoryAccounted.
func (d *Detector) MetadataWords() int {
	w := d.sync.MetadataWords()
	for _, m := range d.vars {
		w += 2 + m.r.MemoryWords()
	}
	return w
}
