package arena

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pacer/internal/vclock"
)

func TestClassSelection(t *testing.T) {
	cases := []struct {
		n, ceil, floor int
	}{
		{0, 0, -1},
		{1, 0, -1},
		{7, 0, -1},
		{8, 0, 0},
		{9, 1, 0},
		{16, 1, 1},
		{17, 2, 1},
		{1000, 7, 6},
		{1024, 7, 7},
		{1025, -1, 7},
		{4096, -1, 7},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.ceil {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.ceil)
		}
		if got := classFloor(c.n); got != c.floor {
			t.Errorf("classFloor(%d) = %d, want %d", c.n, got, c.floor)
		}
	}
}

func TestAcquireRecycleRoundTrip(t *testing.T) {
	a := New(Options{Shards: 2})
	al := a.Shard(0)

	v := al.NewVC(3)
	if !v.Managed() {
		t.Fatal("arena clock not managed")
	}
	if v.Len() != 3 || v.CapLimbs() != 8 {
		t.Fatalf("len=%d cap=%d, want 3/8", v.Len(), v.CapLimbs())
	}
	v.Set(2, 42)
	v.Release()

	st := a.Stats()
	if st.Acquires != 1 || st.Releases != 1 || st.Misses != 1 || st.Free != 1 || st.Live != 0 {
		t.Fatalf("stats after round trip: %+v", st)
	}

	// The recycled slab comes back zeroed at the new length.
	w := al.NewVC(5)
	if w != v {
		t.Fatal("expected the recycled slab back")
	}
	if w.Len() != 5 {
		t.Fatalf("recycled len = %d, want 5", w.Len())
	}
	for i := 0; i < 8; i++ {
		if got := w.Get(vclock.Thread(i)); got != 0 {
			t.Fatalf("recycled slab not scrubbed: C(%d)=%d", i, got)
		}
	}
	if w.Shared() {
		t.Fatal("recycled slab still marked shared")
	}
	st = a.Stats()
	if st.Recycles != 1 || st.Live != 1 {
		t.Fatalf("stats after recycle hit: %+v", st)
	}
	w.Release()
}

func TestSharedRefcount(t *testing.T) {
	a := New(Options{})
	al := a.Shard(0)

	v := al.NewVC(4)
	v.SetShared()
	v.Retain() // second holder (a lock sharing the thread's clock)
	v.Retain() // third holder
	if v.Holders() != 3 {
		t.Fatalf("holders = %d, want 3", v.Holders())
	}
	v.Release()
	v.Release()
	if a.Stats().Free != 0 {
		t.Fatal("slab recycled while a holder remained")
	}
	v.Release()
	if a.Stats().Free != 1 {
		t.Fatal("slab not recycled after last release")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(Options{})
	v := a.Shard(0).NewVC(4)
	v.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("release of a recycled clock did not panic")
		}
	}()
	v.Release()
}

func TestStaleRetainPanics(t *testing.T) {
	a := New(Options{})
	v := a.Shard(0).NewVC(4)
	v.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("retain of a recycled clock did not panic")
		}
	}()
	v.Retain()
}

func TestFreeListBound(t *testing.T) {
	a := New(Options{Shards: 1, MaxFreePerClass: 2})
	al := a.Shard(0)
	vs := make([]*vclock.VC, 5)
	for i := range vs {
		vs[i] = al.NewVC(4)
	}
	for _, v := range vs {
		v.Release()
	}
	st := a.Stats()
	if st.Free != 2 {
		t.Fatalf("free = %d, want MaxFreePerClass bound of 2", st.Free)
	}
	if st.Trimmed != 3 {
		t.Fatalf("trimmed = %d, want 3 dropped past the bound", st.Trimmed)
	}
}

func TestTrim(t *testing.T) {
	a := New(Options{Shards: 1, MaxFreePerClass: 16, TrimKeepPerClass: 2})
	al := a.Shard(0)
	vs := make([]*vclock.VC, 10)
	for i := range vs {
		vs[i] = al.NewVC(4)
	}
	for _, v := range vs {
		v.Release()
	}
	if st := a.Stats(); st.Free != 10 {
		t.Fatalf("free before trim = %d, want 10", st.Free)
	}
	if n := a.Trim(); n != 8 {
		t.Fatalf("Trim dropped %d, want 8", n)
	}
	st := a.Stats()
	if st.Free != 2 || st.Trimmed != 8 {
		t.Fatalf("stats after trim: %+v", st)
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	a := New(Options{})
	al := a.Shard(0)
	v := al.NewVC(2000) // wider than the largest class
	if v.CapLimbs() != 2000 {
		t.Fatalf("oversize cap = %d, want exact 2000", v.CapLimbs())
	}
	v.Release()
	// Pooled under the capacity floor (class 1024).
	w := al.NewVC(1024)
	if w != v {
		t.Fatal("oversize slab not pooled by capacity floor")
	}
	w.Release()
}

func TestCloneUsesArena(t *testing.T) {
	a := New(Options{})
	v := a.Shard(0).NewVC(3)
	v.Set(1, 7)
	c := v.Clone()
	if !c.Managed() {
		t.Fatal("clone of a managed clock fell back to the heap")
	}
	if c.Get(1) != 7 || c.Shared() {
		t.Fatalf("clone state wrong: %v shared=%v", c, c.Shared())
	}
	v.Release()
	c.Release()
	if st := a.Stats(); st.Live != 0 {
		t.Fatalf("live = %d after releasing all, want 0", st.Live)
	}
}

func TestLedger(t *testing.T) {
	a := New(Options{Debug: true})
	al := a.Shard(0)
	v := al.NewVC(4)
	w := al.NewVC(4)
	if n, ok := a.Outstanding(); !ok || n != 2 {
		t.Fatalf("outstanding = %d,%v, want 2,true", n, ok)
	}
	v.Release()
	if n, _ := a.Outstanding(); n != 1 {
		t.Fatalf("outstanding = %d after one release, want 1", n)
	}
	w.Release()
	if n, _ := a.Outstanding(); n != 0 {
		t.Fatalf("outstanding = %d after all releases, want 0", n)
	}
}

type testRec struct {
	n     int
	spare map[int]int
}

func TestRecordsPool(t *testing.T) {
	a := New(Options{Shards: 2, MaxFreePerClass: 4})
	pool := NewRecords[testRec](a, func(r *testRec) { r.n = 0 })

	r1 := pool.Get(0)
	r1.n = 9
	r1.spare = map[int]int{1: 1}
	pool.Put(0, r1)

	r2 := pool.Get(0)
	if r2 != r1 {
		t.Fatal("record not recycled")
	}
	if r2.n != 0 {
		t.Fatal("reset did not run")
	}
	if r2.spare == nil {
		t.Fatal("spare storage not preserved across recycle")
	}
	pool.Put(0, r2)

	// Trim drops free records past TrimKeepPerClass.
	a2 := New(Options{Shards: 1, MaxFreePerClass: 16, TrimKeepPerClass: 1})
	p2 := NewRecords[testRec](a2, nil)
	recs := make([]*testRec, 6)
	for i := range recs {
		recs[i] = p2.Get(0)
	}
	for _, r := range recs {
		p2.Put(0, r)
	}
	if n := p2.Trim(); n != 5 {
		t.Fatalf("Records.Trim dropped %d, want 5", n)
	}
}

func TestRecordsDoubleFreePanicsWithLedger(t *testing.T) {
	a := New(Options{Debug: true})
	pool := NewRecords[testRec](a, nil)
	r := pool.Get(0)
	pool.Put(0, r)
	// Drain the free list so the second Put is a true double free, not a
	// recycle of a re-acquired record.
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic under the debug ledger")
		}
	}()
	pool.Put(0, r)
}

// TestConcurrentStress hammers every shard from many goroutines under -race:
// acquire, mutate, retain/release from a second goroutine's perspective,
// recycle, and trim concurrently. The assertions are the arena's own
// invariant checks (scrub poison, ledger panics) plus final accounting.
func TestConcurrentStress(t *testing.T) {
	const (
		workers = 8
		iters   = 3000
	)
	a := New(Options{Shards: 4, MaxFreePerClass: 8, TrimKeepPerClass: 2})
	pool := NewRecords[testRec](a, func(r *testRec) { r.n = 0 })
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			al := a.Shard(w)
			for i := 0; i < iters; i++ {
				switch rng.Intn(4) {
				case 0:
					v := al.NewVC(1 + rng.Intn(40))
					v.Set(vclock.Thread(rng.Intn(8)), uint64(i))
					c := v.Clone()
					v.Release()
					c.Release()
				case 1:
					v := al.NewVC(4)
					v.Retain()
					v.Release()
					v.Release()
				case 2:
					r := pool.Get(w)
					r.n = i
					pool.Put(w, r)
				case 3:
					if i%256 == 0 {
						a.Trim()
						pool.Trim()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := a.Stats()
	if st.Live != 0 {
		t.Fatalf("live = %d after stress, want 0 (%+v)", st.Live, st)
	}
	if st.Acquires != st.Releases {
		t.Fatalf("acquires %d != releases %d", st.Acquires, st.Releases)
	}
	if st.Recycles+st.Misses != st.Acquires {
		t.Fatalf("recycles+misses = %d, want acquires %d", st.Recycles+st.Misses, st.Acquires)
	}
}

func TestStatsString(t *testing.T) {
	// Smoke: Stats is a plain struct usable with %+v in logs and benches.
	a := New(Options{})
	_ = fmt.Sprintf("%+v", a.Stats())
}
