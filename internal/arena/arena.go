// Package arena is a shard-aware slab allocator for race-detector
// metadata. PACER's space proportionality comes from shallow copy-on-write
// vector clocks and from discarding read/write metadata outside sampling
// periods (Algorithms 9-13) — which means the analysis constantly allocates
// and abandons small objects: clock limb arrays cloned at copy-on-write
// boundaries, per-variable records created at sampled accesses and
// discarded at the next non-sampled write. At production scale the Go GC
// and the pointer chasing behind those throwaway objects, not the
// algorithm, dominate cost. The arena turns that churn into slab reuse:
//
//   - Vector-clock storage comes in fixed size classes (power-of-two limb
//     counts) drawn from per-shard free lists, so the hot path never takes
//     a global lock.
//   - Clocks are reference counted through vclock.Retain/Release, which
//     understands PACER's shallow copy-on-write sharing: a slab shared by a
//     thread and several locks is recycled only when its last holder
//     releases it.
//   - Per-variable state records recycle through Records, a typed free
//     list striped the same way; a recycled record keeps its spilled
//     read-map storage, so the map allocation amortizes across recycles.
//   - Trim performs bulk reclamation at sampling-period boundaries,
//     handing surplus free slabs back to the GC so arena slack tracks the
//     sampling rate like the metadata it caches.
//
// The arena is purely an allocator: enabling it must not change a single
// race report. internal/core wires it behind vclock.Allocator and proves
// that with a differential suite.
package arena

import (
	"sync"
	"sync/atomic"

	"pacer/internal/vclock"
)

// classLimbs are the slab size classes, in 8-byte limbs. The smallest
// class covers the common case (locks and threads in programs with few
// threads); the largest covers a clock naming 1024 threads, beyond which
// allocations fall through to the heap (and their slabs are still pooled
// by capacity floor on release).
var classLimbs = [...]int{8, 16, 32, 64, 128, 256, 512, 1024}

const numClasses = len(classLimbs)

// classFor returns the smallest class whose slabs hold n limbs, or -1 when
// n exceeds the largest class.
func classFor(n int) int {
	for c, limbs := range classLimbs {
		if n <= limbs {
			return c
		}
	}
	return -1
}

// classFloor returns the largest class whose slabs fit within capacity
// limbs, or -1 when the capacity is below the smallest class (such a slab
// is not worth pooling).
func classFloor(limbs int) int {
	for c := numClasses - 1; c >= 0; c-- {
		if classLimbs[c] <= limbs {
			return c
		}
	}
	return -1
}

// Options configure an Arena.
type Options struct {
	// Shards is the number of free-list stripes (rounded up to at least 1).
	// Match the detector's variable-shard count so concurrent shard paths
	// never contend on one free list.
	Shards int
	// MaxFreePerClass bounds each shard's free list per size class; a
	// release finding a full list drops the slab to the GC. Default 64.
	MaxFreePerClass int
	// TrimKeepPerClass is how many free slabs per shard and class Trim
	// retains; the surplus is handed back to the GC. Default 8.
	TrimKeepPerClass int
	// Debug maintains a ledger of outstanding slabs so invariant tests can
	// prove every acquired slab is released exactly once. Not for
	// production: the ledger serializes every acquire and release.
	Debug bool
}

func (o *Options) fill() {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.MaxFreePerClass <= 0 {
		o.MaxFreePerClass = 64
	}
	if o.TrimKeepPerClass <= 0 {
		o.TrimKeepPerClass = 8
	}
}

// Stats is a point-in-time snapshot of the arena's traffic and occupancy.
// Acquires = Recycles + Misses, and Live = Acquires - Releases, across
// clocks and records alike.
type Stats struct {
	// Acquires and Releases count slab acquisitions and returns.
	Acquires, Releases uint64
	// Recycles counts acquisitions served from a free list; Misses counts
	// acquisitions that allocated fresh storage.
	Recycles, Misses uint64
	// Live is the number of slabs currently acquired; Free the number
	// parked on free lists.
	Live, Free uint64
	// Trimmed counts free slabs handed back to the GC by Trim or by a
	// release that found its free list full.
	Trimmed uint64
}

// Arena is the allocator. Its methods are safe for concurrent use; the
// free lists are striped per shard so concurrent callers that pass
// distinct shard indices never contend.
type Arena struct {
	opts   Options
	shards []vcShard
	// handles[i] is shard i's vclock.Allocator. Preallocated so storing
	// one in a clock never allocates.
	handles []*shardAlloc

	acquires atomic.Uint64
	releases atomic.Uint64
	recycles atomic.Uint64
	misses   atomic.Uint64
	trimmed  atomic.Uint64
	free     atomic.Int64

	ledger *ledger // nil unless Options.Debug
}

// vcShard is one stripe of vector-clock free lists. The trailing pad keeps
// stripes on distinct cache lines.
type vcShard struct {
	mu   sync.Mutex
	free [numClasses][]*vclock.VC
	_    [64]byte
}

// shardAlloc is shard idx's face of the arena: the vclock.Allocator stored
// inside every clock the shard hands out, so Release routes a slab back to
// its home stripe without any global state.
type shardAlloc struct {
	a   *Arena
	idx int
}

func (s *shardAlloc) NewVC(n int) *vclock.VC { return s.a.newVC(s, n) }
func (s *shardAlloc) Recycle(v *vclock.VC)   { s.a.recycleVC(s, v) }

// New returns an arena with the given options.
func New(opts Options) *Arena {
	opts.fill()
	a := &Arena{
		opts:    opts,
		shards:  make([]vcShard, opts.Shards),
		handles: make([]*shardAlloc, opts.Shards),
	}
	for i := range a.handles {
		a.handles[i] = &shardAlloc{a: a, idx: i}
	}
	if opts.Debug {
		a.ledger = newLedger()
	}
	return a
}

// Shards returns the number of free-list stripes.
func (a *Arena) Shards() int { return len(a.shards) }

// Shard returns stripe i's vclock.Allocator (i taken mod the stripe
// count). Clocks it allocates return to stripe i when released, whichever
// goroutine releases them.
func (a *Arena) Shard(i int) vclock.Allocator {
	return a.handles[i%len(a.handles)]
}

func (a *Arena) newVC(h *shardAlloc, n int) *vclock.VC {
	a.acquires.Add(1)
	if c := classFor(n); c >= 0 {
		sh := &a.shards[h.idx]
		sh.mu.Lock()
		if l := len(sh.free[c]); l > 0 {
			v := sh.free[c][l-1]
			sh.free[c][l-1] = nil
			sh.free[c] = sh.free[c][:l-1]
			sh.mu.Unlock()
			a.free.Add(-1)
			a.recycles.Add(1)
			v.Reinit(n)
			if a.ledger != nil {
				a.ledger.add(v)
			}
			return v
		}
		sh.mu.Unlock()
		a.misses.Add(1)
		v := vclock.NewManaged(make([]uint64, n, classLimbs[c]), h)
		if a.ledger != nil {
			a.ledger.add(v)
		}
		return v
	}
	// Wider than the largest class: exact heap storage, still arena-owned
	// (classFloor pools it on release).
	a.misses.Add(1)
	v := vclock.NewManaged(make([]uint64, n), h)
	if a.ledger != nil {
		a.ledger.add(v)
	}
	return v
}

func (a *Arena) recycleVC(h *shardAlloc, v *vclock.VC) {
	a.releases.Add(1)
	if a.ledger != nil {
		a.ledger.remove(v)
	}
	c := classFloor(v.CapLimbs())
	if c < 0 {
		// Below the smallest class (a CopyFrom re-backed the clock with a
		// tiny heap slice): not worth pooling.
		a.trimmed.Add(1)
		return
	}
	v.Scrub()
	sh := &a.shards[h.idx]
	sh.mu.Lock()
	if len(sh.free[c]) < a.opts.MaxFreePerClass {
		sh.free[c] = append(sh.free[c], v)
		sh.mu.Unlock()
		a.free.Add(1)
		return
	}
	sh.mu.Unlock()
	a.trimmed.Add(1)
}

// Trim is the bulk-reclamation hook: it walks every stripe and hands free
// slabs beyond Options.TrimKeepPerClass (per stripe and class) back to the
// GC. PACER calls it at sampling-period boundaries (send), so arena slack
// shrinks with the metadata it caches instead of ratcheting up to the
// busiest period ever seen. It returns the number of slabs reclaimed.
func (a *Arena) Trim() int {
	keep := a.opts.TrimKeepPerClass
	dropped := 0
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for c := range sh.free {
			if n := len(sh.free[c]); n > keep {
				for j := keep; j < n; j++ {
					sh.free[c][j] = nil
				}
				sh.free[c] = sh.free[c][:keep]
				dropped += n - keep
			}
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		a.free.Add(int64(-dropped))
		a.trimmed.Add(uint64(dropped))
	}
	return dropped
}

// Stats returns a snapshot of the arena's counters. Under concurrent use
// the fields are each individually accurate but not mutually atomic.
func (a *Arena) Stats() Stats {
	acq, rel := a.acquires.Load(), a.releases.Load()
	live := uint64(0)
	if acq > rel {
		live = acq - rel
	}
	free := a.free.Load()
	if free < 0 {
		free = 0
	}
	return Stats{
		Acquires: acq,
		Releases: rel,
		Recycles: a.recycles.Load(),
		Misses:   a.misses.Load(),
		Live:     live,
		Free:     uint64(free),
		Trimmed:  a.trimmed.Load(),
	}
}

// Outstanding returns the number of slabs currently acquired according to
// the debug ledger, and whether the ledger is enabled. Invariant tests
// compare it against the detector's reachable metadata.
func (a *Arena) Outstanding() (int, bool) {
	if a.ledger == nil {
		return 0, false
	}
	return a.ledger.size(), true
}

// ledger is the debug accounting of outstanding slabs. It stores
// identities (pointers boxed as any), so clocks and records share one
// ledger.
type ledger struct {
	mu   sync.Mutex
	live map[any]struct{}
}

func newLedger() *ledger { return &ledger{live: make(map[any]struct{})} }

func (l *ledger) add(x any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.live[x]; dup {
		panic("arena: slab acquired twice without a release (ledger corruption)")
	}
	l.live[x] = struct{}{}
}

func (l *ledger) remove(x any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.live[x]; !ok {
		panic("arena: release of a slab the ledger does not hold (double free?)")
	}
	delete(l.live, x)
}

func (l *ledger) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.live)
}
