package arena

import "sync"

// Records is a typed per-shard free list for fixed-shape metadata records
// (the detector's per-variable state). It shares the owning Arena's
// accounting and debug ledger, so Stats and Outstanding cover records and
// clocks uniformly.
//
// A recycled record is handed to Reset before parking so the caller can
// scrub algorithm state while keeping amortizable storage (a read map's
// spilled map survives recycling, for example).
type Records[T any] struct {
	arena  *Arena
	reset  func(*T)
	shards []recShard[T]
}

type recShard[T any] struct {
	mu   sync.Mutex
	free []*T
	_    [64]byte
}

// NewRecords returns a record pool striped like the arena. reset scrubs a
// record before it is parked for reuse; nil means records are reused as-is.
func NewRecords[T any](a *Arena, reset func(*T)) *Records[T] {
	return &Records[T]{
		arena:  a,
		reset:  reset,
		shards: make([]recShard[T], len(a.shards)),
	}
}

// Get returns a record from shard i's free list, or a fresh zero record on
// a miss. Recycled records have been through reset; anything reset leaves
// in place (spare maps, slices) is intentionally preserved.
func (r *Records[T]) Get(i int) *T {
	a := r.arena
	a.acquires.Add(1)
	sh := &r.shards[i%len(r.shards)]
	sh.mu.Lock()
	if l := len(sh.free); l > 0 {
		rec := sh.free[l-1]
		sh.free[l-1] = nil
		sh.free = sh.free[:l-1]
		sh.mu.Unlock()
		a.free.Add(-1)
		a.recycles.Add(1)
		if a.ledger != nil {
			a.ledger.add(rec)
		}
		return rec
	}
	sh.mu.Unlock()
	a.misses.Add(1)
	rec := new(T)
	if a.ledger != nil {
		a.ledger.add(rec)
	}
	return rec
}

// Put returns a record to shard i's free list (dropping it to the GC when
// the list is full). The caller must not use the record afterwards.
func (r *Records[T]) Put(i int, rec *T) {
	a := r.arena
	a.releases.Add(1)
	if a.ledger != nil {
		a.ledger.remove(rec)
	}
	if r.reset != nil {
		r.reset(rec)
	}
	sh := &r.shards[i%len(r.shards)]
	sh.mu.Lock()
	if len(sh.free) < a.opts.MaxFreePerClass {
		sh.free = append(sh.free, rec)
		sh.mu.Unlock()
		a.free.Add(1)
		return
	}
	sh.mu.Unlock()
	a.trimmed.Add(1)
}

// Trim drops free records beyond the arena's TrimKeepPerClass per shard,
// mirroring Arena.Trim for the record pool. It returns the number dropped.
func (r *Records[T]) Trim() int {
	a := r.arena
	keep := a.opts.TrimKeepPerClass
	dropped := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if n := len(sh.free); n > keep {
			for j := keep; j < n; j++ {
				sh.free[j] = nil
			}
			sh.free = sh.free[:keep]
			dropped += n - keep
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		a.free.Add(int64(-dropped))
		a.trimmed.Add(uint64(dropped))
	}
	return dropped
}
