package arena

import (
	"fmt"
	"math/rand"
	"testing"

	"pacer/internal/vclock"
)

// The tree-clock engine has its own differential suite against the flat
// reference on the heap allocator (internal/vclock). These tests pin the
// arena mounting specifically: the last-update index's aux vectors draw
// from the same slabs as the entry arrays, recycling scrubs the index, and
// the monotone-copy fast path stays allocation-free on slab storage.

// treeSim drives one operation stream through arena-backed tree clocks and
// a heap-backed flat shadow, comparing element-for-element.
type treeSim struct {
	t          *testing.T
	threads    int
	tree, flat []*vclock.VC
}

func newTreeSim(t *testing.T, alloc func(int) vclock.Allocator, threads, syncs int) *treeSim {
	s := &treeSim{t: t, threads: threads}
	n := threads + syncs
	s.tree = make([]*vclock.VC, n)
	s.flat = make([]*vclock.VC, n)
	for i := 0; i < n; i++ {
		c := alloc(i).NewVC(0)
		f := vclock.New(0)
		if i < threads {
			c.SetOwner(vclock.Thread(i))
			c.Set(vclock.Thread(i), 1)
			f.Set(vclock.Thread(i), 1)
		}
		s.tree[i] = c
		s.flat[i] = f
	}
	return s
}

// own clones a shared snapshot before mutation (PACER's copy-on-write
// rule); the thread-side continuation reclaims its label stream.
func (s *treeSim) own(i int) {
	if s.tree[i].Shared() {
		s.tree[i] = s.tree[i].Clone()
		if i < s.threads {
			s.tree[i].SetOwner(vclock.Thread(i))
		}
	}
	if s.flat[i].Shared() {
		s.flat[i] = s.flat[i].Clone()
	}
}

func (s *treeSim) step(op, x, y int) {
	T := s.threads
	S := len(s.tree) - T
	t0 := x % T
	sy := T + y%S
	switch op % 6 {
	case 0: // acquire
		s.own(t0)
		ct := s.tree[t0].JoinFrom(s.tree[sy])
		cf := s.flat[t0].JoinFrom(s.flat[sy])
		if ct != cf {
			s.t.Fatalf("JoinFrom(%d←%d) changed=%v, flat says %v", t0, sy, ct, cf)
		}
	case 1: // release (+ inc)
		s.own(sy)
		s.tree[sy].CopyFrom(s.tree[t0])
		s.flat[sy].CopyFrom(s.flat[t0])
		if y%3 != 0 { // PACER elides the inc outside sampling periods
			s.own(t0)
			s.tree[t0].Inc(vclock.Thread(t0))
			s.flat[t0].Inc(vclock.Thread(t0))
		}
	case 2: // volatile write: C_vx ⊔= C_t
		s.own(sy)
		s.tree[sy].JoinFrom(s.tree[t0])
		s.flat[sy].JoinFrom(s.flat[t0])
	case 3: // thread-to-thread (fork/join shapes)
		if u := y % T; u != t0 {
			s.own(t0)
			s.tree[t0].JoinFrom(s.tree[u])
			s.flat[t0].JoinFrom(s.flat[u])
		}
	case 4: // inc
		s.own(t0)
		s.tree[t0].Inc(vclock.Thread(t0))
		s.flat[t0].Inc(vclock.Thread(t0))
	case 5: // shallow snapshot share (non-sampling copyToSync)
		s.tree[t0].SetShared()
		s.tree[t0].Retain() // the sync object becomes a second holder
		s.tree[sy] = s.tree[t0]
		s.flat[sy] = s.flat[t0].Clone()
	}
}

func (s *treeSim) verify(where string) {
	s.t.Helper()
	for i := range s.tree {
		tc, fc := s.tree[i], s.flat[i]
		w := max(tc.Len(), fc.Len())
		for j := 0; j < w; j++ {
			if tc.Get(vclock.Thread(j)) != fc.Get(vclock.Thread(j)) {
				s.t.Fatalf("%s: clock %d entry %d: tree %d, flat %d",
					where, i, j, tc.Get(vclock.Thread(j)), fc.Get(vclock.Thread(j)))
			}
		}
	}
	for a := 0; a < s.threads; a++ {
		for b := 0; b < s.threads; b++ {
			if got, want := s.tree[a].Leq(s.tree[b]), s.flat[a].Leq(s.flat[b]); got != want {
				s.t.Fatalf("%s: Leq(%d,%d): tree %v, flat %v", where, a, b, got, want)
			}
		}
	}
}

// TestTreeClockOnArenaDifferential runs the detector-shaped operation
// stream over slab-backed tree clocks, exactly as the backends mount them
// (vclock.TreeStriped over Arena.Shard).
func TestTreeClockOnArenaDifferential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := New(Options{Shards: 4})
			alloc := vclock.TreeStriped(a.Shard)
			rng := rand.New(rand.NewSource(seed))
			s := newTreeSim(t, alloc, 2+int(seed%7), 5)
			for i := 0; i < 800; i++ {
				s.step(rng.Intn(6), rng.Intn(1<<16), rng.Intn(1<<16))
				if i%9 == 0 {
					s.verify(fmt.Sprintf("op %d", i))
				}
			}
			s.verify("final")
		})
	}
}

// TestTreeClockArenaRecycleScrubs pins that recycling a tree-backed clock
// through the arena scrubs the last-update index with the entries: the
// slab that comes back is a plain zero clock (no stale index, no stale
// aux-vector content), or the next tree mount would prune against labels
// from the previous life.
func TestTreeClockArenaRecycleScrubs(t *testing.T) {
	a := New(Options{Shards: 1})
	alloc := vclock.TreeStriped(a.Shard)(0)

	v := alloc.NewVC(0)
	v.SetOwner(0)
	v.Set(0, 1)
	other := alloc.NewVC(0)
	other.SetOwner(3)
	other.Set(3, 1)
	other.Inc(3)
	v.JoinFrom(other)
	if !v.TreeBacked() {
		t.Fatal("arena tree clock carries no index")
	}
	v.Release()

	w := alloc.NewVC(4)
	if w.TreeBacked() {
		t.Fatal("recycled slab resurrected the previous life's index")
	}
	for i := 0; i < 4; i++ {
		if got := w.Get(vclock.Thread(i)); got != 0 {
			t.Fatalf("recycled slab not scrubbed: C(%d)=%d", i, got)
		}
	}
	// The recycled clock is still tree-capable: ownership mounts a fresh
	// index.
	w.SetOwner(1)
	w.Set(1, 1)
	w.Inc(1)
	if !w.TreeBacked() {
		t.Fatal("recycled slab lost tree capability")
	}
}

// TestTreeClockArenaMonotoneCopyAllocs is the accelerator guard the issue
// asks for: once widths are stable, the release-pattern monotone copy and
// the subsumed join must run at 0 allocs/op on slab storage.
func TestTreeClockArenaMonotoneCopyAllocs(t *testing.T) {
	a := New(Options{Shards: 1})
	alloc := vclock.TreeStriped(a.Shard)(0)

	th := alloc.NewVC(0)
	th.SetOwner(0)
	th.Set(0, 1)
	other := alloc.NewVC(0)
	other.SetOwner(1)
	other.Set(1, 1)
	th.JoinFrom(other)
	lock := alloc.NewVC(0)
	lock.CopyFrom(th) // warm: adopt index, size scratch
	th.Inc(0)
	lock.CopyFrom(th)

	if n := testing.AllocsPerRun(200, func() {
		th.Inc(0)
		lock.CopyFrom(th) // one changed entry
	}); n != 0 {
		t.Fatalf("arena monotone copy allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		th.JoinFrom(lock) // fully subsumed: O(1) certificate
	}); n != 0 {
		t.Fatalf("arena subsumed join allocates %v/op, want 0", n)
	}
	if !lock.Equal(th) || !lock.TreeBacked() {
		t.Fatal("arena fast-path copies diverged")
	}
}
