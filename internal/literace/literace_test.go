package literace_test

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/literace"
)

func mk(r detector.Reporter) detector.Detector {
	return literace.New(r, literace.DefaultOptions())
}

func TestDetectsRacesWhileBurstSampling(t *testing.T) {
	// Within the initial 100% burst LiteRace behaves like FastTrack.
	c := dtest.Run(dtest.NewTB().Write(0, 1).Write(1, 1).Trace, mk)
	if c.DynamicCount() != 1 || c.Dynamic[0].Kind != detector.WriteWrite {
		t.Fatalf("got %v", c.Dynamic)
	}
}

func TestNoFalsePositives(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr := event.Generate(event.Synchronized(6, 4000, seed))
		if c := dtest.Run(tr, mk); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: false positive %v", seed, c.Dynamic[0])
		}
	}
}

func TestSamplingRateBacksOffForHotCode(t *testing.T) {
	d := literace.New(nil, literace.Options{BurstLength: 10, MinRate: 0.001, Backoff: 10, Seed: 1})
	// One hot method executed 100k times by one thread.
	for i := 0; i < 100000; i++ {
		d.Read(0, 1, 5, 42)
	}
	rate := d.EffectiveRate()
	if rate > 0.05 {
		t.Errorf("hot method effective rate = %.4f, want well under 5%%", rate)
	}
	if rate <= 0 {
		t.Error("rate should be positive (bursts still fire)")
	}
}

func TestColdCodeFullySampled(t *testing.T) {
	d := literace.New(nil, literace.Options{BurstLength: 1000, MinRate: 0.001, Backoff: 10, Seed: 1})
	// A cold method: fewer executions than one burst → all sampled.
	for i := 0; i < 500; i++ {
		d.Read(0, event.Var(i), event.Site(i), 7)
	}
	if d.EffectiveRate() != 1.0 {
		t.Errorf("cold method rate = %.3f, want 1.0", d.EffectiveRate())
	}
}

func TestPerMethodThreadStateIsIndependent(t *testing.T) {
	d := literace.New(nil, literace.Options{BurstLength: 10, MinRate: 0.001, Backoff: 10, Seed: 1})
	// Exhaust method 1 on thread 0.
	for i := 0; i < 10000; i++ {
		d.Read(0, 1, 5, 1)
	}
	s0 := d.Sampled()
	// Method 2 on thread 0 and method 1 on thread 1 both start fresh at 100%.
	d.Read(0, 2, 6, 2)
	d.Read(1, 3, 7, 1)
	if d.Sampled() != s0+2 {
		t.Errorf("fresh method-thread pairs were not sampled (sampled=%d, want %d)", d.Sampled(), s0+2)
	}
}

// The cold-region hypothesis failure mode (Figure 6): a race between two
// hot accesses is consistently missed once the sampler has backed off,
// while PACER-style global sampling would still catch it in proportion.
func TestHotRaceMissedAfterBackoff(t *testing.T) {
	d := literace.New(detector.NewCollector().Report, literace.Options{BurstLength: 10, MinRate: 0.001, Backoff: 10, Seed: 1})
	col := detector.NewCollector()
	d = literace.New(col.Report, literace.Options{BurstLength: 10, MinRate: 0.001, Backoff: 10, Seed: 1})
	// Heat up method 9 on both threads using non-racy per-thread variables.
	for i := 0; i < 200000; i++ {
		d.Read(0, 100, 1, 9)
		d.Read(1, 101, 2, 9)
	}
	// Now the hot method races on variable 7 — both accesses are almost
	// certainly skipped.
	d.Write(0, 7, 70, 9)
	d.Write(1, 7, 71, 9)
	if col.DynamicCount() != 0 {
		t.Skipf("sampler happened to catch the hot race (possible but rare)")
	}
	// The same race in cold code is caught.
	d.Write(0, 8, 80, 55)
	d.Write(1, 8, 81, 55)
	found := false
	for _, r := range col.Dynamic {
		if r.Var == 8 {
			found = true
		}
	}
	if !found {
		t.Error("cold race missed")
	}
}

func TestSyncAlwaysInstrumented(t *testing.T) {
	d := literace.New(nil, literace.DefaultOptions())
	tr := dtest.NewTB().Acq(0, 1).Rel(0, 1).VolWrite(1, 2).VolRead(0, 2).Fork(0, 2).Join(0, 2).Trace
	detector.Replay(d, tr)
	if d.Stats().TotalSyncOps() != 6 {
		t.Errorf("sync ops = %d, want 6", d.Stats().TotalSyncOps())
	}
}

func TestMetadataNeverDiscarded(t *testing.T) {
	d := literace.New(nil, literace.DefaultOptions())
	for x := event.Var(0); x < 100; x++ {
		d.Write(0, x, event.Site(x), 1)
	}
	w1 := d.MetadataWords()
	// More writes to new variables keep growing the footprint; nothing is
	// reclaimed even for variables never touched again.
	for x := event.Var(100); x < 200; x++ {
		d.Write(0, x, event.Site(x), 1)
	}
	if d.MetadataWords() <= w1 {
		t.Error("metadata footprint should grow monotonically")
	}
}

func TestEffectiveRateTracksSampledFraction(t *testing.T) {
	d := literace.New(nil, literace.Options{BurstLength: 100, MinRate: 0.01, Backoff: 10, Seed: 3})
	for i := 0; i < 50000; i++ {
		d.Read(0, 1, 1, 1)
	}
	total := d.Sampled() + d.Skipped()
	if total != 50000 {
		t.Fatalf("accounted accesses = %d, want 50000", total)
	}
	if r := d.EffectiveRate(); r <= 0 || r >= 1 {
		t.Errorf("effective rate = %v, want in (0,1)", r)
	}
}

func TestAgreesWithFastTrackDuringInitialBurst(t *testing.T) {
	// With a burst longer than the trace, LiteRace samples everything and
	// must match FastTrack exactly.
	for seed := int64(0); seed < 10; seed++ {
		tr := dtest.UniqueSites(event.Generate(event.Racy(5, 800, seed)))
		lr := dtest.Run(tr, func(r detector.Reporter) detector.Detector {
			return literace.New(r, literace.Options{BurstLength: 1 << 20, MinRate: 0.001, Backoff: 10, Seed: 1})
		})
		ft := dtest.Run(tr, func(r detector.Reporter) detector.Detector { return fasttrack.New(r) })
		ka, kb := dtest.KeySet(lr.Dynamic), dtest.KeySet(ft.Dynamic)
		if len(ka) != len(kb) {
			t.Fatalf("seed %d: literace %d reports, fasttrack %d", seed, len(ka), len(kb))
		}
		for k, n := range kb {
			if ka[k] != n {
				t.Fatalf("seed %d: report %v: literace %d, fasttrack %d", seed, k, ka[k], n)
			}
		}
	}
}

func TestName(t *testing.T) {
	if mk(nil).Name() != "literace" {
		t.Error("wrong name")
	}
}
