// Package literace implements the online version of LITERACE that Section
// 5.3 of the PACER paper compares against: full instrumentation of all
// synchronization operations (so no happens-before edges are missed) plus
// adaptive, bursty, per-(method, thread) sampling of reads and writes,
// following the cold-region hypothesis that races live in rarely executed
// code.
//
// Each (method, thread) pair starts sampling at 100% and backs off toward a
// 0.1% floor as the method grows hotter; sampled accesses run the full
// FASTTRACK analysis, unsampled ones do nothing. As in the paper's
// reimplementation, the sampling-counter reset is randomized so repeated
// trials can catch different races, and variable metadata is never
// discarded — which is why LITERACE's space overhead does not scale with
// its effective sampling rate (Figure 10).
//
// The randomized resets draw from a per-(method, thread) stream seeded
// deterministically from Options.Seed and the key, so a key's decision
// sequence depends only on its own access count — never on how accesses of
// different keys interleave. That order-independence is what makes the
// detector.BurstSampler capability sound: the front-end may consume skip
// decisions lock-free (TrySkip) while other threads are mid-analysis, and
// a serialized replay of the recorded trace still reproduces every
// decision exactly.
package literace

import (
	"math/rand"
	"sync"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/vclock"
)

// Options configure the sampler.
type Options struct {
	// BurstLength is the number of consecutive accesses sampled per burst.
	// The paper initially used 10 and switched to 1000 to reach ~1%
	// effective rates.
	BurstLength int
	// MinRate is the sampling-rate floor; the paper uses 0.1%.
	MinRate float64
	// Backoff divides the per-(method, thread) rate after each completed
	// burst until MinRate is reached.
	Backoff float64
	// Seed drives the randomized counter resets.
	Seed int64
}

// DefaultOptions returns the configuration used for the paper's comparison
// (burst length 1000, 0.1% floor).
func DefaultOptions() Options {
	return Options{BurstLength: 1000, MinRate: 0.001, Backoff: 10, Seed: 1}
}

type methodThread struct {
	method uint32
	thread vclock.Thread
}

type samplerState struct {
	rate  float64
	burst int        // sampled accesses remaining in the current burst
	skip  int        // accesses to skip before the next burst
	rng   *rand.Rand // per-key reset stream, deterministic in (Seed, key)
}

// Detector is the online LITERACE analysis. Like its underlying FASTTRACK
// core it requires exclusive access for analysis and synchronization
// calls; the one exception is TrySkip (detector.BurstSampler), which takes
// only the detector's own sampler lock and so may run concurrently with
// any operation of other threads.
type Detector struct {
	ft   *fasttrack.Detector
	opts Options

	// mu guards the sampler state and decision counters: TrySkip is called
	// lock-free by the front-end while other threads are mid-analysis, so
	// the burst bookkeeping cannot rely on the caller's exclusive lock.
	mu    sync.Mutex
	state map[methodThread]*samplerState

	// Sampled and Skipped count data accesses by sampling decision.
	Sampled, Skipped uint64

	// skipped accumulates the fast-path counters for accesses this
	// detector's own Read/Write skipped. (FASTTRACK's Stats is an
	// aggregated snapshot, so skips are recorded here and merged in
	// Stats rather than written through the snapshot pointer.)
	skipped detector.Counters
	snap    detector.Counters // Stats() merge scratch
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
	_ detector.BurstSampler    = (*Detector)(nil)
)

// New returns an online LITERACE detector.
func New(report detector.Reporter, opts Options) *Detector {
	if opts.BurstLength <= 0 {
		opts.BurstLength = 1000
	}
	if opts.MinRate <= 0 {
		opts.MinRate = 0.001
	}
	if opts.Backoff <= 1 {
		opts.Backoff = 10
	}
	return &Detector{
		ft:    fasttrack.New(report),
		opts:  opts,
		state: make(map[methodThread]*samplerState),
	}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "literace" }

// Stats returns the operation counters: the underlying FASTTRACK snapshot
// (sync operations and sampled accesses) plus this sampler's skipped
// accesses on the fast-path rows. Exclusive access required; the returned
// pointer is to a snapshot the next call overwrites.
func (d *Detector) Stats() *detector.Counters {
	d.snap = *d.ft.Stats()
	d.mu.Lock()
	d.snap.Add(&d.skipped)
	d.mu.Unlock()
	return &d.snap
}

// EffectiveRate returns the fraction of data accesses actually sampled.
func (d *Detector) EffectiveRate() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := d.Sampled + d.Skipped
	if total == 0 {
		return 0
	}
	return float64(d.Sampled) / float64(total)
}

// stateLocked returns (method, thread)'s sampler state, creating it cold
// (100% rate, full burst) on first use. Callers hold d.mu.
func (d *Detector) stateLocked(key methodThread) *samplerState {
	s, ok := d.state[key]
	if !ok {
		// Mix the key into the seed (odd multipliers, xor-fold) so each
		// (method, thread) pair gets its own deterministic reset stream.
		h := uint64(d.opts.Seed)*0x9E3779B97F4A7C15 ^
			(uint64(key.method)+1)*0xBF58476D1CE4E5B9 ^
			(uint64(key.thread)+1)*0x94D049BB133111EB
		s = &samplerState{
			rate:  1.0,
			burst: d.opts.BurstLength,
			rng:   rand.New(rand.NewSource(int64(h))),
		}
		d.state[key] = s
	}
	return s
}

// sampleLocked decides whether to analyze this access of (method, thread),
// advancing the bursty adaptive sampler. Callers hold d.mu.
func (d *Detector) sampleLocked(s *samplerState) bool {
	if s.burst > 0 {
		s.burst--
		if s.burst == 0 {
			// Burst complete: back off the rate and schedule the skip gap
			// that realizes it. Randomizing the reset (unlike the
			// deterministic original) spreads bursts across trials.
			s.rate = max(s.rate/d.opts.Backoff, d.opts.MinRate)
			gap := float64(d.opts.BurstLength) * (1 - s.rate) / s.rate
			if gap > 0 {
				s.skip = 1 + s.rng.Intn(int(2*gap)+1)
			}
		}
		return true
	}
	if s.skip > 0 {
		s.skip--
		return false
	}
	s.burst = d.opts.BurstLength
	return d.sampleLocked(s)
}

// decide takes and records one sampling decision for an access.
func (d *Detector) decide(method uint32, t vclock.Thread, write bool) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sampleLocked(d.stateLocked(methodThread{method, t})) {
		d.Sampled++
		return true
	}
	d.Skipped++
	if write {
		d.skipped.WriteFast[detector.NonSampling]++
	} else {
		d.skipped.ReadFast[detector.NonSampling]++
	}
	return false
}

// TrySkip implements detector.BurstSampler: it consumes a pending skip
// decision for (method, t) when one is due, letting the caller dismiss the
// access without routing it through Read/Write. When the sampler would
// instead analyze the access (mid-burst, or a fresh burst is due), the
// state is left untouched and TrySkip reports false — the caller's
// subsequent Read/Write call takes the identical decision itself. Safe to
// call concurrently with operations of other threads; a single thread's
// operations must be serialized by the caller, which is what keeps the
// probe-then-analyze sequence atomic per key.
func (d *Detector) TrySkip(method uint32, t vclock.Thread) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stateLocked(methodThread{method, t})
	if s.burst > 0 || s.skip == 0 {
		return false
	}
	s.skip--
	d.Skipped++
	// The caller dismissed the access itself, so it owns the operation
	// accounting (the front-end counts dismissals in its sharded fast
	// counters); only the decision tally is recorded here.
	return true
}

// Read samples rd(t, x); sampled reads run the FASTTRACK read analysis.
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, method uint32) {
	if d.decide(method, t, false) {
		d.ft.Read(t, x, site, method)
	}
}

// Write samples wr(t, x); sampled writes run the FASTTRACK write analysis.
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, method uint32) {
	if d.decide(method, t, true) {
		d.ft.Write(t, x, site, method)
	}
}

// Acquire is fully instrumented (O(n), like all LITERACE sync operations).
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) { d.ft.Acquire(t, m) }

// Release is fully instrumented.
func (d *Detector) Release(t vclock.Thread, m event.Lock) { d.ft.Release(t, m) }

// Fork is fully instrumented.
func (d *Detector) Fork(t, u vclock.Thread) { d.ft.Fork(t, u) }

// Join is fully instrumented.
func (d *Detector) Join(t, u vclock.Thread) { d.ft.Join(t, u) }

// VolRead is fully instrumented.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) { d.ft.VolRead(t, vx) }

// VolWrite is fully instrumented.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) { d.ft.VolWrite(t, vx) }

// VarsTracked implements detector.VarAccounted, delegating to the
// underlying FASTTRACK metadata table.
func (d *Detector) VarsTracked() int { return d.ft.VarsTracked() }

// MetadataWords implements detector.MemoryAccounted. LITERACE never
// discards metadata, so this grows with the data the program touches, not
// with the sampling rate.
func (d *Detector) MetadataWords() int {
	d.mu.Lock()
	n := len(d.state)
	d.mu.Unlock()
	return d.ft.MetadataWords() + 5*n
}
