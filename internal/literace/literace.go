// Package literace implements the online version of LITERACE that Section
// 5.3 of the PACER paper compares against: full instrumentation of all
// synchronization operations (so no happens-before edges are missed) plus
// adaptive, bursty, per-(method, thread) sampling of reads and writes,
// following the cold-region hypothesis that races live in rarely executed
// code.
//
// Each (method, thread) pair starts sampling at 100% and backs off toward a
// 0.1% floor as the method grows hotter; sampled accesses run the full
// FASTTRACK analysis, unsampled ones do nothing. As in the paper's
// reimplementation, the sampling-counter reset is randomized so repeated
// trials can catch different races, and variable metadata is never
// discarded — which is why LITERACE's space overhead does not scale with
// its effective sampling rate (Figure 10).
package literace

import (
	"math/rand"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/vclock"
)

// Options configure the sampler.
type Options struct {
	// BurstLength is the number of consecutive accesses sampled per burst.
	// The paper initially used 10 and switched to 1000 to reach ~1%
	// effective rates.
	BurstLength int
	// MinRate is the sampling-rate floor; the paper uses 0.1%.
	MinRate float64
	// Backoff divides the per-(method, thread) rate after each completed
	// burst until MinRate is reached.
	Backoff float64
	// Seed drives the randomized counter resets.
	Seed int64
}

// DefaultOptions returns the configuration used for the paper's comparison
// (burst length 1000, 0.1% floor).
func DefaultOptions() Options {
	return Options{BurstLength: 1000, MinRate: 0.001, Backoff: 10, Seed: 1}
}

type methodThread struct {
	method uint32
	thread vclock.Thread
}

type samplerState struct {
	rate  float64
	burst int // sampled accesses remaining in the current burst
	skip  int // accesses to skip before the next burst
}

// Detector is the online LITERACE analysis. It is not safe for concurrent
// use.
type Detector struct {
	ft    *fasttrack.Detector
	opts  Options
	rng   *rand.Rand
	state map[methodThread]*samplerState

	// Sampled and Skipped count data accesses by sampling decision.
	Sampled, Skipped uint64
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
)

// New returns an online LITERACE detector.
func New(report detector.Reporter, opts Options) *Detector {
	if opts.BurstLength <= 0 {
		opts.BurstLength = 1000
	}
	if opts.MinRate <= 0 {
		opts.MinRate = 0.001
	}
	if opts.Backoff <= 1 {
		opts.Backoff = 10
	}
	return &Detector{
		ft:    fasttrack.New(report),
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		state: make(map[methodThread]*samplerState),
	}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "literace" }

// Stats returns the underlying FASTTRACK counters (sync operations and
// sampled accesses).
func (d *Detector) Stats() *detector.Counters { return d.ft.Stats() }

// EffectiveRate returns the fraction of data accesses actually sampled.
func (d *Detector) EffectiveRate() float64 {
	total := d.Sampled + d.Skipped
	if total == 0 {
		return 0
	}
	return float64(d.Sampled) / float64(total)
}

// sample decides whether to analyze this access of (method, thread),
// advancing the bursty adaptive sampler.
func (d *Detector) sample(method uint32, t vclock.Thread) bool {
	key := methodThread{method, t}
	s, ok := d.state[key]
	if !ok {
		s = &samplerState{rate: 1.0, burst: d.opts.BurstLength}
		d.state[key] = s
	}
	if s.burst > 0 {
		s.burst--
		if s.burst == 0 {
			// Burst complete: back off the rate and schedule the skip gap
			// that realizes it. Randomizing the reset (unlike the
			// deterministic original) spreads bursts across trials.
			s.rate = max(s.rate/d.opts.Backoff, d.opts.MinRate)
			gap := float64(d.opts.BurstLength) * (1 - s.rate) / s.rate
			if gap > 0 {
				s.skip = 1 + d.rng.Intn(int(2*gap)+1)
			}
		}
		return true
	}
	if s.skip > 0 {
		s.skip--
		return false
	}
	s.burst = d.opts.BurstLength
	return d.sample(method, t)
}

// Read samples rd(t, x); sampled reads run the FASTTRACK read analysis.
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, method uint32) {
	if d.sample(method, t) {
		d.Sampled++
		d.ft.Read(t, x, site, method)
	} else {
		d.Skipped++
		d.ft.Stats().ReadFast[detector.NonSampling]++
	}
}

// Write samples wr(t, x); sampled writes run the FASTTRACK write analysis.
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, method uint32) {
	if d.sample(method, t) {
		d.Sampled++
		d.ft.Write(t, x, site, method)
	} else {
		d.Skipped++
		d.ft.Stats().WriteFast[detector.NonSampling]++
	}
}

// Acquire is fully instrumented (O(n), like all LITERACE sync operations).
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) { d.ft.Acquire(t, m) }

// Release is fully instrumented.
func (d *Detector) Release(t vclock.Thread, m event.Lock) { d.ft.Release(t, m) }

// Fork is fully instrumented.
func (d *Detector) Fork(t, u vclock.Thread) { d.ft.Fork(t, u) }

// Join is fully instrumented.
func (d *Detector) Join(t, u vclock.Thread) { d.ft.Join(t, u) }

// VolRead is fully instrumented.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) { d.ft.VolRead(t, vx) }

// VolWrite is fully instrumented.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) { d.ft.VolWrite(t, vx) }

// VarsTracked implements detector.VarAccounted, delegating to the
// underlying FASTTRACK metadata table.
func (d *Detector) VarsTracked() int { return d.ft.VarsTracked() }

// MetadataWords implements detector.MemoryAccounted. LITERACE never
// discards metadata, so this grows with the data the program touches, not
// with the sampling rate.
func (d *Detector) MetadataWords() int {
	return d.ft.MetadataWords() + 4*len(d.state)
}
