// Package literace implements the online version of LITERACE that Section
// 5.3 of the PACER paper compares against: full instrumentation of all
// synchronization operations (so no happens-before edges are missed) plus
// adaptive, bursty, per-(method, thread) sampling of reads and writes,
// following the cold-region hypothesis that races live in rarely executed
// code.
//
// Each (method, thread) pair starts sampling at 100% and backs off toward a
// 0.1% floor as the method grows hotter; sampled accesses run the full
// FASTTRACK analysis, unsampled ones do nothing. As in the paper's
// reimplementation, the sampling-counter reset is randomized so repeated
// trials can catch different races, and variable metadata is never
// discarded — which is why LITERACE's space overhead does not scale with
// its effective sampling rate (Figure 10).
//
// The randomized resets draw from a per-(method, thread) stream seeded
// deterministically from Options.Seed and the key, so a key's decision
// sequence depends only on its own access count — never on how accesses of
// different keys interleave. That order-independence is what makes the
// detector.BurstSampler capability sound: the front-end may consume skip
// decisions lock-free (TrySkip) while other threads are mid-analysis, and
// a serialized replay of the recorded trace still reproduces every
// decision exactly.
//
// The detector implements detector.Sharded by delegating the contract to
// its wrapped FASTTRACK core, whose shards hold all variable metadata, and
// keeps the sampler state on its own striped locks so concurrent TrySkip
// probes and sampled analyses of different (method, thread) keys do not
// serialize on one mutex. It deliberately does NOT forward the EpochFast
// or OwnedAccess capabilities: those dismiss accesses without consulting
// the sampler, which would leave burst decisions unconsumed and break the
// decision-stream determinism a serialized replay relies on.
package literace

import (
	"math/rand"
	"sync"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/vclock"
)

// Options configure the sampler and the wrapped FASTTRACK core.
type Options struct {
	// BurstLength is the number of consecutive accesses sampled per burst.
	// The paper initially used 10 and switched to 1000 to reach ~1%
	// effective rates.
	BurstLength int
	// MinRate is the sampling-rate floor; the paper uses 0.1%.
	MinRate float64
	// Backoff divides the per-(method, thread) rate after each completed
	// burst until MinRate is reached.
	Backoff float64
	// Seed drives the randomized counter resets.
	Seed int64
	// Shards is the wrapped FASTTRACK core's variable-shard count (rounded
	// up to a power of two, default 64).
	Shards int
	// Arena backs the wrapped core's vector clocks and variable records
	// with a slab arena (internal/arena).
	Arena bool
	// IndexCap bounds the wrapped core's direct-indexed variable table
	// (0 default, negative disables).
	IndexCap int
}

// DefaultOptions returns the configuration used for the paper's comparison
// (burst length 1000, 0.1% floor).
func DefaultOptions() Options {
	return Options{BurstLength: 1000, MinRate: 0.001, Backoff: 10, Seed: 1}
}

type methodThread struct {
	method uint32
	thread vclock.Thread
}

type samplerState struct {
	rate  float64
	burst int        // sampled accesses remaining in the current burst
	skip  int        // accesses to skip before the next burst
	rng   *rand.Rand // per-key reset stream, deterministic in (Seed, key)
}

// samplerStripes is the number of independent sampler-state stripes. The
// stripe is chosen by hashing the (method, thread) key, so concurrent
// decisions for different keys rarely contend.
const samplerStripes = 64

// samplerStripe is one stripe of the sampler-state table with its decision
// tallies. The trailing pad keeps stripes on distinct cache lines.
type samplerStripe struct {
	mu    sync.Mutex
	state map[methodThread]*samplerState
	// sampled and skipped count data accesses by sampling decision.
	sampled, skipped uint64
	// skippedOps accumulates the fast-path counters for accesses this
	// detector's own Read/Write skipped. (FASTTRACK's Stats is an
	// aggregated snapshot, so skips are recorded here and merged in
	// Stats rather than written through the snapshot pointer.)
	skippedOps detector.Counters
	_          [64]byte
}

// Detector is the online LITERACE analysis. Like its underlying FASTTRACK
// core it admits the detector.Sharded reader-writer discipline for Read
// and Write (variable metadata lives in the core's shards; the sampler
// decision takes only the key's stripe lock) and requires exclusive access
// for synchronization and accounting calls. TrySkip (detector.BurstSampler)
// takes only the key's stripe lock and so may run concurrently with any
// operation of other threads.
type Detector struct {
	ft      *fasttrack.Detector
	opts    Options
	stripes [samplerStripes]samplerStripe
	snap    detector.Counters // Stats() merge scratch
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
	_ detector.Sharded         = (*Detector)(nil)
	_ detector.BurstSampler    = (*Detector)(nil)
	_ detector.ArenaAccounted  = (*Detector)(nil)
)

// New returns an online LITERACE detector.
func New(report detector.Reporter, opts Options) *Detector {
	if opts.BurstLength <= 0 {
		opts.BurstLength = 1000
	}
	if opts.MinRate <= 0 {
		opts.MinRate = 0.001
	}
	if opts.Backoff <= 1 {
		opts.Backoff = 10
	}
	d := &Detector{
		ft: fasttrack.NewWithOptions(report, fasttrack.Options{
			Shards:   opts.Shards,
			Arena:    opts.Arena,
			IndexCap: opts.IndexCap,
		}),
		opts: opts,
	}
	for i := range d.stripes {
		d.stripes[i].state = make(map[methodThread]*samplerState)
	}
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "literace" }

// stripeFor hashes the (method, thread) key onto its sampler stripe
// (seed-independent, so stripe placement never changes decisions).
func (d *Detector) stripeFor(key methodThread) *samplerStripe {
	h := (uint64(key.method)+1)*0xBF58476D1CE4E5B9 ^
		(uint64(key.thread)+1)*0x94D049BB133111EB
	return &d.stripes[(h>>32)&(samplerStripes-1)]
}

// Stats returns the operation counters: the underlying FASTTRACK snapshot
// (sync operations and sampled accesses) plus this sampler's skipped
// accesses on the fast-path rows. Exclusive access required; the returned
// pointer is to a snapshot the next call overwrites.
func (d *Detector) Stats() *detector.Counters {
	d.snap = *d.ft.Stats()
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.Lock()
		d.snap.Add(&st.skippedOps)
		st.mu.Unlock()
	}
	return &d.snap
}

// Sampled returns the number of data accesses the sampler decided to
// analyze, summed across stripes.
func (d *Detector) Sampled() uint64 {
	n := uint64(0)
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.Lock()
		n += st.sampled
		st.mu.Unlock()
	}
	return n
}

// Skipped returns the number of data accesses the sampler dismissed,
// summed across stripes (including decisions consumed via TrySkip).
func (d *Detector) Skipped() uint64 {
	n := uint64(0)
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.Lock()
		n += st.skipped
		st.mu.Unlock()
	}
	return n
}

// EffectiveRate returns the fraction of data accesses actually sampled.
func (d *Detector) EffectiveRate() float64 {
	sampled, skipped := d.Sampled(), d.Skipped()
	total := sampled + skipped
	if total == 0 {
		return 0
	}
	return float64(sampled) / float64(total)
}

// Shards returns the wrapped core's variable-shard count.
func (d *Detector) Shards() int { return d.ft.Shards() }

// ShardOf maps a variable to its metadata shard in the wrapped core.
func (d *Detector) ShardOf(x event.Var) int { return d.ft.ShardOf(x) }

// StateWord returns the published sampling state: the wrapped core's
// constant always-on word. LITERACE's sampling is per-(method, thread),
// not global, so the global flag must stay set — the front-end's
// "skip when not sampling" dismissal would bypass the burst sampler and
// leave decisions unconsumed. Per-access skips flow through TrySkip, which
// does consume them.
func (d *Detector) StateWord() uint64 { return d.ft.StateWord() }

// MetaPossible reports whether x might hold metadata in the wrapped core.
func (d *Detector) MetaPossible(x event.Var) bool { return d.ft.MetaPossible(x) }

// EnsureThreadSlots pre-grows the wrapped core's thread tables. Requires
// exclusive access.
func (d *Detector) EnsureThreadSlots(n int) { d.ft.EnsureThreadSlots(n) }

// stateLocked returns (method, thread)'s sampler state in stripe st,
// creating it cold (100% rate, full burst) on first use. Callers hold
// st.mu.
func (d *Detector) stateLocked(st *samplerStripe, key methodThread) *samplerState {
	s, ok := st.state[key]
	if !ok {
		// Mix the key into the seed (odd multipliers, xor-fold) so each
		// (method, thread) pair gets its own deterministic reset stream.
		h := uint64(d.opts.Seed)*0x9E3779B97F4A7C15 ^
			(uint64(key.method)+1)*0xBF58476D1CE4E5B9 ^
			(uint64(key.thread)+1)*0x94D049BB133111EB
		s = &samplerState{
			rate:  1.0,
			burst: d.opts.BurstLength,
			rng:   rand.New(rand.NewSource(int64(h))),
		}
		st.state[key] = s
	}
	return s
}

// sampleLocked decides whether to analyze this access of (method, thread),
// advancing the bursty adaptive sampler. Callers hold the key's stripe
// lock.
func (d *Detector) sampleLocked(s *samplerState) bool {
	if s.burst > 0 {
		s.burst--
		if s.burst == 0 {
			// Burst complete: back off the rate and schedule the skip gap
			// that realizes it. Randomizing the reset (unlike the
			// deterministic original) spreads bursts across trials.
			s.rate = max(s.rate/d.opts.Backoff, d.opts.MinRate)
			gap := float64(d.opts.BurstLength) * (1 - s.rate) / s.rate
			if gap > 0 {
				s.skip = 1 + s.rng.Intn(int(2*gap)+1)
			}
		}
		return true
	}
	if s.skip > 0 {
		s.skip--
		return false
	}
	s.burst = d.opts.BurstLength
	return d.sampleLocked(s)
}

// decide takes and records one sampling decision for an access.
func (d *Detector) decide(method uint32, t vclock.Thread, write bool) bool {
	key := methodThread{method, t}
	st := d.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if d.sampleLocked(d.stateLocked(st, key)) {
		st.sampled++
		return true
	}
	st.skipped++
	if write {
		st.skippedOps.WriteFast[detector.NonSampling]++
	} else {
		st.skippedOps.ReadFast[detector.NonSampling]++
	}
	return false
}

// TrySkip implements detector.BurstSampler: it consumes a pending skip
// decision for (method, t) when one is due, letting the caller dismiss the
// access without routing it through Read/Write. When the sampler would
// instead analyze the access (mid-burst, or a fresh burst is due), the
// state is left untouched and TrySkip reports false — the caller's
// subsequent Read/Write call takes the identical decision itself. Safe to
// call concurrently with operations of other threads; a single thread's
// operations must be serialized by the caller, which is what keeps the
// probe-then-analyze sequence atomic per key.
func (d *Detector) TrySkip(method uint32, t vclock.Thread) bool {
	key := methodThread{method, t}
	st := d.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	s := d.stateLocked(st, key)
	if s.burst > 0 || s.skip == 0 {
		return false
	}
	s.skip--
	st.skipped++
	// The caller dismissed the access itself, so it owns the operation
	// accounting (the front-end counts dismissals in its sharded fast
	// counters); only the decision tally is recorded here.
	return true
}

// Read samples rd(t, x); sampled reads run the FASTTRACK read analysis.
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, method uint32) {
	if d.decide(method, t, false) {
		d.ft.Read(t, x, site, method)
	}
}

// Write samples wr(t, x); sampled writes run the FASTTRACK write analysis.
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, method uint32) {
	if d.decide(method, t, true) {
		d.ft.Write(t, x, site, method)
	}
}

// Acquire is fully instrumented (O(n), like all LITERACE sync operations).
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) { d.ft.Acquire(t, m) }

// Release is fully instrumented.
func (d *Detector) Release(t vclock.Thread, m event.Lock) { d.ft.Release(t, m) }

// Fork is fully instrumented.
func (d *Detector) Fork(t, u vclock.Thread) { d.ft.Fork(t, u) }

// Join is fully instrumented.
func (d *Detector) Join(t, u vclock.Thread) { d.ft.Join(t, u) }

// VolRead is fully instrumented.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) { d.ft.VolRead(t, vx) }

// VolWrite is fully instrumented.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) { d.ft.VolWrite(t, vx) }

// VarsTracked implements detector.VarAccounted, delegating to the
// underlying FASTTRACK metadata table.
func (d *Detector) VarsTracked() int { return d.ft.VarsTracked() }

// MetadataWords implements detector.MemoryAccounted. LITERACE never
// discards metadata, so this grows with the data the program touches, not
// with the sampling rate.
func (d *Detector) MetadataWords() int {
	n := 0
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.Lock()
		n += len(st.state)
		st.mu.Unlock()
	}
	return d.ft.MetadataWords() + 5*n
}

// ArenaStats implements detector.ArenaAccounted, delegating to the wrapped
// core's arena (false on the default heap path).
func (d *Detector) ArenaStats() (detector.ArenaStats, bool) { return d.ft.ArenaStats() }
