// Package o1samples implements a sampling race detector whose per-variable
// metadata is constant size, after the direction of "Dynamic Race Detection
// with O(1) Samples" (see PAPERS.md): one write epoch and one read epoch per
// variable, no matter how many threads touch it.
//
// The discipline inverts PACER's trade. PACER records full FASTTRACK
// metadata during sampling periods (including the adaptive read map, whose
// worst case is a vector clock per variable) and spends non-sampling
// periods discarding it. Here the synchronization analysis runs at full
// precision all the time (BaseSync — cheap once tree clocks make joins
// proportional to what changed), while access metadata obeys a strict O(1)
// budget:
//
//   - A sampled access *records*: a write overwrites the variable's single
//     write epoch (clearing the read slot, like the paper's modified
//     FASTTRACK); a read overwrites the single read slot. Nothing else is
//     ever allocated per variable, so the metadata population costs
//     exactly (records) × 6 words.
//   - Every access — sampled or not — *checks* the recorded epochs against
//     the thread's clock (two constant-time Epoch.Leq probes). The clocks
//     are exact, so every report is a true race: the detector is precise at
//     every sampling rate.
//
// What the budget gives up is completeness at rate 1.0: with a single read
// slot, a write racing with several concurrent reads reports against the
// last sampled one only, so the conformance suite holds this backend to the
// precision band, not exact agreement (see exactness notes in the oracle
// suite). In exchange, detection of a race needs only its *first* access to
// fall in a sampling period — the recorded epoch persists until the next
// sampled access of its kind, so the checking side rides along for free on
// every later access.
//
// The detector mounts the same concurrency plumbing as PACER and FASTTRACK
// (internal/detector/shardbase): the Sharded stripe geometry, the published
// sampling-state word and presence filter behind the front-end's lock-free
// "not sampling and no metadata" dismissal, and the EpochFast epoch mirrors
// behind the lock-free same-epoch dismissal. It deliberately omits the
// owned-access CAS path: with a single read slot there is no multi-entry
// read map to protect, and the epoch mirrors already dismiss the repeat
// accesses that matter.
package o1samples

import (
	"sync/atomic"

	"pacer/internal/arena"
	"pacer/internal/detector"
	"pacer/internal/detector/shardbase"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Options tune the detector for production mounts.
type Options struct {
	// Shards is the number of independent variable-metadata shards
	// (rounded up to a power of two, default 64).
	Shards int
	// Arena backs vector clocks and variable records with a slab arena
	// striped like the variable shards. Records are constant-size and
	// never discarded, so the benefit is clock-growth capacity headroom
	// and uniform arena accounting, exactly as for FASTTRACK.
	Arena bool
	// IndexCap bounds the direct-indexed variable table behind the
	// same-epoch fast path (0 selects the shardbase default; negative
	// disables the index).
	IndexCap int
	// Clock selects the timestamp representation: "" or "flat" is the
	// plain vector clock; "tree" mounts the last-update tree index
	// (vclock.Tree). The always-on synchronization analysis is where this
	// backend spends its vector-clock work, so the tree representation is
	// the natural pairing.
	Clock string
}

// varShard is one slice of the variable-metadata table with its access
// counters; the pad keeps shards on distinct cache lines.
type varShard struct {
	vars  map[event.Var]*varMeta
	stats detector.Counters
	_     [64]byte
}

// varMeta is the entire per-variable state: six words, always. The epochs
// name the last *sampled* write and read; zero means "no sampled access of
// that kind recorded yet" (thread clocks start at 1, so a live epoch never
// packs to zero).
type varMeta struct {
	w     vclock.Epoch
	wSite event.Site
	r     vclock.Epoch
	rSite event.Site
	// aw and ar are the lock-free mirrors of the two epochs read by
	// TrySameEpoch, maintained with the usual conservative discipline:
	// cleared before the slot mutates, republished after it settles.
	aw, ar atomic.Uint64
}

// publishMirrors republishes both epoch mirrors from the record's settled
// state. Called under the variable's shard lock, after every mutation.
func (m *varMeta) publishMirrors() {
	m.aw.Store(uint64(m.w))
	m.ar.Store(uint64(m.r))
}

// Detector is the O(1)-samples analysis. It admits the same sharded
// reader-writer discipline as the other shardbase backends (see
// detector.Sharded and the FASTTRACK documentation for the full contract):
// synchronization operations and sampling transitions require exclusive
// access; Read and Write may run concurrently across shards; StateWord,
// MetaPossible, and TrySameEpoch are lock-free.
type Detector struct {
	sync     *detector.BaseSync
	sampling bool
	state    shardbase.State
	geo      shardbase.Geometry
	shards   []varShard
	// presence counts recorded variables per hash bucket. Records are
	// created only by sampled accesses and never discarded, so outside
	// sampling periods the front-end's lock-free probe dismisses every
	// access to a never-sampled variable without touching a lock.
	presence *shardbase.Presence
	idx      *shardbase.Index[varMeta]
	tpub     shardbase.ThreadPub
	report   detector.Reporter
	stats    detector.Counters // sync-path counters; access counters live per shard
	snap     detector.Counters // Stats() aggregation scratch
	opts     Options
	arena    *arena.Arena
	varPool  *arena.Records[varMeta]
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Sampler         = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
	_ detector.Sharded         = (*Detector)(nil)
	_ detector.EpochFast       = (*Detector)(nil)
	_ detector.ArenaAccounted  = (*Detector)(nil)
)

// New returns an O(1)-samples detector with default options.
func New(report detector.Reporter) *Detector {
	return NewWithOptions(report, Options{})
}

// NewWithOptions returns an O(1)-samples detector with explicit options.
func NewWithOptions(report detector.Reporter, opts Options) *Detector {
	geo := shardbase.NewGeometry(opts.Shards)
	d := &Detector{
		geo:      geo,
		shards:   make([]varShard, geo.Shards()),
		presence: shardbase.NewPresence(),
		idx:      shardbase.NewIndex[varMeta](opts.IndexCap),
		report:   report,
		opts:     opts,
	}
	for i := range d.shards {
		d.shards[i].vars = make(map[event.Var]*varMeta)
	}
	d.sync = detector.NewBaseSync(&d.stats)
	if opts.Arena {
		d.arena = arena.New(arena.Options{Shards: len(d.shards)})
		d.varPool = arena.NewRecords[varMeta](d.arena, func(m *varMeta) {
			m.w = 0
			m.wSite = 0
			m.r = 0
			m.rSite = 0
			m.aw.Store(0)
			m.ar.Store(0)
		})
		d.sync.SetAllocator(d.arena.Shard)
	}
	if opts.Clock == "tree" {
		if d.arena != nil {
			d.sync.SetAllocator(vclock.TreeStriped(d.arena.Shard))
		} else {
			d.sync.SetAllocator(vclock.TreeHeap(geo.Shards()))
		}
	}
	// The state word starts "not sampling, zero transitions"; the first
	// SampleBegin publishes the flag.
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "o1samples" }

// Sampling implements detector.Sampler.
func (d *Detector) Sampling() bool { return d.sampling }

// SampleBegin enters a sampling period. Unlike PACER, no clocks advance
// here: logical time never freezes (the synchronization analysis runs at
// full precision in every period), so period boundaries carry no analysis
// state of their own — only the recording flag flips.
func (d *Detector) SampleBegin() {
	if d.sampling {
		return
	}
	d.sampling = true
	d.state.Publish(true)
}

// SampleEnd leaves the sampling period. Recorded epochs persist — they are
// what the non-sampling checks run against — so nothing is reclaimed; the
// arena only trims free-list slack built up by clock growth.
func (d *Detector) SampleEnd() {
	if !d.sampling {
		return
	}
	d.sampling = false
	d.state.Publish(false)
	if d.arena != nil {
		d.arena.Trim()
	}
}

func (d *Detector) period() detector.Period { return detector.PeriodOf(d.sampling) }

// Stats returns the detector's operation counters, aggregated across the
// variable shards. Exclusive access required; the returned pointer is to a
// snapshot that the next Stats call overwrites.
func (d *Detector) Stats() *detector.Counters {
	d.snap = d.stats
	for i := range d.shards {
		d.snap.Add(&d.shards[i].stats)
	}
	return &d.snap
}

// Shards returns the number of variable-metadata shards.
func (d *Detector) Shards() int { return d.geo.Shards() }

// ShardOf maps a variable to its metadata shard.
func (d *Detector) ShardOf(x event.Var) int { return d.geo.ShardOf(x) }

// StateWord returns the atomically published sampling state.
func (d *Detector) StateWord() uint64 { return d.state.Word() }

// MetaPossible reports whether variable x might currently hold a recorded
// sample. Safe to call lock-free: a false result proves x was never
// sampled at the instant of the load, which outside sampling periods makes
// the access a guaranteed no-op (nothing to check, nothing to record).
func (d *Detector) MetaPossible(x event.Var) bool { return d.presence.Possible(x) }

// EnsureThreadSlots pre-grows the thread tables to hold identifiers below
// n. Requires exclusive access.
func (d *Detector) EnsureThreadSlots(n int) {
	d.sync.EnsureThreadSlots(n)
	d.tpub.Ensure(n)
}

// publishEpoch republishes thread t's packed epoch c@t and clock pointer.
func (d *Detector) publishEpoch(t vclock.Thread) {
	d.tpub.Publish(t, d.sync.ThreadClock(t))
}

// seedEpoch publishes thread t's epoch only if it has never been published
// — the same SmartTrack-style trim as FASTTRACK: every operation that
// advances t's own component republishes, so between them the published
// epoch stays current by itself.
func (d *Detector) seedEpoch(t vclock.Thread) {
	if d.tpub.Epoch(t) == 0 {
		d.publishEpoch(t)
	}
}

// TrySameEpoch implements detector.EpochFast: a lock-free proof that the
// access repeats the epoch of the variable's last sampled access of the
// same kind by the same thread, which the locked path below dismisses
// unconditionally (the race checks ran, against the same write epoch, when
// that sample was recorded — a sampled write clears the read slot, so a
// surviving read mirror also certifies the write epoch is unchanged).
func (d *Detector) TrySameEpoch(t vclock.Thread, x event.Var, write bool) bool {
	e := d.tpub.Epoch(t)
	if e == 0 {
		return false
	}
	m := d.idx.Lookup(x)
	if m == nil {
		return false
	}
	if write {
		return m.aw.Load() == e
	}
	return m.ar.Load() == e
}

// varMetaFor returns x's record in shard si, creating it on first sampled
// access. Only sampled accesses create records — that is the entire space
// discipline — so callers on the non-sampling path use lookupMeta instead.
func (d *Detector) varMetaFor(si int, x event.Var) *varMeta {
	sh := &d.shards[si]
	m, ok := sh.vars[x]
	if !ok {
		if d.varPool != nil {
			m = d.varPool.Get(si)
		} else {
			m = &varMeta{}
		}
		d.presence.Add(x) // before insert: a zero presence read proves absence
		sh.vars[x] = m
		d.idx.Publish(x, m)
	}
	return m
}

// lookupMeta returns x's record or nil without creating one.
func (d *Detector) lookupMeta(si int, x event.Var) *varMeta {
	return d.shards[si].vars[x]
}

func (d *Detector) emit(sh *varShard, r detector.Race) {
	sh.stats.Races++
	if d.report != nil {
		d.report(r)
	}
}

// Read checks the recorded write epoch against C_t and, when sampling,
// overwrites the read slot with this access.
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	si := d.ShardOf(x)
	sh := &d.shards[si]
	p := d.period()
	ct := d.sync.ThreadClock(t)
	d.seedEpoch(t)
	var m *varMeta
	if d.sampling {
		m = d.varMetaFor(si, x)
	} else if m = d.lookupMeta(si, x); m == nil {
		// Never sampled: nothing to check, nothing to record. This is the
		// locked twin of the front-end's lock-free dismissal.
		sh.stats.ReadFast[p]++
		return
	}
	sh.stats.ReadSlow[p]++
	c := ct.Get(t)
	// Same epoch as the recorded read: the write check ran, against this
	// same write epoch, when the slot was recorded (a sampled write would
	// have cleared it) — nothing to re-check or re-record, regardless of
	// the current period.
	if m.r == vclock.MakeEpoch(t, c) {
		return
	}
	// check W_x ⊑ C_t.
	if !m.w.Leq(ct) {
		d.emit(sh, detector.Race{
			Var: x, Kind: detector.WriteRead,
			FirstThread: m.w.Thread(), SecondThread: t,
			FirstSite: m.wSite, SecondSite: site,
		})
	}
	if !d.sampling {
		return
	}
	// Record: this read becomes the variable's read sample. Close the
	// lock-free dismissal until the new slot is settled.
	m.ar.Store(0)
	m.r = vclock.MakeEpoch(t, c)
	m.rSite = site
	m.publishMirrors()
}

// Write checks both recorded epochs against C_t and, when sampling,
// overwrites the write epoch (clearing the read slot, like the paper's
// modified FASTTRACK: the new write subsumes it as the frontier the next
// access must be ordered after).
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	si := d.ShardOf(x)
	sh := &d.shards[si]
	p := d.period()
	ct := d.sync.ThreadClock(t)
	d.seedEpoch(t)
	var m *varMeta
	if d.sampling {
		m = d.varMetaFor(si, x)
	} else if m = d.lookupMeta(si, x); m == nil {
		sh.stats.WriteFast[p]++
		return
	}
	sh.stats.WriteSlow[p]++
	c := ct.Get(t)
	// Same epoch as the recorded write: both checks ran when it was
	// recorded, and re-recording would be the identity.
	if m.w == vclock.MakeEpoch(t, c) {
		return
	}
	// check W_x ⊑ C_t.
	if !m.w.Leq(ct) {
		d.emit(sh, detector.Race{
			Var: x, Kind: detector.WriteWrite,
			FirstThread: m.w.Thread(), SecondThread: t,
			FirstSite: m.wSite, SecondSite: site,
		})
	}
	// check R_x ⊑ C_t (the single slot is the whole read state).
	if !m.r.Leq(ct) {
		d.emit(sh, detector.Race{
			Var: x, Kind: detector.ReadWrite,
			FirstThread: m.r.Thread(), SecondThread: t,
			FirstSite: m.rSite, SecondSite: site,
		})
	}
	if !d.sampling {
		return
	}
	m.aw.Store(0)
	m.ar.Store(0)
	m.w = vclock.MakeEpoch(t, c)
	m.wSite = site
	m.r = 0
	m.rSite = 0
	m.publishMirrors()
}

// The synchronization wrappers run the full GENERIC analysis in every
// period (sync tracking is what keeps the constant-size checks precise)
// and follow FASTTRACK's republication discipline: a thread's epoch is
// republished exactly where its own component advances. The changed bit
// BaseSync returns from Acquire and VolRead is deliberately unused — the
// trim here is unconditional, which subsumes it (an acquire can change
// every component but the thread's own).

// Acquire implements Algorithm 1.
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) {
	d.sync.Acquire(t, m)
}

// Release implements Algorithm 2.
func (d *Detector) Release(t vclock.Thread, m event.Lock) {
	d.sync.Release(t, m)
	d.publishEpoch(t)
}

// Fork implements Algorithm 3.
func (d *Detector) Fork(t, u vclock.Thread) {
	d.sync.Fork(t, u)
	d.publishEpoch(t)
}

// Join implements Algorithm 4.
func (d *Detector) Join(t, u vclock.Thread) {
	d.sync.Join(t, u)
	d.publishEpoch(u)
}

// VolRead implements Algorithm 14.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) {
	d.sync.VolRead(t, vx)
}

// VolWrite implements Algorithm 15.
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) {
	d.sync.VolWrite(t, vx)
	d.publishEpoch(t)
}

// VarsTracked implements detector.VarAccounted: every variable holding a
// recorded sample.
func (d *Detector) VarsTracked() int {
	n := 0
	for i := range d.shards {
		n += len(d.shards[i].vars)
	}
	return n
}

// MetadataWords implements detector.MemoryAccounted. Six words per
// recorded variable — the constant the backend is named for — plus the
// synchronization clocks.
func (d *Detector) MetadataWords() int {
	w := d.sync.MetadataWords()
	for i := range d.shards {
		w += 6 * len(d.shards[i].vars)
	}
	return w
}

// ArenaStats implements detector.ArenaAccounted.
func (d *Detector) ArenaStats() (detector.ArenaStats, bool) {
	if d.arena == nil {
		return detector.ArenaStats{}, false
	}
	st := d.arena.Stats()
	return detector.ArenaStats{
		SlabsLive: st.Live,
		SlabsFree: st.Free,
		Recycles:  st.Recycles,
		Misses:    st.Misses,
		Trimmed:   st.Trimmed,
	}, true
}
