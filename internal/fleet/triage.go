package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
)

// TriageEntry is one row of the wire triage-list schema — the flat JSON
// shape pacer.Aggregator.MarshalJSON exports and ImportJSON consumes
// (see docs/fleet.md). The fleet package materializes pushed lists into
// maps of these so the production ingest tier can apply delta pushes as
// key-wise upserts and re-export an instance's cumulative list at any
// time; pacer.Aggregator itself never sees deltas.
type TriageEntry struct {
	Var           uint32 `json:"var"`
	Kind          string `json:"kind"`
	FirstSite     uint32 `json:"first_site"`
	SecondSite    uint32 `json:"second_site"`
	FirstThread   uint32 `json:"first_thread"`
	SecondThread  uint32 `json:"second_thread"`
	Count         int    `json:"count"`
	Instances     int    `json:"instances"`
	FirstInstance string `json:"first_instance"`
}

// TriageKey identifies a distinct race the same way the aggregator does:
// variable, unordered site pair, and canonicalized access-kind pair.
type TriageKey struct {
	Var  uint32
	Kind string
	A, B uint32
}

// Key canonicalizes e to its distinct-race key, mirroring the
// aggregator's keyOf: sites sort into (A <= B) order with the kind pair
// swapping along (a write-read observed as s2-then-s1 is the read-write
// on (s1, s2)), and the two temporal orders of a single-site mixed race
// collapse onto read-write. Two instances exporting the mirrored
// orderings of one static race therefore produce the same key, which is
// what lets a delta upsert from one instance land on the entry a full
// snapshot created earlier.
func (e TriageEntry) Key() TriageKey {
	a, b, k := e.FirstSite, e.SecondSite, e.Kind
	if a > b {
		a, b = b, a
		switch k {
		case "write-read":
			k = "read-write"
		case "read-write":
			k = "write-read"
		}
	}
	if a == b && k == "write-read" {
		k = "read-write"
	}
	return TriageKey{Var: e.Var, Kind: k, A: a, B: b}
}

func validKind(k string) bool {
	switch k {
	case "write-write", "write-read", "read-write":
		return true
	}
	return false
}

// ParseTriage parses a wire triage list (full or delta — the schema is
// identical, a delta is just a shorter list) into a map keyed by
// distinct race, validating each row the same way pacer.ImportJSON does.
// Duplicate keys — impossible from MarshalJSON but possible in a
// hand-edited list — fold exactly as ImportJSON folds them, so a
// materialize-then-remarshal round trip merges to the same aggregator
// state as importing the raw blob.
func ParseTriage(data []byte) (map[TriageKey]TriageEntry, error) {
	var in []TriageEntry
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("fleet: parsing triage list: %w", err)
	}
	out := make(map[TriageKey]TriageEntry, len(in))
	for i, e := range in {
		if !validKind(e.Kind) {
			return nil, fmt.Errorf("fleet: triage entry %d: unknown race kind %q", i, e.Kind)
		}
		if e.Count < 1 || e.Instances < 1 || e.Instances > e.Count {
			return nil, fmt.Errorf("fleet: triage entry %d has implausible count %d / instances %d",
				i, e.Count, e.Instances)
		}
		k := e.Key()
		dst, ok := out[k]
		if !ok {
			out[k] = e
			continue
		}
		dst.Count += e.Count
		dst.Instances += e.Instances
		if dst.FirstInstance == e.FirstInstance {
			dst.Instances-- // the shared first reporter was already counted
		}
		out[k] = dst
	}
	return out, nil
}

// MarshalTriage renders a materialized triage map back to the wire list
// schema in a deterministic order (ascending by key), so snapshots and
// delta pushes built from the same state are byte-stable.
func MarshalTriage(entries map[TriageKey]TriageEntry) ([]byte, error) {
	return json.Marshal(SortedTriage(entries))
}

// SortedTriage flattens a materialized triage map into a deterministic
// ascending-key slice — the canonical persistence and delta-wire order.
func SortedTriage(entries map[TriageKey]TriageEntry) []TriageEntry {
	keys := make([]TriageKey, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		if ki.Var != kj.Var {
			return ki.Var < kj.Var
		}
		if ki.A != kj.A {
			return ki.A < kj.A
		}
		if ki.B != kj.B {
			return ki.B < kj.B
		}
		return ki.Kind < kj.Kind
	})
	out := make([]TriageEntry, len(keys))
	for i, k := range keys {
		out[i] = entries[k]
	}
	return out
}

// DiffTriage returns the entries of cur that are new or changed relative
// to base — the payload of a delta push. Triage lists only grow (counts
// are cumulative and entries are never retracted), so an upsert list is
// a complete delta; there is no removal case.
func DiffTriage(cur, base map[TriageKey]TriageEntry) map[TriageKey]TriageEntry {
	changed := make(map[TriageKey]TriageEntry)
	for k, e := range cur {
		if old, ok := base[k]; !ok || old != e {
			changed[k] = e
		}
	}
	return changed
}
