package fleet

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pacer"
)

// CollectorOptions configure a Collector.
type CollectorOptions struct {
	// MaxBodyBytes bounds the compressed size of one push. Default 8 MiB.
	MaxBodyBytes int64
	// MaxDecompressedBytes bounds one push after gzip inflation, so a
	// small compressed bomb cannot OOM the collector. Default
	// 10 * MaxBodyBytes.
	MaxDecompressedBytes int64
	// AuthToken, when non-empty, requires every push to carry
	// "Authorization: Bearer <token>" with this exact token; anything else
	// gets 401 before the body is read. The read-only endpoints (/races,
	// /metrics, /healthz) stay open — deployments front those with their
	// own access control. Compared in constant time.
	AuthToken string
	// Clock supplies last-seen timestamps; tests inject a fake. Default
	// time.Now.
	Clock func() time.Time
	// InstanceTTL, when positive, expires instances whose last push is
	// older than this: a decommissioned or renamed instance drops out of
	// /races and /metrics after the TTL instead of haunting the merged
	// view forever. Expiry is lazy (checked on pushes and reads), so no
	// background goroutine is needed. Zero retains instances for the
	// collector's lifetime.
	InstanceTTL time.Duration
}

// instanceState is the collector's memory of one instance: its latest
// snapshot, verbatim, plus envelope bookkeeping.
type instanceState struct {
	epoch    uint64
	seq      uint64
	dropped  uint64
	lastSeen time.Time
	races    []byte
	arena    *ArenaGauges
	shadow   *ShadowGauges
}

// Collector is the fleet-side half of the transport: an http.Handler that
// accepts Push snapshots, keeps the latest one per instance, and merges
// them on demand into a fleet-wide triage list. cmd/pacerd wraps it in a
// daemon; tests mount it on a loopback listener.
//
// Because each push replaces its instance's previous snapshot, the merged
// view is a pure function of per-instance state: retries, duplicates, and
// re-deliveries cannot double-count, and a crashed-and-restarted reporter
// simply resumes overwriting its slot — its fresh random epoch resets the
// sequence tracking, so its restarted seq numbering is never mistaken for
// the dead process's stale pushes. Merging happens in sorted instance
// order, so the merged output — including which instance gets first-seen
// attribution for a race several instances reported — is deterministic
// for a given set of snapshots.
type Collector struct {
	opts CollectorOptions

	mu        sync.Mutex
	instances map[string]*instanceState
	pushes    uint64 // accepted pushes (including idempotently ignored ones)
	badPushes uint64 // rejected pushes (decode/validation failures)
	stale     uint64 // accepted-but-ignored pushes (seq not newer)
	unauth    uint64 // pushes rejected for a missing or wrong bearer token
	expired   uint64 // instances dropped after outliving InstanceTTL
}

// NewCollector returns an empty collector.
func NewCollector(opts CollectorOptions) *Collector {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	if opts.MaxDecompressedBytes <= 0 {
		opts.MaxDecompressedBytes = 10 * opts.MaxBodyBytes
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Collector{opts: opts, instances: make(map[string]*instanceState)}
}

// Handler returns the collector's HTTP surface:
//
//	POST {PushPath}  — accept one snapshot
//	GET  /races      — the merged fleet-wide triage list as JSON
//	GET  /healthz    — liveness
//	GET  /metrics    — Prometheus text metrics
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PushPath, c.handlePush)
	mux.HandleFunc("/races", c.handleRaces)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", c.handleMetrics)
	return mux
}

func (c *Collector) handlePush(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "push must POST", http.StatusMethodNotAllowed)
		return
	}
	if !c.authorized(req) {
		c.mu.Lock()
		c.unauth++
		c.mu.Unlock()
		w.Header().Set("WWW-Authenticate", `Bearer realm="pacerd"`)
		http.Error(w, "push requires a valid bearer token", http.StatusUnauthorized)
		return
	}
	p, err := DecodePush(http.MaxBytesReader(w, req.Body, c.opts.MaxBodyBytes), c.opts.MaxDecompressedBytes)
	if err == nil {
		// Reject triage lists the merge path could not consume, while the
		// reporter is still around to hear about it.
		err = pacer.NewAggregator().ImportJSON(p.Races)
	}
	if err != nil {
		c.mu.Lock()
		c.badPushes++
		c.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.expireLocked()
	c.pushes++
	st := c.instances[p.Instance]
	if st == nil {
		st = &instanceState{}
		c.instances[p.Instance] = st
	}
	st.lastSeen = c.opts.Clock()
	if p.Epoch == st.epoch && p.Seq <= st.seq && st.races != nil {
		// Same process: a retry of something already absorbed, or an
		// out-of-order delivery superseded by a newer snapshot.
		// Acknowledge without touching state, so the reporter stops
		// re-sending. A different epoch is a restarted (or replacement)
		// process whose seq numbering started over — its push is fresh
		// state, never stale, however small its seq.
		c.stale++
		c.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	st.epoch = p.Epoch
	st.seq = p.Seq
	st.dropped = p.Dropped
	st.races = p.Races
	st.arena = p.Arena
	st.shadow = p.Shadow
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// expireLocked drops instances whose last push is older than InstanceTTL.
// Callers hold c.mu. Lazy expiry keeps the collector goroutine-free: the
// merged view and the metrics page are the only observers of instance
// state, so evicting on their reads (and on pushes, which would resurrect
// an expired name anyway) is indistinguishable from a background sweep.
func (c *Collector) expireLocked() {
	ttl := c.opts.InstanceTTL
	if ttl <= 0 {
		return
	}
	cutoff := c.opts.Clock().Add(-ttl)
	for name, st := range c.instances {
		if st.lastSeen.Before(cutoff) {
			delete(c.instances, name)
			c.expired++
		}
	}
}

// authorized checks the push's bearer token against CollectorOptions.
// AuthToken (always true when no token is configured). Constant-time, so
// the comparison leaks nothing about how much of a guessed token matched.
func (c *Collector) authorized(req *http.Request) bool {
	if c.opts.AuthToken == "" {
		return true
	}
	const prefix = "Bearer "
	h := req.Header.Get("Authorization")
	if !strings.HasPrefix(h, prefix) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(h[len(prefix):]), []byte(c.opts.AuthToken)) == 1
}

// Merged reconstructs every instance's aggregator from its latest
// snapshot and merges them, in sorted instance order, into one fleet-wide
// aggregator.
func (c *Collector) Merged() (*pacer.Aggregator, error) {
	c.mu.Lock()
	c.expireLocked()
	names := make([]string, 0, len(c.instances))
	blobs := make(map[string][]byte, len(c.instances))
	for name, st := range c.instances {
		if st.races == nil {
			continue
		}
		names = append(names, name)
		blobs[name] = st.races
	}
	c.mu.Unlock()
	sort.Strings(names)
	agg := pacer.NewAggregator()
	for _, name := range names {
		if err := agg.ImportJSON(blobs[name]); err != nil {
			// Snapshots are validated at push time, so this means
			// collector-side corruption; surface it rather than serve a
			// partial fleet view.
			return nil, fmt.Errorf("fleet: snapshot from %s: %w", name, err)
		}
	}
	return agg, nil
}

func (c *Collector) handleRaces(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "races must GET", http.StatusMethodNotAllowed)
		return
	}
	agg, err := c.Merged()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	blob, err := agg.MarshalJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
	w.Write([]byte("\n"))
}

func (c *Collector) handleMetrics(w http.ResponseWriter, req *http.Request) {
	type instRow struct {
		name     string
		seq      uint64
		dropped  uint64
		lastSeen time.Time
		arena    *ArenaGauges
		shadow   *ShadowGauges
	}
	c.mu.Lock()
	c.expireLocked()
	pushes, bad, stale, unauth, expired := c.pushes, c.badPushes, c.stale, c.unauth, c.expired
	rows := make([]instRow, 0, len(c.instances))
	for name, st := range c.instances {
		rows = append(rows, instRow{name, st.seq, st.dropped, st.lastSeen, st.arena, st.shadow})
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	distinct, mergeFailing := 0, 0
	if agg, err := c.Merged(); err == nil {
		distinct = agg.Distinct()
	} else {
		mergeFailing = 1
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP pacer_collector_pushes_total Pushes accepted (including idempotently ignored retries).\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_pushes_total counter\n")
	fmt.Fprintf(w, "pacer_collector_pushes_total %d\n", pushes)
	fmt.Fprintf(w, "# HELP pacer_collector_push_errors_total Pushes rejected (bad schema, bad payload).\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_push_errors_total counter\n")
	fmt.Fprintf(w, "pacer_collector_push_errors_total %d\n", bad)
	fmt.Fprintf(w, "# HELP pacer_collector_unauthorized_total Pushes rejected for a missing or wrong bearer token.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_unauthorized_total counter\n")
	fmt.Fprintf(w, "pacer_collector_unauthorized_total %d\n", unauth)
	fmt.Fprintf(w, "# HELP pacer_collector_stale_pushes_total Pushes acknowledged without effect (sequence not newer).\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_stale_pushes_total counter\n")
	fmt.Fprintf(w, "pacer_collector_stale_pushes_total %d\n", stale)
	fmt.Fprintf(w, "# HELP pacer_collector_instances_expired_total Instances dropped after going unseen for longer than the retention TTL.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_instances_expired_total counter\n")
	fmt.Fprintf(w, "pacer_collector_instances_expired_total %d\n", expired)
	fmt.Fprintf(w, "# HELP pacer_collector_instances Instances with a snapshot on file.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_instances gauge\n")
	fmt.Fprintf(w, "pacer_collector_instances %d\n", len(rows))
	fmt.Fprintf(w, "# HELP pacer_collector_merge_failing 1 when the fleet-wide merge errors (collector-side snapshot corruption; /races is returning 500), else 0.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_merge_failing gauge\n")
	fmt.Fprintf(w, "pacer_collector_merge_failing %d\n", mergeFailing)
	fmt.Fprintf(w, "# HELP pacer_collector_distinct_races Distinct races in the merged fleet view. Absent while the merge is failing, so dashboards never read a broken merge as zero races.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_distinct_races gauge\n")
	if mergeFailing == 0 {
		fmt.Fprintf(w, "pacer_collector_distinct_races %d\n", distinct)
	}
	fmt.Fprintf(w, "# HELP pacer_collector_instance_last_seen_timestamp_seconds Unix time of each instance's last push.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_instance_last_seen_timestamp_seconds gauge\n")
	for _, row := range rows {
		fmt.Fprintf(w, "pacer_collector_instance_last_seen_timestamp_seconds{instance=%q} %d\n",
			row.name, row.lastSeen.Unix())
	}
	fmt.Fprintf(w, "# HELP pacer_collector_reporter_dropped_total Snapshots each instance's bounded queue evicted.\n")
	fmt.Fprintf(w, "# TYPE pacer_collector_reporter_dropped_total counter\n")
	for _, row := range rows {
		fmt.Fprintf(w, "pacer_collector_reporter_dropped_total{instance=%q} %d\n", row.name, row.dropped)
	}

	// Arena occupancy, per arena-backed instance (as of each instance's
	// last snapshot; heap-backed instances emit no series).
	arenaMetrics := []struct {
		name, typ, help string
		get             func(*ArenaGauges) uint64
	}{
		{"pacer_arena_slabs_live", "gauge", "Metadata slabs currently held by the instance's detector.",
			func(a *ArenaGauges) uint64 { return a.SlabsLive }},
		{"pacer_arena_slabs_free", "gauge", "Metadata slabs parked on the instance's free lists.",
			func(a *ArenaGauges) uint64 { return a.SlabsFree }},
		{"pacer_arena_recycles_total", "counter", "Slab acquisitions served from a free list.",
			func(a *ArenaGauges) uint64 { return a.Recycles }},
		{"pacer_arena_misses_total", "counter", "Slab acquisitions that fell through to the heap.",
			func(a *ArenaGauges) uint64 { return a.Misses }},
		{"pacer_arena_trimmed_total", "counter", "Slabs returned to the GC by bulk reclamation.",
			func(a *ArenaGauges) uint64 { return a.Trimmed }},
	}
	for _, m := range arenaMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, row := range rows {
			if row.arena != nil {
				fmt.Fprintf(w, "%s{instance=%q} %d\n", m.name, row.name, m.get(row.arena))
			}
		}
	}

	// Shadow-map resolution, per instrumented instance (instances running
	// behind pacergo's front door; plain library instances emit no series).
	shadowMetrics := []struct {
		name, typ, help string
		get             func(*ShadowGauges) uint64
	}{
		{"pacer_shadow_hits_total", "counter", "Lock-free shadow-map resolutions of known addresses.",
			func(s *ShadowGauges) uint64 { return s.Hits }},
		{"pacer_shadow_misses_total", "counter", "First-sight address registrations (fresh VarID allocated).",
			func(s *ShadowGauges) uint64 { return s.Misses }},
		{"pacer_shadow_evicts_total", "counter", "Explicit evictions of freed addresses.",
			func(s *ShadowGauges) uint64 { return s.Evicts }},
		{"pacer_shadow_vars", "gauge", "Addresses currently mapped to variable identifiers.",
			func(s *ShadowGauges) uint64 { return s.Vars }},
	}
	for _, m := range shadowMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, row := range rows {
			if row.shadow != nil {
				fmt.Fprintf(w, "%s{instance=%q} %d\n", m.name, row.name, m.get(row.shadow))
			}
		}
	}
}
