// Fleet transport tests: everything runs over real loopback HTTP
// (httptest) with injected faults, so they are hermetic and safe for the
// quick CI gate under -race.
package fleet_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pacer"
	"pacer/internal/fleet"
)

// flakyTransport fails the first failN pushes it sees (connection-level
// errors), recording every attempt's timestamp. Non-push traffic passes
// through untouched.
type flakyTransport struct {
	base http.RoundTripper

	mu       sync.Mutex
	failLeft int
	attempts []time.Time
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path != fleet.PushPath {
		return f.base.RoundTrip(req)
	}
	f.mu.Lock()
	f.attempts = append(f.attempts, time.Now())
	fail := f.failLeft > 0
	if fail {
		f.failLeft--
	}
	f.mu.Unlock()
	if fail {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errors.New("injected transport fault")
	}
	return f.base.RoundTrip(req)
}

func (f *flakyTransport) snapshot() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Time(nil), f.attempts...)
}

// runInstance drives one detector instance deterministically: an optional
// shared racy pair every instance executes (identical ids everywhere, so
// the reports coincide), plus nuniq unique racy pairs at instance-specific
// sites. Sampling rate 1 makes detection certain, and all detector calls
// are issued from this goroutine, so each instance's reports are fixed.
func runInstance(report func(pacer.Race), uniqBase pacer.SiteID, nuniq int) {
	d := pacer.New(pacer.Options{SamplingRate: 1, Seed: 7, OnRace: report})
	main := d.NewThread()
	a, b := d.Fork(main), d.Fork(main)

	shared := d.NewVarID() // var 0 in every instance
	d.Write(a, shared, 1000)
	d.Read(b, shared, 1001)

	for i := 0; i < nuniq; i++ {
		v := d.NewVarID()
		s := uniqBase + pacer.SiteID(2*i)
		d.Write(a, v, s)
		d.Read(b, v, s+1)
	}
	d.Join(main, a)
	d.Join(main, b)
}

// TestFleetRoundTrip is the end-to-end acceptance test: four detector
// instances (three of them concurrent) report through fleet.Reporters to
// a collector on a loopback listener, with transient failures injected
// both at the transport (per-instance connection errors) and at the
// server (503s), and the merged /races output must be byte-identical to
// the JSON export of a single in-process Aggregator fed the same race
// stream — no loss and no double-counting across retries.
func TestFleetRoundTrip(t *testing.T) {
	col := fleet.NewCollector(fleet.CollectorOptions{})
	handler := col.Handler()
	var serverFaults atomic.Int64
	serverFaults.Store(2) // the first two pushes to arrive get a 503
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == fleet.PushPath && serverFaults.Add(-1) >= 0 {
			http.Error(w, "injected 503", http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, req)
	}))
	defer srv.Close()

	ref := pacer.NewAggregator() // the in-process ground truth

	instances := []string{"inst-a", "inst-b", "inst-c", "inst-d"}
	run := func(idx int) {
		name := instances[idx]
		local := pacer.NewAggregator()
		flaky := &flakyTransport{base: http.DefaultTransport, failLeft: 2}
		rep, err := fleet.NewReporter(local, fleet.ReporterOptions{
			Collector:  srv.URL,
			Instance:   name,
			Interval:   5 * time.Millisecond,
			Timeout:    2 * time.Second,
			QueueLen:   3,
			MinBackoff: 2 * time.Millisecond,
			MaxBackoff: 20 * time.Millisecond,
			Client:     &http.Client{Transport: flaky},
			Seed:       int64(idx) + 1,
		})
		if err != nil {
			t.Errorf("%s: reporter: %v", name, err)
			return
		}
		runInstance(func(r pacer.Race) {
			local.Reporter(name)(r)
			ref.Reporter(name)(r)
		}, pacer.SiteID(100*(idx+1)), idx+1)

		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := rep.Close(ctx); err != nil {
			t.Errorf("%s: flush: %v", name, err)
		}
		st := rep.Stats()
		if st.Pushes == 0 {
			t.Errorf("%s: no push ever succeeded: %+v", name, st)
		}
		if st.Failures < 2 {
			t.Errorf("%s: expected at least the 2 injected transport faults, got %d failures", name, st.Failures)
		}
	}

	// inst-a runs to completion first, so fleet-wide first-seen attribution
	// for the shared race is deterministically inst-a (temporally first in
	// the reference, alphabetically first in the collector's merge order).
	run(0)
	var wg sync.WaitGroup
	for idx := 1; idx < len(instances); idx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			run(idx)
		}(idx)
	}
	wg.Wait()

	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatalf("exporting reference: %v", err)
	}
	got := httpGet(t, srv.URL+"/races")
	if !bytes.Equal(bytes.TrimSpace(got), want) {
		t.Fatalf("merged /races differs from in-process reference:\n got %s\nwant %s", got, want)
	}

	// Sanity on the reference itself: 1 shared + 1+2+3+4 unique races.
	if n := ref.Distinct(); n != 11 {
		t.Fatalf("reference has %d distinct races, want 11", n)
	}

	if body := string(httpGet(t, srv.URL+"/healthz")); body != "ok\n" {
		t.Errorf("/healthz said %q", body)
	}
	metrics := string(httpGet(t, srv.URL+"/metrics"))
	for _, want := range []string{
		"pacer_collector_instances 4",
		"pacer_collector_distinct_races 11",
		"pacer_collector_merge_failing 0",
		`pacer_collector_instance_last_seen_timestamp_seconds{instance="inst-a"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestFleetReporterCollectorDown pins the degradation story: with the
// collector unreachable the detector's hot path still completes, the
// bounded queue evicts oldest snapshots (counted), retries back off
// exponentially with jitter, and Close gives up at its deadline with an
// error naming the unsent snapshots.
func TestFleetReporterCollectorDown(t *testing.T) {
	local := pacer.NewAggregator()
	flaky := &flakyTransport{base: http.DefaultTransport, failLeft: 1 << 30}
	const minBackoff = 10 * time.Millisecond
	rep, err := fleet.NewReporter(local, fleet.ReporterOptions{
		Collector:  "http://127.0.0.1:0", // nothing listens; transport fails first anyway
		Instance:   "inst-down",
		Interval:   3 * time.Millisecond,
		Timeout:    100 * time.Millisecond,
		QueueLen:   2,
		MinBackoff: minBackoff,
		MaxBackoff: 80 * time.Millisecond,
		Client:     &http.Client{Transport: flaky},
		Seed:       42,
	})
	if err != nil {
		t.Fatalf("reporter: %v", err)
	}

	// Detection proceeds at full speed regardless of the dead collector.
	start := time.Now()
	runInstance(local.Reporter("inst-down"), 100, 3)
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("detection took %v with the collector down; the hot path must not block on the network", d)
	}

	// Wait for at least 4 push attempts, then check the gaps against the
	// deterministic lower bounds of exponential backoff with jitter in
	// [b/2, b]: 5ms, 10ms, 20ms. (Scheduling can only lengthen gaps, so
	// lower bounds are safe to assert even on loaded CI machines.)
	deadline := time.Now().Add(10 * time.Second)
	var attempts []time.Time
	for {
		attempts = flaky.snapshot()
		if len(attempts) >= 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(attempts) < 4 {
		t.Fatalf("only %d push attempts in 10s", len(attempts))
	}
	for i := 1; i < 4; i++ {
		gap := attempts[i].Sub(attempts[i-1])
		lower := (minBackoff << (i - 1)) / 2
		if gap < lower {
			t.Errorf("retry gap %d was %v, below the backoff floor %v", i, gap, lower)
		}
	}

	// Snapshots keep being taken during the outage and the bounded queue
	// evicts the oldest.
	waitFor(t, 10*time.Second, func() bool { return rep.Stats().Dropped > 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = rep.Close(ctx)
	if err == nil {
		t.Fatal("Close flushed successfully against a dead collector")
	}
	if !strings.Contains(err.Error(), "unsent") {
		t.Errorf("flush error does not name unsent snapshots: %v", err)
	}
	st := rep.Stats()
	if st.Pushes != 0 || st.Failures == 0 || st.Dropped == 0 {
		t.Errorf("stats after dead-collector run: %+v", st)
	}
}

// TestFleetCollectorIdempotent re-delivers the same snapshot and delivers
// a stale one; neither may change the merged view.
func TestFleetCollectorIdempotent(t *testing.T) {
	col := fleet.NewCollector(fleet.CollectorOptions{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	agg := pacer.NewAggregator()
	agg.Reporter("inst-x")(pacer.Race{Var: 1, Kind: pacer.WriteRead, FirstSite: 10, SecondSite: 11})
	agg.Reporter("inst-x")(pacer.Race{Var: 2, Kind: pacer.WriteRead, FirstSite: 20, SecondSite: 21})
	full, _ := json.Marshal(agg)

	older := pacer.NewAggregator()
	older.Reporter("inst-x")(pacer.Race{Var: 1, Kind: pacer.WriteRead, FirstSite: 10, SecondSite: 11})
	partial, _ := json.Marshal(older)

	push := func(seq uint64, races []byte) int {
		t.Helper()
		var body bytes.Buffer
		err := fleet.EncodePush(&body, &fleet.Push{
			Version: fleet.SchemaVersion, Instance: "inst-x", Seq: seq, Races: races,
		})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		resp, err := http.Post(srv.URL+fleet.PushPath, "application/json", &body)
		if err != nil {
			t.Fatalf("push: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if code := push(2, full); code != http.StatusNoContent {
		t.Fatalf("first push: status %d", code)
	}
	merged := httpGet(t, srv.URL+"/races")
	if code := push(2, full); code != http.StatusNoContent {
		t.Fatalf("duplicate push not acknowledged: status %d", code)
	}
	if code := push(1, partial); code != http.StatusNoContent {
		t.Fatalf("stale push not acknowledged: status %d", code)
	}
	if again := httpGet(t, srv.URL+"/races"); !bytes.Equal(again, merged) {
		t.Errorf("re-delivery changed the merged view:\n was %s\n now %s", merged, again)
	}
	if !strings.Contains(string(httpGet(t, srv.URL+"/metrics")), "pacer_collector_stale_pushes_total 2") {
		t.Errorf("stale pushes not counted")
	}

	// A newer sequence replaces, never accumulates: pushing the same races
	// under seq 3 leaves counts unchanged.
	if code := push(3, full); code != http.StatusNoContent {
		t.Fatalf("newer push: status %d", code)
	}
	if again := httpGet(t, srv.URL+"/races"); !bytes.Equal(again, merged) {
		t.Errorf("cumulative re-push double-counted:\n was %s\n now %s", merged, again)
	}
}

// TestFleetCollectorEpochRestart pins the restart semantics: a push in a
// new epoch is fresh state however small its seq (a restarted process
// reusing its instance name restarts its numbering at 1), while within
// one epoch the stale-seq dedup still holds.
func TestFleetCollectorEpochRestart(t *testing.T) {
	col := fleet.NewCollector(fleet.CollectorOptions{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	old := pacer.NewAggregator()
	old.Reporter("inst-x")(pacer.Race{Var: 1, Kind: pacer.WriteRead, FirstSite: 10, SecondSite: 11})
	oldRaces, _ := json.Marshal(old)
	fresh := pacer.NewAggregator()
	fresh.Reporter("inst-x")(pacer.Race{Var: 2, Kind: pacer.WriteRead, FirstSite: 20, SecondSite: 21})
	freshRaces, _ := json.Marshal(fresh)

	push := func(epoch, seq uint64, races []byte) {
		t.Helper()
		var body bytes.Buffer
		err := fleet.EncodePush(&body, &fleet.Push{
			Version: fleet.SchemaVersion, Instance: "inst-x", Epoch: epoch, Seq: seq, Races: races,
		})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		resp, err := http.Post(srv.URL+fleet.PushPath, "application/json", &body)
		if err != nil {
			t.Fatalf("push: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("push epoch %d seq %d: status %d", epoch, seq, resp.StatusCode)
		}
	}

	// The dead process got as far as seq 7 in epoch 1000.
	push(1000, 7, oldRaces)
	// Its replacement starts over at seq 1 in epoch 2000; the collector
	// must take the new snapshot, not discard it as stale.
	push(2000, 1, freshRaces)
	want, _ := json.Marshal(fresh)
	if got := bytes.TrimSpace(httpGet(t, srv.URL+"/races")); !bytes.Equal(got, want) {
		t.Fatalf("restarted instance's snapshot dropped as stale:\n got %s\nwant %s", got, want)
	}
	// Within the new epoch the usual dedup applies: a re-delivered seq-1
	// snapshot carrying the old races must not regress the state.
	push(2000, 1, oldRaces)
	if got := bytes.TrimSpace(httpGet(t, srv.URL+"/races")); !bytes.Equal(got, want) {
		t.Errorf("same-epoch stale push changed the merged view: %s", got)
	}
}

// TestFleetReporterRestartSameInstance is the scenario from the field: a
// containerized process (hostname+pid names collapse — pid is always 1)
// dies after reporting, restarts under the same instance name, and finds
// new races. Its reports must reach the collector even though its seq
// numbering restarted below the dead process's.
func TestFleetReporterRestartSameInstance(t *testing.T) {
	col := fleet.NewCollector(fleet.CollectorOptions{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	report := func(v pacer.VarID) {
		t.Helper()
		agg := pacer.NewAggregator()
		rep, err := fleet.NewReporter(agg, fleet.ReporterOptions{
			Collector: srv.URL,
			Instance:  "app-1", // both lives of the process share this name
			Interval:  time.Hour,
			Timeout:   2 * time.Second,
			Seed:      9,
		})
		if err != nil {
			t.Fatalf("reporter: %v", err)
		}
		agg.Reporter("app-1")(pacer.Race{Var: v, Kind: pacer.WriteRead,
			FirstSite: pacer.SiteID(10 * v), SecondSite: pacer.SiteID(10*v + 1)})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rep.Close(ctx); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}

	report(1) // first life: pushes var-1 race as seq 1
	report(2) // restarted life: pushes var-2 race, also as seq 1

	var merged []struct {
		Var uint32 `json:"var"`
	}
	body := httpGet(t, srv.URL+"/races")
	if err := json.Unmarshal(body, &merged); err != nil {
		t.Fatalf("parsing /races: %v", err)
	}
	if len(merged) != 1 || merged[0].Var != 2 {
		t.Fatalf("restarted reporter's races lost — /races holds %s, want the var-2 race", body)
	}
}

// TestFleetCollectorRejectsGarbage covers the protocol's failure modes.
func TestFleetCollectorRejectsGarbage(t *testing.T) {
	col := fleet.NewCollector(fleet.CollectorOptions{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	post := func(body []byte) int {
		resp, err := http.Post(srv.URL+fleet.PushPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	encode := func(p *fleet.Push) []byte {
		var buf bytes.Buffer
		if err := fleet.EncodePush(&buf, p); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}

	if code := post([]byte("not gzip")); code != http.StatusBadRequest {
		t.Errorf("raw JSON accepted: status %d", code)
	}
	wrongVersion := encode(&fleet.Push{Version: 99, Instance: "i", Seq: 1, Races: []byte("[]")})
	if code := post(wrongVersion); code != http.StatusBadRequest {
		t.Errorf("wrong schema version accepted: status %d", code)
	}
	noInstance := encode(&fleet.Push{Version: fleet.SchemaVersion, Seq: 1, Races: []byte("[]")})
	if code := post(noInstance); code != http.StatusBadRequest {
		t.Errorf("anonymous push accepted: status %d", code)
	}
	badRaces := encode(&fleet.Push{Version: fleet.SchemaVersion, Instance: "i", Seq: 1,
		Races: []byte(`[{"kind":"sideways","count":1,"instances":1}]`)})
	if code := post(badRaces); code != http.StatusBadRequest {
		t.Errorf("unparseable triage list accepted: status %d", code)
	}
	if resp, err := http.Get(srv.URL + fleet.PushPath); err != nil {
		t.Fatalf("get push path: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET on push path: status %d", resp.StatusCode)
		}
	}
	if !strings.Contains(string(httpGet(t, srv.URL+"/metrics")), "pacer_collector_push_errors_total 4") {
		t.Errorf("rejected pushes not counted")
	}
}

// TestFleetPushEncoding round-trips a push through the gzip wire format.
func TestFleetPushEncoding(t *testing.T) {
	in := &fleet.Push{
		Version:  fleet.SchemaVersion,
		Instance: "inst-9",
		Epoch:    77,
		Seq:      41,
		Dropped:  3,
		Races:    json.RawMessage(`[{"var":1,"kind":"write-read","first_site":2,"second_site":3,"first_thread":0,"second_thread":1,"count":5,"instances":1,"first_instance":"inst-9"}]`),
		Arena:    &fleet.ArenaGauges{SlabsLive: 12, SlabsFree: 4, Recycles: 99, Misses: 7, Trimmed: 2},
	}
	var buf bytes.Buffer
	if err := fleet.EncodePush(&buf, in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := fleet.DecodePush(&buf, 0)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Instance != in.Instance || out.Epoch != in.Epoch || out.Seq != in.Seq || out.Dropped != in.Dropped ||
		!bytes.Equal(bytes.TrimSpace(out.Races), bytes.TrimSpace(in.Races)) {
		t.Errorf("round trip mangled push: %+v", out)
	}
	if out.Arena == nil || *out.Arena != *in.Arena {
		t.Errorf("round trip mangled arena gauges: %+v", out.Arena)
	}
}

// bombPush hand-builds a gzip push whose compressed body is tiny but
// whose inflated size is just over 1 MiB: a megabyte of JSON whitespace
// inside the races array compresses ~1000:1. (EncodePush cannot produce
// this — json.Marshal compacts RawMessage — which is exactly why the
// collector must not trust the encoder on the other end.)
func bombPush(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	for _, part := range [][]byte{
		[]byte(`{"version":1,"instance":"inst-bomb","seq":1,"races":[`),
		bytes.Repeat([]byte(" "), 1<<20),
		[]byte(`]}`),
	} {
		if _, err := zw.Write(part); err != nil {
			t.Fatalf("building bomb: %v", err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("building bomb: %v", err)
	}
	return buf.Bytes()
}

// TestFleetDecodePushDecompressedCap rejects a decompression bomb: a push
// whose compressed body is tiny but whose inflated size exceeds the cap
// must fail with a size error, not expand in memory.
func TestFleetDecodePushDecompressedCap(t *testing.T) {
	bomb := bombPush(t)
	if _, err := fleet.DecodePush(bytes.NewReader(bomb), 64<<10); err == nil {
		t.Fatalf("%d compressed bytes inflating past the 64 KiB cap were accepted", len(bomb))
	} else if !strings.Contains(err.Error(), "decompressed") {
		t.Errorf("bomb rejected for the wrong reason: %v", err)
	}
	// The same push passes under a cap that accommodates it.
	if _, err := fleet.DecodePush(bytes.NewReader(bomb), 2<<20); err != nil {
		t.Errorf("push within the cap rejected: %v", err)
	}
}

// TestFleetCollectorDecompressionBomb pins the cap end to end: the
// collector must 400 a bomb (and count it as a bad push) even though its
// compressed body is well under MaxBodyBytes.
func TestFleetCollectorDecompressionBomb(t *testing.T) {
	col := fleet.NewCollector(fleet.CollectorOptions{
		MaxBodyBytes:         1 << 20,
		MaxDecompressedBytes: 64 << 10,
	})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+fleet.PushPath, "application/json", bytes.NewReader(bombPush(t)))
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bomb got status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(httpGet(t, srv.URL+"/metrics")), "pacer_collector_push_errors_total 1") {
		t.Errorf("bomb not counted as a push error")
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetAuthToken pins the bearer-token check on /v1/push: with
// -auth-token set, unauthenticated and wrong-token pushes get 401 (and
// count in pacer_collector_unauthorized_total) before the body is even
// decoded, while a reporter configured with the matching token delivers
// normally and the read-only endpoints stay open.
func TestFleetAuthToken(t *testing.T) {
	const token = "s3cret-fleet-token"
	col := fleet.NewCollector(fleet.CollectorOptions{AuthToken: token})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	valid := func() []byte {
		var buf bytes.Buffer
		p := &fleet.Push{Version: fleet.SchemaVersion, Instance: "inst-auth", Seq: 1, Races: []byte("[]")}
		if err := fleet.EncodePush(&buf, p); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	post := func(auth string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+fleet.PushPath, bytes.NewReader(valid()))
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := post(""); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("tokenless push: status %d, want 401", resp.StatusCode)
	} else if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 carries no WWW-Authenticate challenge")
	}
	if resp := post("Bearer wrong-token"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong-token push: status %d, want 401", resp.StatusCode)
	}
	if resp := post(token); resp.StatusCode != http.StatusUnauthorized {
		// A bare token without the Bearer scheme is not a credential.
		t.Errorf("schemeless push: status %d, want 401", resp.StatusCode)
	}
	if resp := post("Bearer " + token); resp.StatusCode != http.StatusNoContent {
		t.Errorf("authenticated push: status %d, want 204", resp.StatusCode)
	}

	metrics := string(httpGet(t, srv.URL+"/metrics"))
	if !strings.Contains(metrics, "pacer_collector_unauthorized_total 3") {
		t.Errorf("unauthorized pushes not counted:\n%s", metrics)
	}
	if !strings.Contains(metrics, "pacer_collector_push_errors_total 0") {
		t.Errorf("auth rejections leaked into push_errors_total:\n%s", metrics)
	}

	// A reporter wired with the token delivers end to end.
	agg := pacer.NewAggregator()
	runInstance(agg.Reporter("inst-auth"), 5000, 1)
	rep, err := fleet.NewReporter(agg, fleet.ReporterOptions{
		Collector: srv.URL,
		Instance:  "inst-auth",
		AuthToken: token,
		Interval:  time.Hour, // only explicit flushes
		Timeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatalf("reporter: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rep.Close(ctx); err != nil {
		t.Fatalf("authenticated reporter could not deliver: %v", err)
	}
	merged, err := col.Merged()
	if err != nil {
		t.Fatalf("merged: %v", err)
	}
	if merged.Distinct() == 0 {
		t.Error("authenticated reporter's races missing from the merged view")
	}

	// A reporter without the token fails loudly instead of silently
	// losing reports.
	errCh := make(chan error, 16)
	agg2 := pacer.NewAggregator()
	runInstance(agg2.Reporter("inst-anon"), 6000, 1)
	anon, err := fleet.NewReporter(agg2, fleet.ReporterOptions{
		Collector:  srv.URL,
		Instance:   "inst-anon",
		Interval:   time.Hour,
		Timeout:    2 * time.Second,
		MinBackoff: time.Millisecond,
		OnError:    func(e error) { errCh <- e },
	})
	if err != nil {
		t.Fatalf("reporter: %v", err)
	}
	anon.Flush()
	select {
	case e := <-errCh:
		if !strings.Contains(e.Error(), "401") {
			t.Errorf("tokenless reporter failed with %v, want a 401", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tokenless reporter reported no error")
	}
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	anon.Close(canceled) // flush cannot succeed; abandon immediately
}

// TestFleetArenaGauges pins the arena observability path end to end: a
// reporter whose Stats callback reads an arena-backed detector ships the
// arena occupancy on its pushes, and the collector re-exports it as
// per-instance Prometheus gauges — while a heap-backed instance emits no
// arena series at all.
func TestFleetArenaGauges(t *testing.T) {
	col := fleet.NewCollector(fleet.CollectorOptions{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	agg := pacer.NewAggregator()
	d := pacer.New(pacer.Options{
		SamplingRate: 1, Seed: 5, Arena: true,
		OnRace: agg.Reporter("inst-arena"),
	})
	main := d.NewThread()
	a, b := d.Fork(main), d.Fork(main)
	v := d.NewVarID()
	d.Write(a, v, 100)
	d.Read(b, v, 101)
	d.Join(main, a)
	d.Join(main, b)
	if st := d.Stats(); !st.ArenaEnabled || st.ArenaSlabsLive == 0 {
		t.Fatalf("detector not arena-backed as expected: %+v", st)
	}

	for _, inst := range []struct {
		name  string
		agg   *pacer.Aggregator
		stats func() pacer.Stats
	}{
		{"inst-arena", agg, d.Stats},
		{"inst-heap", func() *pacer.Aggregator { // heap twin: no Stats wired
			a2 := pacer.NewAggregator()
			runInstance(a2.Reporter("inst-heap"), 7000, 1)
			return a2
		}(), nil},
	} {
		rep, err := fleet.NewReporter(inst.agg, fleet.ReporterOptions{
			Collector: srv.URL,
			Instance:  inst.name,
			Stats:     inst.stats,
			Interval:  time.Hour,
			Timeout:   2 * time.Second,
		})
		if err != nil {
			t.Fatalf("reporter %s: %v", inst.name, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := rep.Close(ctx); err != nil {
			t.Fatalf("reporter %s: %v", inst.name, err)
		}
		cancel()
	}

	metrics := string(httpGet(t, srv.URL+"/metrics"))
	for _, series := range []string{
		`pacer_arena_slabs_live{instance="inst-arena"}`,
		`pacer_arena_slabs_free{instance="inst-arena"}`,
		`pacer_arena_recycles_total{instance="inst-arena"}`,
		`pacer_arena_misses_total{instance="inst-arena"}`,
		`pacer_arena_trimmed_total{instance="inst-arena"}`,
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("metrics missing %s:\n%s", series, metrics)
		}
	}
	if strings.Contains(metrics, `pacer_arena_slabs_live{instance="inst-heap"}`) {
		t.Errorf("heap-backed instance grew arena series:\n%s", metrics)
	}
	if strings.Contains(metrics, `pacer_arena_slabs_live{instance="inst-arena"} 0`) {
		t.Errorf("arena instance reports zero live slabs with live threads:\n%s", metrics)
	}
}

// TestFleetCollectorInstanceTTL pins the retention contract: with
// InstanceTTL set, an instance that stops pushing drops out of /races and
// /metrics once its last push is older than the TTL (counted in the
// expired-instances metric), instances still pushing are untouched, and a
// fresh push from an expired name simply re-registers it.
func TestFleetCollectorInstanceTTL(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	col := fleet.NewCollector(fleet.CollectorOptions{
		InstanceTTL: time.Hour,
		Clock: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	push := func(instance string, seq uint64, v pacer.VarID) {
		t.Helper()
		agg := pacer.NewAggregator()
		agg.Reporter(instance)(pacer.Race{Var: v, Kind: pacer.WriteRead, FirstSite: 10, SecondSite: 11})
		races, _ := json.Marshal(agg)
		var body bytes.Buffer
		err := fleet.EncodePush(&body, &fleet.Push{
			Version: fleet.SchemaVersion, Instance: instance, Seq: seq, Races: races,
		})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		resp, err := http.Post(srv.URL+fleet.PushPath, "application/json", &body)
		if err != nil {
			t.Fatalf("push: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("push %s seq %d: status %d", instance, seq, resp.StatusCode)
		}
	}

	push("inst-old", 1, 1)
	advance(30 * time.Minute)
	push("inst-live", 1, 2)

	// Both within the TTL: the merged view carries both races.
	if agg, err := col.Merged(); err != nil || agg.Distinct() != 2 {
		t.Fatalf("Merged before expiry: distinct %v, err %v", agg.Distinct(), err)
	}

	// 75 minutes after inst-old's only push (45 after inst-live's): only
	// inst-old has outlived the one-hour TTL.
	advance(45 * time.Minute)
	races := string(httpGet(t, srv.URL+"/races"))
	if strings.Contains(races, `"inst-old"`) {
		t.Errorf("/races still lists the expired instance:\n%s", races)
	}
	if !strings.Contains(races, `"inst-live"`) {
		t.Errorf("/races lost the live instance:\n%s", races)
	}
	metrics := string(httpGet(t, srv.URL+"/metrics"))
	for _, want := range []string{
		"pacer_collector_instances 1\n",
		"pacer_collector_instances_expired_total 1\n",
		`pacer_collector_instance_last_seen_timestamp_seconds{instance="inst-live"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, `instance="inst-old"`) {
		t.Errorf("metrics still carry series for the expired instance:\n%s", metrics)
	}

	// The expired name pushing again is a fresh registration.
	push("inst-old", 5, 3)
	if agg, err := col.Merged(); err != nil || agg.Distinct() != 2 {
		t.Fatalf("Merged after re-registration: distinct %v, err %v", agg.Distinct(), err)
	}

	// Everyone falls silent: past the TTL the fleet view is empty, and both
	// evictions are on the books.
	advance(2 * time.Hour)
	if agg, err := col.Merged(); err != nil || agg.Distinct() != 0 {
		t.Fatalf("Merged after full expiry: distinct %v, err %v", agg.Distinct(), err)
	}
	if m := string(httpGet(t, srv.URL+"/metrics")); !strings.Contains(m, "pacer_collector_instances_expired_total 3\n") {
		t.Errorf("expired counter after all evictions wrong:\n%s", m)
	}
}

// fakeFrontDoor is a canned pacer.FrontDoorAccounted for testing the
// shadow-gauge telemetry path without a real instrumented program.
type fakeFrontDoor struct{ st pacer.FrontDoorStats }

func (f fakeFrontDoor) FrontDoorStats() pacer.FrontDoorStats { return f.st }

// TestFleetShadowGauges pins the front-door observability path end to
// end: a reporter whose Stats callback reads a detector with a mounted
// instrumentation front door ships the shadow-map counters on its pushes,
// and the collector re-exports them as per-instance Prometheus series —
// while a plain library instance emits no shadow series at all.
func TestFleetShadowGauges(t *testing.T) {
	col := fleet.NewCollector(fleet.CollectorOptions{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	agg := pacer.NewAggregator()
	d := pacer.New(pacer.Options{
		SamplingRate: 1, Seed: 5,
		OnRace: agg.Reporter("inst-shim"),
	})
	d.MountFrontDoor(fakeFrontDoor{st: pacer.FrontDoorStats{
		ShadowHits: 640, ShadowMisses: 32, ShadowEvicts: 8, ShadowVars: 24,
	}})
	main := d.NewThread()
	a, b := d.Fork(main), d.Fork(main)
	v := d.NewVarID()
	d.Write(a, v, 300)
	d.Read(b, v, 301)
	d.Join(main, a)
	d.Join(main, b)
	if st := d.Stats(); !st.FrontDoor || st.ShadowHits != 640 {
		t.Fatalf("front door counters not folded into Stats: %+v", st)
	}

	plainAgg := pacer.NewAggregator()
	runInstance(plainAgg.Reporter("inst-plain"), 8000, 1)
	plain := pacer.New(pacer.Options{SamplingRate: 1, Seed: 6})

	for _, inst := range []struct {
		name  string
		agg   *pacer.Aggregator
		stats func() pacer.Stats
	}{
		{"inst-shim", agg, d.Stats},
		{"inst-plain", plainAgg, plain.Stats},
	} {
		rep, err := fleet.NewReporter(inst.agg, fleet.ReporterOptions{
			Collector: srv.URL,
			Instance:  inst.name,
			Stats:     inst.stats,
			Interval:  time.Hour,
			Timeout:   2 * time.Second,
		})
		if err != nil {
			t.Fatalf("reporter %s: %v", inst.name, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := rep.Close(ctx); err != nil {
			t.Fatalf("reporter %s: %v", inst.name, err)
		}
		cancel()
	}

	metrics := string(httpGet(t, srv.URL+"/metrics"))
	for _, series := range []string{
		`pacer_shadow_hits_total{instance="inst-shim"} 640`,
		`pacer_shadow_misses_total{instance="inst-shim"} 32`,
		`pacer_shadow_evicts_total{instance="inst-shim"} 8`,
		`pacer_shadow_vars{instance="inst-shim"} 24`,
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("metrics missing %s:\n%s", series, metrics)
		}
	}
	if strings.Contains(metrics, `pacer_shadow_hits_total{instance="inst-plain"}`) {
		t.Errorf("plain library instance grew shadow series:\n%s", metrics)
	}
}
