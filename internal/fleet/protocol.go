// Package fleet ships race reports off the box — the transport half of
// the deployment the paper leads with (Section 1): many production
// instances each sample at a low rate r, and their reports combine at a
// collector so the fleet-wide detection probability approaches 1.
//
// The client side is Reporter: it wraps a pacer.Aggregator, periodically
// snapshots its exported triage list, and pushes the snapshot to a
// collector as gzip-compressed JSON over HTTP POST. It is robust by
// construction — a bounded in-memory queue (oldest snapshot dropped,
// counted), a per-push timeout, exponential backoff with jitter, and a
// deadline-bounded flush on Close — and it never touches the network from
// the detection hot path: races land in the in-memory aggregator and the
// network work happens on the reporter's own goroutine.
//
// The server side is Collector, an http.Handler that accepts pushes,
// keeps the latest snapshot per instance, and merges them on demand into
// one fleet-wide triage list. cmd/pacerd mounts it as a daemon.
//
// Pushes are cumulative snapshots, not deltas: each push carries the
// instance's complete triage list so far, and the collector replaces that
// instance's previous state. Retries and duplicates are therefore
// idempotent — a lost acknowledgment or a re-sent snapshot can never
// double-count a race.
package fleet

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// SchemaVersion is the baseline wire schema version: cumulative
// snapshots, understood by every collector ever shipped. A collector
// rejects pushes whose version it does not understand (HTTP 400), so
// mixed-version fleets fail loudly instead of merging garbage.
const SchemaVersion = 1

// SchemaVersionDelta is the delta-capable wire schema: a version-2 push
// whose BaseSeq is nonzero carries only the triage entries that changed
// since the snapshot with that sequence number, instead of the full
// cumulative list. Reporters never send version 2 unsolicited — they
// start cumulative and switch only after a collector advertises the
// version in the ProtocolHeader of an ack — so old collectors keep
// receiving version-1 pushes they understand.
const SchemaVersionDelta = 2

// ProtocolHeader is the response header a delta-capable collector sets
// on every push ack, carrying the highest schema version it accepts
// (e.g. "2"). Reporters treat its absence as a version-1 collector.
const ProtocolHeader = "Pacer-Protocol"

// PushPath is the collector endpoint reporters POST snapshots to.
const PushPath = "/v1/push"

// Push is one reporter → collector message: an instance's complete
// current triage list.
type Push struct {
	// Version is the wire schema version (SchemaVersion).
	Version int `json:"version"`
	// Instance uniquely names the reporting instance; the collector keys
	// its state by this name.
	Instance string `json:"instance"`
	// Epoch is a random per-process boot ID, drawn once when the reporter
	// starts. A restarted process reuses its instance name (hostname+pid
	// is pid 1 in every container) but never its epoch, so the collector
	// can tell a fresh process's seq-1 push from a stale re-delivery and
	// reset its per-instance sequence tracking instead of dropping the
	// new process's reports.
	Epoch uint64 `json:"epoch,omitempty"`
	// Seq increases with every snapshot an instance takes. The collector
	// ignores a push whose Seq does not exceed the instance's last
	// accepted one within the same Epoch, which makes re-sent and
	// out-of-order snapshots harmless.
	Seq uint64 `json:"seq"`
	// BaseSeq, when nonzero on a version-2 push, marks Races as a delta:
	// only the triage entries that changed since (are new in, or carry
	// different counts than) this instance's snapshot with sequence
	// number BaseSeq. A collector that does not hold exactly that base —
	// restarted from an older snapshot, or the base was evicted — answers
	// 409 Conflict and the reporter falls back to a full cumulative
	// snapshot. Zero means Races is the complete cumulative list, on
	// every schema version.
	BaseSeq uint64 `json:"base_seq,omitempty"`
	// Dropped counts snapshots this instance's bounded queue has dropped
	// so far (observability only — dropped snapshots lose no races,
	// because every later snapshot is a superset).
	Dropped uint64 `json:"dropped,omitempty"`
	// Races is the triage list in the Aggregator persistence schema (the
	// output of pacer.Aggregator.MarshalJSON).
	Races json.RawMessage `json:"races"`
	// Arena carries the instance's metadata-arena occupancy when the
	// instance runs with Options.Arena (observability only; absent on
	// heap-backed instances and on pre-arena reporters, so the field does
	// not bump SchemaVersion).
	Arena *ArenaGauges `json:"arena,omitempty"`
	// Shadow carries the instance's shadow-map accounting when the
	// instance runs behind an instrumentation front door (pacergo's
	// runtime shim). Absent on plain library instances and on older
	// reporters, so the field does not bump SchemaVersion.
	Shadow *ShadowGauges `json:"shadow,omitempty"`
}

// ArenaGauges is an instance's metadata-arena accounting as of its last
// snapshot: the occupancy gauges and recycle/miss counters the collector
// re-exports per instance on /metrics. Fields mirror pacer.Stats.
type ArenaGauges struct {
	SlabsLive uint64 `json:"slabs_live"`
	SlabsFree uint64 `json:"slabs_free"`
	Recycles  uint64 `json:"recycles"`
	Misses    uint64 `json:"misses"`
	Trimmed   uint64 `json:"trimmed"`
}

// ShadowGauges is an instance's address-keyed shadow-map accounting as of
// its last snapshot: how the instrumentation front door is resolving real
// program addresses onto variable identifiers. Fields mirror pacer.Stats.
type ShadowGauges struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Evicts uint64 `json:"evicts"`
	Vars   uint64 `json:"vars"`
}

// EncodePush writes p to w as gzip-compressed JSON.
func EncodePush(w io.Writer, p *Push) error {
	zw := gzip.NewWriter(w)
	if err := json.NewEncoder(zw).Encode(p); err != nil {
		return err
	}
	return zw.Close()
}

// DefaultMaxDecompressedBytes caps how far DecodePush will inflate one
// push when the caller passes no limit of its own.
const DefaultMaxDecompressedBytes = 64 << 20

// DecodePush reads one gzip-compressed push and validates its envelope
// (schema version, non-empty instance). maxDecompressed bounds the
// inflated size — the compressed body alone is not a safe bound, since a
// kilobyte of gzip can expand to gigabytes and OOM the collector; <= 0
// means DefaultMaxDecompressedBytes. DecodePush speaks only the baseline
// cumulative schema; the production ingest tier uses DecodePushVersion to
// additionally accept deltas.
func DecodePush(r io.Reader, maxDecompressed int64) (*Push, error) {
	return DecodePushVersion(r, maxDecompressed, SchemaVersion)
}

// DecodePushVersion is DecodePush accepting every schema version from 1
// through maxVersion. With maxVersion >= SchemaVersionDelta the push may
// be a delta (nonzero BaseSeq); the envelope is still validated — a delta
// on a version-1 push, or a base at or past the push's own sequence
// number, is rejected before any state is touched.
func DecodePushVersion(r io.Reader, maxDecompressed int64, maxVersion int) (*Push, error) {
	if maxDecompressed <= 0 {
		maxDecompressed = DefaultMaxDecompressedBytes
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("fleet: push is not gzip: %w", err)
	}
	defer zr.Close()
	lr := &io.LimitedReader{R: zr, N: maxDecompressed + 1}
	var p Push
	if err := json.NewDecoder(lr).Decode(&p); err != nil && lr.N > 0 {
		return nil, fmt.Errorf("fleet: decoding push: %w", err)
	}
	if lr.N <= 0 {
		return nil, fmt.Errorf("fleet: push exceeds %d bytes decompressed", maxDecompressed)
	}
	if p.Version < SchemaVersion || p.Version > maxVersion {
		return nil, fmt.Errorf("fleet: unsupported schema version %d (this collector speaks 1..%d)",
			p.Version, maxVersion)
	}
	if p.Instance == "" {
		return nil, errors.New("fleet: push names no instance")
	}
	if len(p.Races) == 0 {
		return nil, errors.New("fleet: push carries no triage list")
	}
	if p.BaseSeq != 0 {
		if p.Version < SchemaVersionDelta {
			return nil, fmt.Errorf("fleet: version-%d push carries a delta base", p.Version)
		}
		if p.BaseSeq >= p.Seq {
			return nil, fmt.Errorf("fleet: delta base seq %d not before push seq %d", p.BaseSeq, p.Seq)
		}
	}
	return &p, nil
}
