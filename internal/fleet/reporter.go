package fleet

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pacer"
)

// newEpoch draws the reporter's per-process boot ID. It is deliberately
// independent of ReporterOptions.Seed: a restarted process runs with the
// same configuration, and the epoch is the one thing that must differ
// across restarts (see Push.Epoch). Always nonzero, so a zero epoch on
// the wire unambiguously means a pre-epoch reporter.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint64(b[:]) | 1
	}
	return uint64(time.Now().UnixNano()) | 1
}

// ReporterOptions configure a Reporter. Only Collector and Instance are
// required.
type ReporterOptions struct {
	// Collector is the collector's base URL, e.g. "http://races:9120".
	Collector string
	// Instance uniquely names this instance fleet-wide (hostname + pid is
	// a reasonable choice). Two live instances sharing a name overwrite
	// each other's snapshots at the collector. A restarted process may
	// safely reuse its predecessor's name: each reporter stamps its
	// pushes with a fresh random epoch, so the collector recognizes the
	// restart instead of discarding the new process's low sequence
	// numbers as stale.
	Instance string
	// Interval is how often the aggregator is snapshotted and pushed.
	// Default 15s. Snapshots identical to the last acknowledged one are
	// skipped, so an idle instance generates no traffic.
	Interval time.Duration
	// Timeout bounds each push attempt. Default 5s.
	Timeout time.Duration
	// QueueLen bounds the in-memory snapshot queue. When a snapshot
	// arrives at a full queue the oldest is dropped and counted in
	// Stats().Dropped — harmless, since every later snapshot is a
	// superset. Default 4.
	QueueLen int
	// MinBackoff and MaxBackoff bound the exponential retry backoff after
	// a failed push; the actual sleep is jittered uniformly over
	// [backoff/2, backoff]. Defaults 500ms and 30s.
	MinBackoff, MaxBackoff time.Duration
	// AuthToken, when non-empty, is sent with every push as
	// "Authorization: Bearer <token>" — set it to the token the collector
	// runs with (pacerd -auth-token). A mismatch surfaces through OnError
	// as a 401 on every push attempt.
	AuthToken string
	// DisableDelta pins the reporter to version-1 cumulative snapshots
	// even against a delta-capable collector. By default the reporter
	// starts cumulative and switches to delta pushes — only the triage
	// entries changed since the last queued snapshot — once a push ack
	// carries the collector's ProtocolHeader; a collector that loses the
	// delta base (restart from an older state snapshot, eviction) answers
	// 409 and the reporter transparently resynchronizes with a full
	// cumulative snapshot.
	DisableDelta bool
	// Stats, when non-nil, is sampled at every snapshot and its arena
	// occupancy (Stats.ArenaEnabled and friends) rides along on the push,
	// so the collector's /metrics can export per-instance arena gauges.
	// Wire it to the detector's Stats method. Optional.
	Stats func() pacer.Stats
	// Client issues the pushes; replace it (or its Transport) to add TLS
	// configuration, or to inject faults in tests. Default: a dedicated
	// http.Client.
	Client *http.Client
	// OnError observes push failures (for logging). It runs on the
	// reporter's goroutine; keep it fast. Optional.
	OnError func(error)
	// Seed makes the backoff jitter deterministic in tests; 0 seeds from
	// the clock.
	Seed int64
}

// ReporterStats count a reporter's work so far.
type ReporterStats struct {
	// Snapshots is the number of snapshots taken (including skipped-as-
	// unchanged ones, which are not queued).
	Snapshots uint64
	// Pushes is the number of snapshots acknowledged by the collector.
	Pushes uint64
	// FullPushes counts the acknowledged pushes that carried a complete
	// cumulative triage list (every push against a version-1 collector;
	// the initial and post-resync pushes against a delta-capable one).
	FullPushes uint64
	// DeltaPushes counts the acknowledged pushes that carried only the
	// triage entries changed since the previous snapshot.
	DeltaPushes uint64
	// Resyncs counts the times a collector rejected a delta base (409)
	// and the reporter fell back to a full cumulative snapshot.
	Resyncs uint64
	// Failures is the number of failed push attempts.
	Failures uint64
	// Dropped is the number of snapshots the bounded queue evicted.
	Dropped uint64
}

// Reporter periodically ships an Aggregator's triage list to a collector.
// It owns one background goroutine; the detection hot path never blocks
// on it — races land in the in-memory aggregator, and a collector outage
// costs at most QueueLen retained snapshots.
type Reporter struct {
	agg    *pacer.Aggregator
	opts   ReporterOptions
	url    string
	epoch  uint64 // random boot ID, stamped on every push
	client *http.Client
	rng    *rand.Rand // sender goroutine only (then Close, after it exits)

	mu        sync.Mutex
	queue     []*Push // head = oldest
	seq       uint64
	lastAcked []byte // races blob of the last acknowledged cumulative snapshot
	deltaOK   bool   // the collector advertised SchemaVersionDelta on an ack
	forceFull bool   // next snapshot must be cumulative (post-resync)
	base      map[TriageKey]TriageEntry // triage state as of the last queued snapshot
	baseSeq   uint64                    // its sequence number
	stats     ReporterStats
	closed    bool

	wake chan struct{} // kick the sender (buffered, len 1)
	stop chan struct{}
	done chan struct{}
}

// NewReporter starts a reporter for agg and returns it. Wire the same
// aggregator into the detector (Options.OnRace: agg.Reporter(instance))
// and the instance's races flow to the collector in the background.
func NewReporter(agg *pacer.Aggregator, opts ReporterOptions) (*Reporter, error) {
	if agg == nil {
		return nil, fmt.Errorf("fleet: reporter needs an aggregator")
	}
	if opts.Collector == "" {
		return nil, fmt.Errorf("fleet: reporter needs a collector URL")
	}
	if opts.Instance == "" {
		return nil, fmt.Errorf("fleet: reporter needs an instance name")
	}
	if opts.Interval <= 0 {
		opts.Interval = 15 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4
	}
	if opts.MinBackoff <= 0 {
		opts.MinBackoff = 500 * time.Millisecond
	}
	if opts.MaxBackoff < opts.MinBackoff {
		opts.MaxBackoff = 30 * time.Second
		if opts.MaxBackoff < opts.MinBackoff {
			opts.MaxBackoff = opts.MinBackoff
		}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	r := &Reporter{
		agg:    agg,
		opts:   opts,
		url:    opts.Collector + PushPath,
		epoch:  newEpoch(),
		client: opts.Client,
		rng:    rand.New(rand.NewSource(seed)),
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if r.client == nil {
		r.client = &http.Client{}
	}
	go r.run()
	return r, nil
}

// Stats returns a snapshot of the reporter's counters.
func (r *Reporter) Stats() ReporterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Flush snapshots the aggregator now and kicks the sender, without
// waiting for delivery. Close flushes synchronously.
func (r *Reporter) Flush() {
	r.snapshot()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Close stops the background goroutine, takes a final snapshot, and
// synchronously pushes everything still queued until ctx expires. It
// returns nil once the collector holds the final snapshot, or ctx's error
// with the count of unsent snapshots otherwise. Close is idempotent; the
// reporter is unusable afterwards.
func (r *Reporter) Close(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done

	r.snapshot()
	backoff := r.opts.MinBackoff
	for {
		p := r.head()
		if p == nil {
			return nil
		}
		if err := r.push(ctx, p); err != nil {
			if errors.Is(err, errResync) && p.BaseSeq != 0 {
				r.resync()
				backoff = r.opts.MinBackoff
				continue
			}
			r.noteFailure(err)
			if ctx.Err() != nil {
				r.mu.Lock()
				n := len(r.queue)
				r.mu.Unlock()
				return fmt.Errorf("fleet: flush abandoned with %d snapshot(s) unsent: %w", n, ctx.Err())
			}
			select {
			case <-ctx.Done():
				// Counted on the next loop iteration's push attempt.
			case <-time.After(r.jitter(backoff)):
			}
			backoff = r.nextBackoff(backoff)
			continue
		}
		r.ack(p)
		backoff = r.opts.MinBackoff
	}
}

// run is the sender goroutine: snapshot on a ticker, drain the queue, and
// on failure retry the head with exponential backoff — without ever
// stopping the ticker, so snapshots keep accumulating (and the bounded
// queue keeps evicting) during a collector outage.
func (r *Reporter) run() {
	defer close(r.done)
	ticker := time.NewTicker(r.opts.Interval)
	defer ticker.Stop()
	backoff := r.opts.MinBackoff
	var retry <-chan time.Time // non-nil while backing off
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.snapshot()
		case <-r.wake:
		case <-retry:
			retry = nil
		}
		if retry != nil {
			continue // still backing off; the tick above only snapshotted
		}
		for {
			p := r.head()
			if p == nil {
				backoff = r.opts.MinBackoff
				break
			}
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.Timeout)
			err := r.push(ctx, p)
			cancel()
			if err != nil {
				if errors.Is(err, errResync) && p.BaseSeq != 0 {
					// The collector no longer holds this delta's base.
					// Drop the now-useless delta chain and queue a fresh
					// cumulative snapshot — no backoff, the collector is
					// healthy and asking for exactly this.
					r.resync()
					backoff = r.opts.MinBackoff
					continue
				}
				r.noteFailure(err)
				retry = time.After(r.jitter(backoff))
				backoff = r.nextBackoff(backoff)
				break
			}
			r.ack(p)
			backoff = r.opts.MinBackoff
		}
	}
}

// snapshot exports the aggregator and queues it, unless it is identical
// to the last acknowledged export. A full queue evicts its oldest entry.
func (r *Reporter) snapshot() {
	races, err := r.agg.MarshalJSON()
	if err != nil { // cannot happen with the flat schema; count, don't wedge
		r.noteFailure(fmt.Errorf("fleet: exporting triage list: %w", err))
		return
	}
	var arena *ArenaGauges
	var shadow *ShadowGauges
	if r.opts.Stats != nil { // outside r.mu: the callback reads detector state
		st := r.opts.Stats()
		if st.ArenaEnabled {
			arena = &ArenaGauges{
				SlabsLive: st.ArenaSlabsLive,
				SlabsFree: st.ArenaSlabsFree,
				Recycles:  st.ArenaRecycles,
				Misses:    st.ArenaMisses,
				Trimmed:   st.ArenaTrimmed,
			}
		}
		if st.FrontDoor {
			shadow = &ShadowGauges{
				Hits:   st.ShadowHits,
				Misses: st.ShadowMisses,
				Evicts: st.ShadowEvicts,
				Vars:   uint64(st.ShadowVars),
			}
		}
	}
	var entries map[TriageKey]TriageEntry
	if !r.opts.DisableDelta {
		// Materialize our own export so the next snapshot can diff against
		// it. A parse failure (impossible for our own MarshalJSON output)
		// just degrades this snapshot to cumulative framing.
		entries, _ = ParseTriage(races)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Snapshots++
	if r.deltaOK && !r.forceFull && entries != nil && r.base != nil {
		// Delta mode: queue only what changed since the last queued
		// snapshot. Nothing changed means nothing to say — the queue tail
		// (or the collector) already reflects this exact state.
		changed := DiffTriage(entries, r.base)
		if len(changed) == 0 {
			return
		}
		blob, err := MarshalTriage(changed)
		if err == nil {
			r.seq++
			p := &Push{
				Version:  SchemaVersionDelta,
				Instance: r.opts.Instance,
				Epoch:    r.epoch,
				Seq:      r.seq,
				BaseSeq:  r.baseSeq,
				Dropped:  r.stats.Dropped,
				Races:    blob,
				Arena:    arena,
				Shadow:   shadow,
			}
			r.base, r.baseSeq = entries, r.seq
			r.enqueueLocked(p)
			return
		}
	}
	// Cumulative framing: every push against a version-1 collector, plus
	// the initial and post-resync snapshots in delta mode. The unchanged
	// skip must not fire right after a resync — the collector asked for a
	// full snapshot precisely because its state no longer matches ours.
	if bytes.Equal(races, r.lastAcked) && len(r.queue) == 0 && !r.forceFull {
		return
	}
	r.seq++
	ver := SchemaVersion
	if r.deltaOK && !r.opts.DisableDelta {
		ver = SchemaVersionDelta
	}
	p := &Push{
		Version:  ver,
		Instance: r.opts.Instance,
		Epoch:    r.epoch,
		Seq:      r.seq,
		Dropped:  r.stats.Dropped,
		Races:    races,
		Arena:    arena,
		Shadow:   shadow,
	}
	if entries != nil {
		r.base, r.baseSeq = entries, r.seq
	}
	r.forceFull = false
	r.enqueueLocked(p)
}

// enqueueLocked appends p, evicting the oldest queued push when full.
// Evicting a cumulative push is harmless (every later one is a
// superset); evicting a delta breaks the chain for the pushes behind it,
// which the collector will reject with 409 and resync will heal.
func (r *Reporter) enqueueLocked(p *Push) {
	if len(r.queue) >= r.opts.QueueLen {
		r.queue = r.queue[1:]
		r.stats.Dropped++
	}
	r.queue = append(r.queue, p)
}

// resync abandons the queued delta chain and queues a fresh cumulative
// snapshot — the recovery the collector asks for with 409 when it no
// longer holds a delta's base (a restart restored older state, or the
// instance's entry was evicted). Cumulative pushes are supersets of
// every dropped delta, so nothing is lost.
func (r *Reporter) resync() {
	r.mu.Lock()
	r.stats.Resyncs++
	r.queue = nil
	r.base, r.baseSeq = nil, 0
	r.forceFull = true
	r.mu.Unlock()
	r.snapshot()
}

// head returns the oldest queued push without removing it (a failed
// attempt retries it; eviction may still replace it meanwhile).
func (r *Reporter) head() *Push {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.queue) == 0 {
		return nil
	}
	return r.queue[0]
}

// ack records a successful push and removes p from the queue if still
// present.
func (r *Reporter) ack(p *Push) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Pushes++
	if p.BaseSeq != 0 {
		r.stats.DeltaPushes++
	} else {
		r.stats.FullPushes++
		r.lastAcked = p.Races
	}
	if len(r.queue) > 0 && r.queue[0] == p {
		r.queue = r.queue[1:]
	}
}

func (r *Reporter) noteFailure(err error) {
	r.mu.Lock()
	r.stats.Failures++
	r.mu.Unlock()
	if r.opts.OnError != nil {
		r.opts.OnError(err)
	}
}

// errResync marks a 409 from the collector: it does not hold the delta
// base this push builds on, and wants a full cumulative snapshot.
var errResync = errors.New("fleet: collector requests a full resync")

// push POSTs one snapshot. Any non-2xx status is a failure; the body is
// drained so the connection can be reused. A 2xx ack carrying the
// collector's ProtocolHeader upgrades the reporter to delta pushes.
func (r *Reporter) push(ctx context.Context, p *Push) error {
	var body bytes.Buffer
	if err := EncodePush(&body, p); err != nil {
		return fmt.Errorf("fleet: encoding push: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url, &body)
	if err != nil {
		return fmt.Errorf("fleet: building push request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	if r.opts.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+r.opts.AuthToken)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: push seq %d: %w", p.Seq, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusConflict {
		return fmt.Errorf("fleet: push seq %d: %w", p.Seq, errResync)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("fleet: push seq %d: collector said %s", p.Seq, resp.Status)
	}
	if v := resp.Header.Get(ProtocolHeader); v != "" && !r.opts.DisableDelta {
		if n, err := strconv.Atoi(v); err == nil && n >= SchemaVersionDelta {
			r.mu.Lock()
			r.deltaOK = true
			r.mu.Unlock()
		}
	}
	return nil
}

// jitter spreads b uniformly over [b/2, b] so a fleet restarted together
// does not retry in lockstep.
func (r *Reporter) jitter(b time.Duration) time.Duration {
	return b/2 + time.Duration(r.rng.Int63n(int64(b/2)+1))
}

func (r *Reporter) nextBackoff(b time.Duration) time.Duration {
	b *= 2
	if b > r.opts.MaxBackoff {
		b = r.opts.MaxBackoff
	}
	return b
}
