// Package event defines the action model of the paper's formal semantics
// (Appendix A): the operations a multithreaded program performs that are
// relevant to race detection, traces of such operations, a compact binary
// trace encoding, and generators of random well-formed traces for testing.
package event

import (
	"fmt"

	"pacer/internal/vclock"
)

// Kind enumerates the actions of Appendix A.
type Kind uint8

const (
	// Read is rd(t, x): thread t reads data variable x.
	Read Kind = iota
	// Write is wr(t, x): thread t writes data variable x.
	Write
	// Acquire is acq(t, m): thread t acquires lock m.
	Acquire
	// Release is rel(t, m): thread t releases lock m.
	Release
	// Fork is fork(t, u): thread t forks a new thread u.
	Fork
	// Join is join(t, u): thread t blocks until thread u terminates.
	Join
	// VolRead is vol_rd(t, vx): thread t reads volatile variable vx.
	VolRead
	// VolWrite is vol_wr(t, vx): thread t writes volatile variable vx.
	VolWrite
	// SampleBegin is sbegin(): the analysis enters a sampling period. It is
	// not initiated by any particular thread and adds no happens-before
	// edges.
	SampleBegin
	// SampleEnd is send(): the analysis leaves a sampling period.
	SampleEnd

	numKinds
)

var kindNames = [numKinds]string{
	"rd", "wr", "acq", "rel", "fork", "join", "vol_rd", "vol_wr", "sbegin", "send",
}

// String returns the paper's name for the action kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsSync reports whether the kind is a synchronization action.
func (k Kind) IsSync() bool {
	switch k {
	case Acquire, Release, Fork, Join, VolRead, VolWrite:
		return true
	}
	return false
}

// IsAccess reports whether the kind is a data-variable access.
func (k Kind) IsAccess() bool { return k == Read || k == Write }

// Var identifies a data variable (an object field, static field, or array
// element in the paper's Java setting).
type Var uint32

// Lock identifies a lock (in Java, any object used as a monitor).
type Lock uint32

// Volatile identifies a volatile variable.
type Volatile uint32

// Site identifies a static program location. Races are reported as pairs of
// sites, and distinct races are deduplicated by site pair (Section 5.1).
type Site uint32

// Event is one dynamic action. Fields beyond Kind and Thread are
// interpreted per kind:
//
//	Read/Write:    Target = Var, Site = program location, Method = enclosing
//	               method (used by LiteRace's per-method sampling)
//	Acquire/...:   Target = Lock
//	Fork/Join:     Target = the other thread u
//	VolRead/Write: Target = Volatile
//	SampleBegin/End: no fields (Thread is ignored)
type Event struct {
	Kind   Kind
	Thread vclock.Thread
	Target uint32
	Site   Site
	Method uint32
}

// String renders the event in the paper's action notation.
func (e Event) String() string {
	switch e.Kind {
	case Read, Write:
		return fmt.Sprintf("%s(t%d, x%d)@s%d", e.Kind, e.Thread, e.Target, e.Site)
	case Acquire, Release:
		return fmt.Sprintf("%s(t%d, m%d)", e.Kind, e.Thread, e.Target)
	case Fork, Join:
		return fmt.Sprintf("%s(t%d, t%d)", e.Kind, e.Thread, e.Target)
	case VolRead, VolWrite:
		return fmt.Sprintf("%s(t%d, v%d)", e.Kind, e.Thread, e.Target)
	default:
		return fmt.Sprintf("%s()", e.Kind)
	}
}

// Trace is a sequence of events, ordered by execution.
type Trace []Event

// Threads returns one greater than the largest thread id appearing in the
// trace (including fork/join targets), i.e. the thread table size needed to
// replay it.
func (tr Trace) Threads() int {
	maxID := -1
	for _, e := range tr {
		if int(e.Thread) > maxID {
			maxID = int(e.Thread)
		}
		if e.Kind == Fork || e.Kind == Join {
			if int(e.Target) > maxID {
				maxID = int(e.Target)
			}
		}
	}
	return maxID + 1
}

// Counts tallies events by kind.
func (tr Trace) Counts() [numKinds]int {
	var c [numKinds]int
	for _, e := range tr {
		c[e.Kind]++
	}
	return c
}
