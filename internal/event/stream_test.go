package event

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	tr := Generate(Racy(5, 1500, 11))
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(tr)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(tr))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Trace
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if len(got) != len(tr) {
		t.Fatalf("read %d events, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], tr[i])
		}
	}
	// EOF is sticky.
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next err = %v", err)
	}
}

func TestStreamTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewStreamWriter(&buf)
	for _, e := range Generate(Racy(3, 200, 1)) {
		w.Write(e)
	}
	// Flush without Close: events visible, sentinel missing.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrStreamTruncated) {
			t.Fatalf("err = %v, want ErrStreamTruncated", err)
		}
		break
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewStreamWriter(&buf)
	w.Close()
	if err := w.Write(Event{Kind: Read}); err == nil {
		t.Fatal("write after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestStreamBadMagic(t *testing.T) {
	if _, err := NewStreamReader(strings.NewReader("WRONGMAG")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewStreamWriter(&buf)
	w.Close()
	r, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty stream Next err = %v", err)
	}
}
