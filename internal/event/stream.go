package event

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pacer/internal/vclock"
)

// Streaming trace format: like the block format of WriteTrace but without
// an upfront event count, so a recorder can write events as they happen
// (the way LiteRace logs operations) and a consumer can process a trace
// larger than memory. The stream starts with an 8-byte magic and ends with
// a sentinel record.
const (
	streamMagic   = "PACERTS1"
	streamEndKind = 0xFF
)

// ErrStreamTruncated reports a stream that ended without its sentinel.
var ErrStreamTruncated = errors.New("event: trace stream truncated")

// StreamWriter writes events incrementally. Close writes the end sentinel;
// a stream without it is detected as truncated on read.
type StreamWriter struct {
	bw     *bufio.Writer
	closed bool
	count  uint64
}

// NewStreamWriter starts a streaming trace on w.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(streamMagic); err != nil {
		return nil, err
	}
	return &StreamWriter{bw: bw}, nil
}

// Write appends one event to the stream.
func (s *StreamWriter) Write(e Event) error {
	if s.closed {
		return errors.New("event: write to closed trace stream")
	}
	var buf [1 + 4*binary.MaxVarintLen64]byte
	buf[0] = byte(e.Kind)
	n := 1
	n += binary.PutUvarint(buf[n:], uint64(e.Thread))
	n += binary.PutUvarint(buf[n:], uint64(e.Target))
	n += binary.PutUvarint(buf[n:], uint64(e.Site))
	n += binary.PutUvarint(buf[n:], uint64(e.Method))
	if _, err := s.bw.Write(buf[:n]); err != nil {
		return err
	}
	s.count++
	return nil
}

// Count returns the number of events written so far.
func (s *StreamWriter) Count() uint64 { return s.count }

// Flush pushes buffered events to the underlying writer without ending the
// stream, so long-running recorders can bound data loss on a crash.
func (s *StreamWriter) Flush() error { return s.bw.Flush() }

// Close writes the end sentinel and flushes. The underlying writer is not
// closed.
func (s *StreamWriter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.bw.WriteByte(streamEndKind); err != nil {
		return err
	}
	return s.bw.Flush()
}

// ReadAnyTrace reads a complete trace in either on-disk format, sniffing
// the magic: the block format of WriteTrace or the streaming format of
// StreamWriter. Tools that accept trace files (cmd/racereplay) use it so
// recordings from Options.TraceSink streaming adapters and block-written
// traces are interchangeable.
func ReadAnyTrace(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(streamMagic))
	if err != nil {
		return nil, fmt.Errorf("event: reading magic: %w", err)
	}
	if string(magic) != streamMagic {
		return ReadTrace(br)
	}
	sr, err := NewStreamReader(br)
	if err != nil {
		return nil, err
	}
	var tr Trace
	for {
		e, err := sr.Next()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		tr = append(tr, e)
	}
}

// StreamReader reads a streaming trace event by event.
type StreamReader struct {
	br   *bufio.Reader
	done bool
	idx  uint64
}

// NewStreamReader validates the magic and returns a reader.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("event: reading stream magic: %w", err)
	}
	if string(magic) != streamMagic {
		return nil, ErrBadMagic
	}
	return &StreamReader{br: br}, nil
}

// Next returns the next event, or io.EOF after the sentinel.
func (s *StreamReader) Next() (Event, error) {
	if s.done {
		return Event{}, io.EOF
	}
	kind, err := s.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Event{}, ErrStreamTruncated
		}
		return Event{}, err
	}
	if kind == streamEndKind {
		s.done = true
		return Event{}, io.EOF
	}
	if Kind(kind) >= numKinds {
		return Event{}, fmt.Errorf("event: stream event %d has invalid kind %d", s.idx, kind)
	}
	var fields [4]uint64
	for j := range fields {
		fields[j], err = binary.ReadUvarint(s.br)
		if err != nil {
			if err == io.EOF {
				err = ErrStreamTruncated
			}
			return Event{}, fmt.Errorf("event: stream event %d field %d: %w", s.idx, j, err)
		}
	}
	s.idx++
	return Event{
		Kind:   Kind(kind),
		Thread: vclock.Thread(uint32(fields[0])),
		Target: uint32(fields[1]),
		Site:   Site(fields[2]),
		Method: uint32(fields[3]),
	}, nil
}
