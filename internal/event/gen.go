package event

import (
	"math/rand"

	"pacer/internal/vclock"
)

// GenConfig parameterizes the random well-formed trace generator used by
// the differential and property-based tests. Generated traces respect the
// feasibility rules of Appendix A: locks are held by at most one thread and
// released only by their holder, forked threads act only after their fork,
// and joined threads act never again after being joined.
type GenConfig struct {
	// Threads is the maximum number of threads (≥ 1). Thread 0 is the main
	// thread and never finishes.
	Threads int
	// Vars, Locks, Volatiles size the identifier pools.
	Vars, Locks, Volatiles int
	// Steps is the number of generator steps; each step emits zero or more
	// events.
	Steps int
	// PGuarded is the probability that a data access is wrapped in an
	// acquire/release of the variable's guard lock. 1.0 produces a
	// properly synchronized (race-free) trace; 0.0 maximizes racing.
	PGuarded float64
	// PWrite is the probability that a data access is a write.
	PWrite float64
	// PSample is the per-step probability of toggling the global sampling
	// period (emitting sbegin/send). Zero disables sampling events.
	PSample float64
	// StartSampling emits an sbegin before the first step, so the trace
	// starts inside a sampling period.
	StartSampling bool
	// Seed makes generation deterministic.
	Seed int64
}

// Synchronized returns a config producing properly synchronized traces:
// every access to variable v happens while holding lock v mod Locks.
func Synchronized(threads, steps int, seed int64) GenConfig {
	return GenConfig{
		Threads: threads, Vars: 12, Locks: 4, Volatiles: 3,
		Steps: steps, PGuarded: 1.0, PWrite: 0.4, Seed: seed,
	}
}

// Racy returns a config producing traces with many data races.
func Racy(threads, steps int, seed int64) GenConfig {
	return GenConfig{
		Threads: threads, Vars: 12, Locks: 4, Volatiles: 3,
		Steps: steps, PGuarded: 0.5, PWrite: 0.4, Seed: seed,
	}
}

type genThread struct {
	started  bool
	finished bool
	joined   bool
	held     []Lock
}

// Generate produces a random well-formed trace according to cfg.
func Generate(cfg GenConfig) Trace {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Vars < 1 {
		cfg.Vars = 1
	}
	if cfg.Locks < 1 {
		cfg.Locks = 1
	}
	if cfg.Volatiles < 1 {
		cfg.Volatiles = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	threads := make([]genThread, 1, cfg.Threads)
	threads[0].started = true
	lockOwner := make([]vclock.Thread, cfg.Locks)
	for i := range lockOwner {
		lockOwner[i] = vclock.NoThread
	}
	var tr Trace
	sampling := false
	if cfg.StartSampling {
		tr = append(tr, Event{Kind: SampleBegin})
		sampling = true
	}

	runnable := func() []vclock.Thread {
		var rs []vclock.Thread
		for i := range threads {
			if threads[i].started && !threads[i].finished {
				rs = append(rs, vclock.Thread(i))
			}
		}
		return rs
	}

	emitAccess := func(t vclock.Thread, v Var) {
		kind := Read
		if rng.Float64() < cfg.PWrite {
			kind = Write
		}
		site := Site(uint32(v)*2 + uint32(kind))
		tr = append(tr, Event{Kind: kind, Thread: t, Target: uint32(v), Site: site, Method: uint32(v) % 7})
	}

	for step := 0; step < cfg.Steps; step++ {
		if cfg.PSample > 0 && rng.Float64() < cfg.PSample {
			if sampling {
				tr = append(tr, Event{Kind: SampleEnd})
			} else {
				tr = append(tr, Event{Kind: SampleBegin})
			}
			sampling = !sampling
		}
		rs := runnable()
		t := rs[rng.Intn(len(rs))]
		st := &threads[t]
		accessStep := func(repeat int) {
			v := Var(rng.Intn(cfg.Vars))
			if rng.Float64() < cfg.PGuarded {
				guard := Lock(uint32(v) % uint32(cfg.Locks))
				if lockOwner[guard] != vclock.NoThread {
					return // guard contended; skip this step
				}
				tr = append(tr, Event{Kind: Acquire, Thread: t, Target: uint32(guard)})
				lockOwner[guard] = t
				st.held = append(st.held, guard)
				for i := 0; i < repeat; i++ {
					emitAccess(t, v)
				}
				tr = append(tr, Event{Kind: Release, Thread: t, Target: uint32(guard)})
				lockOwner[guard] = vclock.NoThread
				st.held = st.held[:len(st.held)-1]
			} else {
				for i := 0; i < repeat; i++ {
					emitAccess(t, v)
				}
			}
		}
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // data access
			accessStep(1)
		case 5: // acquire a free lock
			m := Lock(rng.Intn(cfg.Locks))
			if lockOwner[m] != vclock.NoThread {
				continue
			}
			tr = append(tr, Event{Kind: Acquire, Thread: t, Target: uint32(m)})
			lockOwner[m] = t
			st.held = append(st.held, m)
		case 6: // release a held lock
			if len(st.held) == 0 {
				continue
			}
			i := rng.Intn(len(st.held))
			m := st.held[i]
			st.held = append(st.held[:i], st.held[i+1:]...)
			lockOwner[m] = vclock.NoThread
			tr = append(tr, Event{Kind: Release, Thread: t, Target: uint32(m)})
		case 7: // volatile access
			vx := Volatile(rng.Intn(cfg.Volatiles))
			k := VolRead
			if rng.Float64() < cfg.PWrite {
				k = VolWrite
			}
			tr = append(tr, Event{Kind: k, Thread: t, Target: uint32(vx)})
		case 8: // fork, join, or finish
			switch rng.Intn(3) {
			case 0:
				if len(threads) >= cfg.Threads {
					continue
				}
				u := vclock.Thread(len(threads))
				threads = append(threads, genThread{started: true})
				tr = append(tr, Event{Kind: Fork, Thread: t, Target: uint32(u)})
			case 1:
				u := pickFinishedUnjoined(rng, threads, t)
				if u == vclock.NoThread {
					continue
				}
				threads[u].joined = true
				tr = append(tr, Event{Kind: Join, Thread: t, Target: uint32(u)})
			case 2:
				if t == 0 || len(st.held) > 0 {
					continue
				}
				st.finished = true
			}
		case 9: // repeated access to the same variable (exercises same-epoch paths)
			accessStep(2)
		}
	}
	return tr
}

func pickFinishedUnjoined(rng *rand.Rand, threads []genThread, self vclock.Thread) vclock.Thread {
	var candidates []vclock.Thread
	for i := range threads {
		if vclock.Thread(i) != self && threads[i].finished && !threads[i].joined {
			candidates = append(candidates, vclock.Thread(i))
		}
	}
	if len(candidates) == 0 {
		return vclock.NoThread
	}
	return candidates[rng.Intn(len(candidates))]
}
