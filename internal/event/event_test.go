package event

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"pacer/internal/vclock"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Read: "rd", Write: "wr", Acquire: "acq", Release: "rel",
		Fork: "fork", Join: "join", VolRead: "vol_rd", VolWrite: "vol_wr",
		SampleBegin: "sbegin", SampleEnd: "send",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestKindClassification(t *testing.T) {
	syncs := []Kind{Acquire, Release, Fork, Join, VolRead, VolWrite}
	for _, k := range syncs {
		if !k.IsSync() || k.IsAccess() {
			t.Errorf("%v misclassified", k)
		}
	}
	for _, k := range []Kind{Read, Write} {
		if k.IsSync() || !k.IsAccess() {
			t.Errorf("%v misclassified", k)
		}
	}
	for _, k := range []Kind{SampleBegin, SampleEnd} {
		if k.IsSync() || k.IsAccess() {
			t.Errorf("%v misclassified", k)
		}
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: Read, Thread: 1, Target: 2, Site: 3}, "rd(t1, x2)@s3"},
		{Event{Kind: Acquire, Thread: 0, Target: 7}, "acq(t0, m7)"},
		{Event{Kind: Fork, Thread: 0, Target: 1}, "fork(t0, t1)"},
		{Event{Kind: VolWrite, Thread: 2, Target: 0}, "vol_wr(t2, v0)"},
		{Event{Kind: SampleBegin}, "sbegin()"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestTraceThreads(t *testing.T) {
	tr := Trace{
		{Kind: Write, Thread: 0, Target: 1},
		{Kind: Fork, Thread: 0, Target: 5},
		{Kind: Read, Thread: 2, Target: 1},
	}
	if n := tr.Threads(); n != 6 {
		t.Errorf("Threads() = %d, want 6", n)
	}
	if n := (Trace{}).Threads(); n != 0 {
		t.Errorf("empty Threads() = %d, want 0", n)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := Generate(Racy(6, 2000, 42))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(tr) {
		t.Fatalf("decoded %d events, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], tr[i])
		}
	}
}

func TestEncodeDecodeEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d events from empty trace", len(got))
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("NOTATRACE")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	tr := Generate(Racy(3, 100, 7))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated trace decoded without error")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(seed int64, steps uint16) bool {
		tr := Generate(GenConfig{
			Threads: 4, Vars: 5, Locks: 2, Volatiles: 2,
			Steps: int(steps % 500), PGuarded: 0.3, PWrite: 0.5,
			PSample: 0.02, Seed: seed,
		})
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// checkWellFormed verifies the feasibility rules of Appendix A on a trace.
func checkWellFormed(t *testing.T, tr Trace) {
	t.Helper()
	lockOwner := map[Lock]vclock.Thread{}
	started := map[vclock.Thread]bool{0: true}
	joined := map[vclock.Thread]bool{}
	lastAction := map[vclock.Thread]int{}
	joinIndex := map[vclock.Thread]int{}
	sampling := false
	for i, e := range tr {
		switch e.Kind {
		case SampleBegin:
			if sampling {
				t.Fatalf("event %d: nested sbegin", i)
			}
			sampling = true
			continue
		case SampleEnd:
			if !sampling {
				t.Fatalf("event %d: send without sbegin", i)
			}
			sampling = false
			continue
		}
		if !started[e.Thread] {
			t.Fatalf("event %d (%v): thread %d acts before being forked", i, e, e.Thread)
		}
		if joined[e.Thread] {
			t.Fatalf("event %d (%v): thread %d acts after being joined", i, e, e.Thread)
		}
		lastAction[e.Thread] = i
		switch e.Kind {
		case Acquire:
			m := Lock(e.Target)
			if owner, held := lockOwner[m]; held {
				t.Fatalf("event %d: lock %d acquired while held by t%d", i, m, owner)
			}
			lockOwner[m] = e.Thread
		case Release:
			m := Lock(e.Target)
			if owner, held := lockOwner[m]; !held || owner != e.Thread {
				t.Fatalf("event %d: release of lock %d not held by t%d", i, m, e.Thread)
			}
			delete(lockOwner, m)
		case Fork:
			u := vclock.Thread(e.Target)
			if started[u] {
				t.Fatalf("event %d: thread %d forked twice", i, u)
			}
			started[u] = true
		case Join:
			u := vclock.Thread(e.Target)
			if joined[u] {
				t.Fatalf("event %d: thread %d joined twice", i, u)
			}
			joined[u] = true
			joinIndex[u] = i
		}
	}
	for u, ji := range joinIndex {
		if la, ok := lastAction[u]; ok && la > ji {
			t.Fatalf("thread %d acted at %d after being joined at %d", u, la, ji)
		}
	}
}

func TestGenerateWellFormed(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := Generate(GenConfig{
			Threads: 6, Vars: 8, Locks: 3, Volatiles: 2,
			Steps: 3000, PGuarded: 0.4, PWrite: 0.4, PSample: 0.01, Seed: seed,
		})
		checkWellFormed(t, tr)
	}
}

func TestGenerateSynchronizedWellFormed(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := Generate(Synchronized(5, 2000, seed))
		checkWellFormed(t, tr)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Racy(4, 1000, 99))
	b := Generate(Racy(4, 1000, 99))
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at event %d", i)
		}
	}
}

func TestGenerateProducesEventMix(t *testing.T) {
	tr := Generate(GenConfig{
		Threads: 6, Vars: 8, Locks: 3, Volatiles: 2,
		Steps: 20000, PGuarded: 0.4, PWrite: 0.4, PSample: 0.01, Seed: 5,
	})
	counts := tr.Counts()
	for _, k := range []Kind{Read, Write, Acquire, Release, Fork, Join, VolRead, VolWrite, SampleBegin} {
		if counts[k] == 0 {
			t.Errorf("generator never produced %v", k)
		}
	}
}

func TestGenerateStartSampling(t *testing.T) {
	tr := Generate(GenConfig{Threads: 2, Vars: 2, Steps: 10, StartSampling: true, Seed: 1})
	if len(tr) == 0 || tr[0].Kind != SampleBegin {
		t.Fatal("StartSampling did not emit a leading sbegin")
	}
}
