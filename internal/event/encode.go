package event

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pacer/internal/vclock"
)

// Trace files begin with an 8-byte magic string followed by a varint event
// count and one varint-packed record per event. The format is deliberately
// simple: it exists so traces can be recorded once (e.g. from the simulator
// or the public API) and replayed under many detector configurations, the
// way LiteRace logs operations for offline analysis — except our detectors
// are online and the log is only a testing/debugging convenience.
const traceMagic = "PACERTR1"

var (
	// ErrBadMagic reports a trace stream that does not start with the
	// expected magic string.
	ErrBadMagic = errors.New("event: bad trace magic")
)

// WriteTrace encodes tr to w in the binary trace format.
func WriteTrace(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [5 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(tr)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	for _, e := range tr {
		n = 0
		buf[n] = byte(e.Kind)
		n++
		n += binary.PutUvarint(buf[n:], uint64(e.Thread))
		n += binary.PutUvarint(buf[n:], uint64(e.Target))
		n += binary.PutUvarint(buf[n:], uint64(e.Site))
		n += binary.PutUvarint(buf[n:], uint64(e.Method))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace decodes a trace previously written by WriteTrace.
func ReadTrace(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("event: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, ErrBadMagic
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("event: reading count: %w", err)
	}
	const maxPrealloc = 1 << 20
	tr := make(Trace, 0, min(count, maxPrealloc))
	for i := uint64(0); i < count; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("event: event %d kind: %w", i, err)
		}
		if Kind(kind) >= numKinds {
			return nil, fmt.Errorf("event: event %d has invalid kind %d", i, kind)
		}
		var fields [4]uint64
		for j := range fields {
			fields[j], err = binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("event: event %d field %d: %w", i, j, err)
			}
		}
		tr = append(tr, Event{
			Kind:   Kind(kind),
			Thread: vclock.Thread(uint32(fields[0])),
			Target: uint32(fields[1]),
			Site:   Site(fields[2]),
			Method: uint32(fields[3]),
		})
	}
	return tr, nil
}
