package event

import (
	"bytes"
	"testing"
)

// FuzzReadTrace ensures the block decoder never panics or over-allocates
// on arbitrary input, and that successfully decoded traces re-encode to an
// equivalent stream.
func FuzzReadTrace(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteTrace(&seed, Generate(Racy(3, 200, 1))); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(traceMagic))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, tr); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		tr2, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(tr2) != len(tr) {
			t.Fatalf("round-trip length %d != %d", len(tr2), len(tr))
		}
	})
}

// FuzzStreamReader ensures the streaming decoder never panics on arbitrary
// input.
func FuzzStreamReader(f *testing.F) {
	var seed bytes.Buffer
	w, _ := NewStreamWriter(&seed)
	for _, e := range Generate(Racy(3, 100, 2)) {
		w.Write(e)
	}
	w.Close()
	f.Add(seed.Bytes())
	f.Add([]byte(streamMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1_000_000; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
