// Differential tests for the metadata arena (Options.Arena): the arena is
// an allocator swap, so an arena-backed detector must report race-for-race
// identical results to the heap-backed one — live and concurrent against a
// serialized replay, and replayed trace against replayed trace.
package dtest_test

import (
	"testing"

	"pacer"
	"pacer/internal/backends"
	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
)

func withArena(o *pacer.Options) { o.Arena = true }

// replayArenaSerial replays tr through a serialized arena-backed core, the
// arena-side reference detector.
func replayArenaSerial(tr event.Trace) []detector.Race {
	c := dtest.Run(tr, func(rep detector.Reporter) detector.Detector {
		return core.NewWithOptions(rep, core.Options{Arena: true})
	})
	return c.Dynamic
}

func requireSameKeys(t *testing.T, label string, got, want map[dtest.RaceKey]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct race keys vs %d", label, len(got), len(want))
	}
	for k, n := range got {
		if want[k] != n {
			t.Fatalf("%s: key %+v reported %d vs %d times", label, k, n, want[k])
		}
	}
}

// TestDifferentialArenaConcurrent runs the concurrent hammer workload with
// the arena enabled and checks its recorded linearization against BOTH
// serialized references: the heap-backed core (the arena changes nothing
// algorithmic) and the arena-backed core (the live concurrent arena path
// matches its own serialized execution).
func TestDifferentialArenaConcurrent(t *testing.T) {
	for _, rate := range []float64{1.0, 0.3, 0.05} {
		for seed := int64(1); seed <= 3; seed++ {
			trace, races := recordedRunAlgo("pacer", rate, seed, 6, 900, withArena)
			live := dtest.KeySet(append([]detector.Race(nil), races...))
			heapRef := dtest.KeySet(replaySerial(trace))
			arenaRef := dtest.KeySet(replayArenaSerial(trace))
			requireSameKeys(t, "live(arena) vs heap replay", live, heapRef)
			requireSameKeys(t, "arena replay vs heap replay", arenaRef, heapRef)
			if rate == 1.0 && len(live) == 0 {
				t.Fatalf("seed %d: fully sampled arena run found no races", seed)
			}
		}
	}
}

// TestDifferentialArenaRecordedTraces replays identical recorded concurrent
// traces (produced by the heap-backed front-end) through heap and arena
// serialized cores: same trace in, same race multiset out.
func TestDifferentialArenaRecordedTraces(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		trace, _ := recordedRun(0.4, seed, 6, 800)
		heapRef := dtest.KeySet(replaySerial(trace))
		arenaRef := dtest.KeySet(replayArenaSerial(trace))
		requireSameKeys(t, "arena vs heap on recorded trace", arenaRef, heapRef)
	}
}

// TestDifferentialArenaPrecision audits the arena-backed concurrent run
// against the exact happens-before relation: every report must still be a
// true race (a recycled slab that leaked stale clock values would produce
// false positives here).
func TestDifferentialArenaPrecision(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		trace, races := recordedRunAlgo("pacer", 0.5, seed, 6, 700, withArena)
		oracle := dtest.NewHBOracle(trace)
		for _, r := range races {
			if !oracle.TrueRace(r) {
				t.Errorf("seed %d: arena-backed detector reported a false race %+v", seed, r)
			}
		}
	}
}

// TestDifferentialArenaShardedBackends covers the full
// {serialized, sharded} × {heap, arena} square for every backend that
// newly mounts sharded with arena metadata (fasttrack with the owned-
// access path live, djit+, literace): a concurrent arena-backed live run
// is recorded and replayed through serialized same-backend references on
// both allocators — all three race multisets must coincide.
func TestDifferentialArenaShardedBackends(t *testing.T) {
	for _, algo := range []string{"fasttrack", "djit", "literace"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				trace, races := recordedRunAlgo(algo, 1.0, seed, 4, 500, withArena)
				replay := func(arena bool) []detector.Race {
					c := dtest.Run(trace, func(rep detector.Reporter) detector.Detector {
						d, err := backends.New(algo, rep, backends.Config{
							Seed: seed,
							Core: core.Options{Arena: arena},
						})
						if err != nil {
							t.Fatalf("backend %q not in registry: %v", algo, err)
						}
						return d
					})
					return c.Dynamic
				}
				live := dtest.KeySet(append([]detector.Race(nil), races...))
				heapRef := dtest.KeySet(replay(false))
				arenaRef := dtest.KeySet(replay(true))
				requireSameKeys(t, algo+" live(arena,sharded) vs heap serialized replay", live, heapRef)
				requireSameKeys(t, algo+" arena serialized replay vs heap serialized replay", arenaRef, heapRef)
				if seed == 1 && len(live) == 0 {
					t.Fatalf("%s: fully sampled arena run found no races", algo)
				}
			}
		})
	}
}

// TestArenaStatsSurface checks the front-end surfaces arena occupancy: a
// run with churn must show recycles, and the heap-backed detector must
// report the arena as absent.
func TestArenaStatsSurface(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 0.5, PeriodOps: 64, Seed: 3, Arena: true})
	tid := d.NewThread()
	v := d.NewVarID()
	m := d.NewMutex()
	for i := 0; i < 20000; i++ {
		d.Write(tid, v, 1)
		if i%64 == 0 {
			m.Lock(tid)
			m.Unlock(tid)
		}
	}
	st := d.Stats()
	if !st.ArenaEnabled {
		t.Fatal("ArenaEnabled false on an arena-backed detector")
	}
	if st.ArenaRecycles == 0 {
		t.Fatalf("no recycles surfaced after metadata churn: %+v", st)
	}

	heap := pacer.New(pacer.Options{SamplingRate: 0.5})
	if hs := heap.Stats(); hs.ArenaEnabled || hs.ArenaRecycles != 0 {
		t.Fatalf("heap-backed detector claims arena stats: %+v", hs)
	}
}
