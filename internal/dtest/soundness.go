package dtest

import (
	"fmt"

	"pacer/internal/detector"
	"pacer/internal/event"
)

// SoundnessIssue checks the paper's central correctness properties of a
// PACER detector run against a FASTTRACK run on the same trace, which must
// have unique sites (UniqueSites). It returns a description of the first
// violation found, or "" when the trace passes:
//
//   - Guarantee (Theorem 2 analogue): at the first event where FASTTRACK
//     reports on a variable, every *shortest* (Definition 5) report with a
//     sampled first access is matched by PACER flagging the same
//     first-access epoch class.
//   - No early reports: PACER never detects a variable's first race before
//     FASTTRACK (it tracks strictly less information).
//   - Precision: every PACER report is a true race per the happens-before
//     oracle, and its first access lies inside a sampling period.
//
// mkPacer and mkFastTrack construct fresh detectors per call.
func SoundnessIssue(tr event.Trace,
	mkPacer, mkFastTrack func(detector.Reporter) detector.Detector) string {

	sampledAt := SamplingAt(tr)
	oracle := NewHBOracle(tr)
	ftReports := RunIndexed(tr, mkFastTrack)
	pReports := RunIndexed(tr, mkPacer)

	ftFirstIdx := map[event.Var]int{}
	for _, r := range ftReports {
		if _, ok := ftFirstIdx[r.Var]; !ok {
			ftFirstIdx[r.Var] = r.Idx
		}
	}
	pFirstIdx := map[event.Var]int{}
	pAtEvent := map[event.Var]map[EpochClass]bool{}
	for _, r := range pReports {
		if _, ok := pFirstIdx[r.Var]; !ok {
			pFirstIdx[r.Var] = r.Idx
		}
		if r.Idx != ftFirstIdx[r.Var] {
			continue
		}
		if cls, ok := oracle.ClassOf(r.Var, r.FirstSite); ok {
			if pAtEvent[r.Var] == nil {
				pAtEvent[r.Var] = map[EpochClass]bool{}
			}
			pAtEvent[r.Var][cls] = true
		}
	}

	// Guarantee. Only *shortest* races are covered (Definition 5):
	// FASTTRACK's own same-epoch fast path can report a non-shortest race
	// (a stale read entry superseded by a same-epoch write), which the
	// theorem does not oblige PACER to match.
	for _, r := range ftReports {
		if r.Idx != ftFirstIdx[r.Var] {
			continue
		}
		idx := int(r.FirstSite) - 1
		if idx < 0 || idx >= len(sampledAt) || !sampledAt[idx] {
			continue
		}
		if !oracle.Shortest(r.Race) {
			continue
		}
		cls, ok := oracle.ClassOf(r.Var, r.FirstSite)
		if !ok {
			return fmt.Sprintf("oracle does not know access s%d", r.FirstSite)
		}
		if !pAtEvent[r.Var][cls] {
			return fmt.Sprintf("sampled shortest race on x%d (first access by t%d at clock %d, event %d) missed by PACER",
				r.Var, cls.Thread, cls.C, r.Idx)
		}
	}
	// No early reports.
	for v, pi := range pFirstIdx {
		if fi, ok := ftFirstIdx[v]; !ok || pi < fi {
			return fmt.Sprintf("PACER reported on x%d at event %d before FASTTRACK (event %d)", v, pi, ftFirstIdx[v])
		}
	}
	// Precision.
	for _, r := range pReports {
		if !oracle.TrueRace(r.Race) {
			return fmt.Sprintf("PACER reported a false or inconsistent race: %v", r.Race)
		}
		idx := int(r.FirstSite) - 1
		if idx < 0 || idx >= len(sampledAt) || !sampledAt[idx] {
			return fmt.Sprintf("PACER report %v has an unsampled first access", r.Race)
		}
	}
	return ""
}
