// Differential tests of the concurrent public front-end against the
// serialized core detector: the front-end records its operations through
// Options.TraceSink, the recorded linearization is replayed through a
// fresh single-threaded core.Detector, and the two race reports are
// compared. This is the correctness argument for the lock-free fast path
// and the sharded slow path — if either ever admitted an interleaving that
// no serial execution could produce, the replay would diverge.
package dtest_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pacer"
	"pacer/internal/backends"
	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
)

// recordedRun hammers one detector from several goroutines through the
// public API with a trace sink attached, and returns the recorded
// linearization plus the races the live detector reported. Every data
// access carries a globally unique site, so a race report identifies a
// dynamic access pair and the HB oracle can audit it.
func recordedRun(rate float64, seed int64, goroutines, opsPer int) (event.Trace, []pacer.Race) {
	return recordedRunAlgo("pacer", rate, seed, goroutines, opsPer)
}

// recordedRunAlgo is recordedRun with the backend chosen by name — the
// same workload through the identical unified front-end, whatever is
// mounted behind it. Optional modifiers adjust the front-end options
// (e.g. the arena differential flips Options.Arena).
func recordedRunAlgo(algo string, rate float64, seed int64, goroutines, opsPer int, mod ...func(*pacer.Options)) (event.Trace, []pacer.Race) {
	var (
		trace  event.Trace // appends already serialized by the sink lock
		raceMu sync.Mutex
		races  []pacer.Race
		site   atomic.Uint32
	)
	o := pacer.Options{
		Algorithm:    algo,
		SamplingRate: rate,
		PeriodOps:    128,
		Seed:         seed,
		Shards:       8, // small shard count: more same-shard contention
		OnRace: func(r pacer.Race) {
			raceMu.Lock()
			races = append(races, r)
			raceMu.Unlock()
		},
		TraceSink: func(e pacer.Event) { trace = append(trace, e) },
	}
	for _, m := range mod {
		m(&o)
	}
	d := pacer.New(o)
	main := d.NewThread()
	shared := make([]pacer.VarID, 6)
	for i := range shared {
		shared[i] = d.NewVarID()
	}
	locks := []*pacer.Mutex{d.NewMutex(), d.NewMutex()}
	flag := pacer.NewAtomic(d, 0)

	var wg sync.WaitGroup
	workers := make([]pacer.ThreadID, goroutines)
	for g := range workers {
		workers[g] = d.Fork(main)
	}
	for g, tid := range workers {
		wg.Add(1)
		go func(tid pacer.ThreadID, g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(g)))
			private := make([]pacer.VarID, 4)
			for i := range private {
				private[i] = d.NewVarID()
			}
			for i := 0; i < opsPer; i++ {
				s := pacer.SiteID(site.Add(1))
				switch r := rng.Intn(100); {
				case r < 45: // private accesses: fast-path fodder
					v := private[rng.Intn(len(private))]
					if rng.Intn(3) == 0 {
						d.Write(tid, v, s)
					} else {
						d.Read(tid, v, s)
					}
				case r < 75: // unsynchronized shared accesses: race-prone
					v := shared[rng.Intn(len(shared))]
					if rng.Intn(2) == 0 {
						d.Write(tid, v, s)
					} else {
						d.Read(tid, v, s)
					}
				case r < 92: // lock-guarded shared accesses
					m := locks[rng.Intn(len(locks))]
					m.Lock(tid)
					d.Write(tid, shared[rng.Intn(len(shared))], s)
					m.Unlock(tid)
				case r < 97: // volatile publication
					if rng.Intn(2) == 0 {
						flag.Store(tid, i)
					} else {
						flag.Load(tid)
					}
				default: // a blocking Stats call stresses the epoch lock
					_ = d.Stats()
				}
			}
		}(tid, g)
	}
	wg.Wait()
	for _, tid := range workers {
		d.Join(main, tid)
	}
	return trace, races
}

func replaySerial(tr event.Trace) []detector.Race {
	c := dtest.Run(tr, func(rep detector.Reporter) detector.Detector {
		return core.New(rep)
	})
	return c.Dynamic
}

// TestConcurrentFrontEndReplaysExactly is the core differential property:
// replaying the recorded linearization through the serialized reference
// detector reproduces the concurrent front-end's race reports exactly — as
// a multiset — at every sampling rate. In particular no report is emitted
// that the serialized detector could not emit.
func TestConcurrentFrontEndReplaysExactly(t *testing.T) {
	for _, rate := range []float64{1.0, 0.4, 0.05, 0} {
		for seed := int64(1); seed <= 4; seed++ {
			trace, races := recordedRun(rate, seed, 6, 900)
			ref := replaySerial(trace)
			live := make([]detector.Race, len(races))
			copy(live, races)
			got, want := dtest.KeySet(live), dtest.KeySet(ref)
			if len(got) != len(want) {
				t.Fatalf("rate %v seed %d: live has %d distinct keys, replay %d",
					rate, seed, len(got), len(want))
			}
			for k, n := range got {
				if want[k] != n {
					t.Fatalf("rate %v seed %d: key %+v reported %d times live, %d in replay",
						rate, seed, k, n, want[k])
				}
			}
			if rate == 1.0 && len(live) == 0 {
				t.Fatalf("seed %d: fully sampled concurrent run found no races", seed)
			}
		}
	}
}

// TestConcurrentFrontEndIsPrecise audits every live report against the
// exact happens-before relation of the recorded trace: each one must name
// two real accesses of the claimed kinds that are truly concurrent. This
// is the paper's precision guarantee, carried through the concurrent
// ingestion layer.
func TestConcurrentFrontEndIsPrecise(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		trace, races := recordedRun(0.5, seed, 6, 700)
		oracle := dtest.NewHBOracle(trace)
		for _, r := range races {
			if !oracle.TrueRace(r) {
				t.Errorf("seed %d: reported race %+v is not a true race of the recorded trace", seed, r)
			}
		}
	}
}

// TestSampledRacesAreSubsetOfFullTracking replays the recorded trace with
// sampling transitions stripped and a single leading sbegin — i.e. through
// a fully tracking serialized detector — and checks that everything the
// sampled concurrent run reported is also reported there: sampling (and
// the concurrent front-end around it) only ever loses races, never invents
// them. Races are matched by (variable, kind, thread pair) with the second
// access compared up to epoch class, because attribution differs in two
// benign ways: PACER's non-sampling shallow copies do not advance thread
// clocks, so its "same epoch" first access can span many textbook epochs
// (a different first site than full tracking records), and full tracking
// early-returns on a repeated same-epoch second read that the sampled
// detector re-reports.
func TestSampledRacesAreSubsetOfFullTracking(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		trace, races := recordedRun(0.3, seed, 6, 900)
		full := event.Trace{{Kind: event.SampleBegin}}
		for _, e := range trace {
			if e.Kind != event.SampleBegin && e.Kind != event.SampleEnd {
				full = append(full, e)
			}
		}
		fullRaces := replaySerial(full)
		oracle := dtest.NewHBOracle(trace) // the oracle ignores sbegin/send
		for _, r := range races {
			lc, ok := oracle.ClassOf(r.Var, r.SecondSite)
			if !ok {
				t.Errorf("seed %d: race %+v names an unknown second access", seed, r)
				continue
			}
			found := false
			for _, fr := range fullRaces {
				if fr.Var != r.Var || fr.Kind != r.Kind ||
					fr.FirstThread != r.FirstThread || fr.SecondThread != r.SecondThread {
					continue
				}
				if fc, ok := oracle.ClassOf(fr.Var, fr.SecondSite); ok && fc == lc {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("seed %d: sampled run reported %+v, absent from full tracking", seed, r)
			}
		}
	}
}

// TestDifferentialMountedBackends extends the differential property to
// every backend mountable behind the unified front-end: record a parallel
// run with the backend mounted via Options.Algorithm, then replay the
// recorded linearization through a freshly constructed instance of the
// same backend (built with the same registry config, so LITERACE's
// sampling RNG streams line up) and demand the identical race multiset.
// Non-sharded backends are serialized by the front-end, so the recorded
// order is the analysis order and replay must agree report for report.
// Lockset is included here deliberately — it is imprecise, but it must be
// *deterministically* imprecise through the front-end.
func TestDifferentialMountedBackends(t *testing.T) {
	for _, algo := range []string{"fasttrack", "generic", "djit", "literace", "goldilocks", "lockset"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				trace, races := recordedRunAlgo(algo, 1.0, seed, 4, 500)
				c := dtest.Run(trace, func(rep detector.Reporter) detector.Detector {
					d, err := backends.New(algo, rep, backends.Config{Seed: seed})
					if err != nil {
						t.Fatalf("backend %q not in registry: %v", algo, err)
					}
					return d
				})
				live := make([]detector.Race, len(races))
				copy(live, races)
				got, want := dtest.KeySet(live), dtest.KeySet(c.Dynamic)
				if len(got) != len(want) {
					t.Fatalf("seed %d: live run has %d distinct keys, replay %d", seed, len(got), len(want))
				}
				for k, n := range got {
					if want[k] != n {
						t.Fatalf("seed %d: key %+v reported %d times live, %d in replay", seed, k, n, want[k])
					}
				}
				if algo != "lockset" && seed == 1 && len(live) == 0 {
					t.Errorf("always-sampling backend %q found no races on the race-prone workload", algo)
				}
			}
		})
	}
}

// TestSerializedModeMatchesConcurrentReplay runs the same single-threaded
// operation sequence through a Serialized front-end and a concurrent one;
// with one thread the two must behave identically, roll for roll.
func TestSerializedModeMatchesConcurrentReplay(t *testing.T) {
	run := func(serialized bool) (event.Trace, int) {
		var trace event.Trace
		n := 0
		d := pacer.New(pacer.Options{
			SamplingRate: 0.3,
			PeriodOps:    64,
			Seed:         7,
			Serialized:   serialized,
			OnRace:       func(pacer.Race) { n++ },
			TraceSink:    func(e pacer.Event) { trace = append(trace, e) },
		})
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		v := d.NewVarID()
		pad := d.NewVarID()
		site := pacer.SiteID(1)
		for i := 0; i < 2000; i++ {
			d.Read(t0, pad, site)
			site++
			if i%97 == 0 {
				d.Write(t0, v, site)
				site++
				d.Write(t1, v, site)
				site++
			}
		}
		return trace, n
	}
	serTrace, serRaces := run(true)
	conTrace, conRaces := run(false)
	if len(serTrace) != len(conTrace) {
		t.Fatalf("trace lengths differ: serialized %d, concurrent %d", len(serTrace), len(conTrace))
	}
	for i := range serTrace {
		if serTrace[i] != conTrace[i] {
			t.Fatalf("event %d differs: serialized %v, concurrent %v", i, serTrace[i], conTrace[i])
		}
	}
	if serRaces != conRaces {
		t.Fatalf("race counts differ: serialized %d, concurrent %d", serRaces, conRaces)
	}
}
