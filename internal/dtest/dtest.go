// Package dtest provides shared test support for the race detector
// packages: a fluent trace builder for hand-crafted scenarios, replay
// helpers that collect race reports, and utilities for differential
// comparisons between detectors.
package dtest

import (
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// TB builds traces fluently for scenario tests.
type TB struct {
	Trace event.Trace
}

// NewTB returns an empty trace builder.
func NewTB() *TB { return &TB{} }

func (b *TB) add(e event.Event) *TB {
	b.Trace = append(b.Trace, e)
	return b
}

// Read appends rd(t, x) at site uint32(x)*1000 + uint32(t) unless
// overridden via ReadAt.
func (b *TB) Read(t vclock.Thread, x event.Var) *TB {
	return b.ReadAt(t, x, event.Site(uint32(x)*1000+uint32(t)))
}

// ReadAt appends rd(t, x) at an explicit site.
func (b *TB) ReadAt(t vclock.Thread, x event.Var, s event.Site) *TB {
	return b.add(event.Event{Kind: event.Read, Thread: t, Target: uint32(x), Site: s})
}

// Write appends wr(t, x) at site uint32(x)*1000 + 500 + uint32(t).
func (b *TB) Write(t vclock.Thread, x event.Var) *TB {
	return b.WriteAt(t, x, event.Site(uint32(x)*1000+500+uint32(t)))
}

// WriteAt appends wr(t, x) at an explicit site.
func (b *TB) WriteAt(t vclock.Thread, x event.Var, s event.Site) *TB {
	return b.add(event.Event{Kind: event.Write, Thread: t, Target: uint32(x), Site: s})
}

// Acq appends acq(t, m).
func (b *TB) Acq(t vclock.Thread, m event.Lock) *TB {
	return b.add(event.Event{Kind: event.Acquire, Thread: t, Target: uint32(m)})
}

// Rel appends rel(t, m).
func (b *TB) Rel(t vclock.Thread, m event.Lock) *TB {
	return b.add(event.Event{Kind: event.Release, Thread: t, Target: uint32(m)})
}

// Fork appends fork(t, u).
func (b *TB) Fork(t, u vclock.Thread) *TB {
	return b.add(event.Event{Kind: event.Fork, Thread: t, Target: uint32(u)})
}

// Join appends join(t, u).
func (b *TB) Join(t, u vclock.Thread) *TB {
	return b.add(event.Event{Kind: event.Join, Thread: t, Target: uint32(u)})
}

// VolRead appends vol_rd(t, vx).
func (b *TB) VolRead(t vclock.Thread, vx event.Volatile) *TB {
	return b.add(event.Event{Kind: event.VolRead, Thread: t, Target: uint32(vx)})
}

// VolWrite appends vol_wr(t, vx).
func (b *TB) VolWrite(t vclock.Thread, vx event.Volatile) *TB {
	return b.add(event.Event{Kind: event.VolWrite, Thread: t, Target: uint32(vx)})
}

// SBegin appends sbegin().
func (b *TB) SBegin() *TB { return b.add(event.Event{Kind: event.SampleBegin}) }

// SEnd appends send().
func (b *TB) SEnd() *TB { return b.add(event.Event{Kind: event.SampleEnd}) }

// Run replays the builder's trace through the detector constructed by
// mk and returns the collected races.
func Run(tr event.Trace, mk func(detector.Reporter) detector.Detector) *detector.Collector {
	c := detector.NewCollector()
	d := mk(c.Report)
	detector.Replay(d, tr)
	return c
}

// UniqueSites returns a copy of tr in which every data access carries a
// distinct Site (its event index + 1), so that a race's FirstSite uniquely
// identifies the dynamic first access. Used by the statistical-soundness
// differential tests.
func UniqueSites(tr event.Trace) event.Trace {
	out := make(event.Trace, len(tr))
	copy(out, tr)
	for i := range out {
		if out[i].Kind.IsAccess() {
			out[i].Site = event.Site(i + 1)
		}
	}
	return out
}

// SamplingAt returns, for each event index of tr, whether the analysis is
// inside a sampling period when that event executes (sbegin/send events
// take effect before subsequent events).
func SamplingAt(tr event.Trace) []bool {
	out := make([]bool, len(tr))
	sampling := false
	for i, e := range tr {
		switch e.Kind {
		case event.SampleBegin:
			sampling = true
		case event.SampleEnd:
			sampling = false
		}
		out[i] = sampling
	}
	return out
}

// RaceKey identifies a race for cross-detector comparison. With unique
// sites it identifies the dynamic access pair exactly.
type RaceKey struct {
	Var        event.Var
	Kind       detector.RaceKind
	FirstSite  event.Site
	SecondSite event.Site
}

// KeyOf returns r's comparison key.
func KeyOf(r detector.Race) RaceKey {
	return RaceKey{Var: r.Var, Kind: r.Kind, FirstSite: r.FirstSite, SecondSite: r.SecondSite}
}

// KeySet converts a report list into a set of keys.
func KeySet(races []detector.Race) map[RaceKey]int {
	m := make(map[RaceKey]int)
	for _, r := range races {
		m[KeyOf(r)]++
	}
	return m
}

// FirstRacePerVar replays tr through the detector built by mk and returns,
// for each variable, the index of the event at which its first race was
// reported. Used for the GENERIC/FASTTRACK precision comparison, which is
// only defined up to each variable's first race.
func FirstRacePerVar(tr event.Trace, mk func(detector.Reporter) detector.Detector) map[event.Var]int {
	first := make(map[event.Var]int)
	idx := 0
	d := mk(func(r detector.Race) {
		if _, ok := first[r.Var]; !ok {
			first[r.Var] = idx
		}
	})
	for i, e := range tr {
		idx = i
		detector.Apply(d, e)
	}
	return first
}

// HBOracle computes the exact happens-before relation of a trace,
// independent of any detector, so tests can verify that reported races are
// true races. It requires a trace preprocessed by UniqueSites, so that a
// site identifies one dynamic access.
type HBOracle struct {
	access map[event.Site]accessInfo
	byVar  map[event.Var][]event.Site // access sites per variable, in trace order
}

type accessInfo struct {
	idx   int
	t     vclock.Thread
	kind  event.Kind
	v     event.Var
	c     uint64     // C_t(t) at the access
	clock *vclock.VC // snapshot of C_t at the access
}

// NewHBOracle replays tr with the textbook vector-clock rules and records
// a clock snapshot at every data access.
func NewHBOracle(tr event.Trace) *HBOracle {
	o := &HBOracle{
		access: make(map[event.Site]accessInfo),
		byVar:  make(map[event.Var][]event.Site),
	}
	threads := map[vclock.Thread]*vclock.VC{}
	locks := map[event.Lock]*vclock.VC{}
	vols := map[event.Volatile]*vclock.VC{}
	clk := func(t vclock.Thread) *vclock.VC {
		c, ok := threads[t]
		if !ok {
			c = vclock.New(int(t) + 1)
			c.Set(t, 1)
			threads[t] = c
		}
		return c
	}
	lock := func(id event.Lock) *vclock.VC {
		c, ok := locks[id]
		if !ok {
			c = vclock.New(0)
			locks[id] = c
		}
		return c
	}
	vol := func(id event.Volatile) *vclock.VC {
		c, ok := vols[id]
		if !ok {
			c = vclock.New(0)
			vols[id] = c
		}
		return c
	}
	for i, e := range tr {
		switch e.Kind {
		case event.Read, event.Write:
			ct := clk(e.Thread)
			o.access[e.Site] = accessInfo{
				idx: i, t: e.Thread, kind: e.Kind, v: event.Var(e.Target),
				c: ct.Get(e.Thread), clock: ct.Clone(),
			}
			o.byVar[event.Var(e.Target)] = append(o.byVar[event.Var(e.Target)], e.Site)
		case event.Acquire:
			clk(e.Thread).JoinFrom(lock(event.Lock(e.Target)))
		case event.Release:
			lock(event.Lock(e.Target)).CopyFrom(clk(e.Thread))
			clk(e.Thread).Inc(e.Thread)
		case event.Fork:
			u := vclock.Thread(e.Target)
			clk(u).JoinFrom(clk(e.Thread))
			clk(e.Thread).Inc(e.Thread)
		case event.Join:
			u := vclock.Thread(e.Target)
			clk(e.Thread).JoinFrom(clk(u))
			clk(u).Inc(u)
		case event.VolRead:
			clk(e.Thread).JoinFrom(vol(event.Volatile(e.Target)))
		case event.VolWrite:
			vol(event.Volatile(e.Target)).JoinFrom(clk(e.Thread))
			clk(e.Thread).Inc(e.Thread)
		}
	}
	return o
}

// TrueRace reports whether the race r names two known accesses to the same
// variable, of the kinds the report claims, that are truly concurrent under
// the happens-before relation.
func (o *HBOracle) TrueRace(r detector.Race) bool {
	a, okA := o.access[r.FirstSite]
	b, okB := o.access[r.SecondSite]
	if !okA || !okB {
		return false
	}
	if a.v != r.Var || b.v != r.Var || a.t != r.FirstThread || b.t != r.SecondThread {
		return false
	}
	var wantA, wantB event.Kind
	switch r.Kind {
	case detector.WriteWrite:
		wantA, wantB = event.Write, event.Write
	case detector.WriteRead:
		wantA, wantB = event.Write, event.Read
	case detector.ReadWrite:
		wantA, wantB = event.Read, event.Write
	}
	if a.kind != wantA || b.kind != wantB {
		return false
	}
	if a.idx >= b.idx {
		return false
	}
	// Concurrent: the first access does not happen before the second.
	return a.c > b.clock.Get(a.t)
}

// Shortest reports whether the race r is a *shortest* race (Definition 5):
// no access to the same variable between its two accesses both conflicts
// and races with the second access. The happens-before guarantee covers
// only shortest races; detectors may also report longer (still true) ones.
func (o *HBOracle) Shortest(r detector.Race) bool {
	a, okA := o.access[r.FirstSite]
	b, okB := o.access[r.SecondSite]
	if !okA || !okB {
		return false
	}
	for _, site := range o.byVar[r.Var] {
		d := o.access[site]
		if d.idx <= a.idx || d.idx >= b.idx {
			continue
		}
		if d.kind != event.Write && b.kind != event.Write {
			continue // two reads do not conflict
		}
		if d.c > b.clock.Get(d.t) { // d races with the second access
			return false
		}
	}
	return true
}

// FirstAccessKey is a (variable, first-access site) pair: "this sampled
// access was flagged as racing".
type FirstAccessKey struct {
	Var  event.Var
	Site event.Site
}

// FirstAccessSet projects races onto their flagged first accesses.
func FirstAccessSet(races []detector.Race) map[FirstAccessKey]bool {
	m := make(map[FirstAccessKey]bool)
	for _, r := range races {
		m[FirstAccessKey{Var: r.Var, Site: r.FirstSite}] = true
	}
	return m
}

// EpochClass identifies a dynamic access up to happens-before
// indistinguishability: accesses to one variable by one thread at one
// vector clock (e.g. a read and a write separated only by operations that
// do not advance the thread's clock) are interchangeable as the "first
// access" of a race report — anything concurrent with one is concurrent
// with all — and detectors may legitimately attribute a race to any of
// them, with either access kind.
type EpochClass struct {
	Var    event.Var
	Thread vclock.Thread
	C      uint64
}

// ClassOf returns the epoch class of the access recorded at site, which
// must come from a UniqueSites trace.
func (o *HBOracle) ClassOf(v event.Var, site event.Site) (EpochClass, bool) {
	a, ok := o.access[site]
	if !ok || a.v != v {
		return EpochClass{}, false
	}
	return EpochClass{Var: a.v, Thread: a.t, C: a.c}, true
}

// FirstAccessClasses projects races onto the epoch classes of their first
// accesses, dropping races whose first site is unknown to the oracle.
func (o *HBOracle) FirstAccessClasses(races []detector.Race) map[EpochClass]bool {
	m := make(map[EpochClass]bool)
	for _, r := range races {
		if c, ok := o.ClassOf(r.Var, r.FirstSite); ok {
			m[c] = true
		}
	}
	return m
}

// IndexedRace is a race report tagged with the index of the event that
// triggered it.
type IndexedRace struct {
	detector.Race
	Idx int
}

// RunIndexed replays tr and returns every report tagged with its event
// index.
func RunIndexed(tr event.Trace, mk func(detector.Reporter) detector.Detector) []IndexedRace {
	var out []IndexedRace
	idx := 0
	d := mk(func(r detector.Race) { out = append(out, IndexedRace{Race: r, Idx: idx}) })
	for i, e := range tr {
		idx = i
		detector.Apply(d, e)
	}
	return out
}
