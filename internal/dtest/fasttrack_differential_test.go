// Differential tests for the sharded FASTTRACK mount: the always-on
// backend now implements detector.Sharded, so the front-end drives it with
// the striped reader-writer discipline instead of the exclusive lock. The
// correctness argument is the same one the PACER core carries: the
// recorded linearization, replayed serialized, must reproduce the live
// race multiset exactly.
package dtest_test

import (
	"testing"

	"pacer"
	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
)

// replayFrontendSerialized replays a recorded trace through a fresh
// front-end mounted in Options.Serialized mode — the classic single-mutex
// path — and returns the races it reports.
func replayFrontendSerialized(algo string, seed int64, tr event.Trace) []detector.Race {
	var races []detector.Race
	d := pacer.New(pacer.Options{
		Algorithm:  algo,
		Serialized: true,
		PeriodOps:  128,
		Seed:       seed,
		Shards:     8,
		OnRace:     func(r pacer.Race) { races = append(races, r) },
	})
	for _, e := range tr {
		d.Apply(e)
	}
	return races
}

// TestDifferentialShardedFastTrack records a parallel run with the sharded
// FASTTRACK mount and replays the linearization two ways — through the raw
// serialized backend and through a Serialized front-end mount — demanding
// the identical race multiset from both. Always-on detection admits no
// sampling noise: any divergence is a front-end interleaving bug.
func TestDifferentialShardedFastTrack(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		trace, races := recordedRunAlgo("fasttrack", 1.0, seed, 6, 700)
		live := make([]detector.Race, len(races))
		copy(live, races)
		got := dtest.KeySet(live)

		raw := dtest.Run(trace, func(rep detector.Reporter) detector.Detector {
			return fasttrack.New(rep)
		})
		serialized := replayFrontendSerialized("fasttrack", seed, trace)

		for name, ref := range map[string][]detector.Race{
			"raw backend":          raw.Dynamic,
			"serialized front-end": serialized,
		} {
			want := dtest.KeySet(ref)
			if len(got) != len(want) {
				t.Fatalf("seed %d: live sharded run has %d distinct keys, %s replay %d",
					seed, len(got), name, len(want))
			}
			for k, n := range got {
				if want[k] != n {
					t.Fatalf("seed %d: key %+v reported %d times live, %d in %s replay",
						seed, k, n, want[k], name)
				}
			}
		}
		if seed == 1 && len(live) == 0 {
			t.Fatal("fully tracking sharded FASTTRACK found no races on the race-prone workload")
		}
	}
}

// TestDifferentialShardedFastTrackArena repeats the differential property
// with the arena-backed mount (Options.Arena reaches FASTTRACK through the
// registry): slab allocation must not change a single report.
func TestDifferentialShardedFastTrackArena(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		trace, races := recordedRunAlgo("fasttrack", 1.0, seed, 4, 500,
			func(o *pacer.Options) { o.Arena = true })
		live := make([]detector.Race, len(races))
		copy(live, races)
		ref := dtest.Run(trace, func(rep detector.Reporter) detector.Detector {
			return fasttrack.New(rep)
		})
		got, want := dtest.KeySet(live), dtest.KeySet(ref.Dynamic)
		if len(got) != len(want) {
			t.Fatalf("seed %d: arena live run has %d distinct keys, heap replay %d", seed, len(got), len(want))
		}
		for k, n := range got {
			if want[k] != n {
				t.Fatalf("seed %d: key %+v reported %d times live (arena), %d in heap replay", seed, k, n, want[k])
			}
		}
	}
}

// TestDifferentialBurstSkipLockFree records a parallel LITERACE run — whose
// burst sampler now serves skip decisions through the lock-free
// detector.BurstSampler path — and replays the linearization through a
// fresh serialized LITERACE with the same seed. Per-(method, thread)
// decision streams are interleaving-independent by construction, so the
// race multisets must match exactly even though the live run dismissed
// cold-method accesses without the epoch lock.
func TestDifferentialBurstSkipLockFree(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		// 2000 ops/goroutine drives every (method, thread) key well past the
		// default burst length, so the lock-free skip path actually fires.
		trace, races := recordedRunAlgo("literace", 1.0, seed, 4, 2000)
		live := make([]detector.Race, len(races))
		copy(live, races)
		serialized := replayFrontendSerialized("literace", seed, trace)
		got, want := dtest.KeySet(live), dtest.KeySet(serialized)
		if len(got) != len(want) {
			t.Fatalf("seed %d: live run has %d distinct keys, serialized replay %d", seed, len(got), len(want))
		}
		for k, n := range got {
			if want[k] != n {
				t.Fatalf("seed %d: key %+v reported %d times live, %d in serialized replay", seed, k, n, want[k])
			}
		}
	}
}
