package core

import (
	"testing"

	"pacer/internal/detector"
)

// Algorithm 16, subsume-via-version path: a thread re-writing a volatile
// it last wrote finds its own version epoch subsumed and performs a copy
// (shallow outside sampling) rather than a join.
func TestVolatileRewriteUsesVersionSubsume(t *testing.T) {
	d := New(nil)
	d.VolWrite(0, 1)
	fastBefore := d.stats.FastJoins[detector.NonSampling]
	shallowBefore := d.stats.ShallowCopies[detector.NonSampling]
	d.VolWrite(0, 1) // same thread, version unchanged → fast subsume
	if d.stats.FastJoins[detector.NonSampling] != fastBefore+1 {
		t.Error("re-write did not take the version fast path")
	}
	if d.stats.ShallowCopies[detector.NonSampling] != shallowBefore+1 {
		t.Error("non-sampling volatile subsume should shallow-copy")
	}
	if ve := d.vols[1].vepoch; ve.IsTop() {
		t.Error("ordered volatile writes must keep a real version epoch")
	}
}

// Algorithm 16, concurrent path: a write by a thread that has not seen the
// volatile's current snapshot joins the clocks and poisons the version
// epoch to ⊤ve.
func TestVolatileConcurrentWriteSetsTop(t *testing.T) {
	d := New(nil)
	d.SampleBegin()
	d.VolWrite(0, 1)
	d.VolWrite(1, 1) // t1 concurrent with t0's write
	s := d.vols[1]
	if !s.vepoch.IsTop() {
		t.Fatalf("vepoch = %v, want ⊤ve", s.vepoch)
	}
	// The volatile's clock must now dominate both writers' pre-write
	// clocks.
	if s.clock.Get(0) < 1 || s.clock.Get(1) < 1 {
		t.Errorf("joined volatile clock %v missing writer components", s.clock)
	}
	// A third thread reading the volatile receives both components.
	d.VolRead(2, 1)
	tm := d.thread(2)
	if tm.clock.Get(0) < 1 || tm.clock.Get(1) < 1 {
		t.Error("volatile read did not receive the joined clock")
	}
}

// After a ⊤ve poisoning, an ordered rewrite restores a version epoch:
// the writer has (via its own read) seen the joined snapshot, so the
// O(n) comparison discovers subsumption and the copy re-establishes v@t.
func TestVolatileTopRecoversAfterOrderedWrite(t *testing.T) {
	d := New(nil)
	d.SampleBegin()
	d.VolWrite(0, 1)
	d.VolWrite(1, 1) // ⊤ve
	d.VolRead(2, 1)  // t2 receives the joined snapshot
	d.VolWrite(2, 1) // t2's clock now subsumes → copy, version epoch v@2
	s := d.vols[1]
	if s.vepoch.IsTop() {
		t.Fatal("ordered rewrite did not restore a version epoch")
	}
	if s.vepoch.Thread() != 2 {
		t.Errorf("vepoch = %v, want thread 2", s.vepoch)
	}
}

// A shared volatile clock (from a non-sampling shallow copy) must be
// cloned before a concurrent join mutates it.
func TestVolatileConcurrentJoinClonesSharedClock(t *testing.T) {
	d := New(nil)
	d.VolWrite(0, 1) // non-sampling: volatile shares t0's clock
	s := d.vols[1]
	if s.clock != d.thread(0).clock {
		t.Fatal("expected shared clock after non-sampling volatile write")
	}
	old := s.clock
	snapshot := s.clock.Clone()
	d.SampleBegin() // t0 clones for its increment; `old` stays shared
	d.Release(1, 9) // give t1 some history
	d.VolWrite(1, 1)
	if s.clock == old {
		t.Error("concurrent join did not clone the shared volatile clock")
	}
	if !old.Equal(snapshot) {
		t.Errorf("shared snapshot mutated in place: %v -> %v", snapshot, old)
	}
	if s.clock.Get(1) == 0 {
		t.Error("join did not absorb the writer's clock")
	}
}

// Volatiles synchronize exactly like the paper's semantics: write then
// read orders; read alone does not.
func TestVolatileHappensBeforeSemantics(t *testing.T) {
	col := detector.NewCollector()
	d := New(col.Report)
	d.SampleBegin()
	d.Write(0, 5, 1, 0)
	d.VolWrite(0, 1)
	d.VolRead(1, 1)
	d.Write(1, 5, 2, 0) // ordered: no race
	if col.DynamicCount() != 0 {
		t.Fatalf("ordered volatile accesses raced: %v", col.Dynamic)
	}
	// But a thread that only WROTE the volatile (without reading) is not
	// ordered after other writers' data accesses... verify with a fresh
	// detector: t0 writes x then vol; t2 writes vol (joins INTO volatile,
	// receiving nothing); t2's data write races with t0's.
	col2 := detector.NewCollector()
	d2 := New(col2.Report)
	d2.SampleBegin()
	d2.Write(0, 5, 1, 0)
	d2.VolWrite(0, 1)
	d2.VolWrite(2, 1) // vol_wr does not pull the volatile's clock into t2
	d2.Write(2, 5, 3, 0)
	if col2.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1 (volatile write is release-only)", col2.DynamicCount())
	}
}

// ThreadExit keeps dead threads' clocks frozen across sampling starts.
func TestThreadExitFreezesClock(t *testing.T) {
	d := New(nil)
	tm := d.thread(3)
	before := tm.clock.Get(3)
	d.ThreadExit(3)
	d.SampleBegin()
	if d.thread(3).clock.Get(3) != before {
		t.Error("sbegin advanced a dead thread's clock")
	}
	if d.thread(0) == nil {
		t.Fatal("live thread missing")
	}
}

// Dead-thread skipping must not change race reports: a race whose first
// access belongs to a thread that later dies is still reported.
func TestDeadThreadRaceStillReported(t *testing.T) {
	col := detector.NewCollector()
	d := New(col.Report)
	d.SampleBegin()
	d.Write(1, 5, 10, 0)
	d.ThreadExit(1)
	d.SampleEnd()
	d.SampleBegin() // t1 skipped here
	d.SampleEnd()
	d.Write(2, 5, 20, 0)
	if col.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1", col.DynamicCount())
	}
	if r := col.Dynamic[0]; r.FirstThread != 1 || r.FirstSite != 10 {
		t.Errorf("unexpected attribution %v", r)
	}
}
