package core

import (
	"fmt"
	"testing"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// reachableSlabs counts the arena slabs the detector can still reach: the
// distinct managed clocks referenced by threads, locks, and volatiles,
// plus one record per tracked variable (all records come from the pool
// when the arena is on). It is the ground truth Outstanding must match.
func (d *Detector) reachableSlabs() int {
	seen := make(map[*vclock.VC]bool)
	n := 0
	count := func(c *vclock.VC) {
		if c == nil || !c.Managed() || seen[c] {
			return
		}
		seen[c] = true
		n++
	}
	for _, tm := range d.threads {
		if tm != nil {
			count(tm.clock)
			count(tm.ver)
		}
	}
	for _, s := range d.locks {
		count(s.clock)
	}
	for _, s := range d.vols {
		count(s.clock)
	}
	return n + d.VarsTracked()
}

// checkRefcounts verifies that every managed clock's holder count equals
// the number of detector references to it — the refcount protocol's
// no-leak/no-early-recycle invariant in one pass.
func (d *Detector) checkRefcounts(t *testing.T) {
	t.Helper()
	refs := make(map[*vclock.VC]int)
	note := func(c *vclock.VC) {
		if c != nil && c.Managed() {
			refs[c]++
		}
	}
	for _, tm := range d.threads {
		if tm != nil {
			note(tm.clock)
			note(tm.ver)
		}
	}
	for _, s := range d.locks {
		note(s.clock)
	}
	for _, s := range d.vols {
		note(s.clock)
	}
	for c, want := range refs {
		if got := c.Holders(); got != want {
			t.Fatalf("clock %p: holders = %d, but %d detector references reach it", c, got, want)
		}
	}
}

func genTrace(seed int64, steps int) event.Trace {
	return event.Generate(event.GenConfig{
		Threads: 6, Vars: 24, Locks: 4, Volatiles: 2,
		Steps: steps, PGuarded: 0.4, PWrite: 0.45,
		PSample: 0.08, Seed: seed,
	})
}

// raceKey is a local multiset key (Var, Kind, sites); internal/dtest has a
// richer version, but importing it here would be an import cycle risk and
// the comparison needs nothing more.
type raceKey struct {
	v          event.Var
	kind       detector.RaceKind
	fs, ss     event.Site
	ft, second vclock.Thread
}

func raceMultiset(races []detector.Race) map[raceKey]int {
	m := make(map[raceKey]int)
	for _, r := range races {
		m[raceKey{r.Var, r.Kind, r.FirstSite, r.SecondSite, r.FirstThread, r.SecondThread}]++
	}
	return m
}

// TestArenaDifferentialCore proves the arena is allocation-only: on a
// spread of generated traces, the arena-backed detector reports the exact
// race multiset of the heap-backed one, with identical metadata accounting.
func TestArenaDifferentialCore(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		tr := genTrace(seed, 4000)

		heapC := detector.NewCollector()
		heap := NewWithOptions(heapC.Report, Options{})
		detector.Replay(heap, tr)

		arC := detector.NewCollector()
		ar := NewWithOptions(arC.Report, Options{Arena: true})
		detector.Replay(ar, tr)

		hm, am := raceMultiset(heapC.Dynamic), raceMultiset(arC.Dynamic)
		if len(hm) != len(am) || fmt.Sprint(hm) != fmt.Sprint(am) {
			t.Fatalf("seed %d: race multisets differ: heap=%v arena=%v", seed, hm, am)
		}
		for k, n := range hm {
			if am[k] != n {
				t.Fatalf("seed %d: race %+v: heap count %d, arena count %d", seed, k, n, am[k])
			}
		}
		if hw, aw := heap.MetadataWords(), ar.MetadataWords(); hw != aw {
			t.Fatalf("seed %d: MetadataWords differ: heap=%d arena=%d", seed, hw, aw)
		}
		if hv, av := heap.VarsTracked(), ar.VarsTracked(); hv != av {
			t.Fatalf("seed %d: VarsTracked differ: heap=%d arena=%d", seed, hv, av)
		}
	}
}

// TestArenaDifferentialAblations repeats the differential with each
// ablation knob, so the arena's retain/release sites are exercised on the
// deep-copy and no-discard paths too.
func TestArenaDifferentialAblations(t *testing.T) {
	ablations := []Options{
		{DisableSharing: true},
		{DisableVersions: true},
		{DisableDiscard: true},
		{Shards: 1},
	}
	for _, base := range ablations {
		for seed := int64(1); seed <= 8; seed++ {
			tr := genTrace(seed, 2500)
			heapC := detector.NewCollector()
			detector.Replay(NewWithOptions(heapC.Report, base), tr)

			withArena := base
			withArena.Arena = true
			arC := detector.NewCollector()
			detector.Replay(NewWithOptions(arC.Report, withArena), tr)

			hm, am := raceMultiset(heapC.Dynamic), raceMultiset(arC.Dynamic)
			for k, n := range hm {
				if am[k] != n {
					t.Fatalf("opts %+v seed %d: race %+v: heap %d, arena %d", base, seed, k, n, am[k])
				}
			}
			if len(am) != len(hm) {
				t.Fatalf("opts %+v seed %d: arena reported extra races", base, seed)
			}
		}
	}
}

// TestArenaInvariantLedger replays fuzzed traces with the debug ledger on
// and checks, at sampling boundaries and at the end, that the arena's
// outstanding-slab count equals the detector's reachable metadata: a leak
// (released object still counted) or double free (ledger panic) fails.
func TestArenaInvariantLedger(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		d := NewWithOptions(nil, Options{Arena: true, ArenaDebug: true, Shards: 8})
		tr := genTrace(seed*31, 5000)
		for i, e := range tr {
			detector.Apply(d, e)
			if i%977 == 0 || e.Kind == event.SampleEnd {
				out, ok := d.arena.Outstanding()
				if !ok {
					t.Fatal("debug ledger not enabled")
				}
				if want := d.reachableSlabs(); out != want {
					t.Fatalf("seed %d event %d (%v): outstanding=%d reachable=%d (leak or early recycle)",
						seed, i, e.Kind, out, want)
				}
			}
		}
		d.checkRefcounts(t)
		out, _ := d.arena.Outstanding()
		if want := d.reachableSlabs(); out != want {
			t.Fatalf("seed %d final: outstanding=%d reachable=%d", seed, out, want)
		}
	}
}

// TestArenaThreadReuse drives the identifier-reuse path (fork/join heavy
// trace) under the ledger, since ReusableThread mutates possibly-shared
// clocks through the copy-on-write path.
func TestArenaThreadReuse(t *testing.T) {
	d := NewWithOptions(nil, Options{Arena: true, ArenaDebug: true})
	for round := 0; round < 50; round++ {
		u := vclock.Thread(1)
		d.Fork(0, u)
		d.Write(u, event.Var(round%7), 1, 0)
		d.Join(0, u)
		d.ThreadExit(u)
		if round%3 == 0 {
			d.SampleBegin()
			d.Read(0, event.Var(round%5), 2, 0)
			d.SampleEnd()
		}
		if got, ok := d.ReusableThread(); ok && got != u {
			t.Fatalf("round %d: reused unexpected slot %d", round, got)
		}
	}
	d.checkRefcounts(t)
	out, _ := d.arena.Outstanding()
	if want := d.reachableSlabs(); out != want {
		t.Fatalf("outstanding=%d reachable=%d after reuse churn", out, want)
	}
}

// TestArenaRecycleReuse checks that slab recycling actually happens under
// metadata churn (the point of the subsystem) — a wiring regression that
// silently leaked or never recycled would pass the differential but fail
// here.
func TestArenaRecycleReuse(t *testing.T) {
	d := NewWithOptions(nil, Options{Arena: true, Shards: 4})
	// Repeated sample/discard cycles over the same variables: records and
	// clock clones churn every period.
	for cycle := 0; cycle < 40; cycle++ {
		d.SampleBegin()
		for v := event.Var(0); v < 16; v++ {
			d.Write(1, v, 1, 0)
			d.Read(2, v, 2, 0)
		}
		d.Acquire(1, 1)
		d.Release(1, 1)
		d.SampleEnd()
		for v := event.Var(0); v < 16; v++ {
			d.Write(1, v, 3, 0) // non-sampled write discards the record
		}
		d.Acquire(2, 1)
		d.Release(2, 1)
	}
	st, ok := d.ArenaStats()
	if !ok {
		t.Fatal("ArenaStats reported no arena")
	}
	if st.Recycles == 0 {
		t.Fatalf("no slab was ever recycled under churn: %+v", st)
	}
	if st.Recycles < st.Misses {
		t.Fatalf("recycle rate too low under steady-state churn: %+v", st)
	}
}

// TestUnshareReclaimsSnapshots pins the holder-count reclamation of shared
// snapshots (vclock.Unshare): on the arena mount, a shared clock whose
// aliases have all been released is mutated in place, so a strict subset
// of the copy-on-write clones the heap mount must make (sticky shared
// mark, untracked holders) actually happen. The differential suites above
// pin that the reports stay identical; this pins that the optimization
// fires at all.
func TestUnshareReclaimsSnapshots(t *testing.T) {
	for _, clock := range []string{"", "tree"} {
		var heapClones, arenaClones uint64
		for seed := int64(1); seed <= 10; seed++ {
			tr := genTrace(seed, 4000)
			heap := NewWithOptions(nil, Options{Clock: clock})
			detector.Replay(heap, tr)
			ar := NewWithOptions(nil, Options{Arena: true, Clock: clock})
			detector.Replay(ar, tr)
			hs, as := heap.Stats(), ar.Stats()
			heapClones += hs.Clones[0] + hs.Clones[1]
			arenaClones += as.Clones[0] + as.Clones[1]
		}
		if arenaClones >= heapClones {
			t.Errorf("clock %q: arena clones %d >= heap clones %d — reclamation never fired",
				clock, arenaClones, heapClones)
		}
		t.Logf("clock %q: heap clones %d, arena clones %d", clock, heapClones, arenaClones)
	}
}
