// Package core implements PACER, the paper's primary contribution: a
// sampling race detector built on FASTTRACK that guarantees a detection
// rate for every race equal to the global sampling rate, with time and
// space overheads proportional to that rate (Section 3).
//
// During sampling periods PACER performs exactly the FASTTRACK analysis.
// During non-sampling periods it:
//
//   - stops incrementing thread clocks ("timeless" periods, Section 3.2),
//   - detects redundant synchronization via vector-clock versions and
//     version epochs, turning almost all O(n) joins into O(1) fast joins
//     (Algorithm 11) and all O(n) copies into O(1) shallow copies with
//     copy-on-write sharing (Algorithms 9-10),
//   - records no read/write metadata and discards metadata that can no
//     longer be the first access of a sampled shortest race (Algorithms
//     12-13), so variables touched only outside sampling periods cost
//     nothing.
//
// The state-transition rules follow the formal semantics of Appendix A
// (Tables 4-7), which take precedence over the prose algorithms where the
// two differ.
package core

import (
	"pacer/internal/arena"
	"pacer/internal/detector"
	"pacer/internal/detector/shardbase"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Options tune PACER, mainly for the ablation benchmarks; the zero value is
// the full algorithm as published.
type Options struct {
	// DisableVersions turns off the version-epoch fast join (Algorithm 11),
	// forcing an O(n) comparison or join at every synchronization
	// communication. Race reports are unaffected (Lemma 7 guarantees the
	// fast join skips only no-op joins).
	DisableVersions bool
	// DisableSharing turns off copy-on-write vector clock sharing,
	// forcing deep copies at every release (Algorithm 9).
	DisableSharing bool
	// DisableDiscard keeps variable metadata alive in non-sampling periods
	// instead of discarding it. Reports remain true races, but the
	// detector loses its space proportionality and may report additional
	// non-shortest races.
	DisableDiscard bool
	// Shards is the number of independent variable-metadata shards
	// (rounded up to a power of two, default 64). Accesses to variables in
	// distinct shards may run concurrently under the locking contract
	// described on Detector.
	Shards int
	// Arena backs vector clocks and variable records with a slab arena
	// (internal/arena) striped like the variable shards: metadata the
	// algorithm discards at non-sampled writes and send is recycled through
	// per-shard free lists instead of churning the garbage collector. Race
	// reports are identical either way (the differential suite enforces
	// this); only allocation behavior changes.
	Arena bool
	// ArenaDebug additionally maintains the arena's outstanding-slab
	// ledger, so invariant tests can prove every acquired slab is released
	// exactly once. Implies Arena semantics; test-only (the ledger
	// serializes every acquire and release).
	ArenaDebug bool
	// Clock selects the timestamp representation for thread and
	// synchronization clocks: "" or "flat" is the plain vector clock;
	// "tree" mounts the last-update tree index (vclock.Tree), making
	// sampling-period joins and deep copies cost proportional to the
	// entries that changed instead of the thread count. Version vectors
	// stay flat either way (they take arbitrary component assignments the
	// index cannot track). Race reports are identical either way (the
	// conformance matrix enforces this).
	Clock string
}

// varShard is one slice of the variable-metadata table together with the
// access-path counters accumulated for it. The trailing pad keeps shards
// on distinct cache lines so parallel accesses do not false-share.
type varShard struct {
	vars  map[event.Var]*varMeta
	stats detector.Counters
	_     [64]byte
}

// threadMeta is the per-thread analysis state: the thread's vector clock
// (possibly shared with synchronization objects after a shallow copy) and
// its version vector (Appendix A.2).
type threadMeta struct {
	clock *vclock.VC
	ver   *vclock.VC
}

// syncMeta is the metadata for a lock or volatile: its clock (possibly
// shared with a thread) and its version epoch. alloc is the object's home
// slab allocator (nil on the heap path): a deep copy that must replace a
// shared clock draws the replacement from it.
type syncMeta struct {
	clock  *vclock.VC
	vepoch vclock.VersionEpoch
	alloc  vclock.Allocator
}

// varMeta is the read/write metadata for one data variable. An entry
// exists in the variable table only while it carries information: the
// table-miss is the implementation's "o.metadata == null" fast path
// (Section 4).
type varMeta struct {
	w     vclock.Epoch
	wSite event.Site
	r     vclock.ReadMap
}

// Detector is the PACER analysis. It is not safe for unrestricted
// concurrent use, but it admits a sharded reader-writer discipline that
// the public pacer package exploits:
//
//   - Synchronization operations (Acquire, Release, Fork, Join, VolRead,
//     VolWrite), sampling transitions (SampleBegin, SampleEnd), thread
//     lifecycle calls, Stats, VarsTracked, and MetadataWords require
//     exclusive access (no other call in flight).
//   - Read and Write may run concurrently with each other provided (a)
//     calls whose variables share a shard (ShardOf) are serialized by the
//     caller, (b) no exclusive-class call is in flight, and (c) every
//     thread identifier was announced via EnsureThreadSlots (or a prior
//     exclusive call) before its first shared-mode access, and a single
//     thread's operations are never issued concurrently with each other.
//
// Under that contract accesses only read thread clocks (stable between
// synchronization operations) and mutate per-shard state, so any
// interleaving is equivalent to some serialized execution of the same
// operations.
//
// StateWord and MetaPossible may be called lock-free at any time; they
// are the probes behind the public front-end's non-sampling fast path.
type Detector struct {
	sampling bool
	// state publishes the sampling flag (bit 0) and a transition count
	// (upper bits) so a lock-free reader can both test sampling and detect
	// that no transition intervened between two loads.
	state   shardbase.State
	threads []*threadMeta
	dead    map[vclock.Thread]bool
	joined  map[vclock.Thread]bool
	locks   map[event.Lock]*syncMeta
	vols    map[event.Volatile]*syncMeta
	geo     shardbase.Geometry
	shards  []varShard
	// presence counts tracked variables per hash bucket, maintained
	// increment-before-insert / delete-before-decrement so a zero read
	// proves absence at the instant of the load.
	presence *shardbase.Presence
	report   detector.Reporter
	stats    detector.Counters // sync-path counters; access counters live per shard
	snap     detector.Counters // Stats() aggregation scratch
	opts     Options
	// arena and varPool are the slab allocator and per-variable record pool
	// behind Options.Arena; both nil on the default heap path.
	arena   *arena.Arena
	varPool *arena.Records[varMeta]
	// calloc, when set (Options.Clock "tree"), supplies the tree-capable
	// allocators thread and synchronization clocks draw from; version
	// vectors keep drawing from the plain stripe allocators.
	calloc func(int) vclock.Allocator
}

var (
	_ detector.Detector        = (*Detector)(nil)
	_ detector.Sampler         = (*Detector)(nil)
	_ detector.Counted         = (*Detector)(nil)
	_ detector.MemoryAccounted = (*Detector)(nil)
	_ detector.Sharded         = (*Detector)(nil)
	_ detector.ThreadReuser    = (*Detector)(nil)
	_ detector.VarAccounted    = (*Detector)(nil)
	_ detector.ArenaAccounted  = (*Detector)(nil)
)

// New returns a PACER detector with default options, initially in a
// non-sampling period.
func New(report detector.Reporter) *Detector {
	return NewWithOptions(report, Options{})
}

// NewWithOptions returns a PACER detector with explicit options.
func NewWithOptions(report detector.Reporter, opts Options) *Detector {
	geo := shardbase.NewGeometry(opts.Shards)
	d := &Detector{
		dead:     make(map[vclock.Thread]bool),
		locks:    make(map[event.Lock]*syncMeta),
		vols:     make(map[event.Volatile]*syncMeta),
		geo:      geo,
		shards:   make([]varShard, geo.Shards()),
		presence: shardbase.NewPresence(),
		report:   report,
		opts:     opts,
	}
	for i := range d.shards {
		d.shards[i].vars = make(map[event.Var]*varMeta)
	}
	if opts.Arena || opts.ArenaDebug {
		d.arena = arena.New(arena.Options{
			Shards: len(d.shards),
			Debug:  opts.ArenaDebug,
		})
		d.varPool = arena.NewRecords[varMeta](d.arena, func(m *varMeta) {
			m.w = 0
			m.wSite = 0
			m.r.Clear() // keeps the read map's spilled-map spare
		})
	}
	if opts.Clock == "tree" {
		// Tree clocks wrap whatever the options selected underneath: on
		// the arena path the index's aux vectors draw from the same slabs
		// as the entry arrays, so nothing falls back to the heap.
		if d.arena != nil {
			d.calloc = vclock.TreeStriped(d.arena.Shard)
		} else {
			d.calloc = vclock.TreeHeap(geo.Shards())
		}
	}
	return d
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "pacer" }

// Stats returns the detector's operation counters, aggregated across the
// variable shards. Exclusive access required; the returned pointer is to a
// snapshot that the next Stats call overwrites.
func (d *Detector) Stats() *detector.Counters {
	d.snap = d.stats
	for i := range d.shards {
		d.snap.Add(&d.shards[i].stats)
	}
	return &d.snap
}

// Shards returns the number of variable-metadata shards; the caller's
// striped locks must cover indices [0, Shards()).
func (d *Detector) Shards() int { return d.geo.Shards() }

// ShardOf maps a variable to its metadata shard (Fibonacci hashing on the
// identifier's high output bits).
func (d *Detector) ShardOf(x event.Var) int { return d.geo.ShardOf(x) }

// StateWord returns the atomically published sampling state: bit 0 is the
// sampling flag and the upper bits count transitions, so two equal loads
// bracketing another atomic load prove the sampling flag held throughout.
func (d *Detector) StateWord() uint64 { return d.state.Word() }

// MetaPossible reports whether variable x might currently hold metadata.
// It is safe to call without any lock: a false result proves x held no
// metadata at the instant of the internal load; a true result may be a
// hash collision and only obliges the caller to take the slow path.
func (d *Detector) MetaPossible(x event.Var) bool {
	return d.presence.Possible(x)
}

// EnsureThreadSlots pre-grows the thread table to hold identifiers below
// n, so that shared-mode Read/Write calls never need to grow it. Requires
// exclusive access.
func (d *Detector) EnsureThreadSlots(n int) {
	for len(d.threads) < n {
		d.threads = append(d.threads, nil)
	}
}

// forEachVar visits every tracked variable's metadata. Exclusive access
// required.
func (d *Detector) forEachVar(f func(event.Var, *varMeta) bool) {
	for i := range d.shards {
		for x, m := range d.shards[i].vars {
			if !f(x, m) {
				return
			}
		}
	}
}

// Sampling reports whether the detector is inside a sampling period.
func (d *Detector) Sampling() bool { return d.sampling }

func (d *Detector) period() detector.Period { return detector.PeriodOf(d.sampling) }

// SampleBegin enters a sampling period (Table 5 Rule 1): every thread's
// vector clock and version advance, so that accesses in this period are
// distinguishable from the frozen non-sampling past.
func (d *Detector) SampleBegin() {
	if d.sampling {
		return
	}
	d.sampling = true
	d.publishState()
	for t, tm := range d.threads {
		if tm == nil || d.dead[vclock.Thread(t)] {
			// A terminated thread performs no further accesses, so its
			// clock need not advance (a real VM has no thread to touch).
			continue
		}
		d.ownThreadClock(vclock.Thread(t), tm)
		tm.clock.Inc(vclock.Thread(t))
		tm.ver.Inc(vclock.Thread(t))
		d.stats.Increments[detector.Sampling]++
	}
}

// ThreadExit marks thread t terminated (detector.ThreadLifecycle).
func (d *Detector) ThreadExit(t vclock.Thread) { d.dead[t] = true }

// SampleEnd leaves the sampling period (Table 5 Rule 2). Logical time
// freezes until the next SampleBegin. This is also the arena's bulk
// reclamation point: send is where PACER's metadata population starts
// shrinking (non-sampled accesses only discard), so free-list slack built
// up during the period is handed back to the GC here.
func (d *Detector) SampleEnd() {
	if !d.sampling {
		return
	}
	d.sampling = false
	d.publishState()
	if d.arena != nil {
		d.arena.Trim()
		d.varPool.Trim()
	}
}

// publishState mirrors d.sampling into the atomic state word, bumping the
// transition count.
func (d *Detector) publishState() { d.state.Publish(d.sampling) }

// vcAlloc returns stripe i's slab allocator, or nil on the heap path. The
// stripe only determines which free list serves the object; the arena mods
// the index, so any stable integer identity works.
func (d *Detector) vcAlloc(i int) vclock.Allocator {
	if d.arena == nil {
		return nil
	}
	return d.arena.Shard(i)
}

// clockAlloc returns the allocator for stripe i's thread and
// synchronization clocks: the tree-capable wrapper when tree clocks are
// mounted, the plain stripe allocator (or nil for heap) otherwise.
func (d *Detector) clockAlloc(i int) vclock.Allocator {
	if d.calloc != nil {
		return d.calloc(i)
	}
	return d.vcAlloc(i)
}

// allocVC draws a fresh clock from a, falling back to the heap when the
// arena is disabled.
func allocVC(a vclock.Allocator, n int) *vclock.VC {
	if a != nil {
		return a.NewVC(n)
	}
	return vclock.New(n)
}

// thread returns thread t's metadata, creating it in the initial state of
// Equation 7 (clock and version both incremented once) on first use.
func (d *Detector) thread(t vclock.Thread) *threadMeta {
	for int(t) >= len(d.threads) {
		d.threads = append(d.threads, nil)
	}
	if d.threads[t] == nil {
		clock := allocVC(d.clockAlloc(int(t)), int(t)+1)
		// Declare ownership before the first tick so a tree-capable
		// allocator can root the last-update index at t; a no-op on plain
		// allocators.
		clock.SetOwner(t)
		clock.Set(t, 1)
		ver := allocVC(d.vcAlloc(int(t)), int(t)+1)
		ver.Set(t, 1)
		d.threads[t] = &threadMeta{clock: clock, ver: ver}
	}
	return d.threads[t]
}

func (d *Detector) lock(m event.Lock) *syncMeta {
	s, ok := d.locks[m]
	if !ok {
		a := d.clockAlloc(int(m))
		s = &syncMeta{clock: allocVC(a, 0), vepoch: vclock.VEBottom, alloc: a}
		d.locks[m] = s
	}
	return s
}

func (d *Detector) vol(vx event.Volatile) *syncMeta {
	s, ok := d.vols[vx]
	if !ok {
		a := d.clockAlloc(int(vx))
		s = &syncMeta{clock: allocVC(a, 0), vepoch: vclock.VEBottom, alloc: a}
		d.vols[vx] = s
	}
	return s
}

// vepochOf returns Ver(t) = ver_t(t)@t, thread t's current version epoch.
func (d *Detector) vepochOf(t vclock.Thread, tm *threadMeta) vclock.VersionEpoch {
	return vclock.MakeVersionEpoch(t, tm.ver.Get(t))
}

// ownThreadClock clones tm's clock if it is shared, so it can be mutated
// (the copy-on-write step of Algorithms 10 and 11). The thread's hold on
// the shared clock moves to the clone; synchronization objects sharing the
// old clock keep it alive until their own next release. Clones are born
// disowned (vclock.Clone), so the thread reclaims its label stream — it is
// the unique continuation of the frozen snapshot, which is exactly the
// case SetOwner's re-own is sound for; sync-side clones of the same
// snapshot stay ownerless.
//
// When the holder count proves every past alias has since been released
// (vclock.Unshare), the mark is cleared instead: the clock is the thread's
// exclusive clock again — owner, index, and label stream intact — and the
// full-width clone would copy a snapshot nothing else reads.
func (d *Detector) ownThreadClock(t vclock.Thread, tm *threadMeta) {
	if tm.clock.Unshare() {
		return
	}
	old := tm.clock
	tm.clock = old.Clone()
	tm.clock.SetOwner(t)
	old.Release()
	d.stats.Clones[d.period()]++
}

// inc is PACER's redefined vector clock increment (Algorithm 10): a no-op
// outside sampling periods; inside them it advances both the clock and the
// thread's version.
func (d *Detector) inc(t vclock.Thread) {
	if !d.sampling {
		return
	}
	tm := d.thread(t)
	d.ownThreadClock(t, tm)
	tm.clock.Inc(t)
	tm.ver.Inc(t)
	d.stats.Increments[detector.Sampling]++
}

// copyToSync is PACER's redefined vector clock copy C_o ← C_t (Algorithm
// 9): a shallow, shared copy outside sampling periods and a deep copy
// inside them. Either way o's version epoch becomes vepoch(t).
func (d *Detector) copyToSync(s *syncMeta, t vclock.Thread) {
	tm := d.thread(t)
	p := d.period()
	if !d.sampling && !d.opts.DisableSharing {
		// Retain before releasing the displaced clock: when s already holds
		// tm's clock, the count must never transiently reach zero.
		tm.clock.SetShared()
		tm.clock.Retain()
		old := s.clock
		s.clock = tm.clock
		old.Release()
		d.stats.ShallowCopies[p]++
	} else {
		// A shared sync clock whose other holders are all gone is reclaimed
		// in place (vclock.Unshare): CopyFrom then rides the monotone join
		// fast path instead of replicating the thread clock full-width into
		// a fresh allocation. The reclaimed snapshot must stop minting its
		// original thread's labels first (Disown — no-op when ownerless).
		if s.clock.Unshare() {
			s.clock.Disown()
		} else {
			old := s.clock
			s.clock = allocVC(s.alloc, 0)
			old.Release()
		}
		s.clock.CopyFrom(tm.clock)
		d.stats.DeepCopies[p]++
		d.stats.CopyWork += uint64(tm.clock.Len())
	}
	s.vepoch = d.vepochOf(t, tm)
}

// joinIntoThread is PACER's redefined join C_t ← C_t ⊔ C_o (Algorithm 11;
// Table 7 Rules 4-6), where o is a lock, volatile, or another thread,
// identified by its clock and current version epoch.
func (d *Detector) joinIntoThread(t vclock.Thread, srcClock *vclock.VC, srcVE vclock.VersionEpoch) {
	tm := d.thread(t)
	p := d.period()
	// Rule 4 (same version epoch): Ver(o) ≼ ver_t means t has already
	// received this snapshot; by Lemma 7 the join would be a no-op.
	if !d.opts.DisableVersions && srcVE.Leq(tm.ver) {
		d.stats.FastJoins[p]++
		return
	}
	d.stats.SlowJoins[p]++
	d.stats.JoinWork += uint64(srcClock.Len())
	if srcClock.Leq(tm.clock) {
		// Rule 5 (happens-before): the clock is unchanged; record the
		// received version so future joins from this snapshot are fast.
		d.recordVersion(tm, srcVE)
		return
	}
	// Rule 6 (concurrent): a real join; the clock changes, so t's version
	// advances and the source version is recorded.
	d.ownThreadClock(t, tm)
	tm.clock.JoinFrom(srcClock)
	tm.ver.Inc(t)
	d.recordVersion(tm, srcVE)
}

// recordVersion notes that tm's thread has received version srcVE. The
// update is monotonic: when the version fast path is enabled, Rule 4
// guarantees the stored entry is smaller, but with versions disabled a
// stale epoch could otherwise roll the entry backwards.
func (d *Detector) recordVersion(tm *threadMeta, srcVE vclock.VersionEpoch) {
	if srcVE.IsTop() {
		return
	}
	if u, v := srcVE.Thread(), srcVE.Version(); v > tm.ver.Get(u) {
		tm.ver.Set(u, v)
	}
}

// joinIntoVolatile is PACER's special join C_vx ← C_vx ⊔ C_t at a volatile
// write (Algorithm 16; Table 7 Rules 7-9). When C_vx ⊑ C_t — established
// in O(1) via versions when possible — the join degenerates to a copy,
// which is shallow outside sampling periods. Otherwise the volatile's
// clock becomes a join of several threads' clocks and its version epoch
// becomes ⊤ve.
func (d *Detector) joinIntoVolatile(s *syncMeta, t vclock.Thread) {
	tm := d.thread(t)
	p := d.period()
	subsumes := false
	if !d.opts.DisableVersions && s.vepoch.Leq(tm.ver) {
		subsumes = true
		d.stats.FastJoins[p]++
	} else if s.clock.Leq(tm.clock) {
		subsumes = true
		d.stats.SlowJoins[p]++
		d.stats.JoinWork += uint64(s.clock.Len())
	}
	if subsumes {
		d.copyToSync(s, t)
		return
	}
	d.stats.SlowJoins[p]++
	d.stats.JoinWork += uint64(tm.clock.Len())
	if s.clock.Unshare() {
		s.clock.Disown() // reclaimed snapshot must not mint its sharer's labels
	} else {
		old := s.clock
		s.clock = allocVC(s.alloc, 0)
		s.clock.CopyFrom(old)
		old.Release()
		d.stats.Clones[p]++
	}
	s.clock.JoinFrom(tm.clock)
	s.vepoch = vclock.VETop // no longer a snapshot of any single thread
}

// Acquire implements acq(t, m) (Table 6 Rule 1): C_t ← C_t ⊔ L_m.
func (d *Detector) Acquire(t vclock.Thread, m event.Lock) {
	d.stats.SyncOps[d.period()]++
	s := d.lock(m)
	d.joinIntoThread(t, s.clock, s.vepoch)
}

// Release implements rel(t, m) (Table 6 Rule 2): L_m ← copy(C_t); inc(t).
func (d *Detector) Release(t vclock.Thread, m event.Lock) {
	d.stats.SyncOps[d.period()]++
	d.copyToSync(d.lock(m), t)
	d.inc(t)
}

// Fork implements fork(t, u) (Table 6 Rule 3): C_u ← C_u ⊔ C_t; inc(t).
func (d *Detector) Fork(t, u vclock.Thread) {
	d.stats.SyncOps[d.period()]++
	tm := d.thread(t)
	d.joinIntoThread(u, tm.clock, d.vepochOf(t, tm))
	d.inc(t)
}

// Join implements join(t, u) (Table 6 Rule 4): C_t ← C_t ⊔ C_u; inc(u).
func (d *Detector) Join(t, u vclock.Thread) {
	d.stats.SyncOps[d.period()]++
	um := d.thread(u)
	d.joinIntoThread(t, um.clock, d.vepochOf(u, um))
	d.inc(u)
	d.markJoined(u)
}

// VolRead implements vol_rd(t, vx) (Table 6 Rule 5): C_t ← C_t ⊔ V_vx.
func (d *Detector) VolRead(t vclock.Thread, vx event.Volatile) {
	d.stats.SyncOps[d.period()]++
	s := d.vol(vx)
	d.joinIntoThread(t, s.clock, s.vepoch)
}

// VolWrite implements vol_wr(t, vx) (Table 6 Rule 6):
// V_vx ← V_vx ⊔ C_t; inc(t).
func (d *Detector) VolWrite(t vclock.Thread, vx event.Volatile) {
	d.stats.SyncOps[d.period()]++
	d.joinIntoVolatile(d.vol(vx), t)
	d.inc(t)
}

// emit reports a race, counting it against the shard the triggering
// access belongs to (races are only ever emitted from access paths). The
// reporter may therefore be invoked concurrently by accesses in distinct
// shards.
func (d *Detector) emit(sh *varShard, r detector.Race) {
	sh.stats.Races++
	if d.report != nil {
		d.report(r)
	}
}

// newVarMeta returns a fresh variable record for shard si, drawn from the
// record pool when the arena is enabled.
func (d *Detector) newVarMeta(si int) *varMeta {
	if d.varPool != nil {
		return d.varPool.Get(si)
	}
	return &varMeta{}
}

// freeVarMeta recycles a discarded variable record. The caller must have
// already removed it from the shard's table; no reference may survive.
func (d *Detector) freeVarMeta(si int, m *varMeta) {
	if d.varPool != nil {
		d.varPool.Put(si, m)
	}
}

// Read implements rd(t, x) (Algorithm 12; Table 4 Rules 1-4).
func (d *Detector) Read(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	si := d.ShardOf(x)
	sh := &d.shards[si]
	m, exists := sh.vars[x]
	if !d.sampling && !exists {
		// Inline fast path: no metadata and not sampling → no action.
		sh.stats.ReadFast[detector.NonSampling]++
		return
	}
	p := d.period()
	sh.stats.ReadSlow[p]++
	tm := d.thread(t)
	ct := tm.clock

	if exists {
		// Rule 1 (same epoch): R_x = epoch(t) → no action.
		if m.r.Size() == 1 {
			if e := m.r.Single(); e.T == t && e.C == ct.Get(t) {
				return
			}
		}
		// Race check: W_x ≼ C_t.
		if !m.w.Leq(ct) {
			d.emit(sh, detector.Race{
				Var: x, Kind: detector.WriteRead,
				FirstThread: m.w.Thread(), SecondThread: t,
				FirstSite: m.wSite, SecondSite: site,
			})
		}
	}

	if d.sampling {
		// Rules 2-4, sampling column: exactly FASTTRACK's update.
		if m == nil {
			m = d.newVarMeta(si)
			d.presence.Add(x) // before insert: zero presence proves absence
			sh.vars[x] = m
		}
		if m.r.Size() <= 1 && m.r.Leq(ct) {
			m.r.SetEpoch(vclock.ReadEntry{T: t, C: ct.Get(t), Site: uint32(site)})
		} else {
			m.r.Set(t, ct.Get(t), uint32(site))
		}
		return
	}
	// Non-sampling column: discard what FASTTRACK would have replaced.
	if d.opts.DisableDiscard {
		return
	}
	switch {
	case m.r.Size() == 1 && m.r.Leq(ct):
		// Rule 2: the prior read happens before this one; any future
		// access racing with it also races with a later access, so it
		// cannot be the first access of a sampled shortest race.
		m.r.Clear()
	case m.r.Size() > 1:
		// Rule 3: discard t's own entry only.
		m.r.Remove(t)
	}
	d.maybeDiscard(sh, si, x, m)
}

// Write implements wr(t, x) (Algorithm 13; Table 4 Rules 5-7).
func (d *Detector) Write(t vclock.Thread, x event.Var, site event.Site, _ uint32) {
	si := d.ShardOf(x)
	sh := &d.shards[si]
	m, exists := sh.vars[x]
	if !d.sampling && !exists {
		sh.stats.WriteFast[detector.NonSampling]++
		return
	}
	p := d.period()
	sh.stats.WriteSlow[p]++
	tm := d.thread(t)
	ct := tm.clock

	if exists {
		// Rule 5 (same epoch): W_x = epoch(t) → no action.
		if !m.w.IsZero() && m.w.Thread() == t && m.w.Clock() == ct.Get(t) {
			return
		}
		// Race checks: W_x ≼ C_t and R_x ⊑ C_t.
		if !m.w.Leq(ct) {
			d.emit(sh, detector.Race{
				Var: x, Kind: detector.WriteWrite,
				FirstThread: m.w.Thread(), SecondThread: t,
				FirstSite: m.wSite, SecondSite: site,
			})
		}
		m.r.Racing(ct, func(e vclock.ReadEntry) {
			d.emit(sh, detector.Race{
				Var: x, Kind: detector.ReadWrite,
				FirstThread: e.T, SecondThread: t,
				FirstSite: event.Site(e.Site), SecondSite: site,
			})
		})
	}

	if d.sampling {
		// Rules 6-7, sampling column: W_x ← epoch(t), R_x cleared.
		if m == nil {
			m = d.newVarMeta(si)
			d.presence.Add(x) // before insert: zero presence proves absence
			sh.vars[x] = m
		}
		m.r.Clear()
		m.w = vclock.MakeEpoch(t, ct.Get(t))
		m.wSite = site
		return
	}
	// Non-sampling column: this write supersedes all recorded accesses as
	// the potential last racer, and it is itself unsampled — discard.
	if d.opts.DisableDiscard {
		return
	}
	if exists {
		delete(sh.vars, x)
		d.presence.Remove(x) // after delete: presence covers the metadata's lifetime
		d.freeVarMeta(si, m)
	}
}

// maybeDiscard removes x's table entry once it carries no information,
// reclaiming space (Section 4's null metadata header word).
func (d *Detector) maybeDiscard(sh *varShard, si int, x event.Var, m *varMeta) {
	if m.w.IsZero() && m.r.IsEmpty() {
		delete(sh.vars, x)
		d.presence.Remove(x)
		d.freeVarMeta(si, m)
	}
}

// VarsTracked returns the number of variables currently holding metadata
// (used by tests and the space accountant).
func (d *Detector) VarsTracked() int {
	n := 0
	for i := range d.shards {
		n += len(d.shards[i].vars)
	}
	return n
}

// MetadataWords implements detector.MemoryAccounted. Shared vector clocks
// are counted once, reflecting the space saving of shallow copies.
func (d *Detector) MetadataWords() int {
	seen := make(map[*vclock.VC]bool)
	w := 0
	count := func(c *vclock.VC) {
		if c == nil || seen[c] {
			return
		}
		seen[c] = true
		w += c.MemoryWords()
	}
	for _, tm := range d.threads {
		if tm == nil {
			continue
		}
		count(tm.clock)
		count(tm.ver)
	}
	for _, s := range d.locks {
		count(s.clock)
		w += 1 // version epoch word
	}
	for _, s := range d.vols {
		count(s.clock)
		w += 1
	}
	d.forEachVar(func(_ event.Var, m *varMeta) bool {
		w += 2 + m.r.MemoryWords()
		return true
	})
	return w
}

// ArenaStats implements detector.ArenaAccounted. The bool result is false
// on the default heap path.
func (d *Detector) ArenaStats() (detector.ArenaStats, bool) {
	if d.arena == nil {
		return detector.ArenaStats{}, false
	}
	st := d.arena.Stats()
	return detector.ArenaStats{
		SlabsLive: st.Live,
		SlabsFree: st.Free,
		Recycles:  st.Recycles,
		Misses:    st.Misses,
		Trimmed:   st.Trimmed,
	}, true
}
