package core_test

import (
	"testing"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/vclock"
)

// The exhaustive model checker enumerates every well-formed trace over a
// small alphabet — two threads, one data variable, one lock, one volatile,
// plus sampling toggles — up to a bounded length, and checks the paper's
// soundness properties on each one. Unlike the randomized tests, this
// covers every interleaving of the bounded space, including the adversarial
// corner cases around period boundaries that random generation rarely hits.

// mcSymbol is one action of the model-checking alphabet.
type mcSymbol struct {
	kind   event.Kind
	thread vclock.Thread
}

var mcAlphabet = func() []mcSymbol {
	var out []mcSymbol
	for _, t := range []vclock.Thread{0, 1} {
		for _, k := range []event.Kind{
			event.Read, event.Write, event.Acquire, event.Release,
			event.VolRead, event.VolWrite,
		} {
			out = append(out, mcSymbol{kind: k, thread: t})
		}
	}
	out = append(out, mcSymbol{kind: event.SampleBegin}, mcSymbol{kind: event.SampleEnd})
	return out
}()

// mcState tracks well-formedness during enumeration.
type mcState struct {
	lockOwner vclock.Thread // NoThread when free
	sampling  bool
}

func (s mcState) apply(sym mcSymbol) (mcState, bool) {
	switch sym.kind {
	case event.Acquire:
		if s.lockOwner != vclock.NoThread {
			return s, false
		}
		s.lockOwner = sym.thread
	case event.Release:
		if s.lockOwner != sym.thread {
			return s, false
		}
		s.lockOwner = vclock.NoThread
	case event.SampleBegin:
		if s.sampling {
			return s, false
		}
		s.sampling = true
	case event.SampleEnd:
		if !s.sampling {
			return s, false
		}
		s.sampling = false
	}
	return s, true
}

func (s mcSymbol) toEvent() event.Event {
	e := event.Event{Kind: s.kind, Thread: s.thread}
	switch s.kind {
	case event.Read, event.Write:
		e.Target = 0
	case event.Acquire, event.Release:
		e.Target = 0
	case event.VolRead, event.VolWrite:
		e.Target = 0
	}
	return e
}

// TestExhaustiveSoundnessSmallTraces enumerates all well-formed traces up
// to length 6 (hundreds of thousands of interleavings) and verifies the
// guarantee + precision properties on each.
func TestExhaustiveSoundnessSmallTraces(t *testing.T) {
	maxLen := 6
	if testing.Short() {
		maxLen = 5
	}
	mkP := func(r detector.Reporter) detector.Detector { return core.New(r) }
	mkFT := func(r detector.Reporter) detector.Detector { return fasttrack.New(r) }

	trace := make(event.Trace, 0, maxLen)
	checked := 0
	var rec func(st mcState)
	rec = func(st mcState) {
		if len(trace) > 0 {
			// Check every prefix that ends in a data access (others add
			// nothing new over their own prefix).
			if trace[len(trace)-1].Kind.IsAccess() {
				tr := dtest.UniqueSites(trace)
				if issue := dtest.SoundnessIssue(tr, mkP, mkFT); issue != "" {
					t.Fatalf("trace %v: %s", tr, issue)
				}
				checked++
			}
		}
		if len(trace) == maxLen {
			return
		}
		for _, sym := range mcAlphabet {
			next, ok := st.apply(sym)
			if !ok {
				continue
			}
			trace = append(trace, sym.toEvent())
			rec(next)
			trace = trace[:len(trace)-1]
		}
	}
	rec(mcState{lockOwner: vclock.NoThread})
	if checked < 10_000 {
		t.Fatalf("only %d traces checked; enumeration broken?", checked)
	}
	t.Logf("checked %d traces exhaustively (maxLen %d)", checked, maxLen)
}

// TestExhaustiveFullySampledEquivalence enumerates well-formed traces that
// are entirely inside one sampling period and verifies PACER ≡ FASTTRACK
// report-for-report (Theorem 1), exactly.
func TestExhaustiveFullySampledEquivalence(t *testing.T) {
	const maxLen = 5
	mkP := func(r detector.Reporter) detector.Detector { return core.New(r) }
	mkFT := func(r detector.Reporter) detector.Detector { return fasttrack.New(r) }
	alphabet := mcAlphabet[:len(mcAlphabet)-2] // no sampling toggles

	trace := event.Trace{{Kind: event.SampleBegin}}
	checked := 0
	var rec func(st mcState)
	rec = func(st mcState) {
		if trace[len(trace)-1].Kind.IsAccess() {
			tr := dtest.UniqueSites(trace)
			p := dtest.Run(tr, mkP)
			f := dtest.Run(tr, mkFT)
			kp, kf := dtest.KeySet(p.Dynamic), dtest.KeySet(f.Dynamic)
			if len(kp) != len(kf) {
				t.Fatalf("trace %v: pacer %d reports, fasttrack %d", tr, len(kp), len(kf))
			}
			for k, n := range kf {
				if kp[k] != n {
					t.Fatalf("trace %v: report %v: pacer %d, fasttrack %d", tr, k, kp[k], n)
				}
			}
			checked++
		}
		if len(trace) == maxLen+1 {
			return
		}
		for _, sym := range alphabet {
			next, ok := st.apply(sym)
			if !ok {
				continue
			}
			trace = append(trace, sym.toEvent())
			rec(next)
			trace = trace[:len(trace)-1]
		}
	}
	st, _ := mcState{lockOwner: vclock.NoThread}.apply(mcSymbol{kind: event.SampleBegin})
	rec(st)
	if checked < 5_000 {
		t.Fatalf("only %d traces checked", checked)
	}
	t.Logf("checked %d fully sampled traces exhaustively", checked)
}
