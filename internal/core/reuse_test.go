package core

import (
	"testing"

	"pacer/internal/detector"
	"pacer/internal/vclock"
)

func TestReusableThreadRequiresDeadAndJoined(t *testing.T) {
	d := New(nil)
	d.Fork(0, 1)
	if _, ok := d.ReusableThread(); ok {
		t.Fatal("live thread offered for reuse")
	}
	d.ThreadExit(1)
	if _, ok := d.ReusableThread(); ok {
		t.Fatal("unjoined thread offered for reuse")
	}
	d.Join(0, 1)
	u, ok := d.ReusableThread()
	if !ok || u != 1 {
		t.Fatalf("ReusableThread = %v, %v; want 1, true", u, ok)
	}
	// The slot is revived: not offered again until retired again.
	if _, ok := d.ReusableThread(); ok {
		t.Fatal("slot offered twice")
	}
}

func TestReusableThreadBlockedByMetadata(t *testing.T) {
	d := New(nil)
	d.SampleBegin()
	d.Fork(0, 1)
	d.Write(1, 7, 100, 0) // sampled write: metadata names thread 1
	d.SampleEnd()
	d.ThreadExit(1)
	d.Join(0, 1)
	if _, ok := d.ReusableThread(); ok {
		t.Fatal("slot with a live write epoch offered for reuse")
	}
	// An unsampled write by another thread discards x7's metadata.
	d.Write(2, 7, 200, 0)
	if d.VarsTracked() != 0 {
		t.Fatal("metadata not discarded")
	}
	if u, ok := d.ReusableThread(); !ok || u != 1 {
		t.Fatalf("slot not offered after discard: %v, %v", u, ok)
	}
}

func TestReusableThreadBlockedByReadEntryAndVepoch(t *testing.T) {
	d := New(nil)
	d.SampleBegin()
	d.Fork(0, 1)
	d.Read(1, 7, 100, 0)
	d.SampleEnd()
	d.ThreadExit(1)
	d.Join(0, 1)
	if _, ok := d.ReusableThread(); ok {
		t.Fatal("slot with a live read entry offered for reuse")
	}

	d2 := New(nil)
	d2.Fork(0, 1)
	d2.Release(1, 5) // lock 5's version epoch names thread 1
	d2.ThreadExit(1)
	d2.Join(0, 1)
	if _, ok := d2.ReusableThread(); ok {
		t.Fatal("slot named by a lock version epoch offered for reuse")
	}
	d2.Release(2, 5) // lock 5's vepoch now names thread 2
	if u, ok := d2.ReusableThread(); !ok || u != 1 {
		t.Fatalf("slot not offered after vepoch moved on: %v, %v", u, ok)
	}
}

// Races involving a reused slot are attributed correctly: the new thread's
// epochs are strictly above the old thread's final time, so a third party
// that synchronized only with the old thread still races with the new one.
func TestReuseSoundness(t *testing.T) {
	col := detector.NewCollector()
	d := New(col.Report)
	d.SampleBegin()

	// Generation 1: thread 1 works and retires; thread 2 joins it.
	d.Fork(0, 1)
	d.Write(1, 7, 100, 0)
	d.Fork(0, 2)
	// Thread 2 joins thread 1: ordered after 1's write.
	d.Join(2, 1)
	d.Read(2, 7, 110, 0) // ordered → no race
	if col.DynamicCount() != 0 {
		t.Fatalf("ordered access raced: %v", col.Dynamic)
	}
	d.ThreadExit(1)
	// Clear x7's metadata so slot 1 becomes reusable.
	d.SampleEnd()
	d.Write(3, 7, 120, 0) // unsampled write discards (and races — but first access was sampled!)
	racesSoFar := col.DynamicCount()
	d.SampleBegin()

	u, ok := d.ReusableThread()
	if !ok || u != 1 {
		t.Fatalf("expected slot 1 reusable, got %v, %v", u, ok)
	}
	// Generation 2: new thread reuses slot 1, forked by thread 3.
	d.Fork(3, u)
	d.Write(u, 8, 200, 0)
	// Thread 2 synchronized with the OLD occupant of slot 1 only; its
	// access to x8 must still race with the new occupant's write.
	d.Write(2, 8, 210, 0)
	if col.DynamicCount() != racesSoFar+1 {
		t.Fatalf("reused-slot race missed: %d reports (want %d)", col.DynamicCount(), racesSoFar+1)
	}
	last := col.Dynamic[len(col.Dynamic)-1]
	if last.FirstThread != u || last.FirstSite != 200 {
		t.Errorf("race misattributed: %v", last)
	}
}

// With reuse, generations of fork/join keep the clock width bounded.
func TestReuseBoundsClockWidth(t *testing.T) {
	d := New(nil)
	for gen := 0; gen < 50; gen++ {
		u, ok := d.ReusableThread()
		if !ok {
			u = vclock.Thread(d.ThreadSlots())
		}
		d.Fork(0, u)
		d.Acquire(u, 1)
		d.Release(u, 1)
		d.ThreadExit(u)
		d.Join(0, u)
		// Clear the lock's vepoch reference so the slot can recycle.
		d.Acquire(0, 1)
		d.Release(0, 1)
	}
	if d.ThreadSlots() > 4 {
		t.Errorf("thread slots = %d after 50 generations, want ≤ 4", d.ThreadSlots())
	}
}

// Reuse must not create false positives: a properly synchronized program
// over many generations stays silent.
func TestReuseNoFalsePositives(t *testing.T) {
	col := detector.NewCollector()
	d := New(col.Report)
	d.SampleBegin()
	for gen := 0; gen < 30; gen++ {
		u, ok := d.ReusableThread()
		if !ok {
			u = vclock.Thread(d.ThreadSlots())
		}
		d.Fork(0, u)
		d.Acquire(u, 1)
		d.Read(u, 7, 10, 0)
		d.Write(u, 7, 11, 0)
		d.Release(u, 1)
		d.ThreadExit(u)
		d.Join(0, u)
	}
	if col.DynamicCount() != 0 {
		t.Fatalf("false positive across generations: %v", col.Dynamic[0])
	}
}
