package core_test

import (
	"testing"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/vclock"
)

func mk(r detector.Reporter) detector.Detector { return core.New(r) }

func mkOpts(opts core.Options) func(detector.Reporter) detector.Detector {
	return func(r detector.Reporter) detector.Detector {
		return core.NewWithOptions(r, opts)
	}
}

// sampledAlways prefixes a trace with sbegin so PACER runs at r = 100%.
func sampledAlways(tr event.Trace) event.Trace {
	out := make(event.Trace, 0, len(tr)+1)
	out = append(out, event.Event{Kind: event.SampleBegin})
	return append(out, tr...)
}

func TestFullySampledScenarios(t *testing.T) {
	cases := []struct {
		name  string
		trace event.Trace
		races int
		kind  detector.RaceKind
	}{
		{"write-write", dtest.NewTB().SBegin().Write(0, 1).Write(1, 1).Trace, 1, detector.WriteWrite},
		{"write-read", dtest.NewTB().SBegin().Write(0, 1).Read(1, 1).Trace, 1, detector.WriteRead},
		{"read-write", dtest.NewTB().SBegin().Read(0, 1).Write(1, 1).Trace, 1, detector.ReadWrite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := dtest.Run(tc.trace, mk)
			if c.DynamicCount() != tc.races {
				t.Fatalf("races = %d, want %d", c.DynamicCount(), tc.races)
			}
			if c.Dynamic[0].Kind != tc.kind {
				t.Fatalf("kind = %v, want %v", c.Dynamic[0].Kind, tc.kind)
			}
		})
	}
}

func TestFullySampledSynchronizationPreventsRaces(t *testing.T) {
	b := dtest.NewTB().SBegin().
		Acq(0, 9).Write(0, 1).Rel(0, 9).
		Acq(1, 9).Write(1, 1).Rel(1, 9).
		Write(2, 2).VolWrite(2, 3).
		VolRead(3, 3).Read(3, 2).
		Fork(0, 4).Write(4, 5).Join(0, 4).Read(0, 5)
	if c := dtest.Run(b.Trace, mk); c.DynamicCount() != 0 {
		t.Fatalf("false positives: %v", c.Dynamic)
	}
}

// Figure 1, variable y: a write in the sampling period races with a read
// after the period ends. PACER must report it — that is the guarantee.
func TestFigure1SampledWriteLaterRead(t *testing.T) {
	b := dtest.NewTB().
		SBegin().Write(2, 10).SEnd(). // sampled write W_y on t2
		Read(3, 10)                   // racy read on t3, outside sampling
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 1 {
		t.Fatalf("races = %d, want 1", c.DynamicCount())
	}
	r := c.Dynamic[0]
	if r.Kind != detector.WriteRead || r.FirstThread != 2 || r.SecondThread != 3 {
		t.Errorf("unexpected race %v", r)
	}
}

// Figure 1, variable x: a sampled read is followed (with a happens-before
// edge) by an unsampled write; PACER discards the read's metadata, and the
// later racing write goes unreported — the unsampled write at t1 was the
// last access to race, so this race is charged to t1's (unsampled) access.
func TestFigure1DiscardedReadNotReported(t *testing.T) {
	b := dtest.NewTB().
		SBegin().Read(2, 20).Rel(2, 5).SEnd(). // sampled read R_x, then release
		Acq(1, 5).Write(1, 20).                // ordered write W_x at t1 (unsampled)
		Write(3, 20)                           // races with t1's write — unsampled
	c := dtest.Run(b.Trace, mk)
	if c.DynamicCount() != 0 {
		t.Fatalf("unexpected reports: %v", c.Dynamic)
	}
}

func TestNeverSamplingReportsNothingAndTracksNothing(t *testing.T) {
	d := core.New(func(r detector.Race) { t.Errorf("unexpected race %v", r) })
	tr := event.Generate(event.Racy(6, 5000, 3))
	detector.Replay(d, tr)
	if d.VarsTracked() != 0 {
		t.Fatalf("r=0 left %d variables tracked", d.VarsTracked())
	}
	s := d.Stats()
	if s.ReadSlow[detector.NonSampling] != 0 || s.WriteSlow[detector.NonSampling] != 0 {
		t.Error("r=0 executed access slow paths")
	}
	if s.ReadFast[detector.NonSampling] == 0 {
		t.Error("fast path never taken")
	}
	if s.Increments[detector.Sampling] != 0 {
		t.Error("r=0 performed clock increments")
	}
	if s.DeepCopies[detector.NonSampling] != 0 {
		t.Error("r=0 performed deep copies")
	}
}

// Theorem 1 analogue: at a 100% sampling rate PACER performs exactly the
// FASTTRACK analysis — identical race reports on arbitrary traces.
func TestFullySampledEqualsFastTrack(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		tr := dtest.UniqueSites(event.Generate(event.GenConfig{
			Threads: 7, Vars: 10, Locks: 3, Volatiles: 2,
			Steps: 3000, PGuarded: 0.5, PWrite: 0.4, Seed: seed,
		}))
		full := sampledAlways(tr)
		p := dtest.Run(full, mk)
		f := dtest.Run(full, func(r detector.Reporter) detector.Detector { return fasttrack.New(r) })
		kp, kf := dtest.KeySet(p.Dynamic), dtest.KeySet(f.Dynamic)
		if len(kp) != len(kf) {
			t.Fatalf("seed %d: pacer %d distinct reports, fasttrack %d", seed, len(kp), len(kf))
		}
		for k, n := range kf {
			if kp[k] != n {
				t.Fatalf("seed %d: report %v: pacer %d, fasttrack %d", seed, k, kp[k], n)
			}
		}
	}
}

// Theorem 2 analogue (the paper's central claim): every sampled shortest
// race — a FASTTRACK report whose first access falls inside a sampling
// period — is reported by PACER, attributing the same first access.
// Conversely (precision), every PACER report is a true race whose first
// access is sampled; PACER may legitimately report additional true races
// that are not shortest (e.g. when a sampled write survives a same-epoch
// unsampled rewrite, Table 4 Rule 5), so report sets are compared by
// flagged first access, not as exact multisets.
func TestStatisticalSoundness(t *testing.T) {
	mkFT := func(r detector.Reporter) detector.Detector { return fasttrack.New(r) }
	for seed := int64(0); seed < 40; seed++ {
		tr := dtest.UniqueSites(event.Generate(event.GenConfig{
			Threads: 6, Vars: 8, Locks: 3, Volatiles: 2,
			Steps: 3000, PGuarded: 0.45, PWrite: 0.4,
			PSample: 0.03, Seed: seed,
		}))
		if issue := dtest.SoundnessIssue(tr, mk, mkFT); issue != "" {
			t.Fatalf("seed %d: %s", seed, issue)
		}
	}
}

// Lemma 7 in action: disabling the version-epoch optimization must not
// change any report — fast joins only ever skip no-op joins.
func TestVersionOptimizationSemanticsPreserving(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := dtest.UniqueSites(event.Generate(event.GenConfig{
			Threads: 6, Vars: 8, Locks: 3, Volatiles: 2,
			Steps: 2500, PGuarded: 0.45, PWrite: 0.4, PSample: 0.05, Seed: seed,
		}))
		a := dtest.Run(tr, mk)
		b := dtest.Run(tr, mkOpts(core.Options{DisableVersions: true}))
		ka, kb := dtest.KeySet(a.Dynamic), dtest.KeySet(b.Dynamic)
		if len(ka) != len(kb) {
			t.Fatalf("seed %d: %d vs %d reports", seed, len(ka), len(kb))
		}
		for k, n := range ka {
			if kb[k] != n {
				t.Fatalf("seed %d: report %v differs: %d vs %d", seed, k, n, kb[k])
			}
		}
	}
}

// Copy-on-write sharing is likewise semantics-preserving.
func TestSharingSemanticsPreserving(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := dtest.UniqueSites(event.Generate(event.GenConfig{
			Threads: 6, Vars: 8, Locks: 3, Volatiles: 2,
			Steps: 2500, PGuarded: 0.45, PWrite: 0.4, PSample: 0.05, Seed: seed,
		}))
		a := dtest.Run(tr, mk)
		b := dtest.Run(tr, mkOpts(core.Options{DisableSharing: true}))
		ka, kb := dtest.KeySet(a.Dynamic), dtest.KeySet(b.Dynamic)
		if len(ka) != len(kb) {
			t.Fatalf("seed %d: %d vs %d reports", seed, len(ka), len(kb))
		}
		for k, n := range ka {
			if kb[k] != n {
				t.Fatalf("seed %d: report %v differs: %d vs %d", seed, k, n, kb[k])
			}
		}
	}
}

// Theorem 3 analogue (completeness): race-free programs produce no reports
// at any sampling rate.
func TestNoFalsePositivesUnderSampling(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		cfg := event.Synchronized(6, 4000, seed)
		cfg.PSample = 0.04
		tr := event.Generate(cfg)
		if c := dtest.Run(tr, mk); c.DynamicCount() != 0 {
			t.Fatalf("seed %d: false positive %v", seed, c.Dynamic[0])
		}
	}
}

// Disabling discard may add true (non-shortest) races but never loses one,
// and remains precise on race-free traces.
func TestDisableDiscardSupersetAndPrecise(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := dtest.UniqueSites(event.Generate(event.GenConfig{
			Threads: 6, Vars: 8, Locks: 3, Volatiles: 2,
			Steps: 2500, PGuarded: 0.45, PWrite: 0.4, PSample: 0.05, Seed: seed,
		}))
		oracle := dtest.NewHBOracle(tr)
		normal := oracle.FirstAccessClasses(dtest.Run(tr, mk).Dynamic)
		keptRun := dtest.Run(tr, mkOpts(core.Options{DisableDiscard: true}))
		kept := oracle.FirstAccessClasses(keptRun.Dynamic)
		for k := range normal {
			if !kept[k] {
				t.Fatalf("seed %d: discarding=off lost flagged first access on x%d by t%d", seed, k.Var, k.Thread)
			}
		}
		for _, r := range keptRun.Dynamic {
			if !oracle.TrueRace(r) {
				t.Fatalf("seed %d: DisableDiscard reported a false race %v", seed, r)
			}
		}
	}
	for seed := int64(100); seed < 105; seed++ {
		cfg := event.Synchronized(6, 3000, seed)
		cfg.PSample = 0.05
		tr := event.Generate(cfg)
		c := dtest.Run(tr, mkOpts(core.Options{DisableDiscard: true}))
		if c.DynamicCount() != 0 {
			t.Fatalf("seed %d: DisableDiscard false positive %v", seed, c.Dynamic[0])
		}
	}
}

func TestMetadataDiscardedInNonSamplingPeriods(t *testing.T) {
	d := core.New(nil)
	b := dtest.NewTB().SBegin()
	for x := event.Var(0); x < 30; x++ {
		b.Write(0, x).Read(1, x)
	}
	b.SEnd()
	detector.Replay(d, b.Trace)
	if d.VarsTracked() != 30 {
		t.Fatalf("tracked %d vars after sampling, want 30", d.VarsTracked())
	}
	// Unsampled writes discard everything.
	b2 := dtest.NewTB()
	for x := event.Var(0); x < 30; x++ {
		b2.Write(2, x)
	}
	detector.Replay(d, b2.Trace)
	if d.VarsTracked() != 0 {
		t.Fatalf("tracked %d vars after unsampled writes, want 0", d.VarsTracked())
	}
}

func TestSamplingToggle(t *testing.T) {
	d := core.New(nil)
	if d.Sampling() {
		t.Fatal("detector born sampling")
	}
	d.SampleBegin()
	if !d.Sampling() {
		t.Fatal("SampleBegin did not enter sampling")
	}
	d.SampleBegin() // idempotent
	if !d.Sampling() {
		t.Fatal("double SampleBegin broke state")
	}
	d.SampleEnd()
	if d.Sampling() {
		t.Fatal("SampleEnd did not leave sampling")
	}
}

// Operation counters: in non-sampling periods with shared clocks, sync ops
// avoid O(n) work (Table 3's headline result).
func TestNonSamplingSyncOpsAreFast(t *testing.T) {
	d := core.New(nil)
	b := dtest.NewTB()
	// Repeated lock communication between two threads, never sampling.
	for i := 0; i < 100; i++ {
		b.Acq(0, 1).Rel(0, 1).Acq(1, 1).Rel(1, 1)
	}
	detector.Replay(d, b.Trace)
	s := d.Stats()
	if s.ShallowCopies[detector.NonSampling] != 200 {
		t.Errorf("shallow copies = %d, want 200", s.ShallowCopies[detector.NonSampling])
	}
	if s.DeepCopies[detector.NonSampling] != 0 {
		t.Errorf("deep copies = %d, want 0", s.DeepCopies[detector.NonSampling])
	}
	// After the first few joins establish versions, the rest must be fast.
	if s.SlowJoins[detector.NonSampling] > 4 {
		t.Errorf("slow joins = %d, want ≤ 4 (versions should absorb the rest)", s.SlowJoins[detector.NonSampling])
	}
	if s.FastJoins[detector.NonSampling] < 190 {
		t.Errorf("fast joins = %d, want ≥ 190", s.FastJoins[detector.NonSampling])
	}
}

// Space: sharing makes non-sampling sync metadata O(1) per lock rather
// than O(n).
func TestSharingReducesMetadataFootprint(t *testing.T) {
	build := func(opts core.Options) int {
		d := core.NewWithOptions(nil, opts)
		b := dtest.NewTB()
		// Many threads, many locks, all communicating outside sampling.
		for th := vclock.Thread(0); th < 20; th++ {
			for m := event.Lock(0); m < 20; m++ {
				b.Acq(th, m).Rel(th, m)
			}
		}
		detector.Replay(d, b.Trace)
		return d.MetadataWords()
	}
	shared := build(core.Options{})
	unshared := build(core.Options{DisableSharing: true})
	if shared >= unshared {
		t.Errorf("sharing did not reduce footprint: shared=%d unshared=%d", shared, unshared)
	}
}

func TestName(t *testing.T) {
	if core.New(nil).Name() != "pacer" {
		t.Error("wrong name")
	}
}
