package core_test

import (
	"testing"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/dtest"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
)

// FuzzSoundness drives the soundness differential from fuzzer-chosen
// generator parameters: any (seed, knobs) combination must satisfy the
// guarantee and precision properties.
func FuzzSoundness(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(8), uint16(800))
	f.Add(int64(99), uint8(2), uint8(1), uint16(300))
	f.Fuzz(func(t *testing.T, seed int64, threads, vars uint8, steps uint16) {
		tr := dtest.UniqueSites(event.Generate(event.GenConfig{
			Threads: int(threads%8) + 2, Vars: int(vars%12) + 1,
			Locks: 3, Volatiles: 2,
			Steps: int(steps % 1500), PGuarded: 0.4, PWrite: 0.4,
			PSample: 0.05, Seed: seed,
		}))
		mkP := func(r detector.Reporter) detector.Detector { return core.New(r) }
		mkFT := func(r detector.Reporter) detector.Detector { return fasttrack.New(r) }
		if issue := dtest.SoundnessIssue(tr, mkP, mkFT); issue != "" {
			t.Fatalf("seed=%d threads=%d vars=%d steps=%d: %s", seed, threads, vars, steps, issue)
		}
	})
}
