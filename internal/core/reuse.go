package core

import (
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// Thread identifier reuse, in the spirit of the accordion clocks the paper
// cites as the fix for its prototype's unbounded vector clock growth
// (Section 5.1: "Our prototype implementation does not reuse thread
// identifiers, so vector clock sizes are proportional to Total. A
// production implementation could use accordion clocks to reuse thread
// identifiers soundly").
//
// A slot u may be reassigned to a brand-new thread when:
//
//  1. u has terminated (ThreadExit) and been joined (so its final time has
//     propagated into its joiner, keeping happens-before intact), and
//  2. no surviving metadata names u: no write epoch c@u, no read map entry
//     by u, and no lock or volatile version epoch v@u. A stale epoch
//     naming u could otherwise be compared against the *new* thread's
//     clock component and silently look ordered.
//
// The reused slot keeps its clock and version vector, which are monotone:
// the new thread's own component continues from the old thread's final
// time, so epochs recorded by the new thread are strictly larger than any
// the old thread could have produced — third parties' stale C[u] values
// (≤ the old final time) correctly read as "have not synchronized with the
// new thread".

// Join also records that u has been joined, making its slot a reuse
// candidate; see the Join method in pacer.go and markJoined below.

func (d *Detector) markJoined(u vclock.Thread) {
	if d.joined == nil {
		d.joined = make(map[vclock.Thread]bool)
	}
	d.joined[u] = true
}

// referenced reports whether any live metadata names thread u.
func (d *Detector) referenced(u vclock.Thread) bool {
	found := false
	d.forEachVar(func(_ event.Var, m *varMeta) bool {
		if !m.w.IsZero() && m.w.Thread() == u {
			found = true
			return false
		}
		if _, ok := m.r.Get(u); ok {
			found = true
			return false
		}
		return true
	})
	if found {
		return true
	}
	for _, s := range d.locks {
		if !s.vepoch.IsTop() && s.vepoch != vclock.VEBottom && s.vepoch.Thread() == u {
			return true
		}
	}
	for _, s := range d.vols {
		if !s.vepoch.IsTop() && s.vepoch != vclock.VEBottom && s.vepoch.Thread() == u {
			return true
		}
	}
	return false
}

// ReusableThread returns a dead, joined, unreferenced thread slot and
// revives it for a new thread, or reports false when none is available.
// The scan is O(tracked variables + locks); callers fork rarely relative
// to accesses, so this costs far less than letting clocks grow without
// bound.
func (d *Detector) ReusableThread() (vclock.Thread, bool) {
	for u := range d.joined {
		if !d.dead[u] || d.referenced(u) {
			continue
		}
		delete(d.joined, u)
		delete(d.dead, u)
		// The slot keeps its monotone clock and version vector; bump both
		// so the new thread's first epoch is distinct from the old
		// thread's final state even before any synchronization.
		tm := d.thread(u)
		d.ownThreadClock(u, tm)
		tm.clock.Inc(u)
		tm.ver.Inc(u)
		return u, true
	}
	return vclock.NoThread, false
}

// ThreadSlots returns the number of thread slots ever created — with
// reuse, the vector clock width.
func (d *Detector) ThreadSlots() int { return len(d.threads) }
