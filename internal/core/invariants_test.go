package core

import (
	"fmt"
	"testing"

	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/vclock"
)

// checkWellFormed verifies Definition 1 (well-formedness) and, inside
// sampling periods, Definition 2 (strict well-formedness), plus the
// version invariant of Lemma 7: Ver(o) ≼ C_t.ver ⟹ S_o.vc ⊑ C_t.vc.
func checkWellFormed(d *Detector) error {
	live := func(t vclock.Thread) *threadMeta {
		if int(t) < len(d.threads) {
			return d.threads[t]
		}
		return nil
	}
	for ti := range d.threads {
		t := vclock.Thread(ti)
		tm := live(t)
		if tm == nil {
			continue
		}
		// 1-2, 5-8: all other clocks' and version vectors' component for t
		// is bounded by t's own.
		for ui := range d.threads {
			u := vclock.Thread(ui)
			um := live(u)
			if um == nil || u == t {
				continue
			}
			if um.clock.Get(t) > tm.clock.Get(t) {
				return fmt.Errorf("C_%d.vc(%d)=%d > C_%d.vc(%d)=%d", u, t, um.clock.Get(t), t, t, tm.clock.Get(t))
			}
			if d.sampling && um.clock.Get(t) >= tm.clock.Get(t) {
				return fmt.Errorf("strict: C_%d.vc(%d)=%d >= C_%d.vc(%d)=%d during sampling",
					u, t, um.clock.Get(t), t, t, tm.clock.Get(t))
			}
			if um.ver.Get(t) > tm.ver.Get(t) {
				return fmt.Errorf("C_%d.ver(%d) > C_%d.ver(%d)", u, t, t, t)
			}
		}
		for id, s := range d.locks {
			if s.clock.Get(t) > tm.clock.Get(t) {
				return fmt.Errorf("L_%d.vc(%d) > C_%d.vc(%d)", id, t, t, t)
			}
			if d.sampling && s.clock.Get(t) >= tm.clock.Get(t) {
				return fmt.Errorf("strict: L_%d.vc(%d) >= C_%d.vc(%d) during sampling", id, t, t, t)
			}
		}
		for id, s := range d.vols {
			if s.clock.Get(t) > tm.clock.Get(t) {
				return fmt.Errorf("V_%d.vc(%d) > C_%d.vc(%d)", id, t, t, t)
			}
			if d.sampling && s.clock.Get(t) >= tm.clock.Get(t) {
				return fmt.Errorf("strict: V_%d.vc(%d) >= C_%d.vc(%d) during sampling", id, t, t, t)
			}
		}
		// 3-4: variable metadata components bounded by owners' clocks.
		var bad error
		d.forEachVar(func(x event.Var, m *varMeta) bool {
			if !m.w.IsZero() && m.w.Thread() == t && m.w.Clock() > tm.clock.Get(t) {
				bad = fmt.Errorf("W_%d = %v exceeds C_%d.vc(%d)", x, m.w, t, t)
				return false
			}
			m.r.ForEach(func(e vclock.ReadEntry) {
				if e.T == t && e.C > tm.clock.Get(t) {
					bad = fmt.Errorf("R_%d(%d)=%d exceeds C_%d.vc(%d)=%d", x, t, e.C, t, t, tm.clock.Get(t))
				}
			})
			return bad == nil
		})
		if bad != nil {
			return bad
		}
		// Lemma 7: versions imply vector clock ordering.
		checkVE := func(name string, s *syncMeta) error {
			if s.vepoch.Leq(tm.ver) && !s.clock.Leq(tm.clock) {
				return fmt.Errorf("%s: Ver=%v ≼ ver_%d but clock ⋢ C_%d", name, s.vepoch, t, t)
			}
			return nil
		}
		for id, s := range d.locks {
			if err := checkVE(fmt.Sprintf("lock %d", id), s); err != nil {
				return err
			}
		}
		for id, s := range d.vols {
			if err := checkVE(fmt.Sprintf("volatile %d", id), s); err != nil {
				return err
			}
		}
		for ui := range d.threads {
			u := vclock.Thread(ui)
			um := live(u)
			if um == nil || u == t {
				continue
			}
			uve := d.vepochOf(u, um)
			if uve.Leq(tm.ver) && !um.clock.Leq(tm.clock) {
				return fmt.Errorf("thread %d: Ver ≼ ver_%d but clock ⋢", u, t)
			}
		}
	}
	return nil
}

func TestInvariantsHoldOnRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr := event.Generate(event.GenConfig{
			Threads: 5, Vars: 6, Locks: 3, Volatiles: 2,
			Steps: 1200, PGuarded: 0.45, PWrite: 0.4, PSample: 0.05, Seed: seed,
		})
		d := New(nil)
		for i, e := range tr {
			detector.Apply(d, e)
			if err := checkWellFormed(d); err != nil {
				t.Fatalf("seed %d, after event %d (%v): %v", seed, i, e, err)
			}
		}
	}
}

func TestInvariantsHoldWithOptions(t *testing.T) {
	for _, opts := range []Options{
		{DisableVersions: true},
		{DisableSharing: true},
		{DisableVersions: true, DisableSharing: true},
	} {
		tr := event.Generate(event.GenConfig{
			Threads: 5, Vars: 6, Locks: 3, Volatiles: 2,
			Steps: 1200, PGuarded: 0.45, PWrite: 0.4, PSample: 0.05, Seed: 11,
		})
		d := NewWithOptions(nil, opts)
		for i, e := range tr {
			detector.Apply(d, e)
			if err := checkWellFormed(d); err != nil {
				t.Fatalf("opts %+v, after event %d (%v): %v", opts, i, e, err)
			}
		}
	}
}

// Shared clocks must never be mutated in place: a lock that shallow-copied
// a thread's clock keeps the old snapshot after the thread's clock
// advances.
func TestSharedClockSnapshotIsolation(t *testing.T) {
	d := New(nil)
	d.Release(0, 1) // non-sampling: shallow copy, clock shared with t0
	lk := d.locks[1]
	tm := d.thread(0)
	if lk.clock != tm.clock {
		t.Fatal("non-sampling release did not share the clock")
	}
	if !tm.clock.Shared() {
		t.Fatal("thread clock not marked shared")
	}
	snapshot := lk.clock.Get(0)

	d.SampleBegin() // increments t0's clock: must clone, not mutate
	if d.thread(0).clock == lk.clock {
		t.Fatal("SampleBegin mutated the shared clock in place")
	}
	if lk.clock.Get(0) != snapshot {
		t.Fatalf("lock snapshot changed: %d -> %d", snapshot, lk.clock.Get(0))
	}
	if d.thread(0).clock.Get(0) != snapshot+1 {
		t.Fatalf("thread clock = %d, want %d", d.thread(0).clock.Get(0), snapshot+1)
	}
}

// A join into a thread whose clock is shared must clone before joining.
func TestJoinClonesSharedClock(t *testing.T) {
	d := New(nil)
	d.SampleBegin()
	d.Release(1, 2) // deep copy (sampling), lock 2 gets t1's clock, t1 increments
	d.SampleEnd()
	d.Release(0, 1) // shallow: t0's clock shared with lock 1
	lk1 := d.locks[1]
	if lk1.clock != d.thread(0).clock {
		t.Fatal("expected sharing")
	}
	before := lk1.clock.Get(1)
	d.Acquire(0, 2) // t0 joins lock 2's clock (concurrent) → must clone
	if lk1.clock.Get(1) != before {
		t.Fatal("join mutated a shared snapshot")
	}
	if d.thread(0).clock.Get(1) <= before {
		t.Fatal("join did not take effect on the thread clock")
	}
}

// The version fast path must fire for repeated communication over the same
// lock and must never fire when the version epoch is ⊤ve.
func TestVersionEpochTopDisablesFastJoin(t *testing.T) {
	d := New(nil)
	// Two threads write the same volatile concurrently so its version
	// epoch becomes ⊤ve.
	d.SampleBegin()
	d.VolWrite(0, 1)
	d.VolWrite(1, 1) // t1's clock does not subsume t0's → join, ⊤ve
	if ve := d.vols[1].vepoch; !ve.IsTop() {
		t.Fatalf("volatile vepoch = %v, want ⊤ve", ve)
	}
	// Now volatile reads cannot use the version fast path.
	before := d.stats.FastJoins[detector.Sampling]
	d.VolRead(2, 1)
	if d.stats.FastJoins[detector.Sampling] != before {
		t.Error("fast join fired against a ⊤ve version epoch")
	}
}

// vepochOf round-trips through the version vector.
func TestVepochOf(t *testing.T) {
	d := New(nil)
	tm := d.thread(3)
	ve := d.vepochOf(3, tm)
	if ve.Thread() != 3 || ve.Version() != 1 {
		t.Fatalf("initial vepoch = %v, want v1@3", ve)
	}
	d.SampleBegin() // increments every live thread's clock and version
	ve = d.vepochOf(3, d.thread(3))
	if ve.Version() != 2 {
		t.Fatalf("vepoch after sbegin = %v, want v2@3", ve)
	}
	d.Release(3, 0) // sampled release increments again
	ve = d.vepochOf(3, d.thread(3))
	if ve.Version() != 3 {
		t.Fatalf("vepoch after sampled release = %v, want v3@3", ve)
	}
}
