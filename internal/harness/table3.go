package harness

import (
	"fmt"
	"io"

	"pacer/internal/detector"
)

// Table3Row aggregates PACER's operation counters for one benchmark at
// r = 3%, averaged over the trial count (Table 3).
type Table3Row struct {
	Bench    string
	Counters detector.Counters
	Trials   int
}

// Table3Result reproduces Table 3: counts of vector clock joins and
// copies, and read and write operations.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs PACER at a 3% sampling rate and aggregates counters.
func Table3(o Options) (*Table3Result, error) {
	o.fill()
	out := &Table3Result{}
	n := o.trials(10)
	for _, b := range o.Benches {
		row := Table3Row{Bench: b.Name, Trials: n}
		for i := 0; i < n; i++ {
			t, err := RunTrial(TrialConfig{
				Bench: b, Kind: Pacer, Rate: 0.03,
				Seed: o.SeedBase + int64(i), InstrumentAccesses: true, Nursery: o.Nursery,
			})
			if err != nil {
				return nil, err
			}
			row.Counters.Add(&t.Result.Counters)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table in the paper's layout (per-trial averages).
func (t *Table3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Counts of vector clock joins and copies, and read and")
	fmt.Fprintln(w, "write operations for PACER at a sampling rate of 3% (per trial).")
	const (
		S  = detector.Sampling
		NS = detector.NonSampling
	)
	avg := func(row Table3Row, v uint64) float64 { return float64(v) / float64(row.Trials) }

	fmt.Fprintln(w, "\nVC joins")
	fmt.Fprintf(w, "%-10s %14s %14s | %14s %14s\n", "Program", "Samp slow", "Samp fast", "Non-samp slow", "Non-samp fast")
	rule(w, 74)
	for _, r := range t.Rows {
		c := r.Counters
		fmt.Fprintf(w, "%-10s %14.0f %14.0f | %14.0f %14.0f\n", r.Bench,
			avg(r, c.SlowJoins[S]), avg(r, c.FastJoins[S]), avg(r, c.SlowJoins[NS]), avg(r, c.FastJoins[NS]))
	}

	fmt.Fprintln(w, "\nVC copies")
	fmt.Fprintf(w, "%-10s %14s %14s | %14s %14s\n", "Program", "Samp deep", "Samp shallow", "Non-samp deep", "Non-samp shal")
	rule(w, 74)
	for _, r := range t.Rows {
		c := r.Counters
		fmt.Fprintf(w, "%-10s %14.0f %14.0f | %14.0f %14.0f\n", r.Bench,
			avg(r, c.DeepCopies[S]), avg(r, c.ShallowCopies[S]), avg(r, c.DeepCopies[NS]), avg(r, c.ShallowCopies[NS]))
	}

	fmt.Fprintln(w, "\nReads")
	fmt.Fprintf(w, "%-10s %14s | %14s %14s\n", "Program", "Samp slow", "Non-samp slow", "Non-samp fast")
	rule(w, 59)
	for _, r := range t.Rows {
		c := r.Counters
		fmt.Fprintf(w, "%-10s %14.0f | %14.0f %14.0f\n", r.Bench,
			avg(r, c.ReadSlow[S]), avg(r, c.ReadSlow[NS]), avg(r, c.ReadFast[NS]))
	}

	fmt.Fprintln(w, "\nWrites")
	fmt.Fprintf(w, "%-10s %14s | %14s %14s\n", "Program", "Samp slow", "Non-samp slow", "Non-samp fast")
	rule(w, 59)
	for _, r := range t.Rows {
		c := r.Counters
		fmt.Fprintf(w, "%-10s %14.0f | %14.0f %14.0f\n", r.Bench,
			avg(r, c.WriteSlow[S]), avg(r, c.WriteSlow[NS]), avg(r, c.WriteFast[NS]))
	}
	fmt.Fprintln(w, "\n(The paper's headline: O(n)-time VC operations are almost entirely")
	fmt.Fprintln(w, "confined to sampling periods.)")
}
