package harness

import (
	"fmt"
	"io"
	"time"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/djit"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/generic"
	"pacer/internal/goldilocks"
	"pacer/internal/literace"
	"pacer/internal/lockset"
	"pacer/internal/sim"
	"pacer/internal/vclock"
	"pacer/internal/workload"
)

// LineageRow measures one detector of the related-work lineage on an
// identical event stream.
type LineageRow struct {
	Detector string
	// Precise marks sound-and-precise detectors (every report true).
	Precise bool
	// DistinctVars is the number of variables reported racy.
	DistinctVars int
	// Dynamic is the number of dynamic reports.
	Dynamic int
	// EventsPerSec is replay throughput on this machine.
	EventsPerSec float64
}

// LineageResult compares the full detector lineage — GENERIC, DJIT+,
// lockset, Goldilocks, FASTTRACK, LITERACE, PACER at several rates — on
// one recorded benchmark execution. This composite table goes beyond the
// paper's evaluation but summarizes its related-work narrative
// (Sections 2 and 6) in one measurement.
type LineageResult struct {
	Bench  string
	Events int
	Rows   []LineageRow
}

// Lineage records one trial of the benchmark and replays it under every
// detector.
func Lineage(b *workload.Spec, o Options) (*LineageResult, error) {
	o.fill()
	tr, err := RecordTrace(b, o.SeedBase)
	if err != nil {
		return nil, err
	}
	out := &LineageResult{Bench: b.Name, Events: len(tr)}

	type entry struct {
		name    string
		precise bool
		rate    float64 // PACER sampling rate injected at replay (0 = none)
		mk      func(detector.Reporter) detector.Detector
	}
	entries := []entry{
		{"lockset (Eraser)", false, 0, func(r detector.Reporter) detector.Detector { return lockset.New(r) }},
		{"generic VC", true, 0, func(r detector.Reporter) detector.Detector { return generic.New(r) }},
		{"DJIT+", true, 0, func(r detector.Reporter) detector.Detector { return djit.New(r) }},
		{"Goldilocks", true, 0, func(r detector.Reporter) detector.Detector { return goldilocks.New(r) }},
		{"FastTrack", true, 0, func(r detector.Reporter) detector.Detector { return fasttrack.New(r) }},
		{"LiteRace", true, 0, func(r detector.Reporter) detector.Detector {
			return literace.New(r, literace.Options{BurstLength: 5, MinRate: 0.001, Backoff: 10, Seed: 1})
		}},
		{"PACER r=0%", true, 0, func(r detector.Reporter) detector.Detector { return core.New(r) }},
		{"PACER r=3%", true, 0.03, func(r detector.Reporter) detector.Detector { return core.New(r) }},
		{"PACER r=100%", true, 1.0, func(r detector.Reporter) detector.Detector { return core.New(r) }},
	}
	for _, e := range entries {
		col := detector.NewCollector()
		d := e.mk(col.Report)
		start := time.Now()
		replaySampled(d, tr, e.rate)
		elapsed := time.Since(start)
		vars := map[event.Var]bool{}
		for _, r := range col.Dynamic {
			vars[r.Var] = true
		}
		out.Rows = append(out.Rows, LineageRow{
			Detector:     e.name,
			Precise:      e.precise,
			DistinctVars: len(vars),
			Dynamic:      col.DynamicCount(),
			EventsPerSec: float64(len(tr)) / elapsed.Seconds(),
		})
	}
	return out, nil
}

// replaySampled replays the trace, injecting fixed-length sampling windows
// at the given rate for detectors that sample.
func replaySampled(d detector.Detector, tr event.Trace, rate float64) {
	sampler, _ := d.(detector.Sampler)
	const period = 2048
	rng := newLCG(12345)
	for i, e := range tr {
		if sampler != nil && rate > 0 && i%period == 0 {
			if rng.float64() < rate {
				sampler.SampleBegin()
			} else {
				sampler.SampleEnd()
			}
		}
		detector.Apply(d, e)
	}
}

// lcg is a tiny deterministic PRNG so the lineage replay needs no
// math/rand state shared with anything else.
type lcg uint64

func newLCG(seed uint64) *lcg { l := lcg(seed); return &l }

func (l *lcg) float64() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(uint64(*l)>>11) / float64(1<<53)
}

// traceRecorder captures the simulator's event stream.
type traceRecorder struct{ tr event.Trace }

func (r *traceRecorder) add(e event.Event) { r.tr = append(r.tr, e) }

func (r *traceRecorder) Read(t vclock.Thread, x event.Var, s event.Site, m uint32) {
	r.add(event.Event{Kind: event.Read, Thread: t, Target: uint32(x), Site: s, Method: m})
}
func (r *traceRecorder) Write(t vclock.Thread, x event.Var, s event.Site, m uint32) {
	r.add(event.Event{Kind: event.Write, Thread: t, Target: uint32(x), Site: s, Method: m})
}
func (r *traceRecorder) Acquire(t vclock.Thread, m event.Lock) {
	r.add(event.Event{Kind: event.Acquire, Thread: t, Target: uint32(m)})
}
func (r *traceRecorder) Release(t vclock.Thread, m event.Lock) {
	r.add(event.Event{Kind: event.Release, Thread: t, Target: uint32(m)})
}
func (r *traceRecorder) Fork(t, u vclock.Thread) {
	r.add(event.Event{Kind: event.Fork, Thread: t, Target: uint32(u)})
}
func (r *traceRecorder) Join(t, u vclock.Thread) {
	r.add(event.Event{Kind: event.Join, Thread: t, Target: uint32(u)})
}
func (r *traceRecorder) VolRead(t vclock.Thread, v event.Volatile) {
	r.add(event.Event{Kind: event.VolRead, Thread: t, Target: uint32(v)})
}
func (r *traceRecorder) VolWrite(t vclock.Thread, v event.Volatile) {
	r.add(event.Event{Kind: event.VolWrite, Thread: t, Target: uint32(v)})
}
func (r *traceRecorder) Name() string { return "recorder" }

// RecordTrace runs one instrumented trial of the benchmark and returns its
// event stream.
func RecordTrace(b *workload.Spec, seed int64) (event.Trace, error) {
	rec := &traceRecorder{}
	_, err := sim.Run(b.Program(seed), sim.Config{
		Seed: seed, Detector: rec, InstrumentAccesses: true,
		NurseryWords: b.NurseryWords,
	})
	if err != nil {
		return nil, err
	}
	return rec.tr, nil
}

// Render prints the lineage table.
func (l *LineageResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Detector lineage on one %s execution (%d events).\n", l.Bench, l.Events)
	fmt.Fprintf(w, "%-18s %8s %12s %10s %14s\n", "detector", "precise", "racy vars", "dynamic", "events/s")
	rule(w, 68)
	for _, r := range l.Rows {
		p := "yes"
		if !r.Precise {
			p = "no"
		}
		fmt.Fprintf(w, "%-18s %8s %12d %10d %14.0f\n", r.Detector, p, r.DistinctVars, r.Dynamic, r.EventsPerSec)
	}
	fmt.Fprintln(w, "(PACER r=0% does no access tracking; r=3% reports each race with")
	fmt.Fprintln(w, "~3% probability. Lockset is imprecise both ways: it misses")
	fmt.Fprintln(w, "write-then-read-shared races and false-positives on fork/join and")
	fmt.Fprintln(w, "volatile idioms — see internal/lockset's tests.)")
}
