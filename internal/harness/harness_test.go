package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"pacer/internal/harness"
	"pacer/internal/workload"
)

func miniOpts() harness.Options {
	return harness.Options{Scale: 0.1, Benches: []*workload.Spec{workload.Mini()}, Nursery: 256}
}

func TestRunTrialPacer(t *testing.T) {
	tr, err := harness.RunTrial(harness.TrialConfig{
		Bench: workload.Mini(), Kind: harness.Pacer, Rate: 1.0,
		Seed: 1, InstrumentAccesses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Distinct() == 0 {
		t.Error("fully sampled PACER found no races on mini (expected several)")
	}
	if tr.EffectiveRate < 0.9 {
		t.Errorf("effective rate %.2f at r=100%%", tr.EffectiveRate)
	}
}

func TestRunTrialAllKinds(t *testing.T) {
	for _, k := range []harness.DetectorKind{
		harness.NoDetector, harness.Pacer, harness.FastTrack, harness.Generic, harness.LiteRace,
	} {
		tr, err := harness.RunTrial(harness.TrialConfig{
			Bench: workload.Mini(), Kind: k, Rate: 0.5,
			Seed: 2, InstrumentAccesses: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if k == harness.NoDetector && tr.Distinct() != 0 {
			t.Error("uninstrumented run reported races")
		}
		if (k == harness.FastTrack || k == harness.Generic) && tr.Distinct() == 0 {
			t.Errorf("%v found no races", k)
		}
	}
}

func TestDetectorKindString(t *testing.T) {
	want := map[harness.DetectorKind]string{
		harness.NoDetector: "base", harness.Pacer: "pacer", harness.FastTrack: "fasttrack",
		harness.Generic: "generic", harness.LiteRace: "literace",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestTable1(t *testing.T) {
	res, err := harness.Table1(miniOpts())
	if err != nil {
		t.Fatal(err)
	}
	cells := res.Cells["mini"]
	if len(cells) != len(harness.Table1Rates) {
		t.Fatalf("cells = %d", len(cells))
	}
	// Effective rates increase with specified rates.
	if cells[0.01].Mean >= cells[0.25].Mean {
		t.Errorf("effective rate not increasing: 1%%→%.2f, 25%%→%.2f", cells[0.01].Mean, cells[0.25].Mean)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "mini") {
		t.Error("render missing benchmark row")
	}
}

func TestTable2(t *testing.T) {
	res, err := harness.Table2(miniOpts())
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.TotalThreads != 7 || row.MaxLiveThreads != 7 {
		t.Errorf("thread counts %d/%d", row.TotalThreads, row.MaxLiveThreads)
	}
	if row.FullGe1 == 0 || len(row.EvalRaces) == 0 {
		t.Error("no races characterized")
	}
	if row.FullGe25 > row.FullGe5 || row.FullGe5 > row.FullGe1 {
		t.Errorf("threshold counts not monotone: %d/%d/%d", row.FullGe1, row.FullGe5, row.FullGe25)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "mini") {
		t.Error("render missing row")
	}
}

func TestAccuracy(t *testing.T) {
	res, err := harness.Accuracy(miniOpts())
	if err != nil {
		t.Fatal(err)
	}
	ba := res.Benches[0]
	if len(ba.EvalRaces) == 0 {
		t.Fatal("no evaluation races")
	}
	if ba.Fig3[1.0] != 1.0 || ba.Fig4[1.0] != 1.0 {
		t.Error("baseline not normalized to 1")
	}
	// Detection at 1% must be far below detection at 50%.
	if ba.Fig4[0.01] >= ba.Fig4[0.50] {
		t.Errorf("detection rate not increasing: 1%%→%.3f, 50%%→%.3f", ba.Fig4[0.01], ba.Fig4[0.50])
	}
	var buf bytes.Buffer
	res.RenderFig3(&buf)
	res.RenderFig4(&buf)
	res.RenderFig5(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5", "mini"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig6(t *testing.T) {
	res, err := harness.Fig6(workload.Mini(), harness.Options{Scale: 0.05, Nursery: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials == 0 || len(res.EvalRaces) == 0 {
		t.Fatal("no data")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("render broken")
	}
}

func TestFig7OverheadBreakdown(t *testing.T) {
	res, err := harness.Fig7(miniOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if !(r.OMSync > 0 && r.OMSync < r.R0 && r.R0 <= r.R1 && r.R1 <= r.R3) {
		t.Errorf("breakdown not monotone: om=%.3f r0=%.3f r1=%.3f r3=%.3f", r.OMSync, r.R0, r.R1, r.R3)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("render broken")
	}
}

func TestScaling(t *testing.T) {
	res, err := harness.Scaling(miniOpts(), []float64{0, 0.10, 1.0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Slowdown["mini"]
	if !(s[0] < s[0.10] && s[0.10] < s[1.0]) {
		t.Errorf("slowdown not increasing: %v", s)
	}
	if res.FastTrackSlowdown["mini"] <= s[0.10] {
		t.Errorf("fasttrack (%.2fx) should exceed pacer at 10%% (%.2fx)",
			res.FastTrackSlowdown["mini"], s[0.10])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("render broken")
	}
}

func TestTable3(t *testing.T) {
	res, err := harness.Table3(miniOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Rows[0].Counters
	// The headline property: non-sampling slow joins are rare relative to
	// fast joins.
	slow, fast := c.SlowJoins[0], c.FastJoins[0]
	if fast == 0 {
		t.Fatal("no fast joins in non-sampling periods")
	}
	if slow > fast/4 {
		t.Errorf("non-sampling slow joins %d vs fast %d: versions not effective", slow, fast)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("render broken")
	}
}

func TestFig10(t *testing.T) {
	res, err := harness.Fig10(workload.Mini(), harness.Options{Scale: 0.05, Nursery: 256})
	if err != nil {
		t.Fatal(err)
	}
	peaks := map[string]int{}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s has no samples", s.Label)
		}
		peaks[s.Label] = s.Peak
	}
	if peaks["Pacer r=100%"] <= peaks["Pacer r=1%"] {
		t.Errorf("space not scaling with r: 100%%→%d, 1%%→%d", peaks["Pacer r=100%"], peaks["Pacer r=1%"])
	}
	if peaks["Base"] >= peaks["Pacer r=100%"] {
		t.Errorf("base (%d) should be below full tracking (%d)", peaks["Base"], peaks["Pacer r=100%"])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Error("render broken")
	}
}

func TestCharts(t *testing.T) {
	acc, err := harness.Accuracy(miniOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	acc.Chart(&buf, false)
	acc.Chart(&buf, true)
	sc, err := harness.Scaling(miniOpts(), []float64{0, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc.Chart(&buf)
	f7, err := harness.Fig7(miniOpts())
	if err != nil {
		t.Fatal(err)
	}
	f7.Chart(&buf)
	f10, err := harness.Fig10(workload.Mini(), harness.Options{Scale: 0.05, Nursery: 256})
	if err != nil {
		t.Fatal(err)
	}
	f10.Chart(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 8", "Figure 7", "Figure 10", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("charts missing %q", want)
		}
	}
}

func TestAblations(t *testing.T) {
	res, err := harness.Ablations(miniOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	full, noVer := res.Rows[0], res.Rows[1]
	if full.FastJoinFrac < 0.5 {
		t.Errorf("full PACER fast-join fraction %.2f too low", full.FastJoinFrac)
	}
	if noVer.FastJoinFrac != 0 {
		t.Errorf("versions disabled but fast joins = %.2f", noVer.FastJoinFrac)
	}
	if noVer.SlowJoins <= full.SlowJoins {
		t.Errorf("disabling versions should add slow joins: %v vs %v", noVer.SlowJoins, full.SlowJoins)
	}
	noDiscard := res.Rows[3]
	if noDiscard.MetaWords <= full.MetaWords {
		t.Errorf("disabling discard should grow metadata: %v vs %v", noDiscard.MetaWords, full.MetaWords)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Ablation study") {
		t.Error("render broken")
	}
}

func TestLineage(t *testing.T) {
	res, err := harness.Lineage(workload.Mini(), harness.Options{Scale: 0.1, Nursery: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 || res.Events == 0 {
		t.Fatalf("rows=%d events=%d", len(res.Rows), res.Events)
	}
	byName := map[string]harness.LineageRow{}
	for _, r := range res.Rows {
		byName[r.Detector] = r
	}
	ft := byName["FastTrack"]
	gen := byName["generic VC"]
	gl := byName["Goldilocks"]
	p0 := byName["PACER r=0%"]
	p3 := byName["PACER r=3%"]
	p100 := byName["PACER r=100%"]
	if ft.DistinctVars == 0 {
		t.Fatal("fasttrack found nothing")
	}
	// Precise detectors agree on the racy-variable count for this trace.
	if gen.DistinctVars != ft.DistinctVars || gl.DistinctVars != ft.DistinctVars {
		t.Errorf("precise detectors disagree: generic=%d goldilocks=%d fasttrack=%d",
			gen.DistinctVars, gl.DistinctVars, ft.DistinctVars)
	}
	if p0.Dynamic != 0 {
		t.Errorf("PACER r=0%% reported %d races", p0.Dynamic)
	}
	if p100.DistinctVars != ft.DistinctVars {
		t.Errorf("PACER r=100%% (%d vars) should match fasttrack (%d)", p100.DistinctVars, ft.DistinctVars)
	}
	if p3.Dynamic > p100.Dynamic {
		t.Errorf("PACER r=3%% (%d) reported more than r=100%% (%d)", p3.Dynamic, p100.Dynamic)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "lineage") {
		t.Error("render broken")
	}
}

func TestFrontendScalingRuns(t *testing.T) {
	res := harness.Frontend(harness.FrontendConfig{
		Goroutines: []int{1, 2}, Ops: 5_000,
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Base.OpsPerSec <= 0 || r.Conc.OpsPerSec <= 0 {
			t.Errorf("non-positive throughput: %+v", r)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("render broken")
	}
}

func TestContentionRuns(t *testing.T) {
	res := harness.Contention(harness.ContentionConfig{
		Goroutines: []int{1, 2}, Ops: 5_000,
	})
	if len(res.Mixes) != 2 {
		t.Fatalf("mixes = %d, want 2", len(res.Mixes))
	}
	for _, mr := range res.Mixes {
		if len(mr.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2", mr.Mix.Name, len(mr.Rows))
		}
		for _, r := range mr.Rows {
			if r.Serial.OpsPerSec <= 0 || r.Locked.OpsPerSec <= 0 || r.CAS.OpsPerSec <= 0 {
				t.Errorf("%s: non-positive throughput: %+v", mr.Mix.Name, r)
			}
			// All three mounts analyze the identical access stream.
			want := r.Serial.Stats.Reads + r.Serial.Stats.Writes
			for label, m := range map[string]harness.Measure{"locked": r.Locked, "cas": r.CAS} {
				if got := m.Stats.Reads + m.Stats.Writes; got != want {
					t.Errorf("%s/%s at %d goroutines: %d ops observed, serialized saw %d",
						mr.Mix.Name, label, r.Goroutines, got, want)
				}
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "sharded+CAS") {
		t.Error("render broken")
	}
}
