package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"pacer"
)

// ArenaExperiment measures what the metadata arena buys on this machine:
// the identical concurrent workload runs once heap-backed and once
// arena-backed at each goroutine count, and the table compares allocations
// per operation, throughput, final MetadataWords, and the arena's own
// recycle/miss split.
//
// The sampling rate defaults to 0.20 rather than the deployment 0.01: the
// arena targets the metadata-churn regime (sampled periods creating
// records and clones that the next non-sampled write discards), and a
// higher rate reaches steady-state churn within a benchmark-sized run.
// (The two columns are separate live runs, so period boundaries — and
// therefore final MetadataWords — differ by scheduling; the differential
// suite is what proves the analysis identical on identical traces.)

// ArenaConfig configures the arena-vs-heap measurement.
type ArenaConfig struct {
	// Goroutines lists the parallelism levels (default 1,2,4,8).
	Goroutines []int
	// Rate is the sampling rate (default 0.20, a metadata-churn regime).
	Rate float64
	// Ops is the per-goroutine operation count (default 200_000).
	Ops int
	// SharedEvery makes one in N accesses touch a shared variable
	// (default 16).
	SharedEvery int
}

// ArenaRow is one parallelism level's heap-vs-arena comparison.
type ArenaRow struct {
	Goroutines int
	Heap, Ar   Measure
	// AllocReduction is 1 - arena allocs/op over heap allocs/op: the
	// fraction of per-operation allocations the arena eliminated.
	AllocReduction float64
}

// ArenaResult holds the comparison table.
type ArenaResult struct {
	Rate float64
	Ops  int
	Rows []ArenaRow
}

// arenaRun drives the metadata-churn workload once. It differs from the
// frontend workload where the arena matters: short sampling periods
// (PeriodOps 256) so period transitions — the clone/discard churn points —
// are frequent, writes rotating over a per-goroutine variable window so
// each sampled period re-creates records that the following non-sampled
// writes discard, and cross-thread shared reads so read maps inflate.
func arenaRun(cfg ArenaConfig, goroutines int, arena bool) Measure {
	d := pacer.New(pacer.Options{
		SamplingRate: cfg.Rate,
		PeriodOps:    256,
		Seed:         11,
		Arena:        arena,
	})
	main := d.NewThread()
	shared := make([]pacer.VarID, 8)
	for i := range shared {
		shared[i] = d.NewVarID()
	}
	m := d.NewMutex()
	workers := make([]pacer.ThreadID, goroutines)
	windows := make([][]pacer.VarID, goroutines)
	for g := range workers {
		workers[g] = d.Fork(main)
		windows[g] = make([]pacer.VarID, 128)
		for i := range windows[g] {
			windows[g][i] = d.NewVarID()
		}
	}
	var wg sync.WaitGroup
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for g, tid := range workers {
		wg.Add(1)
		go func(tid pacer.ThreadID, g int) {
			defer wg.Done()
			window := windows[g]
			site := pacer.SiteID(g*1000 + 1)
			for i := 0; i < cfg.Ops; i++ {
				switch {
				case i%256 == 255: // lock churn: shallow copies and clones
					m.Lock(tid)
					d.Write(tid, shared[g%len(shared)], site)
					m.Unlock(tid)
				case i%cfg.SharedEvery == 0: // cross-thread reads: read maps
					d.Read(tid, shared[i%len(shared)], site)
				case i%3 != 0: // rotating writes: record create/discard churn
					d.Write(tid, window[i%len(window)], site)
				default:
					d.Read(tid, window[i%len(window)], site)
				}
			}
		}(tid, g)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	totalOps := float64(goroutines) * float64(cfg.Ops)
	st := d.Stats()
	return Measure{
		OpsPerSec:   totalOps / elapsed,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / totalOps,
		MetaWords:   st.MetadataWords,
		Stats:       st,
	}
}

func (c *ArenaConfig) fill() {
	if c.Goroutines == nil {
		c.Goroutines = []int{1, 2, 4, 8}
	}
	if c.Rate == 0 {
		c.Rate = 0.20
	}
	if c.Ops <= 0 {
		c.Ops = 200_000
	}
	if c.SharedEvery <= 0 {
		c.SharedEvery = 16
	}
}

// Arena runs the heap-vs-arena measurement.
func Arena(cfg ArenaConfig) *ArenaResult {
	cfg.fill()
	res := &ArenaResult{Rate: cfg.Rate, Ops: cfg.Ops}
	for _, g := range cfg.Goroutines {
		// Heap and arena interleaved per level so drift hits both equally.
		heap := arenaRun(cfg, g, false)
		ar := arenaRun(cfg, g, true)
		red := 0.0
		if heap.AllocsPerOp > 0 {
			red = 1 - ar.AllocsPerOp/heap.AllocsPerOp
		}
		res.Rows = append(res.Rows, ArenaRow{Goroutines: g, Heap: heap, Ar: ar, AllocReduction: red})
	}
	return res
}

// Render prints the comparison table.
func (a *ArenaResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Metadata arena vs heap allocator (real wall clock, r = %.2f, %d ops/goroutine)\n", a.Rate, a.Ops)
	fmt.Fprintf(w, "%-11s  %13s  %13s  %12s  %13s  %8s  %10s  %14s\n",
		"goroutines", "heap alloc/op", "arena alloc/op", "alloc saved", "arena op/s", "vs heap", "meta words", "recycle/miss")
	rule(w, 108)
	for _, r := range a.Rows {
		speed := r.Ar.OpsPerSec / r.Heap.OpsPerSec
		fmt.Fprintf(w, "%-11d  %13.4f  %14.4f  %11.1f%%  %13.3e  %7.2fx  %10d  %7d/%d\n",
			r.Goroutines, r.Heap.AllocsPerOp, r.Ar.AllocsPerOp, 100*r.AllocReduction,
			r.Ar.OpsPerSec, speed, r.Ar.MetaWords,
			r.Ar.Stats.ArenaRecycles, r.Ar.Stats.ArenaMisses)
	}
}
