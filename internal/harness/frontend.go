package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"pacer"
)

// Frontend measures the real (wall-clock, this machine) ingestion
// throughput of the public pacer.Detector facade under parallel load:
// goroutines issuing Read/Write through the API with occasional
// instrumented lock operations, at a deployment-style sampling rate.
//
// Two comparisons come out of one run:
//
//   - Scaling: each goroutine count is run twice with the default PACER
//     backend — once in Options.Serialized mode (the classic single-mutex
//     front-end, the baseline) and once with the concurrent sharded
//     front-end — and the speedup column is the headline: with the
//     lock-free non-sampling fast path, aggregate throughput should scale
//     with cores instead of collapsing on the global mutex.
//   - Backends: every algorithm in Config.Algorithms is mounted behind
//     the *identical* concurrent front-end (Options.Algorithm) and
//     measured on the same workload, turning the paper's simulated-cost
//     comparison (PACER vs FASTTRACK et al.) into real wall-clock numbers
//     through the code path production uses. Backends without sampling
//     analyze everything, so the gap to PACER at a deployment rate is the
//     proportionality argument measured live.
//
// Unlike the simulator experiments this one measures this process on this
// hardware; numbers vary across machines, the shape (speedup > 1, growing
// with goroutines; PACER far ahead of always-on backends) should not.

// FrontendConfig configures the front-end scaling measurement.
type FrontendConfig struct {
	// Goroutines lists the parallelism levels to measure (default 1,2,4,8).
	Goroutines []int
	// Rate is the sampling rate (default 0.01, the paper's deployment
	// recommendation).
	Rate float64
	// Ops is the per-goroutine operation count (default 200_000).
	Ops int
	// SharedEvery makes one in N accesses touch a variable shared by all
	// goroutines (default 16).
	SharedEvery int
	// Algorithms lists the backends compared through the identical
	// concurrent front-end (default pacer, fasttrack).
	Algorithms []string
}

func (c *FrontendConfig) fill() {
	if c.Goroutines == nil {
		c.Goroutines = []int{1, 2, 4, 8}
	}
	if c.Rate == 0 {
		c.Rate = 0.01
	}
	if c.Ops <= 0 {
		c.Ops = 200_000
	}
	if c.SharedEvery <= 0 {
		c.SharedEvery = 16
	}
	if c.Algorithms == nil {
		c.Algorithms = []string{"pacer", "fasttrack"}
	}
}

// Measure is one configuration's full measurement: throughput plus the
// allocation and metadata accounting that make configurations comparable
// apples-to-apples (the arena experiment reads the same columns).
type Measure struct {
	// OpsPerSec is aggregate operations per second.
	OpsPerSec float64
	// AllocsPerOp is heap allocations per observed operation during the
	// worker phase (runtime Mallocs delta / total ops).
	AllocsPerOp float64
	// MetaWords is the detector's live metadata at the end of the run, in
	// 8-byte words.
	MetaWords int
	// Stats is the detector's final counter snapshot.
	Stats pacer.Stats
}

// FrontendRow is one parallelism level's measurement.
type FrontendRow struct {
	Goroutines int
	// Base and Conc are the serialized and concurrent front-end measures.
	Base, Conc Measure
	// Speedup is Conc.OpsPerSec / Base.OpsPerSec.
	Speedup float64
}

// BackendRow is one parallelism level's backend comparison, indexed like
// Algorithms.
type BackendRow struct {
	Goroutines int
	Measures   []Measure
}

// FrontendResult holds the front-end scaling and backend tables.
type FrontendResult struct {
	Rate       float64
	Ops        int
	Rows       []FrontendRow
	Algorithms []string
	Backends   []BackendRow
}

// frontendRun drives one configuration and measures throughput, heap
// allocations per operation, and final metadata footprint. Identifier
// allocation and goroutine setup happen before the measured window, so the
// Mallocs delta charges (almost) only the per-operation work; the handful
// of scheduler/stack allocations from starting goroutines is identical
// across configurations and ~zero per op at these operation counts.
func frontendRun(cfg FrontendConfig, goroutines int, algorithm string, serialized, arena bool) Measure {
	d := pacer.New(pacer.Options{
		Algorithm:    algorithm,
		SamplingRate: cfg.Rate,
		PeriodOps:    4096,
		Seed:         11,
		Serialized:   serialized,
		Arena:        arena,
	})
	main := d.NewThread()
	shared := make([]pacer.VarID, 4)
	for i := range shared {
		shared[i] = d.NewVarID()
	}
	m := d.NewMutex()
	workers := make([]pacer.ThreadID, goroutines)
	privates := make([][]pacer.VarID, goroutines)
	for g := range workers {
		workers[g] = d.Fork(main)
		privates[g] = make([]pacer.VarID, 8)
		for i := range privates[g] {
			privates[g][i] = d.NewVarID()
		}
	}
	var wg sync.WaitGroup
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for g, tid := range workers {
		wg.Add(1)
		go func(tid pacer.ThreadID, g int) {
			defer wg.Done()
			private := privates[g]
			site := pacer.SiteID(g * 1000)
			for i := 0; i < cfg.Ops; i++ {
				switch {
				case i%512 == 511: // occasional lock-guarded shared update
					m.Lock(tid)
					d.Write(tid, shared[g%len(shared)], site)
					m.Unlock(tid)
				case i%cfg.SharedEvery == 0:
					d.Read(tid, shared[i%len(shared)], site)
				case i%4 == 0:
					d.Write(tid, private[i%len(private)], site)
				default:
					d.Read(tid, private[i%len(private)], site)
				}
			}
		}(tid, g)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	totalOps := float64(goroutines) * float64(cfg.Ops)
	st := d.Stats()
	return Measure{
		OpsPerSec:   totalOps / elapsed,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / totalOps,
		MetaWords:   st.MetadataWords,
		Stats:       st,
	}
}

// Frontend runs the front-end scaling and backend measurements.
func Frontend(cfg FrontendConfig) *FrontendResult {
	cfg.fill()
	res := &FrontendResult{Rate: cfg.Rate, Ops: cfg.Ops, Algorithms: cfg.Algorithms}
	for _, g := range cfg.Goroutines {
		// Baseline and concurrent interleaved per level so thermal/load
		// drift hits both sides roughly equally.
		base := frontendRun(cfg, g, "pacer", true, false)
		conc := frontendRun(cfg, g, "pacer", false, false)
		res.Rows = append(res.Rows, FrontendRow{
			Goroutines: g, Base: base, Conc: conc,
			Speedup: conc.OpsPerSec / base.OpsPerSec,
		})
	}
	for _, g := range cfg.Goroutines {
		row := BackendRow{Goroutines: g}
		for _, algo := range cfg.Algorithms {
			row.Measures = append(row.Measures, frontendRun(cfg, g, algo, false, false))
		}
		res.Backends = append(res.Backends, row)
	}
	return res
}

// Render prints the scaling and backend tables.
func (f *FrontendResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Front-end ingestion throughput (real wall clock, r = %.2f, %d ops/goroutine)\n", f.Rate, f.Ops)
	fmt.Fprintf(w, "%-11s  %15s  %15s  %8s  %11s  %11s  %10s\n",
		"goroutines", "serialized op/s", "concurrent op/s", "speedup", "ser alloc/op", "conc alloc/op", "meta words")
	rule(w, 94)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-11d  %15.3e  %15.3e  %7.2fx  %11.4f  %12.4f  %10d\n",
			r.Goroutines, r.Base.OpsPerSec, r.Conc.OpsPerSec, r.Speedup,
			r.Base.AllocsPerOp, r.Conc.AllocsPerOp, r.Conc.MetaWords)
	}
	if len(f.Backends) == 0 {
		return
	}
	fmt.Fprintf(w, "\nBackend wall-clock comparison through the identical concurrent front-end\n")
	fmt.Fprintf(w, "%-11s", "goroutines")
	for _, a := range f.Algorithms {
		fmt.Fprintf(w, "  %15s  %10s  %10s", a+" op/s", "alloc/op", "meta words")
	}
	fmt.Fprintln(w)
	rule(w, 11+41*len(f.Algorithms))
	for _, r := range f.Backends {
		fmt.Fprintf(w, "%-11d", r.Goroutines)
		for _, m := range r.Measures {
			fmt.Fprintf(w, "  %15.3e  %10.4f  %10d", m.OpsPerSec, m.AllocsPerOp, m.MetaWords)
		}
		fmt.Fprintln(w)
	}
}
