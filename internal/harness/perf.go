package harness

import (
	"fmt"
	"io"

	"pacer/internal/stats"
	"pacer/internal/workload"
)

// Fig7Row is one benchmark's overhead breakdown (Figure 7), in percent
// over the uninstrumented base.
type Fig7Row struct {
	Bench string
	// OMSync is the "OM + sync ops, r = 0%" configuration: object metadata
	// plus synchronization instrumentation only.
	OMSync float64
	// R0, R1, R3 are full PACER at sampling rates 0%, 1%, and 3%.
	R0, R1, R3 float64
}

// Fig7Result reproduces the overhead breakdown.
type Fig7Result struct {
	Rows []Fig7Row
	// Avg is the arithmetic mean row.
	Avg Fig7Row
}

// medianOverhead runs n trials of a configuration and returns the median
// overhead (the paper's "each sub-bar is the median of 10 trials").
func medianOverhead(b *workload.Spec, o Options, kind DetectorKind, rate float64, instr bool, n int) (float64, error) {
	var xs []float64
	for i := 0; i < n; i++ {
		t, err := RunTrial(TrialConfig{
			Bench: b, Kind: kind, Rate: rate,
			Seed: o.SeedBase + int64(i), InstrumentAccesses: instr, Nursery: o.Nursery,
		})
		if err != nil {
			return 0, err
		}
		xs = append(xs, t.Result.Overhead())
	}
	return stats.Median(xs), nil
}

// Fig7 measures the overhead breakdown at r = 0-3%.
func Fig7(o Options) (*Fig7Result, error) {
	o.fill()
	out := &Fig7Result{}
	n := o.trials(10)
	for _, b := range o.Benches {
		row := Fig7Row{Bench: b.Name}
		var err error
		if row.OMSync, err = medianOverhead(b, o, Pacer, 0, false, n); err != nil {
			return nil, err
		}
		if row.R0, err = medianOverhead(b, o, Pacer, 0, true, n); err != nil {
			return nil, err
		}
		if row.R1, err = medianOverhead(b, o, Pacer, 0.01, true, n); err != nil {
			return nil, err
		}
		if row.R3, err = medianOverhead(b, o, Pacer, 0.03, true, n); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
		out.Avg.OMSync += row.OMSync
		out.Avg.R0 += row.R0
		out.Avg.R1 += row.R1
		out.Avg.R3 += row.R3
	}
	k := float64(len(out.Rows))
	out.Avg = Fig7Row{Bench: "avg", OMSync: out.Avg.OMSync / k, R0: out.Avg.R0 / k, R1: out.Avg.R1 / k, R3: out.Avg.R3 / k}
	return out, nil
}

// Render prints the breakdown.
func (f *Fig7Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: PACER overhead breakdown for r = 0-3% (percent over base,")
	fmt.Fprintln(w, "median per configuration).")
	fmt.Fprintf(w, "%-10s %16s %12s %12s %12s\n", "Program", "OM+sync r=0%", "Pacer r=0%", "Pacer r=1%", "Pacer r=3%")
	rule(w, 68)
	for _, r := range append(f.Rows, f.Avg) {
		fmt.Fprintf(w, "%-10s %15.0f%% %11.0f%% %11.0f%% %11.0f%%\n",
			r.Bench, r.OMSync*100, r.R0*100, r.R1*100, r.R3*100)
	}
	fmt.Fprintln(w, "(Paper, avg: 15%, 33%, 52%, 86%.)")
}

// Fig8Rates is the full sampling-rate sweep of Figure 8.
var Fig8Rates = []float64{0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00}

// Fig9Rates is the zoomed sweep of Figure 9.
var Fig9Rates = []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10}

// ScalingResult reproduces Figures 8 and 9: slowdown vs sampling rate.
type ScalingResult struct {
	Rates []float64
	// Slowdown[bench][rate] is total time relative to base (1.0 = none).
	Slowdown map[string]map[float64]float64
	// FastTrackSlowdown[bench] is the full-tracking comparator.
	FastTrackSlowdown map[string]float64
	Benches           []string
	Figure            int
}

// Scaling measures slowdown across sampling rates; pass Fig8Rates or
// Fig9Rates.
func Scaling(o Options, rates []float64, figure int) (*ScalingResult, error) {
	o.fill()
	out := &ScalingResult{
		Rates:             rates,
		Slowdown:          map[string]map[float64]float64{},
		FastTrackSlowdown: map[string]float64{},
		Figure:            figure,
	}
	n := o.trials(10)
	for _, b := range o.Benches {
		out.Benches = append(out.Benches, b.Name)
		out.Slowdown[b.Name] = map[float64]float64{}
		for _, r := range rates {
			ov, err := medianOverhead(b, o, Pacer, r, true, n)
			if err != nil {
				return nil, err
			}
			out.Slowdown[b.Name][r] = 1 + ov
		}
		ov, err := medianOverhead(b, o, FastTrack, 0, true, n)
		if err != nil {
			return nil, err
		}
		out.FastTrackSlowdown[b.Name] = 1 + ov
	}
	return out, nil
}

// Render prints the slowdown curve.
func (s *ScalingResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure %d: Performance vs sampling rate (slowdown relative to base).\n", s.Figure)
	fmt.Fprintf(w, "%-12s", "rate")
	for _, b := range s.Benches {
		fmt.Fprintf(w, " %10s", b)
	}
	fmt.Fprintln(w)
	rule(w, 12+11*len(s.Benches))
	for _, r := range s.Rates {
		fmt.Fprintf(w, "%-12s", fmt.Sprintf("r = %g%%", r*100))
		for _, b := range s.Benches {
			fmt.Fprintf(w, " %9.2fx", s.Slowdown[b][r])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "fasttrack")
	for _, b := range s.Benches {
		fmt.Fprintf(w, " %9.2fx", s.FastTrackSlowdown[b])
	}
	fmt.Fprintln(w)
}
