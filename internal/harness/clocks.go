package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"pacer"
)

// Clocks measures the tree-clock timestamping engine head-to-head against
// the flat vector clock (real wall clock, this machine) on the workload
// the tree representation exists for: sync-heavy handoff at high simulated
// thread counts. Every backend that honors Options.Clock — PACER,
// FASTTRACK, and the O(1)-samples backend — is mounted twice behind the
// identical concurrent front-end, once per representation, on the same
// operation stream.
//
// The workload models the thread-pool shape PACER deployments actually
// see: many simulated threads exist — every clock mentions all of them,
// so clocks are Threads wide — but at any moment only a small active set
// is doing synchronization. Each active thread mostly reacquires its own
// mutex and periodically hands off to its neighbor in the active set, so
// each sync operation genuinely changes only a handful of entries. The
// flat representation still pays O(Threads) per join and per release copy
// (it must scan the full width to discover that nothing else moved); the
// tree clock's last-update index certifies subsumption in O(1) and walks
// only the entries that changed, making per-sync cost proportional to the
// active delta rather than to how many threads ever existed. The gap
// should therefore grow with the simulated thread count while the active
// set (and the real parallelism) stays fixed.
//
// Unlike the simulator experiments this one measures this process on this
// hardware; numbers vary across machines, the shape (tree pulling ahead as
// threads grow, with fewer allocations per operation) should not.

// ClocksConfig configures the clock-representation measurement.
type ClocksConfig struct {
	// Threads lists the simulated thread counts — the clock widths — to
	// measure (default 8, 64, 512). Real parallelism is capped separately
	// (Goroutines).
	Threads []int
	// Active is the number of simulated threads doing synchronization in
	// the measured window (default min(8, Threads[i])); the rest exist
	// only to give every clock its full width.
	Active int
	// Goroutines is the number of OS-scheduled workers driving the active
	// threads (default min(8, GOMAXPROCS)).
	Goroutines int
	// Ops is the per-goroutine sync-operation count (default 100_000).
	Ops int
	// HandoffEvery makes one in N sync ops acquire the neighboring
	// thread's mutex instead of reacquiring the thread's own (default 4),
	// so knowledge keeps trickling around the chain and joins stay
	// genuinely non-empty without ever touching more than a few entries.
	HandoffEvery int
	// Algorithms lists the Clock-aware backends compared (default pacer,
	// fasttrack, o1samples).
	Algorithms []string
	// Rate is the sampling rate (default 1.0: full clock work on every
	// operation, the representation-stress configuration).
	Rate float64
}

func (c *ClocksConfig) fill() {
	if c.Threads == nil {
		c.Threads = []int{8, 64, 512}
	}
	if c.Active <= 0 {
		c.Active = 8
	}
	if c.Goroutines <= 0 {
		c.Goroutines = 8
		if n := runtime.GOMAXPROCS(0); n < 8 {
			c.Goroutines = n
		}
	}
	if c.Ops <= 0 {
		c.Ops = 100_000
	}
	if c.HandoffEvery <= 0 {
		c.HandoffEvery = 4
	}
	if c.Algorithms == nil {
		c.Algorithms = []string{"pacer", "fasttrack", "o1samples"}
	}
	if c.Rate == 0 {
		c.Rate = 1.0
	}
}

// ClocksRow is one (algorithm, simulated-thread-count) comparison.
type ClocksRow struct {
	Algorithm string
	Threads   int
	// Flat and Tree are the same backend mounted with the flat vector
	// clock and the tree clock.
	Flat, Tree Measure
	// Speedup is Tree.OpsPerSec / Flat.OpsPerSec.
	Speedup float64
	// AllocRatio is Tree.AllocsPerOp / Flat.AllocsPerOp (0 when the flat
	// mount did not allocate).
	AllocRatio float64
}

// ClocksResult holds the head-to-head table.
type ClocksResult struct {
	Rate       float64
	Ops        int
	Goroutines int
	Rows       []ClocksRow
}

// clocksRun drives the handoff workload through one (algorithm, clock)
// mount and measures it. Identifier allocation and goroutine setup happen
// before the measured window.
func clocksRun(cfg ClocksConfig, threads int, algorithm, clock string) Measure {
	d := pacer.New(pacer.Options{
		Algorithm:    algorithm,
		SamplingRate: cfg.Rate,
		PeriodOps:    4096,
		Seed:         11,
		Clock:        clock,
	})
	active := cfg.Active
	if active > threads {
		active = threads
	}
	main := d.NewThread()
	workers := make([]pacer.ThreadID, threads)
	for i := range workers {
		workers[i] = d.Fork(main)
	}
	own := make([]*pacer.Mutex, active)
	guarded := make([]pacer.VarID, active)
	for i := range own {
		own[i] = d.NewMutex()
		guarded[i] = d.NewVarID()
	}

	// Warm-up: two barrier rounds through one mutex. Each release copies
	// the holder's clock into the barrier after the acquire joined it, so
	// knowledge accumulates across the first round and the second spreads
	// it back out — every clock ends at full width. The measured window
	// then compares the representations at stable width instead of
	// measuring growth reallocation, which neither is designed around.
	bar := d.NewMutex()
	for r := 0; r < 2; r++ {
		for _, tid := range workers {
			bar.Lock(tid)
			bar.Unlock(tid)
		}
	}

	goroutines := cfg.Goroutines
	if goroutines > active {
		goroutines = active
	}
	var wg sync.WaitGroup
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			site := pacer.SiteID(g * 1000)
			// Each worker round-robins its share of the active threads.
			for i := 0; i < cfg.Ops; i++ {
				th := g + (i%((active+goroutines-1)/goroutines))*goroutines
				if th >= active {
					th = g
				}
				tid := workers[th]
				m := th
				if i%cfg.HandoffEvery == 0 {
					m = (th + 1) % active // neighbor handoff
				}
				own[m].Lock(tid)
				d.Write(tid, guarded[m], site)
				own[m].Unlock(tid)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	totalOps := float64(goroutines) * float64(cfg.Ops)
	st := d.Stats()
	return Measure{
		OpsPerSec:   totalOps / elapsed,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / totalOps,
		MetaWords:   st.MetadataWords,
		Stats:       st,
	}
}

// Clocks runs the flat-versus-tree comparison for every Clock-aware
// backend at every simulated thread count.
func Clocks(cfg ClocksConfig) *ClocksResult {
	cfg.fill()
	res := &ClocksResult{Rate: cfg.Rate, Ops: cfg.Ops, Goroutines: cfg.Goroutines}
	for _, algo := range cfg.Algorithms {
		for _, threads := range cfg.Threads {
			// Flat and tree interleaved per cell so thermal/load drift hits
			// both representations roughly equally.
			flat := clocksRun(cfg, threads, algo, "")
			tree := clocksRun(cfg, threads, algo, "tree")
			row := ClocksRow{
				Algorithm: algo, Threads: threads,
				Flat: flat, Tree: tree,
				Speedup: tree.OpsPerSec / flat.OpsPerSec,
			}
			if flat.AllocsPerOp > 0 {
				row.AllocRatio = tree.AllocsPerOp / flat.AllocsPerOp
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Render prints the head-to-head table.
func (c *ClocksResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Clock representation head-to-head (real wall clock, r = %.2f, %d sync ops/goroutine, %d goroutines)\n",
		c.Rate, c.Ops, c.Goroutines)
	fmt.Fprintf(w, "%-10s  %8s  %14s  %14s  %8s  %13s  %13s  %11s\n",
		"backend", "threads", "flat op/s", "tree op/s", "speedup",
		"flat alloc/op", "tree alloc/op", "alloc ratio")
	rule(w, 102)
	for _, r := range c.Rows {
		fmt.Fprintf(w, "%-10s  %8d  %14.3e  %14.3e  %7.2fx  %13.4f  %13.4f  %10.2fx\n",
			r.Algorithm, r.Threads, r.Flat.OpsPerSec, r.Tree.OpsPerSec, r.Speedup,
			r.Flat.AllocsPerOp, r.Tree.AllocsPerOp, r.AllocRatio)
	}
}
