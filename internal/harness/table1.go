package harness

import (
	"fmt"
	"io"

	"pacer/internal/stats"
)

// Table1Rates are the specified sampling rates of Table 1.
var Table1Rates = []float64{0.01, 0.03, 0.05, 0.10, 0.25}

// Table1Cell is one effective-rate measurement.
type Table1Cell struct {
	Mean, Std float64
}

// Table1Result reproduces Table 1: effective sampling rates (± one
// standard deviation) for each specified PACER sampling rate.
type Table1Result struct {
	Benches []string
	Rates   []float64
	Cells   map[string]map[float64]Table1Cell
}

// Table1 runs the effective-sampling-rate experiment.
func Table1(o Options) (*Table1Result, error) {
	o.fill()
	res := &Table1Result{Rates: Table1Rates, Cells: map[string]map[float64]Table1Cell{}}
	for _, b := range o.Benches {
		res.Benches = append(res.Benches, b.Name)
		res.Cells[b.Name] = map[float64]Table1Cell{}
		for _, r := range Table1Rates {
			n := o.trials(10)
			var rates []float64
			for i := 0; i < n; i++ {
				t, err := RunTrial(TrialConfig{
					Bench: b, Kind: Pacer, Rate: r,
					Seed: o.SeedBase + int64(i), InstrumentAccesses: true, Nursery: o.Nursery,
				})
				if err != nil {
					return nil, err
				}
				rates = append(rates, t.EffectiveRate*100)
			}
			res.Cells[b.Name][r] = Table1Cell{Mean: stats.Mean(rates), Std: stats.StdDev(rates)}
		}
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (t *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Effective sampling rates (± one standard deviation) for")
	fmt.Fprintln(w, "specified PACER sampling rates.")
	fmt.Fprintf(w, "%-10s", "Program")
	for _, r := range t.Rates {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("r = %g%%", r*100))
	}
	fmt.Fprintln(w)
	rule(w, 10+15*len(t.Rates))
	for _, b := range t.Benches {
		fmt.Fprintf(w, "%-10s", b)
		for _, r := range t.Rates {
			c := t.Cells[b][r]
			fmt.Fprintf(w, " %14s", fmt.Sprintf("%.1f±%.1f", c.Mean, c.Std))
		}
		fmt.Fprintln(w)
	}
}
