package harness

import (
	"fmt"
	"io"

	"pacer/internal/workload"
)

// Table2Row reproduces one row of Table 2: thread counts and race counts.
type Table2Row struct {
	Bench          string
	TotalThreads   int
	MaxLiveThreads int
	// AllGe1 and AllGe5 count distinct races observed in ≥1 / ≥5 of all
	// trials (full-rate and sampled combined).
	AllTrials      int
	AllGe1, AllGe5 int
	// FullGe1/5/25 count distinct races observed in ≥1 / ≥5 / ≥25 of the
	// full-rate (r = 100%) trials.
	FullTrials                 int
	FullGe1, FullGe5, FullGe25 int
	// EvalRaces are the races observed in at least half of the full-rate
	// trials — the paper's evaluation races.
	EvalRaces []int
	// FullDetections[id] counts the full-rate trials in which race id was
	// observed; PerRaceDynamic[id] sums its dynamic reports over those
	// trials. Downstream experiments (Figures 3-5) reuse these baselines.
	FullDetections  map[int]int
	PerRaceDynamic  map[int]int
	PlantedDistinct int
}

// Table2Result is the full table.
type Table2Result struct {
	Rows []*Table2Row
}

// table2SampledRates spreads the paper's ~1,234 sampled trials across the
// sampling rates used elsewhere in the evaluation.
var table2SampledRates = []float64{0.01, 0.03, 0.05, 0.10, 0.25}

// Table2 runs the race-characterization experiment: 50 fully sampled
// trials plus a population of sampled trials per benchmark (all counts
// scaled by Options.Scale).
func Table2(o Options) (*Table2Result, error) {
	o.fill()
	out := &Table2Result{}
	for _, b := range o.Benches {
		row, err := table2Bench(b, o)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func table2Bench(b *workload.Spec, o Options) (*Table2Row, error) {
	row := &Table2Row{
		Bench:           b.Name,
		TotalThreads:    b.TotalThreads(),
		MaxLiveThreads:  b.MaxLiveThreads(),
		FullDetections:  map[int]int{},
		PerRaceDynamic:  map[int]int{},
		PlantedDistinct: len(b.Races),
	}
	allDetections := map[int]int{}

	row.FullTrials = o.trials(50)
	seed := o.SeedBase
	for i := 0; i < row.FullTrials; i++ {
		t, err := RunTrial(TrialConfig{Bench: b, Kind: Pacer, Rate: 1.0, Seed: seed, InstrumentAccesses: true, Nursery: o.Nursery})
		if err != nil {
			return nil, err
		}
		seed++
		for id, n := range t.PerRace {
			row.FullDetections[id]++
			allDetections[id]++
			row.PerRaceDynamic[id] += n
		}
	}
	row.AllTrials = row.FullTrials
	perRate := o.trials(1234) / len(table2SampledRates)
	for _, r := range table2SampledRates {
		for i := 0; i < perRate; i++ {
			t, err := RunTrial(TrialConfig{Bench: b, Kind: Pacer, Rate: r, Seed: seed, InstrumentAccesses: true, Nursery: o.Nursery})
			if err != nil {
				return nil, err
			}
			seed++
			row.AllTrials++
			for id := range t.PerRace {
				allDetections[id]++
			}
		}
	}

	// The paper's thresholds (≥5 of ~1,284 trials; ≥5 and ≥25 of 50 full
	// trials) scale proportionally when Options.Scale shrinks the trial
	// counts.
	allTh5 := max(2, (5*row.AllTrials+642)/1284)
	fullTh5 := max(1, (5*row.FullTrials+25)/50)
	half := (row.FullTrials + 1) / 2
	for _, n := range allDetections {
		if n >= 1 {
			row.AllGe1++
		}
		if n >= allTh5 {
			row.AllGe5++
		}
	}
	for id, n := range row.FullDetections {
		if n >= 1 {
			row.FullGe1++
		}
		if n >= fullTh5 {
			row.FullGe5++
		}
		if n >= half {
			row.FullGe25++
			row.EvalRaces = append(row.EvalRaces, id)
		}
	}
	return row, nil
}

// Render prints the table in the paper's layout.
func (t *Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Thread counts and race counts.")
	fmt.Fprintf(w, "%-10s %8s %8s | %9s: %5s %5s | %9s: %5s %5s %5s\n",
		"Program", "Total", "Max live", "Races ∀r", "≥1", "≥5", "r = 100%", "≥1", "≥5", "≥25")
	rule(w, 86)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10s %8d %8d | %9d trials %3d %5d | %9d trials %3d %5d %5d\n",
			r.Bench, r.TotalThreads, r.MaxLiveThreads,
			r.AllTrials, r.AllGe1, r.AllGe5,
			r.FullTrials, r.FullGe1, r.FullGe5, r.FullGe25)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s: %d planted distinct races, %d evaluation races (≥ half of full trials)\n",
			r.Bench, r.PlantedDistinct, len(r.EvalRaces))
	}
}
